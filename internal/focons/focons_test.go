package focons_test

import (
	"testing"

	"repro/internal/alg2"
	"repro/internal/base"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/focons"
	"repro/internal/model"
	"repro/internal/sim"
)

// proposerFactory builds a fresh fo-consensus implementation for a run.
type proposerFactory func(env *sim.Env) base.Proposer

func alg1OverDSTM(env *sim.Env) base.Proposer {
	if env == nil {
		return focons.NewFromOFTM(dstm.New())
	}
	return focons.NewFromOFTM(dstm.New(dstm.WithEnv(env)))
}

func alg1OverAlg2(env *sim.Env) base.Proposer {
	if env == nil {
		return focons.NewFromOFTM(alg2.New())
	}
	return focons.NewFromOFTM(alg2.New(alg2.WithEnv(env)))
}

func alg3OverDSTM(n int) proposerFactory {
	return func(env *sim.Env) base.Proposer {
		if env == nil {
			return focons.NewFromEventual(dstm.New(), nil, n)
		}
		return focons.NewFromEventual(dstm.New(dstm.WithEnv(env)), env, n)
	}
}

// checkFoConsensusProperties drives n processes proposing distinct
// values under many random schedules and asserts the three fo-consensus
// properties of §4.1 on the outcomes.
func checkFoConsensusProperties(t *testing.T, name string, factory proposerFactory, n, seeds int) {
	t.Helper()
	aborts := 0
	for seed := 0; seed < seeds; seed++ {
		env := sim.New()
		f := factory(env)
		results := make([]uint64, n)
		for i := 0; i < n; i++ {
			i := i
			env.Spawn(func(p *sim.Proc) {
				results[i] = f.Propose(p, uint64(i+10))
			})
		}
		env.Run(sim.Random(int64(seed)))
		if env.Truncated {
			t.Fatalf("%s seed %d: run truncated (livelock?)", name, seed)
		}
		decided := map[uint64]bool{}
		for _, r := range results {
			if r == base.Bottom {
				aborts++
				continue
			}
			decided[r] = true
		}
		if len(decided) > 1 {
			t.Fatalf("%s seed %d: agreement violated: %v", name, seed, results)
		}
		for v := range decided {
			// fo-validity: the decided value's proposer must not have
			// aborted (values are i+10, proposer index i).
			i := int(v) - 10
			if i < 0 || i >= n {
				t.Fatalf("%s seed %d: decided value %d was never proposed", name, seed, v)
			}
			if results[i] == base.Bottom {
				t.Fatalf("%s seed %d: decided value %d but its proposer aborted (fo-validity)", name, seed, v)
			}
		}
	}
	t.Logf("%s: %d aborts across %d seeds × %d procs", name, aborts, seeds, n)
}

func TestAlg1Properties(t *testing.T) {
	checkFoConsensusProperties(t, "alg1/dstm", alg1OverDSTM, 3, 30)
}

func TestAlg1OverAlg2Properties(t *testing.T) {
	// The full equivalence loop: fo-consensus (Algorithm 1) implemented
	// over the OFTM that is itself implemented from fo-consensus
	// (Algorithm 2).
	checkFoConsensusProperties(t, "alg1/alg2", alg1OverAlg2, 3, 15)
}

func TestAlg3Properties(t *testing.T) {
	checkFoConsensusProperties(t, "alg3/dstm", alg3OverDSTM(4), 4, 25)
}

// TestFoObstructionFreedom: a step-contention-free propose must not
// abort (fo-obstruction-freedom), for both constructions.
func TestFoObstructionFreedom(t *testing.T) {
	for name, factory := range map[string]proposerFactory{
		"alg1": alg1OverDSTM,
		"alg3": alg3OverDSTM(2),
	} {
		env := sim.New()
		f := factory(env)
		var got uint64
		env.Spawn(func(p *sim.Proc) { got = f.Propose(p, 42) })
		env.Spawn(func(p *sim.Proc) { _ = f.Propose(p, 43) }) // never scheduled
		env.Run(sim.Solo(1))
		if got != 42 {
			t.Errorf("%s: solo propose must decide its own value, got %d", name, got)
		}
	}
}

// TestAlg1AbortsOnlyUnderContention: drive an interleaving where p1's
// propose overlaps p2's; whoever aborts must have been contended.
func TestAlg1SequentialNeverAborts(t *testing.T) {
	f := alg1OverDSTM(nil)
	if got := f.Propose(nil, 5); got != 5 {
		t.Fatalf("first propose: %d", got)
	}
	for i := uint64(0); i < 5; i++ {
		if got := f.Propose(nil, 100+i); got != 5 {
			t.Fatalf("later propose decided %d, want 5", got)
		}
	}
}

func TestAlg3SequentialNeverAborts(t *testing.T) {
	f := alg3OverDSTM(2)(nil)
	if got := f.Propose(nil, 9); got != 9 {
		t.Fatalf("first propose: %d", got)
	}
	if got := f.Propose(nil, 11); got != 9 {
		t.Fatalf("second propose decided %d, want 9", got)
	}
}

// TestTwoConsensus validates the [6] construction the paper uses for
// Corollary 11: two processes reach wait-free agreement from
// fo-consensus + registers, under many schedules, even with the
// adversarial abort policy.
func TestTwoConsensus(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		env := sim.New()
		env.MaxSteps = 100_000
		f := base.NewFoCons(env, "F", base.AbortOnContention, seed)
		c := focons.NewTwoConsensus(env, f)
		var d0, d1 uint64
		env.Spawn(func(p *sim.Proc) { d0 = c.Decide(p, 0, 100) })
		env.Spawn(func(p *sim.Proc) { d1 = c.Decide(p, 1, 200) })
		env.Run(sim.Random(seed))
		if env.Truncated {
			t.Fatalf("seed %d: consensus did not terminate", seed)
		}
		if d0 != d1 {
			t.Fatalf("seed %d: agreement violated: %d vs %d", seed, d0, d1)
		}
		if d0 != 100 && d0 != 200 {
			t.Fatalf("seed %d: validity violated: %d", seed, d0)
		}
	}
}

// TestTwoConsensusOverOFTM closes the loop for Corollary 11's lower
// bound: 2-process consensus built from fo-consensus built from an OFTM.
func TestTwoConsensusOverOFTM(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		env := sim.New()
		env.MaxSteps = 200_000
		f := alg1OverDSTM(env)
		c := focons.NewTwoConsensus(env, f)
		var d0, d1 uint64
		env.Spawn(func(p *sim.Proc) { d0 = c.Decide(p, 0, 7) })
		env.Spawn(func(p *sim.Proc) { d1 = c.Decide(p, 1, 8) })
		env.Run(sim.Random(seed))
		if env.Truncated {
			t.Fatalf("seed %d: did not terminate", seed)
		}
		if d0 != d1 || (d0 != 7 && d0 != 8) {
			t.Fatalf("seed %d: bad outcome %d %d", seed, d0, d1)
		}
	}
}

// TestTheorem6Composition builds the full chain of Theorem 6: an OFTM
// (Algorithm 2) whose fo-consensus objects are Algorithm 3 instances
// over an eventual ic-OFTM (DSTM — every OFTM is an eventual ic-OFTM).
// The composed system must still be an opaque TM.
func TestTheorem6Composition(t *testing.T) {
	env := sim.New()
	env.MaxSteps = 500_000
	inner := dstm.New(dstm.WithEnv(env)) // the eventual ic-OFTM substrate
	outer := alg2.New(
		alg2.WithEnv(env),
		alg2.WithFoConsFactory(func(name string) base.Proposer {
			return focons.NewFromEventual(inner, env, 2)
		}),
	)
	rtm := core.Recorded(outer, env.Recorder())
	x := rtm.NewVar("x", 0)
	y := rtm.NewVar("y", 0)
	for i := 0; i < 2; i++ {
		env.Spawn(func(p *sim.Proc) {
			_ = core.Run(rtm, p, func(tx core.Tx) error {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				if err := tx.Write(x, v+1); err != nil {
					return err
				}
				return tx.Write(y, v+1)
			}, core.MaxAttempts(60))
		})
	}
	h := env.Run(sim.Random(11))
	if env.Truncated {
		t.Fatalf("composed run truncated")
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("ill-formed: %v", err)
	}
	txs := model.Transactions(h)
	if res := checker.CheckOpacity(txs, map[model.VarID]uint64{x.ID(): 0, y.ID(): 0}); !res.OK {
		t.Fatalf("composed OFTM not opaque: %s", res.Reason)
	}
	// At least one increment must have committed.
	vx, err := core.ReadVar(outer, nil, x)
	if err != nil || vx == 0 {
		t.Fatalf("no committed increments: x=%d err=%v", vx, err)
	}
}
