// Package focons implements the paper's Section 4 constructions around
// fail-only consensus:
//
//   - FromOFTM (Algorithm 1): fo-consensus from any OFTM — one
//     transaction per propose, which by obstruction-freedom may only be
//     forcefully aborted under step contention, exactly when
//     fo-consensus is allowed to abort (Lemma 7).
//   - FromEventual (Algorithm 3, Appendix A): fo-consensus from an
//     *eventual ic*-OFTM — the propose retries transactions until one
//     commits, detecting concurrent proposes through the R[1..n]
//     registers (Theorem 6).
//   - TwoConsensus: wait-free-in-practice 2-process consensus from
//     fo-consensus objects and registers, the construction the paper
//     imports from [6] to establish that an OFTM's consensus number is
//     at least 2 (Corollary 11). Safety (agreement, validity) is
//     unconditional; termination holds whenever some propose eventually
//     runs without step contention, which obstruction-style schedules
//     provide. See DESIGN.md for the scoping note.
//
// Together with Algorithm 2 (package alg2), these give the paper's
// equivalence: OFTM ≡ fo-consensus.
package focons

import (
	"errors"
	"fmt"

	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/sim"
)

// FromOFTM is Algorithm 1: fo-consensus implemented from an OFTM base
// object. The t-variable V holds ⊥ (encoded 0) or a decided value
// (encoded v+1).
type FromOFTM struct {
	tm core.TM
	v  core.Var
}

// NewFromOFTM returns a fo-consensus over the given (obstruction-free)
// TM. Each instance allocates one t-variable.
func NewFromOFTM(tm core.TM) *FromOFTM {
	return &FromOFTM{tm: tm, v: tm.NewVar("focons.V", 0)}
}

var _ base.Proposer = (*FromOFTM)(nil)

// Propose implements base.Proposer, transcribing Algorithm 1:
//
//	upon propose(vi) do
//	  within transaction Ti,k do
//	    if V = ⊥ then V ← vi else vi ← V
//	  on event Ci,k do return vi
//	  on event Ai,k do return ⊥
func (f *FromOFTM) Propose(p *sim.Proc, vi uint64) uint64 {
	if vi == base.Bottom || vi+1 == 0 {
		panic("focons: value out of domain")
	}
	tx := f.tm.Begin(p)
	cur, err := tx.Read(f.v)
	if err != nil {
		return base.Bottom
	}
	d := vi
	if cur == 0 {
		if err := tx.Write(f.v, vi+1); err != nil {
			return base.Bottom
		}
	} else {
		d = cur - 1
	}
	if err := tx.Commit(); err != nil {
		return base.Bottom
	}
	return d
}

// FromEventual is Algorithm 3: fo-consensus from an eventual ic-OFTM.
// Unlike Algorithm 1 it keeps retrying transactions within a single
// propose until one commits, or until a step of a concurrent propose is
// detected through the R registers — in which case aborting does not
// violate fo-obstruction-freedom.
type FromEventual struct {
	tm core.TM
	v  core.Var
	r  []*base.Reg // R[1..n]
	n  int
}

// NewFromEventual returns a fo-consensus over the given TM for n
// processes. Process p's slot is p.ID() (1-based); raw-mode callers
// (nil proc) share slot 0, which is reserved for them.
func NewFromEventual(tm core.TM, env *sim.Env, n int) *FromEventual {
	f := &FromEventual{tm: tm, v: tm.NewVar("focons3.V", 0), n: n}
	f.r = make([]*base.Reg, n+1)
	for i := range f.r {
		f.r[i] = base.NewReg(env, fmt.Sprintf("focons3.R[%d]", i), 0)
	}
	return f
}

var _ base.Proposer = (*FromEventual)(nil)

// Propose implements base.Proposer, transcribing Algorithm 3:
//
//	r[1..n] ← R[1..n] (not atomic)
//	while true do
//	  d ← vi
//	  R[i] ← R[i] + 1
//	  within transaction Ti,k do
//	    if V = ⊥ then V ← vi else d ← V
//	  on event Ck do return d
//	  if ∃ m≠i : r[m] ≠ R[m] then return ⊥
func (f *FromEventual) Propose(p *sim.Proc, vi uint64) uint64 {
	if vi == base.Bottom || vi+1 == 0 {
		panic("focons: value out of domain")
	}
	i := int(p.ID())
	if i > f.n {
		panic(fmt.Sprintf("focons: process %d exceeds configured n=%d", i, f.n))
	}
	snap := make([]uint64, len(f.r))
	for m := range f.r {
		snap[m] = f.r[m].Read(p)
	}
	for {
		d := vi
		f.r[i].Write(p, f.r[i].Read(p)+1)
		committed := false
		err := func() error {
			tx := f.tm.Begin(p)
			cur, err := tx.Read(f.v)
			if err != nil {
				return err
			}
			if cur == 0 {
				if err := tx.Write(f.v, vi+1); err != nil {
					return err
				}
			} else {
				d = cur - 1
			}
			if err := tx.Commit(); err != nil {
				return err
			}
			committed = true
			return nil
		}()
		if committed {
			return d
		}
		if err != nil && !errors.Is(err, core.ErrAborted) {
			panic("focons: unexpected transaction error: " + err.Error())
		}
		for m := range f.r {
			if m != i && f.r[m].Read(p) != snap[m] {
				return base.Bottom
			}
		}
	}
}

// TwoConsensus solves consensus between two parties from one
// fo-consensus object and registers ([6]). Each party retries the
// fo-consensus until it returns a decision, announcing the outcome in a
// register so late and slow parties converge. Aborted proposes adopt the
// peer's announced proposal, which makes the eventual decision stable
// under helping.
type TwoConsensus struct {
	f    base.Proposer
	prop [2]*base.Reg
	dec  *base.Reg
}

// NewTwoConsensus builds the object from a fo-consensus instance.
func NewTwoConsensus(env *sim.Env, f base.Proposer) *TwoConsensus {
	return &TwoConsensus{
		f: f,
		prop: [2]*base.Reg{
			base.NewReg(env, "twocons.prop0", 0),
			base.NewReg(env, "twocons.prop1", 0),
		},
		dec: base.NewReg(env, "twocons.dec", 0),
	}
}

// Decide runs the consensus protocol for party who ∈ {0,1} with
// proposal v and returns the decided value.
func (c *TwoConsensus) Decide(p *sim.Proc, who int, v uint64) uint64 {
	if who != 0 && who != 1 {
		panic("focons: party must be 0 or 1")
	}
	c.prop[who].Write(p, v+1)
	cur := v
	for {
		if d := c.dec.Read(p); d != 0 {
			return d - 1
		}
		if res := c.f.Propose(p, cur); res != base.Bottom {
			c.dec.Write(p, res+1)
			return res
		}
		// Aborted: the peer is active; adopt its announced proposal so
		// that whichever of us eventually gets through proposes a value
		// both of us are happy to decide.
		if o := c.prop[1-who].Read(p); o != 0 {
			cur = o - 1
		}
	}
}
