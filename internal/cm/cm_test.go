package cm

import (
	"testing"

	"repro/internal/model"
)

func info(id int, start, ops int64) TxInfo {
	return TxInfo{ID: model.TxID{Proc: model.ProcID(id), Seq: 1}, Start: start, Ops: ops}
}

func TestAggressive(t *testing.T) {
	m := Aggressive{}
	for attempt := 0; attempt < 5; attempt++ {
		if d := m.OnConflict(info(1, 5, 0), info(2, 1, 100), attempt); d != AbortVictim {
			t.Fatalf("attempt %d: %v", attempt, d)
		}
	}
}

func TestPoliteBoundedRetries(t *testing.T) {
	m := Polite{MaxTries: 3}
	for attempt := 0; attempt < 3; attempt++ {
		if d := m.OnConflict(info(1, 0, 0), info(2, 0, 0), attempt); d != Retry {
			t.Fatalf("attempt %d: %v, want retry", attempt, d)
		}
	}
	if d := m.OnConflict(info(1, 0, 0), info(2, 0, 0), 3); d != AbortVictim {
		t.Fatalf("after bound: %v, want abort-victim", d)
	}
	// Default bound applies when MaxTries is zero.
	def := Polite{}
	if d := def.OnConflict(info(1, 0, 0), info(2, 0, 0), 8); d != AbortVictim {
		t.Fatalf("default bound: %v", d)
	}
	if d := def.OnConflict(info(1, 0, 0), info(2, 0, 0), 7); d != Retry {
		t.Fatalf("default bound at 7: %v", d)
	}
}

func TestKarmaRespectsWork(t *testing.T) {
	m := Karma{MaxTries: 10}
	// Victim has more karma: attacker retries, patience = karma gap.
	if d := m.OnConflict(info(1, 0, 2), info(2, 0, 5), 0); d != Retry {
		t.Fatalf("low-karma attacker must retry, got %v", d)
	}
	if d := m.OnConflict(info(1, 0, 2), info(2, 0, 5), 3); d != AbortVictim {
		t.Fatalf("patience exhausted (gap 3), got %v", d)
	}
	// Attacker has more karma: abort immediately.
	if d := m.OnConflict(info(1, 0, 9), info(2, 0, 5), 0); d != AbortVictim {
		t.Fatalf("high-karma attacker must win, got %v", d)
	}
	// Hard bound dominates the gap.
	if d := m.OnConflict(info(1, 0, 0), info(2, 0, 1000), 10); d != AbortVictim {
		t.Fatalf("hard bound must dominate, got %v", d)
	}
}

func TestTimestampOlderWins(t *testing.T) {
	m := Timestamp{MaxTries: 2}
	// I am older: victim dies.
	if d := m.OnConflict(info(1, 1, 0), info(2, 9, 0), 0); d != AbortVictim {
		t.Fatalf("older attacker: %v", d)
	}
	// I am younger: retry then abort self.
	if d := m.OnConflict(info(1, 9, 0), info(2, 1, 0), 0); d != Retry {
		t.Fatalf("younger attacker first attempt: %v", d)
	}
	if d := m.OnConflict(info(1, 9, 0), info(2, 1, 0), 2); d != AbortSelf {
		t.Fatalf("younger attacker after bound: %v", d)
	}
}

func TestEveryManagerIsObstructionFree(t *testing.T) {
	// Obstruction-freedom requirement: for every manager there is a
	// finite attempt count after which the decision is not Retry (the
	// attacker never waits on the victim forever).
	for _, m := range All() {
		me, victim := info(1, 10, 0), info(2, 1, 1<<30)
		resolved := false
		for attempt := 0; attempt < 1<<20; attempt++ {
			if d := m.OnConflict(me, victim, attempt); d != Retry {
				resolved = true
				break
			}
		}
		if !resolved {
			t.Errorf("manager %s retries unboundedly: not obstruction-free", m.Name())
		}
	}
}

func TestDecisionString(t *testing.T) {
	if AbortVictim.String() != "abort-victim" || Retry.String() != "retry" || AbortSelf.String() != "abort-self" {
		t.Fatalf("decision strings: %v %v %v", AbortVictim, Retry, AbortSelf)
	}
}

func TestAllReturnsDistinctManagers(t *testing.T) {
	names := map[string]bool{}
	for _, m := range All() {
		if names[m.Name()] {
			t.Fatalf("duplicate manager %s", m.Name())
		}
		names[m.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("want 4 managers, got %d", len(names))
	}
}
