// Package cm implements contention managers for DSTM-style OFTMs. The
// paper (§1): "A contention manager might tell Tk to back off for some
// fixed time (maybe random) to give Ti a chance, but eventually Tk must
// be able to abort Ti and acquire x without any interaction with Ti."
//
// Every manager here honors that obstruction-freedom contract: Retry
// decisions are always bounded, after which the attacker aborts the
// victim (or itself), never waiting on the victim indefinitely. The
// managers are the classic ones from the DSTM literature: Aggressive,
// Polite (bounded backoff), Karma (work-based priority) and Timestamp
// (age-based priority).
package cm

import (
	"fmt"

	"repro/internal/model"
)

// Decision is a contention manager's verdict when transaction "me"
// finds a live transaction "victim" owning a t-variable it needs.
type Decision int

const (
	// AbortVictim: forcefully abort the owner and take the variable.
	AbortVictim Decision = iota
	// Retry: back off and re-examine the owner (it may commit or abort
	// on its own). Managers must return Retry only finitely often per
	// conflict, or obstruction-freedom is lost.
	Retry
	// AbortSelf: abort the attacking transaction instead (used by
	// priority schemes when the victim outranks the attacker).
	AbortSelf
)

// String returns a short name for the decision.
func (d Decision) String() string {
	switch d {
	case AbortVictim:
		return "abort-victim"
	case Retry:
		return "retry"
	case AbortSelf:
		return "abort-self"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// TxInfo is the attacker's and victim's bookkeeping exposed to managers.
type TxInfo struct {
	ID    model.TxID
	Start int64 // begin ticket; smaller = older (Timestamp priority)
	Ops   int64 // operations performed so far (Karma priority)
}

// Manager decides conflicts. attempt counts how many times this
// particular acquisition has already been retried (0 on first sight).
// Implementations must be safe for concurrent use.
type Manager interface {
	Name() string
	OnConflict(me, victim TxInfo, attempt int) Decision
}

// Aggressive always aborts the victim immediately. Maximum progress for
// the attacker, maximum wasted work for the victim.
type Aggressive struct{}

// Name implements Manager.
func (Aggressive) Name() string { return "aggressive" }

// OnConflict implements Manager.
func (Aggressive) OnConflict(_, _ TxInfo, _ int) Decision { return AbortVictim }

// Polite retries with backoff up to MaxTries times, then aborts the
// victim. The canonical "give the owner a chance" manager.
type Polite struct {
	// MaxTries is the retry bound; 0 means the default of 8.
	MaxTries int
}

// Name implements Manager.
func (Polite) Name() string { return "polite" }

// OnConflict implements Manager.
func (m Polite) OnConflict(_, _ TxInfo, attempt int) Decision {
	max := m.MaxTries
	if max == 0 {
		max = 8
	}
	if attempt < max {
		return Retry
	}
	return AbortVictim
}

// Karma ranks transactions by accumulated work (operation count): an
// attacker with less karma than the victim retries, with the patience
// proportional to the karma gap, before eventually aborting the victim.
type Karma struct {
	// MaxTries bounds the retries regardless of karma gap; 0 means 16.
	MaxTries int
}

// Name implements Manager.
func (Karma) Name() string { return "karma" }

// OnConflict implements Manager.
func (m Karma) OnConflict(me, victim TxInfo, attempt int) Decision {
	max := m.MaxTries
	if max == 0 {
		max = 16
	}
	if victim.Ops > me.Ops && attempt < max && int64(attempt) < victim.Ops-me.Ops {
		return Retry
	}
	return AbortVictim
}

// Timestamp gives priority to the older transaction: a younger attacker
// retries a bounded number of times and then aborts itself, while an
// older attacker aborts the victim. (This is the Greedy manager's core
// rule; with bounded retries it stays obstruction-free.)
type Timestamp struct {
	// MaxTries bounds the young attacker's retries; 0 means 8.
	MaxTries int
}

// Name implements Manager.
func (Timestamp) Name() string { return "timestamp" }

// OnConflict implements Manager.
func (m Timestamp) OnConflict(me, victim TxInfo, attempt int) Decision {
	if me.Start < victim.Start {
		return AbortVictim // I am older; the victim yields.
	}
	max := m.MaxTries
	if max == 0 {
		max = 8
	}
	if attempt < max {
		return Retry
	}
	return AbortSelf
}

// All returns one instance of every manager, for sweeps and ablations.
func All() []Manager {
	return []Manager{Aggressive{}, Polite{}, Karma{}, Timestamp{}}
}
