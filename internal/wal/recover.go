package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Recovered reports what Open reconstructed from the log directory.
type Recovered struct {
	// State holds the tail: every effect replayed past the snapshot
	// cut. When recovery used a legacy full snapshot (Base == nil) it
	// is the complete store content, as before. When recovery used a
	// manifest chain, the snapshot part lives in Base and State holds
	// only the replayed tail — iterate with Each or materialize with
	// Merged instead of reading State directly.
	State map[string]uint64
	// Base holds the chain's per-shard images (nil when a legacy
	// snapshot or no snapshot was used) in wire form (see ShardBase),
	// deliberately not merged into a map — loading an image is file
	// read + CRC + one validating walk with no per-entry hash+insert
	// or allocation, which is what keeps chain recovery bounded by
	// dirty-set + tail rather than paying map construction over the
	// whole store. Keys overridden or deleted by the tail are shadowed
	// via State and Tombstones.
	Base []ShardBase
	// Tombstones are the keys the tail deleted (chain recovery only):
	// they may still appear in Base and must be skipped when merging.
	Tombstones map[string]struct{}
	// Keys is the recovered entry count — it survives a consumer
	// nil-ing State/Base after loading them.
	Keys int
	// LastSeq is the highest sequence number recovered; appending
	// resumes at LastSeq+1.
	LastSeq uint64
	// SnapshotSeq is the cut of the snapshot used (0 = none found).
	SnapshotSeq uint64
	// Records is the number of log records replayed on top of the
	// snapshot.
	Records int
	// TornTail reports that the last segment ended in an incomplete or
	// CRC-invalid record — the expected shape of a crash mid-write. The
	// torn bytes were truncated away; every record before them
	// survived.
	TornTail bool
}

// Each calls fn once per recovered key with its final value, walking
// the chain base (skipping entries the tail overrode or deleted) and
// then the tail itself. It stops on the first error.
func (r *Recovered) Each(fn func(key string, val uint64) error) error {
	for s := range r.Base {
		err := r.Base[s].walk(func(k string, v uint64) error {
			if _, ok := r.State[k]; ok {
				return nil
			}
			if _, ok := r.Tombstones[k]; ok {
				return nil
			}
			return fn(k, v)
		})
		if err != nil {
			return err
		}
	}
	for k, v := range r.State {
		if err := fn(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Merged materializes the full recovered state as one map — the
// convenience for checks and small stores; the server loads via Each
// and never builds this map.
func (r *Recovered) Merged() map[string]uint64 {
	m := make(map[string]uint64, r.Keys)
	r.Each(func(k string, v uint64) error {
		m[k] = v
		return nil
	})
	return m
}

// Open recovers the log directory (creating it if missing) and returns
// a Log ready to append, together with the recovered state: the latest
// valid snapshot, with every log record after its cut replayed on top.
// A torn final record — a crash mid-write — is truncated away; a
// corrupt record anywhere before the tail is an error, because
// replaying past a hole would silently drop committed transactions.
// Appending resumes in a fresh segment numbered after the last
// existing one.
func Open(opts Options) (*Log, Recovered, error) {
	opts.fill()
	rec := Recovered{State: map[string]uint64{}}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, rec, err
	}
	ents, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, rec, err
	}

	// cand is one snapshot candidate: a manifest chain or a legacy full
	// image at a cut.
	type cand struct {
		cut   uint64
		chain bool
	}
	var segIdxs []int
	var cands []cand
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted snapshot or manifest write; rename never
			// happened, so no complete chain references it.
			opts.FS.Remove(filepath.Join(opts.Dir, name))
		case parseSegIdx(name) >= 0:
			segIdxs = append(segIdxs, parseSegIdx(name))
		default:
			if seq, ok := parseSnapName(name); ok {
				cands = append(cands, cand{cut: seq})
			} else if cut, ok := parseManifestName(name); ok {
				cands = append(cands, cand{cut: cut, chain: true})
			}
		}
	}
	sort.Ints(segIdxs)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cut != cands[j].cut {
			return cands[i].cut > cands[j].cut
		}
		return cands[i].chain && !cands[j].chain
	})

	// Newest loadable snapshot wins; an unreadable one (half-written
	// before an old crash, bitrot) falls back to the one before it —
	// correctness is unaffected because the full log tail since that
	// older cut is replayed. A manifest chain loads only whole: any
	// missing or corrupt referenced image poisons the entire chain
	// (loadChain), so recovery never sees a partial chain — the same
	// all-or-nothing discipline as the structural-hole refusal below.
	for _, c := range cands {
		if c.chain {
			base, err := loadChain(opts.FS, opts.Dir, c.cut)
			if err != nil {
				continue
			}
			rec.Base = base
			rec.Tombstones = map[string]struct{}{}
		} else {
			img, err := opts.FS.ReadFile(filepath.Join(opts.Dir, snapName(c.cut)))
			if err != nil {
				continue
			}
			cut, state, err := decodeSnapshot(img)
			if err != nil || cut != c.cut {
				continue
			}
			rec.State = state
		}
		rec.SnapshotSeq = c.cut
		rec.LastSeq = c.cut
		break
	}

	l := &Log{
		opts: opts,
		wake: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		exec: make(chan execReq),
	}
	l.cond = sync.NewCond(&l.mu)

	// next is the continuity cursor: the seq the next frame must carry.
	// Zero means "not yet anchored" (anchored by the first segment's
	// header).
	var next uint64
	for i, idx := range segIdxs {
		last := i == len(segIdxs)-1
		if err := l.replaySegment(idx, i == 0, last, &rec, &next); err != nil {
			return nil, rec, err
		}
	}

	// Count recovered keys. This pass doubles as the chain's structural
	// validation: each image's entry stream is walked exactly once
	// (bounds-checked by ShardBase.walk), so Open never hands back a
	// base it could not fully read.
	rec.Keys = len(rec.State)
	shadowed := len(rec.State) != 0 || len(rec.Tombstones) != 0
	for s := range rec.Base {
		err := rec.Base[s].walk(func(k string, _ uint64) error {
			if shadowed {
				if _, ok := rec.State[k]; ok {
					return nil
				}
				if _, ok := rec.Tombstones[k]; ok {
					return nil
				}
			}
			rec.Keys++
			return nil
		})
		if err != nil {
			return nil, rec, fmt.Errorf("wal: snapshot chain at cut %d: %w; refusing to recover from an unreadable base", rec.SnapshotSeq, err)
		}
	}
	nextIdx := 1
	if n := len(segIdxs); n > 0 {
		nextIdx = segIdxs[n-1] + 1
	}
	l.lastSeq = rec.LastSeq
	l.durableSeq = rec.LastSeq
	l.snapSeq = rec.SnapshotSeq
	if err := l.openSegment(nextIdx, rec.LastSeq+1); err != nil {
		return nil, rec, err
	}
	go l.run()
	return l, rec, nil
}

// replaySegment replays one segment file into rec, registering it in
// the live segment list. In the last segment a torn tail is truncated
// off; anywhere else it is corruption and an error.
//
// Sequence continuity is enforced: record seqs increment by exactly
// one, within and across segments, and the first surviving segment
// must adjoin the snapshot cut (firstSeq <= cut+1). A gap means
// committed records went missing — a snapshot lost after its segments
// were truncated away, or a deleted middle segment — and replaying
// past it would silently drop committed transactions, so recovery
// refuses instead.
func (l *Log) replaySegment(idx int, first, last bool, rec *Recovered, next *uint64) error {
	path := filepath.Join(l.opts.Dir, segName(idx))
	b, err := l.opts.FS.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < segHeaderLen || string(b[:len(segMagic)]) != segMagic {
		if !last {
			return fmt.Errorf("wal: %s: bad segment header", path)
		}
		// A crash between file creation and the header fsync; the
		// segment carries nothing.
		rec.TornTail = len(b) > 0
		return l.opts.FS.Remove(path)
	}
	firstSeq := binary.LittleEndian.Uint64(b[len(segMagic):])
	if first {
		// The oldest surviving segment must adjoin the snapshot:
		// everything before it was truncated as covered.
		if firstSeq > rec.SnapshotSeq+1 {
			return fmt.Errorf("wal: %s: log starts at seq %d but the snapshot covers only up to %d — records %d..%d are missing (lost or unreadable snapshot?); refusing to recover a hole",
				path, firstSeq, rec.SnapshotSeq, rec.SnapshotSeq+1, firstSeq-1)
		}
		*next = firstSeq
	} else if firstSeq != *next {
		return fmt.Errorf("wal: %s: segment starts at seq %d, want %d — a middle segment is missing; refusing to recover a hole",
			path, firstSeq, *next)
	}
	l.segs = append(l.segs, segment{idx: idx, firstSeq: firstSeq, path: path})
	off := segHeaderLen
	for off < len(b) {
		seq, payload, n, ok := parseFrame(b[off:])
		if !ok {
			if !last {
				return fmt.Errorf("wal: %s: corrupt record at offset %d (not the log tail)", path, off)
			}
			rec.TornTail = true
			return l.opts.FS.Truncate(path, int64(off))
		}
		if seq != *next {
			return fmt.Errorf("wal: %s: record seq %d at offset %d, want %d — refusing to recover a hole", path, seq, off, *next)
		}
		*next = seq + 1
		if seq > rec.SnapshotSeq {
			if err := applyPayload(rec.State, rec.Tombstones, payload); err != nil {
				return fmt.Errorf("wal: %s: record %d: %w", path, seq, err)
			}
			rec.Records++
		}
		if seq > rec.LastSeq {
			rec.LastSeq = seq
		}
		off += n
	}
	return nil
}

// parseSegIdx extracts the index of a segment file name, or -1.
func parseSegIdx(name string) int {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return -1
	}
	rest, ok = strings.CutSuffix(rest, ".seg")
	if !ok {
		return -1
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return -1
	}
	return n
}

// parseSnapName extracts the cut sequence of a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "snap-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".snap")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}
