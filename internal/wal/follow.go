package wal

// Replication support: the primary side of WAL shipping serves records
// to followers out of this file, and the replica side ingests them.
//
// A follower is addressed purely by sequence number. TailReader.Next
// blocks until the cursor's record is durable *on this node* — a
// record is never shipped before the local policy has persisted it, so
// under SyncAlways an ack to the client strictly precedes the record
// reaching any replica (the documented async-replication window).
// Reads come from the bounded in-memory tail when the cursor is recent,
// and from segment files (seq-addressed catch-up) when it is not; a
// cursor older than the oldest retained segment needs a snapshot
// (ErrSnapshotNeeded).
//
// Ingest reuses recovery's refusal discipline: AppendFrames verifies
// every frame's CRC and that sequence numbers increment by exactly one
// from the log's current tail — a corrupt or gapped stream is rejected
// loudly instead of diverging.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faultfs"
	"repro/internal/kv"
)

// ErrSnapshotNeeded reports that a follower's cursor points before the
// oldest retained segment: the history was truncated by a snapshot and
// the follower must bootstrap from a snapshot image instead.
var ErrSnapshotNeeded = errors.New("wal: requested records truncated; snapshot needed")

// tailChunkMax is the soft cap on bytes one TailReader.Next call
// returns. A single frame larger than the cap is still returned whole —
// frames are never split.
const tailChunkMax = 256 << 10

// TailReader is a follower cursor over the log's record stream. Next
// is owned by one goroutine; Cancel may be called from any other.
type TailReader struct {
	l         *Log
	next      uint64 // seq of the next record to deliver
	cancelled bool   // guarded by l.mu
}

// Cancel unblocks a concurrent (or future) Next, which then returns
// ErrClosed — how the primary detaches a follower on shutdown.
func (tr *TailReader) Cancel() {
	tr.l.mu.Lock()
	tr.cancelled = true
	tr.l.cond.Broadcast()
	tr.l.mu.Unlock()
}

// NewTailReader positions a follower cursor at seq from (typically the
// follower's lastSeq+1). The first reader latches the in-memory tail
// mirror on (it stays on for the log's lifetime); records flushed
// before that are served from segment files.
func (l *Log) NewTailReader(from uint64) *TailReader {
	l.mu.Lock()
	l.tailOn = true
	l.mu.Unlock()
	return &TailReader{l: l, next: from}
}

// NextSeq returns the seq the next call to Next will deliver first.
func (tr *TailReader) NextSeq() uint64 { return tr.next }

// Next returns the next run of durable frames at the cursor, appended
// into scratch[:0] (callers reuse the returned slice as the next
// scratch). It blocks until at least one more record is durable under
// the log's policy. Errors: ErrSnapshotNeeded when the cursor's history
// was truncated, ErrClosed after Close, the latched fail-stop error
// after a disk failure.
func (tr *TailReader) Next(scratch []byte) ([]byte, error) {
	l := tr.l
	l.mu.Lock()
	for l.durableSeq < tr.next || tr.cancelled {
		if tr.cancelled {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if l.failed != nil {
			err := l.failed
			l.mu.Unlock()
			return nil, err
		}
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		l.cond.Wait()
	}

	// Fast path: the cursor is inside the in-memory tail.
	if len(l.tail) > 0 && tr.next >= l.tailFirst {
		out := scratch[:0]
		seq := l.tailFirst
		for off := 0; off < len(l.tail); seq++ {
			n := frameHeaderLen + int(binary.LittleEndian.Uint32(l.tail[off:]))
			if seq == tr.next {
				if len(out) > 0 && len(out)+n > tailChunkMax {
					break
				}
				out = append(out, l.tail[off:off+n]...)
				tr.next++
			}
			off += n
		}
		l.mu.Unlock()
		return out, nil
	}

	// Catch-up path: read the segment file holding the cursor.
	durable := l.durableSeq
	var seg segment
	found := false
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].firstSeq <= tr.next {
			seg = l.segs[i]
			found = true
			break
		}
	}
	l.mu.Unlock()
	if !found {
		return nil, ErrSnapshotNeeded
	}
	b, err := l.opts.FS.ReadFile(seg.path)
	if err != nil {
		// Lost a race with snapshot truncation; the cursor's history is
		// gone from disk.
		return nil, ErrSnapshotNeeded
	}
	if len(b) < segHeaderLen || string(b[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("wal: %s: bad segment header", seg.path)
	}
	out := scratch[:0]
	for off := segHeaderLen; off < len(b); {
		seq, _, n, ok := parseFrame(b[off:])
		if !ok || seq > durable {
			// Frames past the durable point may still be mid-write (or a
			// recovered torn tail); they are not shippable yet.
			break
		}
		if seq == tr.next {
			if len(out) > 0 && len(out)+n > tailChunkMax {
				break
			}
			out = append(out, b[off:off+n]...)
			tr.next++
		}
		off += n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("wal: %s: durable record %d missing from its segment — refusing to ship a hole", seg.path, tr.next)
	}
	return out, nil
}

// OldestRetainedSeq returns the first sequence number still present in
// segment files. Followers whose cursor is older need a snapshot.
func (l *Log) OldestRetainedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segs) == 0 {
		return l.lastSeq + 1
	}
	return l.segs[0].firstSeq
}

// ValidateFrames walks b, which must be a run of complete CRC-valid
// frames whose sequence numbers increment by exactly one, and returns
// the first and last seq plus the record count. It is the stream-ingest
// twin of recovery's contiguity refusal: a short frame, CRC mismatch or
// seq gap is an error, never silently skipped.
func ValidateFrames(b []byte) (first, last uint64, count int, err error) {
	for len(b) > 0 {
		seq, _, n, ok := parseFrame(b)
		if !ok {
			return 0, 0, 0, fmt.Errorf("wal: corrupt or truncated frame in stream (offset of record %d)", last+1)
		}
		if count == 0 {
			first = seq
		} else if seq != last+1 {
			return 0, 0, 0, fmt.Errorf("wal: stream record seq %d follows %d — refusing a hole", seq, last)
		}
		last = seq
		count++
		b = b[n:]
	}
	return first, last, count, nil
}

// AppendFrames ingests a run of already-framed records shipped from a
// primary, preserving their original sequence numbers. The frames must
// be CRC-valid, internally contiguous, and start at exactly lastSeq+1 —
// the same refusal recovery applies to on-disk holes. The records flow
// through the normal group-commit path (and therefore into this node's
// own follower tail, so replicas can be chained). AppendFrames does not
// wait for durability: a replica that crashes replays its own WAL, and
// anything lost beyond that is re-shipped by the primary on reconnect.
func (l *Log) AppendFrames(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	first, last, _, err := ValidateFrames(b)
	if err != nil {
		return err
	}
	l.mu.Lock()
	if err := l.failed; err != nil {
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if first != l.lastSeq+1 {
		l.mu.Unlock()
		return fmt.Errorf("wal: stream starts at seq %d but the log ends at %d — refusing to append a hole", first, l.lastSeq)
	}
	if len(l.pending) == 0 {
		l.pendingFirst = first
	}
	l.pending = append(l.pending, b...)
	l.lastSeq = last
	select {
	case l.wake <- struct{}{}:
	default:
	}
	l.mu.Unlock()
	return nil
}

// decodeEffects parses one record payload into kv effects appended to
// dst. It is applyPayload with effects instead of a state map.
func decodeEffects(dst []kv.Effect, payload []byte) ([]kv.Effect, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("wal: bad effect count")
	}
	payload = payload[n:]
	for i := uint64(0); i < count; i++ {
		if len(payload) == 0 {
			return dst, fmt.Errorf("wal: effect list cut short")
		}
		tag := payload[0]
		payload = payload[1:]
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return dst, fmt.Errorf("wal: bad key length")
		}
		key := string(payload[n : n+int(klen)])
		payload = payload[n+int(klen):]
		switch tag {
		case tagPut:
			val, n := binary.Uvarint(payload)
			if n <= 0 {
				return dst, fmt.Errorf("wal: bad value")
			}
			payload = payload[n:]
			dst = append(dst, kv.Effect{Key: key, Val: val})
		case tagDel:
			dst = append(dst, kv.Effect{Key: key, Del: true})
		default:
			return dst, fmt.Errorf("wal: unknown effect tag %d", tag)
		}
	}
	return dst, nil
}

// DecodeFrames walks a run of frames, calling fn once per record with
// its seq and decoded effects. The effects slice is reused across
// calls — fn must not retain it.
func DecodeFrames(b []byte, fn func(seq uint64, effects []kv.Effect) error) error {
	var eff []kv.Effect
	for len(b) > 0 {
		seq, payload, n, ok := parseFrame(b)
		if !ok {
			return fmt.Errorf("wal: corrupt frame in stream")
		}
		var err error
		eff, err = decodeEffects(eff[:0], payload)
		if err != nil {
			return err
		}
		if err := fn(seq, eff); err != nil {
			return err
		}
		b = b[n:]
	}
	return nil
}

// EncodeFrame appends one record frame for a committed transaction's
// effects — the exact bytes Append would log — for tests and the
// campaign's replica-apply determinism checks.
func EncodeFrame(p []byte, seq uint64, effects []kv.Effect) []byte {
	return appendFrame(p, seq, effects)
}

// DecodeSnapshot parses a snapshot payload into its cut and state map —
// the replica-bootstrap twin of recovery's snapshot load. It accepts
// both a legacy full image and a chain bundle (see chain.go); a bundle
// is verified whole before any of it is merged, so the caller never
// observes a partial chain.
func DecodeSnapshot(img []byte) (cut uint64, state map[string]uint64, err error) {
	if !isBundle(img) {
		return decodeSnapshot(img)
	}
	cut, files, err := decodeBundle(img)
	if err != nil {
		return 0, nil, err
	}
	_, base, err := bundleChain(cut, files)
	if err != nil {
		return 0, nil, err
	}
	n := 0
	for s := range base {
		n += base[s].Len()
	}
	state = make(map[string]uint64, n)
	for s := range base {
		err := base[s].walk(func(k string, v uint64) error {
			// Cloned so the map does not pin the whole bundle buffer.
			state[strings.Clone(k)] = v
			return nil
		})
		if err != nil {
			return 0, nil, err
		}
	}
	return cut, state, nil
}

// NewestSnapshot returns the payload and cut of the newest loadable
// snapshot in the log directory, for serving to a bootstrapping
// replica: a chain becomes a bundle of its manifest plus images, a
// legacy snapshot ships as its raw file. ok is false when no loadable
// snapshot exists. snapMu keeps a concurrent cut's truncation from
// removing chain files mid-assembly.
func (l *Log) NewestSnapshot() (img []byte, cut uint64, ok bool, err error) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	ents, err := l.opts.FS.ReadDir(l.opts.Dir)
	if err != nil {
		return nil, 0, false, err
	}
	type cand struct {
		cut   uint64
		chain bool
	}
	var cands []cand
	for _, e := range ents {
		if seq, isSnap := parseSnapName(e.Name()); isSnap {
			cands = append(cands, cand{cut: seq})
		} else if c, isMani := parseManifestName(e.Name()); isMani {
			cands = append(cands, cand{cut: c, chain: true})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cut != cands[j].cut {
			return cands[i].cut > cands[j].cut
		}
		return cands[i].chain && !cands[j].chain
	})
	for _, c := range cands {
		if c.chain {
			b, err := l.bundleFor(c.cut)
			if err != nil {
				continue
			}
			return b, c.cut, true, nil
		}
		b, err := l.opts.FS.ReadFile(filepath.Join(l.opts.Dir, snapName(c.cut)))
		if err != nil {
			continue
		}
		if _, _, err := decodeSnapshot(b); err != nil {
			continue
		}
		return b, c.cut, true, nil
	}
	return nil, 0, false, nil
}

// bundleFor reads the chain committed at cut and packages it as a wire
// bundle. Any unreadable or inconsistent piece fails the whole bundle.
func (l *Log) bundleFor(cut uint64) ([]byte, error) {
	mb, err := l.opts.FS.ReadFile(filepath.Join(l.opts.Dir, manifestName(cut)))
	if err != nil {
		return nil, err
	}
	mcut, imgCuts, err := decodeManifest(mb)
	if err != nil {
		return nil, err
	}
	if mcut != cut {
		return nil, fmt.Errorf("wal: manifest %s declares cut %d", manifestName(cut), mcut)
	}
	files := make([]bundleFile, 0, len(imgCuts)+1)
	files = append(files, bundleFile{name: manifestName(cut), data: mb})
	for s, ic := range imgCuts {
		name := shardImageName(ic, s)
		ib, err := l.opts.FS.ReadFile(filepath.Join(l.opts.Dir, name))
		if err != nil {
			return nil, err
		}
		icut, idx, _, err := decodeShardImage(ib)
		if err != nil {
			return nil, err
		}
		if icut != ic || idx != s {
			return nil, fmt.Errorf("wal: %s declares cut %d shard %d", name, icut, idx)
		}
		files = append(files, bundleFile{name: name, data: ib})
	}
	return encodeBundle(cut, files), nil
}

// InstallSnapshot replaces an open log's history with a shipped
// snapshot payload (legacy image or chain bundle) — the replica path
// for falling too far behind a primary that truncated the records the
// replica still needs. The payload is persisted as the newest snapshot,
// the covered segments are removed, a fresh segment adjoining the cut
// is opened, and the log's sequence numbers jump to the cut: the next
// record is cut+1. The cut must be ahead of the log's last seq —
// installing a snapshot that does not advance the log is refused. The
// caller owns reconciling the store state to the payload (see
// wal.DecodeSnapshot).
//
// Crash safety: the payload is durable before any history is removed,
// so every intermediate crash state recovers — to the old history
// before the commit rename, to the snapshot plus whatever contiguous
// history survives after it.
func (l *Log) InstallSnapshot(img []byte) (uint64, error) {
	cut, err := snapshotPayloadCut(img)
	if err != nil {
		return 0, err
	}
	return cut, l.onLogGoroutine(func() error { return l.installSnapshot(img, cut) })
}

// snapshotPayloadCut fully validates a snapshot payload — either format
// — and returns its cut.
func snapshotPayloadCut(img []byte) (uint64, error) {
	if isBundle(img) {
		cut, files, err := decodeBundle(img)
		if err != nil {
			return 0, err
		}
		if _, _, err := bundleChain(cut, files); err != nil {
			return 0, err
		}
		return cut, nil
	}
	cut, _, err := decodeSnapshot(img)
	return cut, err
}

// persistSnapshotPayload writes a validated snapshot payload into dir
// with the cut's crash-safety ordering and returns the set of snapshot
// file names it owns. A legacy image goes through temp write + rename;
// a bundle writes its images first (each fsynced, then the directory)
// and commits via the manifest's temp write + rename — exactly the
// ordering a live incremental cut uses, so every crash state recovers.
func persistSnapshotPayload(fsys faultfs.FS, dir string, img []byte, cut uint64) (keep map[string]bool, err error) {
	if !isBundle(img) {
		tmp := filepath.Join(dir, "snapshot.tmp")
		if err := fsys.WriteFile(tmp, img, 0o644); err != nil {
			return nil, err
		}
		if err := fsyncFile(fsys, tmp); err != nil {
			return nil, err
		}
		if err := fsys.Rename(tmp, filepath.Join(dir, snapName(cut))); err != nil {
			return nil, err
		}
		if err := syncDir(fsys, dir); err != nil {
			return nil, err
		}
		return map[string]bool{snapName(cut): true}, nil
	}
	bcut, files, err := decodeBundle(img)
	if err != nil {
		return nil, err
	}
	if bcut != cut {
		return nil, fmt.Errorf("wal: bundle declares cut %d, want %d", bcut, cut)
	}
	if _, _, err := bundleChain(cut, files); err != nil {
		return nil, err
	}
	keep = make(map[string]bool, len(files))
	var manifest []byte
	for _, f := range files {
		keep[f.name] = true
		if f.name == manifestName(cut) {
			manifest = f.data
			continue
		}
		path := filepath.Join(dir, f.name)
		if err := fsys.WriteFile(path, f.data, 0o644); err != nil {
			return nil, err
		}
		if err := fsyncFile(fsys, path); err != nil {
			return nil, err
		}
	}
	if err := syncDir(fsys, dir); err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := fsys.WriteFile(tmp, manifest, 0o644); err != nil {
		return nil, err
	}
	if err := fsyncFile(fsys, tmp); err != nil {
		return nil, err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName(cut))); err != nil {
		return nil, err
	}
	if err := syncDir(fsys, dir); err != nil {
		return nil, err
	}
	return keep, nil
}

// installSnapshot is the log-goroutine body of InstallSnapshot.
func (l *Log) installSnapshot(img []byte, cut uint64) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	l.flushBatch()
	l.mu.Lock()
	if err := l.failed; err != nil {
		l.mu.Unlock()
		return err
	}
	if cut <= l.lastSeq {
		last := l.lastSeq
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot cut %d does not advance the log (last seq %d)", cut, last)
	}
	old := make([]segment, len(l.segs))
	copy(old, l.segs)
	l.mu.Unlock()

	// Persist the payload first: from here on every crash state recovers.
	keep, err := persistSnapshotPayload(l.opts.FS, l.opts.Dir, img, cut)
	if err != nil {
		return err
	}

	// Drop the covered history. The old segments are all <= lastSeq <
	// cut+1, so none of their records outlive the snapshot.
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	for _, s := range old {
		l.opts.FS.Remove(s.path)
	}
	lastIdx := old[len(old)-1].idx

	l.mu.Lock()
	l.segs = l.segs[:0]
	l.lastSeq, l.durableSeq, l.snapSeq = cut, cut, cut
	l.pending = l.pending[:0]
	l.tail = l.tail[:0]
	l.tailFirst = 0
	l.cond.Broadcast()
	l.mu.Unlock()
	// Installed images were cut under the shipper's shard partition,
	// which need not match this process's handle ordering — a local
	// incremental cut must never link to them (see chain.go), so the
	// next cut is forced full.
	l.chainCut, l.chainImgs, l.chainEpochs = 0, nil, nil
	if err := l.openSegment(lastIdx+1, cut+1); err != nil {
		return err
	}

	// Superseded snapshot artifacts; removal failures only cost disk.
	l.cleanSnapshotFiles(keep)
	return nil
}

// InstallSnapshotImage validates a snapshot payload (legacy image or
// chain bundle) and writes it into dir as canonical snapshot files so a
// subsequent Open recovers from it — the replica-bootstrap install
// path. The caller re-opens the log afterwards.
func InstallSnapshotImage(fsys faultfs.FS, dir string, img []byte) (cut uint64, err error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	cut, err = snapshotPayloadCut(img)
	if err != nil {
		return 0, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	if _, err := persistSnapshotPayload(fsys, dir, img, cut); err != nil {
		return 0, err
	}
	return cut, nil
}
