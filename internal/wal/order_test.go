package wal

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/kv"
	"repro/internal/nztm"
)

// TestHookOrderMatchesCommitOrder pins the commit-order contract end
// to end: with a hook installed, the store's shard commit-order locks
// must make WAL append order agree with engine serialization order.
// Eight sessions hammer a handful of *shared* keys concurrently; after
// the dust settles, replaying the log must reproduce the store's final
// in-memory values exactly. Without the commit-order locks, a
// later-serialized write can reach the log first and replay resurrects
// the stale value — this test catches that as a mismatch on the hot
// keys.
func TestHookOrderMatchesCommitOrder(t *testing.T) {
	dir := t.TempDir()
	store := kv.New(nztm.New(), 4, 16)
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	store.SetCommitHook(l.Append)

	keys := []string{"hot0", "hot1", "hot2", "cold0", "cold1", "cold2", "cold3"}
	const workers, ops = 8, 400
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			se := store.NewSession()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 3))
			for i := 0; i < ops; i++ {
				// Mostly the contended hot keys, occasionally a batch
				// spanning shards, occasionally a delete.
				switch rng.Intn(10) {
				case 0:
					_, err := se.Delete(nil, keys[rng.Intn(len(keys))])
					errs[w] = err
				case 1:
					_, err := se.Txn(nil, []kv.Op{
						{Kind: kv.OpPut, Handle: se.Handle(keys[rng.Intn(3)]), Val: rng.Uint64() % 1000},
						{Kind: kv.OpPut, Handle: se.Handle(keys[3+rng.Intn(4)]), Val: rng.Uint64() % 1000},
					})
					errs[w] = err
				default:
					_, err := se.Put(nil, keys[rng.Intn(3)], rng.Uint64()%1000)
					errs[w] = err
				}
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// The store's final word on every key...
	want := map[string]uint64{}
	for _, k := range keys {
		v, found, err := store.Get(nil, k)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			want[k] = v
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// ...must equal the log's replay, key for key.
	_, rec := openT(t, dir, Options{})
	for _, k := range keys {
		gv, gok := rec.State[k]
		wv, wok := want[k]
		if gv != wv || gok != wok {
			t.Fatalf("replayed %s = (%d,%v), store says (%d,%v) — log order diverged from commit order", k, gv, gok, wv, wok)
		}
	}
	if len(rec.State) != len(want) {
		t.Fatalf("replayed %d keys, store has %d", len(rec.State), len(want))
	}
}

// TestStoreSinglesReachHook pins that the Store-level single-key
// writes (not just session batches) flow through the commit hook.
func TestStoreSinglesReachHook(t *testing.T) {
	store := kv.New(nztm.New(), 2, 8)
	var got []kv.Effect
	store.SetCommitHook(func(effs []kv.Effect) error {
		for _, e := range effs {
			got = append(got, e)
		}
		return nil
	})
	if _, err := store.Put(nil, "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.CAS(nil, "a", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.CAS(nil, "a", 99, 3); err != nil { // mismatch: no effect
		t.Fatal(err)
	}
	if _, err := store.Delete(nil, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Delete(nil, "a"); err != nil { // miss: no effect
		t.Fatal(err)
	}
	if _, _, err := store.Get(nil, "a"); err != nil { // read: no effect
		t.Fatal(err)
	}
	want := []kv.Effect{{Key: "a", Val: 1}, {Key: "a", Val: 2}, {Key: "a", Del: true}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("hook saw %v, want %v", got, want)
	}
}
