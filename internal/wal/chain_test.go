package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kv"
)

// fakeSource is a SnapshotSource over plain maps: the test mirrors every
// appended effect into it and bumps epochs by hand, standing in for the
// kv store's commit-hook bumps.
type fakeSource struct {
	epochs []uint64
	shards []map[string]uint64
	dumps  []int // DumpShard call count, per shard
}

func newFakeSource(n int) *fakeSource {
	fs := &fakeSource{
		epochs: make([]uint64, n),
		shards: make([]map[string]uint64, n),
		dumps:  make([]int, n),
	}
	for i := range fs.shards {
		fs.shards[i] = map[string]uint64{}
	}
	return fs
}

func (f *fakeSource) Shards() int                   { return len(f.shards) }
func (f *fakeSource) DirtyEpochLocked(i int) uint64 { return f.epochs[i] }
func (f *fakeSource) DumpShard(i int) ([]kv.Pair, error) {
	f.dumps[i]++
	pairs := make([]kv.Pair, 0, len(f.shards[i]))
	for k, v := range f.shards[i] {
		pairs = append(pairs, kv.Pair{Key: k, Val: v})
	}
	return pairs, nil
}

// apply mirrors one batch into shard sh (bumping its epoch) and appends
// it to the log, like a commit hook would.
func (f *fakeSource) apply(t *testing.T, l *Log, sh int, effects []kv.Effect) {
	t.Helper()
	if err := l.Append(effects); err != nil {
		t.Fatalf("Append: %v", err)
	}
	for _, e := range effects {
		if e.Del {
			delete(f.shards[sh], e.Key)
		} else {
			f.shards[sh][e.Key] = e.Val
		}
	}
	f.epochs[sh]++
}

func (f *fakeSource) merged() map[string]uint64 {
	m := map[string]uint64{}
	for _, sh := range f.shards {
		for k, v := range sh {
			m[k] = v
		}
	}
	return m
}

func listSnapshotFiles(t *testing.T, dir string) (manifests, images, snaps []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".mf"):
			manifests = append(manifests, name)
		case strings.HasSuffix(name, ".shard"):
			images = append(images, name)
		case strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	return
}

func TestIncrementalCutDumpsOnlyDirtyShards(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	src := newFakeSource(4)
	for i := 0; i < 4; i++ {
		src.apply(t, l, i, []kv.Effect{put(fmt.Sprintf("s%d-a", i), uint64(i))})
	}

	// First cut of the log's lifetime: full, every shard dumped.
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	for i, n := range src.dumps {
		if n != 1 {
			t.Fatalf("full cut dumped shard %d %d times, want 1", i, n)
		}
	}

	// Dirty only shard 2; the next cut must re-dump it and nothing else.
	src.apply(t, l, 2, []kv.Effect{put("s2-b", 22)})
	src.apply(t, l, 2, []kv.Effect{del("s2-a")})
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc #2: %v", err)
	}
	for i, n := range src.dumps {
		want := 1
		if i == 2 {
			want = 2
		}
		if n != want {
			t.Fatalf("after incremental cut shard %d dumped %d times, want %d", i, n, want)
		}
	}

	// Exactly one manifest; shard 2's image is at the new cut, the other
	// three still link to the full cut's images.
	manifests, images, snaps := listSnapshotFiles(t, dir)
	if len(manifests) != 1 || len(snaps) != 0 {
		t.Fatalf("after cuts: manifests=%v snaps=%v", manifests, snaps)
	}
	if len(images) != 4 {
		t.Fatalf("kept %d shard images %v, want 4", len(images), images)
	}
	fresh := 0
	for _, img := range images {
		cut, _, ok := parseShardImageName(img)
		if !ok {
			t.Fatalf("bad image name %q", img)
		}
		if cut == 6 {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d images at the incremental cut, want 1 (only the dirty shard)", fresh)
	}

	// Tail past the cut, then recover: base + tail must merge to the
	// reference state and replay only the tail.
	src.apply(t, l, 0, []kv.Effect{put("s0-b", 100)})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if rec.Base == nil {
		t.Fatalf("recovery ignored the chain (Base == nil)")
	}
	if rec.SnapshotSeq != 6 || rec.Records != 1 {
		t.Fatalf("recovered cut=%d records=%d, want cut=6 records=1", rec.SnapshotSeq, rec.Records)
	}
	if got, want := rec.Merged(), src.merged(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.Keys != len(src.merged()) {
		t.Fatalf("rec.Keys = %d, want %d", rec.Keys, len(src.merged()))
	}
}

func TestChainTailDeleteShadowsBase(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	src := newFakeSource(2)
	src.apply(t, l, 0, []kv.Effect{put("a", 1), put("b", 2)})
	src.apply(t, l, 1, []kv.Effect{put("c", 3)})
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	// Tail: delete a base key, overwrite another, re-put a deleted one.
	src.apply(t, l, 0, []kv.Effect{del("a"), put("b", 20)})
	src.apply(t, l, 1, []kv.Effect{del("c")})
	src.apply(t, l, 1, []kv.Effect{put("c", 30)})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	want := map[string]uint64{"b": 20, "c": 30}
	if got := rec.Merged(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.Keys != 2 {
		t.Fatalf("rec.Keys = %d, want 2", rec.Keys)
	}
}

func TestBrokenChainRefusedLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	src := newFakeSource(3)
	for i := 0; i < 3; i++ {
		src.apply(t, l, i, []kv.Effect{put(fmt.Sprintf("k%d", i), uint64(i))})
	}
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	// Enough churn to rotate segments — flushed before the cut, so the
	// cut's truncation actually drops the history the chain covers.
	pad := strings.Repeat("x", 64)
	for i := 0; i < 8; i++ {
		src.apply(t, l, 1, []kv.Effect{put("k1-"+pad, uint64(i))})
	}
	waitDurable(t, l, 11)
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc #2: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt one image the manifest references (a linked clean-shard
	// image from the first cut). The chain must be poisoned whole: with
	// the covered segments already truncated, recovery refuses rather
	// than serving a partial chain.
	_, images, _ := listSnapshotFiles(t, dir)
	corrupted := false
	for _, img := range images {
		if cut, _, _ := parseShardImageName(img); cut == 3 {
			b, err := os.ReadFile(filepath.Join(dir, img))
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			b[len(b)-1] ^= 0xFF
			if err := os.WriteFile(filepath.Join(dir, img), b, 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatalf("no linked image from the first cut found in %v", images)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatalf("Open loaded a partial chain")
	} else if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("Open error %q does not refuse the hole", err)
	}
}

func TestManifestTmpLeftoverRemoved(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	src := newFakeSource(2)
	src.apply(t, l, 0, []kv.Effect{put("a", 1)})
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-cut leaves manifest.tmp; the rename never happened so
	// the previous chain is still the newest complete one.
	tmp := filepath.Join(dir, "manifest.tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if rec.SnapshotSeq != 1 {
		t.Fatalf("recovered cut %d, want 1", rec.SnapshotSeq)
	}
	if got := rec.Merged(); !reflect.DeepEqual(got, map[string]uint64{"a": 1}) {
		t.Fatalf("recovered %v", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("manifest.tmp not cleaned up: %v", err)
	}
}

func TestLegacyThenIncrementalCut(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	src := newFakeSource(2)
	src.apply(t, l, 0, []kv.Effect{put("a", 1)})
	dump := func() ([]kv.Pair, error) {
		var pairs []kv.Pair
		for _, sh := range src.shards {
			for k, v := range sh {
				pairs = append(pairs, kv.Pair{Key: k, Val: v})
			}
		}
		return pairs, nil
	}
	if err := l.WriteSnapshot(dump); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	src.apply(t, l, 1, []kv.Effect{put("b", 2)})
	// The incremental cut supersedes the legacy snapshot (full, since no
	// chain base exists) and removes it.
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	manifests, images, snaps := listSnapshotFiles(t, dir)
	if len(manifests) != 1 || len(images) != 2 || len(snaps) != 0 {
		t.Fatalf("manifests=%v images=%v snaps=%v, want 1/2/0", manifests, images, snaps)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if got := rec.Merged(); !reflect.DeepEqual(got, map[string]uint64{"a": 1, "b": 2}) {
		t.Fatalf("recovered %v", got)
	}
}

func TestChainBundleShipAndInstall(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	src := newFakeSource(3)
	for i := 0; i < 3; i++ {
		src.apply(t, l, i, []kv.Effect{put(fmt.Sprintf("k%d", i), uint64(i+1))})
	}
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc: %v", err)
	}
	src.apply(t, l, 0, []kv.Effect{put("k0", 10)})
	if err := l.WriteSnapshotInc(src); err != nil {
		t.Fatalf("WriteSnapshotInc #2: %v", err)
	}

	img, cut, ok, err := l.NewestSnapshot()
	if err != nil || !ok {
		t.Fatalf("NewestSnapshot: ok=%v err=%v", ok, err)
	}
	if cut != 4 {
		t.Fatalf("NewestSnapshot cut = %d, want 4", cut)
	}
	if !isBundle(img) {
		t.Fatalf("chain did not ship as a bundle")
	}
	dcut, state, err := DecodeSnapshot(img)
	if err != nil || dcut != cut {
		t.Fatalf("DecodeSnapshot: cut=%d err=%v", dcut, err)
	}
	if want := src.merged(); !reflect.DeepEqual(state, want) {
		t.Fatalf("bundle state %v, want %v", state, want)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Cold install into a fresh dir, then recover from it.
	dir2 := t.TempDir()
	if icut, err := InstallSnapshotImage(nil, dir2, img); err != nil || icut != cut {
		t.Fatalf("InstallSnapshotImage: cut=%d err=%v", icut, err)
	}
	_, rec := openT(t, dir2, Options{})
	if rec.SnapshotSeq != cut || !reflect.DeepEqual(rec.Merged(), src.merged()) {
		t.Fatalf("cold install recovered cut=%d state=%v", rec.SnapshotSeq, rec.Merged())
	}

	// Live install into an open log that is behind the bundle's cut.
	dir3 := t.TempDir()
	l3, _ := openT(t, dir3, Options{Policy: SyncNever})
	if err := l3.Append([]kv.Effect{put("stale", 1)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if icut, err := l3.InstallSnapshot(img); err != nil || icut != cut {
		t.Fatalf("InstallSnapshot: cut=%d err=%v", icut, err)
	}
	if err := l3.Append([]kv.Effect{put("post", 9)}); err != nil {
		t.Fatalf("Append after install: %v", err)
	}
	if err := l3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec3 := openT(t, dir3, Options{})
	want := src.merged()
	want["post"] = 9
	if got := rec3.Merged(); !reflect.DeepEqual(got, want) {
		t.Fatalf("live install recovered %v, want %v", got, want)
	}
	if rec3.LastSeq != cut+1 {
		t.Fatalf("live install LastSeq = %d, want %d", rec3.LastSeq, cut+1)
	}
}
