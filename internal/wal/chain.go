package wal

// Chained incremental snapshots. A full-store snapshot (snap-*.snap)
// costs O(store) per cut and recovery O(store + tail); at the 10M-key
// production scale the ROADMAP targets, both are wrong. The chain
// format makes the cut cost proportional to the *dirty set* instead:
//
//   - Each cut writes one per-shard image file (shard-<cut>-<idx>.shard)
//     for every shard dirtied since the previous cut, then one manifest
//     (manifest-<cut>.mf) referencing, for every shard, either the fresh
//     image or the still-valid image of an earlier cut. Clean shards are
//     linked, not re-dumped.
//   - Recovery loads the newest manifest whose referenced images all
//     decode (falling back to older manifests, then to legacy full
//     snapshots), and replays only the log tail past the manifest cut.
//   - Truncation keeps exactly the newest manifest's files and the
//     segments past its cut, so disk and recovery time stay bounded by
//     dirty-set size + tail length regardless of store size.
//
// Dirty tracking is the two-read epoch protocol against kv's per-shard
// dirty counters (see kv.Store.DirtyEpochLocked). The writer reads the
// cut sequence C first, then every shard's epoch under that shard's
// commit-order lock. Because a write batch bumps its shards' epochs
// inside the commit-order critical section *after* its log seq was
// assigned, the locked epoch read observes the bump of every record
// with seq <= C. A shard whose epoch is unchanged since the epochs
// recorded at the previous manifest therefore received no effect that
// is not already in its previous image (any such record either applied
// before the previous dump, or bumped the epoch in between); false
// dirtiness — an epoch bump for a record past C — only costs an extra
// dump, never correctness, because tail replay is idempotent
// prefix-repair.
//
// Chains never link across process restarts: shard membership hashes
// intern handles, and intern order is not stable across recovery, so
// an image written by an earlier process may partition keys differently.
// The first cut after Open or InstallSnapshot is always a full cut
// (every shard dumped), after which incremental linking resumes.
//
// On-disk formats (little-endian, like record.go):
//
// Shard image (shard-<cut>-<idx>.shard):
//
//	[8]  magic "OFSHRD1\n"
//	[8]  cut sequence number
//	[4]  shard index
//	[8]  entry count
//	entries: uvarint keylen, key bytes, uvarint value (sorted by key)
//	[4]  IEEE CRC32 of everything after the magic
//
// Manifest (manifest-<cut>.mf):
//
//	[8]  magic "OFMANI1\n"
//	[8]  cut sequence number
//	[4]  shard count S
//	S × [8] per-shard image cut (the shard's image file is
//	        shard-<imagecut>-<idx>.shard)
//	[4]  IEEE CRC32 of everything after the magic
//
// Images are written and fsynced before the manifest, and the manifest
// goes through temp write + rename + directory sync, so a chain either
// exists completely or the previous complete chain is untouched — a
// crash anywhere inside a cut leaves the directory recoverable.
//
// Bundle (replication wire payload, never a directory file):
//
//	[8]  magic "OFBNDL1\n"
//	[8]  cut sequence number
//	[4]  file count
//	files: [2] name length, name bytes, [4] content length, content
//	[4]  IEEE CRC32 of everything after the magic
//
// A bundle packages a manifest plus its images so the one-blob
// replication snapshot protocol ('S' message) carries a chain without
// wire changes; DecodeSnapshot and InstallSnapshot dispatch on the
// magic and accept both bundles and legacy single images.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faultfs"
	"repro/internal/kv"
)

const (
	shardMagic  = "OFSHRD1\n"
	maniMagic   = "OFMANI1\n"
	bundleMagic = "OFBNDL1\n"
)

// SnapshotSource supplies the incremental snapshot writer with dirty
// tracking and per-shard dumps. kv.Store implements it; the recovery
// benchmark drives the writer with a synthetic source.
type SnapshotSource interface {
	// Shards returns the shard count (stable for the store's lifetime).
	Shards() int
	// DirtyEpochLocked returns shard i's dirty counter, observed under
	// the shard's commit-order lock so the read includes the bump of
	// every record whose sequence was assigned before this call began
	// (see kv.Store.DirtyEpochLocked for the ordering argument).
	DirtyEpochLocked(i int) uint64
	// DumpShard reads shard i's present keys in one read-only
	// transaction. Dumps of different shards may observe different
	// snapshot timestamps; the tail replay repairs the overlap.
	DumpShard(i int) ([]kv.Pair, error)
}

func manifestName(cut uint64) string { return fmt.Sprintf("manifest-%020d.mf", cut) }
func shardImageName(cut uint64, shard int) string {
	return fmt.Sprintf("shard-%020d-%05d.shard", cut, shard)
}

// parseManifestName extracts the cut of a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "manifest-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".mf")
	if !ok {
		return 0, false
	}
	cut, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return cut, true
}

// parseShardImageName extracts the (cut, shard) of an image file name.
func parseShardImageName(name string) (cut uint64, shard int, ok bool) {
	rest, ok := strings.CutPrefix(name, "shard-")
	if !ok {
		return 0, 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".shard")
	if !ok {
		return 0, 0, false
	}
	dash := strings.LastIndexByte(rest, '-')
	if dash < 0 {
		return 0, 0, false
	}
	cut, err := strconv.ParseUint(rest[:dash], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	s, err := strconv.Atoi(rest[dash+1:])
	if err != nil || s < 0 {
		return 0, 0, false
	}
	return cut, s, true
}

// isSnapshotArtifact reports whether name is any snapshot file the
// truncation passes manage: a legacy full image, a manifest, or a
// per-shard image.
func isSnapshotArtifact(name string) bool {
	if _, ok := parseSnapName(name); ok {
		return true
	}
	if _, ok := parseManifestName(name); ok {
		return true
	}
	if _, _, ok := parseShardImageName(name); ok {
		return true
	}
	return false
}

// ShardImage renders the image file for one shard at a cut. Entries are
// sorted by key in place, so a shard's image depends only on its
// logical content, not on dump order.
func ShardImage(cut uint64, shard int, pairs []kv.Pair) []byte {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	p := make([]byte, 0, 28+len(pairs)*16)
	p = append(p, shardMagic...)
	p = binary.LittleEndian.AppendUint64(p, cut)
	p = binary.LittleEndian.AppendUint32(p, uint32(shard))
	p = binary.LittleEndian.AppendUint64(p, uint64(len(pairs)))
	for i := range pairs {
		p = binary.AppendUvarint(p, uint64(len(pairs[i].Key)))
		p = append(p, pairs[i].Key...)
		p = binary.AppendUvarint(p, pairs[i].Val)
	}
	return binary.LittleEndian.AppendUint32(p, crc32.ChecksumIEEE(p[len(shardMagic):]))
}

// ShardBase is one decoded shard image held in its wire form: the
// entry region as a single string plus the entry count. Recovery only
// ever reads the base sequentially (Recovered.Each, the key count,
// the replication map merge), so no per-key strings, index arrays or
// map entries are ever built for it — loading a chain is file read +
// CRC + one walk, and the garbage collector never sees a per-entry
// object. That constant factor is what keeps restart time bounded by
// dirty-set + tail instead of store size. Keys yielded by walk share
// text's backing memory; callers that retain them long-term (map
// builders) should strings.Clone them.
type ShardBase struct {
	text  string // the image's entry region, verbatim
	count int
}

// Len returns the entry count.
func (b *ShardBase) Len() int { return b.count }

// uvarintStr is binary.Uvarint over a string, so walking entries never
// converts the region back to bytes.
func uvarintStr(s string) (uint64, int) {
	var x uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x80 {
			if i > 9 || i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<shift, i + 1
		}
		x |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// walk calls fn for every entry in key order, slicing keys out of the
// image's backing memory. A structural fault in the entry stream —
// impossible unless the CRC was forged, since the writer renders count
// and entries together — is reported as an error, never as a partial
// or silently-shortened walk.
func (b *ShardBase) walk(fn func(key string, val uint64) error) error {
	off := 0
	for i := 0; i < b.count; i++ {
		klen, n := uvarintStr(b.text[off:])
		if n <= 0 || uint64(len(b.text)-off-n) < klen {
			return fmt.Errorf("wal: shard image entry cut short")
		}
		key := b.text[off+n : off+n+int(klen)]
		off += n + int(klen)
		val, n := uvarintStr(b.text[off:])
		if n <= 0 {
			return fmt.Errorf("wal: shard image value cut short")
		}
		off += n
		if err := fn(key, val); err != nil {
			return err
		}
	}
	if off != len(b.text) {
		return fmt.Errorf("wal: shard image has %d trailing bytes", len(b.text)-off)
	}
	return nil
}

// decodeShardImage parses an image file into its cut, shard index and
// wire-form entry list. The CRC covers the whole body, so entries are
// not re-validated here; ShardBase.walk bounds-checks the stream when
// it is first read (Open's key-count pass does this for every loaded
// image).
func decodeShardImage(b []byte) (cut uint64, shard int, base ShardBase, err error) {
	if len(b) < len(shardMagic)+24 || string(b[:len(shardMagic)]) != shardMagic {
		return 0, 0, ShardBase{}, fmt.Errorf("wal: not a shard image")
	}
	body, tail := b[len(shardMagic):len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, 0, ShardBase{}, fmt.Errorf("wal: shard image CRC mismatch")
	}
	cut = binary.LittleEndian.Uint64(body)
	shard = int(binary.LittleEndian.Uint32(body[8:]))
	count := binary.LittleEndian.Uint64(body[12:])
	if count > uint64(len(body)-20) {
		return 0, 0, ShardBase{}, fmt.Errorf("wal: shard image declares %d entries in %d bytes", count, len(body)-20)
	}
	return cut, shard, ShardBase{text: string(body[20:]), count: int(count)}, nil
}

// encodeManifest renders a manifest for a cut and its per-shard image
// cuts.
func encodeManifest(cut uint64, imgCuts []uint64) []byte {
	p := make([]byte, 0, 24+len(imgCuts)*8)
	p = append(p, maniMagic...)
	p = binary.LittleEndian.AppendUint64(p, cut)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(imgCuts)))
	for _, c := range imgCuts {
		p = binary.LittleEndian.AppendUint64(p, c)
	}
	return binary.LittleEndian.AppendUint32(p, crc32.ChecksumIEEE(p[len(maniMagic):]))
}

// decodeManifest parses a manifest into its cut and per-shard image
// cuts.
func decodeManifest(b []byte) (cut uint64, imgCuts []uint64, err error) {
	if len(b) < len(maniMagic)+16 || string(b[:len(maniMagic)]) != maniMagic {
		return 0, nil, fmt.Errorf("wal: not a manifest")
	}
	body, tail := b[len(maniMagic):len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("wal: manifest CRC mismatch")
	}
	cut = binary.LittleEndian.Uint64(body)
	n := binary.LittleEndian.Uint32(body[8:])
	body = body[12:]
	if uint64(len(body)) != uint64(n)*8 {
		return 0, nil, fmt.Errorf("wal: manifest shard table cut short")
	}
	imgCuts = make([]uint64, n)
	for i := range imgCuts {
		imgCuts[i] = binary.LittleEndian.Uint64(body[i*8:])
	}
	for _, c := range imgCuts {
		if c > cut {
			return 0, nil, fmt.Errorf("wal: manifest references image cut %d past its own cut %d", c, cut)
		}
	}
	return cut, imgCuts, nil
}

// WriteSnapshotInc cuts an incremental chain snapshot at the log's
// current last sequence: shards dirtied since the previous manifest are
// re-dumped (each in its own read-only transaction — the store is never
// frozen whole), clean shards are linked to their existing images, and
// covered history is truncated. The first cut of a log's lifetime is a
// full cut. See the package comment of this file for the protocol.
func (l *Log) WriteSnapshotInc(src SnapshotSource) error {
	l.mu.Lock()
	cut := l.lastSeq
	l.mu.Unlock()
	return l.WriteSnapshotIncCut(cut, src)
}

// WriteSnapshotIncCut is WriteSnapshotInc with an explicit cut, for
// callers whose applied state trails the log (a replication replica
// cuts at its last *applied* seq). The cut must have been read before
// the call — the dirty-epoch reads below order against it. A cut older
// than the newest snapshot is skipped silently (the snapshot cannot
// move backwards); a cut equal to it re-cuts only when no chain base
// exists yet (establishing one after recovery or snapshot install).
func (l *Log) WriteSnapshotIncCut(cut uint64, src SnapshotSource) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	l.mu.Lock()
	err := l.failed
	if err == nil && cut > l.lastSeq {
		err = fmt.Errorf("wal: snapshot cut %d beyond last seq %d", cut, l.lastSeq)
	}
	snapSeq := l.snapSeq
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if cut < snapSeq {
		return nil
	}
	nshards := src.Shards()
	full := l.chainImgs == nil || len(l.chainImgs) != nshards
	if cut == snapSeq && !full && cut == l.chainCut {
		return nil // nothing moved since the last cut
	}

	// Two-read epoch protocol: the cut C is already fixed; reading each
	// shard's epoch under its commit-order lock now guarantees every
	// record with seq <= C has bumped. Comparing against the epochs
	// recorded at the previous manifest (which were read before that
	// manifest's dumps ran) classifies the shard.
	epochs := make([]uint64, nshards)
	for i := range epochs {
		epochs[i] = src.DirtyEpochLocked(i)
	}
	imgCuts := make([]uint64, nshards)
	wroteImage := false
	for s := 0; s < nshards; s++ {
		if !full && epochs[s] == l.chainEpochs[s] {
			imgCuts[s] = l.chainImgs[s]
			continue
		}
		pairs, err := src.DumpShard(s)
		if err != nil {
			return err
		}
		img := ShardImage(cut, s, pairs)
		path := filepath.Join(l.opts.Dir, shardImageName(cut, s))
		if err := l.opts.FS.WriteFile(path, img, 0o644); err != nil {
			return err
		}
		if err := fsyncFile(l.opts.FS, path); err != nil {
			return err
		}
		imgCuts[s] = cut
		wroteImage = true
	}
	if wroteImage {
		// Image directory entries must be durable before a manifest
		// referencing them can land.
		if err := syncDir(l.opts.FS, l.opts.Dir); err != nil {
			return err
		}
	}

	// The manifest is the commit point of the cut: temp write + rename +
	// dir sync, so the chain flips from the previous complete one to
	// this complete one atomically.
	tmp := filepath.Join(l.opts.Dir, "manifest.tmp")
	if err := l.opts.FS.WriteFile(tmp, encodeManifest(cut, imgCuts), 0o644); err != nil {
		return err
	}
	if err := fsyncFile(l.opts.FS, tmp); err != nil {
		return err
	}
	if err := l.opts.FS.Rename(tmp, filepath.Join(l.opts.Dir, manifestName(cut))); err != nil {
		return err
	}
	if err := syncDir(l.opts.FS, l.opts.Dir); err != nil {
		return err
	}
	l.chainCut, l.chainImgs, l.chainEpochs = cut, imgCuts, epochs

	keep := map[string]bool{manifestName(cut): true}
	for s, c := range imgCuts {
		keep[shardImageName(c, s)] = true
	}
	l.truncateTo(cut, keep)
	return nil
}

// truncateTo advances the snapshot cut, drops segments fully covered by
// it and removes every snapshot artifact not named in keep. Removal
// failures are ignored — stale files only cost disk and are retried by
// the next cut.
func (l *Log) truncateTo(cut uint64, keep map[string]bool) {
	l.mu.Lock()
	l.snapSeq = cut
	var drop []string
	kept := l.segs[:0]
	for i, s := range l.segs {
		if i+1 < len(l.segs) && l.segs[i+1].firstSeq <= cut+1 {
			drop = append(drop, s.path)
		} else {
			kept = append(kept, s)
		}
	}
	l.segs = kept
	l.mu.Unlock()
	for _, p := range drop {
		l.opts.FS.Remove(p)
	}
	l.cleanSnapshotFiles(keep)
}

// cleanSnapshotFiles removes snapshot artifacts (legacy images,
// manifests, shard images) not named in keep.
func (l *Log) cleanSnapshotFiles(keep map[string]bool) {
	ents, err := l.opts.FS.ReadDir(l.opts.Dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !keep[name] && isSnapshotArtifact(name) {
			l.opts.FS.Remove(filepath.Join(l.opts.Dir, name))
		}
	}
}

// loadChain reads and verifies the complete chain of the manifest at
// cut: the manifest itself plus every referenced image, each checked
// for CRC, matching cut and matching shard index. Any failure poisons
// the whole chain — a partial chain is never returned.
func loadChain(fsys faultfs.FS, dir string, cut uint64) (base []ShardBase, err error) {
	mb, err := fsys.ReadFile(filepath.Join(dir, manifestName(cut)))
	if err != nil {
		return nil, err
	}
	mcut, imgCuts, err := decodeManifest(mb)
	if err != nil {
		return nil, err
	}
	if mcut != cut {
		return nil, fmt.Errorf("wal: manifest %s declares cut %d", manifestName(cut), mcut)
	}
	base = make([]ShardBase, len(imgCuts))
	for s, ic := range imgCuts {
		ib, err := fsys.ReadFile(filepath.Join(dir, shardImageName(ic, s)))
		if err != nil {
			return nil, fmt.Errorf("wal: chain %d: shard %d image: %w", cut, s, err)
		}
		icut, idx, sb, err := decodeShardImage(ib)
		if err != nil {
			return nil, fmt.Errorf("wal: chain %d: shard %d image: %w", cut, s, err)
		}
		if icut != ic || idx != s {
			return nil, fmt.Errorf("wal: chain %d: shard %d image declares cut %d shard %d", cut, s, icut, idx)
		}
		base[s] = sb
	}
	return base, nil
}

// isBundle reports whether a snapshot payload is a chain bundle rather
// than a legacy full image.
func isBundle(img []byte) bool {
	return len(img) >= len(bundleMagic) && string(img[:len(bundleMagic)]) == bundleMagic
}

// bundleFile is one named blob of a snapshot bundle.
type bundleFile struct {
	name string
	data []byte
}

// encodeBundle packages named files as one wire payload.
func encodeBundle(cut uint64, files []bundleFile) []byte {
	size := 24
	for _, f := range files {
		size += 6 + len(f.name) + len(f.data)
	}
	p := make([]byte, 0, size)
	p = append(p, bundleMagic...)
	p = binary.LittleEndian.AppendUint64(p, cut)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(files)))
	for _, f := range files {
		p = binary.LittleEndian.AppendUint16(p, uint16(len(f.name)))
		p = append(p, f.name...)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(f.data)))
		p = append(p, f.data...)
	}
	return binary.LittleEndian.AppendUint32(p, crc32.ChecksumIEEE(p[len(bundleMagic):]))
}

// decodeBundle parses a bundle payload.
func decodeBundle(b []byte) (cut uint64, files []bundleFile, err error) {
	if len(b) < len(bundleMagic)+16 || string(b[:len(bundleMagic)]) != bundleMagic {
		return 0, nil, fmt.Errorf("wal: not a snapshot bundle")
	}
	body, tail := b[len(bundleMagic):len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("wal: snapshot bundle CRC mismatch")
	}
	cut = binary.LittleEndian.Uint64(body)
	n := binary.LittleEndian.Uint32(body[8:])
	body = body[12:]
	files = make([]bundleFile, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(body) < 2 {
			return 0, nil, fmt.Errorf("wal: bundle entry cut short")
		}
		nl := int(binary.LittleEndian.Uint16(body))
		body = body[2:]
		if len(body) < nl+4 {
			return 0, nil, fmt.Errorf("wal: bundle entry cut short")
		}
		name := string(body[:nl])
		body = body[nl:]
		dl := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) < dl {
			return 0, nil, fmt.Errorf("wal: bundle entry cut short")
		}
		files = append(files, bundleFile{name: name, data: body[:dl]})
		body = body[dl:]
	}
	if len(body) != 0 {
		return 0, nil, fmt.Errorf("wal: bundle has %d trailing bytes", len(body))
	}
	return cut, files, nil
}

// bundleChain verifies a decoded bundle is a complete chain — exactly
// one manifest whose cut matches the bundle's, with every referenced
// image present and consistent — and returns the manifest's image cuts
// and the decoded per-shard bases.
func bundleChain(cut uint64, files []bundleFile) (imgCuts []uint64, base []ShardBase, err error) {
	byName := make(map[string][]byte, len(files))
	for _, f := range files {
		byName[f.name] = f.data
	}
	mb, ok := byName[manifestName(cut)]
	if !ok {
		return nil, nil, fmt.Errorf("wal: bundle at cut %d is missing its manifest", cut)
	}
	mcut, imgCuts, err := decodeManifest(mb)
	if err != nil {
		return nil, nil, err
	}
	if mcut != cut {
		return nil, nil, fmt.Errorf("wal: bundle manifest declares cut %d, bundle says %d", mcut, cut)
	}
	base = make([]ShardBase, len(imgCuts))
	for s, ic := range imgCuts {
		ib, ok := byName[shardImageName(ic, s)]
		if !ok {
			return nil, nil, fmt.Errorf("wal: bundle at cut %d is missing shard %d's image", cut, s)
		}
		icut, idx, sb, err := decodeShardImage(ib)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: bundle shard %d image: %w", s, err)
		}
		if icut != ic || idx != s {
			return nil, nil, fmt.Errorf("wal: bundle shard %d image declares cut %d shard %d", s, icut, idx)
		}
		base[s] = sb
	}
	return imgCuts, base, nil
}
