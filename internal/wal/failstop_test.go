package wal

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/kv"
)

// TestFailStopAlwaysWriteError: under SyncAlways an injected write
// error must fail the blocked committer's ack, latch the log, and fail
// every later append fast — and recovery must come back with exactly
// the acked records.
func TestFailStopAlwaysWriteError(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS, faultfs.Plan{
		Kind: faultfs.ErrIO, Target: faultfs.RecordWrite, After: 2,
	})
	l, _ := openT(t, dir, Options{Policy: SyncAlways, FS: inj})
	inj.Arm()

	batches := [][]kv.Effect{
		{put("a", 1)}, {put("b", 2)}, {put("a", 3)},
	}
	for i, b := range batches[:2] {
		if err := l.Append(b); err != nil {
			t.Fatalf("append %d before fault: %v", i, err)
		}
	}
	err := l.Append(batches[2])
	if err == nil {
		t.Fatal("append at fault point was acked")
	}
	if !errors.Is(err, ErrFailStop) {
		t.Fatalf("committer error does not match ErrFailStop: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("committer error lost the EIO cause: %v", err)
	}
	if err := l.Append([]kv.Effect{put("c", 9)}); !errors.Is(err, ErrFailStop) {
		t.Fatalf("append after latch: want fail-fast ErrFailStop, got %v", err)
	}
	if got := l.DurableSeq(); got != 2 {
		t.Fatalf("DurableSeq after fault = %d, want 2", got)
	}
	if l.Err() == nil {
		t.Fatal("Err() not latched")
	}
	l.Close()

	_, rec := openT(t, dir, Options{})
	want := replayRef(batches[:2]...)
	if len(rec.State) != len(want) {
		t.Fatalf("recovered %v, want %v", rec.State, want)
	}
	for k, v := range want {
		if rec.State[k] != v {
			t.Fatalf("recovered %v, want %v", rec.State, want)
		}
	}
}

// TestFailStopAlwaysSyncError: same contract when the fsync (not the
// write) fails — the frame may be on disk, but the committer must not
// be acked and the log must latch.
func TestFailStopAlwaysSyncError(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS, faultfs.Plan{
		Kind: faultfs.ErrIO, Target: faultfs.FileSync, After: 1,
	})
	l, _ := openT(t, dir, Options{Policy: SyncAlways, FS: inj})
	inj.Arm()

	if err := l.Append([]kv.Effect{put("a", 1)}); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	err := l.Append([]kv.Effect{put("b", 2)})
	if !errors.Is(err, ErrFailStop) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("want fail-stop EIO on fsync fault, got %v", err)
	}
	if got := l.DurableSeq(); got != 1 {
		t.Fatalf("DurableSeq after fsync fault = %d, want 1", got)
	}
	l.Close()

	// The unacked record was written (only its fsync failed), so
	// recovery may legitimately surface it — but never lose record 1.
	_, rec := openT(t, dir, Options{})
	if rec.State["a"] != 1 {
		t.Fatalf("acked record lost: recovered %v", rec.State)
	}
}

// TestFailStopIntervalLatches: under SyncInterval the failing fsync
// happens on the timer, after acks — the loss window the policy
// documents — but the log must still latch and fail every subsequent
// append, bounding the damage.
func TestFailStopIntervalLatches(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS, faultfs.Plan{
		Kind: faultfs.ErrIO, Target: faultfs.FileSync, After: 0,
	})
	l, _ := openT(t, dir, Options{Policy: SyncInterval, Interval: time.Millisecond, FS: inj})
	inj.Arm()

	if err := l.Append([]kv.Effect{put("a", 1)}); err != nil {
		t.Fatalf("append: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync fault never latched")
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Append([]kv.Effect{put("b", 2)}); !errors.Is(err, ErrFailStop) {
		t.Fatalf("append after latch: %v", err)
	}
	l.Close()
}

// TestRecoveryUnderDiskFaults drives a fixed append workload into a log
// whose filesystem fails in a scheduled way, then recovers the
// directory with the real OS and checks the recovered state is the
// replay of some prefix of the written batches that covers every acked
// batch — the acked prefix exactly, or acked plus written-but-unacked
// tail records, never a hole and never a lost ack.
func TestRecoveryUnderDiskFaults(t *testing.T) {
	const appends = 20
	cases := []struct {
		name       string
		plan       faultfs.Plan
		segBytes   int64
		snapshotAt int  // append index to snapshot after; -1 = never
		wantLatch  bool // log must refuse all writes after the fault
	}{
		{
			name:     "short write in record",
			plan:     faultfs.Plan{Kind: faultfs.ShortWrite, Target: faultfs.RecordWrite, After: 3, Cut: 0.4},
			segBytes: 1 << 20, snapshotAt: -1, wantLatch: true,
		},
		{
			name:     "short write in segment header",
			plan:     faultfs.Plan{Kind: faultfs.ShortWrite, Target: faultfs.HeaderWrite, After: 0, Cut: 0.5},
			segBytes: 64, snapshotAt: -1, wantLatch: true,
		},
		{
			name:     "enospc mid-rotation",
			plan:     faultfs.Plan{Kind: faultfs.NoSpace, Target: faultfs.HeaderWrite, After: 0, Cut: 0.25},
			segBytes: 64, snapshotAt: -1, wantLatch: true,
		},
		{
			name:     "fsync EIO",
			plan:     faultfs.Plan{Kind: faultfs.ErrIO, Target: faultfs.FileSync, After: 4},
			segBytes: 1 << 20, snapshotAt: -1, wantLatch: true,
		},
		{
			name:     "torn snapshot temp file",
			plan:     faultfs.Plan{Kind: faultfs.ShortWrite, Target: faultfs.SnapshotWrite, After: 0, Cut: 0.6},
			segBytes: 1 << 20, snapshotAt: 10, wantLatch: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS, tc.plan)
			l, _ := openT(t, dir, Options{Policy: SyncAlways, SegmentBytes: tc.segBytes, FS: inj})
			inj.Arm()

			var batches [][]kv.Effect
			acked := 0
			faulted := false
			snapErr := false
			for i := 0; i < appends; i++ {
				b := []kv.Effect{put(fmt.Sprintf("key%02d", i), uint64(i+1))}
				if i%5 == 4 {
					b = append(b, del(fmt.Sprintf("key%02d", i-4)))
				}
				batches = append(batches, b)
				err := l.Append(b)
				if err == nil {
					if faulted && tc.wantLatch {
						t.Fatalf("append %d acked after the log had already failed", i)
					}
					acked++
				} else {
					if !errors.Is(err, ErrFailStop) {
						t.Fatalf("append %d: non-fail-stop error %v", i, err)
					}
					faulted = true
				}
				if i == tc.snapshotAt {
					ref := replayRef(batches[:acked]...)
					if err := l.WriteSnapshot(func() ([]kv.Pair, error) {
						var ps []kv.Pair
						for k, v := range ref {
							ps = append(ps, kv.Pair{Key: k, Val: v})
						}
						return ps, nil
					}); err != nil {
						snapErr = true
					}
				}
			}
			if fired, _ := inj.Fired(); !fired {
				t.Fatalf("plan %v never fired in %d appends", tc.plan, appends)
			}
			if tc.wantLatch {
				if !faulted {
					t.Fatal("fault fired but no append ever failed")
				}
				if l.Err() == nil {
					t.Fatal("Err() not latched")
				}
			} else {
				if faulted {
					t.Fatal("non-latching fault failed an append")
				}
				if tc.snapshotAt >= 0 && !snapErr {
					t.Fatal("snapshot fault did not surface in WriteSnapshot")
				}
			}
			l.Close()

			// Recover with the real OS: what is on disk is what survived.
			l2, rec, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery refused: %v (acked=%d)", err, acked)
			}
			defer l2.Close()
			// No half-written snapshot temp may survive recovery.
			if ents, err := os.ReadDir(dir); err == nil {
				for _, e := range ents {
					if strings.HasSuffix(e.Name(), ".tmp") {
						t.Fatalf("recovery left %s behind", e.Name())
					}
				}
			}
			k, ok := matchPrefix(rec.State, batches, acked)
			if !ok {
				t.Fatalf("recovered state %v is not the replay of any prefix covering the %d acked batches", rec.State, acked)
			}
			t.Logf("acked=%d recovered prefix=%d torn=%v", acked, k, rec.TornTail)
		})
	}
}

// matchPrefix reports whether state equals replayRef(batches[:k]) for
// some k with acked <= k <= len(batches), returning the matching k.
func matchPrefix(state map[string]uint64, batches [][]kv.Effect, acked int) (int, bool) {
	ref := replayRef(batches[:acked]...)
	for k := acked; ; k++ {
		if mapsEqual(state, ref) {
			return k, true
		}
		if k == len(batches) {
			return 0, false
		}
		for _, e := range batches[k] {
			if e.Del {
				delete(ref, e.Key)
			} else {
				ref[e.Key] = e.Val
			}
		}
	}
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestSnapshotImageCanonical: equal logical states render byte-identical
// snapshot images regardless of pair order — the import/export
// round-trip invariant.
func TestSnapshotImageCanonical(t *testing.T) {
	a := []kv.Pair{{Key: "x", Val: 1}, {Key: "a", Val: 2}, {Key: "m", Val: 3}}
	b := []kv.Pair{{Key: "m", Val: 3}, {Key: "x", Val: 1}, {Key: "a", Val: 2}}
	ia := SnapshotImage(7, a)
	ib := SnapshotImage(7, b)
	if string(ia) != string(ib) {
		t.Fatal("snapshot images differ for identical states")
	}
	cut, state, err := decodeSnapshot(ia)
	if err != nil || cut != 7 || len(state) != 3 || state["m"] != 3 {
		t.Fatalf("decode: cut=%d state=%v err=%v", cut, state, err)
	}
}
