package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/kv"
)

func put(k string, v uint64) kv.Effect { return kv.Effect{Key: k, Val: v} }
func del(k string) kv.Effect           { return kv.Effect{Key: k, Del: true} }

// replayRef applies effect lists in order to a fresh map — the
// reference semantics recovery is checked against.
func replayRef(batches ...[]kv.Effect) map[string]uint64 {
	m := map[string]uint64{}
	for _, b := range batches {
		for _, e := range b {
			if e.Del {
				delete(m, e.Key)
			} else {
				m[e.Key] = e.Val
			}
		}
	}
	return m
}

// waitDurable blocks until the log goroutine has persisted seq.
func waitDurable(t *testing.T, l *Log, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("DurableSeq stuck at %d, want %d", l.DurableSeq(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}

func openT(t *testing.T, dir string, opts Options) (*Log, Recovered) {
	t.Helper()
	opts.Dir = dir
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	batches := [][]kv.Effect{
		{put("a", 1), put("b", 2)},
		{del("a")},
		{put("c", 3), put("b", 9), del("missing")},
		{put("a", 7)},
	}
	l, rec := openT(t, dir, Options{Policy: SyncNever})
	if len(rec.State) != 0 || rec.LastSeq != 0 {
		t.Fatalf("fresh dir recovered non-empty: %+v", rec)
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := l.LastSeq(); got != uint64(len(batches)) {
		t.Fatalf("LastSeq = %d, want %d", got, len(batches))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	want := replayRef(batches...)
	if !reflect.DeepEqual(rec2.State, want) {
		t.Fatalf("recovered %v, want %v", rec2.State, want)
	}
	if rec2.LastSeq != uint64(len(batches)) || rec2.TornTail {
		t.Fatalf("recovered meta %+v, want LastSeq=%d TornTail=false", rec2, len(batches))
	}
	// Appending after recovery continues the sequence.
	if err := l2.Append([]kv.Effect{put("d", 4)}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if got := l2.LastSeq(); got != uint64(len(batches))+1 {
		t.Fatalf("LastSeq after recovery append = %d, want %d", got, len(batches)+1)
	}
}

func TestTornTailRecordIgnored(t *testing.T) {
	for _, cut := range []int{1, 5, 7} { // bytes chopped off the tail
		dir := t.TempDir()
		l, _ := openT(t, dir, Options{Policy: SyncNever})
		good := [][]kv.Effect{{put("a", 1)}, {put("b", 2), del("a")}}
		for _, b := range good {
			if err := l.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Append([]kv.Effect{put("torn", 99)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		seg := filepath.Join(dir, segName(1))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		l2, rec := openT(t, dir, Options{})
		want := replayRef(good...)
		if !reflect.DeepEqual(rec.State, want) {
			t.Fatalf("cut=%d: recovered %v, want %v (torn record must be ignored, earlier must survive)", cut, rec.State, want)
		}
		if !rec.TornTail {
			t.Fatalf("cut=%d: TornTail not reported", cut)
		}
		if rec.LastSeq != 2 {
			t.Fatalf("cut=%d: LastSeq = %d, want 2", cut, rec.LastSeq)
		}
		// The log keeps working after tail repair, and the repaired tail
		// stays repaired on the next recovery.
		if err := l2.Append([]kv.Effect{put("after", 5)}); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec3 := openT(t, dir, Options{})
		want["after"] = 5
		if !reflect.DeepEqual(rec3.State, want) {
			t.Fatalf("cut=%d: second recovery %v, want %v", cut, rec3.State, want)
		}
		if rec3.TornTail {
			t.Fatalf("cut=%d: torn tail reported again after repair", cut)
		}
	}
}

func TestCorruptMidChainRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 64})
	for i := 0; i < 8; i++ { // tiny segments force several rotations
		if err := l.Append([]kv.Effect{put(fmt.Sprintf("key%02d", i), uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the FIRST segment: a hole before the tail must refuse to
	// recover rather than silently drop committed transactions.
	seg := filepath.Join(dir, segName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open recovered across a mid-chain hole")
	}
}

func TestSegmentRotationAndSnapshotTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 256})
	var batches [][]kv.Effect
	for i := 0; i < 64; i++ {
		b := []kv.Effect{put(fmt.Sprintf("key%03d", i%16), uint64(i))}
		batches = append(batches, b)
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	waitDurable(t, l, 64)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("only %d segments after 64 records at 256-byte segments — rotation broken", st.Segments)
	}
	state := replayRef(batches...)
	dump := func() ([]kv.Pair, error) {
		var ps []kv.Pair
		for k, v := range state {
			ps = append(ps, kv.Pair{Key: k, Val: v})
		}
		return ps, nil
	}
	if err := l.WriteSnapshot(dump); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st := l.Stats()
	if st.SnapshotSeq != 64 {
		t.Fatalf("snapshot cut %d, want 64", st.SnapshotSeq)
	}
	if st.Segments > 2 {
		t.Fatalf("%d segments survive a snapshot covering every record; want <= 2 (active + at most one spanning the cut)", st.Segments)
	}
	// More appends after the snapshot land in the tail...
	after := []kv.Effect{put("key000", 999), del("key001")}
	if err := l.Append(after); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and recovery = snapshot + tail replay.
	_, rec := openT(t, dir, Options{})
	want := replayRef(append(batches, after)...)
	if !reflect.DeepEqual(rec.State, want) {
		t.Fatalf("recovered %v, want %v", rec.State, want)
	}
	if rec.SnapshotSeq != 64 {
		t.Fatalf("recovery used snapshot cut %d, want 64", rec.SnapshotSeq)
	}
	if rec.Records != 1 {
		t.Fatalf("replayed %d records on top of the snapshot, want 1", rec.Records)
	}
}

func TestGroupCommitConcurrentAlways(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncAlways})
	const workers, each = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				if err := l.Append([]kv.Effect{put(key, uint64(i))}); err != nil {
					errs[w] = err
					return
				}
				// Under SyncAlways an acknowledged append is durable.
				if d := l.DurableSeq(); d == 0 {
					errs[w] = fmt.Errorf("acknowledged append with DurableSeq=0")
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := l.LastSeq(); got != workers*each {
		t.Fatalf("LastSeq = %d, want %d", got, workers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if len(rec.State) != workers*each {
		t.Fatalf("recovered %d keys, want %d", len(rec.State), workers*each)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("w%d-%03d", w, i)
			if v, ok := rec.State[key]; !ok || v != uint64(i) {
				t.Fatalf("recovered %s = %d,%v want %d,true", key, v, ok, i)
			}
		}
	}
}

func TestIntervalPolicyFlushesOnTimer(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	defer l.Close()
	if err := l.Append([]kv.Effect{put("k", 1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableSeq() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never persisted the record")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncNever})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]kv.Effect{put("k", 1)}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

// TestAppendSteadyStateAllocs locks in the hot-path discipline: once
// buffers are warm, Append performs no heap allocation (the group
// commit's pending buffer and the log goroutine's spare are reused).
func TestAppendSteadyStateAllocs(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	effects := []kv.Effect{put("warmkey-000", 1), put("warmkey-001", 2), del("warmkey-002")}
	for i := 0; i < 100; i++ { // warm pending/spare to steady size
		if err := l.Append(effects); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := l.Append(effects); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Fatalf("Append allocates %.2f objects/op in the steady state, want 0", avg)
	}
}

// TestRecoverRefusesSnapshotGap pins the continuity check: when the
// snapshot that justified truncating old segments is lost, recovery
// must refuse rather than silently boot without the truncated records.
func TestRecoverRefusesSnapshotGap(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	var batches [][]kv.Effect
	for i := 0; i < 32; i++ {
		b := []kv.Effect{put(fmt.Sprintf("key%03d", i), uint64(i))}
		batches = append(batches, b)
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Let the writer flush and rotate before snapshotting, so the
	// truncation actually deletes covered segments — the precondition
	// for the gap this test is about.
	waitDurable(t, l, 32)
	state := replayRef(batches...)
	if err := l.WriteSnapshot(func() ([]kv.Pair, error) {
		var ps []kv.Pair
		for k, v := range state {
			ps = append(ps, kv.Pair{Key: k, Val: v})
		}
		return ps, nil
	}); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err=%v)", err)
	}
	if segs[0] == filepath.Join(dir, segName(1)) {
		t.Fatal("truncation deleted nothing; the test premise needs covered segments gone")
	}
	if err := l.Append([]kv.Effect{put("tail", 1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want exactly 1 snapshot, got %v (err=%v)", snaps, err)
	}
	if err := os.Remove(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("recovery succeeded with the covering snapshot gone — committed records silently lost")
	}
}

// TestRecoverRefusesMissingMiddleSegment pins cross-segment
// continuity: deleting a middle segment must refuse recovery.
func TestRecoverRefusesMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	for i := 0; i < 32; i++ {
		if err := l.Append([]kv.Effect{put(fmt.Sprintf("key%03d", i), uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v (err=%v)", segs, err)
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("recovery succeeded across a missing middle segment")
	}
}
