package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/kv"
)

// On-disk formats. Everything is little-endian; varints are Go's
// encoding/binary uvarints.
//
// Segment file (wal-<idx>.seg):
//
//	[8]  magic "OFWAL1\n\x00"
//	[8]  first sequence number the segment may contain
//	then frames, back to back.
//
// Frame (one committed transaction):
//
//	[4]  body length
//	[4]  IEEE CRC32 of body
//	body = uvarint seq
//	       uvarint effect count
//	       effects: tag byte (0 put, 1 del), uvarint keylen, key bytes,
//	                and for put a uvarint value
//
// A frame whose header is short, whose body is cut off, or whose CRC
// does not match is a torn tail: recovery ignores it and every byte
// after it. Frames reuse the byte-rendering discipline of the wire
// path (internal/server/conn.go): records are appended into a reused
// pending buffer with binary.AppendUvarint, no per-record allocation.
//
// Snapshot file (snap-<seq>.snap):
//
//	[8]  magic "OFSNAP1\n"
//	[8]  cut sequence number (every record with seq <= cut is included)
//	[8]  entry count
//	entries: uvarint keylen, key bytes, uvarint value
//	[4]  IEEE CRC32 of everything after the magic
//
// Snapshots are written to a temp file and renamed into place, so a
// snapshot either exists completely or not at all.

const (
	segMagic  = "OFWAL1\n\x00"
	snapMagic = "OFSNAP1\n"

	segHeaderLen   = 16
	frameHeaderLen = 8

	tagPut = 0
	tagDel = 1
)

// appendFrame renders one committed transaction's effects as a frame
// at the end of p and returns the grown slice. It performs no
// allocation beyond p's amortized growth.
func appendFrame(p []byte, seq uint64, effects []kv.Effect) []byte {
	start := len(p)
	p = append(p, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholders
	body := len(p)
	p = binary.AppendUvarint(p, seq)
	p = binary.AppendUvarint(p, uint64(len(effects)))
	for i := range effects {
		e := &effects[i]
		if e.Del {
			p = append(p, tagDel)
			p = binary.AppendUvarint(p, uint64(len(e.Key)))
			p = append(p, e.Key...)
		} else {
			p = append(p, tagPut)
			p = binary.AppendUvarint(p, uint64(len(e.Key)))
			p = append(p, e.Key...)
			p = binary.AppendUvarint(p, e.Val)
		}
	}
	binary.LittleEndian.PutUint32(p[start:], uint32(len(p)-body))
	binary.LittleEndian.PutUint32(p[start+4:], crc32.ChecksumIEEE(p[body:]))
	return p
}

// parseFrame reads the frame at the start of b. ok is false when b
// does not hold a complete, CRC-valid frame — the torn-tail signal.
func parseFrame(b []byte) (seq uint64, payload []byte, frameLen int, ok bool) {
	if len(b) < frameHeaderLen {
		return 0, nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < 1 || len(b) < frameHeaderLen+n {
		return 0, nil, 0, false
	}
	body := b[frameHeaderLen : frameHeaderLen+n]
	if crc32.ChecksumIEEE(body) != crc {
		return 0, nil, 0, false
	}
	seq, sn := binary.Uvarint(body)
	if sn <= 0 {
		return 0, nil, 0, false
	}
	return seq, body[sn:], frameHeaderLen + n, true
}

// applyPayload replays one frame's effects onto state. When tombs is
// non-nil (chain recovery: state is only the tail over a separate base)
// deletes are additionally recorded there so base entries they shadow
// can be skipped at merge time; puts clear any earlier tombstone.
func applyPayload(state map[string]uint64, tombs map[string]struct{}, payload []byte) error {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("wal: bad effect count")
	}
	payload = payload[n:]
	for i := uint64(0); i < count; i++ {
		if len(payload) == 0 {
			return fmt.Errorf("wal: effect list cut short")
		}
		tag := payload[0]
		payload = payload[1:]
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return fmt.Errorf("wal: bad key length")
		}
		key := string(payload[n : n+int(klen)])
		payload = payload[n+int(klen):]
		switch tag {
		case tagPut:
			val, n := binary.Uvarint(payload)
			if n <= 0 {
				return fmt.Errorf("wal: bad value")
			}
			payload = payload[n:]
			state[key] = val
			if tombs != nil {
				delete(tombs, key)
			}
		case tagDel:
			delete(state, key)
			if tombs != nil {
				tombs[key] = struct{}{}
			}
		default:
			return fmt.Errorf("wal: unknown effect tag %d", tag)
		}
	}
	return nil
}

// encodeSnapshot renders a complete snapshot file image for the given
// cut sequence and pairs.
func encodeSnapshot(cut uint64, pairs []kv.Pair) []byte {
	p := make([]byte, 0, 24+len(pairs)*16)
	p = append(p, snapMagic...)
	p = binary.LittleEndian.AppendUint64(p, cut)
	p = binary.LittleEndian.AppendUint64(p, uint64(len(pairs)))
	for i := range pairs {
		p = binary.AppendUvarint(p, uint64(len(pairs[i].Key)))
		p = append(p, pairs[i].Key...)
		p = binary.AppendUvarint(p, pairs[i].Val)
	}
	return binary.LittleEndian.AppendUint32(p, crc32.ChecksumIEEE(p[len(snapMagic):]))
}

// decodeSnapshot parses a snapshot file image into a fresh state map.
func decodeSnapshot(b []byte) (cut uint64, state map[string]uint64, err error) {
	if len(b) < len(snapMagic)+20 || string(b[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("wal: not a snapshot file")
	}
	body, tail := b[len(snapMagic):len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	cut = binary.LittleEndian.Uint64(body)
	count := binary.LittleEndian.Uint64(body[8:])
	body = body[16:]
	state = make(map[string]uint64, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body[n:])) < klen {
			return 0, nil, fmt.Errorf("wal: snapshot entry cut short")
		}
		key := string(body[n : n+int(klen)])
		body = body[n+int(klen):]
		val, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, nil, fmt.Errorf("wal: snapshot value cut short")
		}
		body = body[n:]
		state[key] = val
	}
	return cut, state, nil
}
