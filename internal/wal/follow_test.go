package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/kv"
)

// drainReader reads frames at the cursor until count records arrive,
// applying them to a reference map. The reader must not block once the
// records are durable.
func drainReader(t *testing.T, tr *TailReader, count int) map[string]uint64 {
	t.Helper()
	state := map[string]uint64{}
	var scratch []byte
	got := 0
	var next uint64
	for got < count {
		frames, err := tr.Next(scratch)
		if err != nil {
			t.Fatalf("Next after %d record(s): %v", got, err)
		}
		scratch = frames
		if err := DecodeFrames(frames, func(seq uint64, effects []kv.Effect) error {
			if next != 0 && seq != next {
				t.Fatalf("stream seq %d, want %d", seq, next)
			}
			next = seq + 1
			for _, e := range effects {
				if e.Del {
					delete(state, e.Key)
				} else {
					state[e.Key] = e.Val
				}
			}
			got++
			return nil
		}); err != nil {
			t.Fatalf("DecodeFrames: %v", err)
		}
	}
	return state
}

func TestTailReaderLiveTail(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()

	batches := [][]kv.Effect{
		{put("a", 1), put("b", 2)},
		{del("a")},
		{put("c", 3)},
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitDurable(t, l, uint64(len(batches)))

	tr := l.NewTailReader(1)
	got := drainReader(t, tr, len(batches))
	if want := replayRef(batches...); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed state = %v, want %v", got, want)
	}
	if tr.NextSeq() != uint64(len(batches))+1 {
		t.Fatalf("NextSeq = %d, want %d", tr.NextSeq(), len(batches)+1)
	}
}

// TestTailReaderFollowsLiveAppends pins the blocking contract: a reader
// positioned past the durable tail waits, then delivers the next record
// as soon as the group commit persists it.
func TestTailReaderFollowsLiveAppends(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncAlways})
	defer l.Close()
	if err := l.Append([]kv.Effect{put("a", 1)}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	tr := l.NewTailReader(2)
	type res struct {
		state map[string]uint64
	}
	ch := make(chan res, 1)
	go func() {
		ch <- res{state: drainReader(t, tr, 1)}
	}()
	select {
	case <-ch:
		t.Fatalf("Next returned before record 2 existed")
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.Append([]kv.Effect{put("b", 7)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case r := <-ch:
		if r.state["b"] != 7 {
			t.Fatalf("streamed state = %v, want b=7", r.state)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Next did not observe the new record")
	}
}

// TestTailReaderRotation forces segment rotation and catches a cold
// reader up across several segment files.
func TestTailReaderRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 256})
	defer l.Close()

	var batches [][]kv.Effect
	for i := 0; i < 64; i++ {
		b := []kv.Effect{put(key4(i%8), uint64(i)), put("pad-key-to-force-rotation", uint64(i))}
		batches = append(batches, b)
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitDurable(t, l, uint64(len(batches)))
	if segs := l.Stats().Segments; segs < 3 {
		t.Fatalf("want >= 3 segments after rotation, got %d", segs)
	}

	got := drainReader(t, l.NewTailReader(1), len(batches))
	if want := replayRef(batches...); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed state = %v, want %v", got, want)
	}
}

// TestTailReaderTornTail pins that a torn trailing frame is never
// shipped: after crash recovery truncates it, a reader streams exactly
// the surviving records and then blocks for (durable) record N+1.
func TestTailReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	batches := [][]kv.Effect{
		{put("a", 1)},
		{put("b", 2)},
		{put("c", 3)},
	}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the last frame: chop 3 bytes off the only segment.
	seg := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(seg, b[:len(b)-3], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	l2, rec := openT(t, dir, Options{Policy: SyncNever})
	defer l2.Close()
	if !rec.TornTail || rec.LastSeq != 2 {
		t.Fatalf("recovery = %+v, want torn tail with last seq 2", rec)
	}
	got := drainReader(t, l2.NewTailReader(1), 2)
	if want := replayRef(batches[:2]...); !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed state = %v, want %v", got, want)
	}

	// The torn record must not be shippable; only a fresh append is.
	tr := l2.NewTailReader(3)
	done := make(chan map[string]uint64, 1)
	go func() { done <- drainReader(t, tr, 1) }()
	select {
	case <-done:
		t.Fatalf("reader shipped a record past the truncated tail")
	case <-time.After(20 * time.Millisecond):
	}
	if err := l2.Append([]kv.Effect{put("d", 4)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitDurable(t, l2, 3)
	st := <-done
	if st["d"] != 4 {
		t.Fatalf("post-recovery record = %v, want d=4", st)
	}
}

func TestTailReaderCancel(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	tr := l.NewTailReader(1)
	errc := make(chan error, 1)
	go func() {
		_, err := tr.Next(nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tr.Cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("cancelled Next = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Cancel did not unblock Next")
	}
}

// TestTailReaderSnapshotNeeded pins the truncation contract: a cursor
// older than the oldest retained segment gets ErrSnapshotNeeded, and the
// newest snapshot image round-trips through DecodeSnapshot.
func TestTailReaderSnapshotNeeded(t *testing.T) {
	dir := t.TempDir()
	l0, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	var batches [][]kv.Effect
	for i := 0; i < 16; i++ {
		b := []kv.Effect{put(key4(i), uint64(i*10))}
		batches = append(batches, b)
		if err := l0.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitDurable(t, l0, 16)
	if err := l0.WriteSnapshot(func() ([]kv.Pair, error) {
		var ps []kv.Pair
		for k, v := range replayRef(batches...) {
			ps = append(ps, kv.Pair{Key: k, Val: v})
		}
		return ps, nil
	}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l0.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the in-memory tail is cold, the pre-cut segments are gone
	// — the shape a follower's stale cursor meets after a primary
	// restart (a live primary would still serve the cursor from its
	// in-memory tail, which is also fine: those are real records).
	l, _ := openT(t, dir, Options{Policy: SyncNever, SegmentBytes: 128})
	defer l.Close()
	if _, err := l.NewTailReader(1).Next(nil); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("truncated cursor Next = %v, want ErrSnapshotNeeded", err)
	}

	img, cut, ok, err := l.NewestSnapshot()
	if err != nil || !ok {
		t.Fatalf("NewestSnapshot: ok=%v err=%v", ok, err)
	}
	if cut != 16 {
		t.Fatalf("snapshot cut = %d, want 16", cut)
	}
	dcut, state, err := DecodeSnapshot(img)
	if err != nil || dcut != cut {
		t.Fatalf("DecodeSnapshot: cut=%d err=%v", dcut, err)
	}
	if want := replayRef(batches...); !reflect.DeepEqual(state, want) {
		t.Fatalf("snapshot state = %v, want %v", state, want)
	}

	// A cursor exactly at cut+1 streams the live tail, not a snapshot.
	if err := l.Append([]kv.Effect{put("fresh", 1)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitDurable(t, l, 17)
	got := drainReader(t, l.NewTailReader(cut+1), 1)
	if got["fresh"] != 1 {
		t.Fatalf("post-cut stream = %v, want fresh=1", got)
	}
}

func TestValidateAndAppendFramesRefusal(t *testing.T) {
	var stream []byte
	stream = EncodeFrame(stream, 1, []kv.Effect{put("a", 1)})
	stream = EncodeFrame(stream, 2, []kv.Effect{put("b", 2)})

	if first, last, n, err := ValidateFrames(stream); err != nil || first != 1 || last != 2 || n != 2 {
		t.Fatalf("ValidateFrames = (%d,%d,%d,%v), want (1,2,2,nil)", first, last, n, err)
	}

	// A gap inside the stream is refused.
	gapped := EncodeFrame(nil, 1, []kv.Effect{put("a", 1)})
	gapped = EncodeFrame(gapped, 3, []kv.Effect{put("c", 3)})
	if _, _, _, err := ValidateFrames(gapped); err == nil || !strings.Contains(err.Error(), "hole") {
		t.Fatalf("gapped ValidateFrames = %v, want hole refusal", err)
	}

	// A flipped byte is refused (CRC).
	corrupt := append([]byte(nil), stream...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, _, _, err := ValidateFrames(corrupt); err == nil {
		t.Fatalf("corrupt ValidateFrames succeeded")
	}

	l, _ := openT(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()

	// A stream that does not adjoin the log's tail is refused.
	ahead := EncodeFrame(nil, 5, []kv.Effect{put("x", 1)})
	if err := l.AppendFrames(ahead); err == nil || !strings.Contains(err.Error(), "hole") {
		t.Fatalf("non-adjoining AppendFrames = %v, want hole refusal", err)
	}
	if err := l.AppendFrames(corrupt); err == nil {
		t.Fatalf("corrupt AppendFrames succeeded")
	}

	// The valid stream ingests with original seqs and recovers.
	if err := l.AppendFrames(stream); err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq after ingest = %d, want 2", l.LastSeq())
	}
	waitDurable(t, l, 2)
	got := drainReader(t, l.NewTailReader(1), 2)
	if got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("ingested stream state = %v", got)
	}
}

// TestInstallSnapshot pins the open-log install path: history is
// replaced, seqs jump to the cut, appends continue past it, and a
// re-open recovers image+tail.
func TestInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Policy: SyncNever})
	if err := l.Append([]kv.Effect{put("stale", 1)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitDurable(t, l, 1)

	img := SnapshotImage(100, []kv.Pair{{Key: "a", Val: 1}, {Key: "b", Val: 2}})
	cut, err := l.InstallSnapshot(img)
	if err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if cut != 100 || l.LastSeq() != 100 || l.DurableSeq() != 100 {
		t.Fatalf("post-install cut=%d last=%d durable=%d, want 100", cut, l.LastSeq(), l.DurableSeq())
	}

	// A stale image (cut behind the log) is refused.
	if _, err := l.InstallSnapshot(SnapshotImage(50, nil)); err == nil {
		t.Fatalf("stale InstallSnapshot succeeded")
	}

	if err := l.Append([]kv.Effect{put("c", 3)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitDurable(t, l, 101)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openT(t, dir, Options{Policy: SyncNever})
	defer l2.Close()
	if rec.SnapshotSeq != 100 || rec.LastSeq != 101 {
		t.Fatalf("recovery = %+v, want snapshot cut 100 last seq 101", rec)
	}
	want := map[string]uint64{"a": 1, "b": 2, "c": 3}
	if !reflect.DeepEqual(rec.State, want) {
		t.Fatalf("recovered state = %v, want %v", rec.State, want)
	}
}

func key4(i int) string {
	const digits = "0123456789"
	return "key" + string([]byte{digits[(i/10)%10], digits[i%10]})
}
