// Package wal is the durability layer of the serving stack: a
// segmented append-only write-ahead log of committed kv write effects,
// with group commit, periodic snapshots and startup recovery.
//
// The log records logical state transitions, not engine internals: one
// CRC-framed record per committed store transaction, holding its write
// effects ([]kv.Effect) in program order. Replaying records in log
// order is therefore idempotent prefix-repair — re-applying a record
// that a snapshot already covers rewrites the same values — which is
// what makes the snapshot cut protocol simple (see Log.WriteSnapshot).
//
// Group commit: sessions do not write files. Log.Append encodes the
// record into a shared pending buffer under a short mutex and wakes
// the single log goroutine, which swaps the buffer out and writes the
// whole batch with one write syscall — so N concurrent committers pay
// one write (and, with SyncAlways, one fsync) instead of N. Under
// SyncAlways, Append blocks until the fsync covering its record has
// completed; under SyncInterval the log goroutine fsyncs on a timer;
// under SyncNever it never fsyncs (the OS page cache decides).
// The append path performs no steady-state heap allocation: frames are
// rendered with binary.AppendUvarint into the reused pending buffer,
// mirroring the wire path's byte-rendering discipline.
//
// Failure model: the log is fail-stop. The first write or fsync error
// latches the log into a failed state (a FailStopError wrapping the
// cause); every subsequent Append returns it, and the store above stops
// accepting writes. Under SyncAlways a committer whose record was not
// yet durable when the failure hit gets the error instead of an ack —
// an acknowledged write is never lost. The in-memory state may then be
// ahead of the log, never behind a successful Append's acknowledgment.
//
// All file I/O goes through a faultfs.FS (Options.FS, defaulting to the
// real OS), so tests and the crash campaign can inject short writes,
// EIO, ENOSPC, and power-loss crash points deterministically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/kv"
)

// Policy selects when the log fsyncs.
type Policy uint8

const (
	// SyncInterval fsyncs on a timer (Options.Interval): bounded data
	// loss, near wal-off throughput. The default.
	SyncInterval Policy = iota
	// SyncAlways fsyncs every group-commit batch before acknowledging
	// the transactions in it: no acknowledged write is ever lost.
	SyncAlways
	// SyncNever leaves flushing to the OS: contents survive process
	// crashes (the kill-and-recover scenario) but not OS crashes.
	SyncNever
)

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// String returns the -fsync flag spelling of the policy.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "interval"
}

// Options parameterize Open.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// Policy is the fsync policy (default SyncInterval).
	Policy Policy
	// Interval is the SyncInterval fsync period (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this
	// size (default 64 MiB).
	SegmentBytes int64
	// FS is the filesystem the log writes through (default the real
	// OS). Tests and the crash campaign install a faultfs.Injector.
	FS faultfs.FS
}

func (o *Options) fill() {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// ErrFailStop marks the log's latched failure: errors.Is(err,
// ErrFailStop) holds for every error Append returns after the first
// write or fsync error. The server maps it to the `ERR readonly` wire
// reply.
var ErrFailStop = errors.New("wal: fail-stop")

// FailStopError is the sticky error the log latches into on the first
// write or fsync failure. It matches ErrFailStop via errors.Is and
// unwraps to the underlying cause (so errors.Is(err, syscall.EIO) etc.
// still work).
type FailStopError struct {
	Cause error
}

func (e *FailStopError) Error() string { return "wal: fail-stop: " + e.Cause.Error() }
func (e *FailStopError) Unwrap() error { return e.Cause }
func (e *FailStopError) Is(target error) bool {
	return target == ErrFailStop
}

// segment is one on-disk log file.
type segment struct {
	idx      int
	firstSeq uint64
	path     string
}

// Log is an open write-ahead log. Append is safe for concurrent use;
// WriteSnapshot and Close must not race each other.
type Log struct {
	opts Options

	mu           sync.Mutex
	cond         *sync.Cond // durableSeq advanced, or failure
	pending      []byte     // framed records awaiting the log goroutine
	pendingFirst uint64     // seq of the first frame in pending
	lastSeq      uint64     // last assigned sequence number
	durableSeq   uint64     // last seq persisted per the policy
	snapSeq      uint64     // cut of the latest snapshot
	segs         []segment  // all live segments; last is active
	tail         []byte     // in-memory copy of the newest durable frames
	tailFirst    uint64     // seq of the first frame in tail (valid when len(tail) > 0)
	tailOn       bool       // mirror flushed batches into tail; latched by the first TailReader
	failed       error
	closed       bool

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
	exec chan execReq // funcs to run on the log goroutine (snapshot install)

	// snapMu serializes everything that mutates snapshot files and the
	// chain state below: the snapshot writers, snapshot install, and
	// bundle assembly for replicas. It is never held while waiting on
	// the log goroutine and always acquired before l.mu.
	snapMu sync.Mutex
	// Chain state of the newest manifest written by THIS process (see
	// chain.go): nil chainImgs means no chain base — the next cut is a
	// full cut. Chains deliberately never link to images of a previous
	// process: shard membership hashes intern handles, whose assignment
	// order is not stable across recovery.
	chainCut    uint64
	chainImgs   []uint64 // per-shard image cut referenced by the newest manifest
	chainEpochs []uint64 // per-shard dirty epochs observed at that cut

	// log-goroutine-owned state.
	f        faultfs.File
	segBytes int64
	spare    []byte // buffer swapped with pending
	dirty    bool   // bytes written since the last fsync
}

// Append records one committed transaction's write effects and, under
// SyncAlways, blocks until they are durable. Its signature matches
// kv.CommitHook, so a store is wired with store.SetCommitHook(l.Append).
func (l *Log) Append(effects []kv.Effect) error {
	if len(effects) == 0 {
		return nil
	}
	l.mu.Lock()
	if err := l.failed; err != nil {
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.lastSeq++
	seq := l.lastSeq
	if len(l.pending) == 0 {
		l.pendingFirst = seq
	}
	l.pending = appendFrame(l.pending, seq, effects)
	select {
	case l.wake <- struct{}{}:
	default:
	}
	if l.opts.Policy != SyncAlways {
		l.mu.Unlock()
		return nil
	}
	for l.durableSeq < seq && l.failed == nil {
		l.cond.Wait()
	}
	// A record that became durable before the failure latched keeps its
	// ack: the error belongs to later, non-durable records.
	var err error
	if l.durableSeq < seq {
		err = l.failed
	}
	l.mu.Unlock()
	return err
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// DurableSeq returns the last sequence number persisted according to
// the policy (written for SyncInterval/SyncNever, fsynced for
// SyncAlways).
func (l *Log) DurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableSeq
}

// Stats is a point-in-time summary of the log, for serving reports.
type Stats struct {
	Appended    uint64 // records appended (last assigned seq)
	Durable     uint64 // last seq persisted per the policy
	SnapshotSeq uint64 // cut of the latest snapshot (0 = none)
	Segments    int    // live segment files, active included
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appended: l.lastSeq, Durable: l.durableSeq, SnapshotSeq: l.snapSeq, Segments: len(l.segs)}
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Close flushes everything pending, fsyncs regardless of policy (the
// clean-shutdown flush), closes the active segment and stops the log
// goroutine. Blocked SyncAlways appenders are released. Safe to call
// more than once.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.Err()
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	return l.Err()
}

// run is the log goroutine: the single writer that batches, rotates,
// and fsyncs.
func (l *Log) run() {
	defer close(l.done)
	var tickC <-chan time.Time
	if l.opts.Policy == SyncInterval {
		t := time.NewTicker(l.opts.Interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-l.quit:
			l.flushBatch()
			l.syncNow()
			l.f.Close()
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
			return
		case <-l.wake:
			l.flushBatch()
		case req := <-l.exec:
			req.done <- req.fn()
		case <-tickC:
			l.flushBatch()
			l.syncNow()
		}
	}
}

// execReq asks the log goroutine — the only owner of the active
// segment file — to run fn between batches.
type execReq struct {
	fn   func() error
	done chan error
}

// onLogGoroutine runs fn on the log goroutine and returns its error,
// or ErrClosed if the log shut down first.
func (l *Log) onLogGoroutine(fn func() error) error {
	req := execReq{fn: fn, done: make(chan error, 1)}
	select {
	case l.exec <- req:
		return <-req.done
	case <-l.done:
		return ErrClosed
	}
}

// flushBatch swaps out the pending buffer and writes it as one batch —
// the group commit. Under SyncAlways it fsyncs before advancing
// durableSeq and waking the committers in the batch.
func (l *Log) flushBatch() {
	l.mu.Lock()
	if len(l.pending) == 0 || l.failed != nil {
		l.mu.Unlock()
		return
	}
	buf := l.pending
	batchSeq := l.lastSeq
	batchFirst := l.pendingFirst
	l.pending = l.spare[:0]
	l.spare = nil
	l.mu.Unlock()

	err := l.writeBatch(buf, batchFirst)
	if err == nil {
		l.dirty = true
		if l.opts.Policy == SyncAlways {
			if err = l.f.Sync(); err == nil {
				l.dirty = false
			}
		}
	}

	l.mu.Lock()
	l.spare = buf[:0]
	if err != nil {
		l.latchLocked(err)
	} else {
		if batchSeq > l.durableSeq {
			l.durableSeq = batchSeq
		}
		// Mirror the durable batch into the bounded in-memory tail, the
		// fast path for replication followers (see TailReader). The
		// mirror stays off until a follower exists: a non-replicating
		// server must not pay a per-flush copy for a buffer nobody
		// reads. Followers attaching later catch up from segment files
		// until the mirror overtakes their cursor.
		if l.tailOn {
			if len(l.tail) == 0 {
				l.tailFirst = batchFirst
			}
			l.tail = append(l.tail, buf...)
			l.trimTailLocked()
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// tailBufMax bounds the in-memory follower tail. Followers whose
// cursor falls off the front catch up from segment files instead.
// Compaction is deferred until the buffer doubles the budget so the
// front-drop memmove is amortized O(1) per appended byte — trimming on
// every flush would move ~tailBufMax bytes per group commit, which
// under fsync=interval measurably taxes the whole write path.
const tailBufMax = 1 << 20

// trimTailLocked drops whole frames off the front of the tail until it
// fits the budget, always keeping at least the newest frame. Callers
// hold l.mu.
func (l *Log) trimTailLocked() {
	if len(l.tail) <= 2*tailBufMax {
		return
	}
	drop := 0
	for len(l.tail)-drop > tailBufMax {
		n := frameHeaderLen + int(binary.LittleEndian.Uint32(l.tail[drop:]))
		if drop+n >= len(l.tail) {
			break
		}
		drop += n
		l.tailFirst++
	}
	l.tail = append(l.tail[:0], l.tail[drop:]...)
}

// latchLocked flips the log into its terminal fail-stop state. Callers
// hold l.mu.
func (l *Log) latchLocked(cause error) {
	if l.failed == nil {
		l.failed = &FailStopError{Cause: cause}
	}
}

// writeBatch appends buf — a run of complete frames — to the active
// segment, rotating at frame boundaries when the segment fills. A
// frame is never split across segments; a frame larger than the
// segment limit gets a segment of its own.
func (l *Log) writeBatch(buf []byte, firstSeq uint64) error {
	nextSeq := firstSeq
	for len(buf) > 0 {
		n := frameHeaderLen + int(binary.LittleEndian.Uint32(buf))
		if l.segBytes > segHeaderLen && l.segBytes+int64(n) > l.opts.SegmentBytes {
			if err := l.rotate(nextSeq); err != nil {
				return err
			}
		}
		// Greedily extend the chunk with every further frame that fits.
		end := n
		for end+frameHeaderLen <= len(buf) {
			m := frameHeaderLen + int(binary.LittleEndian.Uint32(buf[end:]))
			if l.segBytes+int64(end+m) > l.opts.SegmentBytes {
				break
			}
			end += m
		}
		w, err := l.f.Write(buf[:end])
		l.segBytes += int64(w)
		if err != nil {
			return err
		}
		buf = buf[end:]
		if len(buf) >= frameHeaderLen+1 {
			// The first uvarint of the next frame's body is its seq — the
			// header of a segment opened for it.
			nextSeq, _ = binary.Uvarint(buf[frameHeaderLen:])
		}
	}
	return nil
}

// rotate closes the active segment (fully durable first) and opens the
// next one, whose records start at firstSeq.
func (l *Log) rotate(firstSeq uint64) error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.mu.Lock()
	idx := l.segs[len(l.segs)-1].idx + 1
	l.mu.Unlock()
	return l.openSegment(idx, firstSeq)
}

// syncNow fsyncs the active segment if anything was written since the
// last fsync. After a latched failure it does nothing: the log is
// fail-stop and never touches the disk again.
func (l *Log) syncNow() {
	if !l.dirty || l.f == nil {
		return
	}
	l.mu.Lock()
	failed := l.failed != nil
	l.mu.Unlock()
	if failed {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.mu.Lock()
		l.latchLocked(err)
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	l.dirty = false
}

// openSegment creates segment idx with the given first sequence
// number, writes its header, and registers it as active.
func (l *Log) openSegment(idx int, firstSeq uint64) error {
	path := filepath.Join(l.opts.Dir, segName(idx))
	f, err := l.opts.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.opts.FS, l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segBytes = segHeaderLen
	l.mu.Lock()
	l.segs = append(l.segs, segment{idx: idx, firstSeq: firstSeq, path: path})
	l.mu.Unlock()
	return nil
}

// WriteSnapshot persists a consistent cut of the store and truncates
// the log's history: dump must read the store state in one read-only
// transaction (kv.Store.Dump — the validation-free read-only commit
// path, so snapshots run under live write traffic).
//
// Cut protocol: the cut sequence C is read *before* dump runs, so
// every record with seq <= C committed before the dump's snapshot was
// taken and is included in it. The dump may additionally contain
// effects of records later than C; recovery replays every record with
// seq > C on top, and because records are whole-transaction effect
// lists applied in log order, re-applying those overlapping records
// reproduces exactly the logged state. Segments whose records are all
// <= C, and snapshots older than this one, are deleted.
func (l *Log) WriteSnapshot(dump func() ([]kv.Pair, error)) error {
	l.mu.Lock()
	cut := l.lastSeq
	l.mu.Unlock()
	return l.WriteSnapshotCut(cut, dump)
}

// WriteSnapshotCut is WriteSnapshot with an explicit cut sequence, for
// callers whose applied state may trail the log tail: a replication
// replica appends shipped records to its log *before* applying them to
// the store, so its dump is only guaranteed to cover records up to its
// last applied seq — using lastSeq there would cut away records the
// dump does not contain. The cut must not exceed lastSeq.
func (l *Log) WriteSnapshotCut(cut uint64, dump func() ([]kv.Pair, error)) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	l.mu.Lock()
	err := l.failed
	if err == nil && cut > l.lastSeq {
		err = fmt.Errorf("wal: snapshot cut %d beyond last seq %d", cut, l.lastSeq)
	}
	l.mu.Unlock()
	if err != nil {
		return err
	}
	pairs, err := dump()
	if err != nil {
		return err
	}
	img := SnapshotImage(cut, pairs)
	tmp := filepath.Join(l.opts.Dir, "snapshot.tmp")
	if err := l.opts.FS.WriteFile(tmp, img, 0o644); err != nil {
		return err
	}
	if err := fsyncFile(l.opts.FS, tmp); err != nil {
		return err
	}
	if err := l.opts.FS.Rename(tmp, filepath.Join(l.opts.Dir, snapName(cut))); err != nil {
		return err
	}
	if err := syncDir(l.opts.FS, l.opts.Dir); err != nil {
		return err
	}
	// A full image supersedes any chain; the next incremental cut
	// starts a fresh chain with a full cut.
	l.chainCut, l.chainImgs, l.chainEpochs = 0, nil, nil
	l.truncateTo(cut, map[string]bool{snapName(cut): true})
	return nil
}

func segName(idx int) string     { return fmt.Sprintf("wal-%08d.seg", idx) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%020d.snap", seq) }

func fsyncFile(fsys faultfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	cerr := f.Close()
	if err != nil {
		return err
	}
	return cerr
}

func syncDir(fsys faultfs.FS, dir string) error {
	f, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// SnapshotImage renders the canonical snapshot file image for a cut and
// a set of pairs: entries are sorted by key (pairs is sorted in place),
// so two stores holding the same logical state produce byte-identical
// images regardless of key intern order. The campaign's import/export
// round-trip check relies on this.
func SnapshotImage(cut uint64, pairs []kv.Pair) []byte {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return encodeSnapshot(cut, pairs)
}
