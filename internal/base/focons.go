package base

import (
	"math/rand"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// Bottom is the ⊥ of the fo-consensus value domain D ∪ {⊥}: the value
// returned by an aborted propose, and never a member of D. Callers
// encode their domain so that Bottom is unused (transaction handles and
// status constants in this repository are small positive integers).
const Bottom uint64 = ^uint64(0)

// Proposer is the fo-consensus interface of §4.1. Propose registers
// value v and returns the decision value, or Bottom if the operation
// aborted (in which case v was NOT registered and cannot be decided:
// fo-validity). An aborted propose may be retried.
//
// The three properties (for every low-level history):
//
//	fo-validity:             a decided value was proposed by a propose
//	                         that does not abort;
//	agreement:               no two processes decide different values;
//	fo-obstruction-freedom:  a step-contention-free propose does not
//	                         abort.
//
// base.FoCons implements Proposer as a base object; package focons
// implements it from OFTMs (Algorithm 1) and from eventual ic-OFTMs
// (Algorithm 3).
type Proposer interface {
	Propose(p *sim.Proc, v uint64) uint64
}

// AbortPolicy selects when a FoCons base object uses its licence to
// abort. The fo-consensus specification only *permits* aborting a
// propose that encounters step contention; it never requires it. The
// policy knob lets experiments range from the friendliest object (never
// abort — what a CAS-backed implementation naturally provides) to the
// harshest adversary the specification allows (abort whenever step
// contention is observed).
type AbortPolicy int

const (
	// NeverAbort: propose always returns a decision. With this policy
	// FoCons degenerates to (one-shot) consensus. Raw mode always
	// behaves like this, since step contention is unobservable there.
	NeverAbort AbortPolicy = iota
	// AbortOnContention: abort every propose that observed a step by
	// another process during its interval and has not yet registered its
	// value. This is the strongest adversary fo-obstruction-freedom
	// allows.
	AbortOnContention
	// AbortRandomly: abort contended proposes with probability 1/2,
	// seeded per object; between the two extremes.
	AbortRandomly
)

// FoCons is a fail-only consensus base object. The implementation
// decides via an internal CAS but is careful to abort only *before* the
// CAS is attempted, so an aborted propose has registered nothing and
// fo-validity holds by construction.
//
// Propose takes up to two steps: a read of the decision word, then (if
// undecided) a CAS. Between them the object re-checks the abort policy.
type FoCons struct {
	w      U64 // 0 = undecided; else decided with value enc-1
	policy AbortPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewFoCons returns an undecided fo-consensus object with the given
// abort policy. seed is used only by AbortRandomly.
func NewFoCons(env *sim.Env, name string, policy AbortPolicy, seed int64) *FoCons {
	f := &FoCons{policy: policy}
	f.w.env = env
	if env != nil {
		f.w.id = env.RegisterObj(name)
	}
	if policy == AbortRandomly {
		f.rng = rand.New(rand.NewSource(seed))
	}
	return f
}

// Obj returns the base-object id (sim mode only).
func (f *FoCons) Obj() model.ObjID { return f.w.Obj() }

func (f *FoCons) mayAbort(p *sim.Proc, m sim.Mark) bool {
	if !p.ContendedSince(m) {
		return false // fo-obstruction-freedom: quiet proposes never abort
	}
	switch f.policy {
	case AbortOnContention:
		return true
	case AbortRandomly:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.rng.Intn(2) == 0
	}
	return false
}

// Propose implements Proposer. It panics if v == Bottom or if v+1
// overflows (v must be a domain value).
//
// The step-contention interval is measured from the propose's first
// step: process bodies execute local code concurrently before their
// first step is granted, so only the granted-step window is a
// well-defined interval under the scheduler.
func (f *FoCons) Propose(p *sim.Proc, v uint64) uint64 {
	if v == Bottom || v+1 == 0 {
		panic("base: fo-consensus value out of domain")
	}
	var m sim.Mark
	var cur uint64
	sim.Step(p, f.w.id, "read", false, func() {
		m = p.Mark()
		cur = f.w.v.Load()
	})
	if cur != 0 {
		// Already decided; return the decision. Nothing new registers.
		return cur - 1
	}
	// Undecided at the read. The abort decision and the CAS are made
	// inside the granted step so that the contention observation is
	// well-defined under the scheduler. Aborting happens BEFORE the CAS
	// is attempted: an aborted propose registers nothing, which keeps
	// fo-validity unconditional.
	aborted := false
	sim.Step(p, f.w.id, "propose", true, func() {
		if f.mayAbort(p, m) {
			aborted = true
			return
		}
		f.w.v.CompareAndSwap(0, v+1)
		cur = f.w.v.Load()
	})
	if aborted {
		return Bottom
	}
	return cur - 1
}

// Decided reports whether the object has decided, and the decision. The
// inspection is one step (a read).
func (f *FoCons) Decided(p *sim.Proc) (uint64, bool) {
	cur := f.w.Read(p)
	if cur == 0 {
		return 0, false
	}
	return cur - 1, true
}
