package base

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestRegRawMode(t *testing.T) {
	r := NewReg(nil, "r", 7)
	if got := r.Read(nil); got != 7 {
		t.Fatalf("initial read %d, want 7", got)
	}
	r.Write(nil, 42)
	if got := r.Read(nil); got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
}

func TestU64RawMode(t *testing.T) {
	w := NewU64(nil, "w", 0)
	if !w.CAS(nil, 0, 5) {
		t.Fatalf("CAS 0->5 must succeed")
	}
	if w.CAS(nil, 0, 9) {
		t.Fatalf("CAS 0->9 must fail, value is 5")
	}
	if got := w.Add(nil, 3); got != 8 {
		t.Fatalf("Add: got %d, want 8", got)
	}
	w.Write(nil, 1)
	if got := w.Read(nil); got != 1 {
		t.Fatalf("read %d, want 1", got)
	}
}

func TestCellRawMode(t *testing.T) {
	type node struct{ v int }
	a, b := &node{1}, &node{2}
	c := NewCell[node](nil, "c", a)
	if c.Load(nil) != a {
		t.Fatalf("initial pointer mismatch")
	}
	if !c.CAS(nil, a, b) {
		t.Fatalf("CAS a->b must succeed")
	}
	if c.CAS(nil, a, b) {
		t.Fatalf("CAS from stale pointer must fail")
	}
	if c.Load(nil) != b {
		t.Fatalf("pointer not swapped")
	}
}

func TestTASOneWinnerRaw(t *testing.T) {
	tas := NewTAS(nil, "t")
	if tas.IsSet(nil) {
		t.Fatalf("fresh TAS must be unset")
	}
	if !tas.Set(nil) {
		t.Fatalf("first Set must win")
	}
	if tas.Set(nil) {
		t.Fatalf("second Set must lose")
	}
	if !tas.IsSet(nil) {
		t.Fatalf("TAS must be set")
	}
}

func TestStepsAreRecorded(t *testing.T) {
	env := sim.New()
	r := NewReg(env, "reg", 0)
	w := NewU64(env, "word", 0)
	env.Spawn(func(p *sim.Proc) {
		r.Write(p, 3)
		_ = r.Read(p)
		w.CAS(p, 0, 1)
	})
	h := env.Run(sim.RoundRobin())
	if len(h.Steps) != 3 {
		t.Fatalf("want 3 steps, got %d", len(h.Steps))
	}
	if !h.Steps[0].Write || h.Steps[0].Name != "write" {
		t.Errorf("step 0: %+v", h.Steps[0])
	}
	if h.Steps[1].Write {
		t.Errorf("read recorded as write: %+v", h.Steps[1])
	}
	if h.Steps[2].Name != "cas" || !h.Steps[2].Write {
		t.Errorf("step 2: %+v", h.Steps[2])
	}
	if env.ObjName(h.Steps[0].Obj) != "reg" {
		t.Errorf("step 0 object name %q", env.ObjName(h.Steps[0].Obj))
	}
}

func TestFoConsSoloAlwaysDecidesOwnValue(t *testing.T) {
	for _, policy := range []AbortPolicy{NeverAbort, AbortOnContention, AbortRandomly} {
		env := sim.New()
		f := NewFoCons(env, "f", policy, 1)
		var got uint64
		env.Spawn(func(p *sim.Proc) {
			got = f.Propose(p, 7)
		})
		env.Run(sim.RoundRobin())
		if got != 7 {
			t.Errorf("policy %v: solo propose decided %d, want 7 (fo-obstruction-freedom)", policy, got)
		}
	}
}

func TestFoConsAgreementUnderInterleaving(t *testing.T) {
	// Two processes propose different values under many interleavings;
	// all non-Bottom returns must agree, and the decision must come from
	// a non-aborting propose (fo-validity).
	for seed := int64(0); seed < 50; seed++ {
		env := sim.New()
		f := NewFoCons(env, "f", AbortOnContention, seed)
		results := make([]uint64, 3)
		for i := 0; i < 3; i++ {
			i := i
			env.Spawn(func(p *sim.Proc) {
				v := uint64(i + 1)
				results[i] = f.Propose(p, v)
			})
		}
		env.Run(sim.Random(seed))
		decided := map[uint64]bool{}
		for _, r := range results {
			if r != Bottom {
				decided[r] = true
			}
		}
		if len(decided) > 1 {
			t.Fatalf("seed %d: agreement violated: %v", seed, results)
		}
		for v := range decided {
			// fo-validity: the winner's own result must be v (its propose
			// did not abort) — the proposer of v cannot have aborted.
			if results[v-1] == Bottom {
				t.Fatalf("seed %d: value %d decided but its proposer aborted (fo-validity)", seed, v)
			}
		}
	}
}

func TestFoConsNeverAbortPolicyNeverAborts(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		env := sim.New()
		f := NewFoCons(env, "f", NeverAbort, seed)
		results := make([]uint64, 4)
		for i := 0; i < 4; i++ {
			i := i
			env.Spawn(func(p *sim.Proc) { results[i] = f.Propose(p, uint64(i+1)) })
		}
		env.Run(sim.Random(seed))
		first := results[0]
		for i, r := range results {
			if r == Bottom {
				t.Fatalf("seed %d: NeverAbort aborted at p%d", seed, i+1)
			}
			if r != first {
				t.Fatalf("seed %d: disagreement %v", seed, results)
			}
		}
	}
}

func TestFoConsAdversaryAbortsContendedPropose(t *testing.T) {
	// p1 starts a propose (performs its first read step), p2 then runs a
	// full propose, then p1 resumes: p1's propose is contended and the
	// AbortOnContention policy must abort it without registering.
	env := sim.New()
	f := NewFoCons(env, "f", AbortOnContention, 0)
	var r1, r2 uint64
	env.Spawn(func(p *sim.Proc) { r1 = f.Propose(p, 1) })
	env.Spawn(func(p *sim.Proc) { r2 = f.Propose(p, 2) })
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 1}, // p1's initial read
		sim.Phase{Proc: 2, Steps: -1},
		sim.Phase{Proc: 1, Steps: -1},
	))
	if r2 != 2 {
		t.Fatalf("p2 ran alone after p1's read; must decide its own value, got %d", r2)
	}
	if r1 != Bottom {
		t.Fatalf("p1 was contended; adversarial policy must abort, got %d", r1)
	}
	if v, ok := f.Decided(nil); !ok || v != 2 {
		t.Fatalf("decision must be 2, got %d (ok=%v)", v, ok)
	}
}

func TestFoConsDecidedInspection(t *testing.T) {
	f := NewFoCons(nil, "f", NeverAbort, 0)
	if _, ok := f.Decided(nil); ok {
		t.Fatalf("fresh object must be undecided")
	}
	if got := f.Propose(nil, 9); got != 9 {
		t.Fatalf("raw propose got %d", got)
	}
	if v, ok := f.Decided(nil); !ok || v != 9 {
		t.Fatalf("decided inspection: %d %v", v, ok)
	}
}

func TestFoConsDomainPanics(t *testing.T) {
	f := NewFoCons(nil, "f", NeverAbort, 0)
	for _, bad := range []uint64{Bottom} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Propose(%d) must panic", bad)
				}
			}()
			f.Propose(nil, bad)
		}()
	}
}

func TestFoConsFirstProposerWinsQuick(t *testing.T) {
	// Property: in raw mode (sequential), the first propose decides and
	// every later propose returns the same decision.
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		fc := NewFoCons(nil, "f", NeverAbort, 0)
		want := fc.Propose(nil, uint64(vals[0])+1)
		if want != uint64(vals[0])+1 {
			return false
		}
		for _, v := range vals[1:] {
			if fc.Propose(nil, uint64(v)+1) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegObjIDs(t *testing.T) {
	env := sim.New()
	a := NewReg(env, "a", 0)
	b := NewU64(env, "b", 0)
	c := NewCell[int](env, "c", nil)
	d := NewTAS(env, "d")
	f := NewFoCons(env, "f", NeverAbort, 0)
	ids := map[model.ObjID]bool{a.Obj(): true, b.Obj(): true, c.Obj(): true, f.Obj(): true}
	_ = d
	if len(ids) != 4 {
		t.Fatalf("object ids must be distinct: %v", ids)
	}
}

func TestTASUnderScheduling(t *testing.T) {
	env := sim.New()
	tas := NewTAS(env, "t")
	wins := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn(func(p *sim.Proc) { wins[i] = tas.Set(p) })
	}
	env.Run(sim.Random(3))
	n := 0
	for _, w := range wins {
		if w {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("exactly one winner required, got %d", n)
	}
}
