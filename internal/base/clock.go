package base

import (
	"repro/internal/sim"
)

// PadBytes is the assumed cache-line size. The deliberately shared
// words of the OFTM engines (the global version clock and the
// descriptor status words) are padded to their own lines so that the
// one *designed* hot spot — the "common memory location" cost of
// Theorem 13 / §1 — is not compounded by accidental false sharing with
// unrelated fields that happen to sit next to it.
const PadBytes = 64

// VClock is a per-TM global version clock — the TL2-style primitive
// behind per-variable versioned read validation. A writing transaction
// Ticks the clock immediately before its commit CAS and stamps the
// returned version onto the values it installs; a reader keeps a
// snapshot timestamp and accepts any value whose version does not
// exceed it without rescanning anything else.
//
// The tick-before-stamp-before-commit-CAS order is load-bearing: a
// reader that observes a committed value therefore observes a version
// no later than any clock sample it takes afterwards, so "version ≤
// snapshot" proves the value was already current when the snapshot was
// taken.
//
// The clock is the engines' single engine-wide strict-DAP violation:
// every transaction reads it and every writing commit bumps it, exactly
// the shared timestamp location the paper ascribes to TL2 in §1
// (Theorem 13 says some such hot spot is unavoidable for an OFTM).
// Per-variable versions, by contrast, are only ever touched by
// transactions that access the variable itself.
//
// Like every base object it is one scheduled step per operation in sim
// mode and a bare atomic in raw mode. The word is padded to its own
// cache line: it is the most contended location in the system and must
// not share a line with anything colder.
type VClock struct {
	_ [PadBytes]byte
	w U64
	_ [PadBytes]byte
}

// Init initializes an embedded VClock in place. env may be nil (raw
// mode).
func (c *VClock) Init(env *sim.Env, name string) {
	c.w.Init(env, name, 0)
}

// Load returns the current clock value. One step.
func (c *VClock) Load(p *sim.Proc) uint64 {
	return c.w.Read(p)
}

// Tick advances the clock and returns the new version. One step.
func (c *VClock) Tick(p *sim.Proc) uint64 {
	return c.w.Add(p, 1)
}

// Bump advances the clock discarding the value — the commit-counter
// (PR 1 global-epoch) usage, kept for the ablation mode in which the
// clock word doubles as an all-or-nothing commit epoch. One step.
func (c *VClock) Bump(p *sim.Proc) {
	c.w.Add(p, 1)
}
