// Package base provides the base objects of the paper's model (§2.1):
// atomic read/write registers, CAS words, one-shot test-and-set, and the
// fail-only consensus (fo-consensus) object of [6] that Section 4 proves
// equivalent to an OFTM.
//
// Every object works in two modes. Constructed with a nil *sim.Env it is
// a thin wrapper over sync/atomic ("raw mode": production speed, no
// recording). Constructed with an environment, every operation is one
// scheduled, recorded step, so checkers can analyse the low-level
// history and adversaries can interleave at step granularity.
//
// The type split is deliberate: Reg exports only Read and Write, so code
// that must be implementable "from registers" (Algorithm 2's TVar,
// Aborted and V arrays) cannot accidentally use CAS; U64 adds CAS for
// the components the paper allows it for (DSTM, the lock-based TMs).
package base

import (
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/sim"
)

// Reg is an atomic read/write register holding a uint64. It exports no
// read-modify-write operations (consensus number 1).
type Reg struct {
	v   atomic.Uint64
	env *sim.Env
	id  model.ObjID
}

// NewReg returns a register with the given initial value. env may be nil
// (raw mode); name is used in recorded histories.
func NewReg(env *sim.Env, name string, init uint64) *Reg {
	r := &Reg{env: env}
	r.v.Store(init)
	if env != nil {
		r.id = env.RegisterObj(name)
	}
	return r
}

// Obj returns the base-object id of the register (sim mode only).
func (r *Reg) Obj() model.ObjID { return r.id }

// Read returns the register's value. One step.
//
// Every base-object operation takes the same shape: an inlinable
// raw-mode fast path (nil Proc → one atomic instruction, no closure, no
// call through sim.Step) with the scheduled-and-recorded sim path
// outlined. Raw mode is the production hot path; the branch keeps these
// accessors cheap enough for the compiler to inline into the engines.
func (r *Reg) Read(p *sim.Proc) uint64 {
	if p == nil {
		return r.v.Load()
	}
	return r.readSim(p)
}

func (r *Reg) readSim(p *sim.Proc) uint64 {
	var out uint64
	sim.Step(p, r.id, "read", false, func() { out = r.v.Load() })
	return out
}

// Write sets the register's value. One step.
func (r *Reg) Write(p *sim.Proc, v uint64) {
	if p == nil {
		r.v.Store(v)
		return
	}
	sim.Step(p, r.id, "write", true, func() { r.v.Store(v) })
}

// U64 is an atomic word supporting Read, Write, CAS and Add — the "CAS
// object" of the paper (universal in Herlihy's hierarchy). DSTM-style
// OFTMs and the lock-based baselines build on it.
type U64 struct {
	v   atomic.Uint64
	env *sim.Env
	id  model.ObjID
}

// NewU64 returns a CAS word with the given initial value.
func NewU64(env *sim.Env, name string, init uint64) *U64 {
	w := &U64{}
	w.Init(env, name, init)
	return w
}

// Init initializes a U64 in place, for words embedded by value in a
// larger record (e.g. a transaction descriptor's status word): the
// containing record is one allocation instead of record-plus-word. In
// raw mode this is the descriptor fast path — no base-object
// registration, no extra heap traffic. Must not be called on a word
// already in use.
func (w *U64) Init(env *sim.Env, name string, init uint64) {
	w.env = env
	w.v.Store(init)
	if env != nil {
		w.id = env.RegisterObj(name)
	}
}

// Obj returns the base-object id of the word (sim mode only).
func (w *U64) Obj() model.ObjID { return w.id }

// Read returns the word's value. One step. Inlinable raw fast path.
func (w *U64) Read(p *sim.Proc) uint64 {
	if p == nil {
		return w.v.Load()
	}
	return w.readSim(p)
}

func (w *U64) readSim(p *sim.Proc) uint64 {
	var out uint64
	sim.Step(p, w.id, "read", false, func() { out = w.v.Load() })
	return out
}

// Write sets the word's value. One step.
func (w *U64) Write(p *sim.Proc, v uint64) {
	if p == nil {
		w.v.Store(v)
		return
	}
	sim.Step(p, w.id, "write", true, func() { w.v.Store(v) })
}

// CAS atomically replaces old with new and reports success. One step.
// The step is recorded as a write even when the CAS fails: a failed CAS
// still performed a read-modify-write access to the location, which is
// what matters for conflict (cache-line) analysis.
func (w *U64) CAS(p *sim.Proc, old, new uint64) bool {
	if p == nil {
		return w.v.CompareAndSwap(old, new)
	}
	return w.casSim(p, old, new)
}

func (w *U64) casSim(p *sim.Proc, old, new uint64) bool {
	var ok bool
	sim.Step(p, w.id, "cas", true, func() { ok = w.v.CompareAndSwap(old, new) })
	return ok
}

// Add atomically adds delta and returns the new value. One step.
func (w *U64) Add(p *sim.Proc, delta uint64) uint64 {
	if p == nil {
		return w.v.Add(delta)
	}
	return w.addSim(p, delta)
}

func (w *U64) addSim(p *sim.Proc, delta uint64) uint64 {
	var out uint64
	sim.Step(p, w.id, "add", true, func() { out = w.v.Add(delta) })
	return out
}

// Cell is an atomic CAS cell holding a pointer to T, used for DSTM
// locators. Like U64 it models a CAS object.
type Cell[T any] struct {
	v   atomic.Pointer[T]
	env *sim.Env
	id  model.ObjID
}

// NewCell returns a cell holding init (which may be nil).
func NewCell[T any](env *sim.Env, name string, init *T) *Cell[T] {
	c := &Cell[T]{}
	c.Init(env, name, init)
	return c
}

// Init initializes a Cell in place, for cells embedded by value in a
// larger record (e.g. a t-variable): the containing record is one
// allocation and the cell's word sits adjacent to its sibling fields.
// Must not be called on a cell already in use.
func (c *Cell[T]) Init(env *sim.Env, name string, init *T) {
	c.env = env
	c.v.Store(init)
	if env != nil {
		c.id = env.RegisterObj(name)
	}
}

// Obj returns the base-object id of the cell (sim mode only).
func (c *Cell[T]) Obj() model.ObjID { return c.id }

// Load returns the cell's pointer. One step. Inlinable raw fast path.
func (c *Cell[T]) Load(p *sim.Proc) *T {
	if p == nil {
		return c.v.Load()
	}
	return c.loadSim(p)
}

func (c *Cell[T]) loadSim(p *sim.Proc) *T {
	var out *T
	sim.Step(p, c.id, "read", false, func() { out = c.v.Load() })
	return out
}

// CAS atomically replaces old with new and reports success. One step.
func (c *Cell[T]) CAS(p *sim.Proc, old, new *T) bool {
	if p == nil {
		return c.v.CompareAndSwap(old, new)
	}
	return c.casSim(p, old, new)
}

func (c *Cell[T]) casSim(p *sim.Proc, old, new *T) bool {
	var ok bool
	sim.Step(p, c.id, "cas", true, func() { ok = c.v.CompareAndSwap(old, new) })
	return ok
}

// TAS is a one-shot test-and-set object (consensus number 2): the first
// Set wins; all later Sets lose.
type TAS struct {
	v   atomic.Uint32
	env *sim.Env
	id  model.ObjID
}

// NewTAS returns an unset test-and-set object.
func NewTAS(env *sim.Env, name string) *TAS {
	t := &TAS{env: env}
	if env != nil {
		t.id = env.RegisterObj(name)
	}
	return t
}

// Set attempts to set the object, reporting whether this call won (was
// first). One step.
func (t *TAS) Set(p *sim.Proc) bool {
	var won bool
	sim.Step(p, t.id, "tas", true, func() { won = t.v.CompareAndSwap(0, 1) })
	return won
}

// IsSet reports whether the object has been set. One step.
func (t *TAS) IsSet(p *sim.Proc) bool {
	var set bool
	sim.Step(p, t.id, "read", false, func() { set = t.v.Load() != 0 })
	return set
}
