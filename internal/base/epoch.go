package base

import (
	"repro/internal/sim"
)

// Epoch is a per-TM commit counter — the primitive behind
// commit-counter (TL2-style global-clock) read-set validation. Engines
// bump it immediately BEFORE every commit CAS and after every forceful
// abort; a transaction that observes an unchanged epoch between two of
// its own reads knows no transaction committed in between, so its read
// set cannot have been invalidated and the full validation scan can be
// skipped.
//
// The bump-before-commit order is load-bearing: a transaction's
// ownership acquisitions all precede its bump, so a reader whose epoch
// sample is older than the bump either sees the acquisition (locator /
// owner identity changed → full validation fails) or sees the epoch
// move (→ full validation runs). A bump whose commit CAS then fails is
// a spurious epoch advance: it forces unnecessary validations but never
// hides a commit.
//
// Like every base object it is one scheduled step per operation in sim
// mode and a bare atomic in raw mode.
type Epoch struct {
	w U64
}

// Init initializes an embedded Epoch in place. env may be nil (raw
// mode).
func (e *Epoch) Init(env *sim.Env, name string) {
	e.w.Init(env, name, 0)
}

// Load returns the current epoch. One step.
func (e *Epoch) Load(p *sim.Proc) uint64 {
	return e.w.Read(p)
}

// Bump advances the epoch. One step.
func (e *Epoch) Bump(p *sim.Proc) {
	e.w.Add(p, 1)
}
