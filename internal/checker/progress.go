package checker

import (
	"fmt"

	"repro/internal/model"
)

// OFViolation describes a transaction that was forcefully aborted
// without encountering step contention — a counterexample to
// Definition 2.
type OFViolation struct {
	Tx model.TxID
}

// String renders the violation.
func (v OFViolation) String() string {
	return fmt.Sprintf("%v forcefully aborted without step contention", v.Tx)
}

// CheckObstructionFree decides Definition 2 on a low-level history: for
// every transaction T_k that is forcefully aborted (aborted without
// having invoked tryA), there must be a step of a process other than
// pE(T_k) after T_k's first event and before its abort event.
func CheckObstructionFree(h *model.History) []OFViolation {
	txs := model.Transactions(h)
	var out []OFViolation
	for _, t := range txs {
		if !t.ForcedAbort {
			continue
		}
		contended := false
		for _, s := range h.Steps {
			if s.Proc != t.Proc && s.Time > t.First && s.Time < t.End {
				contended = true
				break
			}
		}
		if !contended {
			out = append(out, OFViolation{Tx: t.ID})
		}
	}
	return out
}

// StepContention reports whether any process other than proc executed a
// step strictly within (from, to).
func StepContention(h *model.History, proc model.ProcID, from, to int64) bool {
	for _, s := range h.Steps {
		if s.Proc != proc && s.Time > from && s.Time < to {
			return true
		}
	}
	return false
}

// DAPViolation is a pair of transactions with disjoint t-variable sets
// that nevertheless conflicted on a base object (Definition 12
// violated). Theorem 13 says every OFTM run can be driven to produce
// one; experiment E7 counts them per engine.
type DAPViolation struct {
	Obj     model.ObjID
	ObjName string
	Tx1     model.TxID
	Tx2     model.TxID
}

// String renders the violation.
func (v DAPViolation) String() string {
	name := v.ObjName
	if name == "" {
		name = fmt.Sprintf("obj%d", int(v.Obj))
	}
	return fmt.Sprintf("%v and %v conflict on base object %s but share no t-variable", v.Tx1, v.Tx2, name)
}

// NameFunc resolves base-object ids to names (sim.Env.ObjName); nil is
// allowed.
type NameFunc func(model.ObjID) string

// CheckStrictDAP finds all strict-disjoint-access-parallelism
// violations in a low-level history: pairs of transactions executed by
// different processes that both accessed some base object, at least one
// of them writing, while their t-variable sets (from the high-level
// history) are disjoint. Steps not attributed to any transaction are
// ignored.
func CheckStrictDAP(h *model.History, name NameFunc) []DAPViolation {
	txs := model.Transactions(h)
	varSets := map[model.TxID]map[model.VarID]bool{}
	for _, t := range txs {
		varSets[t.ID] = t.VarSet()
	}
	type access struct {
		tx    model.TxID
		proc  model.ProcID
		write bool
	}
	byObj := map[model.ObjID][]access{}
	for _, s := range h.Steps {
		if s.Tx.IsZero() {
			continue
		}
		byObj[s.Obj] = append(byObj[s.Obj], access{tx: s.Tx, proc: s.Proc, write: s.Write})
	}
	type pairObj struct {
		t1, t2 model.TxID
		obj    model.ObjID
	}
	// Dedup per (pair, object), not per pair: an engine may make a
	// disjoint pair conflict on several base objects (e.g. a
	// descriptor's status word and a commit-epoch counter), and the
	// experiments name each of them.
	seen := map[pairObj]bool{}
	var out []DAPViolation
	for obj, accs := range byObj {
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				a, b := accs[i], accs[j]
				if a.tx == b.tx || a.proc == b.proc {
					continue
				}
				if !a.write && !b.write {
					continue
				}
				if sharesVar(varSets[a.tx], varSets[b.tx]) {
					continue
				}
				key := pairObj{t1: a.tx, t2: b.tx, obj: obj}
				if key.t1.Handle() > key.t2.Handle() {
					key.t1, key.t2 = key.t2, key.t1
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				v := DAPViolation{Obj: obj, Tx1: key.t1, Tx2: key.t2}
				if name != nil {
					v.ObjName = name(obj)
				}
				out = append(out, v)
			}
		}
	}
	return out
}

func sharesVar(a, b map[model.VarID]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for v := range a {
		if b[v] {
			return true
		}
	}
	return false
}

// CheckICObstructionFree decides Definition 3 (ic-obstruction-freedom)
// on a low-level history, given the crash times of processes (from
// sim.Env.CrashTimes; a process absent from the map never crashed): a
// transaction T_k may be forcefully aborted only if some transaction
// T_i concurrent to T_k is executed by a process that has not crashed
// before the first event of T_k.
//
// Theorem 5 proves Definitions 2 and 3 equivalent; the test suites
// check both on the same histories of the OFTM engines.
func CheckICObstructionFree(h *model.History, crashedAt map[model.ProcID]int64) []OFViolation {
	txs := model.Transactions(h)
	var out []OFViolation
	for _, t := range txs {
		if !t.ForcedAbort {
			continue
		}
		justified := false
		for _, u := range txs {
			if u.ID == t.ID {
				continue
			}
			if model.Precedes(u, t) || model.Precedes(t, u) {
				continue // not concurrent
			}
			if ct, crashed := crashedAt[u.Proc]; crashed && ct < t.First {
				continue // executed by a process already dead
			}
			justified = true
			break
		}
		if !justified {
			out = append(out, OFViolation{Tx: t.ID})
		}
	}
	return out
}
