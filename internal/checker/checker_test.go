package checker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// hb is a small helper building histories op by op.
type hb struct {
	rec *model.Recorder
}

func newHB() *hb { return &hb{rec: model.NewRecorder(model.NewClock())} }

func (b *hb) op(o model.Op) *hb {
	inv := b.rec.Invoke(o.Proc)
	b.rec.Respond(inv, o)
	return b
}

func (b *hb) pending(o model.Op) *hb {
	inv := b.rec.Invoke(o.Proc)
	b.rec.Cut(inv, o)
	return b
}

func (b *hb) step(s model.Step) *hb {
	b.rec.RecordStep(s)
	return b
}

func (b *hb) txs() []*model.TxView { return model.Transactions(b.rec.History()) }

func (b *hb) hist() *model.History { return b.rec.History() }

var (
	t11 = model.TxID{Proc: 1, Seq: 1}
	t21 = model.TxID{Proc: 2, Seq: 1}
	t31 = model.TxID{Proc: 3, Seq: 1}
)

func TestSerializableSimple(t *testing.T) {
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 5})
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 5})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	res := CheckSerializable(b.txs(), nil)
	if !res.OK {
		t.Fatalf("must be serializable: %s", res.Reason)
	}
	if len(res.Witness) != 2 || res.Witness[0] != t11 {
		t.Fatalf("witness %v, want [T1.1 T2.1]", res.Witness)
	}
}

func TestNotSerializableWriteSkew(t *testing.T) {
	// T1: R(x):0, W(y,1), C.  T2: R(y):0, W(x,1), C.
	// Neither order is legal.
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Ret: 0})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 1, Ret: 0})
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 1, Arg: 1})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpWrite, Var: 0, Arg: 1})
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	if res := CheckSerializable(b.txs(), nil); res.OK {
		t.Fatalf("write-skew with both commits must not be serializable (witness %v)", res.Witness)
	}
}

func TestCommitPendingCredited(t *testing.T) {
	// T1's tryC never responded, but T2 read its write and committed:
	// only crediting T1 as committed explains the history.
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 5})
	b.pending(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 5})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	if res := CheckSerializable(b.txs(), nil); !res.OK {
		t.Fatalf("commit-pending writer must be creditable: %s", res.Reason)
	}
}

func TestCommitPendingDropped(t *testing.T) {
	// Same, but T2 read the OLD value: T1 must be treated as never
	// committed.
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 5})
	b.pending(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 0})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	if res := CheckSerializable(b.txs(), nil); !res.OK {
		t.Fatalf("commit-pending writer must be droppable: %s", res.Reason)
	}
}

func TestOpacityRequiresRealTimeOrder(t *testing.T) {
	// T1 commits W(x,1) strictly before T2 begins; T2 reads x=0 and
	// commits. Serializable (T2 ordered first), but opacity forbids
	// reordering against real time.
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 1})
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 0})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	txs := b.txs()
	if res := CheckSerializable(txs, nil); !res.OK {
		t.Fatalf("stale read is serializable by reordering: %s", res.Reason)
	}
	if res := CheckOpacity(txs, nil); res.OK {
		t.Fatalf("stale read after real-time-preceding commit must violate opacity (witness %v)", res.Witness)
	}
}

func TestOpacityAbortedReadsMustBeConsistent(t *testing.T) {
	// T1 commits x=1 and y=1 atomically. T3 aborted after reading the
	// impossible mixed snapshot x=0, y=1. Serializability ignores T3;
	// opacity must reject.
	build := func(xRead, yRead uint64) []*model.TxView {
		b := newHB()
		b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 1})
		b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 1, Arg: 1})
		b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
		b.op(model.Op{Proc: 3, Tx: t31, Kind: model.OpRead, Var: 0, Ret: xRead})
		b.op(model.Op{Proc: 3, Tx: t31, Kind: model.OpRead, Var: 1, Ret: yRead})
		b.op(model.Op{Proc: 3, Tx: t31, Kind: model.OpRead, Var: 0, Ret: xRead, Aborted: true})
		return b.txs()
	}
	// Consistent snapshots pass...
	if res := CheckOpacity(build(1, 1), nil); !res.OK {
		t.Fatalf("consistent (1,1) snapshot must be opaque: %s", res.Reason)
	}
	// ...the mixed snapshot does not.
	if res := CheckOpacity(build(0, 1), nil); res.OK {
		t.Fatalf("mixed snapshot (0,1) must violate opacity")
	}
	if res := CheckSerializable(build(0, 1), nil); !res.OK {
		t.Fatalf("serializability ignores the aborted reader: %s", res.Reason)
	}
}

func TestObstructionFreedomChecker(t *testing.T) {
	// T1 forcefully aborted with a step of p2 inside its interval: OK.
	b := newHB()
	inv := b.rec.Invoke(1)
	b.step(model.Step{Proc: 2, Tx: t21, Obj: 0, Name: "cas", Write: true})
	b.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Aborted: true})
	if v := CheckObstructionFree(b.hist()); len(v) != 0 {
		t.Fatalf("contended forceful abort is allowed: %v", v)
	}

	// T1 forcefully aborted with no other-process steps: violation.
	b2 := newHB()
	b2.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Aborted: true})
	v := CheckObstructionFree(b2.hist())
	if len(v) != 1 || v[0].Tx != t11 {
		t.Fatalf("uncontended forceful abort must be flagged: %v", v)
	}
	if v[0].String() == "" {
		t.Fatalf("violation must render")
	}

	// tryA aborts are not forceful: no violation.
	b3 := newHB()
	b3.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryAbort, Aborted: true})
	if v := CheckObstructionFree(b3.hist()); len(v) != 0 {
		t.Fatalf("tryA abort flagged: %v", v)
	}
}

func TestStepContentionHelper(t *testing.T) {
	b := newHB()
	inv := b.rec.Invoke(1)
	b.step(model.Step{Proc: 1, Tx: t11, Obj: 0, Name: "read"})
	b.step(model.Step{Proc: 2, Tx: t21, Obj: 0, Name: "read"})
	b.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0})
	h := b.hist()
	if !StepContention(h, 1, 0, 1<<40) {
		t.Fatalf("p2's step must count as contention for p1")
	}
	if StepContention(h, 2, 0, 2) {
		t.Fatalf("own step must not count; p1's step is at t=2")
	}
}

func TestStrictDAPChecker(t *testing.T) {
	// T1 uses var x0, T2 uses var x1 (disjoint), but both hit base
	// object 7, one writing: violation.
	b := newHB()
	inv := b.rec.Invoke(1)
	b.step(model.Step{Proc: 1, Tx: t11, Obj: 7, Name: "cas", Write: true})
	b.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Ret: 0})
	inv = b.rec.Invoke(2)
	b.step(model.Step{Proc: 2, Tx: t21, Obj: 7, Name: "read"})
	b.rec.Respond(inv, model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 1, Ret: 0})
	v := CheckStrictDAP(b.hist(), func(model.ObjID) string { return "descriptor" })
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].ObjName != "descriptor" || v[0].String() == "" {
		t.Fatalf("violation rendering: %+v", v[0])
	}

	// Same scenario but both only read: no conflict.
	b2 := newHB()
	inv = b2.rec.Invoke(1)
	b2.step(model.Step{Proc: 1, Tx: t11, Obj: 7, Name: "read"})
	b2.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Ret: 0})
	inv = b2.rec.Invoke(2)
	b2.step(model.Step{Proc: 2, Tx: t21, Obj: 7, Name: "read"})
	b2.rec.Respond(inv, model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 1, Ret: 0})
	if v := CheckStrictDAP(b2.hist(), nil); len(v) != 0 {
		t.Fatalf("read-read is not a conflict: %v", v)
	}

	// Shared t-variable: conflicts are allowed.
	b3 := newHB()
	inv = b3.rec.Invoke(1)
	b3.step(model.Step{Proc: 1, Tx: t11, Obj: 7, Name: "cas", Write: true})
	b3.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 3, Arg: 1})
	inv = b3.rec.Invoke(2)
	b3.step(model.Step{Proc: 2, Tx: t21, Obj: 7, Name: "cas", Write: true})
	b3.rec.Respond(inv, model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 3, Ret: 0})
	if v := CheckStrictDAP(b3.hist(), nil); len(v) != 0 {
		t.Fatalf("transactions sharing x3 may conflict: %v", v)
	}
}

func TestWitnessChecker(t *testing.T) {
	b := newHB()
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 5})
	b.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 5})
	b.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	if res := CheckSerializableWitness(b.txs(), nil); !res.OK {
		t.Fatalf("commit-order witness must pass: %s", res.Reason)
	}

	// A stale read that needs reordering fails the witness check even
	// though the exact check passes — documented incompleteness.
	b2 := newHB()
	b2.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpWrite, Var: 0, Arg: 1})
	b2.op(model.Op{Proc: 1, Tx: t11, Kind: model.OpTryCommit})
	b2.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0, Ret: 0})
	b2.op(model.Op{Proc: 2, Tx: t21, Kind: model.OpTryCommit})
	if res := CheckSerializableWitness(b2.txs(), nil); res.OK {
		t.Fatalf("witness checker should fail on commit-order-illegal history")
	}
	if res := CheckSerializable(b2.txs(), nil); !res.OK {
		t.Fatalf("exact checker must still pass: %s", res.Reason)
	}
}

func TestExactLimitRefusal(t *testing.T) {
	b := newHB()
	for i := 0; i < ExactLimit+1; i++ {
		tx := model.TxID{Proc: model.ProcID(i + 1), Seq: 1}
		b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpWrite, Var: 0, Arg: uint64(i)})
		b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpTryCommit})
	}
	if res := CheckSerializable(b.txs(), nil); res.OK {
		t.Fatalf("oversized history must be refused by the exact checker")
	}
	if res := CheckSerializableWitness(b.txs(), nil); !res.OK {
		t.Fatalf("witness checker must handle it: %s", res.Reason)
	}
}

// TestSequentialHistoriesAlwaysPass is the property-based sanity check:
// any history generated by executing transactions one at a time against
// a reference store is serializable, opaque, and violation-free.
func TestSequentialHistoriesAlwaysPass(t *testing.T) {
	gen := func(seed int64) []*model.TxView {
		rng := rand.New(rand.NewSource(seed))
		b := newHB()
		store := map[model.VarID]uint64{}
		nvars := 1 + rng.Intn(4)
		ntx := 1 + rng.Intn(6)
		for i := 0; i < ntx; i++ {
			tx := model.TxID{Proc: model.ProcID(rng.Intn(3) + 1), Seq: i + 1}
			overlay := map[model.VarID]uint64{}
			nops := 1 + rng.Intn(4)
			commit := rng.Intn(4) != 0
			for j := 0; j < nops; j++ {
				v := model.VarID(rng.Intn(nvars))
				if rng.Intn(2) == 0 {
					val, ok := overlay[v]
					if !ok {
						val = store[v]
					}
					b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpRead, Var: v, Ret: val})
				} else {
					val := uint64(rng.Intn(100))
					overlay[v] = val
					b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpWrite, Var: v, Arg: val})
				}
			}
			if commit {
				b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpTryCommit})
				for v, val := range overlay {
					store[v] = val
				}
			} else {
				b.op(model.Op{Proc: tx.Proc, Tx: tx, Kind: model.OpTryAbort, Aborted: true})
			}
		}
		return b.txs()
	}
	f := func(seed int64) bool {
		txs := gen(seed)
		return CheckSerializable(txs, nil).OK && CheckOpacity(txs, nil).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOpacityImpliesSerializability: on arbitrary random histories the
// two checkers must respect the paper's hierarchy — opacity is
// serializability plus real-time order and consistent aborted reads.
func TestOpacityImpliesSerializability(t *testing.T) {
	gen := func(seed int64) []*model.TxView {
		rng := rand.New(rand.NewSource(seed))
		b := newHB()
		nvars := 1 + rng.Intn(3)
		for i := 0; i < 1+rng.Intn(5); i++ {
			proc := model.ProcID(rng.Intn(3) + 1)
			tx := model.TxID{Proc: proc, Seq: i + 1}
			for j := 0; j < 1+rng.Intn(3); j++ {
				v := model.VarID(rng.Intn(nvars))
				if rng.Intn(2) == 0 {
					b.op(model.Op{Proc: proc, Tx: tx, Kind: model.OpRead, Var: v, Ret: uint64(rng.Intn(3))})
				} else {
					b.op(model.Op{Proc: proc, Tx: tx, Kind: model.OpWrite, Var: v, Arg: uint64(rng.Intn(3))})
				}
			}
			if rng.Intn(4) != 0 {
				b.op(model.Op{Proc: proc, Tx: tx, Kind: model.OpTryCommit})
			} else {
				b.op(model.Op{Proc: proc, Tx: tx, Kind: model.OpTryAbort, Aborted: true})
			}
		}
		return b.txs()
	}
	f := func(seed int64) bool {
		txs := gen(seed)
		if CheckOpacity(txs, nil).OK {
			return CheckSerializable(txs, nil).OK
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestICObstructionFreeChecker covers Definition 3 directly.
func TestICObstructionFreeChecker(t *testing.T) {
	// T1 forcefully aborted while T2 (never-crashed process) runs
	// concurrently: allowed.
	b := newHB()
	inv1 := b.rec.Invoke(1)
	inv2 := b.rec.Invoke(2)
	b.rec.Respond(inv2, model.Op{Proc: 2, Tx: t21, Kind: model.OpRead, Var: 0})
	b.rec.Respond(inv1, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Aborted: true})
	if v := CheckICObstructionFree(b.hist(), nil); len(v) != 0 {
		t.Fatalf("concurrent live transaction justifies the abort: %v", v)
	}
	// Same history, but p2 crashed long before T1 started: violation.
	if v := CheckICObstructionFree(b.hist(), map[model.ProcID]int64{2: 0}); len(v) != 1 {
		t.Fatalf("crashed-before-start process cannot justify: %v", v)
	}
	// p2 crashed after T1's first event: still justifies.
	if v := CheckICObstructionFree(b.hist(), map[model.ProcID]int64{2: 1 << 40}); len(v) != 0 {
		t.Fatalf("late crash still justifies: %v", v)
	}
	// No concurrent transaction at all: violation.
	b2 := newHB()
	inv := b2.rec.Invoke(1)
	b2.rec.Respond(inv, model.Op{Proc: 1, Tx: t11, Kind: model.OpRead, Var: 0, Aborted: true})
	if v := CheckICObstructionFree(b2.hist(), nil); len(v) != 1 {
		t.Fatalf("lonely forceful abort must violate: %v", v)
	}
}
