// Package checker decides the paper's correctness and progress
// properties on recorded histories:
//
//   - Serializability (Definition 1): an exact, exponential-in-the-small
//     search over commit-completions and sequential orders, plus a
//     linear-time witness check (commit order) for large histories.
//   - Opacity ([15], used throughout Appendix B): serializability
//     strengthened with real-time order preservation and consistency of
//     the reads of *every* transaction, aborted and live ones included.
//   - Obstruction-freedom (Definition 2): every forcefully aborted
//     transaction encountered step contention.
//   - Strict disjoint-access-parallelism (Definition 12): transactions
//     that conflict on a base object must share a t-variable. Theorem 13
//     proves every OFTM must violate this; the checker finds the
//     violating base objects.
//
// All checkers are pure functions over model.History / model.TxView and
// never touch the engines.
package checker

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Result is the outcome of a safety check.
type Result struct {
	OK bool
	// Witness is a serialization order proving OK (ids in order), when
	// the check searched for one.
	Witness []model.TxID
	// Reason explains a failure.
	Reason string
}

// ExactLimit is the largest number of transactions the exact
// (exponential) searches accept before refusing; larger histories should
// use the witness checkers.
const ExactLimit = 14

// CheckSerializable decides Definition 1 exactly: does some
// commit-completion of the history have its committed transactions
// equivalent to a sequential legal history? Commit-pending transactions
// may be credited as committed or dropped; aborted and live transactions
// are ignored. init gives initial t-variable values (nil = all zero).
func CheckSerializable(txs []*model.TxView, init map[model.VarID]uint64) Result {
	var place []*model.TxView // must or may be placed
	for _, t := range txs {
		if t.Status == model.Committed || t.CommitPending {
			place = append(place, t)
		}
	}
	if len(place) > ExactLimit {
		return Result{OK: false, Reason: fmt.Sprintf("checker: %d transactions exceed the exact-search limit %d; use CheckSerializableWitness", len(place), ExactLimit)}
	}
	s := &serialSearch{txs: place, init: init, realTime: false, memo: map[string]bool{}}
	if order, ok := s.search(); ok {
		return Result{OK: true, Witness: order}
	}
	return Result{OK: false, Reason: "checker: no commit-completion has a legal sequential equivalent"}
}

// CheckOpacity decides opacity exactly: a single total order on all
// transactions that (1) respects real-time precedence, (2) is legal for
// the committed (or credited commit-pending) transactions, and (3) under
// which every transaction — including aborted and live ones — observed a
// consistent (legal) state. This is final-state opacity in the sense of
// [15], which Algorithm 2's correctness proof (Appendix B) establishes
// via the opacity graph.
func CheckOpacity(txs []*model.TxView, init map[model.VarID]uint64) Result {
	if len(txs) > ExactLimit {
		return Result{OK: false, Reason: fmt.Sprintf("checker: %d transactions exceed the exact-search limit %d; use CheckOpacityWitness", len(txs), ExactLimit)}
	}
	s := &serialSearch{txs: txs, init: init, realTime: true, memo: map[string]bool{}}
	if order, ok := s.search(); ok {
		return Result{OK: true, Witness: order}
	}
	return Result{OK: false, Reason: "checker: no real-time-respecting legal order exists (opacity violated)"}
}

// serialSearch is the DFS engine shared by the serializability and
// opacity checks. In realTime mode all transactions participate and
// real-time edges constrain the order; otherwise only committed /
// commit-pending transactions are placed and order is unconstrained.
type serialSearch struct {
	txs      []*model.TxView
	init     map[model.VarID]uint64
	realTime bool
	memo     map[string]bool // (mask, state) -> already-failed
}

// effective reports how the transaction participates: placed as a
// state-changing committed transaction, placed read-only (aborted/live:
// reads must be legal, writes invisible), or optional.
func (s *serialSearch) committedLike(t *model.TxView) bool {
	return t.Status == model.Committed || t.CommitPending
}

func (s *serialSearch) search() ([]model.TxID, bool) {
	n := len(s.txs)
	state := model.NewVarState(s.init)
	order := make([]model.TxID, 0, n)
	var dfs func(mask uint64) bool
	dfs = func(mask uint64) bool {
		if len(order) == n {
			return true
		}
		key := stateKey(mask, state)
		if s.memo[key] {
			return false
		}
		for i, t := range s.txs {
			bit := uint64(1) << uint(i)
			if mask&bit != 0 {
				continue
			}
			if s.realTime && !s.predecessorsPlaced(mask, i) {
				continue
			}
			// A commit-pending transaction may also be dropped entirely:
			// model that by allowing it to be placed as aborted-like.
			// (Covered below by the two placement modes.)
			if s.committedLike(t) {
				if model.ReadsLegal(t, state) {
					saved := snapshotWrites(state, t)
					state.Apply(t)
					order = append(order, t.ID)
					if dfs(mask | bit) {
						return true
					}
					order = order[:len(order)-1]
					restoreWrites(state, saved)
				}
				if t.CommitPending && !s.realTime {
					// Credit the pending transaction as never-committed:
					// simply skip it (it contributes nothing).
					order = append(order, t.ID)
					if dfs(mask | bit) {
						return true
					}
					order = order[:len(order)-1]
				}
				if t.CommitPending && s.realTime {
					// Dropped pending transaction: reads must still be
					// consistent (it was live), writes invisible.
					if model.ReadsLegal(t, state) {
						order = append(order, t.ID)
						if dfs(mask | bit) {
							return true
						}
						order = order[:len(order)-1]
					}
				}
			} else {
				// Aborted or live: participates only in realTime
				// (opacity) mode; reads must be legal, writes invisible.
				if !s.realTime {
					panic("checker: non-committed transaction in serializability search")
				}
				if model.ReadsLegal(t, state) {
					order = append(order, t.ID)
					if dfs(mask | bit) {
						return true
					}
					order = order[:len(order)-1]
				}
			}
		}
		s.memo[key] = true
		return false
	}
	if dfs(0) {
		return order, true
	}
	return nil, false
}

// predecessorsPlaced reports whether every transaction that really-
// precedes txs[i] is already placed.
func (s *serialSearch) predecessorsPlaced(mask uint64, i int) bool {
	for j, u := range s.txs {
		if j == i || mask&(uint64(1)<<uint(j)) != 0 {
			continue
		}
		if model.Precedes(u, s.txs[i]) {
			return false
		}
	}
	return true
}

type savedWrite struct {
	v       model.VarID
	val     uint64
	present bool
}

func snapshotWrites(state *model.VarState, t *model.TxView) []savedWrite {
	out := make([]savedWrite, 0, len(t.Writes))
	for v := range t.Writes {
		val, ok := state.Cur[v]
		out = append(out, savedWrite{v: v, val: val, present: ok})
	}
	return out
}

func restoreWrites(state *model.VarState, saved []savedWrite) {
	for _, s := range saved {
		if s.present {
			state.Cur[s.v] = s.val
		} else {
			delete(state.Cur, s.v)
		}
	}
}

func stateKey(mask uint64, state *model.VarState) string {
	keys := make([]model.VarID, 0, len(state.Cur))
	for v := range state.Cur {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	b := make([]byte, 0, 8+len(keys)*16)
	b = appendUint(b, mask)
	for _, v := range keys {
		b = appendUint(b, uint64(v))
		b = appendUint(b, state.Cur[v])
	}
	return string(b)
}

func appendUint(b []byte, x uint64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(x>>(8*uint(i))))
	}
	return b
}

// CheckSerializableWitness checks legality of the specific order given
// by commit-event time — the serialization order of every engine in this
// repository — in O(n·ops). It is sound (a pass implies
// serializability) but not complete (a failure does not refute it); the
// randomized campaigns fall back to the exact search on failure when the
// history is small enough.
func CheckSerializableWitness(txs []*model.TxView, init map[model.VarID]uint64) Result {
	var committed []*model.TxView
	for _, t := range txs {
		if t.Status == model.Committed {
			committed = append(committed, t)
		}
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].End < committed[j].End })
	if model.Legal(committed, init) {
		w := make([]model.TxID, len(committed))
		for i, t := range committed {
			w[i] = t.ID
		}
		return Result{OK: true, Witness: w}
	}
	return Result{OK: false, Reason: "checker: commit-order witness is not legal"}
}
