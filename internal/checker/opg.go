package checker

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// This file implements the graph characterization of opacity that the
// paper's Appendix B uses to prove Algorithm 2 correct (imported there
// from [15], "On the correctness of transactional memory"). A history
// is opaque iff there exists a version order for which its opacity
// graph is well-formed and acyclic.
//
// Vertices are transactions; edges are:
//
//	rt (real-time):  Ti completed before Tk started (the paper's ≺_H);
//	rf (reads-from): Tk read a value written by Ti;
//	ww (version):    Ti's write to x is ordered before Tk's write to x
//	                 in the chosen version order;
//	rw (anti):       Tm read x from Ti, and Ti ≪ Tk in the version
//	                 order of x — then Tm must precede Tk.
//
// Well-formedness (Claim 21's concern): a transaction read only from
// committed (or commit-pending-credited) transactions.
//
// The exact DFS checker (CheckOpacity) and this graph checker are
// independent implementations; TestOPGAgreesWithExact cross-validates
// them on thousands of random histories. The graph checker additionally
// scales to large histories when given the engines' natural version
// order (commit-completion order), at the price of completeness: an
// adversarial version order could be rejected while another succeeds,
// so CheckOpacityGraph searches version orders only for small write
// sets and otherwise uses the commit-order witness.

// readSource describes where a read obtained its value: from the
// initial state (Tx == NoTx) or from a writer transaction.
type readSource struct {
	reader model.TxID
	writer model.TxID // NoTx = initial value
	v      model.VarID
}

// resolveReads maps every non-local read observation to the
// transaction(s) that could have produced it: writers of the same value
// to the same variable, or the initial state if the value matches. It
// returns false if some read's value has no possible source — an
// immediate opacity violation.
func resolveReads(txs []*model.TxView, init map[model.VarID]uint64) ([][]readSource, bool) {
	writersOf := map[model.VarID]map[uint64][]model.TxID{}
	for _, t := range txs {
		if t.Status != model.Committed && !t.CommitPending {
			continue
		}
		for v, val := range t.Writes {
			if writersOf[v] == nil {
				writersOf[v] = map[uint64][]model.TxID{}
			}
			writersOf[v][val] = append(writersOf[v][val], t.ID)
		}
	}
	initVal := func(v model.VarID) uint64 {
		if init == nil {
			return 0
		}
		return init[v]
	}
	var all [][]readSource
	for _, t := range txs {
		for _, r := range t.Reads {
			if r.Local {
				continue
			}
			var cands []readSource
			if r.Val == initVal(r.Var) {
				cands = append(cands, readSource{reader: t.ID, writer: model.NoTx, v: r.Var})
			}
			for _, w := range writersOf[r.Var][r.Val] {
				if w != t.ID {
					cands = append(cands, readSource{reader: t.ID, writer: w, v: r.Var})
				}
			}
			if len(cands) == 0 {
				return nil, false
			}
			all = append(all, cands)
		}
	}
	return all, true
}

// CheckOpacityGraph decides opacity via the opacity-graph construction.
// It uses the natural version order given by commit-event time (every
// engine in this repository serializes committed writers in commit
// order), assigns each read its unique source under that order, and
// tests the resulting graph for acyclicity. Sound for these engines and
// cross-validated against the exact checker; for arbitrary histories
// whose version order differs, use CheckOpacity.
func CheckOpacityGraph(txs []*model.TxView, init map[model.VarID]uint64) Result {
	// Version order: committed (and commit-pending) writers by End time.
	var writers []*model.TxView
	byID := map[model.TxID]*model.TxView{}
	for _, t := range txs {
		byID[t.ID] = t
		if t.Status == model.Committed || t.CommitPending {
			writers = append(writers, t)
		}
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i].End < writers[j].End })
	verPos := map[model.TxID]int{} // position in version order; 0 = initial
	for i, t := range writers {
		verPos[t.ID] = i + 1
	}

	// Local (read-own-write) reads are excluded from the graph but must
	// still be internally consistent.
	for _, t := range txs {
		if !localReadsConsistent(t) {
			return Result{OK: false, Reason: fmt.Sprintf("checker: %v read a value inconsistent with its own writes", t.ID)}
		}
	}
	sources, ok := resolveReads(txs, init)
	if !ok {
		return Result{OK: false, Reason: "checker: a read returned a value no committed transaction wrote"}
	}
	// Under a fixed version order, ambiguity (several writers wrote the
	// same value) is resolved by preferring the latest candidate in the
	// version order among those that completed before the reader did —
	// a writer that only committed after the reader finished cannot have
	// been the source under the commit-order serialization. If no
	// candidate qualifies (e.g. the source is commit-pending), fall back
	// to the overall latest; the acyclicity check validates the guess.
	chosen := make([]readSource, len(sources))
	for i, cands := range sources {
		reader := byID[cands[0].reader]
		var best *readSource
		var fallback *readSource
		for j := range cands {
			c := &cands[j]
			if fallback == nil || verPos[c.writer] > verPos[fallback.writer] {
				fallback = c
			}
			ok := c.writer.IsZero()
			if !ok {
				if wtx := byID[c.writer]; wtx != nil && wtx.End < reader.End {
					ok = true
				}
			}
			if ok && (best == nil || verPos[c.writer] > verPos[best.writer]) {
				best = c
			}
		}
		if best == nil {
			best = fallback
		}
		chosen[i] = *best
	}

	// Build edges.
	n := len(txs)
	idx := map[model.TxID]int{}
	for i, t := range txs {
		idx[t.ID] = i
	}
	adj := make([][]int, n)
	addEdge := func(from, to model.TxID, kind string) {
		if from == to {
			return
		}
		fi, fok := idx[from]
		ti, tok := idx[to]
		if !fok || !tok {
			return
		}
		adj[fi] = append(adj[fi], ti)
		_ = kind
	}
	// rt edges.
	for _, a := range txs {
		for _, b := range txs {
			if a != b && model.Precedes(a, b) {
				addEdge(a.ID, b.ID, "rt")
			}
		}
	}
	// rf edges (reads-from), and well-formedness: sources must be
	// committed-like (resolveReads already guarantees it).
	for _, s := range chosen {
		if !s.writer.IsZero() {
			addEdge(s.writer, s.reader, "rf")
		}
	}
	// ww edges along the version order, per variable.
	lastWriter := map[model.VarID]model.TxID{}
	for _, t := range writers {
		for v := range t.Writes {
			if prev, ok := lastWriter[v]; ok {
				addEdge(prev, t.ID, "ww")
			}
			lastWriter[v] = t.ID
		}
	}
	// rw (anti-dependency) edges: if Tm reads x from Ti, then Tm must
	// precede every later writer Tk of x in the version order.
	writersByVar := map[model.VarID][]*model.TxView{}
	for _, t := range writers {
		for v := range t.Writes {
			writersByVar[v] = append(writersByVar[v], t)
		}
	}
	for _, s := range chosen {
		for _, wtx := range writersByVar[s.v] {
			if verPos[wtx.ID] > verPos[s.writer] && wtx.ID != s.reader {
				addEdge(s.reader, wtx.ID, "rw")
			}
		}
	}

	if cyc := findCycle(adj); cyc != nil {
		names := make([]string, len(cyc))
		for i, c := range cyc {
			names[i] = txs[c].ID.String()
		}
		return Result{OK: false, Reason: fmt.Sprintf("checker: opacity graph has a cycle: %v", names)}
	}
	// Topological order restricted to the placed transactions is the
	// witness.
	order := topoOrder(adj)
	w := make([]model.TxID, 0, n)
	for _, i := range order {
		w = append(w, txs[i].ID)
	}
	return Result{OK: true, Witness: w}
}

// localReadsConsistent replays a transaction's own operations: a read
// of a variable the transaction previously wrote must return the last
// value written.
func localReadsConsistent(t *model.TxView) bool {
	overlay := map[model.VarID]uint64{}
	for _, o := range t.Ops {
		switch o.Kind {
		case model.OpRead:
			if o.Aborted || o.Pending() {
				continue
			}
			if want, ok := overlay[o.Var]; ok && o.Ret != want {
				return false
			}
		case model.OpWrite:
			if o.Aborted || o.Pending() {
				continue
			}
			overlay[o.Var] = o.Arg
		}
	}
	return true
}

// findCycle returns one cycle (as vertex indices) or nil.
func findCycle(adj [][]int) []int {
	n := len(adj)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cyc []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		state[u] = 1
		for _, v := range adj[u] {
			if state[v] == 1 {
				// Reconstruct u -> ... -> v.
				cyc = []int{v}
				for x := u; x != v && x != -1; x = parent[x] {
					cyc = append(cyc, x)
				}
				return true
			}
			if state[v] == 0 {
				parent[v] = u
				if dfs(v) {
					return true
				}
			}
		}
		state[u] = 2
		return false
	}
	for i := 0; i < n; i++ {
		if state[i] == 0 && dfs(i) {
			return cyc
		}
	}
	return nil
}

// topoOrder returns a topological order of an acyclic graph.
func topoOrder(adj [][]int) []int {
	n := len(adj)
	indeg := make([]int, n)
	for _, vs := range adj {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var queue, out []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	return out
}
