package trace_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestRenderFigure1(t *testing.T) {
	h, names := adversary.RunFig1(func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env))
	})
	if err := h.WellFormed(); err != nil {
		t.Fatalf("fig1 history ill-formed: %v", err)
	}
	out := trace.Render(h, names)
	for _, want := range []string{"p1", "p2", "R(x0)", "tryC", "-> C", "x.loc"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Both levels must be present: operation events and steps.
	if !strings.Contains(out, "inv ") || !strings.Contains(out, "  . ") {
		t.Errorf("two-level structure missing:\n%s", out)
	}
}

func TestTimelineOrdering(t *testing.T) {
	h, names := adversary.RunFig1(func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env))
	})
	evs := trace.Timeline(h, names)
	if len(evs) == 0 {
		t.Fatal("empty timeline")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	// p1's commit response must precede p2's read response (scripted
	// order; invocation events are local and may interleave freely).
	p2ReadResp := -1
	p1Commit := -1
	for i, e := range evs {
		if e.Proc == 2 && p2ReadResp < 0 && strings.Contains(e.Text, "ret") && strings.Contains(e.Text, "R:") {
			p2ReadResp = i
		}
		if e.Proc == 1 && strings.Contains(e.Text, "-> C") {
			p1Commit = i
		}
	}
	if p1Commit < 0 || p2ReadResp < 0 {
		t.Fatalf("expected both a p1 commit and a p2 read response")
	}
	if p2ReadResp < p1Commit {
		t.Fatalf("p2's read responded before p1 committed under the script")
	}
}

func TestRenderHandlesPendingOps(t *testing.T) {
	rec := model.NewRecorder(model.NewClock())
	tx := model.TxID{Proc: 1, Seq: 1}
	inv := rec.Invoke(1)
	rec.Cut(inv, model.Op{Proc: 1, Tx: tx, Kind: model.OpTryCommit})
	out := trace.Render(rec.History(), nil)
	if !strings.Contains(out, "tryC") {
		t.Fatalf("pending op missing:\n%s", out)
	}
}

func TestClipLongCells(t *testing.T) {
	rec := model.NewRecorder(model.NewClock())
	tx := model.TxID{Proc: 1, Seq: 1}
	inv := rec.Invoke(1)
	rec.RecordStep(model.Step{Proc: 1, Tx: tx, Obj: 3, Name: "averyveryverylongoperationname", Write: true})
	rec.Respond(inv, model.Op{Proc: 1, Tx: tx, Kind: model.OpRead, Var: 0})
	out := trace.Render(rec.History(), func(model.ObjID) string {
		return "an-extremely-long-object-name-that-overflows"
	})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Fatalf("line not clipped: %q", line)
		}
	}
}
