// Package trace renders recorded histories as ASCII timelines in the
// style of the paper's figures: one lane per process, high-level
// operation events and low-level steps on a shared time axis. The
// cmd/oftm-trace tool uses it to regenerate Figure 1 (the two-level
// execution model) and Figure 2 (the disjoint-access-parallelism
// impossibility scenario) from live runs.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Event is one rendered timeline entry.
type Event struct {
	Time int64
	Proc model.ProcID
	Text string
	Step bool
}

// Timeline flattens a history into per-time events.
func Timeline(h *model.History, objName func(model.ObjID) string) []Event {
	var evs []Event
	for _, o := range h.Ops {
		evs = append(evs, Event{Time: o.Inv, Proc: o.Proc, Text: "inv " + opText(o)})
		if !o.Pending() {
			evs = append(evs, Event{Time: o.Resp, Proc: o.Proc, Text: "ret " + retText(o)})
		}
	}
	for _, s := range h.Steps {
		name := fmt.Sprintf("obj%d", int(s.Obj))
		if objName != nil {
			name = objName(s.Obj)
		}
		evs = append(evs, Event{Time: s.Time, Proc: s.Proc, Text: s.Name + "(" + name + ")", Step: true})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return evs
}

func opText(o model.Op) string {
	switch o.Kind {
	case model.OpRead:
		return fmt.Sprintf("%v R(%v)", o.Tx, o.Var)
	case model.OpWrite:
		return fmt.Sprintf("%v W(%v,%d)", o.Tx, o.Var, o.Arg)
	case model.OpTryCommit:
		return fmt.Sprintf("%v tryC", o.Tx)
	case model.OpTryAbort:
		return fmt.Sprintf("%v tryA", o.Tx)
	}
	return o.Tx.String()
}

func retText(o model.Op) string {
	if o.Aborted {
		return fmt.Sprintf("%v -> A", o.Tx)
	}
	switch o.Kind {
	case model.OpRead:
		return fmt.Sprintf("%v R:%d", o.Tx, o.Ret)
	case model.OpWrite:
		return fmt.Sprintf("%v W ok", o.Tx)
	case model.OpTryCommit:
		return fmt.Sprintf("%v -> C", o.Tx)
	}
	return o.Tx.String()
}

// Render draws the timeline with one column lane per process, matching
// the paper's horizontal-lanes figures rotated to vertical (time flows
// down). Steps are indented under the enclosing operation.
func Render(h *model.History, objName func(model.ObjID) string) string {
	evs := Timeline(h, objName)
	procs := map[model.ProcID]bool{}
	for _, e := range evs {
		procs[e.Proc] = true
	}
	var order []model.ProcID
	for p := range procs {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	col := map[model.ProcID]int{}
	for i, p := range order {
		col[p] = i
	}

	const width = 34
	var b strings.Builder
	b.WriteString("time ")
	for _, p := range order {
		fmt.Fprintf(&b, "| %-*s", width-2, p.String())
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 5+len(order)*width) + "\n")
	for _, e := range evs {
		fmt.Fprintf(&b, "%4d ", e.Time)
		for i := range order {
			cell := ""
			if i == col[e.Proc] {
				if e.Step {
					cell = "  . " + e.Text
				} else {
					cell = e.Text
				}
			}
			fmt.Fprintf(&b, "| %-*s", width-2, clip(cell, width-2))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "~"
}
