package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "a", "bee", "c")
	tb.Add("x", 12, 3.5)
	tb.Add("longer", "y", "z")
	out := tb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "bee") {
		t.Fatalf("missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if len(lines[3]) != len(lines[4]) && !strings.HasPrefix(lines[1], "a") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestEnginesRegistry(t *testing.T) {
	es := Engines()
	if len(es) != 6 {
		t.Fatalf("want 6 engines, got %d", len(es))
	}
	names := map[string]bool{}
	for _, e := range es {
		if names[e.Name] {
			t.Fatalf("duplicate engine %s", e.Name)
		}
		names[e.Name] = true
		if e.Raw == nil || e.Sim == nil {
			t.Fatalf("engine %s missing factory", e.Name)
		}
		tm := e.Raw()
		if tm.Name() == "" {
			t.Fatalf("engine %s has empty TM name", e.Name)
		}
		if tm.ObstructionFree() != e.OF {
			t.Fatalf("engine %s OF flag mismatch", e.Name)
		}
	}
	if EngineByName("dstm").Name != "dstm" {
		t.Fatal("EngineByName lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown engine must panic")
		}
	}()
	EngineByName("nope")
}

func TestRunThroughputCountsOps(t *testing.T) {
	e := EngineByName("dstm")
	r := RunThroughput(e.Raw, BankTransfer(4), 2, 50)
	if r.Ops != 100 {
		t.Fatalf("ops = %d, want 100", r.Ops)
	}
	if r.Attempts < int64(r.Ops) {
		t.Fatalf("attempts %d < ops %d", r.Attempts, r.Ops)
	}
	if r.OpsPerSec() <= 0 {
		t.Fatalf("ops/s = %f", r.OpsPerSec())
	}
}

func TestWorkloadsRunOnEveryEngine(t *testing.T) {
	for _, e := range Engines() {
		ops := 30
		if e.Name == "alg2" {
			ops = 10
		}
		for _, w := range []Workload{BankTransfer(4), ReadMix("mix50", 8, 50), Disjoint(2)} {
			r := RunThroughput(e.Raw, w, 2, ops)
			if r.Ops != 2*ops {
				t.Fatalf("%s/%s: ops %d", e.Name, w.Name, r.Ops)
			}
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("want 15 experiments, got %d", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
	}
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 must not exist")
	}
}

// The experiment smoke tests run the fast experiments end to end and
// sanity-check their output text. E8 (minutes of wall time) is covered
// by the cmd tool and bench_test.go at the repo root instead.
func TestExperimentE1Output(t *testing.T) {
	var buf bytes.Buffer
	E1(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 1", "p1", "tryC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentE2Output(t *testing.T) {
	var buf bytes.Buffer
	E2(&buf)
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E2 reports failure:\n%s", out)
	}
	if !strings.Contains(out, "alg1 over dstm") || !strings.Contains(out, "alg1 over alg2") {
		t.Fatalf("E2 output incomplete:\n%s", out)
	}
}

func TestExperimentE4Output(t *testing.T) {
	var buf bytes.Buffer
	E4(&buf)
	out := buf.String()
	if !strings.Contains(out, "violations: 0") {
		t.Fatalf("E4 2-process safety must be clean:\n%s", out)
	}
	if !strings.Contains(out, "Claim 10") {
		t.Fatalf("E4 bivalence must sustain the budget:\n%s", out)
	}
}

func TestExperimentE6Output(t *testing.T) {
	var buf bytes.Buffer
	E6(&buf)
	out := buf.String()
	if strings.Contains(out, "FAIL") {
		t.Fatalf("E6 failed:\n%s", out)
	}
	if !strings.Contains(out, "Theorem 6") {
		t.Fatalf("E6 output incomplete:\n%s", out)
	}
}

func TestExperimentE7Output(t *testing.T) {
	var buf bytes.Buffer
	E7(&buf)
	out := buf.String()
	if !strings.Contains(out, "2pl") {
		t.Fatalf("E7 output incomplete:\n%s", out)
	}
	// 2pl's table row must report zero violations in both columns.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "2pl" {
			if fields[1] != "0" || fields[2] != "0" {
				t.Fatalf("2pl must have zero DAP violations: %q", line)
			}
		}
	}
}
