package bench

// Experiment E15: the serving grid re-measured after the async reply
// path (PR 9) plus a slow-reader soak. The grid half shares the E13
// measurement plan (and memo) — what changed is the serving runtime
// under it: replies now drain through per-connection pending buffers
// and a flusher pool instead of synchronous round-end writes, and
// round formation adapts its gather window, chunk budget and mailbox
// capacity to the live connection count. The acceptance readout is the
// per-core ratio on the cheap engine (nztm, where round overhead used
// to eat the folding win) without giving back the tl2 ratio.
//
// The soak half is the adversarial case the async path exists for: one
// connection pipelines a large burst and stops reading mid-load while
// healthy connections keep serving. Pre-PR 9, the stalled socket write
// blocked its worker and — through the round barrier — every worker,
// for up to FlushTimeout per round; now the stalled connection's bytes
// pile into its pending buffer until -max-pending-write pauses its
// reader, and nobody else notices. The row records the healthy
// connections' throughput and worst pipelined window alongside the
// backpressure counters that prove the stall actually happened.

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
)

const (
	// soakBudget is -max-pending-write for the soak server: small
	// enough that the burst trips backpressure within the measured
	// phase, large enough to hold several rounds of replies.
	soakBudget = 64 << 10
	// soakConns is the total connection count (1 stalled + healthy).
	soakConns = 64
	// soakWindows is the number of pipelined windows each healthy
	// connection pushes through while the stalled one sits there.
	soakWindows = 30
	// soakBurst is how many GETs of a 20-digit value the stalled
	// connection pipelines: ~10 MiB of replies, far past soakBudget
	// plus both socket buffers even at the kernel's largest autotuned
	// send buffer (tcp_wmem caps at 4 MiB on common configs — seal's
	// inline fast path drains into that buffer before EAGAIN pushes
	// the backlog to the pending buffer).
	soakBurst = 500000
)

// SoakResult is one slow-reader soak measurement: healthy-connection
// throughput and worst window with one non-reading connection present,
// plus the server's backpressure counters.
type SoakResult struct {
	Runtime string
	Conns   int // total, including the stalled connection
	Reqs    int64
	Elapsed time.Duration
	// Worst is the slowest single pipelined window observed on any
	// healthy connection — a cross-connection stall shows up here as a
	// multi-second outlier even when the aggregate throughput hides it.
	Worst time.Duration
	// Pauses/Kills are the flusher pool's counters after the run
	// (worker runtime only): the soak is only meaningful if the stalled
	// connection actually tripped a backpressure pause, and it must be
	// held by backpressure, not reaped by the FlushTimeout kill.
	Pauses int64
	Kills  int64
}

// ReqsPerSec returns the healthy connections' aggregate throughput.
func (r SoakResult) ReqsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reqs) / r.Elapsed.Seconds()
}

// RunSlowReaderSoak measures one soak point: conns-1 healthy pipelined
// connections push windows while one connection bursts requests and
// never reads its replies.
func RunSlowReaderSoak(rt string, conns, pipeline, windows int) (SoakResult, error) {
	res := SoakResult{Runtime: rt, Conns: conns}
	srv, keys, err := startLoadServerCfg(server.Config{
		Engine:          scaleEngine,
		Runtime:         rt,
		Workers:         scaleOpts.Workers,
		MaxPendingWrite: soakBudget,
		// Far beyond the soak's duration: the stalled connection must be
		// held by backpressure alone, not reaped by the kill.
		FlushTimeout: time.Minute,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	if _, err := srv.Store().Put(nil, "soakkey", ^uint64(0)); err != nil {
		return res, err
	}

	slow, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		return res, err
	}
	defer slow.Close()
	if tc, ok := slow.(*net.TCPConn); ok {
		// Shrink the receive buffer so the kernel absorbs little of the
		// burst and the server-side pending buffer fills fast.
		tc.SetReadBuffer(4 << 10)
	}

	healthy := conns - 1
	lcs := make([]*loadConn, healthy)
	for i := range lcs {
		lc, err := dialLoadConn(srv.Addr().String(), keys, int64(i+1), pipeline, 20, 5)
		if err != nil {
			return res, err
		}
		defer lc.close()
		lcs[i] = lc
	}

	errs := make([]error, healthy)
	worsts := make([]time.Duration, healthy)
	start := make(chan struct{})
	var warm, done sync.WaitGroup
	for i, lc := range lcs {
		i, lc := i, lc
		warm.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			err := lc.do(2 * pipeline)
			warm.Done()
			if err != nil {
				errs[i] = err
				return
			}
			<-start
			for wnd := 0; wnd < windows; wnd++ {
				st := time.Now()
				if err := lc.do(pipeline); err != nil {
					errs[i] = fmt.Errorf("window %d: %w", wnd, err)
					return
				}
				if el := time.Since(st); el > worsts[i] {
					worsts[i] = el
				}
			}
		}()
	}
	warm.Wait()
	// Launch the stall with the measured load: the write itself blocks
	// once backpressure stops the server from consuming the burst.
	go io.WriteString(slow, strings.Repeat("GET soakkey\n", soakBurst))
	t0 := time.Now()
	close(start)
	done.Wait()
	res.Elapsed = time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for _, wd := range worsts {
		if wd > res.Worst {
			res.Worst = wd
		}
	}
	res.Reqs = int64(healthy) * int64(windows) * int64(pipeline)
	if rt == "worker" {
		// The burst races the (short) healthy phase; give the flusher a
		// moment to observe the full socket and trip the pause before
		// snapshotting the counters.
		deadline := time.Now().Add(10 * time.Second)
		for srv.FlushStats().Pauses == 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		fs := srv.FlushStats()
		res.Pauses, res.Kills = fs.Pauses, fs.Kills
	}
	return res, nil
}

// E15 reports the post-async-flush serving grid with its acceptance
// ratios, then the slow-reader soak on both runtimes.
func E15(w io.Writer) {
	ms := runScaleGrid()
	key := func(c ScaleCase) string {
		return fmt.Sprintf("%s|%d|%d|%s", c.engine(), c.Conns, c.Shards, c.Fsync)
	}
	baseCore := map[string]float64{}
	for _, m := range ms {
		if m.err == nil && m.c.Runtime == "goroutine" {
			baseCore[key(m.c)] = m.res.ReqsPerCore()
		}
	}
	t := NewTable(fmt.Sprintf("Experiment E15 — serving grid after the async reply path (pipeline %d, %d loadgen proc(s))",
		scalePipeline, scaleOpts.Procs),
		"runtime", "engine", "conns", "shards", "wal", "req/s", "req/s/core", "allocs/req", "vs goroutine")
	ratios := map[string]float64{} // worker wal-off per-core ratios, keyed engine|conns
	allocsMax, nztmOffMax := 0.0, 0.0
	for _, m := range ms {
		if m.err != nil {
			fmt.Fprintf(w, "E15 %s %s c%d s%d %s: %v\n", m.c.Runtime, m.c.engine(), m.c.Conns, m.c.Shards, m.c.walLabel(), m.err)
			continue
		}
		rel := "-"
		if m.c.Runtime == "worker" {
			if base := baseCore[key(m.c)]; base > 0 && m.res.ReqsPerCore() > 0 {
				r := m.res.ReqsPerCore() / base
				rel = fmt.Sprintf("%.2fx/core", r)
				if m.c.Fsync == "" && m.c.Shards == srvShards {
					ratios[fmt.Sprintf("%s|%d", m.c.engine(), m.c.Conns)] = r
				}
			}
			if m.res.AllocsPerReq > allocsMax {
				allocsMax = m.res.AllocsPerReq
			}
			if m.c.engine() == "nztm" && m.c.Fsync == "" && m.res.AllocsPerReq > nztmOffMax {
				nztmOffMax = m.res.AllocsPerReq
			}
		}
		t.Add(m.c.Runtime, m.c.engine(),
			fmt.Sprintf("%d", m.c.Conns), fmt.Sprintf("%d", m.c.Shards), m.c.walLabel(),
			fmt.Sprintf("%.0f", m.res.ReqsPerSec()),
			fmt.Sprintf("%.0f", m.res.ReqsPerCore()),
			fmt.Sprintf("%.2f", m.res.AllocsPerReq), rel)
	}
	fmt.Fprint(w, t.String())
	gate := func(label string, k string, want float64) {
		r, ok := ratios[k]
		if !ok {
			fmt.Fprintf(w, "  %s >= %.1fx/core: n/a (point not in this grid)\n", label, want)
			return
		}
		fmt.Fprintf(w, "  %s >= %.1fx/core: %.2fx %s\n", label, want, r, pass(r >= want))
	}
	fmt.Fprintln(w, "Acceptance (wal-off, equal shards):")
	gate("nztm c64 ", "nztm|64", 1.5)
	gate("nztm c256", "nztm|256", 1.5)
	gate("tl2  c256", "tl2|256", 1.6)
	fmt.Fprintf(w, "  allocs/req <= 1 on every worker point: max %.2f %s\n", allocsMax, pass(allocsMax <= 1))
	fmt.Fprintf(w, "  allocs/req <= 0.2 on nztm wal-off:     max %.2f %s\n", nztmOffMax, pass(nztmOffMax <= 0.2))
	fmt.Fprintln(w)

	st := NewTable(fmt.Sprintf("Slow-reader soak — 1 of %d conns bursts %d GETs and never reads (windows of %d x %d reqs)",
		soakConns, soakBurst, soakWindows, scalePipeline),
		"soak", "conns", "healthy req/s", "worst window", "bp pauses", "kills")
	for _, rt := range []string{"goroutine", "worker"} {
		r, err := RunSlowReaderSoak(rt, soakConns, scalePipeline, soakWindows)
		if err != nil {
			fmt.Fprintf(w, "E15 soak %s: %v\n", rt, err)
			continue
		}
		st.Add("soak-"+rt, fmt.Sprintf("%d", r.Conns),
			fmt.Sprintf("%.0f", r.ReqsPerSec()),
			fmt.Sprint(r.Worst.Round(time.Millisecond)),
			fmt.Sprint(r.Pauses), fmt.Sprint(r.Kills))
	}
	fmt.Fprint(w, st.String())
	fmt.Fprintln(w, "A cross-connection stall would appear as a multi-second worst window; the worker row")
	fmt.Fprintln(w, "must show bp pauses >= 1 (the stall really tripped -max-pending-write) and kills = 0")
	fmt.Fprintln(w, "(held by backpressure, not reaped by FlushTimeout). The goroutine runtime isolates")
	fmt.Fprintln(w, "the stall in its own handler and has no flusher counters.")
}
