package bench

// Experiment E16: recovery time at production scale — chained
// incremental snapshots vs one full image. The tentpole claim of the
// chain format is that restart cost is bounded by dirty-set size +
// log-tail length instead of store size: a store that cuts cheap
// incremental snapshots whenever ~1% of its keys have churned restarts
// from the newest chain plus a short tail, while a store whose only
// affordable cut was one full dump long ago restarts from a map-decoded
// full image plus every record since.
//
// The two directories are built from the same synthetic 10M-key state
// (OFTM_E16_KEYS overrides the size — CI runs a truncated row) by a
// synthetic wal.SnapshotSource that partitions the key space into
// contiguous per-shard ranges, so the benchmark measures the wal layer
// alone with no store or engine in the loop:
//
// Both directories are measured at the same point in their snapshot
// schedule: the worst case, a crash immediately before the next
// scheduled cut, so the tail is one full inter-cut interval long.
// The schedules are equal-overhead: a full dump writes ~100x the bytes
// of one 1%-dirty incremental cut, so at the same snapshot budget full
// cuts happen ~100x less often and their worst-case tail is ~100x
// longer.
//
//   - recover-incremental: a full chain cut, 1% churn confined to one
//     of 128 shards (0.78% of keys), an incremental cut that re-images
//     only that shard and truncates the churn, then a tail of keys/100
//     effects (one full 1%-churn interval). Recovery loads the chain
//     (wire-form per-shard images, no per-entry hashing) and replays
//     the short tail.
//   - recover-full: one legacy full image at the same base state, then
//     a tail of keys effects (one full inter-cut interval at the
//     equal-overhead cadence) with no further cut.
//
// The headline figure is the speedup of incremental over full wal.Open
// time; the acceptance gate is >= 5x at 10M keys.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/kv"
	"repro/internal/wal"
)

// e16Shards partitions the synthetic key space; one dirty shard is
// 1/128 = 0.78% of keys, inside the <=1%-dirty working-set bound the
// experiment claims.
const e16Shards = 128

func e16Key(i int) string { return fmt.Sprintf("user%012d", i) }

// chainSource is a synthetic wal.SnapshotSource over a contiguous key
// range: shard s owns keys [s*n/S, (s+1)*n/S). Epochs are bumped by
// the benchmark driver to mark churned shards dirty.
type chainSource struct {
	n      int
	epochs [e16Shards]uint64
}

func (s *chainSource) Shards() int                   { return e16Shards }
func (s *chainSource) DirtyEpochLocked(i int) uint64 { return s.epochs[i] }
func (s *chainSource) DumpShard(i int) ([]kv.Pair, error) {
	lo, hi := i*s.n/e16Shards, (i+1)*s.n/e16Shards
	pairs := make([]kv.Pair, 0, hi-lo)
	for k := lo; k < hi; k++ {
		pairs = append(pairs, kv.Pair{Key: e16Key(k), Val: uint64(k + 1)})
	}
	return pairs, nil
}

// RecoveryResult is one E16 measurement.
type RecoveryResult struct {
	Mode    string // "incremental" or "full"
	Keys    int    // synthetic store size
	TailOps int    // effects past the last cut (replayed at recovery)
	Setup   time.Duration
	Open    time.Duration // wal.Open wall time — the figure
	RecKeys uint64        // keys the recovery reports (sanity)
}

// e16Append writes ops effects over shard 0's key range as records of
// eight effects each, and waits until the log goroutine has drained
// them (rotation and truncation bookkeeping happen on flush).
func e16Append(l *wal.Log, src *chainSource, ops int) error {
	hi := src.n / e16Shards
	var batch [8]kv.Effect
	for done := 0; done < ops; {
		n := len(batch)
		if ops-done < n {
			n = ops - done
		}
		for j := 0; j < n; j++ {
			batch[j] = kv.Effect{Key: e16Key((done + j) % hi), Val: uint64(done + j + 1)}
		}
		if err := l.Append(batch[:n]); err != nil {
			return err
		}
		done += n
	}
	want := l.Stats().Appended
	for l.Stats().Durable < want {
		time.Sleep(time.Millisecond)
	}
	return nil
}

// RunRecovery builds one E16 directory for the given mode and measures
// wal.Open over it.
func RunRecovery(mode string, keys int) (RecoveryResult, error) {
	res := RecoveryResult{Mode: mode, Keys: keys}
	dir, err := os.MkdirTemp("", "oftm-e16-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)

	t0 := time.Now()
	l, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, SegmentBytes: 4 << 20})
	if err != nil {
		return res, err
	}
	src := &chainSource{n: keys}
	churn := keys / 100 // 1% of keys churn between incremental cuts
	switch mode {
	case "incremental":
		// Base chain, then one churn+cut cycle so the measured directory
		// is a real incremental chain (127 linked images + 1 fresh), then
		// the short tail an every-1%-churn cut schedule leaves behind.
		if err := l.WriteSnapshotInc(src); err != nil {
			return res, err
		}
		if err := e16Append(l, src, churn); err != nil {
			return res, err
		}
		src.epochs[0]++
		if err := l.WriteSnapshotInc(src); err != nil {
			return res, err
		}
		res.TailOps = churn
	case "full":
		pairs := make([]kv.Pair, 0, keys)
		for s := 0; s < e16Shards; s++ {
			p, _ := src.DumpShard(s)
			pairs = append(pairs, p...)
		}
		if err := l.WriteSnapshot(func() ([]kv.Pair, error) { return pairs, nil }); err != nil {
			return res, err
		}
		res.TailOps = keys
	default:
		l.Close()
		return res, fmt.Errorf("bench: unknown recovery mode %q", mode)
	}
	if err := e16Append(l, src, res.TailOps); err != nil {
		return res, err
	}
	if err := l.Close(); err != nil {
		return res, err
	}
	res.Setup = time.Since(t0)

	t1 := time.Now()
	l2, rec, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		return res, err
	}
	res.Open = time.Since(t1)
	res.RecKeys = uint64(rec.Keys)
	if mode == "incremental" && rec.Base == nil {
		l2.Close()
		return res, fmt.Errorf("bench: incremental recovery did not load a chain")
	}
	if rec.Keys != keys {
		l2.Close()
		return res, fmt.Errorf("bench: recovered %d keys, want %d", rec.Keys, keys)
	}
	return res, l2.Close()
}

// e16Keys returns the synthetic store size: OFTM_E16_KEYS when set (the
// CI truncated row), else the 10M-key production scale the ROADMAP
// targets.
func e16Keys() int {
	if s := os.Getenv("OFTM_E16_KEYS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= e16Shards {
			return n
		}
	}
	return 10_000_000
}

// E16 measures restart time against store size: incremental chain +
// short tail vs full image + equal-overhead long tail. The final
// "E16 speedup:" line is machine-readable — CI's snapshot-smoke job
// gates on it with a truncated key count.
func E16(w io.Writer) {
	keys := e16Keys()
	t := NewTable(fmt.Sprintf("Experiment E16 — recovery at scale: incremental chain vs full snapshot (%d keys, %d shards)", keys, e16Shards),
		"mode", "tail ops", "setup", "wal.Open", "keys recovered")
	times := map[string]time.Duration{}
	for _, mode := range []string{"incremental", "full"} {
		r, err := RunRecovery(mode, keys)
		if err != nil {
			fmt.Fprintf(w, "E16 %s: %v\n", mode, err)
			return
		}
		times[mode] = r.Open
		t.Add("recover-"+r.Mode, r.TailOps,
			r.Setup.Round(time.Millisecond), r.Open.Round(time.Millisecond), r.RecKeys)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "The chain loads wire-form per-shard images and replays 1% of keys; the full image")
	fmt.Fprintln(w, "map-decodes the whole store and replays the 100x tail its rare cuts leave behind.")
	fmt.Fprintf(w, "E16 speedup: %.2fx (incremental %v vs full %v)\n",
		times["full"].Seconds()/times["incremental"].Seconds(),
		times["incremental"].Round(time.Millisecond), times["full"].Round(time.Millisecond))
}
