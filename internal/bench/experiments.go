package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/adversary"
	"repro/internal/alg2"
	"repro/internal/base"
	"repro/internal/checker"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/focons"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Experiment is a runnable entry of the per-experiment index in
// DESIGN.md.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer)
}

// All returns the full experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Figure 1: two-level execution model", E1},
		{"E2", "Lemma 7 / Algorithm 1: fo-consensus from an OFTM", E2},
		{"E3", "Lemma 8 / Algorithm 2: OFTM from fo-consensus (opacity + OF campaign)", E3},
		{"E4", "Theorem 9 / Corollary 11: consensus number 2", E4},
		{"E5", "Theorem 13 / Figure 2: strict DAP impossibility", E5},
		{"E6", "Theorems 5-6 / Algorithm 3: eventual ic-OFTM equivalence", E6},
		{"E7", "Strict DAP under random schedules, per engine", E7},
		{"E8", "Throughput and ablations (raw mode)", E8},
		{"E9", "Serving stack: kv throughput vs shards x engine", E9},
		{"E10", "Wire path rewrite: loopback req/s + allocs/req, byte vs PR 3 path", E10},
		{"E11", "Durability: WAL group commit under load, wal-off vs interval vs always", E11},
		{"E13", "Serving runtime scaling: worker loops vs goroutine-per-conn, conns x shards x fsync", E13},
		{"E14", "Follower-read scaling: 1 primary + N replicas, aggregate read capacity", E14},
		{"E15", "Async reply path: serving grid re-run + slow-reader soak", E15},
		{"E16", "Recovery at scale: incremental chain vs full snapshot", E16},
	}
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// E1 regenerates Figure 1: a process's high-level operations and the
// base-object steps implementing them, on one timeline.
func E1(w io.Writer) {
	h, names := adversary.RunFig1(func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env))
	})
	fmt.Fprintln(w, "Figure 1 — two-level execution: p1 runs a transactional move(x->y), p2 then reads x.")
	fmt.Fprintln(w, "High-level events (inv/ret) are local; indented '.' lines are steps on base objects.")
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.Render(h, names))
}

// E2 checks the fo-consensus properties of Algorithm 1 over both OFTMs
// across random schedules, reporting abort counts (allowed only under
// contention) and any property violation.
func E2(w io.Writer) {
	type construction struct {
		name    string
		factory func(env *sim.Env) base.Proposer
	}
	cons := []construction{
		{"alg1 over dstm", func(env *sim.Env) base.Proposer {
			return focons.NewFromOFTM(dstm.New(dstm.WithEnv(env)))
		}},
		{"alg1 over alg2", func(env *sim.Env) base.Proposer {
			return focons.NewFromOFTM(alg2.New(alg2.WithEnv(env)))
		}},
	}
	t := NewTable("Experiment E2 — Algorithm 1 property campaign (3 procs, 40 seeds)",
		"construction", "decided runs", "aborted proposes", "agreement", "fo-validity", "solo never aborts")
	for _, c := range cons {
		decidedRuns, aborts := 0, 0
		agreement, validity := true, true
		for seed := int64(0); seed < 40; seed++ {
			env := sim.New()
			f := c.factory(env)
			results := make([]uint64, 3)
			for i := 0; i < 3; i++ {
				i := i
				env.Spawn(func(p *sim.Proc) { results[i] = f.Propose(p, uint64(i+10)) })
			}
			env.Run(sim.Random(seed))
			decided := map[uint64]bool{}
			for _, r := range results {
				if r == base.Bottom {
					aborts++
				} else {
					decided[r] = true
				}
			}
			if len(decided) > 1 {
				agreement = false
			}
			if len(decided) == 1 {
				decidedRuns++
				for v := range decided {
					if i := int(v) - 10; i < 0 || i > 2 || results[i] == base.Bottom {
						validity = false
					}
				}
			}
		}
		// Solo check: a contention-free propose must not abort.
		env := sim.New()
		f := c.factory(env)
		var solo uint64
		env.Spawn(func(p *sim.Proc) { solo = f.Propose(p, 42) })
		env.Run(sim.Solo(1))
		t.Add(c.name, decidedRuns, aborts, pass(agreement), pass(validity), pass(solo == 42))
	}
	fmt.Fprint(w, t.String())
}

// E3 runs the Algorithm 2 safety campaign: random 3-process workloads
// under random schedules; every history must be opaque and
// obstruction-free.
func E3(w io.Writer) {
	t := NewTable("Experiment E3 — Algorithm 2 campaign (3 procs x 2 txs, random schedules)",
		"fo-consensus policy", "seeds", "histories opaque", "obstruction-free", "total steps")
	for _, pol := range []struct {
		name   string
		policy base.AbortPolicy
	}{{"never-abort", base.NeverAbort}, {"abort-on-contention", base.AbortOnContention}} {
		seeds := 25
		opaque, of := true, true
		var steps int64
		for seed := 0; seed < seeds; seed++ {
			env := sim.New()
			tm := core.Recorded(alg2.New(alg2.WithEnv(env), alg2.WithFoConsPolicy(pol.policy)), env.Recorder())
			vars := make([]core.Var, 3)
			init := map[model.VarID]uint64{}
			for i := range vars {
				vars[i] = tm.NewVar(fmt.Sprintf("x%d", i), 0)
				init[vars[i].ID()] = 0
			}
			for pi := 0; pi < 3; pi++ {
				pi := pi
				env.Spawn(func(p *sim.Proc) {
					rng := rand.New(rand.NewSource(int64(seed)*100 + int64(pi)))
					for k := 0; k < 2; k++ {
						_ = core.Run(tm, p, func(tx core.Tx) error {
							for j := 0; j < 3; j++ {
								v := vars[rng.Intn(len(vars))]
								if rng.Intn(2) == 0 {
									if _, err := tx.Read(v); err != nil {
										return err
									}
								} else if err := tx.Write(v, uint64(rng.Intn(9)+1)); err != nil {
									return err
								}
							}
							return nil
						}, core.MaxAttempts(40))
					}
				})
			}
			h := env.Run(sim.Random(int64(seed)))
			steps += env.TotalSteps()
			txs := model.Transactions(h)
			if len(txs) <= checker.ExactLimit && !checker.CheckOpacity(txs, init).OK {
				opaque = false
			}
			if len(checker.CheckObstructionFree(h)) > 0 {
				of = false
			}
		}
		t.Add(pol.name, seeds, pass(opaque), pass(of), steps)
	}
	fmt.Fprint(w, t.String())
}

// E4 runs the consensus-number experiments: exhaustive 2-process safety
// and the 3-process bivalence search.
func E4(w io.Writer) {
	fmt.Fprintln(w, "Experiment E4 — consensus number of an OFTM is 2 (Corollary 11)")
	fmt.Fprintln(w)
	rep2 := adversary.ExhaustiveTwoCons(10)
	fmt.Fprintf(w, "(a) 2-process consensus from fo-consensus: %d schedules (depth %d) exhaustively checked; violations: %d\n",
		rep2.Schedules, rep2.Depth, len(rep2.Violations))
	for _, v := range rep2.Violations {
		fmt.Fprintln(w, "    "+v)
	}
	fmt.Fprintln(w)
	rep3 := adversary.ExploreValency([]uint64{0, 1, 1}, 16)
	fmt.Fprintln(w, "(b) 3-process candidate algorithm (racing consensus from fo-consensus + registers):")
	fmt.Fprint(w, indent(rep3.Format(), "    "))
}

// E5 sweeps the Figure 2 scenario over every engine and prints the full
// per-suspension-point table for the reference OFTM.
func E5(w io.Writer) {
	t := NewTable("Experiment E5 — Theorem 13 / Figure 2 per engine",
		"engine", "OF claim", "solo steps", "critical step", "blocked", "DAP-violating points", "conflict objects")
	var dstmRep adversary.Fig2Report
	for _, e := range Engines() {
		rep := adversary.RunFig2(e.Sim, 6)
		objs := map[string]bool{}
		for _, row := range rep.Rows {
			for _, o := range row.ConflictObjs {
				objs[o] = true
			}
		}
		var names []string
		for o := range objs {
			names = append(names, o)
		}
		t.Add(e.Name, e.OF, rep.SoloSteps, rep.CriticalStep, rep.Blocked,
			len(rep.DAPViolationPoints), strings.Join(names, " "))
		if e.Name == "dstm" {
			dstmRep = rep
		}
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w)
	fmt.Fprint(w, dstmRep.Format())
}

// E6 exercises the Theorem 6 chain: Algorithm 3 over DSTM as the
// fo-consensus supply for Algorithm 2, running a shared-counter
// workload whose history must be opaque.
func E6(w io.Writer) {
	env := sim.New()
	env.MaxSteps = 500_000
	inner := dstm.New(dstm.WithEnv(env))
	outer := alg2.New(alg2.WithEnv(env), alg2.WithFoConsFactory(func(string) base.Proposer {
		return focons.NewFromEventual(inner, env, 2)
	}))
	rtm := core.Recorded(outer, env.Recorder())
	x := rtm.NewVar("x", 0)
	for i := 0; i < 2; i++ {
		env.Spawn(func(p *sim.Proc) {
			for k := 0; k < 2; k++ {
				_ = core.Run(rtm, p, func(tx core.Tx) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v+1)
				}, core.MaxAttempts(60))
			}
		})
	}
	h := env.Run(sim.Random(7))
	txs := model.Transactions(h)
	var opaque string
	if len(txs) <= checker.ExactLimit {
		opaque = pass(checker.CheckOpacity(txs, map[model.VarID]uint64{x.ID(): 0}).OK)
	} else {
		opaque = pass(checker.CheckSerializableWitness(txs, map[model.VarID]uint64{x.ID(): 0}).OK) + " (witness)"
	}
	final, _ := core.ReadVar(outer, nil, x)
	fmt.Fprintln(w, "Experiment E6 — Theorem 6 composition: Alg2( fo-consensus = Alg3( DSTM ) )")
	fmt.Fprintf(w, "  2 procs x 2 increments; committed counter value: %d\n", final)
	fmt.Fprintf(w, "  steps executed: %d (the paper predicts gross inefficiency; correctness is the claim)\n", env.TotalSteps())
	fmt.Fprintf(w, "  history well-formed: %s;  safety: %s;  truncated: %v\n",
		pass(h.WellFormed() == nil), opaque, env.Truncated)
}

// E7 measures strict-DAP violations under random schedules for two
// workload shapes: fully disjoint transactions, and the indirectly
// connected shape of Figure 2 (T2, T3 disjoint from each other but both
// overlapping a third transaction).
func E7(w io.Writer) {
	t := NewTable("Experiment E7 — strict-DAP violations across 20 random schedules",
		"engine", "fully disjoint", "indirectly connected", "sample conflict object")
	for _, e := range Engines() {
		disjoint := dapCampaign(e, false)
		indirect := dapCampaign(e, true)
		sample := ""
		if len(indirect.objs) > 0 {
			sample = indirect.objs[0]
		} else if len(disjoint.objs) > 0 {
			sample = disjoint.objs[0]
		}
		t.Add(e.Name, disjoint.count, indirect.count, sample)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "The 2pl baseline is strictly disjoint-access-parallel (zero everywhere); Theorem 13")
	fmt.Fprintln(w, "shows the OFTMs cannot be: their violations appear under indirect connection.")
}

type dapResult struct {
	count int
	objs  []string
}

func dapCampaign(e Engine, indirect bool) dapResult {
	var out dapResult
	seen := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		env := sim.New()
		tm := core.Recorded(e.Sim(env), env.Recorder())
		a := tm.NewVar("a", 0)
		b := tm.NewVar("b", 0)
		wv := tm.NewVar("w", 0)
		zv := tm.NewVar("z", 0)
		inc := func(v core.Var) func(tx core.Tx) error {
			return func(tx core.Tx) error {
				x, err := tx.Read(v)
				if err != nil {
					return err
				}
				return tx.Write(v, x+1)
			}
		}
		if indirect {
			// p1 spans a and b; p2 uses {a,w}; p3 uses {b,z}. p2 and p3
			// are t-variable-disjoint but indirectly connected via p1.
			env.Spawn(func(p *sim.Proc) {
				_ = core.Run(tm, p, func(tx core.Tx) error {
					if err := inc(a)(tx); err != nil {
						return err
					}
					return inc(b)(tx)
				}, core.MaxAttempts(20))
			})
			env.Spawn(func(p *sim.Proc) {
				_ = core.Run(tm, p, func(tx core.Tx) error {
					if _, err := tx.Read(a); err != nil {
						return err
					}
					return inc(wv)(tx)
				}, core.MaxAttempts(20))
			})
			env.Spawn(func(p *sim.Proc) {
				_ = core.Run(tm, p, func(tx core.Tx) error {
					if _, err := tx.Read(b); err != nil {
						return err
					}
					return inc(zv)(tx)
				}, core.MaxAttempts(20))
			})
		} else {
			for _, v := range []core.Var{a, b, wv} {
				v := v
				env.Spawn(func(p *sim.Proc) {
					_ = core.Run(tm, p, inc(v), core.MaxAttempts(20))
				})
			}
		}
		h := env.Run(sim.Random(seed))
		for _, v := range checker.CheckStrictDAP(h, env.ObjName) {
			out.count++
			if !seen[v.ObjName] {
				seen[v.ObjName] = true
				out.objs = append(out.objs, v.ObjName)
			}
		}
	}
	return out
}

// E8 is the raw-mode performance suite: engine scaling, read-mix
// sensitivity, the disjoint "hot spot" microbenchmark, and the
// contention-manager and validation ablations.
func E8(w io.Writer) {
	threads := []int{1, 2, 4, 8}
	ops := map[string]int{"dstm": 50000, "nztm": 50000, "2pl": 50000, "tl2": 50000, "coarse": 50000, "alg2": 2000}

	t1 := NewTable("Experiment E8a — bank transfers (8 accounts), ops/s by threads",
		"engine", "1", "2", "4", "8", "eff@8", "retries@8")
	for _, e := range Engines() {
		row := []any{e.Name}
		var first, last Result
		for _, th := range threads {
			last = RunThroughput(e.Raw, BankTransfer(8), th, ops[e.Name])
			if th == 1 {
				first = last
			}
			row = append(row, fmt.Sprintf("%.0f", last.OpsPerSec()))
		}
		// Scaling efficiency: throughput at 8 threads relative to 1
		// thread (1.00x = flat, >1 = scaling, <1 = interference).
		row = append(row, fmt.Sprintf("%.2fx", last.OpsPerSec()/first.OpsPerSec()))
		row = append(row, fmt.Sprint(last.Attempts-int64(last.Ops)))
		t1.Add(row...)
	}
	fmt.Fprint(w, t1.String())
	fmt.Fprintln(w)

	t2 := NewTable("Experiment E8b — read mix sensitivity (64 vars, 4 threads), ops/s",
		"engine", "0% reads", "50% reads", "90% reads")
	for _, e := range Engines() {
		row := []any{e.Name}
		for _, pct := range []int{0, 50, 90} {
			r := RunThroughput(e.Raw, ReadMix(fmt.Sprintf("mix%d", pct), 64, pct), 4, ops[e.Name])
			row = append(row, fmt.Sprintf("%.0f", r.OpsPerSec()))
		}
		t2.Add(row...)
	}
	fmt.Fprint(w, t2.String())
	fmt.Fprintln(w)

	t3 := NewTable("Experiment E8c — disjoint private counters (perfect DAP workload), ops/s",
		"engine", "1", "2", "4", "8")
	for _, e := range Engines() {
		row := []any{e.Name}
		for _, th := range threads {
			r := RunThroughput(e.Raw, Disjoint(8), th, ops[e.Name])
			row = append(row, fmt.Sprintf("%.0f", r.OpsPerSec()))
		}
		t3.Add(row...)
	}
	fmt.Fprint(w, t3.String())
	fmt.Fprintln(w)

	t4 := NewTable("Experiment E8d — contention manager ablation (dstm, bank-4 hot, 8 threads)",
		"manager", "ops/s", "retries")
	for _, m := range cm.All() {
		m := m
		r := RunThroughput(func() core.TM { return dstm.New(dstm.WithManager(m)) },
			BankTransfer(4), 8, 50000)
		t4.Add(m.Name(), fmt.Sprintf("%.0f", r.OpsPerSec()), r.Attempts-int64(r.Ops))
	}
	fmt.Fprint(w, t4.String())
	fmt.Fprintln(w)

	t5 := NewTable("Experiment E8e — DSTM validation ablation (90% reads, 64 vars, 4 threads)",
		"variant", "ops/s", "opacity")
	rv := RunThroughput(func() core.TM { return dstm.New() }, ReadMix("mix90", 64, 90), 4, 50000)
	t5.Add("validate-on-read", fmt.Sprintf("%.0f", rv.OpsPerSec()), "yes (paper-faithful)")
	rc := RunThroughput(func() core.TM { return dstm.New(dstm.ValidateAtCommitOnly()) },
		ReadMix("mix90", 64, 90), 4, 50000)
	t5.Add("validate-at-commit", fmt.Sprintf("%.0f", rc.OpsPerSec()), "no (serializable only)")
	fmt.Fprint(w, t5.String())
	fmt.Fprintln(w)

	t6 := NewTable("Experiment E8f — commit-epoch validation ablation (256-read transactions, 1 thread)",
		"engine", "epoch ops/s", "full-scan ops/s", "speedup")
	epochVariants := []struct {
		name    string
		with    func() core.TM
		without func() core.TM
	}{
		{"dstm",
			func() core.TM { return dstm.New() },
			func() core.TM { return dstm.New(dstm.WithoutEpochValidation()) }},
		{"nztm",
			func() core.TM { return nztm.New() },
			func() core.TM { return nztm.New(nztm.WithoutEpochValidation()) }},
	}
	for _, v := range epochVariants {
		withR := RunThroughput(v.with, ReadHeavy(256), 1, 2000)
		withoutR := RunThroughput(v.without, ReadHeavy(256), 1, 2000)
		t6.Add(v.name, fmt.Sprintf("%.0f", withR.OpsPerSec()),
			fmt.Sprintf("%.0f", withoutR.OpsPerSec()),
			fmt.Sprintf("%.1fx", withR.OpsPerSec()/withoutR.OpsPerSec()))
	}
	fmt.Fprint(w, t6.String())
	fmt.Fprintln(w)

	// E8g — the contended-read ablation grid: 256-read transactions
	// with a background writer committing to a disjoint variable, per
	// validation strategy. Per-variable versioned validation should
	// keep the contended cost near the quiescent one; the PR 1 global
	// epoch collapses (every commit anywhere forces a full rescan), and
	// the full-scan reference is quadratic either way.
	t7 := NewTable("Experiment E8g — contended-read ablation (readheavy-256 + disjoint background writer, 1 thread)",
		"engine", "validation", "quiescent ops/s", "contended ops/s", "contended/quiescent")
	type gVariant struct {
		engine, validation string
		mk                 func() core.TM
	}
	gVariants := []gVariant{
		{"dstm", "versioned", func() core.TM { return dstm.New() }},
		{"dstm", "global-epoch", func() core.TM { return dstm.New(dstm.GlobalEpochOnly()) }},
		{"dstm", "full-scan", func() core.TM { return dstm.New(dstm.WithoutEpochValidation()) }},
		{"nztm", "versioned", func() core.TM { return nztm.New() }},
		{"nztm", "global-epoch", func() core.TM { return nztm.New(nztm.GlobalEpochOnly()) }},
		{"nztm", "full-scan", func() core.TM { return nztm.New(nztm.WithoutEpochValidation()) }},
	}
	for _, v := range gVariants {
		quiet := RunThroughput(v.mk, ReadHeavy(256), 1, 2000)
		contended := RunThroughput(v.mk, ContendedReadHeavy(256), 1, 2000)
		t7.Add(v.engine, v.validation,
			fmt.Sprintf("%.0f", quiet.OpsPerSec()),
			fmt.Sprintf("%.0f", contended.OpsPerSec()),
			fmt.Sprintf("%.2fx", contended.OpsPerSec()/quiet.OpsPerSec()))
	}
	fmt.Fprint(w, t7.String())
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
