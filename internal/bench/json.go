package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
)

// Record is one measurement of the perf-tracking suite, serialized to
// BENCH_PR<n>.json so successive PRs can diff the trajectory.
type Record struct {
	Engine      string  `json:"engine"`
	Workload    string  `json:"workload"`
	Threads     int     `json:"threads"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// Epoch and ForcedAborts are the engine's TMStats after the run
	// (zero for engines without them).
	Epoch        uint64 `json:"epoch,omitempty"`
	ForcedAborts int64  `json:"forced_aborts,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Note    string   `json:"note"`
	Records []Record `json:"records"`
}

// jsonCase is one engine × workload × threads combination.
type jsonCase struct {
	engine   Engine
	workload Workload
	threads  int
}

// WriteJSON measures the standard perf-tracking grid with
// testing.Benchmark and writes the report to w. The grid deliberately
// covers the three axes the repository optimizes: contended small
// transactions (bank-8), quiescent long readers (readheavy-256), and
// the allocation footprint of small transactions (smalltx).
func WriteJSON(w io.Writer) error {
	var cases []jsonCase
	for _, e := range Engines() {
		if e.Name == "alg2" {
			continue // deliberately impractical; excluded from tracking
		}
		for _, th := range []int{1, 2, 4, 8} {
			cases = append(cases, jsonCase{e, BankTransfer(8), th})
		}
		for _, th := range []int{1, 4} {
			cases = append(cases, jsonCase{e, ReadHeavy(256), th})
		}
		cases = append(cases, jsonCase{e, SmallTx(), 1})
	}

	rep := Report{Note: "ns/op, allocs/op and B/op per engine × workload × threads; epoch/forced_aborts are engine TMStats after the timed run"}
	for _, c := range cases {
		rec, err := measure(c)
		if err != nil {
			return err
		}
		rep.Records = append(rep.Records, rec)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func measure(c jsonCase) (Record, error) {
	var tm core.TM
	var opErr error
	var mu sync.Mutex
	res := testing.Benchmark(func(b *testing.B) {
		tm = c.engine.Raw()
		op := c.workload.Setup(tm)
		b.ReportAllocs()
		b.ResetTimer()
		SplitThreads(b.N, c.threads, func(t int, rng *rand.Rand, iters int) {
			for i := 0; i < iters; i++ {
				if err := op(t, i, rng); err != nil {
					mu.Lock()
					opErr = err
					mu.Unlock()
					return
				}
			}
		})
	})
	if opErr != nil {
		return Record{}, fmt.Errorf("bench: %s/%s/threads=%d: %w", c.engine.Name, c.workload.Name, c.threads, opErr)
	}
	rec := Record{
		Engine:      c.engine.Name,
		Workload:    c.workload.Name,
		Threads:     c.threads,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if rec.NsPerOp > 0 {
		rec.OpsPerSec = 1e9 / rec.NsPerOp
	}
	if st, ok := core.StatsOf(tm); ok {
		rec.Epoch = st.Epoch
		rec.ForcedAborts = st.ForcedAborts
	}
	return rec, nil
}
