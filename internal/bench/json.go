package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// Record is one measurement of the perf-tracking suite, serialized to
// BENCH_PR<n>.json so successive PRs can diff the trajectory.
type Record struct {
	Engine      string  `json:"engine"`
	Workload    string  `json:"workload"`
	Threads     int     `json:"threads"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// Epoch, ForcedAborts and SnapshotExtensions are the engine's
	// TMStats after the run (zero for engines without them).
	Epoch              uint64 `json:"epoch,omitempty"`
	ForcedAborts       int64  `json:"forced_aborts,omitempty"`
	SnapshotExtensions int64  `json:"snapshot_extensions,omitempty"`
}

// Key identifies a record across reports.
func (r Record) Key() string {
	return fmt.Sprintf("%s|%s|%d", r.Engine, r.Workload, r.Threads)
}

// Report is the full JSON document.
type Report struct {
	Note    string   `json:"note"`
	Records []Record `json:"records"`
}

// jsonCase is one engine × workload × threads combination.
type jsonCase struct {
	engine   Engine
	workload Workload
	threads  int
}

// benchRuns is how many times each perf-tracking record is measured;
// the run with the median ns/op is recorded. Single runs on the
// 1-core CI-class runner swing well past the diff gate's 25%
// tolerance on scheduler- and GC-sensitive rows (oversubscribed
// bank-8, fsync-bound wal rows, the allocating legacy path), and some
// of those rows are bimodal — a minimum would record whichever side
// got lucky. The median is the robust per-row statistic two same-
// machine measurements can be diffed on.
const benchRuns = 3

// bestOf measures k times via f and keeps the record with the median
// ns/op. The allocs/op column is the median *across* the k runs, not
// the ns-median run's own draw: rows sitting at an integer rounding
// boundary (a pool refill whose amortization depends on GC timing,
// ~2.5 allocs/op truncating to 2 or 3) otherwise record whichever
// side the ns-median run happened to land on, and two such draws on
// identical code can differ by ±1 — enough to trip the diff gate's
// strict small-count allowance.
func bestOf(k int, f func() (Record, error)) (Record, error) {
	runs := make([]Record, 0, k)
	for i := 0; i < k; i++ {
		r, err := f()
		if err != nil {
			return r, err
		}
		runs = append(runs, r)
	}
	allocs := make([]int64, len(runs))
	for i, r := range runs {
		allocs[i] = r.AllocsPerOp
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].NsPerOp < runs[j].NsPerOp })
	rec := runs[(len(runs)-1)/2]
	sort.Slice(allocs, func(i, j int) bool { return allocs[i] < allocs[j] })
	rec.AllocsPerOp = allocs[(len(allocs)-1)/2]
	return rec, nil
}

// WriteJSON measures the standard perf-tracking grid with
// testing.Benchmark and writes the report to w. The grid deliberately
// covers the four axes the repository optimizes: contended small
// transactions (bank-8), quiescent long readers (readheavy-256), long
// readers under sustained disjoint write traffic
// (readheavy-256-contended — the versioned-validation claim), and the
// allocation footprint of small transactions (smalltx).
func WriteJSON(w io.Writer) error {
	var cases []jsonCase
	for _, e := range Engines() {
		if e.Name == "alg2" {
			continue // deliberately impractical; excluded from tracking
		}
		for _, th := range []int{1, 2, 4, 8} {
			cases = append(cases, jsonCase{e, BankTransfer(8), th})
		}
		for _, th := range []int{1, 4} {
			cases = append(cases, jsonCase{e, ReadHeavy(256), th})
		}
		for _, th := range []int{1, 4} {
			cases = append(cases, jsonCase{e, ContendedReadHeavy(256), th})
		}
		cases = append(cases, jsonCase{e, SmallTx(), 1})
		// Serving-stack rows: the uniform kv mix at 8 shards for every
		// engine, plus the shard-scaling pair (1 vs 8 shards at 8
		// threads) and the skewed/multi-key mixes on the OFTM engines —
		// the PR 3 record behind EXPERIMENTS.md E9.
		for _, th := range []int{1, 8} {
			cases = append(cases, jsonCase{e, KVUniform(8), th})
		}
		if e.Name == "dstm" || e.Name == "nztm" {
			cases = append(cases, jsonCase{e, KVUniform(1), 8})
			cases = append(cases, jsonCase{e, KVZipfian(8), 8})
			cases = append(cases, jsonCase{e, KVTxn(8, 4), 8})
		}
	}

	rep := Report{Note: "ns/op, allocs/op and B/op per engine × workload × threads; epoch/forced_aborts/snapshot_extensions are engine TMStats after the timed run; server-* rows are loopback wire measurements (threads = connections), with -pr3 the preserved legacy request path"}
	for _, c := range cases {
		c := c
		rec, err := bestOf(benchRuns, func() (Record, error) { return measure(c) })
		if err != nil {
			return err
		}
		rep.Records = append(rep.Records, rec)
	}
	// Serving rows (E10): end-to-end wire path, byte vs PR 3 legacy.
	srvRecs, err := serverRecords()
	if err != nil {
		return err
	}
	rep.Records = append(rep.Records, srvRecs...)
	// Durability rows (E11): the same load with the WAL on.
	wRecs, err := walRecords()
	if err != nil {
		return err
	}
	rep.Records = append(rep.Records, wRecs...)
	// Scaling rows (E13): both runtimes across the connection grid.
	sRecs, err := scaleRecords()
	if err != nil {
		return err
	}
	rep.Records = append(rep.Records, sRecs...)
	// Replication rows (E14): follower-read aggregate capacity.
	rRecs, err := replRecords()
	if err != nil {
		return err
	}
	rep.Records = append(rep.Records, rRecs...)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteServerJSON measures only the serving rows (the E10 and E11
// records) and writes them as a report — the fast path behind
// `oftm-bench -servebench -json`.
func WriteServerJSON(w io.Writer) error {
	recs, err := serverRecords()
	if err != nil {
		return err
	}
	wRecs, err := walRecords()
	if err != nil {
		return err
	}
	recs = append(recs, wRecs...)
	sRecs, err := scaleRecords()
	if err != nil {
		return err
	}
	recs = append(recs, sRecs...)
	rRecs, err := replRecords()
	if err != nil {
		return err
	}
	recs = append(recs, rRecs...)
	rep := Report{
		Note:    "experiments E10/E11/E13/E14: loopback wire-path records (threads = connections); server-*-pr3 rows measure the preserved PR 3 legacy request path, server-*-wal-* rows the durability layer, server-scale-* rows the serving-runtime connection grid, server-repl-reads-r* rows the replication topology's aggregate read capacity (sequential per-node phases summed; 1-core container)",
		Records: recs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func measure(c jsonCase) (Record, error) {
	var tm core.TM
	var opErr error
	var mu sync.Mutex
	res := testing.Benchmark(func(b *testing.B) {
		tm = c.engine.Raw()
		op := c.workload.Setup(tm)
		var bgStop chan struct{}
		var bgWG sync.WaitGroup
		if c.workload.Background != nil {
			bgStop = make(chan struct{})
			bgWG.Add(1)
			go func() {
				defer bgWG.Done()
				c.workload.Background(tm, bgStop)
			}()
		}
		b.ReportAllocs()
		b.ResetTimer()
		SplitThreads(b.N, c.threads, func(t int, rng *rand.Rand, iters int) {
			for i := 0; i < iters; i++ {
				if err := op(t, i, rng); err != nil {
					mu.Lock()
					opErr = err
					mu.Unlock()
					return
				}
			}
		})
		b.StopTimer()
		if bgStop != nil {
			close(bgStop)
			bgWG.Wait()
		}
	})
	if opErr != nil {
		return Record{}, fmt.Errorf("bench: %s/%s/threads=%d: %w", c.engine.Name, c.workload.Name, c.threads, opErr)
	}
	rec := Record{
		Engine:      c.engine.Name,
		Workload:    c.workload.Name,
		Threads:     c.threads,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if rec.NsPerOp > 0 {
		rec.OpsPerSec = 1e9 / rec.NsPerOp
	}
	if st, ok := core.StatsOf(tm); ok {
		rec.Epoch = st.Epoch
		rec.ForcedAborts = st.ForcedAborts
		rec.SnapshotExtensions = st.SnapshotExtensions
	}
	return rec, nil
}

// LoadReport reads a perf-tracking JSON document from path.
func LoadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: %s: %w", path, err)
	}
	return rep, nil
}

// allocAllowance is the highest allocs/op cur may report against base
// without counting as a regression: the baseline plus tolPct percent
// or plus one allocation, whichever is larger, rounded down. The +1
// floor exists because small nonzero counts sit at integer rounding
// boundaries (~2.5 allocs/op records 2 or 3 depending on GC timing;
// see bestOf), so a relative tolerance below one whole allocation
// gates on the draw, not the code. A zero-alloc baseline still
// allows exactly zero — any reappearing allocation on a record that
// had none trips the gate, which is how the zero-allocation request
// path is locked in rather than decaying silently.
func allocAllowance(base int64, tolPct float64) int64 {
	if base == 0 {
		return 0
	}
	rel := int64(float64(base) * tolPct / 100)
	if rel < 1 {
		rel = 1
	}
	return base + rel
}

// allocGateSkipped marks records whose allocs/op is intrinsically
// nondeterministic, where no defensible allowance separates noise
// from regression: 2pl's lock-wait path allocates per parked waiter,
// so its contended rows swing ~2× run to run on identical code
// (measured 28–52 at 4 threads) — the same property that kept 2pl
// out of the PR 7 server grid. Their ns/op still gates normally;
// Compare prints a notice instead of applying the alloc gate.
func allocGateSkipped(r Record) bool {
	return r.Engine == "2pl" && strings.HasPrefix(r.Workload, "readheavy-256-contended")
}

// Compare prints per-record ns/op and allocs/op deltas of cur against
// base and returns the number of regressions: records whose ns/op
// worsened by more than tolPct percent, or whose allocs/op exceed the
// baseline's allowance (see allocAllowance — in particular, 0 must
// stay 0). Records present only in cur — workloads added since the
// baseline was taken — are skipped with a notice, never counted as
// regressions: growing the grid must not break the gate against an
// older baseline. Records present only in base are reported as dropped
// (a drop is not a regression — the grid is allowed to evolve — but it
// is printed so it cannot pass silently).
func Compare(w io.Writer, base, cur Report, tolPct float64) int {
	baseBy := map[string]Record{}
	for _, r := range base.Records {
		baseBy[r.Key()] = r
	}
	curKeys := map[string]bool{}
	regressions, skippedNew := 0, 0
	fmt.Fprintf(w, "%-8s %-24s %8s %12s %12s %9s %7s %7s\n", "engine", "workload", "threads", "base ns/op", "cur ns/op", "delta", "base a", "cur a")
	for _, r := range cur.Records {
		curKeys[r.Key()] = true
		b, ok := baseBy[r.Key()]
		if !ok || b.NsPerOp <= 0 {
			skippedNew++
			fmt.Fprintf(w, "%-8s %-24s %8d %12s %12.0f %9s\n", r.Engine, r.Workload, r.Threads, "-", r.NsPerOp, "(new — skipped)")
			continue
		}
		delta := 100 * (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		mark, bad := "", false
		if delta > tolPct {
			mark, bad = "  << REGRESSION (ns/op)", true
		}
		if r.AllocsPerOp > allocAllowance(b.AllocsPerOp, tolPct) {
			if allocGateSkipped(r) {
				mark += "  (alloc gate skipped: nondeterministic lock-wait allocs)"
			} else {
				mark += "  << REGRESSION (allocs/op)"
				bad = true
			}
		}
		if bad {
			// One bad record counts once, however many ways it is bad.
			regressions++
		}
		fmt.Fprintf(w, "%-8s %-24s %8d %12.0f %12.0f %+8.1f%% %7d %7d%s\n", r.Engine, r.Workload, r.Threads, b.NsPerOp, r.NsPerOp, delta, b.AllocsPerOp, r.AllocsPerOp, mark)
	}
	if skippedNew > 0 {
		fmt.Fprintf(w, "%d record(s) have no baseline entry and were skipped (new workloads are not regressions)\n", skippedNew)
	}
	var dropped []string
	for k := range baseBy {
		if !curKeys[k] {
			dropped = append(dropped, k)
		}
	}
	sort.Strings(dropped)
	for _, k := range dropped {
		fmt.Fprintf(w, "%-46s (dropped from grid)\n", k)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s): ns/op beyond %.0f%% or allocs/op above the baseline allowance\n", regressions, tolPct)
	}
	return regressions
}
