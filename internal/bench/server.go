package bench

// End-to-end serving-stack measurement (experiment E10): closed-loop
// pipelined load over loopback TCP against internal/server, with a
// deliberately allocation-free load generator — request windows are
// built once and replayed, responses are drained into a fixed buffer
// and only counted — so the process-wide allocation delta during the
// measured phase is the server+kv request path's, which is exactly the
// figure the zero-allocation rewrite is gated on. The same harness
// drives both the byte path and the preserved PR 3 legacy path
// (server.Config.Legacy), so the speedup claim is re-measured on every
// run instead of decaying into a stale constant.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/server"
)

const (
	// srvKeys is the load key space, pre-populated at setup so the
	// steady state never takes the first-insert allocation path.
	srvKeys = 512
	// srvShards/srvBuckets mirror the oftm-server defaults.
	srvShards  = 8
	srvBuckets = 16
)

var (
	errTok = []byte("ERR")
	nlTok  = []byte("\n")
)

// ServerResult is one loopback serving measurement.
type ServerResult struct {
	Engine   string
	Path     string // "byte" (the PR 4 request path) or "legacy" (PR 3)
	Conns    int
	Pipeline int
	Reqs     int64
	Elapsed  time.Duration
	// AllocsPerReq and BytesPerReq are the whole-process heap
	// allocation deltas per request over the measured phase. The load
	// generator is allocation-free in the steady state, so these are
	// the server+kv layers' figures.
	AllocsPerReq float64
	BytesPerReq  float64
	// CPUSec is this process's CPU time (user+system) over the
	// measured phase. When the load is driven by child processes
	// (procs > 1) the measuring process runs only the server, so
	// Reqs/CPUSec is the server's own per-core efficiency — the
	// req/s-per-core figure the E13 grid compares runtimes on. With
	// the in-process generator (procs = 1) the figure includes the
	// client's CPU and is only indicative.
	CPUSec float64
}

// ReqsPerSec returns acknowledged request throughput.
func (r ServerResult) ReqsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Reqs) / r.Elapsed.Seconds()
}

// ReqsPerCore returns requests served per second of serving-process
// CPU time (see CPUSec), or 0 when CPU time was not captured.
func (r ServerResult) ReqsPerCore() float64 {
	if r.CPUSec <= 0 {
		return 0
	}
	return float64(r.Reqs) / r.CPUSec
}

// cpuNow returns the process's cumulative user+system CPU time.
func cpuNow() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// loadConn is one pre-built pipelined load connection: a request
// window with per-request byte offsets (so partial windows need no
// rebuilding) and a fixed response buffer.
type loadConn struct {
	nc   net.Conn
	win  []byte
	offs []int // byte offset just past request i in win
	buf  []byte
	// tail holds the last bytes of the previous read so an "ERR" token
	// split across TCP reads is still detected (tailN ≤ 2).
	tail  [2]byte
	tailN int
}

// buildWindow renders p pipelined requests over keys into one buffer:
// setPct% SET and casPct% CAS, the rest GET — values small, keys
// uniform. It returns the buffer and the per-request end offsets.
func buildWindow(p int, keys []string, rng *rand.Rand, setPct, casPct int) ([]byte, []int) {
	var win []byte
	offs := make([]int, p)
	for i := 0; i < p; i++ {
		k := keys[rng.Intn(len(keys))]
		switch r := rng.Intn(100); {
		case r < casPct:
			win = fmt.Appendf(win, "CAS %s %d %d\n", k, rng.Intn(1000), rng.Intn(1000))
		case r < casPct+setPct:
			win = fmt.Appendf(win, "SET %s %d\n", k, rng.Intn(1000))
		default:
			win = fmt.Appendf(win, "GET %s\n", k)
		}
		offs[i] = len(win)
	}
	return win, offs
}

// dialLoadConn connects and builds the connection's replay window.
func dialLoadConn(addr string, keys []string, seed int64, pipeline, setPct, casPct int) (*loadConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	win, offs := buildWindow(pipeline, keys, rng, setPct, casPct)
	return &loadConn{nc: nc, win: win, offs: offs, buf: make([]byte, 64<<10)}, nil
}

// do pushes reqs requests through the connection in pipelined windows
// and drains one response line per request. Steady-state it performs
// no heap allocation: the window is replayed byte-for-byte and
// responses are only newline-counted (any ERR fails the run).
func (lc *loadConn) do(reqs int) error {
	for reqs > 0 {
		n := len(lc.offs)
		if reqs < n {
			n = reqs
		}
		if _, err := lc.nc.Write(lc.win[:lc.offs[n-1]]); err != nil {
			return err
		}
		need := n
		for need > 0 {
			rn, err := lc.nc.Read(lc.buf)
			if err != nil {
				return err
			}
			if lc.sawErr(lc.buf[:rn]) {
				return fmt.Errorf("bench: server replied with error: %q", firstErrLine(lc.buf[:rn]))
			}
			got := bytes.Count(lc.buf[:rn], nlTok)
			if got > need {
				return fmt.Errorf("bench: %d responses for %d outstanding requests", got, need)
			}
			need -= got
		}
		reqs -= n
	}
	return nil
}

// sawErr reports whether chunk — or the seam between it and the
// previous chunk — contains the "ERR" token, and remembers this
// chunk's last bytes for the next seam check.
func (lc *loadConn) sawErr(chunk []byte) bool {
	found := bytes.Contains(chunk, errTok)
	if !found && lc.tailN > 0 && len(chunk) > 0 {
		var seam [4]byte
		k := copy(seam[:], lc.tail[:lc.tailN])
		n := len(chunk)
		if n > 2 {
			n = 2
		}
		k += copy(seam[k:], chunk[:n])
		found = bytes.Contains(seam[:k], errTok)
	}
	// Carry the last ≤2 bytes of tail+chunk combined, so even 1-byte
	// reads chain correctly into the next seam check.
	switch {
	case len(chunk) >= 2:
		lc.tailN = copy(lc.tail[:], chunk[len(chunk)-2:])
	case len(chunk) == 1 && lc.tailN == 0:
		lc.tail[0] = chunk[0]
		lc.tailN = 1
	case len(chunk) == 1:
		lc.tail[0] = lc.tail[lc.tailN-1]
		lc.tail[1] = chunk[0]
		lc.tailN = 2
	}
	return found
}

func (lc *loadConn) close() { lc.nc.Close() }

func firstErrLine(b []byte) []byte {
	i := bytes.Index(b, errTok)
	rest := b[i:]
	if j := bytes.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// startLoadServer builds, listens and serves a store pre-populated
// with the load key space. Callers must Close the returned server.
// The runtime is pinned to goroutine-per-connection: the E10/E11 rows
// predate the worker runtime and are diffed against baselines recorded
// on it, so the perf time series keeps measuring the wire path and the
// durability bill — E13 owns the runtime dimension.
func startLoadServer(engine string, legacy bool) (*server.Server, []string, error) {
	return startLoadServerCfg(server.Config{
		Engine:  engine,
		Legacy:  legacy,
		Runtime: "goroutine",
	})
}

// startLoadServerCfg is startLoadServer with full config control (the
// WAL measurements need durability fields, the scaling grid varies
// shard count and runtime); Addr is forced to loopback-ephemeral and
// Shards/Buckets default to the harness standard when unset.
func startLoadServerCfg(cfg server.Config) (*server.Server, []string, error) {
	cfg.Addr = "127.0.0.1:0"
	if cfg.Shards == 0 {
		cfg.Shards = srvShards
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = srvBuckets
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := srv.Listen(); err != nil {
		return nil, nil, err
	}
	go srv.Serve()
	keys := make([]string, srvKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		if _, err := srv.Store().Put(nil, keys[i], uint64(i)); err != nil {
			srv.Close()
			return nil, nil, fmt.Errorf("bench: server setup: %w", err)
		}
	}
	return srv, keys, nil
}

// RunServerLoad measures a closed-loop mixed load (75% GET / 20% SET /
// 5% CAS) against an in-process server on the given engine: conns
// connections, each replaying pipelined windows of pipeline requests,
// windows times. legacy selects the preserved PR 3 request path. The
// allocation figures cover only the measured phase (after per-
// connection warmup and a GC fence).
func RunServerLoad(engine string, legacy bool, conns, pipeline, windows int) (ServerResult, error) {
	res := ServerResult{Engine: engine, Path: "byte", Conns: conns, Pipeline: pipeline}
	if legacy {
		res.Path = "legacy"
	}
	srv, keys, err := startLoadServer(engine, legacy)
	if err != nil {
		return res, err
	}
	return measureLoad(srv, keys, res, conns, pipeline, windows)
}

// measureLoad drives the warmed, GC-fenced measurement phase against a
// started server and closes it. Shared by the plain (E10) and WAL
// (E11) measurements.
func measureLoad(srv *server.Server, keys []string, res ServerResult, conns, pipeline, windows int) (ServerResult, error) {
	defer srv.Close()

	lcs := make([]*loadConn, conns)
	for i := range lcs {
		lc, err := dialLoadConn(srv.Addr().String(), keys, int64(i), pipeline, 20, 5)
		if err != nil {
			return res, err
		}
		defer lc.close()
		lcs[i] = lc
	}

	errs := make([]error, conns)
	start := make(chan struct{})
	var warm, done sync.WaitGroup
	for i, lc := range lcs {
		i, lc := i, lc
		warm.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			// Warm the whole path: intern caches, batch scratch, engine
			// descriptor pools, bufio buffers.
			err := lc.do(2 * pipeline)
			warm.Done()
			if err != nil {
				errs[i] = err
				return
			}
			<-start
			errs[i] = lc.do(windows * pipeline)
		}()
	}
	warm.Wait()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	cpu0 := cpuNow()
	t0 := time.Now()
	close(start)
	done.Wait()
	res.Elapsed = time.Since(t0)
	res.CPUSec = cpuNow() - cpu0
	runtime.ReadMemStats(&m1)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Reqs = int64(conns) * int64(windows) * int64(pipeline)
	res.AllocsPerReq = float64(m1.Mallocs-m0.Mallocs) / float64(res.Reqs)
	res.BytesPerReq = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Reqs)
	return res, nil
}

// E10 measures the wire-path rewrite end to end: loopback req/s and
// allocs/req at 8 pipelined connections, byte path vs the preserved
// PR 3 legacy path, per engine. The speedup column is the acceptance
// figure (≥ 1.5x on at least one engine).
func E10(w io.Writer) {
	const conns, pipeline, windows = 8, 32, 1200
	t := NewTable(fmt.Sprintf("Experiment E10 — wire path rewrite, loopback load (%d conns x pipeline %d)", conns, pipeline),
		"engine", "pr3 req/s", "pr3 allocs/req", "byte req/s", "byte allocs/req", "speedup")
	for _, e := range []string{"dstm", "nztm", "coarse"} {
		legacy, err := RunServerLoad(e, true, conns, pipeline, windows)
		if err != nil {
			fmt.Fprintf(w, "E10 %s legacy: %v\n", e, err)
			continue
		}
		fresh, err := RunServerLoad(e, false, conns, pipeline, windows)
		if err != nil {
			fmt.Fprintf(w, "E10 %s byte: %v\n", e, err)
			continue
		}
		t.Add(e,
			fmt.Sprintf("%.0f", legacy.ReqsPerSec()), fmt.Sprintf("%.2f", legacy.AllocsPerReq),
			fmt.Sprintf("%.0f", fresh.ReqsPerSec()), fmt.Sprintf("%.2f", fresh.AllocsPerReq),
			fmt.Sprintf("%.2fx", fresh.ReqsPerSec()/legacy.ReqsPerSec()))
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "The load generator replays pre-built request windows and is allocation-free in the")
	fmt.Fprintln(w, "steady state, so allocs/req is the server+kv request path's own footprint.")
}

// serverRecords measures the perf-tracking serving rows: byte path and
// PR 3 legacy path at 8 connections, on the engines the serving
// experiments track. The pair makes the rewrite's speedup part of the
// recorded trajectory, and the byte rows' allocs/op lock in the
// zero-allocation property through the bench-diff gate.
func serverRecords() ([]Record, error) {
	// windows is sized so one measurement lasts ~1s even on the fastest
	// path: at 800 the allocating legacy rows finished in ~0.2s and GC
	// cycle alignment alone moved them past the diff gate's tolerance.
	const conns, pipeline, windows = 8, 32, 3200
	var recs []Record
	for _, e := range []string{"dstm", "nztm", "coarse"} {
		for _, p := range []struct {
			workload string
			legacy   bool
		}{
			{"server-mixed-c8", false},
			{"server-mixed-c8-pr3", true},
		} {
			e, p := e, p
			rec, err := bestOf(benchRuns, func() (Record, error) {
				r, err := RunServerLoad(e, p.legacy, conns, pipeline, windows)
				if err != nil {
					return Record{}, fmt.Errorf("bench: %s/%s: %w", e, p.workload, err)
				}
				return Record{
					Engine:      e,
					Workload:    p.workload,
					Threads:     conns,
					NsPerOp:     float64(r.Elapsed.Nanoseconds()) / float64(r.Reqs),
					AllocsPerOp: int64(r.AllocsPerReq + 0.5),
					BytesPerOp:  int64(r.BytesPerReq + 0.5),
					OpsPerSec:   r.ReqsPerSec(),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
		}
	}
	return recs, nil
}
