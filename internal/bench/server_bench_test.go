package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// BenchmarkServer is the end-to-end wire benchmark: an in-process
// server on loopback TCP, N pipelined connections replaying pre-built
// GET/SET windows, one benchmark op per request. The load side is
// allocation-free in the steady state, so with -benchmem the reported
// allocs/op is the server+kv request path's own footprint — the figure
// the zero-allocation rewrite is gated on (budget: ≤ 1 alloc/req on
// the byte path; the CI server-bench-smoke job asserts it). The
// legacy-c8 variant measures the preserved PR 3 path for comparison.
func BenchmarkServer(b *testing.B) {
	for _, bc := range []struct {
		name   string
		legacy bool
		conns  int
	}{
		{"byte-c1", false, 1},
		{"byte-c8", false, 8},
		{"legacy-c8", true, 8},
	} {
		b.Run(bc.name, func(b *testing.B) { benchServer(b, "nztm", bc.legacy, bc.conns) })
	}
}

func benchServer(b *testing.B, engine string, legacy bool, conns int) {
	srv, keys, err := startLoadServer(engine, legacy)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	const pipeline = 32
	lcs := make([]*loadConn, conns)
	for i := range lcs {
		// GET/SET only (no CAS): the acceptance budget is defined on the
		// pipelined unconditional path, where batch folding amortizes
		// the engine transaction across the window.
		lc, err := dialLoadConn(srv.Addr().String(), keys, int64(i), pipeline, 25, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer lc.close()
		lcs[i] = lc
		if err := lc.do(2 * pipeline); err != nil { // warm the whole path
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for i, lc := range lcs {
		reqs := b.N / conns
		if i < b.N%conns {
			reqs++
		}
		if reqs == 0 {
			continue
		}
		i, lc := i, lc
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = lc.do(reqs)
		}()
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunServerLoad is the smoke for the E10 harness: a short measured
// run on both paths must ack every request with no error responses,
// and the byte path must hold the steady-state allocation budget
// (≤ 1 alloc/req) that BenchmarkServer and the CI job gate on.
func TestRunServerLoad(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		r, err := RunServerLoad("nztm", legacy, 2, 16, 40)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		if r.Reqs != 2*16*40 {
			t.Fatalf("legacy=%v: reqs = %d, want %d", legacy, r.Reqs, 2*16*40)
		}
		if r.ReqsPerSec() <= 0 {
			t.Fatalf("legacy=%v: zero throughput", legacy)
		}
	}
}

// TestServerAllocBudget locks the tentpole property in-process: a
// steady-state pipelined GET/SET load on the byte path stays within
// 1 alloc per request across server and kv layers.
func TestServerAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	r, err := RunServerLoad("nztm", false, 2, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllocsPerReq > 1 {
		t.Fatalf("byte path allocates %.2f allocs/req, budget is 1", r.AllocsPerReq)
	}
}

// TestLoadConnSeamErrDetection pins the error detector against "ERR"
// tokens split across TCP read boundaries, including one-byte reads.
func TestLoadConnSeamErrDetection(t *testing.T) {
	lc := &loadConn{}
	if lc.sawErr([]byte("VALUE 1\nOK\n")) {
		t.Fatal("clean chunk flagged")
	}
	if lc.sawErr([]byte("VALUE 2\nE")) {
		t.Fatal("prefix alone flagged")
	}
	if !lc.sawErr([]byte("RR bad key\n")) {
		t.Fatal("ERR split across two reads undetected")
	}
	lc = &loadConn{}
	for _, ch := range []string{"OK\nE", "R"} {
		if lc.sawErr([]byte(ch)) {
			t.Fatalf("flagged before token complete (%q)", ch)
		}
	}
	if !lc.sawErr([]byte("R oops\n")) {
		t.Fatal("ERR split across three reads undetected")
	}
	lc = &loadConn{}
	if !lc.sawErr([]byte("ERR direct\n")) {
		t.Fatal("direct ERR undetected")
	}
}

// TestWindowBuilder pins the window invariants the load workers rely
// on: offs marks the end of each request line and the mix respects the
// CAS share.
func TestWindowBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := []string{"a", "b", "c"}
	win, offs := buildWindow(50, keys, rng, 20, 5)
	if len(offs) != 50 || offs[len(offs)-1] != len(win) {
		t.Fatalf("offsets truncated: %d offs, last %d, len %d", len(offs), offs[len(offs)-1], len(win))
	}
	prev := 0
	for i, o := range offs {
		line := string(win[prev:o])
		if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
			t.Fatalf("request %d is not one line: %q", i, line)
		}
		if !strings.HasPrefix(line, "GET ") && !strings.HasPrefix(line, "SET ") && !strings.HasPrefix(line, "CAS ") {
			t.Fatalf("request %d has unexpected verb: %q", i, line)
		}
		prev = o
	}
	if bytes.Contains(win, []byte("\n\n")) {
		t.Fatalf("window contains blank lines")
	}
}

// TestE10Smoke runs a miniature E10 cell pair end to end and checks
// the table renders both paths.
func TestE10Smoke(t *testing.T) {
	legacy, err := RunServerLoad("coarse", true, 1, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunServerLoad("coarse", false, 1, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Path != "legacy" || fresh.Path != "byte" {
		t.Fatalf("paths mislabeled: %q / %q", legacy.Path, fresh.Path)
	}
	_ = fmt.Sprintf("%.0f %.0f", legacy.ReqsPerSec(), fresh.ReqsPerSec())
}
