package bench

// Experiment E14: follower-read scaling of the WAL-shipping replication
// topology (PR 8). One primary (WAL on, replication listener) plus N
// in-process replicas; the load is the E13 mixed read mix at the
// primary and a pure-GET stream at each replica.
//
// Methodology (1-core container): the phases run SEQUENTIALLY within
// one topology boot — first the mixed load at the primary (replicas
// attached and applying, so the primary's rate pays the real shipping
// bill), then, after a catch-up barrier, a GET-only load at each
// replica in turn. On a single core, running all nodes' loads
// concurrently would just timeslice one CPU and measure the scheduler;
// the sequential per-node rates are each node's isolated capacity, and
// the aggregate read capacity of the topology — what an N-node
// deployment serves across N cores — is their sum:
//
//	aggregate(N) = 0.75 x primary_mixed + sum(replica_get rates)
//
// (0.75 is the read share of the E13 mix). The acceptance ratio
// compares aggregate(N) against the primary-only read capacity
// aggregate(0).

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/server"
)

// replPhase drives one warmed, GC-fenced load phase against addr
// without owning the server: conns connections replaying windows
// pipelined windows of the given mix. It is measureLoad's engine with
// the server lifecycle and the request mix lifted out, so one topology
// boot can host several phases.
func replPhase(addr string, keys []string, conns, pipeline, windows, setPct, casPct int) (ServerResult, error) {
	res := ServerResult{Engine: "nztm", Path: "byte", Conns: conns, Pipeline: pipeline}
	lcs := make([]*loadConn, conns)
	for i := range lcs {
		lc, err := dialLoadConn(addr, keys, int64(i), pipeline, setPct, casPct)
		if err != nil {
			return res, err
		}
		defer lc.close()
		lcs[i] = lc
	}
	errs := make([]error, conns)
	start := make(chan struct{})
	var warm, done sync.WaitGroup
	for i, lc := range lcs {
		i, lc := i, lc
		warm.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			err := lc.do(2 * pipeline)
			warm.Done()
			if err != nil {
				errs[i] = err
				return
			}
			<-start
			errs[i] = lc.do(windows * pipeline)
		}()
	}
	warm.Wait()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	cpu0 := cpuNow()
	t0 := time.Now()
	close(start)
	done.Wait()
	res.Elapsed = time.Since(t0)
	res.CPUSec = cpuNow() - cpu0
	runtime.ReadMemStats(&m1)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Reqs = int64(conns) * int64(windows) * int64(pipeline)
	res.AllocsPerReq = float64(m1.Mallocs-m0.Mallocs) / float64(res.Reqs)
	res.BytesPerReq = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Reqs)
	return res, nil
}

// ReplResult is one E14 topology measurement.
type ReplResult struct {
	Replicas     int
	Primary      ServerResult   // mixed phase at the primary
	ReplicaReads []ServerResult // GET-only phase per replica, in order
}

// PrimaryReads returns the primary's read-share request rate under the
// mixed load (75% of the E13 mix is GET).
func (r ReplResult) PrimaryReads() float64 { return 0.75 * r.Primary.ReqsPerSec() }

// AggregateReads returns the topology's summed read capacity (see the
// file comment for why the sum of sequential per-node rates is the
// multi-core aggregate).
func (r ReplResult) AggregateReads() float64 {
	agg := r.PrimaryReads()
	for _, rr := range r.ReplicaReads {
		agg += rr.ReqsPerSec()
	}
	return agg
}

// waitReplCaughtUp blocks until every replica has applied the primary's
// full durable log.
func waitReplCaughtUp(prim *server.Server, replicas []*server.Server) error {
	target := prim.WAL().LastSeq()
	deadline := time.Now().Add(60 * time.Second)
	for _, r := range replicas {
		for r.ReplStats().LastApplied < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("bench: replica stuck at seq %d, want %d", r.ReplStats().LastApplied, target)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// RunReplTopology boots 1 primary + nReplicas in process (each node
// with its own WAL directory) and measures the sequential E14 phases.
func RunReplTopology(nReplicas, conns, pipeline, windows int) (ReplResult, error) {
	res := ReplResult{Replicas: nReplicas}
	pdir, err := os.MkdirTemp("", "oftm-e14-p-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(pdir)

	prim, keys, err := startLoadServerCfg(server.Config{
		Engine: "nztm", Runtime: "goroutine",
		WALDir: pdir, Fsync: "never",
		ReplicateAddr: "127.0.0.1:0",
	})
	if err != nil {
		return res, err
	}
	defer prim.Close()

	var replicas []*server.Server
	for i := 0; i < nReplicas; i++ {
		rdir, err := os.MkdirTemp("", "oftm-e14-r-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(rdir)
		repl, err := server.New(server.Config{
			Addr: "127.0.0.1:0", Engine: "nztm", Runtime: "goroutine",
			Shards: srvShards, Buckets: srvBuckets,
			WALDir: rdir, ReplicaOf: prim.ReplAddr().String(),
		})
		if err != nil {
			return res, fmt.Errorf("bench: replica %d: %w", i, err)
		}
		if err := repl.Listen(); err != nil {
			repl.Close()
			return res, err
		}
		go repl.Serve()
		defer repl.Close()
		replicas = append(replicas, repl)
	}
	// Barrier: the key-space population must be applied everywhere
	// before the measured phases (first-insert paths are warmup, not
	// steady state).
	if err := waitReplCaughtUp(prim, replicas); err != nil {
		return res, err
	}

	// Phase 1: mixed load at the primary, replicas attached and
	// applying — the primary's rate pays the live shipping bill.
	res.Primary, err = replPhase(prim.Addr().String(), keys, conns, pipeline, windows, 20, 5)
	if err != nil {
		return res, fmt.Errorf("bench: primary phase: %w", err)
	}
	// Catch-up barrier, then one GET-only phase per replica.
	if err := waitReplCaughtUp(prim, replicas); err != nil {
		return res, err
	}
	for i, repl := range replicas {
		rr, err := replPhase(repl.Addr().String(), keys, conns, pipeline, windows, 0, 0)
		if err != nil {
			return res, fmt.Errorf("bench: replica %d phase: %w", i, err)
		}
		res.ReplicaReads = append(res.ReplicaReads, rr)
	}
	return res, nil
}

// E14 measures follower-read scaling: 1 primary + {0,1,2} replicas,
// sequential per-node phases, aggregate read capacity vs primary-only.
func E14(w io.Writer) {
	const conns, pipeline, windows = 8, 32, 1200
	t := NewTable(fmt.Sprintf("Experiment E14 — follower-read scaling, 1 primary + N replicas (%d conns x pipeline %d per phase)", conns, pipeline),
		"replicas", "primary mixed req/s", "primary allocs/req", "replica GET req/s", "aggregate reads/s", "scale vs r0")
	var base float64
	for _, n := range []int{0, 1, 2} {
		res, err := RunReplTopology(n, conns, pipeline, windows)
		if err != nil {
			fmt.Fprintf(w, "E14 r%d: %v\n", n, err)
			continue
		}
		if n == 0 {
			base = res.AggregateReads()
		}
		var reads string
		for i, rr := range res.ReplicaReads {
			if i > 0 {
				reads += " + "
			}
			reads += fmt.Sprintf("%.0f", rr.ReqsPerSec())
		}
		if reads == "" {
			reads = "-"
		}
		scale := "-"
		if base > 0 {
			scale = fmt.Sprintf("%.2fx", res.AggregateReads()/base)
		}
		t.Add(fmt.Sprint(n),
			fmt.Sprintf("%.0f", res.Primary.ReqsPerSec()),
			fmt.Sprintf("%.2f", res.Primary.AllocsPerReq),
			reads,
			fmt.Sprintf("%.0f", res.AggregateReads()),
			scale)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "Phases run sequentially within one topology boot (the container has one core):")
	fmt.Fprintln(w, "each figure is that node's isolated capacity, and the aggregate is their sum —")
	fmt.Fprintln(w, "what the topology serves when every node has its own core. The r1/r2 primary")
	fmt.Fprintln(w, "allocs/req include the in-process replicas' apply allocations (same heap); the")
	fmt.Fprintln(w, "r0 row is the primary write path's own figure.")
}

// replRecords measures the E14 perf-tracking rows: aggregate read
// capacity per topology (server-repl-reads-r{0,1,2}). The r0 row's
// allocs/op is the primary write path's own footprint (no replicas
// share the heap during that phase); r1/r2 allocs ride along but
// include in-process replica apply.
func replRecords() ([]Record, error) {
	const conns, pipeline, windows = 8, 32, 1600
	var recs []Record
	for _, n := range []int{0, 1, 2} {
		n := n
		rec, err := bestOf(benchRuns, func() (Record, error) {
			res, err := RunReplTopology(n, conns, pipeline, windows)
			if err != nil {
				return Record{}, fmt.Errorf("bench: server-repl-reads-r%d: %w", n, err)
			}
			agg := res.AggregateReads()
			rec := Record{
				Engine:      "nztm",
				Workload:    fmt.Sprintf("server-repl-reads-r%d", n),
				Threads:     conns,
				OpsPerSec:   agg,
				AllocsPerOp: int64(res.Primary.AllocsPerReq + 0.5),
				BytesPerOp:  int64(res.Primary.BytesPerReq + 0.5),
			}
			if agg > 0 {
				rec.NsPerOp = 1e9 / agg
			}
			return rec, nil
		})
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
