package bench

import (
	"testing"
	"time"
)

// TestRunServerLoadWAL is the E11 harness smoke: a short measured run
// in every WAL mode must ack every request cleanly.
func TestRunServerLoadWAL(t *testing.T) {
	for _, m := range walModes {
		r, err := RunServerLoadWAL("nztm", m.fsync, 2, 16, 20)
		if err != nil {
			t.Fatalf("%s: %v", m.label, err)
		}
		if r.Path != m.label {
			t.Fatalf("path mislabeled: %q, want %q", r.Path, m.label)
		}
		if r.Reqs != 2*16*20 || r.ReqsPerSec() <= 0 {
			t.Fatalf("%s: reqs=%d rps=%.0f", m.label, r.Reqs, r.ReqsPerSec())
		}
	}
}

// TestWALLoadAllocBudget holds the durability layer to the wire path's
// allocation discipline: with the WAL on (interval fsync) the whole
// server+kv+wal stack must stay within 1 alloc per pipelined request —
// the group-commit pending buffer and the session effect scratch are
// reused, so logging adds no steady-state allocation.
func TestWALLoadAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	r, err := RunServerLoadWAL("nztm", "interval", 2, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllocsPerReq > 1 {
		t.Fatalf("wal-interval path allocates %.2f allocs/req, budget is 1", r.AllocsPerReq)
	}
}

// TestSnapshotCutAllocBudget holds the serving path to the same
// allocation discipline while incremental chain snapshots are being
// cut underneath it: the dirty-epoch read and the cut's shard dumps
// run on the snapshot goroutine, so requests must not pick up any
// per-request allocation from a concurrent cut. The run is retried a
// few times if no cut happened to land inside the measured phase —
// a pass with zero concurrent cuts would prove nothing.
func TestSnapshotCutAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	for attempt := 0; attempt < 5; attempt++ {
		r, cut, err := RunServerLoadSnapshot("nztm", 5*time.Millisecond, 2, 32, 200)
		if err != nil {
			t.Fatal(err)
		}
		if !cut {
			t.Logf("attempt %d: no snapshot cut landed inside the measured phase; retrying", attempt)
			continue
		}
		if r.AllocsPerReq > 1 {
			t.Fatalf("serving path allocates %.2f allocs/req while snapshots cut, budget is 1", r.AllocsPerReq)
		}
		return
	}
	t.Fatal("no measured run overlapped a snapshot cut after 5 attempts")
}
