package bench

// Experiment E11: the cost of durability. The same closed-loop mixed
// load as E10 (8 pipelined connections over loopback) against servers
// whose only difference is the WAL configuration — off, group commit
// with interval fsync, group commit with fsync-per-batch — so the
// req/s and allocs/req deltas are the durability layer's own bill.
// The acceptance criteria this experiment gates: the wal-off path
// keeps its zero-allocation steady state, and fsync=interval stays
// within 25% of wal-off throughput at 8 connections.

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/server"
)

// walModes are the E11 columns, in measurement order. Path labels
// become the -pr5 JSON workload suffixes.
var walModes = []struct {
	label string // ServerResult.Path / table row
	fsync string // server.Config.Fsync ("" = WAL off)
}{
	{"wal-off", ""},
	{"wal-interval", "interval"},
	{"wal-always", "always"},
}

// RunServerLoadWAL measures the standard mixed load against a server
// with the given fsync policy, logging into a throwaway directory
// (fsync "" runs without a WAL — the baseline). The directory lives on
// whatever filesystem the test environment gives us; fsync figures are
// therefore hardware-honest, not portable constants.
func RunServerLoadWAL(engine, fsync string, conns, pipeline, windows int) (ServerResult, error) {
	res := ServerResult{Engine: engine, Path: "wal-" + fsync, Conns: conns, Pipeline: pipeline}
	// Runtime pinned for baseline comparability, like startLoadServer.
	cfg := server.Config{Engine: engine, Runtime: "goroutine"}
	if fsync == "" {
		res.Path = "wal-off"
	} else {
		dir, err := os.MkdirTemp("", "oftm-wal-bench-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
		cfg.Fsync = fsync
	}
	srv, keys, err := startLoadServerCfg(cfg)
	if err != nil {
		return res, err
	}
	return measureLoad(srv, keys, res, conns, pipeline, windows)
}

// RunServerLoadSnapshot measures the standard mixed load against a
// server that is cutting incremental chain snapshots on a timer while
// it serves — the regression harness for "snapshot cuts don't tax the
// serving path". Alongside the measurement it reports whether the
// snapshot cut actually advanced during the measured phase, so a
// passing allocation figure can't come from a run where no cut landed.
func RunServerLoadSnapshot(engine string, every time.Duration, conns, pipeline, windows int) (ServerResult, bool, error) {
	res := ServerResult{Engine: engine, Path: "wal-snapcut", Conns: conns, Pipeline: pipeline}
	dir, err := os.MkdirTemp("", "oftm-snapcut-bench-*")
	if err != nil {
		return res, false, err
	}
	defer os.RemoveAll(dir)
	cfg := server.Config{
		Engine:        engine,
		Runtime:       "goroutine",
		WALDir:        dir,
		Fsync:         "interval",
		SnapshotEvery: every,
	}
	srv, keys, err := startLoadServerCfg(cfg)
	if err != nil {
		return res, false, err
	}
	before := srv.WAL().Stats().SnapshotSeq
	res, err = measureLoad(srv, keys, res, conns, pipeline, windows)
	cut := srv.WAL().Stats().SnapshotSeq > before
	return res, cut, err
}

// E11 measures the durability bill end to end: loopback req/s and
// allocs/req at 8 pipelined connections with the WAL off, on with
// interval fsync, and on with fsync-per-group-commit.
func E11(w io.Writer) {
	const conns, pipeline, windows = 8, 32, 1200
	t := NewTable(fmt.Sprintf("Experiment E11 — durability: WAL group commit under load (%d conns x pipeline %d, nztm)", conns, pipeline),
		"wal", "req/s", "allocs/req", "B/req", "vs wal-off")
	var base float64
	for _, m := range walModes {
		r, err := RunServerLoadWAL("nztm", m.fsync, conns, pipeline, windows)
		if err != nil {
			fmt.Fprintf(w, "E11 %s: %v\n", m.label, err)
			continue
		}
		rel := "1.00x"
		if m.fsync == "" {
			base = r.ReqsPerSec()
		} else if base > 0 {
			rel = fmt.Sprintf("%.2fx", r.ReqsPerSec()/base)
		}
		t.Add(m.label,
			fmt.Sprintf("%.0f", r.ReqsPerSec()),
			fmt.Sprintf("%.2f", r.AllocsPerReq),
			fmt.Sprintf("%.0f", r.BytesPerReq),
			rel)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "Group commit batches concurrent sessions' records into one write (and, for always,")
	fmt.Fprintln(w, "one fsync); the gate is wal-off at 0 allocs/req and interval within 25% of wal-off.")
}

// walRecords measures the E11 perf-tracking rows: the mixed 8-conn
// load with the WAL at interval and always fsync on nztm. The wal-off
// row is the existing server-mixed-c8 record, so the trio lives in one
// grid and the bench-diff gate watches the durability tax too.
func walRecords() ([]Record, error) {
	// windows sized like serverRecords: long enough that GC and fsync
	// scheduling average out instead of deciding the row.
	const conns, pipeline, windows = 8, 32, 3200
	var recs []Record
	for _, m := range walModes {
		if m.fsync == "" {
			continue
		}
		m := m
		rec, err := bestOf(benchRuns, func() (Record, error) {
			r, err := RunServerLoadWAL("nztm", m.fsync, conns, pipeline, windows)
			if err != nil {
				return Record{}, fmt.Errorf("bench: wal/%s: %w", m.fsync, err)
			}
			return Record{
				Engine:      "nztm",
				Workload:    "server-mixed-c8-" + m.label,
				Threads:     conns,
				NsPerOp:     float64(r.Elapsed.Nanoseconds()) / float64(r.Reqs),
				AllocsPerOp: int64(r.AllocsPerReq + 0.5),
				BytesPerOp:  int64(r.BytesPerReq + 0.5),
				OpsPerSec:   r.ReqsPerSec(),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
