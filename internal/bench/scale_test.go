package bench

import (
	"os"
	"testing"
)

// TestMain lets this test binary double as an E13 loadgen child when
// re-exec'd with OFTM_LOADGEN=1 (see MaybeLoadgenChild) — that is how
// TestScaleMultiProcess drives real child processes under `go test`.
func TestMain(m *testing.M) {
	MaybeLoadgenChild()
	os.Exit(m.Run())
}

// TestScaleInProcess measures one small grid point per runtime with the
// in-process generator and sanity-checks the result shape.
func TestScaleInProcess(t *testing.T) {
	for _, rt := range []string{"worker", "goroutine"} {
		c := ScaleCase{Runtime: rt, Conns: 4, Shards: 8}
		res, err := RunServerScale(c, 1, 0, 8, 4)
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if want := int64(4 * 4 * 8); res.Reqs != want {
			t.Fatalf("%s: measured %d reqs, want %d", rt, res.Reqs, want)
		}
		if res.ReqsPerSec() <= 0 {
			t.Fatalf("%s: nonpositive throughput: %+v", rt, res)
		}
	}
}

// TestScaleMultiProcess runs one worker-runtime point through the
// READY/GO/DONE child handshake with two real loadgen processes.
func TestScaleMultiProcess(t *testing.T) {
	c := ScaleCase{Runtime: "worker", Conns: 4, Shards: 8}
	res, err := RunServerScale(c, 2, 0, 8, 4)
	if err != nil {
		t.Fatalf("multi-process scale point: %v", err)
	}
	if want := int64(4 * 4 * 8); res.Reqs != want {
		t.Fatalf("children acked %d reqs, want %d", res.Reqs, want)
	}
}
