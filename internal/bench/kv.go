package bench

// The kv-* workloads: closed-loop load against the sharded
// transactional store (internal/kv), the serving-stack counterpart of
// the var-array microbenchmarks. The store partitions a fixed key
// space across S shards with a fixed per-shard bucket count, so the
// shard count is the partitioning knob the E9 experiment sweeps:
// sharding the key space shortens per-bucket chains and makes
// same-shard conflicts rarer — the systems-level payoff of
// disjoint-access-parallelism.

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/kv"
)

const (
	// kvKeys is the workload key space (pre-populated at setup).
	kvKeys = 1024
	// kvBucketsPerShard keeps per-shard index capacity constant, so
	// shards=1 means long chains and hot buckets and shards=8 means
	// short chains and spread traffic.
	kvBucketsPerShard = 16
)

// kvSetup builds and pre-populates a store on tm.
func kvSetup(tm core.TM, shards int) (*kv.Store, []string) {
	s := kv.New(tm, shards, kvBucketsPerShard)
	keys := make([]string, kvKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		if _, err := s.Put(nil, keys[i], uint64(i)); err != nil {
			panic(fmt.Sprintf("bench: kv setup: %v", err))
		}
	}
	return s, keys
}

// kvSlot is one measured thread's serving state: a kv.Session (handle
// cache + plan scratch) plus reusable op and key buffers — the bench
// counterpart of the server's per-connection session, so the kv-*
// workloads measure the same allocation-free steady state the wire
// path runs on.
type kvSlot struct {
	se   *kv.Session
	ops  []kv.Op
	keys []string
	zipf *rand.Zipf
}

// kvSlots returns a thread-indexed slot accessor. Slots are
// thread-private (threadID-indexed, like the Zipf generators), so no
// locking is needed; out-of-range thread IDs get throwaway slots.
func kvSlots(s *kv.Store) func(t int) *kvSlot {
	slots := make([]*kvSlot, 64)
	return func(t int) *kvSlot {
		if t >= len(slots) {
			return &kvSlot{se: s.NewSession()}
		}
		if slots[t] == nil {
			slots[t] = &kvSlot{se: s.NewSession()}
		}
		return slots[t]
	}
}

// KVUniform is the uniform-key mix: 75% GET / 25% PUT over the whole
// key space, sharded S ways.
func KVUniform(shards int) Workload {
	return Workload{
		Name: fmt.Sprintf("kv-uniform-s%d", shards),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			s, keys := kvSetup(tm, shards)
			slots := kvSlots(s)
			return func(t, _ int, rng *rand.Rand) error {
				se := slots(t).se
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(100) < 75 {
					_, _, err := se.Get(nil, k)
					return err
				}
				_, err := se.Put(nil, k, uint64(rng.Intn(1000)))
				return err
			}
		},
	}
}

// KVZipfian is the hot-key mix: keys drawn from a Zipf distribution
// (s=1.2), same 75/25 read/write split — the skewed traffic shape real
// caches see, where sharding helps less because the hot keys
// concentrate on few shards.
func KVZipfian(shards int) Workload {
	return Workload{
		Name: fmt.Sprintf("kv-zipf-s%d", shards),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			s, keys := kvSetup(tm, shards)
			slots := kvSlots(s)
			return func(t, _ int, rng *rand.Rand) error {
				// One Zipf generator per measured thread (rand.Zipf is
				// not concurrency-safe); it lives in the thread's slot.
				slot := slots(t)
				if slot.zipf == nil {
					slot.zipf = rand.NewZipf(rng, 1.2, 8, kvKeys-1)
				}
				k := keys[slot.zipf.Uint64()]
				if rng.Intn(100) < 75 {
					_, _, err := slot.se.Get(nil, k)
					return err
				}
				_, err := slot.se.Put(nil, k, uint64(rng.Intn(1000)))
				return err
			}
		},
	}
}

// KVTxn is the multi-key transaction mix: every operation is one
// atomic Txn batch of keysPerOp uniformly random keys (half reads,
// half writes), which crosses shards almost always — the measured
// exception the store's cross-shard ratio tracks.
func KVTxn(shards, keysPerOp int) Workload {
	return Workload{
		Name: fmt.Sprintf("kv-txn%d-s%d", keysPerOp, shards),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			s, keys := kvSetup(tm, shards)
			slots := kvSlots(s)
			return func(t, _ int, rng *rand.Rand) error {
				slot := slots(t)
				slot.ops = slot.ops[:0]
				for i := 0; i < keysPerOp; i++ {
					k := keys[rng.Intn(len(keys))]
					if i%2 == 0 {
						slot.ops = append(slot.ops, kv.Op{Kind: kv.OpGet, Handle: slot.se.Handle(k)})
					} else {
						slot.ops = append(slot.ops, kv.Op{Kind: kv.OpPut, Handle: slot.se.Handle(k), Val: uint64(rng.Intn(1000))})
					}
				}
				_, err := slot.se.Txn(nil, slot.ops)
				return err
			}
		},
	}
}

// KVSnapshot is the read-only snapshot mix: each operation reads
// keysPerOp keys across shards in one read-only transaction,
// exercising the engines' validation-free read-only commit.
func KVSnapshot(shards, keysPerOp int) Workload {
	return Workload{
		Name: fmt.Sprintf("kv-snap%d-s%d", keysPerOp, shards),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			s, keys := kvSetup(tm, shards)
			slots := kvSlots(s)
			return func(t, _ int, rng *rand.Rand) error {
				slot := slots(t)
				slot.keys = slot.keys[:0]
				for i := 0; i < keysPerOp; i++ {
					slot.keys = append(slot.keys, keys[rng.Intn(len(keys))])
				}
				_, err := slot.se.GetMulti(nil, slot.keys)
				return err
			}
		},
	}
}

// E9 measures the serving stack: kv throughput against shard count per
// engine at 8 threads, for uniform and zipfian key traffic, plus the
// multi-key transaction and snapshot mixes at 8 shards.
func E9(w io.Writer) {
	const threads = 8
	const opsPerThread = 10000
	shardCounts := []int{1, 2, 4, 8}

	for _, dist := range []struct {
		title string
		mk    func(shards int) Workload
	}{
		{"uniform keys (75% get / 25% put)", KVUniform},
		{"zipfian hot keys (s=1.2, 75% get / 25% put)", KVZipfian},
	} {
		t := NewTable(fmt.Sprintf("Experiment E9 — kv ops/s by shards, %s, %d threads", dist.title, threads),
			"engine", "s=1", "s=2", "s=4", "s=8", "scale s1->s8")
		for _, e := range Engines() {
			if e.Name == "alg2" {
				continue
			}
			row := []any{e.Name}
			var first, last Result
			for _, sc := range shardCounts {
				last = RunThroughput(e.Raw, dist.mk(sc), threads, opsPerThread)
				if sc == 1 {
					first = last
				}
				row = append(row, fmt.Sprintf("%.0f", last.OpsPerSec()))
			}
			row = append(row, fmt.Sprintf("%.2fx", last.OpsPerSec()/first.OpsPerSec()))
			t.Add(row...)
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintln(w)
	}

	t := NewTable("Experiment E9c — multi-key batches at 8 shards, 8 threads",
		"engine", "txn4 ops/s", "txn4 retries", "snap8 ops/s")
	for _, e := range Engines() {
		if e.Name == "alg2" {
			continue
		}
		txn := RunThroughput(e.Raw, KVTxn(8, 4), threads, opsPerThread)
		snap := RunThroughput(e.Raw, KVSnapshot(8, 8), threads, opsPerThread)
		t.Add(e.Name, fmt.Sprintf("%.0f", txn.OpsPerSec()),
			txn.Attempts-int64(txn.Ops), fmt.Sprintf("%.0f", snap.OpsPerSec()))
	}
	fmt.Fprint(w, t.String())
}

// KVSmoke runs every kv workload briefly on nztm — the CI smoke that
// proves the serving-stack workloads execute end to end. It returns an
// error if any workload fails or measures zero throughput.
func KVSmoke(w io.Writer) error {
	for _, wl := range []Workload{KVUniform(4), KVZipfian(4), KVTxn(4, 4), KVSnapshot(4, 8)} {
		r := RunThroughput(EngineByName("nztm").Raw, wl, 4, 250)
		if r.OpsPerSec() <= 0 {
			return fmt.Errorf("kv smoke: %s measured zero throughput", wl.Name)
		}
		fmt.Fprintf(w, "kv smoke: %-16s %8.0f ops/s (%d attempts for %d ops)\n",
			wl.Name, r.OpsPerSec(), r.Attempts, r.Ops)
	}
	return nil
}
