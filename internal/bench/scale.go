package bench

// Experiment E13: connection scaling of the serving runtimes. E10/E11
// measured a single 8-connection point; E13 extends that into a grid —
// {8, 64, 256, 1024} connections × shard count × fsync policy — and
// runs it against both serving runtimes (the PR 7 shard-affine worker
// loops and the goroutine-per-connection baseline), so the speedup and
// the zero-allocation property are measured where they matter: past
// the point where goroutine-per-connection scheduling starts to bill.
//
// The load can be driven by separate loadgen processes (`oftm-bench
// -servebench -procs P`) so the in-process client never bottlenecks or
// pollutes the server's allocation figures: children are re-execs of
// the current binary, gated by MaybeLoadgenChild, that dial their
// connection share, warm up, handshake READY/GO over their pipes, and
// replay the same pre-built windows as the in-process generator. The
// measured MemStats window then covers the serving process alone.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/server"
)

// ScaleCase is one grid point of E13.
type ScaleCase struct {
	Runtime string // server.Config.Runtime: "worker" | "goroutine"
	Engine  string // "" = scaleEngine
	Conns   int
	Shards  int
	Fsync   string // "" = WAL off, else the fsync policy
}

func (c ScaleCase) engine() string {
	if c.Engine == "" {
		return scaleEngine
	}
	return c.Engine
}

func (c ScaleCase) walLabel() string {
	if c.Fsync == "" {
		return "wal-off"
	}
	return "wal-" + c.Fsync
}

// ScaleOptions configure the E13 grid run (set once from oftm-bench
// flags before experiments execute).
type ScaleOptions struct {
	// Procs is the number of loadgen processes; 1 drives the load
	// in-process with the allocation-free generator.
	Procs int
	// Conns is the connection grid (CI truncates it to 8/64).
	Conns []int
	// Workers is the worker count for worker-runtime points (0 = the
	// server default, GOMAXPROCS capped at the shard count).
	Workers int
}

// The default drives the load from two child processes: the measured
// process then spends its cycles on serving alone, which is what makes
// the req/s-per-core figures (and the recorded ns/op) comparable
// across machines and runs. -procs 1 keeps the in-process generator
// for environments where re-exec is unavailable.
var scaleOpts = ScaleOptions{Procs: 2, Conns: []int{8, 64, 256, 1024}}

// SetScaleOptions overrides the E13 grid configuration. Zero/nil
// fields keep their defaults.
func SetScaleOptions(o ScaleOptions) {
	if o.Procs > 0 {
		scaleOpts.Procs = o.Procs
	}
	if len(o.Conns) > 0 {
		scaleOpts.Conns = o.Conns
	}
	if o.Workers > 0 {
		scaleOpts.Workers = o.Workers
	}
	scaleMemo = nil // a changed grid invalidates memoized results
}

// scaleEngine is the grid engine; the runtime comparison needs one
// engine measured well, not five measured noisily.
const scaleEngine = "nztm"

// scalePipeline is the per-window pipelining depth, matching E10/E11.
const scalePipeline = 32

// scaleGrid is the measurement plan: the full connection × fsync grid
// at the standard shard count, plus a wider-sharding point at the
// contended connection count, for each runtime.
func scaleGrid() []ScaleCase {
	var cs []ScaleCase
	for _, rt := range []string{"goroutine", "worker"} {
		for _, conns := range scaleOpts.Conns {
			for _, fs := range []string{"", "interval"} {
				cs = append(cs, ScaleCase{Runtime: rt, Conns: conns, Shards: srvShards, Fsync: fs})
			}
		}
		for _, conns := range scaleOpts.Conns {
			if conns == 256 {
				cs = append(cs, ScaleCase{Runtime: rt, Conns: 256, Shards: 32, Fsync: ""})
				// Engine breadth at the contended point: tl2 pays the
				// most per transaction of the engines that hold the
				// allocs/req <= 1 budget at 256 conns, so it is where
				// cross-connection folding buys the most — the >= 1.5x
				// acceptance comparison reads off these rows. (2pl gains
				// as much but its lock-wait path allocates ~2/req under
				// this contention on both runtimes, so it stays out of
				// the recorded grid.)
				cs = append(cs, ScaleCase{Runtime: rt, Engine: "tl2", Conns: 256, Shards: srvShards, Fsync: ""})
			}
		}
	}
	return cs
}

// scaleWindows sizes each point to a roughly constant request total so
// the grid's duration does not grow with the connection count. The
// total is sized to keep one measurement above ~1s of load: at ~131k
// requests a point lasted ~0.2s and the scheduler mode it happened to
// land in decided the row (the goroutine baseline at 256 connections
// was bimodal across runs by ~30%); at ~1M requests the modes average
// into a steady state the median can be trusted on.
func scaleWindows(conns int) int {
	w := 1048576 / (conns * scalePipeline)
	if w < 4 {
		w = 4
	}
	return w
}

// RunServerScale measures one grid point.
func RunServerScale(c ScaleCase, procs, workers, pipeline, windows int) (ServerResult, error) {
	res := ServerResult{
		Engine:   c.engine(),
		Path:     fmt.Sprintf("%s-s%d-%s", c.Runtime, c.Shards, c.walLabel()),
		Conns:    c.Conns,
		Pipeline: pipeline,
	}
	cfg := server.Config{
		Engine:  c.engine(),
		Shards:  c.Shards,
		Runtime: c.Runtime,
		Workers: workers,
	}
	if c.Fsync != "" {
		dir, err := os.MkdirTemp("", "oftm-scale-wal-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
		cfg.WALDir = dir
		cfg.Fsync = c.Fsync
	}
	srv, keys, err := startLoadServerCfg(cfg)
	if err != nil {
		return res, err
	}
	if procs <= 1 {
		return measureLoad(srv, keys, res, c.Conns, pipeline, windows)
	}
	return measureLoadProcs(srv, res, procs, c.Conns, pipeline, windows)
}

// measureLoadProcs is measureLoad with the load in child processes:
// spawn, wait for every child's READY, fence the GC, release them all
// with GO, and measure until the last DONE. The MemStats delta then
// belongs to the serving process alone.
func measureLoadProcs(srv *server.Server, res ServerResult, procs, conns, pipeline, windows int) (ServerResult, error) {
	defer srv.Close()
	exe, err := os.Executable()
	if err != nil {
		return res, fmt.Errorf("bench: loadgen re-exec: %w", err)
	}
	type child struct {
		cmd *exec.Cmd
		in  io.WriteCloser
		out *bufio.Reader
	}
	var children []child
	defer func() {
		for _, ch := range children {
			ch.cmd.Process.Kill()
			ch.cmd.Wait()
		}
	}()
	base, rem := conns/procs, conns%procs
	for i := 0; i < procs; i++ {
		n := base
		if i < rem {
			n++
		}
		if n == 0 {
			continue
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"OFTM_LOADGEN=1",
			"OFTM_LG_ADDR="+srv.Addr().String(),
			fmt.Sprintf("OFTM_LG_CONNS=%d", n),
			fmt.Sprintf("OFTM_LG_PIPELINE=%d", pipeline),
			fmt.Sprintf("OFTM_LG_WINDOWS=%d", windows),
			fmt.Sprintf("OFTM_LG_SEED=%d", i*1009+1),
		)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return res, err
		}
		out, err := cmd.StdoutPipe()
		if err != nil {
			return res, err
		}
		if err := cmd.Start(); err != nil {
			return res, fmt.Errorf("bench: loadgen child: %w", err)
		}
		children = append(children, child{cmd: cmd, in: in, out: bufio.NewReader(out)})
	}
	for i, ch := range children {
		line, err := ch.out.ReadString('\n')
		if err != nil || line != "READY\n" {
			return res, fmt.Errorf("bench: loadgen child %d: want READY, got %q (%v)", i, line, err)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	cpu0 := cpuNow()
	t0 := time.Now()
	for _, ch := range children {
		if _, err := io.WriteString(ch.in, "GO\n"); err != nil {
			return res, err
		}
	}
	var total int64
	for i, ch := range children {
		line, err := ch.out.ReadString('\n')
		var n int64
		if err != nil || len(line) < 6 {
			return res, fmt.Errorf("bench: loadgen child %d: want DONE, got %q (%v)", i, line, err)
		}
		if _, err := fmt.Sscanf(line, "DONE %d", &n); err != nil {
			return res, fmt.Errorf("bench: loadgen child %d: bad DONE line %q", i, line)
		}
		total += n
	}
	res.Elapsed = time.Since(t0)
	res.CPUSec = cpuNow() - cpu0
	runtime.ReadMemStats(&m1)
	for i, ch := range children {
		ch.in.Close()
		if err := ch.cmd.Wait(); err != nil {
			return res, fmt.Errorf("bench: loadgen child %d: %w", i, err)
		}
	}
	children = nil
	res.Reqs = total
	res.AllocsPerReq = float64(m1.Mallocs-m0.Mallocs) / float64(res.Reqs)
	res.BytesPerReq = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Reqs)
	return res, nil
}

// MaybeLoadgenChild turns the current process into a loadgen child
// when OFTM_LOADGEN=1 is set and never returns in that case. It must
// be called at the top of main (and of TestMain for test binaries that
// measure with -procs > 1).
func MaybeLoadgenChild() {
	if os.Getenv("OFTM_LOADGEN") != "1" {
		return
	}
	os.Exit(loadgenChild())
}

func loadgenChild() int {
	addr := os.Getenv("OFTM_LG_ADDR")
	conns := envInt("OFTM_LG_CONNS", 1)
	pipeline := envInt("OFTM_LG_PIPELINE", scalePipeline)
	windows := envInt("OFTM_LG_WINDOWS", 4)
	seed := envInt("OFTM_LG_SEED", 1)
	keys := make([]string, srvKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
	}
	lcs := make([]*loadConn, conns)
	for i := range lcs {
		lc, err := dialLoadConn(addr, keys, int64(seed+i), pipeline, 20, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: dial %s: %v\n", addr, err)
			return 1
		}
		defer lc.close()
		lcs[i] = lc
	}
	run := func(reqs int) error {
		errs := make([]error, len(lcs))
		var wg sync.WaitGroup
		for i, lc := range lcs {
			i, lc := i, lc
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[i] = lc.do(reqs)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(2 * pipeline); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: warmup: %v\n", err)
		return 1
	}
	fmt.Println("READY")
	in := bufio.NewReader(os.Stdin)
	if line, err := in.ReadString('\n'); err != nil || line != "GO\n" {
		fmt.Fprintf(os.Stderr, "loadgen: want GO, got %q (%v)\n", line, err)
		return 1
	}
	if err := run(windows * pipeline); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: load: %v\n", err)
		return 1
	}
	fmt.Printf("DONE %d\n", int64(len(lcs))*int64(windows)*int64(pipeline))
	return 0
}

func envInt(name string, def int) int {
	if v, err := strconv.Atoi(os.Getenv(name)); err == nil && v > 0 {
		return v
	}
	return def
}

// scaleMemo caches the grid measurements so the E13 table and the JSON
// records come from one run per process.
var scaleMemo []scaleMeasurement

type scaleMeasurement struct {
	c   ScaleCase
	res ServerResult
	err error
}

// scaleNsPerReq is the figure a grid point is judged on: server CPU
// per request when the load ran in child processes (what scaleRecords
// stores as ns/op), wall time per request otherwise.
func scaleNsPerReq(res ServerResult) float64 {
	if scaleOpts.Procs > 1 && res.CPUSec > 0 {
		return res.CPUSec * 1e9 / float64(res.Reqs)
	}
	return float64(res.Elapsed.Nanoseconds()) / float64(res.Reqs)
}

func runScaleGrid() []scaleMeasurement {
	if scaleMemo != nil {
		return scaleMemo
	}
	for _, c := range scaleGrid() {
		// Each point is the median of benchRuns measurements, like every
		// other gated record (see bestOf): single points swing enough on
		// the 1-core runner to move the worker/goroutine ratio itself.
		m := scaleMeasurement{c: c}
		var runs []ServerResult
		for i := 0; i < benchRuns; i++ {
			res, err := RunServerScale(c, scaleOpts.Procs, scaleOpts.Workers, scalePipeline, scaleWindows(c.Conns))
			if err != nil {
				m.err = err
				break
			}
			runs = append(runs, res)
		}
		if m.err == nil {
			sort.Slice(runs, func(i, j int) bool { return scaleNsPerReq(runs[i]) < scaleNsPerReq(runs[j]) })
			m.res = runs[(len(runs)-1)/2]
		}
		scaleMemo = append(scaleMemo, m)
	}
	return scaleMemo
}

// E13 measures the connection-scaling grid and reports both runtimes
// side by side; the speedup column pairs each worker point with the
// goroutine point of the same connections/shards/fsync coordinates.
func E13(w io.Writer) {
	ms := runScaleGrid()
	// goroutine baselines keyed by engine|conns|shards|fsync; the
	// per-core ratio is the runtime-efficiency comparison (server CPU
	// only with -procs > 1), the req/s ratio the wall-clock one.
	baseWall := map[string]float64{}
	baseCore := map[string]float64{}
	for _, m := range ms {
		if m.err == nil && m.c.Runtime == "goroutine" {
			k := fmt.Sprintf("%s|%d|%d|%s", m.c.engine(), m.c.Conns, m.c.Shards, m.c.Fsync)
			baseWall[k] = m.res.ReqsPerSec()
			baseCore[k] = m.res.ReqsPerCore()
		}
	}
	t := NewTable(fmt.Sprintf("Experiment E13 — serving runtime scaling grid (pipeline %d, %d loadgen proc(s))",
		scalePipeline, scaleOpts.Procs),
		"runtime", "engine", "conns", "shards", "wal", "req/s", "req/s/core", "allocs/req", "vs goroutine")
	for _, m := range ms {
		if m.err != nil {
			fmt.Fprintf(w, "E13 %s %s c%d s%d %s: %v\n", m.c.Runtime, m.c.engine(), m.c.Conns, m.c.Shards, m.c.walLabel(), m.err)
			continue
		}
		rel := "-"
		if m.c.Runtime == "worker" {
			k := fmt.Sprintf("%s|%d|%d|%s", m.c.engine(), m.c.Conns, m.c.Shards, m.c.Fsync)
			switch {
			case baseCore[k] > 0 && m.res.ReqsPerCore() > 0:
				rel = fmt.Sprintf("%.2fx/core", m.res.ReqsPerCore()/baseCore[k])
			case baseWall[k] > 0:
				rel = fmt.Sprintf("%.2fx", m.res.ReqsPerSec()/baseWall[k])
			}
		}
		t.Add(m.c.Runtime,
			m.c.engine(),
			fmt.Sprintf("%d", m.c.Conns),
			fmt.Sprintf("%d", m.c.Shards),
			m.c.walLabel(),
			fmt.Sprintf("%.0f", m.res.ReqsPerSec()),
			fmt.Sprintf("%.0f", m.res.ReqsPerCore()),
			fmt.Sprintf("%.2f", m.res.AllocsPerReq),
			rel)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintf(w, "Grid: conns %v x shards {%d, 32 at c256} x {wal-off, wal-interval} on %s per runtime,\n", scaleOpts.Conns, srvShards, scaleEngine)
	fmt.Fprintln(w, "plus tl2 at the contended 256-conn point. The worker runtime folds requests")
	fmt.Fprintln(w, "across connections into shard-owned units, so its advantage grows with connection")
	fmt.Fprintln(w, "count; the gate is >= 1.5x at 256 conns on >= 1 engine (equal shards) and")
	fmt.Fprintln(w, "allocs/req <= 1 at every wal-off and wal-interval point.")
}

// scaleRecords converts the grid measurements into perf-tracking
// records for BENCH_PR7.json: workload server-scale-<runtime>-s<n>-
// <wal>, threads = connections. These rows are what bench-diff gates.
func scaleRecords() ([]Record, error) {
	var recs []Record
	for _, m := range runScaleGrid() {
		if m.err != nil {
			return nil, fmt.Errorf("bench: scale %s c%d s%d %s: %w", m.c.Runtime, m.c.Conns, m.c.Shards, m.c.walLabel(), m.err)
		}
		// ns/op records server CPU per request when the load ran in
		// child processes (the stable, machine-comparable figure);
		// wall time otherwise. ops/s stays wall-clock throughput.
		nsPerOp := float64(m.res.Elapsed.Nanoseconds()) / float64(m.res.Reqs)
		if scaleOpts.Procs > 1 && m.res.CPUSec > 0 {
			nsPerOp = m.res.CPUSec * 1e9 / float64(m.res.Reqs)
		}
		recs = append(recs, Record{
			Engine:      m.c.engine(),
			Workload:    fmt.Sprintf("server-scale-%s-s%d-%s", m.c.Runtime, m.c.Shards, m.c.walLabel()),
			Threads:     m.c.Conns,
			NsPerOp:     nsPerOp,
			AllocsPerOp: int64(m.res.AllocsPerReq + 0.5),
			BytesPerOp:  int64(m.res.BytesPerReq + 0.5),
			OpsPerSec:   m.res.ReqsPerSec(),
		})
	}
	return recs, nil
}
