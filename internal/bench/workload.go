package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alg2"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/locktm"
	"repro/internal/nztm"
	"repro/internal/sim"
)

// Engine is a registry entry: how to build the engine in raw and sim
// modes, and whether it claims obstruction-freedom.
type Engine struct {
	Name string
	Raw  func() core.TM
	Sim  func(env *sim.Env) core.TM
	OF   bool
}

// Engines returns the standard engine lineup used across experiments.
func Engines() []Engine {
	return []Engine{
		{
			Name: "dstm",
			Raw:  func() core.TM { return dstm.New() },
			Sim:  func(env *sim.Env) core.TM { return dstm.New(dstm.WithEnv(env)) },
			OF:   true,
		},
		{
			Name: "alg2",
			Raw:  func() core.TM { return alg2.New() },
			Sim:  func(env *sim.Env) core.TM { return alg2.New(alg2.WithEnv(env)) },
			OF:   true,
		},
		{
			Name: "nztm",
			Raw:  func() core.TM { return nztm.New() },
			Sim:  func(env *sim.Env) core.TM { return nztm.New(nztm.WithEnv(env)) },
			OF:   true,
		},
		{
			Name: "2pl",
			Raw:  func() core.TM { return locktm.NewTwoPhase() },
			Sim:  func(env *sim.Env) core.TM { return locktm.NewTwoPhase(locktm.WithEnv(env)) },
		},
		{
			Name: "tl2",
			Raw:  func() core.TM { return locktm.NewGlobalClock() },
			Sim:  func(env *sim.Env) core.TM { return locktm.NewGlobalClock(locktm.WithEnv(env)) },
		},
		{
			Name: "coarse",
			Raw:  func() core.TM { return locktm.NewCoarse() },
			Sim:  func(env *sim.Env) core.TM { return locktm.NewCoarse(locktm.WithEnv(env)) },
		},
	}
}

// EngineByName returns the registry entry or panics.
func EngineByName(name string) Engine {
	for _, e := range Engines() {
		if e.Name == name {
			return e
		}
	}
	panic("bench: unknown engine " + name)
}

// Workload is a raw-mode throughput workload: Setup allocates the
// shared structure, Op performs one application operation (internally a
// retrying transaction).
type Workload struct {
	Name  string
	Setup func(tm core.TM) func(threadID, i int, rng *rand.Rand) error
	// Background, if non-nil, is run on its own goroutine for the
	// duration of the measurement (started after Setup, stopped by
	// closing stop). It must return promptly once stop is closed. Used
	// by the contended workloads to keep a writer committing while the
	// measured threads run.
	Background func(tm core.TM, stop <-chan struct{})
}

// ReadMix builds a var-array read/write mix workload: readPct% of
// operations read a random variable transactionally; the rest
// read-modify-write it. vars controls contention (fewer vars = hotter).
func ReadMix(name string, vars, readPct int) Workload {
	return Workload{
		Name: name,
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, vars)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			return func(_, _ int, rng *rand.Rand) error {
				v := vs[rng.Intn(len(vs))]
				if rng.Intn(100) < readPct {
					_, err := core.ReadVar(tm, nil, v)
					return err
				}
				return core.Run(tm, nil, func(tx core.Tx) error {
					x, err := tx.Read(v)
					if err != nil {
						return err
					}
					return tx.Write(v, x+1)
				})
			}
		},
	}
}

// BankTransfer builds the bank workload: random transfers over n
// accounts.
func BankTransfer(accounts int) Workload {
	return Workload{
		Name: fmt.Sprintf("bank-%d", accounts),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, accounts)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("acct%d", i), 1000)
			}
			return func(_, _ int, rng *rand.Rand) error {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				return core.Run(tm, nil, func(tx core.Tx) error {
					a, err := tx.Read(vs[from])
					if err != nil {
						return err
					}
					b, err := tx.Read(vs[to])
					if err != nil {
						return err
					}
					if a == 0 {
						return nil
					}
					if err := tx.Write(vs[from], a-1); err != nil {
						return err
					}
					return tx.Write(vs[to], b+1)
				})
			}
		},
	}
}

// ReadHeavy builds the long-read-transaction workload: every operation
// is one transaction reading `reads` distinct variables. With per-read
// full read-set validation this is O(reads²) work per transaction;
// commit-epoch validation makes the quiescent path O(reads).
func ReadHeavy(reads int) Workload {
	return Workload{
		Name: fmt.Sprintf("readheavy-%d", reads),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, reads)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			return func(_, _ int, _ *rand.Rand) error {
				return core.Run(tm, nil, func(tx core.Tx) error {
					for _, v := range vs {
						if _, err := tx.Read(v); err != nil {
							return err
						}
					}
					return nil
				})
			}
		},
	}
}

// ContendedReadHeavy is ReadHeavy with sustained disjoint write
// traffic: a background goroutine commits small read-modify-write
// transactions to a variable none of the measured readers touch, in
// bursts with yields in between (so the writer advances the global
// clock throughout the run without monopolizing a core). Under
// per-variable versioned validation the readers' cost should stay close
// to the quiescent workload; under an all-or-nothing commit counter
// every burst invalidates every reader's cached validation.
func ContendedReadHeavy(reads int) Workload {
	// hot is created by Setup and read by Background, which makes each
	// Workload value single-use: Setup must run (once) before
	// Background starts, as RunThroughput and the JSON grid do.
	var hot core.Var
	return Workload{
		Name: fmt.Sprintf("readheavy-%d-contended", reads),
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, reads)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			hot = tm.NewVar("hot", 0)
			return func(_, _ int, _ *rand.Rand) error {
				return core.Run(tm, nil, func(tx core.Tx) error {
					for _, v := range vs {
						if _, err := tx.Read(v); err != nil {
							return err
						}
					}
					return nil
				})
			}
		},
		Background: func(tm core.TM, stop <-chan struct{}) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 64; i++ {
					_ = core.Run(tm, nil, func(tx core.Tx) error {
						x, err := tx.Read(hot)
						if err != nil {
							return err
						}
						return tx.Write(hot, x+1)
					})
				}
				runtime.Gosched()
			}
		},
	}
}

// SmallTx builds the small-transaction workload used to track the
// allocation footprint: 4 reads and 2 writes over 6 variables, fitting
// the engines' inline read/write-set representation.
func SmallTx() Workload {
	return Workload{
		Name: "smalltx",
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, 6)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("v%d", i), 0)
			}
			return func(_, _ int, _ *rand.Rand) error {
				return core.Run(tm, nil, func(tx core.Tx) error {
					var sum uint64
					for _, v := range vs[:4] {
						x, err := tx.Read(v)
						if err != nil {
							return err
						}
						sum += x
					}
					if err := tx.Write(vs[4], sum); err != nil {
						return err
					}
					return tx.Write(vs[5], sum+1)
				})
			}
		},
	}
}

// Disjoint builds the perfect disjoint-access workload: each thread
// owns a private variable and increments only it. Any slowdown with
// more threads is pure implementation-level interference — the "hot
// spot" cost the paper's strict-DAP discussion is about.
func Disjoint(maxThreads int) Workload {
	return Workload{
		Name: "disjoint",
		Setup: func(tm core.TM) func(int, int, *rand.Rand) error {
			vs := make([]core.Var, maxThreads)
			for i := range vs {
				vs[i] = tm.NewVar(fmt.Sprintf("private%d", i), 0)
			}
			return func(thread, _ int, _ *rand.Rand) error {
				v := vs[thread]
				return core.Run(tm, nil, func(tx core.Tx) error {
					x, err := tx.Read(v)
					if err != nil {
						return err
					}
					return tx.Write(v, x+1)
				})
			}
		},
	}
}

// SplitThreads partitions n iterations across exactly `threads`
// goroutines — each with a deterministic rng — and waits for all of
// them. Shared by the JSON perf grid and the go-test benchmarks so
// "threads=N" means the same thing everywhere (note that
// b.SetParallelism(N)+RunParallel would run N*GOMAXPROCS workers).
func SplitThreads(n, threads int, fn func(threadID int, rng *rand.Rand, iters int)) {
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		iters := n / threads
		if t < n%threads {
			iters++
		}
		if iters == 0 {
			continue
		}
		wg.Add(1)
		go func(t, iters int) {
			defer wg.Done()
			fn(t, rand.New(rand.NewSource(int64(t)*7919+1)), iters)
		}(t, iters)
	}
	wg.Wait()
}

// Result is one throughput measurement.
type Result struct {
	Engine   string
	Workload string
	Threads  int
	Ops      int
	Elapsed  time.Duration
	// Attempts counts transaction attempts; Attempts - CommittedOps is
	// the retry (abort) overhead.
	Attempts int64
}

// OpsPerSec returns throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunThroughput measures opsPerThread operations on threads goroutines
// against a fresh engine in raw mode.
func RunThroughput(mk func() core.TM, w Workload, threads, opsPerThread int) Result {
	tm := mk()
	var attempts int64
	op := w.Setup(&attemptCounter{TM: tm, n: &attempts})
	// Setup may run transactions of its own (the kv workloads pre-populate
	// the store); only the measured phase counts as attempts.
	attempts = 0
	var bgStop chan struct{}
	var bgWG sync.WaitGroup
	if w.Background != nil {
		bgStop = make(chan struct{})
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			w.Background(tm, bgStop)
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t)*7919 + 1))
			for i := 0; i < opsPerThread; i++ {
				if err := op(t, i, rng); err != nil {
					panic(fmt.Sprintf("bench: workload error: %v", err))
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if bgStop != nil {
		close(bgStop)
		bgWG.Wait()
	}
	return Result{
		Workload: w.Name,
		Threads:  threads,
		Ops:      threads * opsPerThread,
		Elapsed:  elapsed,
		Attempts: attempts,
	}
}

// attemptCounter wraps a TM counting Begin calls (= attempts including
// retries).
type attemptCounter struct {
	core.TM
	n *int64
}

func (c *attemptCounter) Begin(p *sim.Proc) core.Tx {
	atomic.AddInt64(c.n, 1)
	return c.TM.Begin(p)
}
