package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestKVWorkloadsRunOnEveryEngine(t *testing.T) {
	for _, e := range Engines() {
		if e.Name == "alg2" {
			continue
		}
		for _, w := range []Workload{KVUniform(2), KVZipfian(2), KVTxn(2, 4), KVSnapshot(2, 4)} {
			r := RunThroughput(e.Raw, w, 2, 20)
			if r.Ops != 40 {
				t.Fatalf("%s/%s: ops %d, want 40", e.Name, w.Name, r.Ops)
			}
			if r.Attempts < int64(r.Ops) {
				t.Fatalf("%s/%s: attempts %d < ops %d", e.Name, w.Name, r.Attempts, r.Ops)
			}
		}
	}
}

func TestKVSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := KVSmoke(&buf); err != nil {
		t.Fatalf("kv smoke: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"kv-uniform-s4", "kv-zipf-s4", "kv-txn4-s4", "kv-snap8-s4"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("kv smoke output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestCompareSkipsNewRecords pins the diff-gate contract that lets the
// grid grow: a record with no baseline entry is skipped with a notice,
// never counted as a regression — adding kv-* workloads must not break
// `make bench-diff` against a pre-kv baseline.
func TestCompareSkipsNewRecords(t *testing.T) {
	base := Report{Records: []Record{
		{Engine: "dstm", Workload: "bank-8", Threads: 8, NsPerOp: 1000},
	}}
	cur := Report{Records: []Record{
		{Engine: "dstm", Workload: "bank-8", Threads: 8, NsPerOp: 1100},        // +10%: inside tolerance
		{Engine: "dstm", Workload: "kv-uniform-s8", Threads: 8, NsPerOp: 9999}, // new workload
		{Engine: "nztm", Workload: "kv-uniform-s8", Threads: 8, NsPerOp: 9999}, // new workload
	}}
	var buf bytes.Buffer
	if n := Compare(&buf, base, cur, 25); n != 0 {
		t.Fatalf("Compare returned %d regressions, want 0:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "new — skipped") {
		t.Fatalf("missing per-record skip notice:\n%s", out)
	}
	if !strings.Contains(out, "2 record(s) have no baseline entry") {
		t.Fatalf("missing skip summary:\n%s", out)
	}

	// A genuine regression still trips the gate.
	cur.Records[0].NsPerOp = 2000
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 1 {
		t.Fatalf("Compare returned %d regressions, want 1:\n%s", n, buf.String())
	}
}

// TestCompareAllocGate pins the allocation side of the diff gate: a
// zero-alloc baseline admits no allocations at all (the lock on the
// PR 4 request path), a nonzero baseline gets the tolPct allowance,
// and improvements never regress.
func TestCompareAllocGate(t *testing.T) {
	base := Report{Records: []Record{
		{Engine: "nztm", Workload: "server-mixed-c8", Threads: 8, NsPerOp: 1000, AllocsPerOp: 0},
		{Engine: "nztm", Workload: "smalltx", Threads: 1, NsPerOp: 1000, AllocsPerOp: 8},
	}}
	cur := Report{Records: []Record{
		{Engine: "nztm", Workload: "server-mixed-c8", Threads: 8, NsPerOp: 1000, AllocsPerOp: 0},
		{Engine: "nztm", Workload: "smalltx", Threads: 1, NsPerOp: 1000, AllocsPerOp: 10},
	}}
	var buf bytes.Buffer
	// 10 allocs on an 8-alloc baseline is within 25% (allowance 10).
	if n := Compare(&buf, base, cur, 25); n != 0 {
		t.Fatalf("within-allowance allocs flagged (%d):\n%s", n, buf.String())
	}
	// 0 -> 1 alloc/op must regress, whatever the tolerance: the
	// zero-alloc property is the point of the gate.
	cur.Records[0].AllocsPerOp = 1
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 1 {
		t.Fatalf("0->1 allocs/op not flagged (%d):\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION (allocs/op)") {
		t.Fatalf("missing alloc regression marker:\n%s", buf.String())
	}
	// Beyond the allowance on the nonzero baseline too (8 -> 11 > 10).
	cur.Records[1].AllocsPerOp = 11
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 2 {
		t.Fatalf("8->11 allocs/op not flagged (%d):\n%s", n, buf.String())
	}
	// Improvements (fewer allocs, faster) are never regressions.
	cur.Records[0].AllocsPerOp = 0
	cur.Records[1].AllocsPerOp = 1
	cur.Records[1].NsPerOp = 500
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 0 {
		t.Fatalf("improvement flagged as regression (%d):\n%s", n, buf.String())
	}
}

// TestCompareAllocSlackAndSkip pins the PR 9 gate refinements: a small
// nonzero baseline gets a one-allocation absolute floor (2 -> 3 is a
// rounding-boundary draw, not a regression; 2 -> 4 still trips), and
// 2pl's contended rows — whose lock-wait allocs swing ~2x run to run
// on identical code — skip the alloc gate with a notice while their
// ns/op still gates.
func TestCompareAllocSlackAndSkip(t *testing.T) {
	base := Report{Records: []Record{
		{Engine: "coarse", Workload: "bank-8", Threads: 8, NsPerOp: 1000, AllocsPerOp: 2},
		{Engine: "2pl", Workload: "readheavy-256-contended", Threads: 4, NsPerOp: 1000, AllocsPerOp: 30},
	}}
	cur := Report{Records: []Record{
		{Engine: "coarse", Workload: "bank-8", Threads: 8, NsPerOp: 1000, AllocsPerOp: 3},
		{Engine: "2pl", Workload: "readheavy-256-contended", Threads: 4, NsPerOp: 1000, AllocsPerOp: 55},
	}}
	var buf bytes.Buffer
	if n := Compare(&buf, base, cur, 25); n != 0 {
		t.Fatalf("boundary draw / skipped row flagged (%d):\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "alloc gate skipped") {
		t.Fatalf("missing 2pl skip notice:\n%s", buf.String())
	}
	// Two extra allocations on the small baseline is a real regression.
	cur.Records[0].AllocsPerOp = 4
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 1 {
		t.Fatalf("2->4 allocs/op not flagged (%d):\n%s", n, buf.String())
	}
	// The skipped row's ns/op still gates normally.
	cur.Records[0].AllocsPerOp = 2
	cur.Records[1].NsPerOp = 2000
	buf.Reset()
	if n := Compare(&buf, base, cur, 25); n != 1 {
		t.Fatalf("2pl ns/op regression not flagged (%d):\n%s", n, buf.String())
	}
}
