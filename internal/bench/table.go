// Package bench is the experiment harness: engine registry, workload
// generators, throughput runners and the E1–E11 experiment suite
// mapped in DESIGN.md — the paper experiments (E1–E8), the serving
// stack (E9), the wire path (E10) and the durability layer (E11) —
// plus the JSON perf-tracking grid and its regression gate.
// cmd/oftm-bench regenerates every experiment table from here; the
// root bench_test.go exposes the performance experiments as testing.B
// benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Table is a minimal aligned-column table printer for experiment
// output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.Header {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
