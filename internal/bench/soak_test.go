package bench

import "testing"

// TestRunSlowReaderSoakSmoke runs a tiny soak on both runtimes: the
// harness must complete every healthy window with the stalled
// connection present, and on the worker runtime the stall must be held
// by backpressure (pauses observed, zero kills).
func TestRunSlowReaderSoakSmoke(t *testing.T) {
	for _, rt := range []string{"goroutine", "worker"} {
		r, err := RunSlowReaderSoak(rt, 8, 8, 4)
		if err != nil {
			t.Fatalf("%s: %v", rt, err)
		}
		if want := int64(7 * 4 * 8); r.Reqs != want {
			t.Fatalf("%s: reqs = %d, want %d", rt, r.Reqs, want)
		}
		if r.Kills != 0 {
			t.Fatalf("%s: flush kills = %d, want 0 (backpressure, not the kill, must hold the stall)", rt, r.Kills)
		}
		if rt == "worker" && r.Pauses == 0 {
			t.Fatalf("worker: burst never tripped a backpressure pause")
		}
	}
}
