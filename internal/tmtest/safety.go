package tmtest

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// CampaignConfig tunes SafetyCampaign.
type CampaignConfig struct {
	Seeds   int // number of random schedules (default 20)
	Procs   int // concurrent processes (default 3)
	TxsPer  int // transactions per process (default 2)
	OpsPer  int // operations per transaction (default 3)
	Vars    int // t-variables (default 3)
	MaxTry  int // core.Run attempt bound (default 30)
	SkipOF  bool
	InitVal uint64
}

func (c *CampaignConfig) defaults() {
	if c.Seeds == 0 {
		c.Seeds = 20
	}
	if c.Procs == 0 {
		c.Procs = 3
	}
	if c.TxsPer == 0 {
		c.TxsPer = 2
	}
	if c.OpsPer == 0 {
		c.OpsPer = 3
	}
	if c.Vars == 0 {
		c.Vars = 3
	}
	if c.MaxTry == 0 {
		c.MaxTry = 30
	}
}

// SafetyCampaign drives the engine under many random schedules in the
// simulator and checks, on every recorded history:
//
//   - well-formedness (§2.1),
//   - opacity (and hence serializability, Definition 1),
//   - obstruction-freedom (Definition 2) when the engine claims it.
//
// This is the workhorse behind experiments E3 and the engine test
// suites: the checkers run on real low-level histories of the real
// implementations.
func SafetyCampaign(t *testing.T, factory Factory, cfg CampaignConfig) {
	t.Helper()
	cfg.defaults()
	for seed := 0; seed < cfg.Seeds; seed++ {
		seed := seed
		env := sim.New()
		tm := core.Recorded(factory(env), env.Recorder())
		vars := make([]core.Var, cfg.Vars)
		init := map[model.VarID]uint64{}
		for i := range vars {
			vars[i] = tm.NewVar("x", cfg.InitVal)
			init[vars[i].ID()] = cfg.InitVal
		}
		for pi := 0; pi < cfg.Procs; pi++ {
			pi := pi
			env.Spawn(func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(seed)*1000 + int64(pi)))
				for k := 0; k < cfg.TxsPer; k++ {
					_ = core.Run(tm, p, func(tx core.Tx) error {
						for j := 0; j < cfg.OpsPer; j++ {
							v := vars[rng.Intn(len(vars))]
							if rng.Intn(2) == 0 {
								if _, err := tx.Read(v); err != nil {
									return err
								}
							} else {
								if err := tx.Write(v, uint64(rng.Intn(50)+1)); err != nil {
									return err
								}
							}
						}
						return nil
					}, core.MaxAttempts(cfg.MaxTry))
				}
			})
		}
		h := env.Run(sim.Random(int64(seed)))
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: ill-formed history: %v", seed, err)
		}
		txs := model.Transactions(h)
		if len(txs) <= checker.ExactLimit {
			if res := checker.CheckOpacity(txs, init); !res.OK {
				t.Fatalf("seed %d: opacity violated: %s\n%s", seed, res.Reason, h.String())
			}
		} else if res := checker.CheckOpacityGraph(txs, init); !res.OK {
			// The graph checker (sound, commit-order version order) scales
			// to large histories; fall back to the serializability
			// witness before declaring failure, since the graph checker
			// is incomplete for unusual version orders. Invisible-read
			// engines legitimately produce histories whose serialization
			// order differs from commit order (a reader's serialization
			// point is its last successful validation, which may precede
			// a writer's commit CAS that lands just before the reader's
			// own), so when both order-pinned checkers reject, run the
			// exact search over the committed transactions before
			// declaring failure.
			if res2 := checker.CheckSerializableWitness(txs, init); !res2.OK {
				committed := 0
				for _, tx := range txs {
					if tx.Status == model.Committed || tx.CommitPending {
						committed++
					}
				}
				if committed > checker.ExactLimit {
					t.Fatalf("seed %d: safety violated: %s / %s", seed, res.Reason, res2.Reason)
				}
				if res3 := checker.CheckSerializable(txs, init); !res3.OK {
					t.Fatalf("seed %d: safety violated: %s / %s / %s", seed, res.Reason, res2.Reason, res3.Reason)
				}
			}
		}
		if !cfg.SkipOF && tm.ObstructionFree() {
			if v := checker.CheckObstructionFree(h); len(v) != 0 {
				t.Fatalf("seed %d: obstruction-freedom violated: %v\n%s", seed, v, h.String())
			}
		}
	}
}
