// Package tmtest is a conformance kit exercised against every STM
// engine in the repository: sequential semantics, abort/commit state
// machine, isolation under real concurrency (raw mode), and — once an
// engine runs under the simulator — recorded-history well-formedness.
// Engine test files call Conformance with a factory; experiment-level
// safety checks (serializability, opacity, obstruction-freedom) live in
// package checker and are applied by the engines' own tests and by
// cmd/oftm-check.
package tmtest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Factory builds a fresh engine instance. env is nil for raw mode.
type Factory func(env *sim.Env) core.TM

// Conformance runs the full engine-generic suite.
func Conformance(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("SequentialSemantics", func(t *testing.T) { sequentialSemantics(t, factory) })
	t.Run("ReadYourWrites", func(t *testing.T) { readYourWrites(t, factory) })
	t.Run("AbortDiscardsWrites", func(t *testing.T) { abortDiscardsWrites(t, factory) })
	t.Run("OpsAfterCompletion", func(t *testing.T) { opsAfterCompletion(t, factory) })
	t.Run("StatusMachine", func(t *testing.T) { statusMachine(t, factory) })
	t.Run("TxIDsUnique", func(t *testing.T) { txIDsUnique(t, factory) })
	t.Run("ConcurrentCounter", func(t *testing.T) { concurrentCounter(t, factory) })
	t.Run("BankInvariant", func(t *testing.T) { bankInvariant(t, factory) })
	t.Run("SimWellFormedHistory", func(t *testing.T) { simWellFormed(t, factory) })
}

func sequentialSemantics(t *testing.T, factory Factory) {
	tm := factory(nil)
	x := tm.NewVar("x", 10)
	y := tm.NewVar("y", 20)

	if err := core.Run(tm, nil, func(tx core.Tx) error {
		vx, err := tx.Read(x)
		if err != nil {
			return err
		}
		if vx != 10 {
			return fmt.Errorf("x = %d, want 10", vx)
		}
		if err := tx.Write(y, vx+5); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatalf("transaction failed: %v", err)
	}

	got, err := core.ReadVar(tm, nil, y)
	if err != nil || got != 15 {
		t.Fatalf("y = %d (%v), want 15", got, err)
	}
	got, err = core.ReadVar(tm, nil, x)
	if err != nil || got != 10 {
		t.Fatalf("x = %d (%v), want 10", got, err)
	}
}

func readYourWrites(t *testing.T, factory Factory) {
	tm := factory(nil)
	x := tm.NewVar("x", 1)
	err := core.Run(tm, nil, func(tx core.Tx) error {
		if err := tx.Write(x, 2); err != nil {
			return err
		}
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		if v != 2 {
			return fmt.Errorf("read-own-write: got %d, want 2", v)
		}
		if err := tx.Write(x, 3); err != nil {
			return err
		}
		v, err = tx.Read(x)
		if err != nil {
			return err
		}
		if v != 3 {
			return fmt.Errorf("second read-own-write: got %d, want 3", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 3 {
		t.Fatalf("committed x = %d, want 3", v)
	}
}

func abortDiscardsWrites(t *testing.T, factory Factory) {
	tm := factory(nil)
	x := tm.NewVar("x", 7)
	tx := tm.Begin(nil)
	if err := tx.Write(x, 99); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	if v, _ := core.ReadVar(tm, nil, x); v != 7 {
		t.Fatalf("aborted write leaked: x = %d, want 7", v)
	}
}

func opsAfterCompletion(t *testing.T, factory Factory) {
	tm := factory(nil)
	x := tm.NewVar("x", 0)

	tx := tm.Begin(nil)
	tx.Abort()
	if _, err := tx.Read(x); !errors.Is(err, core.ErrAborted) {
		t.Errorf("read after abort: %v, want ErrAborted", err)
	}
	if err := tx.Write(x, 1); !errors.Is(err, core.ErrAborted) {
		t.Errorf("write after abort: %v, want ErrAborted", err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Errorf("commit after abort: %v, want ErrAborted", err)
	}
}

func statusMachine(t *testing.T, factory Factory) {
	tm := factory(nil)
	x := tm.NewVar("x", 0)

	tx := tm.Begin(nil)
	if tx.Status() != model.Live {
		t.Fatalf("fresh tx status %v, want live", tx.Status())
	}
	if err := tx.Write(x, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if tx.Status() != model.Committed {
		t.Fatalf("status after commit %v", tx.Status())
	}

	tx2 := tm.Begin(nil)
	tx2.Abort()
	if tx2.Status() != model.Aborted {
		t.Fatalf("status after abort %v", tx2.Status())
	}
	// Abort is idempotent.
	tx2.Abort()
	if tx2.Status() != model.Aborted {
		t.Fatalf("second abort changed status to %v", tx2.Status())
	}
}

func txIDsUnique(t *testing.T, factory Factory) {
	tm := factory(nil)
	seen := map[model.TxID]bool{}
	for i := 0; i < 10; i++ {
		tx := tm.Begin(nil)
		if seen[tx.ID()] {
			t.Fatalf("duplicate transaction id %v", tx.ID())
		}
		seen[tx.ID()] = true
		tx.Abort()
	}
}

func concurrentCounter(t *testing.T, factory Factory) {
	tm := factory(nil)
	ctr := tm.NewVar("ctr", 0)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				errs[w] = core.Run(tm, nil, func(tx core.Tx) error {
					v, err := tx.Read(ctr)
					if err != nil {
						return err
					}
					return tx.Write(ctr, v+1)
				})
				if errs[w] != nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got, err := core.ReadVar(tm, nil, ctr)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*perWorker)
	}
}

func bankInvariant(t *testing.T, factory Factory) {
	tm := factory(nil)
	const accounts = 16
	const initial = 100
	vars := make([]core.Var, accounts)
	for i := range vars {
		vars[i] = tm.NewVar(fmt.Sprintf("acct%d", i), initial)
	}
	const workers, transfers = 6, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (w*7 + i*3) % accounts
				to := (from + 1 + i%5) % accounts
				if from == to {
					continue
				}
				_ = core.Run(tm, nil, func(tx core.Tx) error {
					a, err := tx.Read(vars[from])
					if err != nil {
						return err
					}
					b, err := tx.Read(vars[to])
					if err != nil {
						return err
					}
					if a == 0 {
						return nil
					}
					if err := tx.Write(vars[from], a-1); err != nil {
						return err
					}
					return tx.Write(vars[to], b+1)
				})
			}
		}(w)
	}
	wg.Wait()
	// The total must be conserved: read it in one transaction.
	var total uint64
	err := core.Run(tm, nil, func(tx core.Tx) error {
		total = 0
		for _, v := range vars {
			x, err := tx.Read(v)
			if err != nil {
				return err
			}
			total += x
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (atomicity violated)", total, accounts*initial)
	}
}

func simWellFormed(t *testing.T, factory Factory) {
	env := sim.New()
	tm := factory(env)
	rtm := core.Recorded(tm, env.Recorder())
	x := rtm.NewVar("x", 0)
	y := rtm.NewVar("y", 0)
	for i := 0; i < 2; i++ {
		env.Spawn(func(p *sim.Proc) {
			for k := 0; k < 3; k++ {
				_ = core.Run(rtm, p, func(tx core.Tx) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					if err := tx.Write(y, v+1); err != nil {
						return err
					}
					return tx.Write(x, v+1)
				}, core.MaxAttempts(50))
			}
		})
	}
	h := env.Run(sim.Random(42))
	if err := h.WellFormed(); err != nil {
		t.Fatalf("recorded history ill-formed: %v\n%s", err, h.String())
	}
	if len(h.Ops) == 0 || len(h.Steps) == 0 {
		t.Fatalf("history empty: %d ops, %d steps", len(h.Ops), len(h.Steps))
	}
}
