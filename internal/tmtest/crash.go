package tmtest

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// CrashCampaign drives the engine with a process crashing (stopping
// forever) at a random point mid-run — the failure model of §2.1, where
// n-1 of n processes may crash. For every seed it checks:
//
//   - the surviving processes complete all their transactions when the
//     engine is obstruction-free (the crashed process cannot inhibit
//     them — the defining OFTM guarantee);
//   - the recorded history remains well-formed and opaque;
//   - obstruction-freedom (Definition 2) and ic-obstruction-freedom
//     (Definition 3, using the recorded crash times) both hold, which
//     is Theorem 5 observed empirically.
//
// For non-obstruction-free engines only the safety half is checked:
// survivors are allowed to starve, not to corrupt.
func CrashCampaign(t *testing.T, factory Factory, seeds int) {
	t.Helper()
	if seeds == 0 {
		seeds = 20
	}
	for seed := 0; seed < seeds; seed++ {
		env := sim.New()
		tm := core.Recorded(factory(env), env.Recorder())
		of := tm.ObstructionFree()
		vars := make([]core.Var, 3)
		init := map[model.VarID]uint64{}
		for i := range vars {
			vars[i] = tm.NewVar(fmt.Sprintf("x%d", i), 0)
			init[vars[i].ID()] = 0
		}
		const procs = 3
		errs := make([]error, procs)
		for pi := 0; pi < procs; pi++ {
			pi := pi
			env.Spawn(func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(int64(seed)*313 + int64(pi)))
				for k := 0; k < 2; k++ {
					err := core.Run(tm, p, func(tx core.Tx) error {
						for j := 0; j < 3; j++ {
							v := vars[rng.Intn(len(vars))]
							if rng.Intn(2) == 0 {
								if _, err := tx.Read(v); err != nil {
									return err
								}
							} else if err := tx.Write(v, uint64(rng.Intn(30)+1)); err != nil {
								return err
							}
						}
						return nil
					}, core.MaxAttempts(100))
					if err != nil {
						errs[pi] = err
						return
					}
				}
			})
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		victim := model.ProcID(rng.Intn(procs) + 1)
		crashPoint := rng.Intn(12)
		h := env.Run(sim.CrashAfter(victim, crashPoint, sim.Random(int64(seed))))

		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d: ill-formed: %v", seed, err)
		}
		if of {
			for pi := 0; pi < procs; pi++ {
				if model.ProcID(pi+1) == victim {
					continue
				}
				if errs[pi] != nil && errors.Is(errs[pi], core.ErrAborted) {
					t.Fatalf("seed %d: survivor p%d starved behind crashed p%d on an OFTM (crash@%d)",
						seed, pi+1, victim, crashPoint)
				}
			}
		}
		txs := model.Transactions(h)
		if len(txs) <= checker.ExactLimit {
			if res := checker.CheckOpacity(txs, init); !res.OK {
				t.Fatalf("seed %d: opacity violated under crash: %s", seed, res.Reason)
			}
		} else if res := checker.CheckSerializableWitness(txs, init); !res.OK {
			if res2 := checker.CheckSerializable(txs, init); len(txs) <= checker.ExactLimit && !res2.OK {
				t.Fatalf("seed %d: serializability violated under crash: %s", seed, res2.Reason)
			}
		}
		if of {
			if v := checker.CheckObstructionFree(h); len(v) != 0 {
				t.Fatalf("seed %d: obstruction-freedom violated: %v", seed, v)
			}
			if v := checker.CheckICObstructionFree(h, env.CrashTimes()); len(v) != 0 {
				t.Fatalf("seed %d: ic-obstruction-freedom violated: %v", seed, v)
			}
		}
	}
}
