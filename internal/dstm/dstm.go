// Package dstm implements the DSTM-style obstruction-free STM the paper
// uses as its reference OFTM (§1, "A typical OFTM"):
//
//   - To update a t-variable, a transaction acquires exclusive but
//     revocable ownership with a CAS, installing a locator that points
//     to its transaction descriptor together with the old and new
//     values.
//   - A reader never writes shared memory for the variables it only
//     reads (invisible reads); it re-validates its read set on every
//     subsequent read and at commit, which gives opacity.
//   - Any transaction can forcefully abort a live owner by CASing the
//     owner's status from live to aborted — ownership is revocable
//     "without any interaction with Ti", which is what makes the design
//     obstruction-free. A contention manager may delay (bounded) but
//     never prevent that revocation.
//   - Commit is a single CAS of the descriptor's status from live to
//     committed.
//
// The transaction descriptor is the shared "hot spot" of Theorem 13:
// two transactions with disjoint t-variable footprints both chase a
// suspended third transaction's descriptor and conflict there. The
// Figure 2 experiment drives this engine to that exact execution.
//
// On top of the paper's design the engine layers per-variable versioned
// validation (PR 2): every committed value carries a version minted
// from a global clock (base.VClock), each transaction holds a snapshot
// timestamp, and a reader accepts any value whose version does not
// exceed its snapshot in O(1) — rescanning (lazy snapshot extension)
// only when it actually encounters a newer value. See maybeValidate for
// the safety argument and the mode constants for the two ablation
// behaviors that are kept machine-comparable.
package dstm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Transaction status values stored in the descriptor's status word.
const (
	statusLive      uint64 = 0
	statusCommitted uint64 = 1
	statusAborted   uint64 = 2
)

// valMode selects the read-set validation strategy.
type valMode int

const (
	// valVersioned (default): per-variable write versions + snapshot
	// extension. Quiescent reads are O(1); reads under *disjoint* write
	// traffic are O(1) amortized, because only a value newer than the
	// snapshot forces a rescan.
	valVersioned valMode = iota
	// valGlobalEpoch: the PR 1 commit counter — one shared epoch word,
	// any commit anywhere invalidates every reader's cached validation.
	// Kept as the ablation control for the contended-read experiments.
	valGlobalEpoch
	// valFullScan: the paper's reference behavior — full
	// locator-identity scan on every read, O(R²) per R-read
	// transaction.
	valFullScan
)

// locator is the indirection record installed in a t-variable's cell by
// a writer: which transaction owns the variable and the variable's value
// before (oldVal) and after (newVal) that transaction.
type locator struct {
	owner  *txDesc
	oldVal uint64
	// oldVer is the version of oldVal, recorded at acquisition from the
	// resolution the writer acquired on top of. If the owner aborts,
	// (oldVal, oldVer) is the variable's current value again.
	oldVer uint64
	// newVal is written only by the owner while live and read by others
	// only after observing the owner committed (the commit CAS orders
	// the accesses), so a plain field is race-free. Its version is the
	// owner's commitVer.
	newVal uint64
}

// locSlab is the number of locators embedded in a descriptor. The
// common small transactions (bank transfers, set updates) install at
// most two locators, so carving them from the descriptor allocation
// removes one heap allocation per write; larger write sets spill to
// individually allocated locators.
const locSlab = 2

// txDesc is a transaction descriptor: the single word whose CAS commits
// or aborts the transaction. The status word is embedded by value, so a
// raw-mode descriptor is a single allocation.
//
// Layout: the fields other transactions chase (status, identity,
// commitVer) lead the struct — read-mostly once the descriptor is
// published — while the owner-written fields (ops, locator slab) trail
// it, so the line readers poll sees little owner traffic: ops is
// published in batches (noteOp) and the slab is written at most once
// per acquired variable. A full 64-byte pad was measured and rejected
// here: descriptors are allocated once per writing transaction, and the
// extra pad bytes cost more in allocation+GC on the begin path (~10% of
// a small transaction) than the sub-transaction-lifetime false sharing
// they prevent. The long-lived engine-wide hot word (the clock) keeps
// its true cache-line pads.
type txDesc struct {
	status base.U64
	id     model.TxID
	start  int64
	// commitVer is the global-clock version stamped immediately before
	// the commit CAS (tick-then-stamp-then-CAS). Plain field: written
	// only by the owner while live, read by others only after observing
	// the status word committed, which the commit CAS orders.
	commitVer uint64
	ops       atomic.Int64
	locN      int
	locBuf    [locSlab]locator
}

func (d *txDesc) info() cm.TxInfo {
	return cm.TxInfo{ID: d.id, Start: d.start, Ops: d.ops.Load()}
}

// tvar is a t-variable: one CAS cell holding the current locator,
// embedded by value so a variable is a single allocation.
type tvar struct {
	owner *DSTM
	id    model.VarID
	name  string
	cell  base.Cell[locator]
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// Option configures a DSTM instance.
type Option func(*DSTM)

// WithEnv runs the engine's base objects under the simulation
// environment (sim mode).
func WithEnv(env *sim.Env) Option {
	return func(d *DSTM) { d.env = env }
}

// WithManager selects the contention manager (default Polite).
func WithManager(m cm.Manager) Option {
	return func(d *DSTM) { d.mgr = m }
}

// ValidateAtCommitOnly disables per-read read-set validation, keeping
// only commit-time validation. This is the ablation knob for experiment
// E8: it trades opacity (live transactions may observe inconsistent
// states) for fewer validation steps. Serializability of committed
// transactions is preserved.
func ValidateAtCommitOnly() Option {
	return func(d *DSTM) { d.validateOnRead = false }
}

// WithoutEpochValidation disables versioned validation entirely,
// forcing a full locator-identity scan on every read — the paper's
// reference behavior, O(R²) steps for an R-read transaction. The
// ablation knob for experiment E8f.
func WithoutEpochValidation() Option {
	return func(d *DSTM) { d.mode = valFullScan }
}

// GlobalEpochOnly selects the PR 1 all-or-nothing commit counter
// instead of per-variable versions: any writer's commit (or forceful
// abort) bumps one shared epoch word and forces every reader into a
// full rescan on its next access. The ablation control for the
// contended-read experiments (E8g) — it shows why versioned validation
// exists.
func GlobalEpochOnly() Option {
	return func(d *DSTM) { d.mode = valGlobalEpoch }
}

// DSTM is the engine. It implements core.TM.
type DSTM struct {
	env            *sim.Env
	mgr            cm.Manager
	validateOnRead bool
	mode           valMode

	// clock is the global version clock (padded to its own cache line):
	// ticked immediately before every writing commit CAS, sampled by
	// readers for their snapshot timestamps. In valGlobalEpoch mode it
	// doubles as the PR 1 commit epoch. The one deliberate engine-wide
	// strict-DAP violation (§1's "common memory location").
	clock base.VClock

	// extensions counts lazy snapshot extensions, for TMStats.
	extensions atomic.Int64

	// txPool recycles completed raw-mode transactions (and the
	// descriptors of transactions that never published one — see
	// dsTx.Recycle for the reclamation argument).
	txPool sync.Pool

	mu      sync.Mutex
	vars    []*tvar
	nextTx  map[model.ProcID]int
	tickets atomic.Int64

	// initDesc is the descriptor all initial locators point to; it is
	// permanently committed (the paper's assumed initializing
	// transaction T0) with commitVer 0.
	initDesc *txDesc

	// Aborts counts forceful aborts inflicted via contention-manager
	// decisions, for the benchmark reports.
	Aborts atomic.Int64
}

// New returns a DSTM instance.
func New(opts ...Option) *DSTM {
	d := &DSTM{
		mgr:            cm.Polite{},
		validateOnRead: true,
		mode:           valVersioned,
		nextTx:         map[model.ProcID]int{},
	}
	for _, o := range opts {
		o(d)
	}
	d.clock.Init(d.env, "dstm.clock")
	d.initDesc = &txDesc{id: model.TxID{Proc: 0, Seq: 0}}
	d.initDesc.status.Init(d.env, "T0.status", statusCommitted)
	return d
}

// Name implements core.TM.
func (d *DSTM) Name() string { return "dstm" }

// ObstructionFree implements core.TM.
func (d *DSTM) ObstructionFree() bool { return true }

// Manager returns the configured contention manager.
func (d *DSTM) Manager() cm.Manager { return d.mgr }

// Stats implements core.StatsSource.
func (d *DSTM) Stats() core.TMStats {
	return core.TMStats{
		Epoch:              d.clock.Load(nil),
		ForcedAborts:       d.Aborts.Load(),
		SnapshotExtensions: d.extensions.Load(),
	}
}

// NewVar implements core.TM.
func (d *DSTM) NewVar(name string, init uint64) core.Var {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := &tvar{
		owner: d,
		id:    model.VarID(len(d.vars)),
		name:  name,
	}
	v.cell.Init(d.env, name+".loc", &locator{owner: d.initDesc, oldVal: init, newVal: init})
	d.vars = append(d.vars, v)
	return v
}

// ticketBlock is how many begin tickets a pooled raw-mode transaction
// reserves from the shared counter at once: the shared atomic is hit
// once per ticketBlock transactions instead of once per Begin. Tickets
// stay unique (blocks are disjoint ranges); the Timestamp manager's age
// order becomes block-granular, which is all a priority heuristic
// needs.
const ticketBlock = 16

// Begin implements core.TM.
func (d *DSTM) Begin(p *sim.Proc) core.Tx {
	if p == nil {
		// Raw mode: all goroutines share process id 0; the begin ticket
		// disambiguates transaction ids without taking the engine lock.
		// Completed transactions come back through the pool (Recycle).
		t, _ := d.txPool.Get().(*dsTx)
		if t == nil {
			t = &dsTx{tm: d}
		}
		if t.desc == nil {
			t.desc = new(txDesc)
		}
		if t.ticketNext >= t.ticketEnd {
			t.ticketEnd = d.tickets.Add(ticketBlock)
			t.ticketNext = t.ticketEnd - ticketBlock
		}
		t.ticketNext++
		t.reset(nil, model.TxID{Proc: 0, Seq: int(t.ticketNext)}, t.ticketNext)
		return t
	}
	ticket := d.tickets.Add(1)
	d.mu.Lock()
	pid := p.ID()
	d.nextTx[pid]++
	id := model.TxID{Proc: pid, Seq: d.nextTx[pid]}
	d.mu.Unlock()
	p.SetTx(id)
	t := &dsTx{tm: d, desc: new(txDesc)}
	t.reset(p, id, ticket)
	if d.env != nil {
		t.desc.status.Init(d.env, id.String()+".status", statusLive)
	}
	return t
}

// readEntry records a read: the locator the value was resolved from
// (identity validation — terminal-status owners make an unchanged
// locator imply an unchanged logical value) and the value's version for
// the O(1) snapshot check.
type readEntry struct {
	loc *locator
	val uint64
	ver uint64
}

type dsTx struct {
	tm   *DSTM
	p    *sim.Proc
	desc *txDesc
	rset core.SmallMap[*tvar, readEntry]
	wset core.SmallMap[*tvar, *locator]
	// snap is the snapshot timestamp (valVersioned): every recorded
	// read was the variable's current value at clock time snap. Sampled
	// before the first read resolves; advanced only by extend.
	snap    uint64
	snapSet bool
	// valEpoch is the engine epoch sampled immediately before the last
	// full validation that passed (valGlobalEpoch mode only).
	valEpoch uint64
	valSet   bool
	// completedLocally caches the outcome once the transaction observed
	// its own completion, to short-circuit further operations.
	completedLocally model.Status
	// opsLocal is the private op counter behind noteOp.
	opsLocal int64
	// ticketNext/ticketEnd are the pooled transaction's reserved begin
	// tickets (raw mode; see ticketBlock).
	ticketNext, ticketEnd int64
}

// reset (re)initializes a transaction for a new attempt.
func (t *dsTx) reset(p *sim.Proc, id model.TxID, ticket int64) {
	d := t.desc
	d.id = id
	d.start = ticket
	if d.ops.Load() != 0 {
		d.ops.Store(0) // published in batches; usually still zero
	}
	d.commitVer = 0
	d.locN = 0
	if d.status.Read(nil) != statusLive {
		// Freshly allocated descriptors are already live (zero value);
		// only recycled ones pay the store.
		d.status.Init(nil, "", statusLive)
	}
	t.p = p
	t.rset.Reset()
	t.wset.Reset()
	t.snap, t.snapSet = 0, false
	t.valEpoch, t.valSet = 0, false
	t.completedLocally = model.Live
	t.opsLocal = 0
}

// noteOp counts a high-level operation. The descriptor's shared ops
// word (read by contention managers ranking victims, e.g. Karma) is
// published every few operations — and refreshed exactly before this
// transaction raises a conflict — rather than on every op, so an
// uncontended transaction pays a private increment instead of an atomic
// RMW per operation. A victim's published count may lag by at most the
// batch, which is immaterial to a priority heuristic.
func (t *dsTx) noteOp() {
	t.opsLocal++
	if t.opsLocal&7 == 0 {
		t.desc.ops.Store(t.opsLocal)
	}
}

// Recycle implements core.TxRecycler: completed raw-mode transactions
// are pooled. A descriptor that published locators has escaped into
// t-variable cells — invisible readers may still compare those locator
// pointers and chase the descriptor's status long after completion — so
// it is dropped and left to the garbage collector, which is this
// engine's safe memory reclamation: recycling a published locator or
// descriptor would reintroduce exactly the pointer-ABA that
// locator-identity validation relies on being impossible. Transactions
// that never installed a locator (read-only, or aborted before any
// acquisition succeeded) never published their descriptor, so it is
// reused wholesale.
func (t *dsTx) Recycle() {
	if t.p != nil || t.completedLocally == model.Live {
		return
	}
	if t.wset.Len() != 0 {
		t.desc = nil
	}
	t.rset.Reset()
	t.wset.Reset()
	t.tm.txPool.Put(t)
}

func (t *dsTx) ID() model.TxID { return t.desc.id }

func (t *dsTx) Status() model.Status {
	switch t.desc.status.Read(nil) {
	case statusCommitted:
		return model.Committed
	case statusAborted:
		return model.Aborted
	}
	return model.Live
}

func mustVar(d *DSTM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.owner != d {
		panic(fmt.Sprintf("dstm: variable %v belongs to a different TM", v))
	}
	return tv
}

// abortSelf moves the transaction to aborted (if still live) and
// returns ErrAborted.
func (t *dsTx) abortSelf() error {
	t.desc.status.CAS(t.p, statusLive, statusAborted)
	t.completedLocally = model.Aborted
	t.p.SetTx(model.NoTx)
	return core.ErrAborted
}

// backoff delays a Retry decision in raw mode; in sim mode the
// scheduler controls interleaving and the retry loop's own steps are
// the backoff. Early retries yield the processor (the owner needs CPU,
// not our latency); stubborn conflicts escalate to bounded sleeps.
func (t *dsTx) backoff(attempt int) {
	if t.p != nil {
		return
	}
	if attempt <= 6 {
		runtime.Gosched()
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	time.Sleep(time.Duration(1<<attempt) * time.Microsecond)
}

// resolve determines the current committed value of the locator l and
// that value's version, forcefully aborting or waiting out a live owner
// according to the contention manager. It returns ok=false if the
// transaction must abort itself (manager said AbortSelf). Resolution
// only ever returns under a terminal owner status, so the (value,
// version) pair is immutable once returned.
func (t *dsTx) resolve(tv *tvar, l *locator) (val, ver uint64, ok bool) {
	attempt := 0
	for {
		switch l.owner.status.Read(t.p) {
		case statusCommitted:
			return l.newVal, l.owner.commitVer, true
		case statusAborted:
			return l.oldVal, l.oldVer, true
		}
		// Live owner: consult the contention manager, with our own op
		// count freshly published (noteOp batches it).
		if attempt == 0 {
			t.desc.ops.Store(t.opsLocal)
		}
		switch t.tm.mgr.OnConflict(t.desc.info(), l.owner.info(), attempt) {
		case cm.AbortVictim:
			if l.owner.status.CAS(t.p, statusLive, statusAborted) {
				t.tm.Aborts.Add(1)
				// A forceful abort changes no logical value, so versioned
				// validation leaves the clock alone — the victim notices
				// through its own status word (maybeValidate). The PR 1
				// epoch mode is kept bumping here, as the ablation
				// control: that bump is what made every reader in the
				// system rescan whenever anyone was aborted.
				if t.tm.mode == valGlobalEpoch {
					t.tm.clock.Bump(t.p)
				}
			}
			// Re-read the status on the next iteration: either our CAS
			// succeeded (aborted) or the owner completed meanwhile.
		case cm.Retry:
			t.backoff(attempt)
		case cm.AbortSelf:
			return 0, 0, false
		}
		attempt++
	}
}

// validate re-checks every read-set entry: the variable must still hold
// the very locator the value was read from, and the transaction itself
// must still be live. This is the paper's "the state of y is re-read to
// ensure that Ti still observes a consistent state of the system".
func (t *dsTx) validate() bool {
	ok := true
	t.rset.Range(func(tv *tvar, e readEntry) bool {
		if tv.cell.Load(t.p) != e.loc {
			ok = false
		}
		return ok
	})
	return ok && t.desc.status.Read(t.p) == statusLive
}

// ensureSnap samples the snapshot timestamp before the transaction's
// first read resolves. The order is load-bearing (TL2's read-version
// sample): a value resolved *after* the sample that carries a version ≤
// snap was installed no later than snap and was still current when
// resolved, hence was the variable's value AT time snap — so all such
// reads together form a consistent snapshot at snap.
func (t *dsTx) ensureSnap() {
	if t.tm.mode != valVersioned || t.snapSet {
		return
	}
	t.snap = t.tm.clock.Load(t.p)
	t.snapSet = true
}

// extend is the lazy snapshot extension: the reader met a value newer
// than its snapshot, so it re-samples the clock (BEFORE the scan — the
// scan then certifies the read set as current at a time ≥ the sample)
// and re-validates every entry by locator identity. On success the
// snapshot advances to the sample; entries stay immutable, only the
// timestamp moves. ver must be covered by the new snapshot, which the
// sampling order guarantees: the version was minted before the commit
// we observed, which happened before the sample.
func (t *dsTx) extend(ver uint64) bool {
	cur := t.tm.clock.Load(t.p)
	if !t.validate() {
		return false
	}
	t.snap = cur
	t.tm.extensions.Add(1)
	return ver <= cur
}

// maybeValidate is the per-access consistency check, run after a new
// read (haveVer=true, ver the version of the value just recorded) or a
// fresh ownership acquisition (haveVer=false).
//
// Versioned mode is the tentpole: O(1) in the common case — one read of
// the transaction's own status word (a forcefully aborted victim fails
// fast here; forceful aborts no longer touch any global word) plus the
// version-vs-snapshot comparison. Only a value that is genuinely newer
// than the snapshot forces the O(R) extension scan, so validation cost
// tracks write traffic *on the variables actually read*, not engine-wide
// commit traffic: disjoint-access parallelism on the validation path.
func (t *dsTx) maybeValidate(ver uint64, haveVer bool) bool {
	if !t.tm.validateOnRead {
		return true
	}
	switch t.tm.mode {
	case valFullScan:
		return t.validate()
	case valGlobalEpoch:
		cur := t.tm.clock.Load(t.p)
		if t.valSet && cur == t.valEpoch {
			return true
		}
		if !t.validate() {
			return false
		}
		t.valEpoch, t.valSet = cur, true
		return true
	}
	if t.desc.status.Read(t.p) != statusLive {
		return false
	}
	if !haveVer || ver <= t.snap {
		return true
	}
	return t.extend(ver)
}

func (t *dsTx) Read(v core.Var) (uint64, error) {
	if t.completedLocally != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.noteOp()
	// Read-own-write.
	if loc, ok := t.wset.Get(tv); ok {
		return loc.newVal, nil
	}
	// Repeated read: the recorded value, provided the locator is
	// unchanged.
	if e, ok := t.rset.Get(tv); ok {
		if tv.cell.Load(t.p) != e.loc {
			return 0, t.abortSelf()
		}
		return e.val, nil
	}
	t.ensureSnap()
	l := tv.cell.Load(t.p)
	val, ver, ok := t.resolve(tv, l)
	if !ok {
		return 0, t.abortSelf()
	}
	t.rset.PutNew(tv, readEntry{loc: l, val: val, ver: ver})
	if !t.maybeValidate(ver, true) {
		return 0, t.abortSelf()
	}
	return val, nil
}

// carve returns a locator for this transaction, from the descriptor's
// inline slab while one is free. A slab locator lives inside the
// descriptor allocation, which a successful install publishes anyway.
func (t *dsTx) carve() *locator {
	d := t.desc
	if d.locN < locSlab {
		l := &d.locBuf[d.locN]
		d.locN++
		return l
	}
	return new(locator)
}

func (t *dsTx) Write(v core.Var, val uint64) error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.noteOp()
	// Already owned: update the locator's new value in place.
	if loc, ok := t.wset.Get(tv); ok {
		loc.newVal = val
		return nil
	}
	newLoc := t.carve()
	for {
		l := tv.cell.Load(t.p)
		cur, ver, ok := t.resolve(tv, l)
		if !ok {
			return t.abortSelf()
		}
		// Stale-snapshot guard: if we read this variable earlier, we may
		// only acquire on top of the very locator we read it from.
		// Locator identity, not value equality: a locator can be
		// displaced and the old value reinstated by an intervening pair
		// of commits (value ABA), and acquiring across that would splice
		// our stale read into a history where it was never current.
		if e, seen := t.rset.Get(tv); seen && e.loc != l {
			return t.abortSelf()
		}
		*newLoc = locator{owner: t.desc, oldVal: cur, oldVer: ver, newVal: val}
		if tv.cell.CAS(t.p, l, newLoc) {
			t.wset.PutNew(tv, newLoc)
			t.rset.Delete(tv) // ownership supersedes the read entry
			if !t.maybeValidate(0, false) {
				return t.abortSelf()
			}
			return nil
		}
		// Lost the race to another writer; retry.
	}
}

func (t *dsTx) Commit() error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	// Commit-time validation. A WRITER must always rescan: ownership
	// acquisitions stamp no version and touch no clock, so a concurrent
	// writer's acquisitions are invisible to versions, and two writers
	// with crossed read/write sets could otherwise both pass their O(1)
	// checks and commit — write skew. The full scan restores the
	// exclusion argument: each writer scans after all its acquisitions,
	// so of two crossed writers at most one scan can pass. (This is the
	// PR 1 argument, preserved verbatim.)
	readOnly := t.wset.Len() == 0
	switch {
	case readOnly && t.tm.mode == valVersioned && t.tm.validateOnRead:
		// Read-only fast path: every read was admitted at a version ≤
		// snap (or re-certified by an extension), so the transaction
		// observed the committed state as of its snapshot timestamp and
		// serializes there. No commit-time validation at all.
	case readOnly && t.tm.mode == valGlobalEpoch && t.valSet && t.tm.clock.Load(t.p) == t.valEpoch:
		// PR 1 fast path: epoch unchanged since the last full scan.
	default:
		if !t.validate() {
			return t.abortSelf()
		}
	}
	if !readOnly {
		switch t.tm.mode {
		case valVersioned:
			// Tick-then-stamp-then-CAS: the version is minted and
			// stamped into the descriptor BEFORE the commit CAS, so a
			// reader that observes the commit resolves newVal at a
			// version no later than any clock sample it takes
			// afterwards. A stamped version whose CAS then fails is
			// never consulted (the descriptor dies aborted and
			// resolution returns oldVal/oldVer).
			t.desc.commitVer = t.tm.clock.Tick(t.p)
		case valGlobalEpoch:
			// Pre-announce the commit: the bump precedes the status CAS
			// so no reader can skip validation across it.
			t.tm.clock.Bump(t.p)
		}
	}
	if !t.desc.status.CAS(t.p, statusLive, statusCommitted) {
		// Someone forcefully aborted us between validation and the CAS.
		t.completedLocally = model.Aborted
		t.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	t.completedLocally = model.Committed
	t.p.SetTx(model.NoTx)
	return nil
}

func (t *dsTx) Abort() {
	if t.completedLocally != model.Live {
		return
	}
	_ = t.abortSelf()
}

// Release implements core.Releaser: DSTM's early release ([18] §5).
// The variable is dropped from the read set, so subsequent validations
// no longer cover it.
func (t *dsTx) Release(v core.Var) error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.rset.Delete(tv)
	return nil
}
