// Package dstm implements the DSTM-style obstruction-free STM the paper
// uses as its reference OFTM (§1, "A typical OFTM"):
//
//   - To update a t-variable, a transaction acquires exclusive but
//     revocable ownership with a CAS, installing a locator that points
//     to its transaction descriptor together with the old and new
//     values.
//   - A reader never writes shared memory for the variables it only
//     reads (invisible reads); it re-validates its read set on every
//     subsequent read and at commit, which gives opacity.
//   - Any transaction can forcefully abort a live owner by CASing the
//     owner's status from live to aborted — ownership is revocable
//     "without any interaction with Ti", which is what makes the design
//     obstruction-free. A contention manager may delay (bounded) but
//     never prevent that revocation.
//   - Commit is a single CAS of the descriptor's status from live to
//     committed.
//
// The transaction descriptor is the shared "hot spot" of Theorem 13:
// two transactions with disjoint t-variable footprints both chase a
// suspended third transaction's descriptor and conflict there. The
// Figure 2 experiment drives this engine to that exact execution.
package dstm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Transaction status values stored in the descriptor's status word.
const (
	statusLive      uint64 = 0
	statusCommitted uint64 = 1
	statusAborted   uint64 = 2
)

// locator is the indirection record installed in a t-variable's cell by
// a writer: which transaction owns the variable and the variable's value
// before (oldVal) and after (newVal) that transaction.
type locator struct {
	owner  *txDesc
	oldVal uint64
	// newVal is written only by the owner while live and read by others
	// only after observing the owner committed (the commit CAS orders
	// the accesses), so a plain field is race-free.
	newVal uint64
}

// txDesc is a transaction descriptor: the single word whose CAS commits
// or aborts the transaction. The status word is embedded by value, so a
// raw-mode descriptor is a single allocation.
type txDesc struct {
	id     model.TxID
	status base.U64
	start  int64
	ops    atomic.Int64
}

func (d *txDesc) info() cm.TxInfo {
	return cm.TxInfo{ID: d.id, Start: d.start, Ops: d.ops.Load()}
}

// tvar is a t-variable: one CAS cell holding the current locator.
type tvar struct {
	owner *DSTM
	id    model.VarID
	name  string
	cell  *base.Cell[locator]
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// Option configures a DSTM instance.
type Option func(*DSTM)

// WithEnv runs the engine's base objects under the simulation
// environment (sim mode).
func WithEnv(env *sim.Env) Option {
	return func(d *DSTM) { d.env = env }
}

// WithManager selects the contention manager (default Polite).
func WithManager(m cm.Manager) Option {
	return func(d *DSTM) { d.mgr = m }
}

// ValidateAtCommitOnly disables per-read read-set validation, keeping
// only commit-time validation. This is the ablation knob for experiment
// E8: it trades opacity (live transactions may observe inconsistent
// states) for fewer validation steps. Serializability of committed
// transactions is preserved.
func ValidateAtCommitOnly() Option {
	return func(d *DSTM) { d.validateOnRead = false }
}

// WithoutEpochValidation disables the commit-epoch fast path, forcing a
// full locator-identity scan on every read — the paper's reference
// behavior, O(R²) steps for an R-read transaction. The ablation knob
// for experiment E8f.
func WithoutEpochValidation() Option {
	return func(d *DSTM) { d.epochSkip = false }
}

// DSTM is the engine. It implements core.TM.
type DSTM struct {
	env            *sim.Env
	mgr            cm.Manager
	validateOnRead bool
	epochSkip      bool

	// epoch is the commit counter: bumped immediately before every
	// commit CAS of a writing transaction and after every forceful
	// abort. A transaction that observes it unchanged since its last
	// full validation knows its read set is still consistent (no commit
	// can have changed a logical value in between) and skips the scan.
	epoch base.Epoch

	mu      sync.Mutex
	vars    []*tvar
	nextTx  map[model.ProcID]int
	rawSeq  atomic.Int64 // raw-mode (nil proc) transaction counter
	tickets atomic.Int64

	// initDesc is the descriptor all initial locators point to; it is
	// permanently committed (the paper's assumed initializing
	// transaction T0).
	initDesc *txDesc

	// Aborts counts forceful aborts inflicted via contention-manager
	// decisions, for the benchmark reports.
	Aborts atomic.Int64
}

// New returns a DSTM instance.
func New(opts ...Option) *DSTM {
	d := &DSTM{
		mgr:            cm.Polite{},
		validateOnRead: true,
		epochSkip:      true,
		nextTx:         map[model.ProcID]int{},
	}
	for _, o := range opts {
		o(d)
	}
	d.epoch.Init(d.env, "dstm.epoch")
	d.initDesc = &txDesc{id: model.TxID{Proc: 0, Seq: 0}}
	d.initDesc.status.Init(d.env, "T0.status", statusCommitted)
	return d
}

// Name implements core.TM.
func (d *DSTM) Name() string { return "dstm" }

// ObstructionFree implements core.TM.
func (d *DSTM) ObstructionFree() bool { return true }

// Manager returns the configured contention manager.
func (d *DSTM) Manager() cm.Manager { return d.mgr }

// Stats implements core.StatsSource.
func (d *DSTM) Stats() core.TMStats {
	return core.TMStats{Epoch: d.epoch.Load(nil), ForcedAborts: d.Aborts.Load()}
}

// NewVar implements core.TM.
func (d *DSTM) NewVar(name string, init uint64) core.Var {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := &tvar{
		owner: d,
		id:    model.VarID(len(d.vars)),
		name:  name,
		cell:  base.NewCell(d.env, name+".loc", &locator{owner: d.initDesc, oldVal: init, newVal: init}),
	}
	d.vars = append(d.vars, v)
	return v
}

// Begin implements core.TM.
func (d *DSTM) Begin(p *sim.Proc) core.Tx {
	var id model.TxID
	if p == nil {
		// Raw mode: all goroutines share process id 0; an atomic counter
		// disambiguates without taking the engine lock.
		id = model.TxID{Proc: 0, Seq: int(d.rawSeq.Add(1))}
	} else {
		d.mu.Lock()
		pid := p.ID()
		d.nextTx[pid]++
		id = model.TxID{Proc: pid, Seq: d.nextTx[pid]}
		d.mu.Unlock()
		p.SetTx(id)
	}
	desc := &txDesc{
		id:    id,
		start: d.tickets.Add(1),
	}
	if d.env != nil {
		desc.status.Init(d.env, id.String()+".status", statusLive)
	} else {
		desc.status.Init(nil, "", statusLive)
	}
	return &dsTx{tm: d, p: p, desc: desc}
}

type readEntry struct {
	loc *locator
	val uint64
}

type dsTx struct {
	tm   *DSTM
	p    *sim.Proc
	desc *txDesc
	rset core.SmallMap[*tvar, readEntry]
	wset core.SmallMap[*tvar, *locator]
	// valEpoch is the engine epoch sampled immediately before the last
	// full validation that passed; valid only when valSet. While the
	// epoch still holds that value the read set cannot have been
	// invalidated, so validation is skipped.
	valEpoch uint64
	valSet   bool
	// completedLocally caches the outcome once the transaction observed
	// its own completion, to short-circuit further operations.
	completedLocally model.Status
}

func (t *dsTx) ID() model.TxID { return t.desc.id }

func (t *dsTx) Status() model.Status {
	switch t.desc.status.Read(nil) {
	case statusCommitted:
		return model.Committed
	case statusAborted:
		return model.Aborted
	}
	return model.Live
}

func mustVar(d *DSTM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.owner != d {
		panic(fmt.Sprintf("dstm: variable %v belongs to a different TM", v))
	}
	return tv
}

// abortSelf moves the transaction to aborted (if still live) and
// returns ErrAborted.
func (t *dsTx) abortSelf() error {
	t.desc.status.CAS(t.p, statusLive, statusAborted)
	t.completedLocally = model.Aborted
	t.p.SetTx(model.NoTx)
	return core.ErrAborted
}

// backoff delays a Retry decision in raw mode; in sim mode the
// scheduler controls interleaving and the retry loop's own steps are
// the backoff.
func (t *dsTx) backoff(attempt int) {
	if t.p != nil {
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	time.Sleep(time.Duration(1<<attempt) * time.Microsecond)
}

// resolve determines the current committed value of the locator l,
// forcefully aborting or waiting out a live owner according to the
// contention manager. It returns the value and true, or false if the
// transaction must abort itself (manager said AbortSelf).
func (t *dsTx) resolve(tv *tvar, l *locator) (uint64, bool) {
	attempt := 0
	for {
		switch l.owner.status.Read(t.p) {
		case statusCommitted:
			return l.newVal, true
		case statusAborted:
			return l.oldVal, true
		}
		// Live owner: consult the contention manager.
		switch t.tm.mgr.OnConflict(t.desc.info(), l.owner.info(), attempt) {
		case cm.AbortVictim:
			if l.owner.status.CAS(t.p, statusLive, statusAborted) {
				t.tm.Aborts.Add(1)
				// A forceful abort changes no logical value, but bumping
				// here makes the victim's next epoch check fail, so it
				// discovers its own abort without a full scan of every
				// read.
				if t.tm.epochSkip {
					t.tm.epoch.Bump(t.p)
				}
			}
			// Re-read the status on the next iteration: either our CAS
			// succeeded (aborted) or the owner completed meanwhile.
		case cm.Retry:
			t.backoff(attempt)
		case cm.AbortSelf:
			return 0, false
		}
		attempt++
	}
}

// validate re-checks every read-set entry: the variable must still hold
// the very locator the value was read from, and the transaction itself
// must still be live. This is the paper's "the state of y is re-read to
// ensure that Ti still observes a consistent state of the system".
func (t *dsTx) validate() bool {
	ok := true
	t.rset.Range(func(tv *tvar, e readEntry) bool {
		if tv.cell.Load(t.p) != e.loc {
			ok = false
		}
		return ok
	})
	return ok && t.desc.status.Read(t.p) == statusLive
}

// maybeValidate is the commit-epoch fast path around validate. The
// epoch is sampled BEFORE the scan: if the scan passes, the snapshot
// was consistent no earlier than the sample, so a later operation that
// still observes the sampled epoch knows no transaction committed in
// between — no logical value changed — and skips the scan entirely.
// The quiescent path is O(1) per read instead of O(|rset|).
func (t *dsTx) maybeValidate() bool {
	if !t.tm.validateOnRead {
		return true
	}
	if !t.tm.epochSkip {
		// Ablation baseline: the reference engine touches no epoch word
		// at all — neither here nor at commit/abort.
		return t.validate()
	}
	cur := t.tm.epoch.Load(t.p)
	if t.valSet && cur == t.valEpoch {
		return true
	}
	if !t.validate() {
		return false
	}
	t.valEpoch, t.valSet = cur, true
	return true
}

func (t *dsTx) Read(v core.Var) (uint64, error) {
	if t.completedLocally != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.desc.ops.Add(1)
	// Read-own-write.
	if loc, ok := t.wset.Get(tv); ok {
		return loc.newVal, nil
	}
	// Repeated read: the recorded value, provided the locator is
	// unchanged.
	if e, ok := t.rset.Get(tv); ok {
		if tv.cell.Load(t.p) != e.loc {
			return 0, t.abortSelf()
		}
		return e.val, nil
	}
	l := tv.cell.Load(t.p)
	val, ok := t.resolve(tv, l)
	if !ok {
		return 0, t.abortSelf()
	}
	t.rset.Put(tv, readEntry{loc: l, val: val})
	if !t.maybeValidate() {
		return 0, t.abortSelf()
	}
	return val, nil
}

func (t *dsTx) Write(v core.Var, val uint64) error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.desc.ops.Add(1)
	// Already owned: update the locator's new value in place.
	if loc, ok := t.wset.Get(tv); ok {
		loc.newVal = val
		return nil
	}
	for {
		l := tv.cell.Load(t.p)
		cur, ok := t.resolve(tv, l)
		if !ok {
			return t.abortSelf()
		}
		// If we read this variable earlier, the value we acquire from
		// must be the value we read, or our snapshot is stale.
		if e, seen := t.rset.Get(tv); seen && (e.loc != l && cur != e.val) {
			return t.abortSelf()
		}
		newLoc := &locator{owner: t.desc, oldVal: cur, newVal: val}
		if tv.cell.CAS(t.p, l, newLoc) {
			t.wset.Put(tv, newLoc)
			t.rset.Delete(tv) // ownership supersedes the read entry
			if !t.maybeValidate() {
				return t.abortSelf()
			}
			return nil
		}
		// Lost the race to another writer; retry.
	}
}

func (t *dsTx) Commit() error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	// Commit-time validation. A read-only transaction may use the epoch
	// skip: its snapshot was consistent at its last full validation and
	// it writes nothing, so it serializes there. A WRITER must always
	// rescan: epoch bumps happen only at commit, so a concurrent
	// writer's ownership acquisitions are invisible to the epoch, and
	// two writers with crossed read/write sets could otherwise both
	// skip (neither has bumped yet) and both commit — write skew. The
	// full scan restores the exclusion argument: each writer scans
	// after all its acquisitions, so of two crossed writers at most one
	// scan can pass.
	readOnly := t.wset.Len() == 0
	if !(readOnly && t.tm.epochSkip && t.valSet && t.tm.epoch.Load(t.p) == t.valEpoch) && !t.validate() {
		return t.abortSelf()
	}
	if !readOnly && t.tm.epochSkip {
		// Pre-announce the commit: the bump precedes the status CAS so
		// no reader can skip validation across it. Read-only commits
		// change no logical value and need no bump.
		t.tm.epoch.Bump(t.p)
	}
	if !t.desc.status.CAS(t.p, statusLive, statusCommitted) {
		// Someone forcefully aborted us between validation and the CAS.
		t.completedLocally = model.Aborted
		t.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	t.completedLocally = model.Committed
	t.p.SetTx(model.NoTx)
	return nil
}

func (t *dsTx) Abort() {
	if t.completedLocally != model.Live {
		return
	}
	_ = t.abortSelf()
}

// Release implements core.Releaser: DSTM's early release ([18] §5).
// The variable is dropped from the read set, so subsequent validations
// no longer cover it.
func (t *dsTx) Release(v core.Var) error {
	if t.completedLocally != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(t.tm, v)
	t.rset.Delete(tv)
	return nil
}
