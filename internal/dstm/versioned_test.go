// White-box tests for per-variable versioned validation: O(1) victim
// abort detection (forceful aborts no longer bump any global word) and
// the tightened locator-identity stale-snapshot guard in Write.
package dstm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestVictimDetectsAbortO1: a forcefully aborted victim must discover
// its abort on its next access through its OWN status word — in O(1)
// steps, independent of its read-set size — now that forceful aborts no
// longer touch the global clock. The abort is inflicted externally with
// a raw (unscheduled, unrecorded) status CAS, exactly what an
// attacker's revocation step does to the victim.
func TestVictimDetectsAbortO1(t *testing.T) {
	detect := func(reads int) int64 {
		env := sim.New()
		d := New(WithEnv(env))
		vars := make([]core.Var, reads+1)
		for i := range vars {
			vars[i] = d.NewVar(fmt.Sprintf("v%d", i), 0)
		}
		var steps int64
		var failure error
		env.Spawn(func(p *sim.Proc) {
			tx := d.Begin(p).(*dsTx)
			for i := 0; i < reads; i++ {
				if _, err := tx.Read(vars[i]); err != nil {
					failure = fmt.Errorf("setup read %d: %v", i, err)
					return
				}
			}
			tx.desc.status.CAS(nil, statusLive, statusAborted)
			before := env.TotalSteps()
			_, err := tx.Read(vars[reads])
			steps = env.TotalSteps() - before
			if !errors.Is(err, core.ErrAborted) {
				failure = fmt.Errorf("victim read after forceful abort returned %v, want ErrAborted", err)
			}
		})
		env.Run(sim.Solo(1))
		if failure != nil {
			t.Fatal(failure)
		}
		return steps
	}
	s16 := detect(16)
	s256 := detect(256)
	if s16 > 8 || s256 > 8 {
		t.Fatalf("victim abort detection took %d steps at R=16 and %d at R=256, want ≤ 8 (O(1))", s16, s256)
	}
	if s16 != s256 {
		t.Fatalf("victim abort detection cost depends on read-set size: %d steps at R=16 vs %d at R=256", s16, s256)
	}
}

// TestWriteStaleSnapshotGuardABA pins the tightened guard in Write: a
// transaction that read x under one locator must not acquire x on top
// of a DIFFERENT locator, even when the resolved value is equal. The
// old guard (`e.loc != l && cur != e.val`) let exactly this value-ABA
// through: commit x to a new value and back, and the stale reader
// acquires as if nothing happened, splicing its old read into a history
// where it was never current alongside whatever else changed in
// between.
func TestWriteStaleSnapshotGuardABA(t *testing.T) {
	tm := New()
	x := tm.NewVar("x", 5)

	t1 := tm.Begin(nil)
	if v, err := t1.Read(x); err != nil || v != 5 {
		t.Fatalf("read x = %d (%v), want 5", v, err)
	}
	// Value ABA underneath t1: x goes 5 → 7 → 5 through two committed
	// writers, leaving a fresh locator holding the original value.
	if err := core.WriteVar(tm, nil, x, 7); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteVar(tm, nil, x, 5); err != nil {
		t.Fatal(err)
	}
	if err := t1.Write(x, 9); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("acquiring over an ABA'd locator with an equal value must abort, got %v", err)
	}
}

// TestReadOnlySerializesAtSnapshot: the versioned read-only commit fast
// path — a reader whose variable is overwritten after the read still
// commits (it serializes at its snapshot timestamp), with no
// commit-time validation scan.
func TestReadOnlySerializesAtSnapshot(t *testing.T) {
	tm := New()
	x := tm.NewVar("x", 1)
	tx := tm.Begin(nil)
	if v, err := tx.Read(x); err != nil || v != 1 {
		t.Fatalf("read x = %d (%v), want 1", v, err)
	}
	if err := core.WriteVar(tm, nil, x, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit after disjoint-in-time overwrite: %v", err)
	}
}

// TestSnapshotExtension: a reader that encounters a value newer than
// its snapshot extends (full rescan + snapshot advance) instead of
// aborting, and the extension is counted in TMStats.
func TestSnapshotExtension(t *testing.T) {
	tm := New()
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)

	tx := tm.Begin(nil)
	if _, err := tx.Read(x); err != nil {
		t.Fatal(err)
	}
	// A committed write to y advances the clock past tx's snapshot.
	if err := core.WriteVar(tm, nil, y, 42); err != nil {
		t.Fatal(err)
	}
	// Reading y now meets a version beyond the snapshot: extension, not
	// abort — x is untouched, so the rescan passes and y's new value is
	// admitted under the advanced snapshot.
	v, err := tx.Read(y)
	if err != nil || v != 42 {
		t.Fatalf("read y = %d (%v), want 42 via snapshot extension", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after extension: %v", err)
	}
	if st := tm.Stats(); st.SnapshotExtensions == 0 {
		t.Fatalf("stats report no snapshot extensions, want ≥ 1: %+v", st)
	}
}

// TestRecyclePoolsOnlyUnpublishedDescriptors: the pool must reuse the
// descriptor of a read-only transaction (never published) but drop the
// descriptor of a writer (escaped into t-variable cells, reclaimed by
// the GC).
func TestRecyclePoolsOnlyUnpublishedDescriptors(t *testing.T) {
	tm := New()
	x := tm.NewVar("x", 0)

	// sync.Pool intentionally drops a fraction of Puts under the race
	// detector, so observing reuse needs a few attempts; the safety half
	// below (writer descriptors never reused) must hold on every one.
	reused := false
	for i := 0; i < 32 && !reused; i++ {
		ro := tm.Begin(nil).(*dsTx)
		if _, err := ro.Read(x); err != nil {
			t.Fatal(err)
		}
		if err := ro.Commit(); err != nil {
			t.Fatal(err)
		}
		roDesc := ro.desc
		ro.Recycle()
		next := tm.Begin(nil).(*dsTx)
		if next == ro && next.desc == roDesc {
			reused = true
			if next.completedLocally != model.Live || next.rset.Len() != 0 || next.wset.Len() != 0 {
				t.Fatalf("recycled transaction not reset: %+v", next)
			}
		}

		if err := next.Write(x, 1); err != nil {
			t.Fatal(err)
		}
		if err := next.Commit(); err != nil {
			t.Fatal(err)
		}
		wDesc := next.desc
		next.Recycle()
		after := tm.Begin(nil).(*dsTx)
		if after.desc == wDesc {
			t.Fatalf("writer descriptor %p was recycled while still referenced from installed locators", wDesc)
		}
		after.Abort()
		after.Recycle()
	}
	if !reused {
		t.Fatal("read-only transaction state never reused from the pool")
	}
}
