package dstm_test

import (
	"errors"
	"testing"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/tmtest"
)

func TestConformance(t *testing.T) {
	tmtest.Conformance(t, func(env *sim.Env) core.TM {
		if env == nil {
			return dstm.New()
		}
		return dstm.New(dstm.WithEnv(env))
	})
}

func TestConformancePerManager(t *testing.T) {
	for _, mgr := range cm.All() {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			tmtest.Conformance(t, func(env *sim.Env) core.TM {
				if env == nil {
					return dstm.New(dstm.WithManager(mgr))
				}
				return dstm.New(dstm.WithEnv(env), dstm.WithManager(mgr))
			})
		})
	}
}

func TestConformanceValidateAtCommitOnly(t *testing.T) {
	tmtest.Conformance(t, func(env *sim.Env) core.TM {
		if env == nil {
			return dstm.New(dstm.ValidateAtCommitOnly())
		}
		return dstm.New(dstm.WithEnv(env), dstm.ValidateAtCommitOnly())
	})
}

// TestSuspendedOwnerDoesNotBlock is the obstruction-freedom headline:
// unlike two-phase locking, a transaction suspended while owning a
// variable cannot prevent another process from completing — the other
// process forcefully aborts it.
func TestSuspendedOwnerDoesNotBlock(t *testing.T) {
	env := sim.New()
	tm := dstm.New(dstm.WithEnv(env), dstm.WithManager(cm.Aggressive{}))
	x := tm.NewVar("x", 0)

	var t1 core.Tx
	env.Spawn(func(p *sim.Proc) { // p1: acquires x, then suspends forever
		t1 = tm.Begin(p)
		_ = t1.Write(x, 1)
		_ = t1.Commit() // never reached: suspended by the script
	})
	var p2val uint64
	var p2err error
	env.Spawn(func(p *sim.Proc) { // p2: must complete despite p1
		p2err = core.Run(tm, p, func(tx core.Tx) error {
			v, err := tx.Read(x)
			p2val = v
			return err
		}, core.MaxAttempts(10))
	})
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 3}, // p1 loads locator, resolves T0, CASes ownership
		sim.Phase{Proc: 2, Steps: -1},
	))
	if p2err != nil {
		t.Fatalf("p2 must complete under an OFTM, got %v", p2err)
	}
	if p2val != 0 {
		t.Fatalf("p2 must read the pre-T1 value 0, got %d", p2val)
	}
	if t1.Status() != model.Aborted {
		t.Fatalf("suspended owner must end up forcefully aborted, status %v", t1.Status())
	}
}

// TestOpacityValidationOnRead: a transaction must not observe a mixed
// snapshot. T1 reads x; T2 commits x=1,y=1; T1's read of y must abort
// rather than return a state where x=0 but y=1.
func TestOpacityValidationOnRead(t *testing.T) {
	tm := dstm.New()
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)

	t1 := tm.Begin(nil)
	vx, err := t1.Read(x)
	if err != nil || vx != 0 {
		t.Fatalf("t1 read x: %d %v", vx, err)
	}
	// T2 commits x=1, y=1.
	if err := core.Run(tm, nil, func(tx core.Tx) error {
		if err := tx.Write(x, 1); err != nil {
			return err
		}
		return tx.Write(y, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(y); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("inconsistent snapshot must abort the reader, got %v", err)
	}
}

// TestCommitFailsAfterForcefulAbort: the commit CAS must fail when the
// transaction was aborted between validation and commit.
func TestCommitFailsAfterForcefulAbort(t *testing.T) {
	env := sim.New()
	tm := dstm.New(dstm.WithEnv(env), dstm.WithManager(cm.Aggressive{}))
	x := tm.NewVar("x", 0)

	var commitErr error
	env.Spawn(func(p *sim.Proc) { // p1: writes x, then tries to commit
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		commitErr = tx.Commit()
	})
	env.Spawn(func(p *sim.Proc) { // p2: aborts p1 by taking x
		_ = core.Run(tm, p, func(tx core.Tx) error {
			return tx.Write(x, 2)
		}, core.MaxAttempts(10))
	})
	// p1 acquires x; p2 then steals it (aborting T1); p1 resumes commit.
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 3},
		sim.Phase{Proc: 2, Steps: -1},
		sim.Phase{Proc: 1, Steps: -1},
	))
	if !errors.Is(commitErr, core.ErrAborted) {
		t.Fatalf("commit after forceful abort must fail, got %v", commitErr)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 2 {
		t.Fatalf("x = %d, want 2 (T2's write)", v)
	}
}

// TestTimestampManagerYoungerAbortsSelf exercises the AbortSelf path:
// an older transaction owns the variable, so the younger attacker backs
// off and then aborts itself.
func TestTimestampManagerYoungerAbortsSelf(t *testing.T) {
	tm := dstm.New(dstm.WithManager(cm.Timestamp{MaxTries: 2}))
	x := tm.NewVar("x", 0)

	older := tm.Begin(nil)
	if err := older.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	younger := tm.Begin(nil)
	if _, err := younger.Read(x); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("younger attacker must abort itself, got %v", err)
	}
	// The older transaction was not harmed and can commit.
	if err := older.Commit(); err != nil {
		t.Fatalf("older owner must still commit: %v", err)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 1 {
		t.Fatalf("x = %d, want 1", v)
	}
}

// TestRepeatedReadStability: a second read of the same variable returns
// the same value while the locator is unchanged, and aborts if it moved.
func TestRepeatedReadStability(t *testing.T) {
	tm := dstm.New()
	x := tm.NewVar("x", 5)
	t1 := tm.Begin(nil)
	v1, err := t1.Read(x)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := t1.Read(x)
	if err != nil || v2 != v1 {
		t.Fatalf("repeated read: %d vs %d (%v)", v1, v2, err)
	}
	// Another transaction moves the locator.
	if err := core.WriteVar(tm, nil, x, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(x); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("read after locator moved must abort, got %v", err)
	}
}

// TestWriteAfterReadUpgrade: writing a variable previously read keeps
// the snapshot consistent (acquire-from-value must match the read).
func TestWriteAfterReadUpgrade(t *testing.T) {
	tm := dstm.New()
	x := tm.NewVar("x", 3)
	t1 := tm.Begin(nil)
	v, err := t1.Read(x)
	if err != nil || v != 3 {
		t.Fatal(err)
	}
	if err := t1.Write(x, v+1); err != nil {
		t.Fatal(err)
	}
	got, err := t1.Read(x)
	if err != nil || got != 4 {
		t.Fatalf("read-own-write after upgrade: %d %v", got, err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 4 {
		t.Fatalf("committed x = %d", v)
	}
}

// TestWriteWriteConflictAbortsVictim: the second writer revokes the
// first writer's ownership (aggressive manager).
func TestWriteWriteConflictAbortsVictim(t *testing.T) {
	tm := dstm.New(dstm.WithManager(cm.Aggressive{}))
	x := tm.NewVar("x", 0)
	t1 := tm.Begin(nil)
	if err := t1.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	t2 := tm.Begin(nil)
	if err := t2.Write(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("t1 must have been forcefully aborted, commit gave %v", err)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 2 {
		t.Fatalf("x = %d, want 2", v)
	}
	if tm.Aborts.Load() == 0 {
		t.Fatalf("forceful abort counter not incremented")
	}
}

func TestForeignVarPanics(t *testing.T) {
	tm1 := dstm.New()
	tm2 := dstm.New()
	x := tm2.NewVar("x", 0)
	tx := tm1.Begin(nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("foreign var must panic")
		}
	}()
	_, _ = tx.Read(x)
}

func TestSafetyCampaign(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env))
	}, tmtest.CampaignConfig{Seeds: 25})
}

func TestSafetyCampaignAggressive(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env), dstm.WithManager(cm.Aggressive{}))
	}, tmtest.CampaignConfig{Seeds: 15})
}

// TestCrashCampaign: a crashed process never inhibits survivors, and
// Definitions 2 and 3 both hold on crash histories (Theorem 5).
func TestCrashCampaign(t *testing.T) {
	tmtest.CrashCampaign(t, func(env *sim.Env) core.TM {
		return dstm.New(dstm.WithEnv(env), dstm.WithManager(cm.Aggressive{}))
	}, 25)
}

// TestEarlyRelease: after releasing a read variable, a conflicting
// writer no longer aborts the reader — DSTM's early-release feature.
// Both transactions write (to z) so the commit-time full rescan
// applies: a purely read-only transaction now serializes at its
// snapshot timestamp and would legitimately commit either way (the
// versioned read-only fast path).
func TestEarlyRelease(t *testing.T) {
	tm := dstm.New()
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)
	z := tm.NewVar("z", 0)

	t1 := tm.Begin(nil)
	if _, err := t1.Read(x); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(y); err != nil {
		t.Fatal(err)
	}
	if !core.Release(t1, x) {
		t.Fatal("dstm must support early release")
	}
	// A writer moves x; without the release t1's validation would fail.
	if err := core.WriteVar(tm, nil, x, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(y); err != nil {
		t.Fatalf("released variable must not invalidate the snapshot: %v", err)
	}
	if err := t1.Write(z, 1); err != nil {
		t.Fatalf("write after release: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("commit after release: %v", err)
	}

	// Control: without the release the same interleaving aborts at the
	// writer's commit-time rescan.
	t2 := tm.Begin(nil)
	if _, err := t2.Read(x); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteVar(tm, nil, x, 2); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(z, 2); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("unreleased stale read must abort the commit, got %v", err)
	}
}

// TestReleaseUnsupportedEngines: the helper reports false for engines
// without early release.
func TestReleaseUnsupportedEngines(t *testing.T) {
	tm := dstm.New()
	x := tm.NewVar("x", 0)
	tx := tm.Begin(nil)
	defer tx.Abort()
	if !core.Release(tx, x) {
		t.Fatal("dstm tx must implement Releaser")
	}
}
