package adversary

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// SystemFactory sets up a fresh system under test inside env: build the
// engine, allocate variables, spawn process bodies. Called once per
// explored schedule (systems must be cheap and deterministic).
type SystemFactory func(env *sim.Env)

// ExploreReport summarizes an exhaustive schedule exploration.
type ExploreReport struct {
	Schedules int // number of schedules (tree leaves) explored
	Histories int // number of histories checked (= Schedules)
	MaxDepth  int
	// FirstViolation is the error from the first failing schedule, with
	// the schedule embedded; nil if all passed.
	FirstViolation error
}

// ExploreAll enumerates EVERY schedule of the system up to maxDepth
// steps (at each decision point, every waiting process is tried). A
// schedule shorter than maxDepth ends when all processes finish;
// otherwise the remaining processes are killed at the cutoff, modelling
// crashes. check is invoked on the recorded history of every explored
// schedule.
//
// This is bounded systematic concurrency testing (stateless model
// checking by replay): within the depth bound it proves the property
// for every interleaving, not just sampled ones.
func ExploreAll(factory SystemFactory, maxDepth int, check func(h *model.History, env *sim.Env) error) ExploreReport {
	rep := ExploreReport{MaxDepth: maxDepth}
	var dfs func(prefix []model.ProcID)
	dfs = func(prefix []model.ProcID) {
		if rep.FirstViolation != nil {
			return
		}
		env := sim.New()
		factory(env)
		var waiting []model.ProcID
		capture := sim.PickFunc(func(ws []*sim.Proc, _ *sim.Env) int {
			waiting = waiting[:0]
			for _, p := range ws {
				waiting = append(waiting, p.ID())
			}
			return -1 // stop: kill the rest (crash at cutoff)
		})
		h := env.Run(sim.Choices(append([]model.ProcID(nil), prefix...), capture))
		if len(waiting) == 0 || len(prefix) == maxDepth {
			// A complete schedule (everyone finished, or cutoff reached).
			rep.Schedules++
			rep.Histories++
			if err := check(h, env); err != nil {
				rep.FirstViolation = fmt.Errorf("schedule %v: %w", prefix, err)
			}
			return
		}
		for _, id := range waiting {
			dfs(append(prefix, id))
		}
	}
	dfs(nil)
	return rep
}
