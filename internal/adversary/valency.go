package adversary

import (
	"fmt"
	"strings"

	"repro/internal/base"
	"repro/internal/model"
	"repro/internal/sim"
)

// The valency experiment (Theorem 9 / Claim 10). The candidate
// algorithm is the natural "racing" consensus one would build from
// fo-consensus objects and registers: every process announces its
// proposal in a register, then repeatedly proposes its current value to
// a shared fo-consensus object, adopting a peer's announced value after
// an abort. Run solo, any process decides (obstruction-freedom); the
// question Theorem 9 answers negatively is whether some such algorithm
// can be *wait-free* for 3 processes.
//
// The explorer realizes the proof's adversary constructively: it
// searches, depth by depth, for schedules after which (a) no process
// has decided and (b) both outcome values are still reachable by
// running different processes solo — a bivalent configuration. Claim 10
// says such an extension always exists; the explorer confirms it for
// every depth it is given budget for. For n = 2 the same search finds a
// depth at which every schedule has decided (consensus number ≥ 2).

// raceOutcome is the result of one bounded run of the racing algorithm.
type raceOutcome struct {
	decided   [8]bool
	value     [8]uint64
	truncated bool
}

// runRace executes the racing consensus with the given inputs under
// schedule prefix (process ids), then a fallback scheduler, bounding
// total steps. Deterministic for fixed arguments.
func runRace(inputs []uint64, prefix []model.ProcID, fallback sim.Scheduler, maxSteps int64) raceOutcome {
	env := sim.New()
	env.MaxSteps = maxSteps
	f := base.NewFoCons(env, "F", base.AbortOnContention, 0)
	n := len(inputs)
	props := make([]*base.Reg, n)
	for i := range props {
		props[i] = base.NewReg(env, fmt.Sprintf("prop%d", i), 0)
	}
	dec := base.NewReg(env, "dec", 0)

	var out raceOutcome
	for i := 0; i < n; i++ {
		i := i
		env.Spawn(func(p *sim.Proc) {
			v := inputs[i]
			props[i].Write(p, v+1)
			cur := v
			for {
				if d := dec.Read(p); d != 0 {
					out.decided[i], out.value[i] = true, d-1
					return
				}
				if res := f.Propose(p, cur); res != base.Bottom {
					dec.Write(p, res+1)
					out.decided[i], out.value[i] = true, res
					return
				}
				// Aborted: adopt the first announced peer value (a
				// deterministic helping rule).
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					if o := props[j].Read(p); o != 0 {
						cur = o - 1
						break
					}
				}
			}
		})
	}
	env.Run(sim.Choices(prefix, fallback))
	out.truncated = env.Truncated
	return out
}

// ValencyReport summarizes the bounded bivalence search.
type ValencyReport struct {
	Procs int
	Depth int // requested exploration depth
	// SustainedDepth is the deepest level at which a bivalent schedule
	// was found (== Depth means the adversary never ran out of moves, as
	// Claim 10 predicts for 3 processes).
	SustainedDepth int
	// Witness is one maximal bivalent schedule found.
	Witness []model.ProcID
	// DecidedByDepth, for n=2 runs: the depth at which every explored
	// schedule had decided (-1 if bivalence persisted).
	AllDecidedAt int
}

// ExploreValency searches for ever-longer bivalent schedules of the
// racing algorithm with the given inputs (len(inputs) processes; use
// inputs that make the initial configuration bivalent, e.g. {0,1,1}).
// depth bounds the search.
func ExploreValency(inputs []uint64, depth int) ValencyReport {
	n := len(inputs)
	rep := ValencyReport{Procs: n, Depth: depth, SustainedDepth: -1, AllDecidedAt: -1}

	// bivalent reports whether, after the prefix, no process has decided
	// and at least two distinct values are reachable via solo extensions.
	bivalent := func(prefix []model.ProcID) bool {
		// No decisions during the prefix itself.
		probe := runRace(inputs, prefix, nil, int64(len(prefix))+16)
		for i := 0; i < n; i++ {
			if probe.decided[i] {
				return false
			}
		}
		vals := map[uint64]bool{}
		for i := 1; i <= n; i++ {
			solo := runRace(inputs, prefix, sim.Solo(model.ProcID(i)), int64(len(prefix))+4096)
			if solo.decided[i-1] {
				vals[solo.value[i-1]] = true
			}
		}
		return len(vals) >= 2
	}

	// Depth-first search for a bivalent schedule of each length.
	var dfs func(prefix []model.ProcID) bool
	dfs = func(prefix []model.ProcID) bool {
		if len(prefix) > rep.SustainedDepth {
			rep.SustainedDepth = len(prefix)
			rep.Witness = append([]model.ProcID(nil), prefix...)
		}
		if len(prefix) == depth {
			return true
		}
		for i := 1; i <= n; i++ {
			next := append(append([]model.ProcID(nil), prefix...), model.ProcID(i))
			if bivalent(next) && dfs(next) {
				return true
			}
		}
		return false
	}
	if bivalent(nil) {
		dfs(nil)
	}

	// For the 2-process contrast: find the depth at which every explored
	// schedule has decided (exhaustive to `depth`, breadth-first).
	if n == 2 {
		frontier := [][]model.ProcID{nil}
		for d := 0; d <= depth; d++ {
			anyBivalent := false
			var next [][]model.ProcID
			for _, pre := range frontier {
				if bivalent(pre) {
					anyBivalent = true
					for i := 1; i <= n; i++ {
						next = append(next, append(append([]model.ProcID(nil), pre...), model.ProcID(i)))
					}
				}
			}
			if !anyBivalent {
				rep.AllDecidedAt = d
				break
			}
			frontier = next
		}
	}
	return rep
}

// Format renders the report.
func (r ValencyReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Valency exploration: %d processes, depth budget %d\n", r.Procs, r.Depth)
	fmt.Fprintf(&b, "  bivalent schedule sustained to depth %d", r.SustainedDepth)
	if r.SustainedDepth == r.Depth {
		fmt.Fprintf(&b, " (adversary never ran out of moves — Claim 10)\n")
	} else {
		fmt.Fprintf(&b, "\n")
	}
	if r.Procs == 2 {
		if r.AllDecidedAt >= 0 {
			fmt.Fprintf(&b, "  2-process case: every schedule decided by depth %d (consensus number >= 2)\n", r.AllDecidedAt)
		} else {
			fmt.Fprintf(&b, "  2-process case: bivalence persisted to the depth budget\n")
		}
	}
	if len(r.Witness) > 0 {
		fmt.Fprintf(&b, "  witness schedule: %v\n", r.Witness)
	}
	return b.String()
}
