// Package adversary mechanizes the paper's proof scenarios as
// executable experiments:
//
//   - Figure 2 / Theorem 13 (fig2.go): the suspension schedule showing
//     that no OFTM is strictly disjoint-access-parallel. The driver
//     replays T1's solo execution, suspends it after every possible
//     prefix t, runs the disjoint transactions T2 and T3, locates the
//     "critical step" s, and reports the base-object conflicts between
//     T2 and T3.
//   - Theorem 9 / Claim 10 (valency.go): a bounded valency explorer
//     showing that a consensus algorithm built from fo-consensus objects
//     and registers can be kept bivalent (undecided, with both outcomes
//     still reachable) for arbitrarily many steps in a 3-process system,
//     while the 2-process case decides in every explored schedule.
package adversary

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// EngineFactory builds a fresh engine inside the given environment.
type EngineFactory func(env *sim.Env) core.TM

// Fig2Row is the outcome of one suspension point t: T1 executed t solo
// steps, was suspended, then T2 (p2) and T3 (p3) ran to completion.
type Fig2Row struct {
	T int // steps granted to p1 before suspension

	T2Read      uint64 // value T2 read from x (last attempt)
	T2Committed bool
	T3Read      uint64 // value T3 read from y (last attempt)
	T3Committed bool

	// T2T3Conflicts counts strict-DAP violations between the disjoint
	// transactions of p2 and p3 — the paper's "hot spot".
	T2T3Conflicts int
	// ConflictObjs names the base objects p2's and p3's transactions
	// conflicted on.
	ConflictObjs []string
	// Serializable reports the checker's verdict on the whole history.
	Serializable bool
}

// Fig2Report is the full sweep over suspension points.
type Fig2Report struct {
	Engine    string
	SoloSteps int // number of steps in T1's solo run (|E1|)

	// CriticalStep is the first t at which T2 or T3 observes value 1 —
	// the paper's step s. -1 if never observed (lock-based engines that
	// block instead).
	CriticalStep int

	// Blocked reports that at some suspension point T2 or T3 could not
	// commit at all (the engine is not obstruction-free).
	Blocked bool

	// DAPViolationPoints lists the suspension points with T2/T3 base
	// object conflicts despite disjoint footprints.
	DAPViolationPoints []int

	Rows []Fig2Row
}

// RunFig2 executes the Theorem 13 scenario against an engine. The three
// transactions are exactly the paper's:
//
//	T1: R(w) R(z) W(x,1) W(y,1) tryC      (process p1)
//	T2: R(x) W(w,1) tryC                  (process p2)
//	T3: R(y) W(z,1) tryC                  (process p3)
//
// maxAttempts bounds T2/T3 retries; an OFTM needs exactly 1 attempt
// since T1 takes no steps while they run.
func RunFig2(factory EngineFactory, maxAttempts int) Fig2Report {
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	report := Fig2Report{CriticalStep: -1}

	// Pass 0: T1 solo, to learn its engine name and solo step count.
	solo := runFig2Once(factory, -1, maxAttempts)
	report.Engine = solo.engine
	report.SoloSteps = solo.p1Steps

	for t := 0; t <= report.SoloSteps; t++ {
		r := runFig2Once(factory, t, maxAttempts)
		row := r.row
		row.T = t
		report.Rows = append(report.Rows, row)
		if !row.T2Committed || !row.T3Committed {
			report.Blocked = true
		}
		if report.CriticalStep < 0 &&
			((row.T2Committed && row.T2Read == 1) || (row.T3Committed && row.T3Read == 1)) {
			report.CriticalStep = t
		}
		if row.T2T3Conflicts > 0 {
			report.DAPViolationPoints = append(report.DAPViolationPoints, t)
		}
	}
	return report
}

type fig2Run struct {
	engine  string
	p1Steps int
	row     Fig2Row
}

// runFig2Once executes one schedule: p1 takes t steps (t < 0 means p1
// runs fully solo and nothing else runs), then p2 completes, then p3.
func runFig2Once(factory EngineFactory, t int, maxAttempts int) fig2Run {
	env := sim.New()
	tm := core.Recorded(factory(env), env.Recorder())
	w := tm.NewVar("w", 0)
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)
	z := tm.NewVar("z", 0)

	var out fig2Run
	out.engine = tm.Name()

	env.Spawn(func(p *sim.Proc) { // p1: T1
		tx := tm.Begin(p)
		if _, err := tx.Read(w); err != nil {
			return
		}
		if _, err := tx.Read(z); err != nil {
			return
		}
		if err := tx.Write(x, 1); err != nil {
			return
		}
		if err := tx.Write(y, 1); err != nil {
			return
		}
		_ = tx.Commit()
	})
	env.Spawn(func(p *sim.Proc) { // p2: T2
		_ = core.Run(tm, p, func(tx core.Tx) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			out.row.T2Read = v
			if err := tx.Write(w, 1); err != nil {
				return err
			}
			return nil
		}, core.MaxAttempts(maxAttempts))
	})
	env.Spawn(func(p *sim.Proc) { // p3: T3
		_ = core.Run(tm, p, func(tx core.Tx) error {
			v, err := tx.Read(y)
			if err != nil {
				return err
			}
			out.row.T3Read = v
			if err := tx.Write(z, 1); err != nil {
				return err
			}
			return nil
		}, core.MaxAttempts(maxAttempts))
	})

	var sched sim.Scheduler
	if t < 0 {
		sched = sim.Solo(1)
	} else {
		sched = sim.Script(
			sim.Phase{Proc: 1, Steps: t},
			sim.Phase{Proc: 2, Steps: -1},
			sim.Phase{Proc: 3, Steps: -1},
		)
	}
	h := env.Run(sched)
	out.p1Steps = len(h.StepsOf(1))

	// Commit outcomes of p2/p3 (any committed transaction of that proc).
	txs := model.Transactions(h)
	for _, tv := range txs {
		if tv.Status != model.Committed {
			continue
		}
		switch tv.Proc {
		case 2:
			out.row.T2Committed = true
		case 3:
			out.row.T3Committed = true
		}
	}
	// Strict-DAP violations between p2's and p3's transactions.
	for _, v := range checker.CheckStrictDAP(h, env.ObjName) {
		p1p, p2p := v.Tx1.Proc, v.Tx2.Proc
		if (p1p == 2 && p2p == 3) || (p1p == 3 && p2p == 2) {
			out.row.T2T3Conflicts++
			out.row.ConflictObjs = append(out.row.ConflictObjs, v.ObjName)
		}
	}
	if len(txs) <= checker.ExactLimit {
		out.row.Serializable = checker.CheckSerializable(txs, nil).OK
	} else {
		out.row.Serializable = checker.CheckSerializableWitness(txs, nil).OK
	}
	return out
}

// Format renders the report as the experiment's table (one row per
// suspension point plus a header), matching Figure 2's narrative.
func (r Fig2Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 scenario — engine %s (T1 solo run: %d steps)\n", r.Engine, r.SoloSteps)
	fmt.Fprintf(&b, "%4s  %6s %5s  %6s %5s  %9s  %12s  %s\n",
		"t", "T2:R(x)", "cmt", "T3:R(y)", "cmt", "T2-T3 cfl", "serializable", "conflict objects")
	for _, row := range r.Rows {
		c2, c3 := "C", "C"
		if !row.T2Committed {
			c2 = "-"
		}
		if !row.T3Committed {
			c3 = "-"
		}
		objs := strings.Join(dedup(row.ConflictObjs), ",")
		fmt.Fprintf(&b, "%4d  %7d %5s  %6d %5s  %9d  %12v  %s\n",
			row.T, row.T2Read, c2, row.T3Read, c3, row.T2T3Conflicts, row.Serializable, objs)
	}
	fmt.Fprintf(&b, "critical step s = %d; blocked = %v; DAP-violating suspension points: %v\n",
		r.CriticalStep, r.Blocked, r.DAPViolationPoints)
	return b.String()
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
