package adversary

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// RunFig1 regenerates the paper's Figure 1: the two-level view of an
// execution, where a process's high-level operation (here: a "move"
// that increments x and decrements y inside one transaction) is
// implemented by a sequence of operations on base objects. The returned
// history contains both levels; render it with trace.Render.
//
// A second process performs a read of x afterwards, so the figure also
// shows that the first process's base-object steps are visible to
// others while its high-level events are local (§2.1).
func RunFig1(factory EngineFactory) (*model.History, func(model.ObjID) string) {
	env := sim.New()
	tm := core.Recorded(factory(env), env.Recorder())
	x := tm.NewVar("x", 5)
	y := tm.NewVar("y", 5)

	env.Spawn(func(p *sim.Proc) { // p1: the move operation
		_ = core.Run(tm, p, func(tx core.Tx) error {
			vx, err := tx.Read(x)
			if err != nil {
				return err
			}
			if err := tx.Write(x, vx+1); err != nil {
				return err
			}
			vy, err := tx.Read(y)
			if err != nil {
				return err
			}
			return tx.Write(y, vy-1)
		}, core.MaxAttempts(5))
	})
	env.Spawn(func(p *sim.Proc) { // p2: observes the committed state
		_ = core.Run(tm, p, func(tx core.Tx) error {
			_, err := tx.Read(x)
			return err
		}, core.MaxAttempts(5))
	})
	h := env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: -1},
		sim.Phase{Proc: 2, Steps: -1},
	))
	return h, env.ObjName
}
