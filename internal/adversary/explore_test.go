package adversary

import (
	"fmt"
	"testing"

	"repro/internal/alg2"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
)

// incrementSystem builds a system of n processes each running one
// increment transaction on a shared variable over the given engine.
func incrementSystem(mk EngineFactory, n int) SystemFactory {
	return func(env *sim.Env) {
		tm := core.Recorded(mk(env), env.Recorder())
		x := tm.NewVar("x", 0)
		for i := 0; i < n; i++ {
			env.Spawn(func(p *sim.Proc) {
				_ = core.Run(tm, p, func(tx core.Tx) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v+1)
				}, core.MaxAttempts(20))
			})
		}
	}
}

// opacityCheck verifies well-formedness, opacity and (for OF engines)
// obstruction-freedom of one explored history.
func opacityCheck(of bool) func(h *model.History, env *sim.Env) error {
	return func(h *model.History, env *sim.Env) error {
		if err := h.WellFormed(); err != nil {
			return err
		}
		txs := model.Transactions(h)
		if len(txs) <= checker.ExactLimit {
			if res := checker.CheckOpacity(txs, nil); !res.OK {
				return fmt.Errorf("%s", res.Reason)
			}
		}
		if of {
			if v := checker.CheckObstructionFree(h); len(v) != 0 {
				return fmt.Errorf("obstruction-freedom: %v", v)
			}
		}
		return nil
	}
}

// TestExhaustiveDSTM explores EVERY schedule (including crash-at-cutoff
// schedules) of two increment transactions on DSTM up to depth 12 and
// checks opacity plus obstruction-freedom on each.
func TestExhaustiveDSTM(t *testing.T) {
	rep := ExploreAll(
		incrementSystem(func(env *sim.Env) core.TM { return dstm.New(dstm.WithEnv(env)) }, 2),
		12, opacityCheck(true))
	if rep.FirstViolation != nil {
		t.Fatal(rep.FirstViolation)
	}
	if rep.Schedules < 100 {
		t.Fatalf("suspiciously few schedules explored: %d", rep.Schedules)
	}
	t.Logf("dstm: %d schedules exhaustively checked", rep.Schedules)
}

// TestExhaustiveNZTM does the same for the zero-indirection engine —
// the engine whose early bug was exactly a schedule-dependent
// laundering of aborted writes.
func TestExhaustiveNZTM(t *testing.T) {
	rep := ExploreAll(
		incrementSystem(func(env *sim.Env) core.TM { return nztm.New(nztm.WithEnv(env)) }, 2),
		12, opacityCheck(true))
	if rep.FirstViolation != nil {
		t.Fatal(rep.FirstViolation)
	}
	t.Logf("nztm: %d schedules exhaustively checked", rep.Schedules)
}

// TestExhaustiveAlg2 explores the paper's Algorithm 2 (shallower: its
// transactions take more steps).
func TestExhaustiveAlg2(t *testing.T) {
	rep := ExploreAll(
		incrementSystem(func(env *sim.Env) core.TM { return alg2.New(alg2.WithEnv(env)) }, 2),
		10, opacityCheck(true))
	if rep.FirstViolation != nil {
		t.Fatal(rep.FirstViolation)
	}
	t.Logf("alg2: %d schedules exhaustively checked", rep.Schedules)
}

// TestExhaustiveThreeProcsDSTM: three processes, shallower bound (the
// tree is 3^depth).
func TestExhaustiveThreeProcsDSTM(t *testing.T) {
	rep := ExploreAll(
		incrementSystem(func(env *sim.Env) core.TM { return dstm.New(dstm.WithEnv(env)) }, 3),
		8, opacityCheck(true))
	if rep.FirstViolation != nil {
		t.Fatal(rep.FirstViolation)
	}
	t.Logf("dstm/3procs: %d schedules exhaustively checked", rep.Schedules)
}

// TestExploreDetectsInjectedBug: sanity — the explorer must catch a
// deliberately broken check.
func TestExploreDetectsInjectedBug(t *testing.T) {
	calls := 0
	rep := ExploreAll(
		incrementSystem(func(env *sim.Env) core.TM { return dstm.New(dstm.WithEnv(env)) }, 2),
		4,
		func(h *model.History, env *sim.Env) error {
			calls++
			if calls == 3 {
				return fmt.Errorf("injected")
			}
			return nil
		})
	if rep.FirstViolation == nil {
		t.Fatal("injected failure not reported")
	}
}
