package adversary

import (
	"fmt"

	"repro/internal/base"
	"repro/internal/focons"
	"repro/internal/model"
	"repro/internal/sim"
)

// ExhaustiveTwoConsReport is the outcome of checking the 2-process
// consensus construction (focons.TwoConsensus) under *every* schedule
// prefix of a given depth, each completed by running p1 solo to
// completion and then p2 (so every run terminates).
type ExhaustiveTwoConsReport struct {
	Depth      int
	Schedules  int
	Violations []string
}

// ExhaustiveTwoCons enumerates all 2^depth schedule prefixes over the
// two processes, completes each deterministically, and verifies
// agreement and validity of the decided values. This is experiment
// E4(a): the safety half of "consensus number >= 2" checked over the
// whole bounded schedule space, with the harshest fo-consensus abort
// policy the specification permits.
func ExhaustiveTwoCons(depth int) ExhaustiveTwoConsReport {
	rep := ExhaustiveTwoConsReport{Depth: depth}
	prefix := make([]model.ProcID, depth)
	var rec func(i int)
	rec = func(i int) {
		if i == depth {
			rep.Schedules++
			d0, d1, truncated := runTwoConsOnce(prefix)
			switch {
			case truncated:
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("schedule %v: did not terminate", prefix))
			case d0 != d1:
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("schedule %v: agreement violated (%d vs %d)", prefix, d0, d1))
			case d0 != 100 && d0 != 200:
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("schedule %v: validity violated (%d)", prefix, d0))
			}
			return
		}
		for p := model.ProcID(1); p <= 2; p++ {
			prefix[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return rep
}

func runTwoConsOnce(prefix []model.ProcID) (d0, d1 uint64, truncated bool) {
	env := sim.New()
	env.MaxSteps = int64(len(prefix)) + 4096
	f := base.NewFoCons(env, "F", base.AbortOnContention, 0)
	c := focons.NewTwoConsensus(env, f)
	env.Spawn(func(p *sim.Proc) { d0 = c.Decide(p, 0, 100) })
	env.Spawn(func(p *sim.Proc) { d1 = c.Decide(p, 1, 200) })
	env.Run(sim.Choices(append([]model.ProcID(nil), prefix...), sim.Script(
		sim.Phase{Proc: 1, Steps: -1},
		sim.Phase{Proc: 2, Steps: -1},
	)))
	return d0, d1, env.Truncated
}
