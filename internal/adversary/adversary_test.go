package adversary

import (
	"strings"
	"testing"

	"repro/internal/alg2"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/locktm"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
)

func dstmFactory(env *sim.Env) core.TM { return dstm.New(dstm.WithEnv(env)) }
func alg2Factory(env *sim.Env) core.TM { return alg2.New(alg2.WithEnv(env)) }
func tplFactory(env *sim.Env) core.TM {
	return locktm.NewTwoPhase(locktm.WithEnv(env), locktm.WithSpinLimit(8))
}
func tl2Factory(env *sim.Env) core.TM {
	return locktm.NewGlobalClock(locktm.WithEnv(env), locktm.WithSpinLimit(8))
}

// TestFig2DSTM is experiment E5 on the reference OFTM: a critical step
// exists, T2/T3 always commit (obstruction-freedom), every suspension
// point is serializable, and the strict-DAP violation appears — on T1's
// transaction descriptor, as §1 of the paper predicts.
func TestFig2DSTM(t *testing.T) {
	rep := RunFig2(dstmFactory, 4)
	if rep.SoloSteps == 0 {
		t.Fatalf("solo run recorded no steps")
	}
	if rep.Blocked {
		t.Fatalf("an OFTM must never leave T2/T3 unable to commit")
	}
	if rep.CriticalStep < 0 {
		t.Fatalf("no critical step found: T2/T3 never observed T1's value")
	}
	for _, row := range rep.Rows {
		if !row.Serializable {
			t.Fatalf("suspension point %d not serializable", row.T)
		}
	}
	if len(rep.DAPViolationPoints) == 0 {
		t.Fatalf("Theorem 13: DSTM must exhibit a T2-T3 base-object conflict at some suspension point\n%s", rep.Format())
	}
	// The conflicting object must be T1's descriptor (status word).
	found := false
	for _, row := range rep.Rows {
		for _, o := range row.ConflictObjs {
			if strings.Contains(o, "status") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected the conflict on a transaction descriptor, got %s", rep.Format())
	}
}

// TestFig2Alg2: the register-and-fo-consensus OFTM shows the same
// theorem-mandated violation (its hot spot is the owner's State
// fo-consensus / Aborted register).
func TestFig2Alg2(t *testing.T) {
	rep := RunFig2(alg2Factory, 4)
	if rep.Blocked {
		t.Fatalf("Algorithm 2 is obstruction-free; T2/T3 must commit")
	}
	if rep.CriticalStep < 0 {
		t.Fatalf("no critical step found")
	}
	if len(rep.DAPViolationPoints) == 0 {
		t.Fatalf("Theorem 13 applies to every OFTM, including Algorithm 2\n%s", rep.Format())
	}
	for _, row := range rep.Rows {
		if !row.Serializable {
			t.Fatalf("suspension point %d not serializable", row.T)
		}
	}
}

// TestFig2TwoPhase: the strictly disjoint-access-parallel baseline shows
// ZERO T2-T3 conflicts — and pays for it by blocking: with T1 suspended
// holding locks, T2/T3 cannot commit at some suspension points.
func TestFig2TwoPhase(t *testing.T) {
	rep := RunFig2(tplFactory, 4)
	if len(rep.DAPViolationPoints) != 0 {
		t.Fatalf("two-phase locking is strictly DAP; found violations at %v\n%s",
			rep.DAPViolationPoints, rep.Format())
	}
	if !rep.Blocked {
		t.Fatalf("with T1 suspended holding locks, locking must block T2/T3 at some point\n%s", rep.Format())
	}
}

// TestFig2GlobalClock: TL2 is not strictly DAP — the global clock is a
// conflict between the disjoint T2 and T3 — but being lock-based it also
// blocks when T1 is suspended holding commit locks.
func TestFig2GlobalClock(t *testing.T) {
	rep := RunFig2(tl2Factory, 4)
	if len(rep.DAPViolationPoints) == 0 {
		t.Fatalf("TL2's global clock must conflict T2 with T3\n%s", rep.Format())
	}
	sawClock := false
	for _, row := range rep.Rows {
		for _, o := range row.ConflictObjs {
			if strings.Contains(o, "clock") {
				sawClock = true
			}
		}
	}
	if !sawClock {
		t.Errorf("expected the global clock as the conflicting object\n%s", rep.Format())
	}
}

func TestFig2FormatRenders(t *testing.T) {
	rep := RunFig2(dstmFactory, 4)
	s := rep.Format()
	if !strings.Contains(s, "critical step") || !strings.Contains(s, "dstm") {
		t.Fatalf("format output incomplete:\n%s", s)
	}
}

// TestValencyThreeProcs is experiment E4(b): for 3 processes the
// adversary sustains a bivalent (undecided, both-outcomes-reachable)
// schedule to the full depth budget, as Claim 10's induction predicts.
func TestValencyThreeProcs(t *testing.T) {
	depth := 18
	rep := ExploreValency([]uint64{0, 1, 1}, depth)
	if rep.SustainedDepth != depth {
		t.Fatalf("bivalence lost at depth %d < %d:\n%s", rep.SustainedDepth, depth, rep.Format())
	}
	if len(rep.Witness) != depth {
		t.Fatalf("witness length %d", len(rep.Witness))
	}
	if rep.Format() == "" {
		t.Fatal("empty format")
	}
}

// TestValencySoloAlwaysDecides: obstruction-freedom of the candidate —
// from the empty schedule, every process decides when run alone.
func TestValencySoloAlwaysDecides(t *testing.T) {
	inputs := []uint64{0, 1, 1}
	for i := 1; i <= 3; i++ {
		out := runRace(inputs, nil, sim.Solo(model.ProcID(i)), 4096)
		if !out.decided[i-1] {
			t.Fatalf("process %d failed to decide solo", i)
		}
		if out.value[i-1] != inputs[i-1] {
			t.Fatalf("solo decision must be own input: p%d decided %d", i, out.value[i-1])
		}
	}
}

// TestExhaustiveTwoConsensusSafety is experiment E4(a): agreement and
// validity hold in EVERY schedule of the bounded space.
func TestExhaustiveTwoConsensusSafety(t *testing.T) {
	rep := ExhaustiveTwoCons(9)
	if rep.Schedules != 1<<9 {
		t.Fatalf("explored %d schedules, want %d", rep.Schedules, 1<<9)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("safety violations found:\n%s", strings.Join(rep.Violations, "\n"))
	}
}

// TestFig2NZTM: the zero-indirection OFTM shows Theorem 13's violation
// like every OFTM; its hot spot is the suspended owner's descriptor
// (status word / undo log).
func TestFig2NZTM(t *testing.T) {
	rep := RunFig2(func(env *sim.Env) core.TM {
		return nztm.New(nztm.WithEnv(env))
	}, 4)
	if rep.Blocked {
		t.Fatalf("nztm is obstruction-free; T2/T3 must commit")
	}
	if rep.CriticalStep < 0 {
		t.Fatalf("no critical step found")
	}
	if len(rep.DAPViolationPoints) == 0 {
		t.Fatalf("Theorem 13 applies to nztm too\n%s", rep.Format())
	}
	for _, row := range rep.Rows {
		if !row.Serializable {
			t.Fatalf("suspension point %d not serializable", row.T)
		}
	}
}
