// Package model defines the formal vocabulary of the paper "On
// Obstruction-Free Transactions" (Guerraoui & Kapałka, SPAA 2008):
// processes, transactions, transactional variables, high-level operation
// events, low-level steps on base objects, and histories (§2 of the
// paper). The checker package interprets these structures to decide
// serializability (Definition 1), opacity (Appendix B), obstruction
// freedom (Definition 2) and strict disjoint-access-parallelism
// (Definition 12).
package model

import (
	"fmt"
	"sync/atomic"
)

// ProcID identifies a process p_i. Process ids are small dense integers
// starting at 1, matching the paper's p_1 ... p_n notation. ProcID 0 is
// reserved to mean "no process" (e.g. unmonitored raw-mode accesses).
type ProcID int

// String renders the id in the paper's notation, e.g. "p3".
func (p ProcID) String() string { return fmt.Sprintf("p%d", int(p)) }

// TxID identifies a transaction T_{i,k}: transaction number k executed by
// process p_i. The paper notes (footnote 3) that identifiers of this shape
// can be generated locally by combining the process id with a per-process
// counter; that is exactly what the engines in this repository do.
type TxID struct {
	Proc ProcID // process executing the transaction (pE(T))
	Seq  int    // per-process transaction counter, starting at 1
}

// NoTx is the zero TxID, used to tag steps executed outside any
// transaction (for example, test setup).
var NoTx = TxID{}

// IsZero reports whether the id is NoTx.
func (t TxID) IsZero() bool { return t == NoTx }

// String renders the id in the paper's notation, e.g. "T3.2" for the
// second transaction of process p3.
func (t TxID) String() string {
	if t.IsZero() {
		return "T?"
	}
	return fmt.Sprintf("T%d.%d", int(t.Proc), t.Seq)
}

// Handle packs the TxID into a single non-zero word so that transaction
// identifiers can be proposed to fo-consensus objects and stored in
// registers, which hold uint64 values. Handle(NoTx) == 0.
func (t TxID) Handle() uint64 {
	return uint64(t.Proc)<<32 | uint64(uint32(t.Seq))
}

// TxFromHandle reverses TxID.Handle.
func TxFromHandle(h uint64) TxID {
	if h == 0 {
		return NoTx
	}
	return TxID{Proc: ProcID(h >> 32), Seq: int(uint32(h))}
}

// VarID identifies a transactional variable (t-variable). Ids are dense
// indices assigned by each TM engine in creation order.
type VarID int

// String renders the id as "x0", "x1", ...
func (v VarID) String() string { return fmt.Sprintf("x%d", int(v)) }

// ObjID identifies a base object (a low-level shared memory location such
// as a register, CAS cell or fo-consensus object). Base objects are
// registered with the simulation environment, which assigns dense ids.
type ObjID int

// OpKind enumerates the operations of the TM external interface (§2.2):
// reading or writing a t-variable within a transaction, and requesting
// commit (tryC) or abort (tryA).
type OpKind int

const (
	OpRead OpKind = iota
	OpWrite
	OpTryCommit
	OpTryAbort
)

// String returns the paper's name for the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpTryCommit:
		return "tryC"
	case OpTryAbort:
		return "tryA"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op records one completed high-level TM operation: the invocation and
// the matching response, with global timestamps that interleave with
// low-level steps. A response of A_k (the transaction was aborted) is
// recorded by Aborted == true.
type Op struct {
	Proc    ProcID
	Tx      TxID
	Kind    OpKind
	Var     VarID  // for OpRead / OpWrite
	Arg     uint64 // value written, for OpWrite
	Ret     uint64 // value returned, for OpRead
	Aborted bool   // response was the abort event A_k
	Inv     int64  // global time of the invocation event
	Resp    int64  // global time of the response event; -1 if pending
}

// Pending reports whether the operation has an invocation but no
// response yet. Histories produced by the recorder only contain pending
// entries for operations cut off by a crash or suspension.
func (o Op) Pending() bool { return o.Resp < 0 }

// String renders the operation in the paper's figure notation, e.g.
// "T1.1 R(x0):5" or "T2.3 tryC -> A".
func (o Op) String() string {
	suffix := ""
	if o.Aborted {
		suffix = " -> A"
	}
	switch o.Kind {
	case OpRead:
		if o.Aborted {
			return fmt.Sprintf("%v R(%v)%s", o.Tx, o.Var, suffix)
		}
		return fmt.Sprintf("%v R(%v):%d", o.Tx, o.Var, o.Ret)
	case OpWrite:
		return fmt.Sprintf("%v W(%v,%d)%s", o.Tx, o.Var, o.Arg, suffix)
	case OpTryCommit:
		if o.Aborted {
			return fmt.Sprintf("%v tryC -> A", o.Tx)
		}
		if o.Pending() {
			return fmt.Sprintf("%v tryC -> ?", o.Tx)
		}
		return fmt.Sprintf("%v tryC -> C", o.Tx)
	case OpTryAbort:
		return fmt.Sprintf("%v tryA -> A", o.Tx)
	}
	return fmt.Sprintf("%v op?", o.Tx)
}

// Step records one low-level event: an operation executed on a base
// object by a process, on behalf of whatever transaction that process was
// executing at the time (NoTx if none). Steps are what Definition 2's
// step contention is about.
type Step struct {
	Proc  ProcID
	Tx    TxID
	Obj   ObjID
	Name  string // base-object operation, e.g. "read", "cas", "propose"
	Write bool   // whether the operation may modify the base object state
	Time  int64  // global time
}

// String renders the step, e.g. "p1/T1.1 cas(obj3)".
func (s Step) String() string {
	return fmt.Sprintf("%v/%v %s(obj%d)", s.Proc, s.Tx, s.Name, int(s.Obj))
}

// Clock is a shared monotonic counter producing the total order on events
// that §2.1 of the paper assumes ("all events can be totally ordered
// according to their execution time"). A single Clock is shared between
// the simulation environment (which stamps steps) and the operation
// recorder (which stamps invocation and response events).
type Clock struct{ c atomic.Int64 }

// NewClock returns a clock starting at time 1.
func NewClock() *Clock { return &Clock{} }

// Tick advances the clock and returns the new time.
func (c *Clock) Tick() int64 { return c.c.Add(1) }

// Now returns the current time without advancing.
func (c *Clock) Now() int64 { return c.c.Load() }
