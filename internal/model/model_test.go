package model

import (
	"testing"
	"testing/quick"
)

func TestTxIDHandleRoundTrip(t *testing.T) {
	cases := []TxID{
		{Proc: 1, Seq: 1},
		{Proc: 3, Seq: 42},
		{Proc: 255, Seq: 1 << 20},
	}
	for _, id := range cases {
		if got := TxFromHandle(id.Handle()); got != id {
			t.Errorf("round trip %v -> %d -> %v", id, id.Handle(), got)
		}
	}
	if TxFromHandle(0) != NoTx {
		t.Errorf("handle 0 must decode to NoTx")
	}
	if NoTx.Handle() != 0 {
		t.Errorf("NoTx must encode to 0")
	}
}

func TestTxIDHandleRoundTripQuick(t *testing.T) {
	f := func(p uint8, seq uint16) bool {
		id := TxID{Proc: ProcID(p) + 1, Seq: int(seq) + 1}
		return TxFromHandle(id.Handle()) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxIDString(t *testing.T) {
	id := TxID{Proc: 2, Seq: 7}
	if id.String() != "T2.7" {
		t.Errorf("got %q", id.String())
	}
	if ProcID(4).String() != "p4" {
		t.Errorf("got %q", ProcID(4).String())
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock()
	prev := c.Now()
	for i := 0; i < 100; i++ {
		n := c.Tick()
		if n <= prev {
			t.Fatalf("clock not monotonic: %d after %d", n, prev)
		}
		prev = n
	}
}

// buildHistory assembles a small committed history:
//
//	T1.1: W(x0,5), tryC -> C
//	T2.1: R(x0):5, tryC -> C
func buildHistory() *History {
	c := NewClock()
	r := NewRecorder(c)
	t1 := TxID{Proc: 1, Seq: 1}
	t2 := TxID{Proc: 2, Seq: 1}

	inv := r.Invoke(1)
	r.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpWrite, Var: 0, Arg: 5})
	inv = r.Invoke(1)
	r.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpTryCommit})

	inv = r.Invoke(2)
	r.Respond(inv, Op{Proc: 2, Tx: t2, Kind: OpRead, Var: 0, Ret: 5})
	inv = r.Invoke(2)
	r.Respond(inv, Op{Proc: 2, Tx: t2, Kind: OpTryCommit})
	return r.History()
}

func TestRecorderAndTransactions(t *testing.T) {
	h := buildHistory()
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
	txs := Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("want 2 transactions, got %d", len(txs))
	}
	t1, t2 := txs[0], txs[1]
	if t1.Status != Committed || t2.Status != Committed {
		t.Fatalf("statuses: %v %v", t1.Status, t2.Status)
	}
	if t1.Writes[0] != 5 {
		t.Errorf("t1 writes: %v", t1.Writes)
	}
	if len(t2.Reads) != 1 || t2.Reads[0].Val != 5 {
		t.Errorf("t2 reads: %v", t2.Reads)
	}
	if !Precedes(t1, t2) {
		t.Errorf("t1 should precede t2 in real time")
	}
	if Precedes(t2, t1) {
		t.Errorf("t2 must not precede t1")
	}
}

func TestLegality(t *testing.T) {
	h := buildHistory()
	txs := Transactions(h)
	if !Legal(txs, nil) {
		t.Errorf("T1 then T2 should be legal")
	}
	if Legal([]*TxView{txs[1], txs[0]}, nil) {
		t.Errorf("T2 before T1 reads 5 from initial state; must be illegal")
	}
	if Legal([]*TxView{txs[1]}, nil) {
		t.Errorf("T2 alone must be illegal (reads 5, initial is 0)")
	}
	if Legal([]*TxView{txs[1]}, map[VarID]uint64{0: 5}) == false {
		t.Errorf("T2 alone with init x0=5 should be legal")
	}
}

func TestReadsLegalLocalOverlay(t *testing.T) {
	// A transaction that writes then reads its own value must be legal
	// regardless of the shared state.
	tx := TxID{Proc: 1, Seq: 1}
	tv := &TxView{
		ID:     tx,
		Writes: map[VarID]uint64{0: 9},
		Ops: []Op{
			{Tx: tx, Kind: OpWrite, Var: 0, Arg: 9, Inv: 1, Resp: 2},
			{Tx: tx, Kind: OpRead, Var: 0, Ret: 9, Inv: 3, Resp: 4},
		},
	}
	if !ReadsLegal(tv, NewVarState(nil)) {
		t.Errorf("read-own-write must be legal")
	}
	tv.Ops[1].Ret = 7
	if ReadsLegal(tv, NewVarState(nil)) {
		t.Errorf("read-own-write returning a different value must be illegal")
	}
}

func TestForcedAbortDetection(t *testing.T) {
	c := NewClock()
	r := NewRecorder(c)
	t1 := TxID{Proc: 1, Seq: 1}
	t2 := TxID{Proc: 2, Seq: 1}
	// T1 aborted without tryA: forceful. T2 invokes tryA: not forceful.
	inv := r.Invoke(1)
	r.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpRead, Var: 0, Aborted: true})
	inv = r.Invoke(2)
	r.Respond(inv, Op{Proc: 2, Tx: t2, Kind: OpTryAbort, Aborted: true})
	txs := Transactions(r.History())
	byID := map[TxID]*TxView{}
	for _, tv := range txs {
		byID[tv.ID] = tv
	}
	if !byID[t1].ForcedAbort {
		t.Errorf("T1 must be forcefully aborted")
	}
	if byID[t2].ForcedAbort {
		t.Errorf("T2 invoked tryA; not forceful")
	}
	if byID[t1].Status != Aborted || byID[t2].Status != Aborted {
		t.Errorf("both must be aborted")
	}
}

func TestCommitPending(t *testing.T) {
	c := NewClock()
	r := NewRecorder(c)
	t1 := TxID{Proc: 1, Seq: 1}
	inv := r.Invoke(1)
	r.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpWrite, Var: 0, Arg: 1})
	inv = r.Invoke(1)
	r.Cut(inv, Op{Proc: 1, Tx: t1, Kind: OpTryCommit})
	txs := Transactions(r.History())
	if len(txs) != 1 {
		t.Fatalf("want 1 tx")
	}
	if !txs[0].CommitPending {
		t.Errorf("tryC with no response must be commit-pending")
	}
	if txs[0].Status != Live {
		t.Errorf("commit-pending transaction is live until completed, got %v", txs[0].Status)
	}
}

func TestWellFormednessViolations(t *testing.T) {
	c := NewClock()
	r := NewRecorder(c)
	t1 := TxID{Proc: 1, Seq: 1}
	// A step outside any operation is ill-formed.
	r.RecordStep(Step{Proc: 1, Tx: t1, Obj: 0, Name: "read"})
	h := r.History()
	if err := h.WellFormed(); err == nil {
		t.Errorf("step outside operation must be ill-formed")
	}

	// Steps inside an operation are fine.
	c2 := NewClock()
	r2 := NewRecorder(c2)
	inv := r2.Invoke(1)
	r2.RecordStep(Step{Proc: 1, Tx: t1, Obj: 0, Name: "read"})
	r2.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpRead, Var: 0, Ret: 0})
	if err := r2.History().WellFormed(); err != nil {
		t.Errorf("step inside operation: %v", err)
	}

	// An operation after completion is ill-formed.
	c3 := NewClock()
	r3 := NewRecorder(c3)
	inv = r3.Invoke(1)
	r3.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpTryCommit})
	inv = r3.Invoke(1)
	r3.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpRead, Var: 0})
	if err := r3.History().WellFormed(); err == nil {
		t.Errorf("operation after commit must be ill-formed")
	}

	// A transaction executed by two processes is ill-formed.
	c4 := NewClock()
	r4 := NewRecorder(c4)
	inv = r4.Invoke(1)
	r4.Respond(inv, Op{Proc: 1, Tx: t1, Kind: OpRead, Var: 0})
	inv = r4.Invoke(2)
	r4.Respond(inv, Op{Proc: 2, Tx: t1, Kind: OpRead, Var: 0})
	if err := r4.History().WellFormed(); err == nil {
		t.Errorf("transaction at two processes must be ill-formed")
	}
}

func TestHistoryStringAndAccessors(t *testing.T) {
	h := buildHistory()
	if s := h.String(); s == "" {
		t.Errorf("empty rendering")
	}
	t1 := TxID{Proc: 1, Seq: 1}
	ops := h.OpsOf(t1)
	if len(ops) != 2 {
		t.Errorf("T1 has 2 ops, got %d", len(ops))
	}
	if got := len(h.StepsOf(1)); got != 0 {
		t.Errorf("no steps recorded, got %d", got)
	}
}

func TestOpString(t *testing.T) {
	tx := TxID{Proc: 1, Seq: 1}
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Tx: tx, Kind: OpRead, Var: 0, Ret: 5, Resp: 1}, "T1.1 R(x0):5"},
		{Op{Tx: tx, Kind: OpWrite, Var: 1, Arg: 3, Resp: 1}, "T1.1 W(x1,3)"},
		{Op{Tx: tx, Kind: OpTryCommit, Resp: 1}, "T1.1 tryC -> C"},
		{Op{Tx: tx, Kind: OpTryCommit, Aborted: true, Resp: 1}, "T1.1 tryC -> A"},
		{Op{Tx: tx, Kind: OpTryAbort, Aborted: true, Resp: 1}, "T1.1 tryA -> A"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestVarSetAndStepsBetween(t *testing.T) {
	h := buildHistory()
	txs := Transactions(h)
	vs := txs[0].VarSet()
	if !vs[0] || len(vs) != 1 {
		t.Errorf("T1 var set: %v", vs)
	}
	c := NewClock()
	r := NewRecorder(c)
	inv := r.Invoke(1)
	r.RecordStep(Step{Proc: 1, Obj: 3, Name: "cas", Write: true})
	r.RecordStep(Step{Proc: 2, Obj: 3, Name: "read"})
	r.Respond(inv, Op{Proc: 1, Tx: TxID{Proc: 1, Seq: 1}, Kind: OpTryCommit})
	hh := r.History()
	all := hh.StepsBetween(0, 1<<60, nil)
	if len(all) != 2 {
		t.Fatalf("want 2 steps, got %d", len(all))
	}
	only2 := hh.StepsBetween(0, 1<<60, func(p ProcID) bool { return p == 2 })
	if len(only2) != 1 || only2[0].Proc != 2 {
		t.Errorf("filter by proc: %v", only2)
	}
}
