package model

import "sort"

// Status is the completion status of a transaction in a history (§2.2).
type Status int

const (
	Live Status = iota
	Committed
	Aborted
)

// String returns "live", "committed" or "aborted".
func (s Status) String() string {
	switch s {
	case Live:
		return "live"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return "status?"
}

// ReadObs is one observed read: transaction read Val from Var. Reads that
// were served from the transaction's own earlier write (local reads) are
// flagged so legality checks can skip them.
type ReadObs struct {
	Var   VarID
	Val   uint64
	Local bool
}

// TxView is the derived per-transaction summary of a history used by the
// checkers: its operations, status, read observations and final writes.
type TxView struct {
	ID     TxID
	Proc   ProcID
	Status Status
	// ForcedAbort reports that the transaction is forcefully aborted in
	// the paper's sense: it received an abort event without ever invoking
	// tryA (§2.2). Obstruction-freedom constrains exactly these.
	ForcedAbort bool
	// CommitPending reports that tryC was invoked but no response was
	// recorded; such a transaction may be credited as committed by a
	// commit-completion of the history (Definition 1).
	CommitPending bool
	Ops           []Op
	Reads         []ReadObs
	// Writes holds the transaction's final write per variable (the value
	// that becomes visible if it commits).
	Writes map[VarID]uint64
	// WriteOrder lists written variables in first-write order, for
	// deterministic iteration.
	WriteOrder []VarID
	// First is the time of the transaction's first event; End the time of
	// its commit/abort event (or the last recorded event if live).
	First, End int64
}

// VarSet returns the set of t-variables accessed (read or written).
func (t *TxView) VarSet() map[VarID]bool {
	s := map[VarID]bool{}
	for _, r := range t.Reads {
		s[r.Var] = true
	}
	for v := range t.Writes {
		s[v] = true
	}
	return s
}

// Transactions derives the TxView for every transaction appearing in the
// history, ordered by first event time.
func Transactions(h *History) []*TxView {
	byTx := map[TxID]*TxView{}
	var order []TxID
	for _, o := range h.Ops {
		tv, ok := byTx[o.Tx]
		if !ok {
			tv = &TxView{ID: o.Tx, Proc: o.Proc, Writes: map[VarID]uint64{}, First: o.Inv, End: o.Inv}
			byTx[o.Tx] = tv
			order = append(order, o.Tx)
		}
		tv.Ops = append(tv.Ops, o)
		if o.Inv < tv.First {
			tv.First = o.Inv
		}
		end := o.Resp
		if o.Pending() {
			end = o.Inv
		}
		if end > tv.End {
			tv.End = end
		}
	}
	for _, id := range order {
		tv := byTx[id]
		sort.Slice(tv.Ops, func(i, j int) bool { return tv.Ops[i].Inv < tv.Ops[j].Inv })
		local := map[VarID]bool{}
		invokedTryA := false
		for _, o := range tv.Ops {
			switch o.Kind {
			case OpRead:
				if !o.Aborted && !o.Pending() {
					tv.Reads = append(tv.Reads, ReadObs{Var: o.Var, Val: o.Ret, Local: local[o.Var]})
				}
			case OpWrite:
				if !o.Aborted && !o.Pending() {
					if _, seen := tv.Writes[o.Var]; !seen {
						tv.WriteOrder = append(tv.WriteOrder, o.Var)
					}
					tv.Writes[o.Var] = o.Arg
					local[o.Var] = true
				}
			case OpTryAbort:
				invokedTryA = true
			}
			if o.Aborted && !o.Pending() {
				tv.Status = Aborted
				tv.End = o.Resp
			}
			if o.Kind == OpTryCommit {
				switch {
				case o.Pending():
					tv.CommitPending = true
				case !o.Aborted:
					tv.Status = Committed
					tv.End = o.Resp
				}
			}
		}
		tv.ForcedAbort = tv.Status == Aborted && !invokedTryA
		if tv.Status == Live && !tv.CommitPending {
			// Live transaction: keep zero-value Live status.
			_ = tv
		}
	}
	out := make([]*TxView, 0, len(order))
	for _, id := range order {
		out = append(out, byTx[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].First < out[j].First })
	return out
}

// Precedes reports whether a precedes b in the history's real-time order:
// a is completed and a's last event precedes b's first event (§2.2).
func Precedes(a, b *TxView) bool {
	return (a.Status == Committed || a.Status == Aborted) && a.End < b.First
}

// VarState is the evolving state of the t-variables during a sequential
// replay, used by legality checks. Missing variables hold their initial
// value as given by Init (zero by default).
type VarState struct {
	Init map[VarID]uint64
	Cur  map[VarID]uint64
}

// NewVarState returns a state with the given initial values (may be nil).
func NewVarState(init map[VarID]uint64) *VarState {
	return &VarState{Init: init, Cur: map[VarID]uint64{}}
}

// Get returns the current value of v.
func (s *VarState) Get(v VarID) uint64 {
	if val, ok := s.Cur[v]; ok {
		return val
	}
	if s.Init != nil {
		return s.Init[v]
	}
	return 0
}

// Apply installs the final writes of a committed transaction.
func (s *VarState) Apply(t *TxView) {
	for v, val := range t.Writes {
		s.Cur[v] = val
	}
}

// Clone returns an independent copy of the state.
func (s *VarState) Clone() *VarState {
	c := NewVarState(s.Init)
	for k, v := range s.Cur {
		c.Cur[k] = v
	}
	return c
}

// ReadsLegal reports whether every non-local read of t would be legal if
// t executed atomically against state s (its own prior writes shadow the
// shared state; the recorder marks those reads Local already, but a read
// after a write within the transaction is also resolved here from the
// transaction's op order for engines that do not flag local reads).
func ReadsLegal(t *TxView, s *VarState) bool {
	overlay := map[VarID]uint64{}
	for _, o := range t.Ops {
		switch o.Kind {
		case OpRead:
			if o.Aborted || o.Pending() {
				continue
			}
			want, ok := overlay[o.Var]
			if !ok {
				want = s.Get(o.Var)
			}
			if o.Ret != want {
				return false
			}
		case OpWrite:
			if o.Aborted || o.Pending() {
				continue
			}
			overlay[o.Var] = o.Arg
		}
	}
	return true
}

// Legal reports whether the given sequential order of transactions is
// legal (every read returns the value written by the last preceding
// committed write, or the initial value): the paper's legality of a
// sequential history S. All transactions in order are treated as
// committed.
func Legal(order []*TxView, init map[VarID]uint64) bool {
	s := NewVarState(init)
	for _, t := range order {
		if !ReadsLegal(t, s) {
			return false
		}
		s.Apply(t)
	}
	return true
}
