package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// History is a low-level history in the sense of §2.1: the sequence of
// all high-level TM operation events and all steps on base objects, in a
// single total order given by their timestamps. Ops and Steps are each
// kept in time order; merging by Time yields the full sequence E, and
// Ops alone is the corresponding high-level history E|H.
type History struct {
	Ops   []Op
	Steps []Step
}

// OpsOf returns the subsequence H|T of operations of one transaction.
func (h *History) OpsOf(tx TxID) []Op {
	var out []Op
	for _, o := range h.Ops {
		if o.Tx == tx {
			out = append(out, o)
		}
	}
	return out
}

// StepsOf returns the steps executed by one process, in order.
func (h *History) StepsOf(p ProcID) []Step {
	var out []Step
	for _, s := range h.Steps {
		if s.Proc == p {
			out = append(out, s)
		}
	}
	return out
}

// StepsBetween returns the steps with from < Time < to, by any process in
// procs (or by any process at all if procs is nil).
func (h *History) StepsBetween(from, to int64, procs func(ProcID) bool) []Step {
	var out []Step
	for _, s := range h.Steps {
		if s.Time > from && s.Time < to && (procs == nil || procs(s.Proc)) {
			out = append(out, s)
		}
	}
	return out
}

// String renders the merged history, one event per line, for debugging
// and for the trace renderer.
func (h *History) String() string {
	type line struct {
		t int64
		s string
	}
	var lines []line
	for _, o := range h.Ops {
		lines = append(lines, line{o.Inv, fmt.Sprintf("inv  %v", o)})
		if !o.Pending() {
			lines = append(lines, line{o.Resp, fmt.Sprintf("resp %v", o)})
		}
	}
	for _, s := range h.Steps {
		lines = append(lines, line{s.Time, fmt.Sprintf("step %v", s)})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].t < lines[j].t })
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%4d %s\n", l.t, l.s)
	}
	return b.String()
}

// WellFormedness violations are reported as errors by History.WellFormed.
//
// A high-level history is well-formed if at each process operations do
// not overlap (invocation, response, invocation, response, ...), and a
// low-level history additionally requires that steps only occur between
// an invocation and its matching response (§2.1).
func (h *History) WellFormed() error {
	// Per process, merge that process's op events and steps and check the
	// alternation discipline.
	type ev struct {
		t      int64
		isStep bool
		inv    bool // for op events: invocation (true) or response (false)
		op     Op
	}
	byProc := map[ProcID][]ev{}
	for _, o := range h.Ops {
		byProc[o.Proc] = append(byProc[o.Proc], ev{t: o.Inv, inv: true, op: o})
		if !o.Pending() {
			byProc[o.Proc] = append(byProc[o.Proc], ev{t: o.Resp, inv: false, op: o})
		}
	}
	for _, s := range h.Steps {
		byProc[s.Proc] = append(byProc[s.Proc], ev{t: s.Time, isStep: true})
	}
	for p, evs := range byProc {
		sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		open := false
		for _, e := range evs {
			switch {
			case e.isStep:
				if !open {
					return fmt.Errorf("model: process %v executes a step outside any high-level operation at t=%d", p, e.t)
				}
			case e.inv:
				if open {
					return fmt.Errorf("model: process %v invokes %v while another operation is pending", p, e.op)
				}
				open = true
			default:
				if !open {
					return fmt.Errorf("model: process %v responds %v without invocation", p, e.op)
				}
				open = false
			}
		}
	}
	// No two operations of the same transaction may overlap, and a
	// transaction executes at a single process.
	procOf := map[TxID]ProcID{}
	for _, o := range h.Ops {
		if prev, ok := procOf[o.Tx]; ok && prev != o.Proc {
			return fmt.Errorf("model: transaction %v executed by both %v and %v", o.Tx, prev, o.Proc)
		}
		procOf[o.Tx] = o.Proc
	}
	// Completed transactions take no further actions.
	done := map[TxID]int64{}
	for _, o := range h.Ops {
		if o.Pending() {
			continue
		}
		if o.Kind == OpTryCommit && !o.Aborted || o.Aborted {
			if prev, ok := done[o.Tx]; !ok || o.Resp < prev {
				done[o.Tx] = o.Resp
			}
		}
	}
	for _, o := range h.Ops {
		if end, ok := done[o.Tx]; ok && o.Inv > end {
			return fmt.Errorf("model: transaction %v issues %v after completing at t=%d", o.Tx, o, end)
		}
	}
	return nil
}

// Recorder collects a History from a running system. It is safe for
// concurrent use: engines running in raw (non-simulated) mode record
// from many goroutines. The recorder shares a Clock with the simulation
// environment so that operation events and steps are totally ordered.
type Recorder struct {
	mu    sync.Mutex
	clock *Clock
	hist  History
	// pending invocation times for in-flight operations keyed by (proc).
	inflight map[ProcID]int64
}

// NewRecorder returns a recorder stamping events with the given clock.
func NewRecorder(clock *Clock) *Recorder {
	return &Recorder{clock: clock, inflight: map[ProcID]int64{}}
}

// Clock returns the recorder's clock.
func (r *Recorder) Clock() *Clock { return r.clock }

// Invoke stamps and registers the invocation of a high-level operation
// by proc. It returns the invocation time to be passed to Respond.
func (r *Recorder) Invoke(proc ProcID) int64 {
	t := r.clock.Tick()
	r.mu.Lock()
	r.inflight[proc] = t
	r.mu.Unlock()
	return t
}

// Respond stamps the response and appends the completed operation.
func (r *Recorder) Respond(inv int64, op Op) {
	op.Inv = inv
	op.Resp = r.clock.Tick()
	r.mu.Lock()
	delete(r.inflight, op.Proc)
	r.hist.Ops = append(r.hist.Ops, op)
	r.mu.Unlock()
}

// Cut records an operation that was invoked but will never respond (the
// process crashed or the run was stopped): a pending operation.
func (r *Recorder) Cut(inv int64, op Op) {
	op.Inv = inv
	op.Resp = -1
	r.mu.Lock()
	delete(r.inflight, op.Proc)
	r.hist.Ops = append(r.hist.Ops, op)
	r.mu.Unlock()
}

// RecordStep appends a low-level step, stamping it with the clock.
func (r *Recorder) RecordStep(s Step) {
	s.Time = r.clock.Tick()
	r.mu.Lock()
	r.hist.Steps = append(r.hist.Steps, s)
	r.mu.Unlock()
}

// History returns a snapshot of the recorded history with Ops and Steps
// sorted by time.
func (r *Recorder) History() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &History{
		Ops:   append([]Op(nil), r.hist.Ops...),
		Steps: append([]Step(nil), r.hist.Steps...),
	}
	sort.Slice(out.Ops, func(i, j int) bool { return out.Ops[i].Inv < out.Ops[j].Inv })
	sort.Slice(out.Steps, func(i, j int) bool { return out.Steps[i].Time < out.Steps[j].Time })
	return out
}
