package locktm

import (
	"sort"

	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// GlobalClock is a TL2-style deferred-update STM with a global version
// clock. Reads are invisible and validated against the clock value
// sampled at begin; writes are buffered and applied under per-variable
// locks at commit, stamped with a freshly incremented clock value.
//
// The paper singles this design out in §1: "every transaction has to
// access a common memory location to determine its timestamp" — so the
// engine is *not* strictly disjoint-access-parallel even for entirely
// unrelated transactions. Experiment E7 measures exactly this: the
// clock word shows up as the conflicting base object between
// t-variable-disjoint transactions.
type GlobalClock struct {
	vars  varTable
	ids   *txnIDs
	clock *base.U64
	spin  int
}

// NewGlobalClock returns a TL2-style STM.
func NewGlobalClock(opts ...Option) *GlobalClock {
	cfg := buildConfig(opts)
	return &GlobalClock{
		vars:  varTable{env: cfg.env, withVer: true},
		ids:   newTxnIDs(),
		clock: base.NewU64(cfg.env, "globalclock", 0),
		spin:  cfg.spinLimit,
	}
}

// Name implements core.TM.
func (tm *GlobalClock) Name() string { return "tl2" }

// ObstructionFree implements core.TM.
func (tm *GlobalClock) ObstructionFree() bool { return false }

// NewVar implements core.TM.
func (tm *GlobalClock) NewVar(name string, init uint64) core.Var {
	return tm.vars.newVar(name, init)
}

// Begin implements core.TM.
func (tm *GlobalClock) Begin(p *sim.Proc) core.Tx {
	id := tm.ids.take(p)
	p.SetTx(id)
	return &gcTx{tm: tm, p: p, id: id, wset: map[*tvar]uint64{}, rset: map[*tvar]bool{}}
}

type gcTx struct {
	tm     *GlobalClock
	p      *sim.Proc
	id     model.TxID
	status model.Status
	rv     uint64 // read version: clock sampled at first operation
	rvSet  bool
	rset   map[*tvar]bool
	wset   map[*tvar]uint64
}

func (t *gcTx) ID() model.TxID       { return t.id }
func (t *gcTx) Status() model.Status { return t.status }

// readVersion lazily samples the global clock. Sampling at the first
// operation (rather than at Begin) keeps the shared access inside a
// high-level operation, as the paper's model requires; it is the shared
// access every transaction performs, which is what makes the engine not
// strictly disjoint-access-parallel.
func (t *gcTx) readVersion() uint64 {
	if !t.rvSet {
		t.rv = t.tm.clock.Read(t.p)
		t.rvSet = true
	}
	return t.rv
}

func (t *gcTx) abortSelf() error {
	t.status = model.Aborted
	t.p.SetTx(model.NoTx)
	return core.ErrAborted
}

func (t *gcTx) Read(v core.Var) (uint64, error) {
	if t.status != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustTvar(&t.tm.vars, v)
	if val, ok := t.wset[tv]; ok {
		return val, nil
	}
	// The read version MUST be sampled before the variable is examined:
	// a version observed as <= rv then proves the value predates every
	// commit after the sample. (Sampling after the value read is the
	// classic TL2 correctness bug — caught by the safety campaign.)
	rv := t.readVersion()
	// TL2 read protocol: sample version+lock, read value, re-validate.
	if tv.lock.Read(t.p) != 0 {
		return 0, t.abortSelf()
	}
	v1 := tv.ver.Read(t.p)
	val := tv.val.Read(t.p)
	if tv.lock.Read(t.p) != 0 || tv.ver.Read(t.p) != v1 || v1 > rv {
		return 0, t.abortSelf()
	}
	t.rset[tv] = true
	return val, nil
}

func (t *gcTx) Write(v core.Var, val uint64) error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	t.wset[mustTvar(&t.tm.vars, v)] = val
	return nil
}

func (t *gcTx) Commit() error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	if len(t.wset) == 0 {
		// Read-only transactions validated every read against rv.
		t.status = model.Committed
		t.p.SetTx(model.NoTx)
		return nil
	}
	// Lock the write set in id order (deadlock avoidance), bounded spin.
	locked := make([]*tvar, 0, len(t.wset))
	ordered := make([]*tvar, 0, len(t.wset))
	for tv := range t.wset {
		ordered = append(ordered, tv)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	unlock := func() {
		for _, tv := range locked {
			tv.lock.Write(t.p, 0)
		}
	}
	for _, tv := range ordered {
		if !spinLock(t.p, tv.lock, t.id.Handle(), t.tm.spin) {
			unlock()
			return t.abortSelf()
		}
		locked = append(locked, tv)
	}
	// Increment the global clock: the write that makes every committing
	// writer conflict with every concurrent transaction's begin-read.
	wv := t.tm.clock.Add(t.p, 1)
	// Validate the read set.
	for tv := range t.rset {
		if _, mine := t.wset[tv]; !mine {
			if tv.lock.Read(t.p) != 0 {
				unlock()
				return t.abortSelf()
			}
		}
		if tv.ver.Read(t.p) > t.readVersion() {
			unlock()
			return t.abortSelf()
		}
	}
	// Write back and stamp.
	for _, tv := range ordered {
		tv.val.Write(t.p, t.wset[tv])
		tv.ver.Write(t.p, wv)
	}
	unlock()
	t.status = model.Committed
	t.p.SetTx(model.NoTx)
	return nil
}

func (t *gcTx) Abort() {
	if t.status != model.Live {
		return
	}
	t.status = model.Aborted
	t.p.SetTx(model.NoTx)
}
