package locktm

import (
	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Coarse serializes every transaction behind one global lock — the
// "coarse-grained locking" the paper's introduction says transactions
// are as easy to use as. It is trivially serializable and trivially not
// scalable; the throughput benchmarks use it as the floor.
type Coarse struct {
	vars varTable
	ids  *txnIDs
	lock *base.U64
	spin int
}

// NewCoarse returns a global-lock STM.
func NewCoarse(opts ...Option) *Coarse {
	cfg := buildConfig(opts)
	return &Coarse{
		vars: varTable{env: cfg.env},
		ids:  newTxnIDs(),
		lock: base.NewU64(cfg.env, "globallock", 0),
		spin: cfg.spinLimit,
	}
}

// Name implements core.TM.
func (tm *Coarse) Name() string { return "coarse" }

// ObstructionFree implements core.TM.
func (tm *Coarse) ObstructionFree() bool { return false }

// NewVar implements core.TM.
func (tm *Coarse) NewVar(name string, init uint64) core.Var {
	return tm.vars.newVar(name, init)
}

// Begin implements core.TM. The global lock is taken lazily by the
// first operation so that Begin itself cannot block.
func (tm *Coarse) Begin(p *sim.Proc) core.Tx {
	id := tm.ids.take(p)
	p.SetTx(id)
	return &coarseTx{tm: tm, p: p, id: id, undo: map[*tvar]uint64{}}
}

type coarseTx struct {
	tm     *Coarse
	p      *sim.Proc
	id     model.TxID
	status model.Status
	held   bool
	undo   map[*tvar]uint64
}

func (t *coarseTx) ID() model.TxID       { return t.id }
func (t *coarseTx) Status() model.Status { return t.status }

func (t *coarseTx) enter() error {
	if t.held {
		return nil
	}
	if !spinLock(t.p, t.tm.lock, t.id.Handle(), t.tm.spin) {
		t.status = model.Aborted
		t.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	t.held = true
	return nil
}

func (t *coarseTx) leave() {
	if t.held {
		t.tm.lock.Write(t.p, 0)
		t.held = false
	}
	t.p.SetTx(model.NoTx)
}

func (t *coarseTx) Read(v core.Var) (uint64, error) {
	if t.status != model.Live {
		return 0, core.ErrAborted
	}
	if err := t.enter(); err != nil {
		return 0, err
	}
	return mustTvar(&t.tm.vars, v).val.Read(t.p), nil
}

func (t *coarseTx) Write(v core.Var, val uint64) error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	if err := t.enter(); err != nil {
		return err
	}
	tv := mustTvar(&t.tm.vars, v)
	if _, ok := t.undo[tv]; !ok {
		t.undo[tv] = tv.val.Read(t.p)
	}
	tv.val.Write(t.p, val)
	return nil
}

func (t *coarseTx) Commit() error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	t.status = model.Committed
	t.leave()
	return nil
}

func (t *coarseTx) Abort() {
	if t.status != model.Live {
		return
	}
	for tv, old := range t.undo {
		tv.val.Write(t.p, old)
	}
	t.status = model.Aborted
	t.leave()
}
