// Package locktm provides the lock-based STM baselines the paper's
// introduction contrasts with OFTMs:
//
//   - TwoPhase: encounter-time exclusive locking (strict two-phase
//     locking, in the spirit of TL [11]). It is strictly
//     disjoint-access-parallel — transactions on disjoint t-variables
//     touch disjoint base objects — but not obstruction-free: a
//     suspended lock holder blocks everyone behind it.
//   - GlobalClock: a TL2-style [10] deferred-update STM with a global
//     version clock. Not strictly disjoint-access-parallel (every
//     transaction reads the clock and every committing writer bumps it —
//     the paper's example of a timestamp hot spot), and not
//     obstruction-free.
//   - Coarse: one global lock around every transaction; the simplest
//     correct TM and the scalability strawman.
//
// All three abort only by self-abort after a bounded lock spin, so a
// caller using core.Run sees livelock as repeated ErrAborted — which is
// precisely how the non-obstruction-freedom of locking shows up in the
// Figure 2 experiment: with the lock holder suspended, retries never
// succeed.
package locktm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/base"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// Option configures the engines.
type Option func(*config)

type config struct {
	env       *sim.Env
	spinLimit int
}

// WithEnv runs the engine's base objects in the given simulation
// environment (sim mode). Default is raw mode.
func WithEnv(env *sim.Env) Option {
	return func(c *config) { c.env = env }
}

// WithSpinLimit bounds how many times a transaction retries a lock
// acquisition before self-aborting. The default is 64 in sim mode and
// 1024 in raw mode.
func WithSpinLimit(n int) Option {
	return func(c *config) { c.spinLimit = n }
}

func buildConfig(opts []Option) config {
	c := config{spinLimit: -1}
	for _, o := range opts {
		o(&c)
	}
	if c.spinLimit < 0 {
		if c.env != nil {
			c.spinLimit = 64
		} else {
			c.spinLimit = 1024
		}
	}
	return c
}

// tvar is the per-variable storage shared by the lock-based engines:
// a value word, an exclusive lock word (0 = free, else transaction
// handle), and a version word (used by GlobalClock only).
type tvar struct {
	owner *varTable
	id    model.VarID
	name  string
	val   *base.U64
	lock  *base.U64
	ver   *base.U64
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// varTable allocates tvars for one engine instance.
type varTable struct {
	mu   sync.Mutex
	env  *sim.Env
	vars []*tvar
	// withVer controls whether a version word is allocated.
	withVer bool
}

func (t *varTable) newVar(name string, init uint64) *tvar {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := model.VarID(len(t.vars))
	v := &tvar{
		owner: t,
		id:    id,
		name:  name,
		val:   base.NewU64(t.env, name+".val", init),
		lock:  base.NewU64(t.env, name+".lock", 0),
	}
	if t.withVer {
		v.ver = base.NewU64(t.env, name+".ver", 0)
	}
	t.vars = append(t.vars, v)
	return v
}

// txnIDs hands out per-process transaction identifiers. In raw mode all
// goroutines share process id 0 and take ids from a lock-free counter;
// sim mode uses per-process counters under a mutex.
type txnIDs struct {
	mu   sync.Mutex
	next map[model.ProcID]int
	raw  atomic.Int64
}

func newTxnIDs() *txnIDs { return &txnIDs{next: map[model.ProcID]int{}} }

func (t *txnIDs) take(p *sim.Proc) model.TxID {
	if p == nil {
		return model.TxID{Proc: 0, Seq: int(t.raw.Add(1))}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := p.ID()
	t.next[pid]++
	return model.TxID{Proc: pid, Seq: t.next[pid]}
}

func mustTvar(t *varTable, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.owner != t {
		panic(fmt.Sprintf("locktm: variable %v belongs to a different TM", v))
	}
	return tv
}

// spinLock repeatedly CASes the lock word from 0 to handle, giving up
// after limit attempts. Each attempt is one step.
func spinLock(p *sim.Proc, l *base.U64, handle uint64, limit int) bool {
	for i := 0; i < limit; i++ {
		if l.CAS(p, 0, handle) {
			return true
		}
	}
	return false
}
