package locktm_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/locktm"
	"repro/internal/sim"
	"repro/internal/tmtest"
)

func TestTwoPhaseConformance(t *testing.T) {
	tmtest.Conformance(t, func(env *sim.Env) core.TM {
		if env == nil {
			return locktm.NewTwoPhase()
		}
		return locktm.NewTwoPhase(locktm.WithEnv(env))
	})
}

func TestGlobalClockConformance(t *testing.T) {
	tmtest.Conformance(t, func(env *sim.Env) core.TM {
		if env == nil {
			return locktm.NewGlobalClock()
		}
		return locktm.NewGlobalClock(locktm.WithEnv(env))
	})
}

func TestCoarseConformance(t *testing.T) {
	tmtest.Conformance(t, func(env *sim.Env) core.TM {
		if env == nil {
			return locktm.NewCoarse()
		}
		return locktm.NewCoarse(locktm.WithEnv(env))
	})
}

// TestSuspendedLockHolderBlocksOthers is the negative side of
// obstruction-freedom: under two-phase locking, a transaction suspended
// while holding a lock starves every later transaction on the same
// variable — exactly the failure mode the paper's OFTMs rule out.
func TestSuspendedLockHolderBlocksOthers(t *testing.T) {
	env := sim.New()
	tm := locktm.NewTwoPhase(locktm.WithEnv(env), locktm.WithSpinLimit(8))
	x := tm.NewVar("x", 0)

	env.Spawn(func(p *sim.Proc) { // p1: acquires x, then is suspended
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		// Never commits: the scheduler suspends p1 here.
		tx2 := tm.Begin(p)
		_, _ = tx2.Read(x)
	})
	var p2err error
	env.Spawn(func(p *sim.Proc) { // p2: tries to access x, must fail
		p2err = core.Run(tm, p, func(tx core.Tx) error {
			_, err := tx.Read(x)
			return err
		}, core.MaxAttempts(5))
	})
	// p1 runs long enough to take the lock (spin CAS + value ops), then
	// p2 runs alone.
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 3},
		sim.Phase{Proc: 2, Steps: -1},
	))
	if !errors.Is(p2err, core.ErrAborted) {
		t.Fatalf("p2 should starve behind the suspended lock holder, got %v", p2err)
	}
}

// TestGlobalClockReadValidation: a transaction that began before a
// concurrent writer committed must abort if it would read the new value
// past its read version... and a fresh transaction sees the new value.
func TestGlobalClockReadValidation(t *testing.T) {
	tm := locktm.NewGlobalClock()
	x := tm.NewVar("x", 1)
	y := tm.NewVar("y", 0)

	old := tm.Begin(nil)
	// Pin old's read version at 0 by performing a first read now.
	if _, err := old.Read(y); err != nil {
		t.Fatal(err)
	}
	// Writer commits, bumping the clock and x's version to 1 > 0.
	if err := core.Run(tm, nil, func(tx core.Tx) error { return tx.Write(x, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := old.Read(x); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("stale-rv read must abort, got %v", err)
	}
	v, err := core.ReadVar(tm, nil, x)
	if err != nil || v != 2 {
		t.Fatalf("fresh read: %d (%v), want 2", v, err)
	}
}

func TestForeignVarPanics(t *testing.T) {
	tm1 := locktm.NewTwoPhase()
	tm2 := locktm.NewCoarse()
	x := tm2.NewVar("x", 0)
	tx := tm1.Begin(nil)
	defer tx.Abort()
	defer func() {
		if recover() == nil {
			t.Fatalf("foreign var must panic")
		}
	}()
	_, _ = tx.Read(x)
}

func TestCoarseSingleLockSerializesEverything(t *testing.T) {
	env := sim.New()
	tm := locktm.NewCoarse(locktm.WithEnv(env), locktm.WithSpinLimit(4))
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)
	// Even transactions on disjoint variables contend: p1 holds the
	// global lock (suspended), p2 touching only y still aborts.
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		_ = tx.Commit()
	})
	var p2err error
	env.Spawn(func(p *sim.Proc) {
		p2err = core.Run(tm, p, func(tx core.Tx) error {
			_, err := tx.Read(y)
			return err
		}, core.MaxAttempts(3))
	})
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 2}, // p1 acquires the global lock
		sim.Phase{Proc: 2, Steps: -1},
	))
	if !errors.Is(p2err, core.ErrAborted) {
		t.Fatalf("disjoint-variable transaction should still starve under coarse lock, got %v", p2err)
	}
}

func TestSafetyCampaignTwoPhase(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return locktm.NewTwoPhase(locktm.WithEnv(env))
	}, tmtest.CampaignConfig{Seeds: 15})
}

func TestSafetyCampaignGlobalClock(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return locktm.NewGlobalClock(locktm.WithEnv(env))
	}, tmtest.CampaignConfig{Seeds: 15})
}

func TestSafetyCampaignCoarse(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return locktm.NewCoarse(locktm.WithEnv(env))
	}, tmtest.CampaignConfig{Seeds: 15})
}

// TestCrashCampaignLockBased: lock-based engines under crashes — only
// safety is required (survivors may starve, which is the point of the
// paper's obstruction-freedom).
func TestCrashCampaignLockBased(t *testing.T) {
	tmtest.CrashCampaign(t, func(env *sim.Env) core.TM {
		return locktm.NewTwoPhase(locktm.WithEnv(env), locktm.WithSpinLimit(16))
	}, 15)
	tmtest.CrashCampaign(t, func(env *sim.Env) core.TM {
		return locktm.NewGlobalClock(locktm.WithEnv(env), locktm.WithSpinLimit(16))
	}, 15)
}
