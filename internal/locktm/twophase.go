package locktm

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// TwoPhase is the strict two-phase-locking STM: every access (read or
// write) first acquires the variable's exclusive lock; locks are held
// until commit or abort; writes are in-place with an undo log. Because a
// transaction only ever touches the lock and value words of the
// t-variables it accesses, TwoPhase is strictly disjoint-access-parallel
// (Definition 12) — the property Theorem 13 proves no OFTM can have.
type TwoPhase struct {
	vars varTable
	ids  *txnIDs
	spin int
}

// NewTwoPhase returns a two-phase-locking STM.
func NewTwoPhase(opts ...Option) *TwoPhase {
	cfg := buildConfig(opts)
	return &TwoPhase{
		vars: varTable{env: cfg.env},
		ids:  newTxnIDs(),
		spin: cfg.spinLimit,
	}
}

// Name implements core.TM.
func (tm *TwoPhase) Name() string { return "2pl" }

// ObstructionFree implements core.TM: locking is not obstruction-free.
func (tm *TwoPhase) ObstructionFree() bool { return false }

// NewVar implements core.TM.
func (tm *TwoPhase) NewVar(name string, init uint64) core.Var {
	return tm.vars.newVar(name, init)
}

// Begin implements core.TM.
func (tm *TwoPhase) Begin(p *sim.Proc) core.Tx {
	id := tm.ids.take(p)
	p.SetTx(id)
	return &tpTx{tm: tm, p: p, id: id, undo: map[*tvar]uint64{}, locked: map[*tvar]bool{}}
}

type tpTx struct {
	tm     *TwoPhase
	p      *sim.Proc
	id     model.TxID
	status model.Status
	locked map[*tvar]bool
	undo   map[*tvar]uint64 // first-write old values, for rollback
	order  []*tvar          // lock acquisition order, for release
}

func (t *tpTx) ID() model.TxID       { return t.id }
func (t *tpTx) Status() model.Status { return t.status }

func (t *tpTx) acquire(v *tvar) error {
	if t.locked[v] {
		return nil
	}
	if !spinLock(t.p, v.lock, t.id.Handle(), t.tm.spin) {
		t.rollback()
		return core.ErrAborted
	}
	t.locked[v] = true
	t.order = append(t.order, v)
	return nil
}

func (t *tpTx) rollback() {
	for v, old := range t.undo {
		v.val.Write(t.p, old)
	}
	t.release()
	t.status = model.Aborted
	t.p.SetTx(model.NoTx)
}

func (t *tpTx) release() {
	for _, v := range t.order {
		v.lock.Write(t.p, 0)
	}
	t.order = nil
	t.locked = map[*tvar]bool{}
}

func (t *tpTx) Read(v core.Var) (uint64, error) {
	if t.status != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustTvar(&t.tm.vars, v)
	if err := t.acquire(tv); err != nil {
		return 0, err
	}
	return tv.val.Read(t.p), nil
}

func (t *tpTx) Write(v core.Var, val uint64) error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	tv := mustTvar(&t.tm.vars, v)
	if err := t.acquire(tv); err != nil {
		return err
	}
	if _, ok := t.undo[tv]; !ok {
		t.undo[tv] = tv.val.Read(t.p)
	}
	tv.val.Write(t.p, val)
	return nil
}

func (t *tpTx) Commit() error {
	if t.status != model.Live {
		return core.ErrAborted
	}
	t.status = model.Committed
	t.undo = map[*tvar]uint64{}
	t.release()
	t.p.SetTx(model.NoTx)
	return nil
}

func (t *tpTx) Abort() {
	if t.status != model.Live {
		return
	}
	t.rollback()
}
