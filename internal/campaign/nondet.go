package campaign

import (
	"math/rand"
	"sync"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/kv"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
)

// initTrack records the initial value of every t-variable the store
// allocates, so the exact serializability checker knows the legal
// first read of each variable.
type initTrack struct {
	core.TM
	mu   sync.Mutex
	init map[model.VarID]uint64
}

func (t *initTrack) NewVar(name string, init uint64) core.Var {
	v := t.TM.NewVar(name, init)
	t.mu.Lock()
	t.init[v.ID()] = init
	t.mu.Unlock()
	return v
}

func newSimEngine(name string, env *sim.Env) core.TM {
	if name == "dstm" {
		return dstm.New(dstm.WithEnv(env))
	}
	return nztm.New(nztm.WithEnv(env))
}

// simWorkload spawns the seeded contended workload: 3 processes, each
// running 2 multi-shard Txn batches over a 6-key space.
func simWorkload(env *sim.Env, s *kv.Store, seed int64) {
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for pi := 0; pi < 3; pi++ {
		pi := pi
		env.Spawn(func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed*31 + int64(pi)))
			for k := 0; k < 2; k++ {
				ops := []kv.Op{
					{Kind: kv.OpPut, Key: keys[rng.Intn(len(keys))], Val: uint64(rng.Intn(9) + 1)},
					{Kind: kv.OpGet, Key: keys[rng.Intn(len(keys))]},
					{Kind: kv.OpPut, Key: keys[rng.Intn(len(keys))], Val: uint64(rng.Intn(9) + 1)},
				}
				_, _ = s.Txn(p, ops, core.MaxAttempts(40))
			}
		})
	}
}

// SimSerializable records a sim-mode history of the seeded workload
// under the adversarial random scheduler and feeds it to the exact
// serializability checker.
func SimSerializable(seed int64, engine string, cfg Config) error {
	cfg.fill()
	env := sim.New()
	track := &initTrack{TM: newSimEngine(engine, env), init: map[model.VarID]uint64{}}
	tm := core.Recorded(track, env.Recorder())
	s := kv.New(tm, cfg.Shards, 2)
	simWorkload(env, s, seed)
	h := env.Run(sim.Random(seed))
	if err := h.WellFormed(); err != nil {
		return violationf(seed, engine, "serializable", "history not well-formed: %v", err)
	}
	res := checker.CheckSerializable(model.Transactions(h), track.init)
	if !res.OK {
		return violationf(seed, engine, "serializable", "history not serializable: %s", res.Reason)
	}
	return nil
}

// simStateHash runs the same seeded workload on an unrecorded engine
// (recording changes no outcomes, only costs) and hashes the final
// store state via a post-run raw-mode dump.
func simStateHash(seed int64, engine string, cfg Config) string {
	cfg.fill()
	env := sim.New()
	s := kv.New(newSimEngine(engine, env), cfg.Shards, 2)
	simWorkload(env, s, seed)
	env.Run(sim.Random(seed))
	pairs, _ := s.Dump(nil)
	return PairsHash(pairs)
}

// Nondeterminism is the same-seed determinism battery for one seed:
//
//   - a crash run repeated twice on the same engine must produce the
//     identical report (fault firing point, ack count, state hash);
//   - the crash run on the other engine must recover to the identical
//     state hash (the single-driver workload has one serialization
//     order, so engines cannot legitimately diverge);
//   - a sim-mode contended run repeated twice (same engine) must reach
//     the identical final state hash;
//   - the sim-mode history must be exactly serializable on both engines;
//   - the seeded workload's shipped record stream, applied replica-style
//     on both engines, must reproduce the primary's state hash exactly
//     (ReplicaApply).
func Nondeterminism(seed int64, cfg Config) error {
	cfg.fill()
	a, err := CrashRun(seed, "dstm", cfg)
	if err != nil {
		return err
	}
	b, err := CrashRun(seed, "dstm", cfg)
	if err != nil {
		return err
	}
	if a != b {
		return violationf(seed, "dstm", "determinism",
			"same seed, two crash runs diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
	c, err := CrashRun(seed, "nztm", cfg)
	if err != nil {
		return err
	}
	if c.StateHash != a.StateHash || c.Acked != a.Acked {
		return violationf(seed, "dstm-vs-nztm", "determinism",
			"engines diverged on the same seed:\n  dstm: acked=%d hash=%s\n  nztm: acked=%d hash=%s",
			a.Acked, a.StateHash, c.Acked, c.StateHash)
	}
	for _, engine := range Engines() {
		h1 := simStateHash(seed, engine, cfg)
		h2 := simStateHash(seed, engine, cfg)
		if h1 != h2 {
			return violationf(seed, engine, "determinism",
				"same seed, two sim runs diverged: %s vs %s", h1, h2)
		}
		if err := SimSerializable(seed, engine, cfg); err != nil {
			return err
		}
	}
	return ReplicaApply(seed, cfg)
}
