package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/kv"
	"repro/internal/wal"
)

// ImportExport checks that snapshot state is a faithful, canonical
// interchange format across the incremental chain path: a seeded
// workload is cut as a full chain, a single-key write then dirties
// exactly one shard and an incremental cut must re-image exactly that
// shard, a tail of further writes lands past the cut, and the directory
// is recovered into a fresh store (import). Re-imaging the fresh
// store's full state must produce bytes identical to imaging the live
// store directly — wal.SnapshotImage is canonical, and nothing is lost
// or invented across chain export → recover → import.
func ImportExport(seed int64, engine string, cfg Config) error {
	cfg.fill()
	dir, err := os.MkdirTemp("", "campaign-ie-*")
	if err != nil {
		return fmt.Errorf("campaign: tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	l, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return fmt.Errorf("campaign: open wal: %w", err)
	}
	store := kv.New(newEngine(engine), cfg.Shards, 8)
	store.SetCommitHook(l.Append)
	sess := store.NewSession()
	rng := rand.New(rand.NewSource(seed*1099511628211 + 7))
	churn := func(n int) error {
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key%03d", rng.Intn(cfg.Keys))
			if rng.Intn(5) == 0 {
				if _, err := sess.Delete(nil, key); err != nil {
					return violationf(seed, engine, "import-export", "op %d: DEL failed: %v", i, err)
				}
			} else if _, err := sess.Put(nil, key, uint64(rng.Intn(1000)+1)); err != nil {
				return violationf(seed, engine, "import-export", "op %d: SET failed: %v", i, err)
			}
		}
		return nil
	}

	// Phase 1: bulk load, then the run's first cut — a full chain.
	if err := churn(cfg.Ops); err != nil {
		return err
	}
	if err := l.WriteSnapshotInc(store); err != nil {
		return violationf(seed, engine, "import-export", "full cut: %v", err)
	}

	// Phase 2: one write to one key dirties exactly one shard; the next
	// cut must re-image exactly that shard and link the rest.
	if _, err := sess.Put(nil, "key000", 424242); err != nil {
		return violationf(seed, engine, "import-export", "single-key SET failed: %v", err)
	}
	if err := l.WriteSnapshotInc(store); err != nil {
		return violationf(seed, engine, "import-export", "incremental cut: %v", err)
	}
	cut := l.Stats().SnapshotSeq
	freshImgs, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%020d-*.shard", cut)))
	if err != nil || len(freshImgs) != 1 {
		return violationf(seed, engine, "import-export",
			"incremental cut re-imaged %d shard(s) %v for a single-key write, want exactly 1 (%v)",
			len(freshImgs), freshImgs, err)
	}

	// Phase 3: a tail past the cut, replayed over the chain on import.
	if err := churn(cfg.Ops/10 + 1); err != nil {
		return err
	}
	if err := l.Close(); err != nil {
		return violationf(seed, engine, "import-export", "close: %v", err)
	}

	// Import: recover the directory, check it sees the chain, and that
	// base+tail merge to exactly the live store's state.
	l2, recd, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		return violationf(seed, engine, "import-export", "recovery: %v", err)
	}
	defer l2.Close()
	if recd.Base == nil {
		return violationf(seed, engine, "import-export",
			"recovery ignored the chain (Base == nil, snapshot cut %d)", recd.SnapshotSeq)
	}
	if recd.SnapshotSeq != cut {
		return violationf(seed, engine, "import-export",
			"recovery used snapshot cut %d, want the chain cut %d", recd.SnapshotSeq, cut)
	}
	livePairs, err := store.Dump(nil)
	if err != nil {
		return violationf(seed, engine, "import-export", "dump live: %v", err)
	}
	if got, want := StateHash(recd.Merged()), PairsHash(livePairs); got != want {
		return violationf(seed, engine, "import-export",
			"recovered state differs from the live store: %s vs %s", got, want)
	}
	fresh := kv.New(newEngine(engine), cfg.Shards, 8)
	if err := recd.Each(func(k string, v uint64) error {
		_, perr := fresh.Put(nil, k, v)
		return perr
	}); err != nil {
		return violationf(seed, engine, "import-export", "import: %v", err)
	}

	// Canonicality: a full image of the imported store must be
	// byte-identical to a full image of the live store at the same cut.
	freshPairs, err := fresh.Dump(nil)
	if err != nil {
		return violationf(seed, engine, "import-export", "dump fresh: %v", err)
	}
	exported := wal.SnapshotImage(recd.LastSeq, livePairs)
	reexported := wal.SnapshotImage(recd.LastSeq, freshPairs)
	if !bytes.Equal(exported, reexported) {
		return violationf(seed, engine, "import-export",
			"round-trip bytes differ: direct image %d bytes, chain-imported image %d bytes", len(exported), len(reexported))
	}
	return nil
}
