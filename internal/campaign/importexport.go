package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/kv"
	"repro/internal/wal"
)

// ImportExport checks that snapshot bytes are a faithful, canonical
// state-interchange format: a seeded workload is snapshotted (export),
// the directory is recovered into a fresh store (import), and
// re-exporting that store's state at the same cut must reproduce the
// identical bytes. Any nondeterminism in the dump/encode path, or any
// divergence between recovered and live state, breaks byte equality.
func ImportExport(seed int64, engine string, cfg Config) error {
	cfg.fill()
	dir, err := os.MkdirTemp("", "campaign-ie-*")
	if err != nil {
		return fmt.Errorf("campaign: tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	l, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return fmt.Errorf("campaign: open wal: %w", err)
	}
	store := kv.New(newEngine(engine), cfg.Shards, 8)
	store.SetCommitHook(l.Append)
	sess := store.NewSession()
	rng := rand.New(rand.NewSource(seed*1099511628211 + 7))
	for i := 0; i < cfg.Ops; i++ {
		key := fmt.Sprintf("key%03d", rng.Intn(cfg.Keys))
		if rng.Intn(5) == 0 {
			if _, err := sess.Delete(nil, key); err != nil {
				return violationf(seed, engine, "import-export", "op %d: DEL failed: %v", i, err)
			}
		} else if _, err := sess.Put(nil, key, uint64(rng.Intn(1000)+1)); err != nil {
			return violationf(seed, engine, "import-export", "op %d: SET failed: %v", i, err)
		}
	}

	// Export: snapshot the live store, then read the canonical bytes.
	if err := l.WriteSnapshot(func() ([]kv.Pair, error) { return store.Dump(nil) }); err != nil {
		return violationf(seed, engine, "import-export", "snapshot: %v", err)
	}
	cut := l.Stats().SnapshotSeq
	if err := l.Close(); err != nil {
		return violationf(seed, engine, "import-export", "close: %v", err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		return violationf(seed, engine, "import-export", "want exactly one snapshot file, got %v (%v)", snaps, err)
	}
	exported, err := os.ReadFile(snaps[0])
	if err != nil {
		return violationf(seed, engine, "import-export", "read snapshot: %v", err)
	}

	// Import: recover the directory, load the state into a fresh store.
	l2, recd, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		return violationf(seed, engine, "import-export", "recovery: %v", err)
	}
	defer l2.Close()
	livePairs, err := store.Dump(nil)
	if err != nil {
		return violationf(seed, engine, "import-export", "dump live: %v", err)
	}
	if got, want := StateHash(recd.State), PairsHash(livePairs); got != want {
		return violationf(seed, engine, "import-export",
			"recovered state differs from the live store: %s vs %s", got, want)
	}
	fresh := kv.New(newEngine(engine), cfg.Shards, 8)
	for k, v := range recd.State {
		if _, err := fresh.Put(nil, k, v); err != nil {
			return violationf(seed, engine, "import-export", "import %s: %v", k, err)
		}
	}

	// Re-export at the same cut: bytes must match exactly.
	freshPairs, err := fresh.Dump(nil)
	if err != nil {
		return violationf(seed, engine, "import-export", "dump fresh: %v", err)
	}
	reexported := wal.SnapshotImage(cut, freshPairs)
	if !bytes.Equal(exported, reexported) {
		return violationf(seed, engine, "import-export",
			"round-trip bytes differ: exported %d bytes, re-exported %d bytes", len(exported), len(reexported))
	}
	return nil
}
