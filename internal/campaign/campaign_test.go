package campaign

import (
	"flag"
	"strings"
	"testing"
)

var (
	flagSeeds     = flag.Int("campaign.seeds", 4, "number of seeds the campaign sweeps")
	flagSeed      = flag.Int64("campaign.seed", -1, "replay exactly one seed (TestCrashSeed)")
	flagOps       = flag.Int("campaign.ops", 0, "driver operations per crash run (0 = default)")
	flagCrashProb = flag.Float64("campaign.crashprob", -999, "probability the injected fault is a crash (<0 keeps default)")
)

func testConfig() Config {
	cfg := Config{}
	if *flagOps > 0 {
		cfg.Ops = *flagOps
	}
	if *flagCrashProb >= 0 {
		cfg.CrashProb = *flagCrashProb
		if cfg.CrashProb == 0 {
			cfg.CrashProb = -1 // fill() treats 0 as "default"; <0 means "never crash"
		}
	}
	return cfg
}

// fatalWithRepro fails the test printing the violation and the exact
// command that replays the failing seed.
func fatalWithRepro(t *testing.T, seed int64, cfg Config, err error) {
	t.Helper()
	t.Fatalf("%v\nrepro: %s", err, ReproCommand(seed, cfg))
}

// TestMultiSeedCrashCampaign is the sweep behind `make sim-multi-seed`:
// every seed gets a crash run (fail-stop + acked-writes-survive +
// recovery) on an alternating engine, plus a sim-mode serializability
// check of the same seed.
func TestMultiSeedCrashCampaign(t *testing.T) {
	cfg := testConfig()
	engines := Engines()
	kinds := map[string]int{}
	for seed := int64(0); seed < int64(*flagSeeds); seed++ {
		engine := engines[seed%int64(len(engines))]
		rep, err := CrashRun(seed, engine, cfg)
		if err != nil {
			fatalWithRepro(t, seed, cfg, err)
		}
		kinds[strings.SplitN(rep.Plan, "+", 2)[0]]++
		if err := SimSerializable(seed, engine, cfg); err != nil {
			fatalWithRepro(t, seed, cfg, err)
		}
	}
	t.Logf("%d seeds passed; faults fired on: %v", *flagSeeds, kinds)
}

// TestNondeterminism is `make sim-nondeterminism`: the same-seed
// determinism battery (crash-run twice, cross-engine, sim twice,
// serializability) on a handful of seeds.
func TestNondeterminism(t *testing.T) {
	cfg := testConfig()
	seeds := int64(*flagSeeds)
	if seeds > 4 && !testing.Verbose() {
		seeds = 4 // each seed already runs three crash runs + four sim runs
	}
	for seed := int64(0); seed < seeds; seed++ {
		if err := Nondeterminism(seed, cfg); err != nil {
			fatalWithRepro(t, seed, cfg, err)
		}
	}
}

// TestImportExport is `make sim-import-export`: snapshot bytes are a
// canonical, loss-free interchange format on both engines.
func TestImportExport(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < int64(*flagSeeds); seed++ {
		engine := Engines()[seed%2]
		if err := ImportExport(seed, engine, cfg); err != nil {
			fatalWithRepro(t, seed, cfg, err)
		}
	}
}

// TestSnapshotTorture is `make snapshot-smoke`'s seed battery: a
// power-loss crash aimed at every position in the incremental snapshot
// writer's file schedule — between shard images (after < Shards), on
// the manifest temp write (after == Shards), and into later cuts.
// Recovery must always succeed on a complete previous chain (or the
// full log tail) and cover every acked batch; a partial chain loading
// silently would show up as a prefix mismatch or a refused recovery.
func TestSnapshotTorture(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < int64(*flagSeeds); seed++ {
		probe := cfg
		probe.fill()
		for after := 0; after <= probe.Shards+1; after++ {
			engine := Engines()[(seed+int64(after))%2]
			rep, err := SnapshotTorture(seed, engine, after, cfg)
			if err != nil {
				t.Fatalf("after=%d: %v\nrepro: %s", after, err, ReproCommand(seed, cfg))
			}
			if !strings.Contains(rep.FiredOn, "writefile") {
				t.Fatalf("seed %d after=%d: crash fired on %q, want a snapshot writefile op", seed, after, rep.FiredOn)
			}
		}
	}
}

// TestCrashSeed replays exactly one seed with -campaign.seed=N — the
// repro entry point printed by every campaign failure. Runs the full
// battery for that seed on both engines, verbosely.
func TestCrashSeed(t *testing.T) {
	if *flagSeed < 0 {
		t.Skip("replay entry point; run with -campaign.seed=N")
	}
	cfg := testConfig()
	seed := *flagSeed
	for _, engine := range Engines() {
		rep, err := CrashRun(seed, engine, cfg)
		t.Logf("seed %d on %s: plan=%s fired-on=%q batches=%d acked=%d latched=%v matched-at=%d torn=%v hash=%s",
			seed, engine, rep.Plan, rep.FiredOn, rep.Batches, rep.Acked, rep.Latched, rep.MatchedAt, rep.TornTail, rep.StateHash)
		if err != nil {
			t.Errorf("crash run on %s: %v", engine, err)
		}
		if err := SimSerializable(seed, engine, cfg); err != nil {
			t.Errorf("sim serializability on %s: %v", engine, err)
		}
	}
	if err := Nondeterminism(seed, cfg); err != nil {
		t.Errorf("determinism: %v", err)
	}
	if err := ImportExport(seed, Engines()[seed%2], cfg); err != nil {
		t.Errorf("import/export: %v", err)
	}
}

// BenchmarkInvariants times one full crash run + invariant check per
// iteration — `make sim-benchmark-invariants` tracks how expensive the
// correctness gate itself is.
func BenchmarkInvariants(b *testing.B) {
	cfg := testConfig()
	for i := 0; i < b.N; i++ {
		seed := int64(i)
		engine := Engines()[seed%2]
		if _, err := CrashRun(seed, engine, cfg); err != nil {
			b.Fatalf("%v\nrepro: %s", err, ReproCommand(seed, cfg))
		}
	}
}

// TestReplicaApply is the replica-apply determinism check standalone:
// the seeded workload's shipped record stream must reproduce the
// primary's state hash byte-identically on both engines.
func TestReplicaApply(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < int64(*flagSeeds); seed++ {
		if err := ReplicaApply(seed, cfg); err != nil {
			fatalWithRepro(t, seed, cfg, err)
		}
	}
}
