package campaign

import (
	"fmt"
	"math/rand"

	"repro/internal/kv"
	"repro/internal/wal"
)

// ReplicaApply is the per-seed replica-apply determinism check: a
// seeded single-driver workload runs on a primary store whose commit
// hook captures each transaction's effect batch as the exact WAL frame
// the primary would ship; the captured stream is then applied — through
// the same kv.Session.ApplyEffects path a live replica uses — onto
// fresh stores on both engines. The invariant is byte-identical state
// hashes across the primary and both replicas: record apply must be a
// pure function of the stream, independent of the replica's engine.
func ReplicaApply(seed int64, cfg Config) error {
	cfg.fill()

	// Primary: seeded mixed workload, frames captured at commit.
	primary := kv.New(newEngine("nztm"), cfg.Shards, 8)
	var stream []byte
	var seq uint64
	primary.SetCommitHook(func(effects []kv.Effect) error {
		seq++
		stream = wal.EncodeFrame(stream, seq, effects)
		return nil
	})
	se := primary.NewSession()
	rng := rand.New(rand.NewSource(seed*977 + 11))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("rk%02d", rng.Intn(24))
		var op kv.Op
		switch rng.Intn(5) {
		case 0, 1, 2:
			op = kv.Op{Kind: kv.OpPut, Key: key, Val: uint64(rng.Intn(1000))}
		case 3:
			op = kv.Op{Kind: kv.OpDelete, Key: key}
		default:
			op = kv.Op{Kind: kv.OpCAS, Key: key, Old: uint64(rng.Intn(1000)), Val: uint64(rng.Intn(1000))}
		}
		if _, err := se.Do(nil, op); err != nil {
			return violationf(seed, "nztm", "replica-apply", "primary workload op %d: %v", i, err)
		}
	}
	primary.SetCommitHook(nil)
	pairs, err := primary.Dump(nil)
	if err != nil {
		return violationf(seed, "nztm", "replica-apply", "primary dump: %v", err)
	}
	want := PairsHash(pairs)

	// The stream itself must be well-formed (contiguous, CRC-clean).
	if first, last, n, err := wal.ValidateFrames(stream); err != nil || (n > 0 && (first != 1 || last != seq)) {
		return violationf(seed, "nztm", "replica-apply",
			"captured stream invalid: first=%d last=%d n=%d err=%v", first, last, n, err)
	}

	// Replicas: the stream applied on each engine must reproduce the
	// primary's state exactly.
	for _, engine := range Engines() {
		replica := kv.New(newEngine(engine), cfg.Shards, 8)
		rs := replica.NewSession()
		next := uint64(1)
		if err := wal.DecodeFrames(stream, func(fseq uint64, effects []kv.Effect) error {
			if fseq != next {
				return fmt.Errorf("stream seq %d, want %d", fseq, next)
			}
			next++
			return rs.ApplyEffects(effects)
		}); err != nil {
			return violationf(seed, engine, "replica-apply", "apply: %v", err)
		}
		rpairs, err := replica.Dump(nil)
		if err != nil {
			return violationf(seed, engine, "replica-apply", "replica dump: %v", err)
		}
		if got := PairsHash(rpairs); got != want {
			return violationf(seed, engine, "replica-apply",
				"replica state diverged from the shipped stream: primary=%s replica=%s (%d records)",
				want, got, seq)
		}
	}
	return nil
}
