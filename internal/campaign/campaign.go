// Package campaign is the multi-seed crash campaign: the correctness
// gate that drives seeded workloads into the durable store while a
// deterministic fault-injecting filesystem (internal/faultfs) delivers
// a crash or disk fault at a schedule-chosen point, then recovers the
// directory with the real OS and checks the invariants that the paper's
// claims rest on once durability enters the picture:
//
//   - acked-writes-survive: recovery restores the replay of a prefix of
//     the committed effect batches that covers every acknowledged batch
//     — acked writes are never lost, and no hole is ever loaded;
//   - fail-stop: after the first write/fsync error no later write is
//     ever acknowledged;
//   - serializability: a sim-mode run of the same seed under an
//     adversarial random scheduler records a history the exact checker
//     accepts (internal/checker);
//   - determinism: the same seed run twice — and across the dstm and
//     nztm engines — produces byte-identical recovered state hashes;
//   - import/export: snapshot → fresh store → re-snapshot reproduces
//     identical bytes (wal.SnapshotImage is canonical).
//
// Every violation carries its seed; the Makefile targets
// (sim-multi-seed, sim-nondeterminism, sim-import-export) print an
// exact repro command.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/faultfs"
	"repro/internal/kv"
	"repro/internal/nztm"
	"repro/internal/wal"
)

// Config parameterizes one campaign run. The zero value fills with
// small CI-sized defaults; the Makefile knobs SIM_OPS and
// SIM_CRASH_PROB land here.
type Config struct {
	// Ops is the number of driver operations per crash run (default 300).
	Ops int
	// Keys is the key-space size (default 64).
	Keys int
	// Shards is the store shard count (default 4).
	Shards int
	// CrashProb is the probability the injected fault is a full
	// power-loss crash rather than a survivable disk error (default 0.5).
	CrashProb float64
	// SnapEvery takes a snapshot every N driver ops so faults can land
	// in the snapshot/truncate path too (default Ops/3; <0 disables).
	SnapEvery int
	// SegmentBytes keeps segments tiny so rotation happens many times
	// per run (default 2048).
	SegmentBytes int64
}

func (c *Config) fill() {
	if c.Ops <= 0 {
		c.Ops = 300
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.CrashProb == 0 {
		c.CrashProb = 0.5
	}
	if c.CrashProb < 0 {
		c.CrashProb = 0
	}
	if c.SnapEvery == 0 {
		c.SnapEvery = c.Ops / 3
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 2048
	}
}

// Engines lists the engines the campaign sweeps.
func Engines() []string { return []string{"dstm", "nztm"} }

func newEngine(name string) core.TM {
	if name == "dstm" {
		return dstm.New()
	}
	return nztm.New()
}

// Violation is a failed invariant, tagged with everything needed to
// reproduce it.
type Violation struct {
	Seed   int64
	Engine string
	Check  string
	Msg    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("seed %d [%s/%s]: %s", v.Seed, v.Engine, v.Check, v.Msg)
}

func violationf(seed int64, engine, check, format string, args ...any) error {
	return &Violation{Seed: seed, Engine: engine, Check: check, Msg: fmt.Sprintf(format, args...)}
}

// ReproCommand renders the exact command that re-runs one seed with the
// given config — printed alongside every violation.
func ReproCommand(seed int64, cfg Config) string {
	cfg.fill()
	return fmt.Sprintf("go test ./internal/campaign -run 'TestCrashSeed$' -v -campaign.seed=%d -campaign.ops=%d -campaign.crashprob=%g",
		seed, cfg.Ops, cfg.CrashProb)
}

// CrashReport summarizes one crash run.
type CrashReport struct {
	Plan      string // the fault schedule delivered
	FiredOn   string // the operation it fired on
	Batches   int    // committed effect batches (hook invocations)
	Acked     int    // batches whose Append was acknowledged durable
	Latched   bool   // the log entered fail-stop
	MatchedAt int    // prefix length the recovered state matched
	TornTail  bool   // recovery truncated a torn record
	StateHash string // canonical hash of the recovered state
}

// effectLog chains the store's commit hook: it records every committed
// effect batch in commit order (the single-driver workload makes hook
// order the serialization order) and forwards to the WAL, tracking
// which batches were acknowledged durable.
type effectLog struct {
	log     *wal.Log
	batches [][]kv.Effect
	acked   int
	reorder bool // an ack arrived after an unacked batch — fail-stop broken
}

func (e *effectLog) hook(effects []kv.Effect) error {
	cp := make([]kv.Effect, len(effects))
	copy(cp, effects)
	err := e.log.Append(effects)
	e.batches = append(e.batches, cp)
	if err == nil {
		if e.acked != len(e.batches)-1 {
			e.reorder = true
		}
		e.acked = len(e.batches)
	}
	return err
}

// CrashRun drives one seeded workload into a WAL-backed store (fsync
// always) through a fault injector scheduled from the same seed, then
// recovers the directory with the real OS and checks fail-stop and
// acked-writes-survive. The run is fully deterministic: the same seed
// and config produce the same report, on either engine.
func CrashRun(seed int64, engine string, cfg Config) (CrashReport, error) {
	cfg.fill()
	return crashRun(seed, engine, cfg, faultfs.PlanForSeed(seed, cfg.Ops/4, cfg.CrashProb))
}

// SnapshotTorture is CrashRun with the fault aimed precisely at the
// incremental snapshot writer: a power-loss crash on the (after+1)-th
// snapshot-file write. The first cut of a run writes one image per
// shard and then the manifest temp file, so after < Shards lands the
// crash *between shard images* and after == Shards lands it
// *mid-manifest-write*; larger values walk into later cuts. Because
// truncation only runs after a manifest commits, every such crash must
// leave either the previous complete chain or the full log tail —
// recovery must succeed and cover every acknowledged batch, never a
// partial chain.
func SnapshotTorture(seed int64, engine string, after int, cfg Config) (CrashReport, error) {
	cfg.fill()
	if cfg.SnapEvery > cfg.Ops/6 {
		// Torture wants several cuts per run so late After values still
		// fire within the workload.
		cfg.SnapEvery = cfg.Ops / 6
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5709_7041))
	plan := faultfs.Plan{Kind: faultfs.Crash, Target: faultfs.SnapshotWrite, After: after, Cut: rng.Float64()}
	return crashRun(seed, engine, cfg, plan)
}

// crashRun is the shared body of CrashRun and SnapshotTorture.
func crashRun(seed int64, engine string, cfg Config, plan faultfs.Plan) (CrashReport, error) {
	rep := CrashReport{}
	dir, err := os.MkdirTemp("", "campaign-crash-*")
	if err != nil {
		return rep, fmt.Errorf("campaign: tempdir: %w", err)
	}
	defer os.RemoveAll(dir)

	rep.Plan = plan.String()
	inj := faultfs.NewInjector(faultfs.OS, plan)
	segBytes := cfg.SegmentBytes
	if plan.Target == faultfs.HeaderWrite {
		// Header writes only happen on rotation; shrink segments so the
		// scheduled rotation is guaranteed to occur within the workload.
		segBytes = 256
	}
	l, _, err := wal.Open(wal.Options{
		Dir: dir, Policy: wal.SyncAlways, SegmentBytes: segBytes, FS: inj,
	})
	if err != nil {
		return rep, fmt.Errorf("campaign: open wal: %w", err)
	}
	store := kv.New(newEngine(engine), cfg.Shards, 8)
	elog := &effectLog{log: l}
	store.SetCommitHook(elog.hook)
	sess := store.NewSession()
	inj.Arm()

	rng := rand.New(rand.NewSource(seed*2654435761 + 1))
	// A write op that commits no effects (failed CAS guard, delete of a
	// missing key) never reaches the WAL and may legitimately succeed
	// after the latch; the no-ack-after-failure invariant is enforced on
	// the batch stream itself (effectLog.reorder). Here we only require
	// that every surfaced write error is the fail-stop sentinel.
	checkWrite := func(i int, err error) error {
		if err == nil {
			return nil
		}
		if !errors.Is(err, wal.ErrFailStop) {
			return violationf(seed, engine, "fail-stop",
				"op %d: write failed with a non-fail-stop error: %v", i, err)
		}
		return nil
	}
	for i := 0; i < cfg.Ops; i++ {
		key := fmt.Sprintf("key%03d", rng.Intn(cfg.Keys))
		switch roll := rng.Intn(100); {
		case roll < 40: // SET
			_, err := sess.Do(nil, kv.Op{Kind: kv.OpPut, Handle: sess.Handle(key), Val: uint64(rng.Intn(1000) + 1)})
			if verr := checkWrite(i, err); verr != nil {
				return rep, verr
			}
		case roll < 50: // DEL
			_, err := sess.Do(nil, kv.Op{Kind: kv.OpDelete, Handle: sess.Handle(key)})
			if verr := checkWrite(i, err); verr != nil {
				return rep, verr
			}
		case roll < 62: // CAS (read current, then swap — or miss on purpose)
			cur, found, err := sess.Get(nil, key)
			if err != nil {
				return rep, violationf(seed, engine, "read", "op %d: GET failed: %v", i, err)
			}
			old := cur
			if !found || rng.Intn(4) == 0 {
				old = cur + 1 // deliberate CASFAIL: commits nothing
			}
			_, err = sess.Do(nil, kv.Op{Kind: kv.OpCAS, Handle: sess.Handle(key), Old: old, Val: uint64(rng.Intn(1000) + 1)})
			if verr := checkWrite(i, err); verr != nil {
				return rep, verr
			}
		case roll < 80: // multi-op transaction across shards
			n := 2 + rng.Intn(3)
			ops := make([]kv.Op, 0, n)
			for j := 0; j < n; j++ {
				k := fmt.Sprintf("key%03d", rng.Intn(cfg.Keys))
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, kv.Op{Kind: kv.OpGet, Handle: sess.Handle(k)})
				case 1:
					ops = append(ops, kv.Op{Kind: kv.OpPut, Handle: sess.Handle(k), Val: uint64(rng.Intn(1000) + 1)})
				default:
					ops = append(ops, kv.Op{Kind: kv.OpDelete, Handle: sess.Handle(k)})
				}
			}
			_, err := sess.Txn(nil, ops)
			if verr := checkWrite(i, err); verr != nil {
				return rep, verr
			}
		default: // reads must keep working, before and after any fault
			if _, _, err := sess.Get(nil, key); err != nil {
				return rep, violationf(seed, engine, "read", "op %d: GET failed: %v", i, err)
			}
		}
		if cfg.SnapEvery > 0 && i%cfg.SnapEvery == cfg.SnapEvery-1 {
			// Best effort: a faulted snapshot must not break anything.
			// Incremental chain cuts, so faults land in the image-write /
			// manifest-commit / truncation path the server actually runs.
			_ = l.WriteSnapshotInc(store)
		}
	}
	fired, on := inj.Fired()
	if !fired {
		l.Close()
		return rep, violationf(seed, engine, "harness",
			"plan %v never fired within %d ops — widen the workload or narrow the horizon", plan, cfg.Ops)
	}
	rep.FiredOn = strings.ReplaceAll(on, dir, "$DIR") // keep reports comparable across runs
	rep.Batches = len(elog.batches)
	rep.Acked = elog.acked
	rep.Latched = l.Err() != nil
	if elog.reorder {
		return rep, violationf(seed, engine, "fail-stop", "a batch was acknowledged after an unacknowledged one")
	}
	l.Close() // flush/close errors are expected on a faulted log

	// Recover what actually survived, with the real filesystem.
	l2, recd, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		return rep, violationf(seed, engine, "recovery",
			"recovery refused after %s: %v (acked=%d/%d)", on, err, elog.acked, len(elog.batches))
	}
	l2.Close()
	rep.TornTail = recd.TornTail
	state := recd.Merged()
	k, ok := matchPrefix(state, elog.batches, elog.acked)
	if !ok {
		return rep, violationf(seed, engine, "acked-writes-survive",
			"recovered state matches no batch prefix covering the %d acked batches (of %d; fault: %s)",
			elog.acked, len(elog.batches), on)
	}
	rep.MatchedAt = k
	rep.StateHash = StateHash(state)
	return rep, nil
}

// matchPrefix reports whether state equals the replay of batches[:k]
// for some k with acked <= k <= len(batches) — the acked prefix
// exactly, or acked plus written-but-unacknowledged tail batches.
func matchPrefix(state map[string]uint64, batches [][]kv.Effect, acked int) (int, bool) {
	ref := map[string]uint64{}
	for i := 0; i < acked; i++ {
		applyEffects(ref, batches[i])
	}
	for k := acked; ; k++ {
		if mapsEqual(state, ref) {
			return k, true
		}
		if k == len(batches) {
			return 0, false
		}
		applyEffects(ref, batches[k])
	}
}

func applyEffects(m map[string]uint64, effects []kv.Effect) {
	for _, e := range effects {
		if e.Del {
			delete(m, e.Key)
		} else {
			m[e.Key] = e.Val
		}
	}
}

func mapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// StateHash is the canonical digest of a store state: sha256 over
// sorted key=value lines.
func StateHash(state map[string]uint64) string {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d\n", k, state[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// PairsHash is StateHash over a dump.
func PairsHash(pairs []kv.Pair) string {
	m := make(map[string]uint64, len(pairs))
	for _, p := range pairs {
		m[p.Key] = p.Val
	}
	return StateHash(m)
}
