// Package nztm implements a zero-indirection obstruction-free STM in
// the spirit of NZTM [29], the OFTM the paper cites as questioning
// DSTM's indirection cost (§7). Where DSTM reaches every value through
// a locator, here the current value lives *in place* in the variable's
// value word:
//
//   - A writer acquires revocable exclusive ownership by CASing the
//     variable's owner cell to its descriptor, records the pre-value in
//     its undo log, and then writes the new value directly into the
//     value word (eager update).
//   - Readers are invisible: they resolve the logical value from the
//     (owner, status, value-word, undo-log) quadruple and validate their
//     read set on every read (opacity) and at commit.
//   - Aborting a transaction is a single CAS on its status word; nobody
//     rolls values back — the resolution rule charges readers of a
//     variable owned by an aborted transaction with fetching the
//     pre-value from the owner's undo log. The next writer overwrites
//     the stale in-place value.
//
// This is the repository's second full OFTM design point: eager
// (undo-log) versus DSTM's lazy (redo-locator) updates. It satisfies
// the same theory — obstruction-freedom (Definition 2), opacity, and,
// inevitably, Theorem 13's strict-DAP violation (its hot spot is the
// descriptor's status word and undo log).
//
// Like dstm, the engine layers per-variable versioned validation on top
// (PR 2): every variable carries a version word stamped by its last
// committed writer from the global clock, readers hold a snapshot
// timestamp, and validation is O(1) unless a read actually encounters a
// newer value (lazy snapshot extension). Because updates are eager, the
// in-place (version, value) pair is sampled with an owner-recheck: the
// owner cell is re-read after the pair, and since acquisition precedes
// both the eager write and the commit-time stamp, an unchanged owner
// proves the pair was not torn by an in-flight acquirer.
package nztm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	statusLive      uint64 = 0
	statusCommitted uint64 = 1
	statusAborted   uint64 = 2
)

// valMode selects the read-set validation strategy (see dstm for the
// full discussion of the three behaviors).
type valMode int

const (
	valVersioned   valMode = iota // per-variable versions + snapshot extension
	valGlobalEpoch                // PR 1 all-or-nothing commit counter (ablation)
	valFullScan                   // paper reference: full scan per read (ablation)
)

// undoEnt is one undo-log record: the pre-ownership value of a variable
// and that value's version.
type undoEnt struct {
	val uint64
	ver uint64
}

// desc is a transaction descriptor: status word plus the undo log that
// other processes consult when this transaction is aborted. The status
// word is embedded by value — a raw-mode descriptor is a single
// allocation — and leads the struct together with the other read-mostly
// fields, with the owner-written undo log and batched ops counter
// trailing (see dstm.txDesc for why this layout replaces a full
// cache-line pad: descriptors are per-transaction allocations, and pad
// bytes cost more on the begin path than the false sharing they
// prevent; the engine-wide clock keeps its true pads).
type desc struct {
	status base.U64
	id     model.TxID
	start  int64
	env    *sim.Env
	ops    atomic.Int64

	// The undo log is append-only with single-writer publication: the
	// owner fills slot undoN with plain stores and then publishes it by
	// advancing undoN (release); a resolver loads undoN (acquire) and
	// scans only published slots backwards (a re-acquisition after a
	// lost CAS race appends a fresh entry for the same variable, so the
	// latest one wins). No lock on the common path — an inline slot per
	// acquisition attempt — with a mutex-guarded spill map for
	// transactions that outgrow the slots. Accesses are modelled as
	// steps on undoObj so conflict analysis sees them.
	undoN     atomic.Int32
	undoSlots [undoInline]undoSlot
	mu        sync.Mutex
	spill     map[model.VarID]undoEnt
	undoObj   model.ObjID
}

// undoInline is the number of inline undo slots (appends, not distinct
// variables: acquisition retries append too).
const undoInline = 8

// undoSlot is one published undo record. Plain fields: written only by
// the owner before the undoN publication that covers them, never
// mutated afterwards.
type undoSlot struct {
	varID model.VarID
	e     undoEnt
}

func (d *desc) info() cm.TxInfo {
	return cm.TxInfo{ID: d.id, Start: d.start, Ops: d.ops.Load()}
}

// undoGet reads the undo entry for v (one step on the undo object).
// The spill map (if any) holds the newest entries and is consulted
// first; the inline slots are scanned backwards so the latest append
// for v wins.
func (d *desc) undoGet(p *sim.Proc, v model.VarID) (undoEnt, bool) {
	var e undoEnt
	var ok bool
	sim.Step(p, d.undoObj, "read", false, func() {
		n := int(d.undoN.Load()) // acquire: slots < n are fully written
		if n > undoInline {
			d.mu.Lock()
			e, ok = d.spill[v]
			d.mu.Unlock()
			if ok {
				return
			}
			n = undoInline
		}
		for i := n - 1; i >= 0; i-- {
			if d.undoSlots[i].varID == v {
				e, ok = d.undoSlots[i].e, true
				return
			}
		}
	})
	return e, ok
}

// undoPut records the undo entry for v (one step on the undo object).
// Append semantics: a fresh entry is written on every acquisition
// attempt BEFORE the ownership CAS, so by the time this descriptor is
// visible in an owner cell its undo entry for the variable is already
// published — resolvers never observe an owner without a pre-value.
func (d *desc) undoPut(p *sim.Proc, v model.VarID, e undoEnt) {
	sim.Step(p, d.undoObj, "write", true, func() {
		n := int(d.undoN.Load())
		if n < undoInline {
			d.undoSlots[n] = undoSlot{varID: v, e: e}
			d.undoN.Store(int32(n + 1)) // release: publishes the slot
			return
		}
		d.mu.Lock()
		if d.spill == nil {
			d.spill = map[model.VarID]undoEnt{}
		}
		d.spill[v] = e
		d.mu.Unlock()
		if n == undoInline {
			d.undoN.Store(int32(n + 1)) // flags the spill for readers
		}
	})
}

// tvar is a t-variable: an owner cell, the in-place value word, and the
// value's version word. The version is stamped only by a committing
// owner (tick-then-stamp-then-CAS), so cross-transaction accesses to it
// always share the t-variable itself — per-variable versions are not a
// strict-DAP hot spot.
type tvar struct {
	eng  *TM
	id   model.VarID
	name string
	// owner, val and ver are embedded by value: one allocation per
	// variable, and the (ver, val, owner) sampling triple sits on
	// adjacent lines.
	owner base.Cell[desc]
	val   base.U64
	ver   base.U64
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// Option configures the engine.
type Option func(*TM)

// WithEnv runs the engine under the simulator.
func WithEnv(env *sim.Env) Option { return func(t *TM) { t.env = env } }

// WithManager selects the contention manager (default Polite).
func WithManager(m cm.Manager) Option { return func(t *TM) { t.mgr = m } }

// WithoutEpochValidation disables versioned validation entirely,
// forcing a full owner-identity scan on every read (the O(R²) reference
// behavior). Ablation knob for experiment E8f.
func WithoutEpochValidation() Option { return func(t *TM) { t.mode = valFullScan } }

// GlobalEpochOnly selects the PR 1 all-or-nothing commit counter
// instead of per-variable versions (ablation control for E8g).
func GlobalEpochOnly() Option { return func(t *TM) { t.mode = valGlobalEpoch } }

// TM is the zero-indirection OFTM engine. It implements core.TM.
type TM struct {
	env  *sim.Env
	mgr  cm.Manager
	mode valMode

	// clock is the global version clock (see dstm): ticked before every
	// writing commit CAS; sampled for reader snapshots. In
	// valGlobalEpoch mode it doubles as the PR 1 commit epoch.
	clock base.VClock

	extensions atomic.Int64

	txPool sync.Pool

	mu      sync.Mutex
	vars    []*tvar
	nextTx  map[model.ProcID]int
	tickets atomic.Int64

	// Aborts counts forceful aborts inflicted on owners.
	Aborts atomic.Int64
}

// New returns an engine instance.
func New(opts ...Option) *TM {
	t := &TM{mgr: cm.Polite{}, mode: valVersioned, nextTx: map[model.ProcID]int{}}
	for _, o := range opts {
		o(t)
	}
	t.clock.Init(t.env, "nztm.clock")
	return t
}

// Name implements core.TM.
func (t *TM) Name() string { return "nztm" }

// ObstructionFree implements core.TM.
func (t *TM) ObstructionFree() bool { return true }

// NewVar implements core.TM.
func (t *TM) NewVar(name string, init uint64) core.Var {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := &tvar{
		eng:  t,
		id:   model.VarID(len(t.vars)),
		name: name,
	}
	v.owner.Init(t.env, name+".owner", nil)
	v.val.Init(t.env, name+".val", init)
	v.ver.Init(t.env, name+".ver", 0)
	t.vars = append(t.vars, v)
	return v
}

// ticketBlock is how many begin tickets a pooled raw-mode transaction
// reserves from the shared counter at once (see dstm: uniqueness is
// preserved, age order becomes block-granular).
const ticketBlock = 16

// Begin implements core.TM.
func (t *TM) Begin(p *sim.Proc) core.Tx {
	if p == nil {
		x, _ := t.txPool.Get().(*tx)
		if x == nil {
			x = &tx{eng: t}
		}
		if x.d == nil {
			x.d = new(desc)
		}
		if x.ticketNext >= x.ticketEnd {
			x.ticketEnd = t.tickets.Add(ticketBlock)
			x.ticketNext = x.ticketEnd - ticketBlock
		}
		x.ticketNext++
		x.reset(nil, model.TxID{Proc: 0, Seq: int(x.ticketNext)}, x.ticketNext)
		return x
	}
	ticket := t.tickets.Add(1)
	t.mu.Lock()
	pid := p.ID()
	t.nextTx[pid]++
	id := model.TxID{Proc: pid, Seq: t.nextTx[pid]}
	t.mu.Unlock()
	p.SetTx(id)
	x := &tx{eng: t, d: new(desc)}
	x.reset(p, id, ticket)
	if t.env != nil {
		x.d.status.Init(t.env, id.String()+".status", statusLive)
		x.d.undoObj = t.env.RegisterObj(id.String() + ".undo")
	}
	return x
}

// Stats implements core.StatsSource.
func (t *TM) Stats() core.TMStats {
	return core.TMStats{
		Epoch:              t.clock.Load(nil),
		ForcedAborts:       t.Aborts.Load(),
		SnapshotExtensions: t.extensions.Load(),
	}
}

// readEntry records the value read, its version, and the owner
// descriptor it was resolved under. Validation is by owner identity:
// every acquisition installs a fresh descriptor and the statuses a
// resolution returns under (nil owner, committed, aborted) are
// terminal, so an unchanged owner pointer implies an unchanged logical
// value — immune to ABA on the value word.
type readEntry struct {
	val   uint64
	ver   uint64
	owner *desc
}

type tx struct {
	eng  *TM
	p    *sim.Proc
	d    *desc
	rset core.SmallMap[*tvar, readEntry]
	wset core.SmallMap[*tvar, uint64] // current (written) value of owned vars
	// snap is the snapshot timestamp (valVersioned; see dstm).
	snap    uint64
	snapSet bool
	// valEpoch/valSet implement the valGlobalEpoch ablation (PR 1).
	valEpoch uint64
	valSet   bool
	done     model.Status
	// opsLocal is the private op counter behind noteOp.
	opsLocal int64
	// ticketNext/ticketEnd are the reserved begin tickets (raw mode).
	ticketNext, ticketEnd int64
}

// reset (re)initializes a transaction for a new attempt.
func (x *tx) reset(p *sim.Proc, id model.TxID, ticket int64) {
	d := x.d
	d.id = id
	d.start = ticket
	if d.ops.Load() != 0 {
		d.ops.Store(0) // published in batches; usually still zero
	}
	d.env = x.eng.env
	if d.undoN.Load() != 0 {
		d.undoN.Store(0)
		d.undoSlots = [undoInline]undoSlot{}
		d.spill = nil
	}
	if d.status.Read(nil) != statusLive {
		// Freshly allocated descriptors are already live (zero value);
		// only recycled ones pay the store.
		d.status.Init(nil, "", statusLive)
	}
	x.p = p
	x.rset.Reset()
	x.wset.Reset()
	x.snap, x.snapSet = 0, false
	x.valEpoch, x.valSet = 0, false
	x.done = model.Live
	x.opsLocal = 0
}

// noteOp counts a high-level operation (see dstm.noteOp: the shared ops
// word is published in batches and refreshed before raising a
// conflict, so uncontended transactions avoid an atomic RMW per op).
func (x *tx) noteOp() {
	x.opsLocal++
	if x.opsLocal&7 == 0 {
		x.d.ops.Store(x.opsLocal)
	}
}

// Recycle implements core.TxRecycler (see dstm.Recycle for the
// reclamation argument): a descriptor that acquired ownership has
// escaped into owner cells — resolvers may chase its status and undo
// log long after completion — so it is left to the garbage collector;
// read-only descriptors never published and are reused.
func (x *tx) Recycle() {
	if x.p != nil || x.done == model.Live {
		return
	}
	if x.wset.Len() != 0 {
		x.d = nil
	}
	x.rset.Reset()
	x.wset.Reset()
	x.eng.txPool.Put(x)
}

func (x *tx) ID() model.TxID { return x.d.id }

func (x *tx) Status() model.Status {
	switch x.d.status.Read(nil) {
	case statusCommitted:
		return model.Committed
	case statusAborted:
		return model.Aborted
	}
	return model.Live
}

func mustVar(t *TM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.eng != t {
		panic(fmt.Sprintf("nztm: variable %v belongs to a different TM", v))
	}
	return tv
}

func (x *tx) abortSelf() error {
	x.d.status.CAS(x.p, statusLive, statusAborted)
	x.done = model.Aborted
	x.p.SetTx(model.NoTx)
	return core.ErrAborted
}

func (x *tx) backoff(attempt int) {
	if x.p != nil {
		return
	}
	if attempt <= 6 {
		runtime.Gosched()
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	time.Sleep(time.Duration(1<<attempt) * time.Microsecond)
}

// sample reads v's in-place (version, value) pair and confirms the
// owner cell still holds o across the reads. Acquisition precedes both
// the acquirer's eager value write and its commit-time version stamp,
// so an unchanged owner cell proves the pair belongs to the resolution
// under o — not to an in-flight acquirer that landed between our owner
// load and the pair reads.
func (x *tx) sample(v *tvar, o *desc) (val, ver uint64, ok bool) {
	ver = v.ver.Read(x.p)
	val = v.val.Read(x.p)
	if v.owner.Load(x.p) != o {
		return 0, 0, false
	}
	return val, ver, true
}

// resolve returns the current logical value of v, that value's version,
// and the owner descriptor it was resolved under (nil if unowned),
// dealing with a live owner through the contention manager. ok=false
// means abort self. Resolution only returns under a terminal owner
// status.
func (x *tx) resolve(v *tvar) (val, ver uint64, owner *desc, ok bool) {
	attempt := 0
	for {
		o := v.owner.Load(x.p)
		if o == nil {
			if val, ver, ok := x.sample(v, o); ok {
				return val, ver, nil, true
			}
			continue // acquired mid-sample; re-resolve
		}
		switch o.status.Read(x.p) {
		case statusCommitted:
			// Committed owner's eager writes are the current value and
			// its stamp the current version. If the owner acquired but
			// never wrote, the words were untouched — also correct.
			if val, ver, ok := x.sample(v, o); ok {
				return val, ver, o, true
			}
			continue
		case statusAborted:
			// The aborted owner may have left a stale value (and, if it
			// was aborted between stamping and its commit CAS, a stale
			// version) in place; the pre-pair lives in its undo log.
			if e, ok := o.undoGet(x.p, v.id); ok {
				return e.val, e.ver, o, true
			}
			if val, ver, ok := x.sample(v, o); ok {
				return val, ver, o, true
			}
			continue
		}
		// Live owner.
		if attempt == 0 {
			x.d.ops.Store(x.opsLocal)
		}
		switch x.eng.mgr.OnConflict(x.d.info(), o.info(), attempt) {
		case cm.AbortVictim:
			if o.status.CAS(x.p, statusLive, statusAborted) {
				x.eng.Aborts.Add(1)
				// No logical value changes; versioned validation leaves
				// the clock alone (the victim reads its own status).
				// The PR 1 epoch mode keeps its bump, as the ablation
				// control.
				if x.eng.mode == valGlobalEpoch {
					x.eng.clock.Bump(x.p)
				}
			}
		case cm.Retry:
			x.backoff(attempt)
		case cm.AbortSelf:
			return 0, 0, nil, false
		}
		attempt++
	}
}

// validate checks every read-set entry by owner identity (the owner
// cell still holds the descriptor the value was resolved under) and
// that this transaction is still live.
func (x *tx) validate() bool {
	ok := true
	x.rset.Range(func(tv *tvar, e readEntry) bool {
		if tv.owner.Load(x.p) != e.owner {
			ok = false
		}
		return ok
	})
	return ok && x.d.status.Read(x.p) == statusLive
}

// ensureSnap samples the snapshot timestamp before the first read
// resolves (see dstm.ensureSnap for the ordering argument).
func (x *tx) ensureSnap() {
	if x.eng.mode != valVersioned || x.snapSet {
		return
	}
	x.snap = x.eng.clock.Load(x.p)
	x.snapSet = true
}

// extend is the lazy snapshot extension (see dstm.extend): sample the
// clock BEFORE the scan, re-validate every entry by owner identity,
// advance the snapshot to the sample.
func (x *tx) extend(ver uint64) bool {
	cur := x.eng.clock.Load(x.p)
	if !x.validate() {
		return false
	}
	x.snap = cur
	x.eng.extensions.Add(1)
	return ver <= cur
}

// maybeValidate is the per-access consistency check (see dstm): O(1)
// own-status read plus version-vs-snapshot comparison in versioned
// mode; extension only when a genuinely newer value was read.
func (x *tx) maybeValidate(ver uint64, haveVer bool) bool {
	switch x.eng.mode {
	case valFullScan:
		return x.validate()
	case valGlobalEpoch:
		cur := x.eng.clock.Load(x.p)
		if x.valSet && cur == x.valEpoch {
			return true
		}
		if !x.validate() {
			return false
		}
		x.valEpoch, x.valSet = cur, true
		return true
	}
	if x.d.status.Read(x.p) != statusLive {
		return false
	}
	if !haveVer || ver <= x.snap {
		return true
	}
	return x.extend(ver)
}

func (x *tx) Read(v core.Var) (uint64, error) {
	if x.done != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.noteOp()
	if val, ok := x.wset.Get(tv); ok {
		return val, nil
	}
	if e, ok := x.rset.Get(tv); ok {
		if tv.owner.Load(x.p) != e.owner {
			return 0, x.abortSelf()
		}
		return e.val, nil
	}
	x.ensureSnap()
	val, ver, owner, ok := x.resolve(tv)
	if !ok {
		return 0, x.abortSelf()
	}
	x.rset.PutNew(tv, readEntry{val: val, ver: ver, owner: owner})
	if !x.maybeValidate(ver, true) {
		return 0, x.abortSelf()
	}
	return val, nil
}

func (x *tx) Write(v core.Var, val uint64) error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.noteOp()
	if _, owned := x.wset.Get(tv); owned {
		x.wset.Put(tv, val)
		tv.val.Write(x.p, val)
		return nil
	}
	for {
		cur, curVer, prev, ok := x.resolve(tv)
		if !ok {
			return x.abortSelf()
		}
		// Snapshot consistency: a variable we read earlier must still be
		// resolved under the same owner we read it under.
		if e, seen := x.rset.Get(tv); seen && prev != e.owner {
			return x.abortSelf()
		}
		// Record the pre-pair BEFORE publishing ownership: once the CAS
		// below lands, any process may abort us and resolve the variable
		// through our undo log, which must already hold the pre-value
		// (the value word may still contain a previous aborted owner's
		// in-place garbage — the safety campaign found exactly this
		// laundering bug in an earlier record-after-CAS version).
		x.d.undoPut(x.p, tv.id, undoEnt{val: cur, ver: curVer})
		if !tv.owner.CAS(x.p, prev, x.d) {
			continue // lost the race; retry with a fresh pre-value
		}
		// We may have been aborted between resolve and CAS; the in-place
		// write below is then harmless garbage that resolution hides
		// behind the undo entry, but we must not continue operating.
		tv.val.Write(x.p, val)
		x.wset.PutNew(tv, val)
		x.rset.Delete(tv)
		if !x.maybeValidate(0, false) {
			return x.abortSelf()
		}
		return nil
	}
}

func (x *tx) Commit() error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	// Writers must rescan at commit: acquisitions stamp no version, so
	// two crossed writers could otherwise both pass their O(1) checks
	// and commit write skew (see dstm.Commit — the PR 1 exclusion
	// argument, preserved verbatim).
	readOnly := x.wset.Len() == 0
	switch {
	case readOnly && x.eng.mode == valVersioned:
		// Read-only fast path: every read was admitted at a version ≤
		// snap, so the transaction serializes at its snapshot timestamp.
	case readOnly && x.eng.mode == valGlobalEpoch && x.valSet && x.eng.clock.Load(x.p) == x.valEpoch:
		// PR 1 fast path: epoch unchanged since the last full scan.
	default:
		if !x.validate() {
			return x.abortSelf()
		}
	}
	if !readOnly {
		switch x.eng.mode {
		case valVersioned:
			// Tick-then-stamp-then-CAS: mint the version, stamp it onto
			// every owned variable's version word, then commit. A
			// reader that observes the committed status therefore
			// observes the stamps (the CAS orders them), and a stamp
			// whose commit CAS then fails is never consulted —
			// resolution under an aborted owner goes through the undo
			// log, and the next writer re-stamps.
			wv := x.eng.clock.Tick(x.p)
			x.wset.Range(func(tv *tvar, _ uint64) bool {
				tv.ver.Write(x.p, wv)
				return true
			})
		case valGlobalEpoch:
			// Pre-announce: the bump precedes the commit CAS so no
			// reader can skip validation across a commit.
			x.eng.clock.Bump(x.p)
		}
	}
	if !x.d.status.CAS(x.p, statusLive, statusCommitted) {
		x.done = model.Aborted
		x.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	x.done = model.Committed
	x.p.SetTx(model.NoTx)
	return nil
}

func (x *tx) Abort() {
	if x.done != model.Live {
		return
	}
	_ = x.abortSelf()
}
