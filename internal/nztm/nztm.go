// Package nztm implements a zero-indirection obstruction-free STM in
// the spirit of NZTM [29], the OFTM the paper cites as questioning
// DSTM's indirection cost (§7). Where DSTM reaches every value through
// a locator, here the current value lives *in place* in the variable's
// value word:
//
//   - A writer acquires revocable exclusive ownership by CASing the
//     variable's owner cell to its descriptor, records the pre-value in
//     its undo log, and then writes the new value directly into the
//     value word (eager update).
//   - Readers are invisible: they resolve the logical value from the
//     (owner, status, value-word, undo-log) quadruple and validate their
//     read set on every read (opacity) and at commit.
//   - Aborting a transaction is a single CAS on its status word; nobody
//     rolls values back — the resolution rule charges readers of a
//     variable owned by an aborted transaction with fetching the
//     pre-value from the owner's undo log. The next writer overwrites
//     the stale in-place value.
//
// This is the repository's second full OFTM design point: eager
// (undo-log) versus DSTM's lazy (redo-locator) updates. It satisfies
// the same theory — obstruction-freedom (Definition 2), opacity, and,
// inevitably, Theorem 13's strict-DAP violation (its hot spot is the
// descriptor's status word and undo log).
package nztm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	statusLive      uint64 = 0
	statusCommitted uint64 = 1
	statusAborted   uint64 = 2
)

// desc is a transaction descriptor: status word plus the undo log that
// other processes consult when this transaction is aborted.
type desc struct {
	id     model.TxID
	status *base.U64
	start  int64
	ops    atomic.Int64

	// undo holds the pre-ownership value of every variable this
	// transaction acquired. Guarded by mu; accesses are modelled as
	// steps on undoObj so conflict analysis sees them.
	mu      sync.Mutex
	undo    map[model.VarID]uint64
	undoObj model.ObjID
	env     *sim.Env
}

func (d *desc) info() cm.TxInfo {
	return cm.TxInfo{ID: d.id, Start: d.start, Ops: d.ops.Load()}
}

// undoGet reads the undo entry for v (one step on the undo object).
func (d *desc) undoGet(p *sim.Proc, v model.VarID) (uint64, bool) {
	var val uint64
	var ok bool
	sim.Step(p, d.undoObj, "read", false, func() {
		d.mu.Lock()
		val, ok = d.undo[v]
		d.mu.Unlock()
	})
	return val, ok
}

// undoPut records the undo entry for v (one step on the undo object).
// Overwrite semantics: the entry is (re)written on every acquisition
// attempt BEFORE the ownership CAS, so by the time this descriptor is
// visible in an owner cell its undo entry for the variable is already
// in place — resolvers never observe an owner without a pre-value.
func (d *desc) undoPut(p *sim.Proc, v model.VarID, val uint64) {
	sim.Step(p, d.undoObj, "write", true, func() {
		d.mu.Lock()
		if d.undo == nil {
			d.undo = map[model.VarID]uint64{}
		}
		d.undo[v] = val
		d.mu.Unlock()
	})
}

// tvar is a t-variable: an owner cell and the in-place value word.
type tvar struct {
	eng   *TM
	id    model.VarID
	name  string
	owner *base.Cell[desc]
	val   *base.U64
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// Option configures the engine.
type Option func(*TM)

// WithEnv runs the engine under the simulator.
func WithEnv(env *sim.Env) Option { return func(t *TM) { t.env = env } }

// WithManager selects the contention manager (default Polite).
func WithManager(m cm.Manager) Option { return func(t *TM) { t.mgr = m } }

// TM is the zero-indirection OFTM engine. It implements core.TM.
type TM struct {
	env *sim.Env
	mgr cm.Manager

	mu      sync.Mutex
	vars    []*tvar
	nextTx  map[model.ProcID]int
	rawSeq  atomic.Int64
	tickets atomic.Int64

	// Aborts counts forceful aborts inflicted on owners.
	Aborts atomic.Int64
}

// New returns an engine instance.
func New(opts ...Option) *TM {
	t := &TM{mgr: cm.Polite{}, nextTx: map[model.ProcID]int{}}
	for _, o := range opts {
		o(t)
	}
	return t
}

// Name implements core.TM.
func (t *TM) Name() string { return "nztm" }

// ObstructionFree implements core.TM.
func (t *TM) ObstructionFree() bool { return true }

// NewVar implements core.TM.
func (t *TM) NewVar(name string, init uint64) core.Var {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := &tvar{
		eng:   t,
		id:    model.VarID(len(t.vars)),
		name:  name,
		owner: base.NewCell[desc](t.env, name+".owner", nil),
		val:   base.NewU64(t.env, name+".val", init),
	}
	t.vars = append(t.vars, v)
	return v
}

// Begin implements core.TM.
func (t *TM) Begin(p *sim.Proc) core.Tx {
	var id model.TxID
	if p == nil {
		id = model.TxID{Proc: 0, Seq: int(t.rawSeq.Add(1))}
	} else {
		t.mu.Lock()
		pid := p.ID()
		t.nextTx[pid]++
		id = model.TxID{Proc: pid, Seq: t.nextTx[pid]}
		t.mu.Unlock()
		p.SetTx(id)
	}
	d := &desc{id: id, start: t.tickets.Add(1), env: t.env}
	if t.env != nil {
		d.status = base.NewU64(t.env, id.String()+".status", statusLive)
		d.undoObj = t.env.RegisterObj(id.String() + ".undo")
	} else {
		d.status = base.NewU64(nil, "", statusLive)
	}
	return &tx{eng: t, p: p, d: d}
}

// readEntry records the value read and the owner descriptor it was
// resolved under. Validation is by owner identity: every acquisition
// installs a fresh descriptor and the statuses a resolution returns
// under (nil owner, committed, aborted) are terminal, so an unchanged
// owner pointer implies an unchanged logical value — immune to ABA on
// the value word.
type readEntry struct {
	val   uint64
	owner *desc
}

type tx struct {
	eng  *TM
	p    *sim.Proc
	d    *desc
	rset map[*tvar]readEntry
	wset map[*tvar]uint64 // current (written) value of owned vars
	done model.Status
}

func (x *tx) ID() model.TxID { return x.d.id }

func (x *tx) Status() model.Status {
	switch x.d.status.Read(nil) {
	case statusCommitted:
		return model.Committed
	case statusAborted:
		return model.Aborted
	}
	return model.Live
}

func mustVar(t *TM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.eng != t {
		panic(fmt.Sprintf("nztm: variable %v belongs to a different TM", v))
	}
	return tv
}

func (x *tx) abortSelf() error {
	x.d.status.CAS(x.p, statusLive, statusAborted)
	x.done = model.Aborted
	x.p.SetTx(model.NoTx)
	return core.ErrAborted
}

func (x *tx) backoff(attempt int) {
	if x.p != nil {
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	time.Sleep(time.Duration(1<<attempt) * time.Microsecond)
}

// resolve returns the current logical value of v and the owner
// descriptor it was resolved under (nil if unowned), dealing with a
// live owner through the contention manager. ok=false means abort self.
func (x *tx) resolve(v *tvar) (val uint64, owner *desc, ok bool) {
	attempt := 0
	for {
		o := v.owner.Load(x.p)
		if o == nil {
			return v.val.Read(x.p), nil, true
		}
		switch o.status.Read(x.p) {
		case statusCommitted:
			// Committed owner's eager writes are the current value. If
			// the owner acquired but never wrote, the value word was
			// untouched — also correct.
			return v.val.Read(x.p), o, true
		case statusAborted:
			// The aborted owner may have left a stale value in place;
			// the pre-value lives in its undo log.
			if old, ok := o.undoGet(x.p, v.id); ok {
				return old, o, true
			}
			return v.val.Read(x.p), o, true
		}
		// Live owner.
		switch x.eng.mgr.OnConflict(x.d.info(), o.info(), attempt) {
		case cm.AbortVictim:
			if o.status.CAS(x.p, statusLive, statusAborted) {
				x.eng.Aborts.Add(1)
			}
		case cm.Retry:
			x.backoff(attempt)
		case cm.AbortSelf:
			return 0, nil, false
		}
		attempt++
	}
}

// validate checks every read-set entry by owner identity (the owner
// cell still holds the descriptor the value was resolved under) and
// that this transaction is still live.
func (x *tx) validate() bool {
	for tv, e := range x.rset {
		if tv.owner.Load(x.p) != e.owner {
			return false
		}
	}
	return x.d.status.Read(x.p) == statusLive
}

func (x *tx) Read(v core.Var) (uint64, error) {
	if x.done != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.d.ops.Add(1)
	if val, ok := x.wset[tv]; ok {
		return val, nil
	}
	if e, ok := x.rset[tv]; ok {
		if tv.owner.Load(x.p) != e.owner {
			return 0, x.abortSelf()
		}
		return e.val, nil
	}
	val, owner, ok := x.resolve(tv)
	if !ok {
		return 0, x.abortSelf()
	}
	if x.rset == nil {
		x.rset = map[*tvar]readEntry{}
	}
	x.rset[tv] = readEntry{val: val, owner: owner}
	if !x.validate() {
		return 0, x.abortSelf()
	}
	return val, nil
}

func (x *tx) Write(v core.Var, val uint64) error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.d.ops.Add(1)
	if _, owned := x.wset[tv]; owned {
		x.wset[tv] = val
		tv.val.Write(x.p, val)
		return nil
	}
	for {
		cur, prev, ok := x.resolve(tv)
		if !ok {
			return x.abortSelf()
		}
		// Snapshot consistency: a variable we read earlier must still be
		// resolved under the same owner we read it under.
		if e, seen := x.rset[tv]; seen && prev != e.owner {
			return x.abortSelf()
		}
		// Record the pre-value BEFORE publishing ownership: once the CAS
		// below lands, any process may abort us and resolve the variable
		// through our undo log, which must already hold the pre-value
		// (the value word may still contain a previous aborted owner's
		// in-place garbage — the safety campaign found exactly this
		// laundering bug in an earlier record-after-CAS version).
		x.d.undoPut(x.p, tv.id, cur)
		if !tv.owner.CAS(x.p, prev, x.d) {
			continue // lost the race; retry with a fresh pre-value
		}
		// We may have been aborted between resolve and CAS; the in-place
		// write below is then harmless garbage that resolution hides
		// behind the undo entry, but we must not continue operating.
		tv.val.Write(x.p, val)
		if x.wset == nil {
			x.wset = map[*tvar]uint64{}
		}
		x.wset[tv] = val
		delete(x.rset, tv)
		if !x.validate() {
			return x.abortSelf()
		}
		return nil
	}
}

func (x *tx) Commit() error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	if !x.validate() {
		return x.abortSelf()
	}
	if !x.d.status.CAS(x.p, statusLive, statusCommitted) {
		x.done = model.Aborted
		x.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	x.done = model.Committed
	x.p.SetTx(model.NoTx)
	return nil
}

func (x *tx) Abort() {
	if x.done != model.Live {
		return
	}
	_ = x.abortSelf()
}
