// Package nztm implements a zero-indirection obstruction-free STM in
// the spirit of NZTM [29], the OFTM the paper cites as questioning
// DSTM's indirection cost (§7). Where DSTM reaches every value through
// a locator, here the current value lives *in place* in the variable's
// value word:
//
//   - A writer acquires revocable exclusive ownership by CASing the
//     variable's owner cell to its descriptor, records the pre-value in
//     its undo log, and then writes the new value directly into the
//     value word (eager update).
//   - Readers are invisible: they resolve the logical value from the
//     (owner, status, value-word, undo-log) quadruple and validate their
//     read set on every read (opacity) and at commit.
//   - Aborting a transaction is a single CAS on its status word; nobody
//     rolls values back — the resolution rule charges readers of a
//     variable owned by an aborted transaction with fetching the
//     pre-value from the owner's undo log. The next writer overwrites
//     the stale in-place value.
//
// This is the repository's second full OFTM design point: eager
// (undo-log) versus DSTM's lazy (redo-locator) updates. It satisfies
// the same theory — obstruction-freedom (Definition 2), opacity, and,
// inevitably, Theorem 13's strict-DAP violation (its hot spot is the
// descriptor's status word and undo log).
package nztm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/base"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

const (
	statusLive      uint64 = 0
	statusCommitted uint64 = 1
	statusAborted   uint64 = 2
)

// desc is a transaction descriptor: status word plus the undo log that
// other processes consult when this transaction is aborted. The status
// word is embedded by value, so a raw-mode descriptor is a single
// allocation.
type desc struct {
	id     model.TxID
	status base.U64
	start  int64
	ops    atomic.Int64

	// undo holds the pre-ownership value of every variable this
	// transaction acquired. Guarded by mu; accesses are modelled as
	// steps on undoObj so conflict analysis sees them.
	mu      sync.Mutex
	undo    map[model.VarID]uint64
	undoObj model.ObjID
	env     *sim.Env
}

func (d *desc) info() cm.TxInfo {
	return cm.TxInfo{ID: d.id, Start: d.start, Ops: d.ops.Load()}
}

// undoGet reads the undo entry for v (one step on the undo object).
func (d *desc) undoGet(p *sim.Proc, v model.VarID) (uint64, bool) {
	var val uint64
	var ok bool
	sim.Step(p, d.undoObj, "read", false, func() {
		d.mu.Lock()
		val, ok = d.undo[v]
		d.mu.Unlock()
	})
	return val, ok
}

// undoPut records the undo entry for v (one step on the undo object).
// Overwrite semantics: the entry is (re)written on every acquisition
// attempt BEFORE the ownership CAS, so by the time this descriptor is
// visible in an owner cell its undo entry for the variable is already
// in place — resolvers never observe an owner without a pre-value.
func (d *desc) undoPut(p *sim.Proc, v model.VarID, val uint64) {
	sim.Step(p, d.undoObj, "write", true, func() {
		d.mu.Lock()
		if d.undo == nil {
			d.undo = map[model.VarID]uint64{}
		}
		d.undo[v] = val
		d.mu.Unlock()
	})
}

// tvar is a t-variable: an owner cell and the in-place value word.
type tvar struct {
	eng   *TM
	id    model.VarID
	name  string
	owner *base.Cell[desc]
	val   *base.U64
}

func (v *tvar) ID() model.VarID { return v.id }
func (v *tvar) Name() string    { return v.name }

// Option configures the engine.
type Option func(*TM)

// WithEnv runs the engine under the simulator.
func WithEnv(env *sim.Env) Option { return func(t *TM) { t.env = env } }

// WithManager selects the contention manager (default Polite).
func WithManager(m cm.Manager) Option { return func(t *TM) { t.mgr = m } }

// WithoutEpochValidation disables the commit-epoch fast path, forcing a
// full owner-identity scan on every read (the O(R²) reference
// behavior). Ablation knob for experiment E8f.
func WithoutEpochValidation() Option { return func(t *TM) { t.epochSkip = false } }

// TM is the zero-indirection OFTM engine. It implements core.TM.
type TM struct {
	env       *sim.Env
	mgr       cm.Manager
	epochSkip bool

	// epoch is the commit counter (see dstm): bumped immediately before
	// every writing commit CAS and after every forceful abort, letting
	// readers skip read-set validation across quiescent periods.
	epoch base.Epoch

	mu      sync.Mutex
	vars    []*tvar
	nextTx  map[model.ProcID]int
	rawSeq  atomic.Int64
	tickets atomic.Int64

	// Aborts counts forceful aborts inflicted on owners.
	Aborts atomic.Int64
}

// New returns an engine instance.
func New(opts ...Option) *TM {
	t := &TM{mgr: cm.Polite{}, epochSkip: true, nextTx: map[model.ProcID]int{}}
	for _, o := range opts {
		o(t)
	}
	t.epoch.Init(t.env, "nztm.epoch")
	return t
}

// Name implements core.TM.
func (t *TM) Name() string { return "nztm" }

// ObstructionFree implements core.TM.
func (t *TM) ObstructionFree() bool { return true }

// NewVar implements core.TM.
func (t *TM) NewVar(name string, init uint64) core.Var {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := &tvar{
		eng:   t,
		id:    model.VarID(len(t.vars)),
		name:  name,
		owner: base.NewCell[desc](t.env, name+".owner", nil),
		val:   base.NewU64(t.env, name+".val", init),
	}
	t.vars = append(t.vars, v)
	return v
}

// Begin implements core.TM.
func (t *TM) Begin(p *sim.Proc) core.Tx {
	var id model.TxID
	if p == nil {
		id = model.TxID{Proc: 0, Seq: int(t.rawSeq.Add(1))}
	} else {
		t.mu.Lock()
		pid := p.ID()
		t.nextTx[pid]++
		id = model.TxID{Proc: pid, Seq: t.nextTx[pid]}
		t.mu.Unlock()
		p.SetTx(id)
	}
	d := &desc{id: id, start: t.tickets.Add(1), env: t.env}
	if t.env != nil {
		d.status.Init(t.env, id.String()+".status", statusLive)
		d.undoObj = t.env.RegisterObj(id.String() + ".undo")
	} else {
		d.status.Init(nil, "", statusLive)
	}
	return &tx{eng: t, p: p, d: d}
}

// Stats implements core.StatsSource.
func (t *TM) Stats() core.TMStats {
	return core.TMStats{Epoch: t.epoch.Load(nil), ForcedAborts: t.Aborts.Load()}
}

// readEntry records the value read and the owner descriptor it was
// resolved under. Validation is by owner identity: every acquisition
// installs a fresh descriptor and the statuses a resolution returns
// under (nil owner, committed, aborted) are terminal, so an unchanged
// owner pointer implies an unchanged logical value — immune to ABA on
// the value word.
type readEntry struct {
	val   uint64
	owner *desc
}

type tx struct {
	eng  *TM
	p    *sim.Proc
	d    *desc
	rset core.SmallMap[*tvar, readEntry]
	wset core.SmallMap[*tvar, uint64] // current (written) value of owned vars
	// valEpoch is the engine epoch sampled immediately before the last
	// full validation that passed (valid when valSet); while the epoch
	// holds that value the read set cannot have been invalidated.
	valEpoch uint64
	valSet   bool
	done     model.Status
}

func (x *tx) ID() model.TxID { return x.d.id }

func (x *tx) Status() model.Status {
	switch x.d.status.Read(nil) {
	case statusCommitted:
		return model.Committed
	case statusAborted:
		return model.Aborted
	}
	return model.Live
}

func mustVar(t *TM, v core.Var) *tvar {
	tv, ok := v.(*tvar)
	if !ok || tv.eng != t {
		panic(fmt.Sprintf("nztm: variable %v belongs to a different TM", v))
	}
	return tv
}

func (x *tx) abortSelf() error {
	x.d.status.CAS(x.p, statusLive, statusAborted)
	x.done = model.Aborted
	x.p.SetTx(model.NoTx)
	return core.ErrAborted
}

func (x *tx) backoff(attempt int) {
	if x.p != nil {
		return
	}
	if attempt > 10 {
		attempt = 10
	}
	time.Sleep(time.Duration(1<<attempt) * time.Microsecond)
}

// resolve returns the current logical value of v and the owner
// descriptor it was resolved under (nil if unowned), dealing with a
// live owner through the contention manager. ok=false means abort self.
func (x *tx) resolve(v *tvar) (val uint64, owner *desc, ok bool) {
	attempt := 0
	for {
		o := v.owner.Load(x.p)
		if o == nil {
			return v.val.Read(x.p), nil, true
		}
		switch o.status.Read(x.p) {
		case statusCommitted:
			// Committed owner's eager writes are the current value. If
			// the owner acquired but never wrote, the value word was
			// untouched — also correct.
			return v.val.Read(x.p), o, true
		case statusAborted:
			// The aborted owner may have left a stale value in place;
			// the pre-value lives in its undo log.
			if old, ok := o.undoGet(x.p, v.id); ok {
				return old, o, true
			}
			return v.val.Read(x.p), o, true
		}
		// Live owner.
		switch x.eng.mgr.OnConflict(x.d.info(), o.info(), attempt) {
		case cm.AbortVictim:
			if o.status.CAS(x.p, statusLive, statusAborted) {
				x.eng.Aborts.Add(1)
				// No logical value changes, but the bump lets the victim
				// notice its own abort at its next epoch check.
				if x.eng.epochSkip {
					x.eng.epoch.Bump(x.p)
				}
			}
		case cm.Retry:
			x.backoff(attempt)
		case cm.AbortSelf:
			return 0, nil, false
		}
		attempt++
	}
}

// validate checks every read-set entry by owner identity (the owner
// cell still holds the descriptor the value was resolved under) and
// that this transaction is still live.
func (x *tx) validate() bool {
	ok := true
	x.rset.Range(func(tv *tvar, e readEntry) bool {
		if tv.owner.Load(x.p) != e.owner {
			ok = false
		}
		return ok
	})
	return ok && x.d.status.Read(x.p) == statusLive
}

// maybeValidate is the commit-epoch fast path around validate: sample
// the epoch, skip the scan when it has not moved since the last full
// validation (no transaction committed, so no logical value changed),
// otherwise rescan and remember the pre-scan sample. See dstm for the
// ordering argument.
func (x *tx) maybeValidate() bool {
	if !x.eng.epochSkip {
		// Ablation baseline: no epoch accesses anywhere.
		return x.validate()
	}
	cur := x.eng.epoch.Load(x.p)
	if x.valSet && cur == x.valEpoch {
		return true
	}
	if !x.validate() {
		return false
	}
	x.valEpoch, x.valSet = cur, true
	return true
}

func (x *tx) Read(v core.Var) (uint64, error) {
	if x.done != model.Live {
		return 0, core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.d.ops.Add(1)
	if val, ok := x.wset.Get(tv); ok {
		return val, nil
	}
	if e, ok := x.rset.Get(tv); ok {
		if tv.owner.Load(x.p) != e.owner {
			return 0, x.abortSelf()
		}
		return e.val, nil
	}
	val, owner, ok := x.resolve(tv)
	if !ok {
		return 0, x.abortSelf()
	}
	x.rset.Put(tv, readEntry{val: val, owner: owner})
	if !x.maybeValidate() {
		return 0, x.abortSelf()
	}
	return val, nil
}

func (x *tx) Write(v core.Var, val uint64) error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	tv := mustVar(x.eng, v)
	x.d.ops.Add(1)
	if _, owned := x.wset.Get(tv); owned {
		x.wset.Put(tv, val)
		tv.val.Write(x.p, val)
		return nil
	}
	for {
		cur, prev, ok := x.resolve(tv)
		if !ok {
			return x.abortSelf()
		}
		// Snapshot consistency: a variable we read earlier must still be
		// resolved under the same owner we read it under.
		if e, seen := x.rset.Get(tv); seen && prev != e.owner {
			return x.abortSelf()
		}
		// Record the pre-value BEFORE publishing ownership: once the CAS
		// below lands, any process may abort us and resolve the variable
		// through our undo log, which must already hold the pre-value
		// (the value word may still contain a previous aborted owner's
		// in-place garbage — the safety campaign found exactly this
		// laundering bug in an earlier record-after-CAS version).
		x.d.undoPut(x.p, tv.id, cur)
		if !tv.owner.CAS(x.p, prev, x.d) {
			continue // lost the race; retry with a fresh pre-value
		}
		// We may have been aborted between resolve and CAS; the in-place
		// write below is then harmless garbage that resolution hides
		// behind the undo entry, but we must not continue operating.
		tv.val.Write(x.p, val)
		x.wset.Put(tv, val)
		x.rset.Delete(tv)
		if !x.maybeValidate() {
			return x.abortSelf()
		}
		return nil
	}
}

func (x *tx) Commit() error {
	if x.done != model.Live {
		return core.ErrAborted
	}
	// Read-only transactions may use the epoch skip (they serialize at
	// their last full validation); writers must rescan, since ownership
	// acquisitions do not bump the epoch and two crossed writers could
	// otherwise both skip and commit write skew (see dstm.Commit).
	readOnly := x.wset.Len() == 0
	if !(readOnly && x.eng.epochSkip && x.valSet && x.eng.epoch.Load(x.p) == x.valEpoch) && !x.validate() {
		return x.abortSelf()
	}
	if !readOnly && x.eng.epochSkip {
		// Pre-announce: the bump precedes the commit CAS so no reader
		// can skip validation across a commit that changes values.
		x.eng.epoch.Bump(x.p)
	}
	if !x.d.status.CAS(x.p, statusLive, statusCommitted) {
		x.done = model.Aborted
		x.p.SetTx(model.NoTx)
		return core.ErrAborted
	}
	x.done = model.Committed
	x.p.SetTx(model.NoTx)
	return nil
}

func (x *tx) Abort() {
	if x.done != model.Live {
		return
	}
	_ = x.abortSelf()
}
