package nztm_test

import (
	"errors"
	"testing"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nztm"
	"repro/internal/sim"
	"repro/internal/tmtest"
)

func factory(env *sim.Env) core.TM {
	if env == nil {
		return nztm.New()
	}
	return nztm.New(nztm.WithEnv(env))
}

func TestConformance(t *testing.T) {
	tmtest.Conformance(t, factory)
}

func TestConformancePerManager(t *testing.T) {
	for _, mgr := range cm.All() {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			tmtest.Conformance(t, func(env *sim.Env) core.TM {
				if env == nil {
					return nztm.New(nztm.WithManager(mgr))
				}
				return nztm.New(nztm.WithEnv(env), nztm.WithManager(mgr))
			})
		})
	}
}

func TestSafetyCampaign(t *testing.T) {
	tmtest.SafetyCampaign(t, factory, tmtest.CampaignConfig{Seeds: 30})
}

func TestSafetyCampaignAggressive(t *testing.T) {
	tmtest.SafetyCampaign(t, func(env *sim.Env) core.TM {
		return nztm.New(nztm.WithEnv(env), nztm.WithManager(cm.Aggressive{}))
	}, tmtest.CampaignConfig{Seeds: 20})
}

// TestAbortedOwnerLeavesNoTrace: the defining zero-indirection hazard —
// an aborted writer's eager in-place write must be invisible: readers
// fetch the pre-value from the undo log and the next writer overwrites
// the stale word.
func TestAbortedOwnerLeavesNoTrace(t *testing.T) {
	tm := nztm.New(nztm.WithManager(cm.Aggressive{}))
	x := tm.NewVar("x", 7)

	t1 := tm.Begin(nil)
	if err := t1.Write(x, 99); err != nil { // eager: 99 is now in place
		t.Fatal(err)
	}
	// A reader forcefully aborts T1 and must see 7, not 99.
	v, err := core.ReadVar(tm, nil, x)
	if err != nil || v != 7 {
		t.Fatalf("read after aborting eager writer: %d (%v), want 7", v, err)
	}
	if err := t1.Commit(); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("t1 must be aborted, commit gave %v", err)
	}
	// A new writer overwrites the stale word; later reads are clean.
	if err := core.WriteVar(tm, nil, x, 8); err != nil {
		t.Fatal(err)
	}
	v, err = core.ReadVar(tm, nil, x)
	if err != nil || v != 8 {
		t.Fatalf("x = %d (%v), want 8", v, err)
	}
}

// TestSuspendedOwnerDoesNotBlock mirrors the DSTM obstruction test.
func TestSuspendedOwnerDoesNotBlock(t *testing.T) {
	env := sim.New()
	tm := nztm.New(nztm.WithEnv(env), nztm.WithManager(cm.Aggressive{}))
	x := tm.NewVar("x", 3)

	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		_ = tx.Commit()
	})
	var p2val uint64
	var p2err error
	env.Spawn(func(p *sim.Proc) {
		p2err = core.Run(tm, p, func(tx core.Tx) error {
			v, err := tx.Read(x)
			p2val = v
			return err
		}, core.MaxAttempts(10))
	})
	// p1: owner.Load + val read (resolve) + owner CAS + undo write + val
	// write = suspend mid-update, after the eager value write.
	env.Run(sim.Script(
		sim.Phase{Proc: 1, Steps: 5},
		sim.Phase{Proc: 2, Steps: -1},
	))
	if p2err != nil {
		t.Fatalf("p2 must complete: %v", p2err)
	}
	if p2val != 3 {
		t.Fatalf("p2 must read pre-T1 value 3 from the undo log, got %d", p2val)
	}
}

// TestOwnerIdentityValidationCatchesWriters: a reader's snapshot is
// invalidated by any new acquisition of a read variable.
func TestOwnerIdentityValidationCatchesWriters(t *testing.T) {
	tm := nztm.New()
	x := tm.NewVar("x", 0)
	y := tm.NewVar("y", 0)

	t1 := tm.Begin(nil)
	if v, err := t1.Read(x); err != nil || v != 0 {
		t.Fatalf("read x: %d %v", v, err)
	}
	// T2 commits x=1, y=1.
	if err := core.Run(tm, nil, func(tx core.Tx) error {
		if err := tx.Write(x, 1); err != nil {
			return err
		}
		return tx.Write(y, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Read(y); !errors.Is(err, core.ErrAborted) {
		t.Fatalf("mixed snapshot must abort, got %v", err)
	}
}

// TestStatusLifecycle exercises Status through the lifecycle.
func TestStatusLifecycle(t *testing.T) {
	tm := nztm.New()
	x := tm.NewVar("x", 0)
	tx := tm.Begin(nil)
	if tx.Status() != model.Live {
		t.Fatalf("status %v", tx.Status())
	}
	if err := tx.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Status() != model.Committed {
		t.Fatalf("status %v", tx.Status())
	}
}

func TestForeignVarPanics(t *testing.T) {
	tm1 := nztm.New()
	tm2 := nztm.New()
	x := tm2.NewVar("x", 0)
	tx := tm1.Begin(nil)
	defer func() {
		if recover() == nil {
			t.Fatalf("foreign var must panic")
		}
	}()
	_, _ = tx.Read(x)
}

func TestCrashCampaign(t *testing.T) {
	tmtest.CrashCampaign(t, func(env *sim.Env) core.TM {
		return nztm.New(nztm.WithEnv(env), nztm.WithManager(cm.Aggressive{}))
	}, 25)
}
