// White-box tests for per-variable versioned validation in the
// zero-indirection engine.
package nztm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestVictimDetectsAbortO1: a forcefully aborted victim discovers its
// abort through its OWN status word on the next access, in O(1) steps
// independent of its read-set size — forceful aborts no longer bump any
// global word. The abort is inflicted with a raw (unscheduled) status
// CAS, as an attacker's revocation would.
func TestVictimDetectsAbortO1(t *testing.T) {
	detect := func(reads int) int64 {
		env := sim.New()
		eng := New(WithEnv(env))
		vars := make([]core.Var, reads+1)
		for i := range vars {
			vars[i] = eng.NewVar(fmt.Sprintf("v%d", i), 0)
		}
		var steps int64
		var failure error
		env.Spawn(func(p *sim.Proc) {
			x := eng.Begin(p).(*tx)
			for i := 0; i < reads; i++ {
				if _, err := x.Read(vars[i]); err != nil {
					failure = fmt.Errorf("setup read %d: %v", i, err)
					return
				}
			}
			x.d.status.CAS(nil, statusLive, statusAborted)
			before := env.TotalSteps()
			_, err := x.Read(vars[reads])
			steps = env.TotalSteps() - before
			if !errors.Is(err, core.ErrAborted) {
				failure = fmt.Errorf("victim read after forceful abort returned %v, want ErrAborted", err)
			}
		})
		env.Run(sim.Solo(1))
		if failure != nil {
			t.Fatal(failure)
		}
		return steps
	}
	s16 := detect(16)
	s256 := detect(256)
	if s16 > 10 || s256 > 10 {
		t.Fatalf("victim abort detection took %d steps at R=16 and %d at R=256, want ≤ 10 (O(1))", s16, s256)
	}
	if s16 != s256 {
		t.Fatalf("victim abort detection cost depends on read-set size: %d at R=16 vs %d at R=256", s16, s256)
	}
}

// TestAbortedStampNeverConsulted: a writer that stamped version words
// and was then forcefully aborted before its commit CAS leaves garbage
// in the variable's version word — resolution must keep answering
// through the undo log (pre-value AND pre-version) until the next
// writer re-stamps.
func TestAbortedStampNeverConsulted(t *testing.T) {
	eng := New()
	x := eng.NewVar("x", 3).(*tvar)

	// Establish a committed version on x.
	if err := core.WriteVar(eng, nil, x, 7); err != nil {
		t.Fatal(err)
	}
	verBefore := x.ver.Read(nil)

	// A writer acquires x, eagerly writes, stamps as if committing, and
	// is then forcefully aborted before its commit CAS lands.
	w := eng.Begin(nil).(*tx)
	if err := w.Write(x, 99); err != nil {
		t.Fatal(err)
	}
	x.ver.Write(nil, eng.clock.Tick(nil)) // the stamp half of a commit...
	w.d.status.CAS(nil, statusLive, statusAborted)

	// A fresh reader must resolve the pre-pair from the undo log.
	r := eng.Begin(nil).(*tx)
	v, err := r.Read(x)
	if err != nil || v != 7 {
		t.Fatalf("read under aborted stamped owner = %d (%v), want 7", v, err)
	}
	if e, ok := r.rset.Get(x); !ok || e.ver != verBefore {
		t.Fatalf("reader recorded version %d, want the undo pre-version %d", e.ver, verBefore)
	}
	if err := r.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
}
