package ds_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/alg2"
	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/dstm"
	"repro/internal/locktm"
)

// engines lists the raw-mode engines the structures must work on.
// Algorithm 2 is included with a coarse workload only (it is the
// deliberately impractical construction).
func engines() map[string]func() core.TM {
	return map[string]func() core.TM{
		"dstm":   func() core.TM { return dstm.New() },
		"2pl":    func() core.TM { return locktm.NewTwoPhase() },
		"tl2":    func() core.TM { return locktm.NewGlobalClock() },
		"coarse": func() core.TM { return locktm.NewCoarse() },
	}
}

func TestCounter(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			c := ds.NewCounter(mk(), 5)
			if err := c.Add(nil, 10); err != nil {
				t.Fatal(err)
			}
			if err := c.Inc(nil); err != nil {
				t.Fatal(err)
			}
			v, err := c.Value(nil)
			if err != nil || v != 16 {
				t.Fatalf("counter = %d (%v), want 16", v, err)
			}
		})
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := ds.NewCounter(dstm.New(), 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := c.Inc(nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, err := c.Value(nil)
	if err != nil || v != 800 {
		t.Fatalf("counter = %d (%v), want 800", v, err)
	}
}

func TestBankConservation(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			b := ds.NewBank(mk(), 8, 100)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 100; i++ {
						from, to := rng.Intn(8), rng.Intn(8)
						if from == to {
							continue
						}
						if err := b.Transfer(nil, from, to, uint64(rng.Intn(20))); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			total, err := b.Total(nil)
			if err != nil || total != 800 {
				t.Fatalf("total = %d (%v), want 800", total, err)
			}
			if b.Accounts() != 8 {
				t.Fatalf("accounts = %d", b.Accounts())
			}
		})
	}
}

func TestBankInsufficientFundsIsNoop(t *testing.T) {
	b := ds.NewBank(dstm.New(), 2, 10)
	if err := b.Transfer(nil, 0, 1, 50); err != nil {
		t.Fatal(err)
	}
	v0, _ := b.Balance(nil, 0)
	v1, _ := b.Balance(nil, 1)
	if v0 != 10 || v1 != 10 {
		t.Fatalf("balances %d/%d, want 10/10", v0, v1)
	}
}

func TestIntSetSequential(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			s := ds.NewIntSet(mk())
			for _, k := range []uint64{5, 1, 9, 3, 7} {
				added, err := s.Insert(nil, k)
				if err != nil || !added {
					t.Fatalf("insert %d: %v %v", k, added, err)
				}
			}
			if added, _ := s.Insert(nil, 5); added {
				t.Fatalf("duplicate insert must report false")
			}
			for _, k := range []uint64{1, 3, 5, 7, 9} {
				ok, err := s.Contains(nil, k)
				if err != nil || !ok {
					t.Fatalf("contains %d: %v %v", k, ok, err)
				}
			}
			if ok, _ := s.Contains(nil, 4); ok {
				t.Fatalf("4 must be absent")
			}
			if removed, _ := s.Remove(nil, 3); !removed {
				t.Fatalf("remove 3 failed")
			}
			if removed, _ := s.Remove(nil, 3); removed {
				t.Fatalf("double remove must report false")
			}
			snap, err := s.Snapshot(nil)
			if err != nil {
				t.Fatal(err)
			}
			want := []uint64{1, 5, 7, 9}
			if len(snap) != len(want) {
				t.Fatalf("snapshot %v, want %v", snap, want)
			}
			for i := range want {
				if snap[i] != want[i] {
					t.Fatalf("snapshot %v, want %v", snap, want)
				}
			}
		})
	}
}

// TestIntSetMatchesReference drives random operations against both the
// transactional set and a plain map, comparing every result.
func TestIntSetMatchesReference(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s := ds.NewIntSet(dstm.New())
		ref := map[uint64]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := uint64(op % 64)
			switch rng.Intn(3) {
			case 0:
				added, err := s.Insert(nil, k)
				if err != nil || added == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				removed, err := s.Remove(nil, k)
				if err != nil || removed != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				ok, err := s.Contains(nil, k)
				if err != nil || ok != ref[k] {
					return false
				}
			}
		}
		snap, err := s.Snapshot(nil)
		if err != nil || len(snap) != len(ref) {
			return false
		}
		if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
			return false
		}
		for _, k := range snap {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIntSetConcurrent(t *testing.T) {
	s := ds.NewIntSet(dstm.New())
	const workers = 6
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Disjoint key ranges: all inserts must succeed exactly once.
			for i := 0; i < perWorker; i++ {
				k := uint64(w*1000 + i)
				added, err := s.Insert(nil, k)
				if err != nil || !added {
					t.Errorf("insert %d: %v %v", k, added, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap, err := s.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != workers*perWorker {
		t.Fatalf("size %d, want %d", len(snap), workers*perWorker)
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
		t.Fatalf("snapshot not sorted")
	}
}

func TestHashSequential(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			h := ds.NewHash(mk(), 4)
			if added, err := h.Put(nil, 1, 10); err != nil || !added {
				t.Fatalf("put: %v %v", added, err)
			}
			if added, _ := h.Put(nil, 1, 20); added {
				t.Fatalf("overwrite must report existing key")
			}
			v, ok, err := h.Get(nil, 1)
			if err != nil || !ok || v != 20 {
				t.Fatalf("get: %d %v %v", v, ok, err)
			}
			if _, ok, _ := h.Get(nil, 2); ok {
				t.Fatalf("missing key reported present")
			}
			if removed, _ := h.Delete(nil, 1); !removed {
				t.Fatalf("delete failed")
			}
			if n, _ := h.Len(nil); n != 0 {
				t.Fatalf("len = %d", n)
			}
		})
	}
}

func TestHashMatchesReference(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		h := ds.NewHash(locktm.NewGlobalClock(), 8)
		ref := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := uint64(op % 128)
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Intn(1000)) + 1
				added, err := h.Put(nil, k, v)
				_, existed := ref[k]
				if err != nil || added == existed {
					return false
				}
				ref[k] = v
			case 1:
				removed, err := h.Delete(nil, k)
				_, existed := ref[k]
				if err != nil || removed != existed {
					return false
				}
				delete(ref, k)
			default:
				v, ok, err := h.Get(nil, k)
				want, existed := ref[k]
				if err != nil || ok != existed || (ok && v != want) {
					return false
				}
			}
		}
		n, err := h.Len(nil)
		return err == nil && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFO(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			q := ds.NewQueue(mk(), 4)
			if q.Cap() != 4 {
				t.Fatalf("cap %d", q.Cap())
			}
			for i := uint64(1); i <= 4; i++ {
				ok, err := q.Enqueue(nil, i)
				if err != nil || !ok {
					t.Fatalf("enqueue %d: %v %v", i, ok, err)
				}
			}
			if ok, _ := q.Enqueue(nil, 5); ok {
				t.Fatalf("enqueue into full queue must fail")
			}
			for i := uint64(1); i <= 4; i++ {
				v, ok, err := q.Dequeue(nil)
				if err != nil || !ok || v != i {
					t.Fatalf("dequeue: %d %v %v, want %d", v, ok, err, i)
				}
			}
			if _, ok, _ := q.Dequeue(nil); ok {
				t.Fatalf("dequeue from empty queue must fail")
			}
		})
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	q := ds.NewQueue(dstm.New(), 16)
	const producers, items = 4, 50
	var consumed sync.Map
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < items; i++ {
				v := uint64(w*10000 + i + 1)
				for {
					ok, err := q.Enqueue(nil, v)
					if err != nil {
						t.Error(err)
						return
					}
					if ok {
						break
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	var consumerWg sync.WaitGroup
	for c := 0; c < 2; c++ {
		consumerWg.Add(1)
		go func() {
			defer consumerWg.Done()
			for {
				v, ok, err := q.Dequeue(nil)
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					if _, dup := consumed.LoadOrStore(v, true); dup {
						t.Errorf("value %d consumed twice", v)
						return
					}
					continue
				}
				select {
				case <-done:
					// Drain once more after producers finished.
					if v, ok, _ := q.Dequeue(nil); ok {
						consumed.Store(v, true)
						continue
					}
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	consumerWg.Wait()
	// Drain leftovers.
	for {
		v, ok, err := q.Dequeue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		consumed.Store(v, true)
	}
	n := 0
	consumed.Range(func(_, _ any) bool { n++; return true })
	if n != producers*items {
		t.Fatalf("consumed %d items, want %d", n, producers*items)
	}
}

func TestStructuresOnAlg2(t *testing.T) {
	// The impractical construction still runs the real structures.
	tm := alg2.New()
	s := ds.NewIntSet(tm)
	for _, k := range []uint64{2, 1, 3} {
		if added, err := s.Insert(nil, k); err != nil || !added {
			t.Fatalf("insert %d on alg2: %v %v", k, added, err)
		}
	}
	snap, err := s.Snapshot(nil)
	if err != nil || len(snap) != 3 {
		t.Fatalf("snapshot on alg2: %v %v", snap, err)
	}
}

// TestEarlyReleaseTraversalSurvivesBehindWriter: with early release, a
// traversal deep in the list is not aborted by an update behind it —
// the scenario DSTM's early release exists for.
func TestEarlyReleaseTraversalSurvivesBehindWriter(t *testing.T) {
	tm := dstm.New()
	s := ds.NewIntSetEarlyRelease(tm)
	for k := uint64(10); k <= 100; k += 10 {
		if _, err := s.Insert(nil, k); err != nil {
			t.Fatal(err)
		}
	}
	// Readers repeatedly look up the tail key while a writer churns the
	// head region. With early release on DSTM, tail lookups drop the
	// head nodes from their read sets, so the churn cannot invalidate
	// them; every lookup must succeed.
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = s.Remove(nil, 10)
			_, _ = s.Insert(nil, 10)
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				ok, err := s.Contains(nil, 100)
				if err != nil || !ok {
					t.Errorf("tail lookup failed: %v %v", ok, err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestEarlyReleaseSetStillCorrect: the early-release set still behaves
// like a set under a mixed concurrent workload (the release pattern is
// the DSTM paper's, which preserves linearizability of the set ops).
func TestEarlyReleaseSetStillCorrect(t *testing.T) {
	s := ds.NewIntSetEarlyRelease(dstm.New())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := uint64(w*1000 + i)
				if added, err := s.Insert(nil, k); err != nil || !added {
					t.Errorf("insert %d: %v %v", k, added, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap, err := s.Snapshot(nil)
	if err != nil || len(snap) != 240 {
		t.Fatalf("size %d (%v), want 240", len(snap), err)
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
		t.Fatal("not sorted")
	}
}

func TestHashUpdateAtomic(t *testing.T) {
	h := ds.NewHash(dstm.New(), 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := h.Update(nil, 7, func(old uint64, _ bool) uint64 { return old + 1 }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, ok, err := h.Get(nil, 7)
	if err != nil || !ok || v != 800 {
		t.Fatalf("counter = %d (%v %v), want 800", v, ok, err)
	}
}
