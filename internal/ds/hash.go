package ds

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Hash is a fixed-bucket transactional hash map from uint64 keys to
// uint64 values. Each bucket is a sorted list; operations touch a
// single bucket, so transactions on different buckets are disjoint —
// the workload shape used by the disjoint-access experiments.
type Hash struct {
	tm      core.TM
	buckets []*list
}

// NewHash allocates a map with the given number of buckets (rounded up
// to at least 1).
func NewHash(tm core.TM, buckets int) *Hash {
	if buckets < 1 {
		buckets = 1
	}
	h := &Hash{tm: tm}
	for i := 0; i < buckets; i++ {
		h.buckets = append(h.buckets, newList(newArena(tm, fmt.Sprintf("hash.b%d", i), true)))
	}
	return h
}

func (h *Hash) bucket(k uint64) *list {
	// Fibonacci hashing spreads adjacent keys across buckets.
	return h.buckets[(k*0x9E3779B97F4A7C15)>>32%uint64(len(h.buckets))]
}

// Put stores k -> v, reporting whether the key was new.
func (h *Hash) Put(p *sim.Proc, k, v uint64, opts ...core.RunOption) (bool, error) {
	var added bool
	var spare uint64
	b := h.bucket(k)
	err := core.Run(h.tm, p, func(tx core.Tx) error {
		var err error
		added, err = b.insert(tx, k, v, &spare)
		return err
	}, opts...)
	return added, err
}

// Get returns the value for k and whether it is present.
func (h *Hash) Get(p *sim.Proc, k uint64, opts ...core.RunOption) (uint64, bool, error) {
	var val uint64
	var ok bool
	b := h.bucket(k)
	err := core.Run(h.tm, p, func(tx core.Tx) error {
		node, err := b.lookup(tx, k)
		if err != nil {
			return err
		}
		ok = node != 0
		if ok {
			val, err = tx.Read(b.a.valVar(node))
			return err
		}
		val = 0
		return nil
	}, opts...)
	return val, ok, err
}

// Delete removes k, reporting whether it was present.
func (h *Hash) Delete(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var removed bool
	b := h.bucket(k)
	err := core.Run(h.tm, p, func(tx core.Tx) error {
		var err error
		removed, err = b.remove(tx, k)
		return err
	}, opts...)
	return removed, err
}

// Len counts all entries atomically (a long read-only transaction
// spanning every bucket). It uses the step-lean count path: only next
// pointers are read, so the transaction does one read per entry plus
// one per bucket, and allocates no key slices.
func (h *Hash) Len(p *sim.Proc, opts ...core.RunOption) (int, error) {
	var n int
	err := core.Run(h.tm, p, func(tx core.Tx) error {
		n = 0
		for _, b := range h.buckets {
			c, err := b.count(tx)
			if err != nil {
				return err
			}
			n += c
		}
		return nil
	}, opts...)
	return n, err
}

// Update atomically transforms the value at k: f receives the current
// value (and whether k was present) and returns the new value. The
// whole read-modify-write is one transaction.
func (h *Hash) Update(p *sim.Proc, k uint64, f func(old uint64, ok bool) uint64, opts ...core.RunOption) error {
	var spare uint64
	b := h.bucket(k)
	return core.Run(h.tm, p, func(tx core.Tx) error {
		node, err := b.lookup(tx, k)
		if err != nil {
			return err
		}
		var cur uint64
		if node != 0 {
			cur, err = tx.Read(b.a.valVar(node))
			if err != nil {
				return err
			}
		}
		_, err = b.insert(tx, k, f(cur, node != 0), &spare)
		return err
	}, opts...)
}
