package ds

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// IntSet is the classic sorted-linked-list set microbenchmark (the
// workload DSTM [18] was evaluated on): Insert, Remove and Contains of
// uint64 keys, each a single transaction traversing the list.
type IntSet struct {
	tm core.TM
	l  *list
}

// NewIntSet allocates an empty set on the given engine.
func NewIntSet(tm core.TM) *IntSet {
	return &IntSet{tm: tm, l: newList(newArena(tm, "intset", false))}
}

// Insert adds k, reporting whether it was absent.
func (s *IntSet) Insert(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var added bool
	var spare uint64
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		var err error
		added, err = s.l.insert(tx, k, 0, &spare)
		return err
	}, opts...)
	return added, err
}

// Remove deletes k, reporting whether it was present.
func (s *IntSet) Remove(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var removed bool
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		var err error
		removed, err = s.l.remove(tx, k)
		return err
	}, opts...)
	return removed, err
}

// Contains reports membership of k.
func (s *IntSet) Contains(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var found bool
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		h, err := s.l.lookup(tx, k)
		found = h != 0
		return err
	}, opts...)
	return found, err
}

// Snapshot returns all keys in ascending order, read atomically in one
// transaction.
func (s *IntSet) Snapshot(p *sim.Proc, opts ...core.RunOption) ([]uint64, error) {
	var keys []uint64
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		keys = keys[:0]
		return s.l.keys(tx, &keys)
	}, opts...)
	return keys, err
}

// NewIntSetEarlyRelease allocates a set whose traversals use DSTM-style
// early release when the engine supports it (core.Releaser): nodes
// walked past are dropped from the read set, so updates behind the
// traversal point no longer conflict with it. On engines without early
// release the set behaves exactly like NewIntSet.
func NewIntSetEarlyRelease(tm core.TM) *IntSet {
	s := NewIntSet(tm)
	s.l.earlyRelease = true
	return s
}
