package ds

import (
	"fmt"

	"repro/internal/core"
)

// Index is a fixed-bucket transactional hash index from uint64 keys to
// uint64 values whose operations take an open transaction instead of
// running their own — the composable counterpart of Hash. It exists for
// keyed stores built above ds (internal/kv): a store transaction can
// touch several indexes (shards) and commit or abort them as one
// atomic unit, which Hash's one-transaction-per-operation API cannot
// express.
//
// Like Hash, each bucket is a sorted arena-backed list, so operations
// on different buckets are disjoint-access and scale with bucket count
// on a strictly DAP engine.
type Index struct {
	buckets []*list
}

// NewIndex allocates an index with the given bucket count (rounded up
// to at least 1). name namespaces the underlying t-variables for
// traces and sim-mode object registration.
func NewIndex(tm core.TM, name string, buckets int) *Index {
	if buckets < 1 {
		buckets = 1
	}
	ix := &Index{}
	for i := 0; i < buckets; i++ {
		ix.buckets = append(ix.buckets, newList(newArena(tm, fmt.Sprintf("%s.b%d", name, i), true)))
	}
	return ix
}

// Buckets returns the bucket count.
func (ix *Index) Buckets() int { return len(ix.buckets) }

func (ix *Index) bucket(k uint64) *list {
	// Fibonacci hashing spreads adjacent keys across buckets.
	return ix.buckets[(k*0x9E3779B97F4A7C15)>>32%uint64(len(ix.buckets))]
}

// Insert stores k -> v within tx, reporting whether the key was new
// (an existing key has its value overwritten). spare carries a
// pre-allocated node handle across retries of the enclosing
// transaction; pass a pointer to a zero-initialized uint64 that lives
// for the whole retry loop.
func (ix *Index) Insert(tx core.Tx, k, v uint64, spare *uint64) (bool, error) {
	return ix.bucket(k).insert(tx, k, v, spare)
}

// Lookup returns the value stored at k and whether it is present.
func (ix *Index) Lookup(tx core.Tx, k uint64) (uint64, bool, error) {
	b := ix.bucket(k)
	node, err := b.lookup(tx, k)
	if err != nil || node == 0 {
		return 0, false, err
	}
	v, err := tx.Read(b.a.valVar(node))
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Remove unlinks k, reporting whether it was present.
func (ix *Index) Remove(tx core.Tx, k uint64) (bool, error) {
	return ix.bucket(k).remove(tx, k)
}

// CompareAndSwap replaces the value at k with new iff the key is
// present and currently holds old. It reports (swapped, existed):
// (false, false) for a missing key, (false, true) for a value
// mismatch, (true, true) on success.
func (ix *Index) CompareAndSwap(tx core.Tx, k, old, new uint64) (swapped, existed bool, err error) {
	b := ix.bucket(k)
	node, err := b.lookup(tx, k)
	if err != nil || node == 0 {
		return false, false, err
	}
	cur, err := tx.Read(b.a.valVar(node))
	if err != nil {
		return false, false, err
	}
	if cur != old {
		return false, true, nil
	}
	if err := tx.Write(b.a.valVar(node), new); err != nil {
		return false, false, err
	}
	return true, true, nil
}

// Count returns the number of entries, using the step-lean counting
// path (one read per entry plus one per bucket).
func (ix *Index) Count(tx core.Tx) (int, error) {
	n := 0
	for _, b := range ix.buckets {
		c, err := b.count(tx)
		if err != nil {
			return 0, err
		}
		n += c
	}
	return n, nil
}
