package ds_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ds"
	"repro/internal/dstm"
	"repro/internal/locktm"
)

func TestSkipListSequential(t *testing.T) {
	for name, mk := range engines() {
		t.Run(name, func(t *testing.T) {
			s := ds.NewSkipList(mk(), 6)
			keys := []uint64{17, 3, 99, 41, 8, 23, 64, 5}
			for _, k := range keys {
				added, err := s.Insert(nil, k)
				if err != nil || !added {
					t.Fatalf("insert %d: %v %v", k, added, err)
				}
			}
			if added, _ := s.Insert(nil, 17); added {
				t.Fatal("duplicate insert must report false")
			}
			for _, k := range keys {
				ok, err := s.Contains(nil, k)
				if err != nil || !ok {
					t.Fatalf("contains %d: %v %v", k, ok, err)
				}
			}
			if ok, _ := s.Contains(nil, 1000); ok {
				t.Fatal("absent key reported present")
			}
			if removed, _ := s.Remove(nil, 41); !removed {
				t.Fatal("remove 41 failed")
			}
			if removed, _ := s.Remove(nil, 41); removed {
				t.Fatal("double remove must report false")
			}
			snap, err := s.Snapshot(nil)
			if err != nil {
				t.Fatal(err)
			}
			want := []uint64{3, 5, 8, 17, 23, 64, 99}
			if len(snap) != len(want) {
				t.Fatalf("snapshot %v, want %v", snap, want)
			}
			for i := range want {
				if snap[i] != want[i] {
					t.Fatalf("snapshot %v, want %v", snap, want)
				}
			}
		})
	}
}

func TestSkipListMatchesReference(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s := ds.NewSkipList(locktm.NewGlobalClock(), 6)
		ref := map[uint64]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := uint64(op%128) + 1
			switch rng.Intn(3) {
			case 0:
				added, err := s.Insert(nil, k)
				if err != nil || added == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				removed, err := s.Remove(nil, k)
				if err != nil || removed != ref[k] {
					return false
				}
				delete(ref, k)
			default:
				ok, err := s.Contains(nil, k)
				if err != nil || ok != ref[k] {
					return false
				}
			}
		}
		snap, err := s.Snapshot(nil)
		if err != nil || len(snap) != len(ref) {
			return false
		}
		return sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrent(t *testing.T) {
	s := ds.NewSkipList(dstm.New(), 8)
	const workers, per = 6, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(w*1000 + i + 1)
				added, err := s.Insert(nil, k)
				if err != nil || !added {
					t.Errorf("insert %d: %v %v", k, added, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap, err := s.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != workers*per {
		t.Fatalf("size %d, want %d", len(snap), workers*per)
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
		t.Fatal("snapshot not sorted")
	}
	for i := 1; i < len(snap); i++ {
		if snap[i] == snap[i-1] {
			t.Fatalf("duplicate key %d", snap[i])
		}
	}
}

func TestSkipListMixedConcurrent(t *testing.T) {
	s := ds.NewSkipList(dstm.New(), 8)
	// Pre-populate.
	for k := uint64(1); k <= 64; k += 2 {
		if _, err := s.Insert(nil, k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 100; i++ {
				k := uint64(rng.Intn(64)) + 1
				var err error
				switch rng.Intn(3) {
				case 0:
					_, err = s.Insert(nil, k)
				case 1:
					_, err = s.Remove(nil, k)
				default:
					_, err = s.Contains(nil, k)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap, err := s.Snapshot(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i] < snap[j] }) {
		t.Fatal("not sorted after mixed workload")
	}
	for i := 1; i < len(snap); i++ {
		if snap[i] == snap[i-1] {
			t.Fatalf("duplicate key %d", snap[i])
		}
	}
}
