package ds

// White-box tests for the Index composable hash index and the
// step-lean counting path behind Hash.Len / Index.Count.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/sim"
)

func TestIndexBasic(t *testing.T) {
	tm := dstm.New()
	ix := NewIndex(tm, "ix", 4)
	run := func(fn func(tx core.Tx) error) {
		t.Helper()
		if err := core.Run(tm, nil, fn); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	var spare uint64
	run(func(tx core.Tx) error {
		added, err := ix.Insert(tx, 10, 100, &spare)
		if err != nil {
			return err
		}
		if !added {
			t.Errorf("insert 10: added=false, want true")
		}
		return nil
	})
	spare = 0
	run(func(tx core.Tx) error {
		added, err := ix.Insert(tx, 10, 101, &spare)
		if err != nil {
			return err
		}
		if added {
			t.Errorf("re-insert 10: added=true, want false (overwrite)")
		}
		return nil
	})
	run(func(tx core.Tx) error {
		v, ok, err := ix.Lookup(tx, 10)
		if err != nil {
			return err
		}
		if !ok || v != 101 {
			t.Errorf("lookup 10 = (%d, %v), want (101, true)", v, ok)
		}
		_, ok, err = ix.Lookup(tx, 11)
		if err != nil {
			return err
		}
		if ok {
			t.Errorf("lookup 11: present, want absent")
		}
		return nil
	})
	run(func(tx core.Tx) error {
		swapped, existed, err := ix.CompareAndSwap(tx, 10, 999, 1)
		if err != nil {
			return err
		}
		if swapped || !existed {
			t.Errorf("cas mismatch = (%v,%v), want (false,true)", swapped, existed)
		}
		swapped, existed, err = ix.CompareAndSwap(tx, 10, 101, 202)
		if err != nil {
			return err
		}
		if !swapped || !existed {
			t.Errorf("cas = (%v,%v), want (true,true)", swapped, existed)
		}
		swapped, existed, err = ix.CompareAndSwap(tx, 11, 0, 1)
		if err != nil {
			return err
		}
		if swapped || existed {
			t.Errorf("cas missing = (%v,%v), want (false,false)", swapped, existed)
		}
		return nil
	})
	run(func(tx core.Tx) error {
		v, ok, err := ix.Lookup(tx, 10)
		if err != nil {
			return err
		}
		if !ok || v != 202 {
			t.Errorf("post-cas lookup 10 = (%d, %v), want (202, true)", v, ok)
		}
		return nil
	})
	var spare2 uint64
	run(func(tx core.Tx) error {
		if _, err := ix.Insert(tx, 11, 7, &spare2); err != nil {
			return err
		}
		n, err := ix.Count(tx)
		if err != nil {
			return err
		}
		if n != 2 {
			t.Errorf("count = %d, want 2", n)
		}
		return nil
	})
	run(func(tx core.Tx) error {
		removed, err := ix.Remove(tx, 10)
		if err != nil {
			return err
		}
		if !removed {
			t.Errorf("remove 10: false, want true")
		}
		n, err := ix.Count(tx)
		if err != nil {
			return err
		}
		if n != 1 {
			t.Errorf("post-remove count = %d, want 1", n)
		}
		return nil
	})
}

// TestLenStepLean measures, in sim mode, the steps a Hash.Len takes
// against the steps of the old keys-slice walk: counting must read only
// next pointers (about half the steps of reading key + next per node).
func TestLenStepLean(t *testing.T) {
	const entries = 48
	build := func() (*sim.Env, *Hash) {
		env := sim.New()
		tm := dstm.New(dstm.WithEnv(env))
		h := NewHash(tm, 4)
		for i := 0; i < entries; i++ {
			// Raw-mode population (nil proc) executes no sim steps.
			if _, err := h.Put(nil, uint64(i*3), uint64(i)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		return env, h
	}

	env1, h1 := build()
	var n int
	env1.Spawn(func(p *sim.Proc) {
		var err error
		n, err = h1.Len(p)
		if err != nil {
			t.Errorf("len: %v", err)
		}
	})
	env1.Run(sim.Solo(1))
	if n != entries {
		t.Fatalf("len = %d, want %d", n, entries)
	}
	leanSteps := env1.TotalSteps()

	env2, h2 := build()
	env2.Spawn(func(p *sim.Proc) {
		err := core.Run(h2.tm, p, func(tx core.Tx) error {
			n = 0
			var keys []uint64
			for _, b := range h2.buckets {
				keys = keys[:0]
				if err := b.keys(tx, &keys); err != nil {
					return err
				}
				n += len(keys)
			}
			return nil
		})
		if err != nil {
			t.Errorf("keys walk: %v", err)
		}
	})
	env2.Run(sim.Solo(1))
	if n != entries {
		t.Fatalf("keys-walk len = %d, want %d", n, entries)
	}
	keysSteps := env2.TotalSteps()

	if leanSteps >= keysSteps {
		t.Fatalf("lean Len took %d steps, keys walk %d — counting path is not leaner", leanSteps, keysSteps)
	}
}
