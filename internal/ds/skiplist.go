package ds

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// SkipList is a transactional sorted set with O(log n) expected search,
// the "big" data structure of the STM benchmark canon. Node heights are
// derived deterministically from the key (a hash-based geometric
// distribution), which keeps simulated executions replayable — the same
// operations always build the same structure.
type SkipList struct {
	tm     core.TM
	levels int

	mu    sync.Mutex
	kind  string
	keys  appendOnly[core.Var]   // node key
	nexts appendOnly[[]core.Var] // node successors, one var per level

	head uint64 // handle of the head sentinel (full height)
}

// NewSkipList allocates an empty skip list with the given number of
// levels (2..16; default 8 when out of range).
func NewSkipList(tm core.TM, levels int) *SkipList {
	if levels < 2 || levels > 16 {
		levels = 8
	}
	s := &SkipList{tm: tm, levels: levels, kind: "skip"}
	s.head = s.alloc(0, levels)
	return s
}

// alloc creates a node of the given height and returns its handle
// (index+1; 0 is nil).
func (s *SkipList) alloc(key uint64, height int) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.keys.length()
	s.keys.append(s.tm.NewVar(fmt.Sprintf("%s.key%d", s.kind, idx), key))
	next := make([]core.Var, height)
	for l := range next {
		next[l] = s.tm.NewVar(fmt.Sprintf("%s.next%d.%d", s.kind, idx, l), 0)
	}
	s.nexts.append(next)
	return uint64(idx + 1)
}

func (s *SkipList) keyVar(h uint64) core.Var { return s.keys.get(int(h - 1)) }

func (s *SkipList) nextVar(h uint64, level int) core.Var { return s.nexts.get(int(h - 1))[level] }

func (s *SkipList) height(h uint64) int { return len(s.nexts.get(int(h - 1))) }

// heightFor derives a deterministic pseudo-random height from the key:
// geometric with p = 1/2, clamped to the list's levels.
func (s *SkipList) heightFor(key uint64) int {
	x := key*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	h := 1
	for h < s.levels && x&1 == 1 {
		h++
		x >>= 1
	}
	return h
}

// findPreds fills preds[l] with the handle of the rightmost node at
// level l whose key is < k, and returns the handle of the node at level
// 0 that has key >= k (0 if none).
func (s *SkipList) findPreds(tx core.Tx, k uint64, preds []uint64) (uint64, error) {
	cur := s.head
	for l := s.levels - 1; l >= 0; l-- {
		for {
			nxt, err := tx.Read(s.nextVar(cur, l))
			if err != nil {
				return 0, err
			}
			if nxt == 0 {
				break
			}
			key, err := tx.Read(s.keyVar(nxt))
			if err != nil {
				return 0, err
			}
			if key >= k {
				break
			}
			cur = nxt
		}
		preds[l] = cur
	}
	nxt, err := tx.Read(s.nextVar(cur, 0))
	if err != nil {
		return 0, err
	}
	return nxt, nil
}

// Insert adds k, reporting whether it was absent.
func (s *SkipList) Insert(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var added bool
	var spare uint64
	preds := make([]uint64, s.levels)
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		added = false
		cand, err := s.findPreds(tx, k, preds)
		if err != nil {
			return err
		}
		if cand != 0 {
			key, err := tx.Read(s.keyVar(cand))
			if err != nil {
				return err
			}
			if key == k {
				return nil // present
			}
		}
		h := s.heightFor(k)
		n := spare
		if n == 0 {
			n = s.alloc(k, h)
			spare = n
		}
		if err := tx.Write(s.keyVar(n), k); err != nil {
			return err
		}
		for l := 0; l < h; l++ {
			succ, err := tx.Read(s.nextVar(preds[l], l))
			if err != nil {
				return err
			}
			if err := tx.Write(s.nextVar(n, l), succ); err != nil {
				return err
			}
			if err := tx.Write(s.nextVar(preds[l], l), n); err != nil {
				return err
			}
		}
		added = true
		return nil
	}, opts...)
	return added, err
}

// Remove deletes k, reporting whether it was present.
func (s *SkipList) Remove(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var removed bool
	preds := make([]uint64, s.levels)
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		removed = false
		cand, err := s.findPreds(tx, k, preds)
		if err != nil {
			return err
		}
		if cand == 0 {
			return nil
		}
		key, err := tx.Read(s.keyVar(cand))
		if err != nil {
			return err
		}
		if key != k {
			return nil
		}
		for l := 0; l < s.height(cand); l++ {
			// preds[l] may not point at cand at upper levels if cand is
			// shorter than the search path descended; unlink only where
			// it does.
			nxt, err := tx.Read(s.nextVar(preds[l], l))
			if err != nil {
				return err
			}
			if nxt != cand {
				continue
			}
			after, err := tx.Read(s.nextVar(cand, l))
			if err != nil {
				return err
			}
			if err := tx.Write(s.nextVar(preds[l], l), after); err != nil {
				return err
			}
		}
		removed = true
		return nil
	}, opts...)
	return removed, err
}

// Contains reports membership of k.
func (s *SkipList) Contains(p *sim.Proc, k uint64, opts ...core.RunOption) (bool, error) {
	var found bool
	preds := make([]uint64, s.levels)
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		cand, err := s.findPreds(tx, k, preds)
		if err != nil {
			return err
		}
		found = false
		if cand != 0 {
			key, err := tx.Read(s.keyVar(cand))
			if err != nil {
				return err
			}
			found = key == k
		}
		return nil
	}, opts...)
	return found, err
}

// Snapshot returns all keys in ascending order, atomically.
func (s *SkipList) Snapshot(p *sim.Proc, opts ...core.RunOption) ([]uint64, error) {
	var keys []uint64
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		keys = keys[:0]
		cur, err := tx.Read(s.nextVar(s.head, 0))
		if err != nil {
			return err
		}
		for cur != 0 {
			k, err := tx.Read(s.keyVar(cur))
			if err != nil {
				return err
			}
			keys = append(keys, k)
			cur, err = tx.Read(s.nextVar(cur, 0))
			if err != nil {
				return err
			}
		}
		return nil
	}, opts...)
	return keys, err
}
