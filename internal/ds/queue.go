package ds

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Queue is a bounded transactional FIFO ring buffer. Enqueue and
// Dequeue are single transactions over the head/tail/size words and one
// slot, so producers and consumers on a long queue mostly conflict only
// on the counters — a useful contrast workload for the contention
// managers.
type Queue struct {
	tm   core.TM
	cap  uint64
	buf  []core.Var
	head core.Var // index of the oldest element
	size core.Var // current element count
}

// NewQueue allocates a queue with the given capacity.
func NewQueue(tm core.TM, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{tm: tm, cap: uint64(capacity)}
	for i := 0; i < capacity; i++ {
		q.buf = append(q.buf, tm.NewVar(fmt.Sprintf("queue.slot%d", i), 0))
	}
	q.head = tm.NewVar("queue.head", 0)
	q.size = tm.NewVar("queue.size", 0)
	return q
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return int(q.cap) }

// Enqueue appends v, reporting false if the queue was full.
func (q *Queue) Enqueue(p *sim.Proc, v uint64, opts ...core.RunOption) (bool, error) {
	var ok bool
	err := core.Run(q.tm, p, func(tx core.Tx) error {
		size, err := tx.Read(q.size)
		if err != nil {
			return err
		}
		if size >= q.cap {
			ok = false
			return nil
		}
		head, err := tx.Read(q.head)
		if err != nil {
			return err
		}
		slot := (head + size) % q.cap
		if err := tx.Write(q.buf[slot], v); err != nil {
			return err
		}
		if err := tx.Write(q.size, size+1); err != nil {
			return err
		}
		ok = true
		return nil
	}, opts...)
	return ok, err
}

// Dequeue removes and returns the oldest element; ok is false if the
// queue was empty.
func (q *Queue) Dequeue(p *sim.Proc, opts ...core.RunOption) (v uint64, ok bool, err error) {
	err = core.Run(q.tm, p, func(tx core.Tx) error {
		size, err := tx.Read(q.size)
		if err != nil {
			return err
		}
		if size == 0 {
			ok = false
			return nil
		}
		head, err := tx.Read(q.head)
		if err != nil {
			return err
		}
		v, err = tx.Read(q.buf[head])
		if err != nil {
			return err
		}
		if err := tx.Write(q.head, (head+1)%q.cap); err != nil {
			return err
		}
		if err := tx.Write(q.size, size-1); err != nil {
			return err
		}
		ok = true
		return nil
	}, opts...)
	return v, ok, err
}

// Len reads the current size.
func (q *Queue) Len(p *sim.Proc, opts ...core.RunOption) (int, error) {
	n, err := core.ReadVar(q.tm, p, q.size)
	return int(n), err
}
