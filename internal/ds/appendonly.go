package ds

import "sync/atomic"

// appendOnly is a slice that grows under the owner's lock but is read
// lock-free from any goroutine: appends publish a fresh copy through an
// atomic pointer, so a reader holding a valid index always sees a
// backing array at least that long (indices are only handed out after
// the publish). This is what makes node-arena reads safe while other
// transactions allocate — the race detector caught the naive
// slice-append version.
type appendOnly[T any] struct {
	p atomic.Pointer[[]T]
}

// get returns element i; i must come from a previous append's return.
func (a *appendOnly[T]) get(i int) T {
	return (*a.p.Load())[i]
}

// length returns the published length.
func (a *appendOnly[T]) length() int {
	s := a.p.Load()
	if s == nil {
		return 0
	}
	return len(*s)
}

// append adds v and returns its index. Callers must serialize appends
// (the arenas do, under their mutex).
func (a *appendOnly[T]) append(v T) int {
	old := a.p.Load()
	var cur []T
	if old != nil {
		cur = *old
	}
	ns := make([]T, len(cur)+1)
	copy(ns, cur)
	ns[len(cur)] = v
	a.p.Store(&ns)
	return len(cur)
}
