// Package ds provides transactional data structures built on the
// engine-generic TM API: a counter, a bank (the classic STM workload),
// a sorted linked-list set (the IntSet microbenchmark every STM paper
// uses, DSTM's included), a fixed-bucket hash map, and a bounded FIFO
// queue. All structures work unchanged on every engine — DSTM,
// Algorithm 2, the lock-based baselines, or the Theorem 6 composition —
// which is what the benchmark harness exploits.
//
// Memory discipline: list and hash nodes are allocated from append-only
// arenas of t-variables (handles are indices, 0 is nil). Nodes of
// removed elements are unlinked but not recycled; recycling under
// invisible readers would require epoch reclamation, which is outside
// the paper's scope and irrelevant to its claims.
package ds

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// Counter is a shared transactional counter.
type Counter struct {
	tm core.TM
	v  core.Var
}

// NewCounter allocates a counter starting at init.
func NewCounter(tm core.TM, init uint64) *Counter {
	return &Counter{tm: tm, v: tm.NewVar("counter", init)}
}

// Add atomically adds delta, retrying on aborts.
func (c *Counter) Add(p *sim.Proc, delta uint64, opts ...core.RunOption) error {
	return core.Run(c.tm, p, func(tx core.Tx) error {
		v, err := tx.Read(c.v)
		if err != nil {
			return err
		}
		return tx.Write(c.v, v+delta)
	}, opts...)
}

// Inc is Add(1).
func (c *Counter) Inc(p *sim.Proc, opts ...core.RunOption) error { return c.Add(p, 1, opts...) }

// Value reads the counter.
func (c *Counter) Value(p *sim.Proc, opts ...core.RunOption) (uint64, error) {
	return core.ReadVar(c.tm, p, c.v)
}

// Bank is a fixed set of accounts supporting atomic transfers — the
// quickstart workload, and the conservation-of-money invariant checked
// by the tests.
type Bank struct {
	tm    core.TM
	accts []core.Var
}

// NewBank creates n accounts each holding initial.
func NewBank(tm core.TM, n int, initial uint64) *Bank {
	b := &Bank{tm: tm}
	for i := 0; i < n; i++ {
		b.accts = append(b.accts, tm.NewVar(fmt.Sprintf("acct%d", i), initial))
	}
	return b
}

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return len(b.accts) }

// Transfer atomically moves amount from one account to another; if the
// source has insufficient funds the transfer is a silent no-op (the
// transaction still commits).
func (b *Bank) Transfer(p *sim.Proc, from, to int, amount uint64, opts ...core.RunOption) error {
	return core.Run(b.tm, p, func(tx core.Tx) error {
		src, err := tx.Read(b.accts[from])
		if err != nil {
			return err
		}
		if src < amount {
			return nil
		}
		dst, err := tx.Read(b.accts[to])
		if err != nil {
			return err
		}
		if err := tx.Write(b.accts[from], src-amount); err != nil {
			return err
		}
		return tx.Write(b.accts[to], dst+amount)
	}, opts...)
}

// Balance reads one account.
func (b *Bank) Balance(p *sim.Proc, i int, opts ...core.RunOption) (uint64, error) {
	return core.ReadVar(b.tm, p, b.accts[i])
}

// Total reads all accounts in a single transaction (a long read-only
// transaction, useful for abort-rate experiments).
func (b *Bank) Total(p *sim.Proc, opts ...core.RunOption) (uint64, error) {
	var total uint64
	err := core.Run(b.tm, p, func(tx core.Tx) error {
		total = 0
		for _, a := range b.accts {
			v, err := tx.Read(a)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	}, opts...)
	return total, err
}

// arena is an append-only store of list nodes. Handle 0 is nil; handle
// h>0 refers to node h-1. Node variable slices are published atomically
// (appendOnly) so traversals read them without taking the growth lock.
type arena struct {
	mu     sync.Mutex
	tm     core.TM
	key    appendOnly[core.Var] // node key
	val    appendOnly[core.Var] // node value (maps) — nil entries for sets
	next   appendOnly[core.Var] // handle of successor
	kind   string
	hasVal bool
}

func newArena(tm core.TM, kind string, hasVal bool) *arena {
	return &arena{tm: tm, kind: kind, hasVal: hasVal}
}

// alloc creates a fresh node outside any transaction and returns its
// handle. The caller links it in transactionally.
func (a *arena) alloc(key, val uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx := a.key.length()
	a.key.append(a.tm.NewVar(fmt.Sprintf("%s.key%d", a.kind, idx), key))
	if a.hasVal {
		a.val.append(a.tm.NewVar(fmt.Sprintf("%s.val%d", a.kind, idx), val))
	} else {
		a.val.append(nil)
	}
	a.next.append(a.tm.NewVar(fmt.Sprintf("%s.next%d", a.kind, idx), 0))
	return uint64(idx + 1)
}

func (a *arena) keyVar(h uint64) core.Var  { return a.key.get(int(h - 1)) }
func (a *arena) valVar(h uint64) core.Var  { return a.val.get(int(h - 1)) }
func (a *arena) nextVar(h uint64) core.Var { return a.next.get(int(h - 1)) }

// list is a sorted singly-linked list with a head sentinel, the common
// core of IntSet and Hash buckets. With earlyRelease set (and an engine
// that supports core.Releaser, i.e. DSTM), traversals release the nodes
// they have walked past, DSTM-paper style: writers operating behind the
// traversal point no longer abort it.
type list struct {
	a            *arena
	head         uint64 // sentinel handle
	earlyRelease bool
}

func newList(a *arena) *list {
	return &list{a: a, head: a.alloc(0, 0)}
}

// find positions the traversal at the first node with key >= k,
// returning (pred, cur) handles; cur == 0 means end of list.
func (l *list) find(tx core.Tx, k uint64) (pred, cur uint64, curKey uint64, err error) {
	pred = l.head
	prev := uint64(0) // node before pred, releasable once pred advances
	for {
		nxt, err := tx.Read(l.a.nextVar(pred))
		if err != nil {
			return 0, 0, 0, err
		}
		if nxt == 0 {
			return pred, 0, 0, nil
		}
		key, err := tx.Read(l.a.keyVar(nxt))
		if err != nil {
			return 0, 0, 0, err
		}
		if key >= k {
			return pred, nxt, key, nil
		}
		if l.earlyRelease && prev != 0 {
			// Hand-over-hand: we hold pred and nxt; everything before
			// pred is no longer load-bearing for this operation.
			core.Release(tx, l.a.nextVar(prev))
			core.Release(tx, l.a.keyVar(prev))
		}
		prev = pred
		pred = nxt
	}
}

// insert links a node with key k (and value v for maps), returning
// false if the key was already present (value updated for maps).
// spare, if nonzero, is a pre-allocated node to use.
func (l *list) insert(tx core.Tx, k, v uint64, spare *uint64) (bool, error) {
	pred, cur, curKey, err := l.find(tx, k)
	if err != nil {
		return false, err
	}
	if cur != 0 && curKey == k {
		if l.a.hasVal {
			if err := tx.Write(l.a.valVar(cur), v); err != nil {
				return false, err
			}
		}
		return false, nil
	}
	n := *spare
	if n == 0 {
		n = l.a.alloc(k, v)
		*spare = n
	}
	if err := tx.Write(l.a.keyVar(n), k); err != nil {
		return false, err
	}
	if l.a.hasVal {
		if err := tx.Write(l.a.valVar(n), v); err != nil {
			return false, err
		}
	}
	if err := tx.Write(l.a.nextVar(n), cur); err != nil {
		return false, err
	}
	if err := tx.Write(l.a.nextVar(pred), n); err != nil {
		return false, err
	}
	return true, nil
}

// remove unlinks key k, reporting whether it was present.
func (l *list) remove(tx core.Tx, k uint64) (bool, error) {
	pred, cur, curKey, err := l.find(tx, k)
	if err != nil {
		return false, err
	}
	if cur == 0 || curKey != k {
		return false, nil
	}
	nxt, err := tx.Read(l.a.nextVar(cur))
	if err != nil {
		return false, err
	}
	if err := tx.Write(l.a.nextVar(pred), nxt); err != nil {
		return false, err
	}
	return true, nil
}

// lookup returns the node handle for key k, or 0.
func (l *list) lookup(tx core.Tx, k uint64) (uint64, error) {
	_, cur, curKey, err := l.find(tx, k)
	if err != nil {
		return 0, err
	}
	if cur != 0 && curKey == k {
		return cur, nil
	}
	return 0, nil
}

// count walks the list reading only next pointers — the step-lean
// counting path. keys() pays two reads per node (key + next); counting
// needs no key values, so Len-style aggregations over many buckets do
// half the transactional reads (and allocate nothing).
func (l *list) count(tx core.Tx) (int, error) {
	n := 0
	cur, err := tx.Read(l.a.nextVar(l.head))
	if err != nil {
		return 0, err
	}
	for cur != 0 {
		n++
		cur, err = tx.Read(l.a.nextVar(cur))
		if err != nil {
			return 0, err
		}
	}
	return n, nil
}

// keys walks the list, appending all keys in order.
func (l *list) keys(tx core.Tx, out *[]uint64) error {
	cur, err := tx.Read(l.a.nextVar(l.head))
	if err != nil {
		return err
	}
	for cur != 0 {
		k, err := tx.Read(l.a.keyVar(cur))
		if err != nil {
			return err
		}
		*out = append(*out, k)
		cur, err = tx.Read(l.a.nextVar(cur))
		if err != nil {
			return err
		}
	}
	return nil
}
