package repl

import (
	"math/rand"
	"testing"
	"time"
)

// TestRedialDelaySchedule pins the redial backoff schedule: the
// exponential base doubles from redialBase to redialCap, and equal
// jitter keeps every delay inside [base/2, base].
func TestRedialDelaySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := redialBase
	for attempt := 0; attempt < 12; attempt++ {
		for trial := 0; trial < 100; trial++ {
			d := redialDelay(attempt, rng)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
		if base < redialCap {
			base *= 2
			if base > redialCap {
				base = redialCap
			}
		}
	}
}

// TestRedialDelayCapped: far past the doubling range the base stays
// pinned at redialCap, so the worst-case reconnect delay is bounded.
func TestRedialDelayCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		d := redialDelay(1000, rng)
		if d < redialCap/2 || d > redialCap {
			t.Fatalf("capped delay %v outside [%v, %v]", d, redialCap/2, redialCap)
		}
	}
}

// TestRedialDelayDeterministic: the schedule is a pure function of
// (attempt, rng state), so the same seed replays the same delays —
// this is what makes the backoff unit-testable at all.
func TestRedialDelayDeterministic(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 20; attempt++ {
		if da, db := redialDelay(attempt, a), redialDelay(attempt, b); da != db {
			t.Fatalf("attempt %d: same seed gave %v vs %v", attempt, da, db)
		}
	}
}

// TestRedialDelaySpreads: two replicas with different seeds must not
// share a schedule — identical schedules are exactly the thundering
// herd the jitter exists to break.
func TestRedialDelaySpreads(t *testing.T) {
	a := rand.New(rand.NewSource(3))
	b := rand.New(rand.NewSource(4))
	same := 0
	const n = 50
	for attempt := 0; attempt < n; attempt++ {
		if redialDelay(attempt, a) == redialDelay(attempt, b) {
			same++
		}
	}
	if same == n {
		t.Fatalf("two differently-seeded replicas produced identical %d-step schedules", n)
	}
	var min, max time.Duration
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		d := redialDelay(0, rng)
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min == max {
		t.Fatalf("200 first-attempt delays all equal (%v) — jitter is not applied", min)
	}
}
