package repl

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/nztm"
	"repro/internal/wal"
)

func newStore() *kv.Store { return kv.New(nztm.New(), 4, 8) }

func openPrimary(t *testing.T, dir string, opts wal.Options) (*wal.Log, *Primary) {
	t.Helper()
	opts.Dir = dir
	l, _, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("Open primary log: %v", err)
	}
	p := NewPrimary(l)
	if err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go p.Serve()
	return l, p
}

// connectReplica bootstraps a replica of p, loads the returned state
// into a fresh store, and starts the apply loop.
func connectReplica(t *testing.T, p *Primary, dir string) (*Replica, *kv.Store) {
	t.Helper()
	r, rec, err := Connect(ReplicaConfig{
		PrimaryAddr:    p.Addr().String(),
		WAL:            wal.Options{Dir: dir, Policy: wal.SyncNever},
		ConnectTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	store := newStore()
	for k, v := range rec.State {
		if _, err := store.Put(nil, k, v); err != nil {
			t.Fatalf("load recovered state: %v", err)
		}
	}
	r.Start(store)
	return r, store
}

// waitApplied blocks until the replica has applied through seq.
func waitApplied(t *testing.T, r *Replica, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().LastApplied < seq {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d (connected=%v)",
				r.Stats().LastApplied, seq, r.Stats().Connected)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustGet(t *testing.T, store *kv.Store, key string, want uint64) {
	t.Helper()
	se := store.NewSession()
	res, err := se.Do(nil, kv.Op{Kind: kv.OpGet, Handle: se.Handle(key)})
	if err != nil {
		t.Fatalf("GET %s: %v", key, err)
	}
	if !res.Found || res.Val != want {
		t.Fatalf("GET %s = (found=%v, %d), want %d", key, res.Found, res.Val, want)
	}
}

// TestCatchUpAndLiveStream is the core shipping path: a replica joins
// mid-history, catches up from segment files, then follows live
// appends.
func TestCatchUpAndLiveStream(t *testing.T) {
	l, p := openPrimary(t, t.TempDir(), wal.Options{Policy: wal.SyncNever})
	defer p.Close()
	defer l.Close()

	for i := 0; i < 10; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: uint64(i)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	r, store := connectReplica(t, p, t.TempDir())
	defer r.Stop()
	waitApplied(t, r, 10)
	for i := 0; i < 10; i++ {
		mustGet(t, store, key(i), uint64(i))
	}

	// Live tail: new primary records arrive without reconnecting.
	for i := 10; i < 20; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: uint64(i * 2)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitApplied(t, r, 20)
	mustGet(t, store, key(19), 38)

	// The replica's own log holds the exact prefix (same seqs).
	if r.Log().LastSeq() != 20 {
		t.Fatalf("replica log last seq = %d, want 20", r.Log().LastSeq())
	}
	st := p.Stats()
	if st.Peers != 1 || st.LastShipped != 20 {
		t.Fatalf("primary stats = %+v, want 1 peer shipped through 20", st)
	}
}

// TestSnapshotBootstrap joins a replica whose cursor precedes the
// primary's truncated history: bootstrap must come from the snapshot.
func TestSnapshotBootstrap(t *testing.T) {
	dir := t.TempDir()
	l, p := openPrimary(t, dir, wal.Options{Policy: wal.SyncNever, SegmentBytes: 128})
	defer p.Close()
	defer l.Close()

	state := map[string]uint64{}
	for i := 0; i < 12; i++ {
		state[key(i)] = uint64(i + 100)
		if err := l.Append([]kv.Effect{{Key: key(i), Val: uint64(i + 100)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.WriteSnapshot(func() ([]kv.Pair, error) {
		var ps []kv.Pair
		for k, v := range state {
			ps = append(ps, kv.Pair{Key: k, Val: v})
		}
		return ps, nil
	}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	r, store := connectReplica(t, p, t.TempDir())
	defer r.Stop()
	waitApplied(t, r, 12)
	for i := 0; i < 12; i++ {
		mustGet(t, store, key(i), uint64(i+100))
	}
	// The snapshot cut became the replica's log base; the stream
	// continues past it.
	if err := l.Append([]kv.Effect{{Key: "after", Val: 7}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitApplied(t, r, 13)
	mustGet(t, store, "after", 7)
}

// TestReplicaPersistsAndResumes stops a replica, advances the primary,
// and reconnects a new replica over the same directory: it must resume
// from its own recovered log, not refetch everything.
func TestReplicaPersistsAndResumes(t *testing.T) {
	l, p := openPrimary(t, t.TempDir(), wal.Options{Policy: wal.SyncNever})
	defer p.Close()
	defer l.Close()
	rdir := t.TempDir()

	for i := 0; i < 5; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: 1}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	r, _ := connectReplica(t, p, rdir)
	waitApplied(t, r, 5)
	r.Stop()
	if err := r.Log().Close(); err != nil {
		t.Fatalf("close replica log: %v", err)
	}

	for i := 5; i < 9; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: 2}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}

	r2, rec, err := Connect(ReplicaConfig{
		PrimaryAddr:    p.Addr().String(),
		WAL:            wal.Options{Dir: rdir, Policy: wal.SyncNever},
		ConnectTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if rec.LastSeq != 5 {
		t.Fatalf("recovered last seq = %d, want 5 (local log)", rec.LastSeq)
	}
	store := newStore()
	for k, v := range rec.State {
		if _, err := store.Put(nil, k, v); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	r2.Start(store)
	defer r2.Stop()
	waitApplied(t, r2, 9)
	mustGet(t, store, key(8), 2)
}

// TestPrimaryRefusesDivergedFollower pins the divergence guard: a
// follower ahead of the primary's log is refused, not healed.
func TestPrimaryRefusesDivergedFollower(t *testing.T) {
	l, p := openPrimary(t, t.TempDir(), wal.Options{Policy: wal.SyncNever})
	defer p.Close()
	defer l.Close()
	if err := l.Append([]kv.Effect{{Key: "a", Val: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// A replica whose own log is longer than the primary's (e.g. an old
	// promoted primary rejoining).
	rdir := t.TempDir()
	rl, _, err := wal.Open(wal.Options{Dir: rdir, Policy: wal.SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := rl.Append([]kv.Effect{{Key: "b", Val: uint64(i)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := rl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, _, err = Connect(ReplicaConfig{
		PrimaryAddr:    p.Addr().String(),
		WAL:            wal.Options{Dir: rdir, Policy: wal.SyncNever},
		ConnectTimeout: 5 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "refus") {
		t.Fatalf("diverged Connect = %v, want refusal", err)
	}
}

// TestReplicaReconnects kills the stream (primary restart on the same
// address is simulated by closing just the peer connection via a full
// primary Close and a new Primary over the same log) and checks the
// replica resumes from its own cursor.
func TestReplicaReconnects(t *testing.T) {
	dir := t.TempDir()
	l, p := openPrimary(t, dir, wal.Options{Policy: wal.SyncNever})
	defer l.Close()

	if err := l.Append([]kv.Effect{{Key: "a", Val: 1}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	r, store := connectReplica(t, p, t.TempDir())
	defer r.Stop()
	waitApplied(t, r, 1)

	addr := p.Addr().String()
	p.Close() // drops the follower mid-stream

	// Rebind the replication listener on the same address, same log.
	p2 := NewPrimary(l)
	if err := p2.Listen(addr); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	go p2.Serve()
	defer p2.Close()

	if err := l.Append([]kv.Effect{{Key: "b", Val: 2}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitApplied(t, r, 2)
	mustGet(t, store, "b", 2)
}

// TestStopIsCleanAndIdempotent pins promote's half: after Stop, the
// replica's log is quiescent, contiguous, and appendable (the promoted
// node keeps writing where the stream left off).
func TestStopIsCleanAndIdempotent(t *testing.T) {
	l, p := openPrimary(t, t.TempDir(), wal.Options{Policy: wal.SyncNever})
	defer p.Close()
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: 9}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	r, _ := connectReplica(t, p, t.TempDir())
	waitApplied(t, r, 3)
	r.Stop()
	r.Stop() // idempotent

	rl := r.Log()
	if rl.LastSeq() != 3 {
		t.Fatalf("sealed log last seq = %d, want 3", rl.LastSeq())
	}
	// The promoted log accepts fresh writes at seq 4.
	if err := rl.Append([]kv.Effect{{Key: "post", Val: 1}}); err != nil {
		t.Fatalf("post-promote Append: %v", err)
	}
	if rl.LastSeq() != 4 {
		t.Fatalf("post-promote last seq = %d, want 4", rl.LastSeq())
	}
	if err := rl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestChainedReplication pins that shipping works off any advancing
// log: a replica's own Primary serves its ingested stream to a
// second-tier replica.
func TestChainedReplication(t *testing.T) {
	l, p := openPrimary(t, t.TempDir(), wal.Options{Policy: wal.SyncNever})
	defer p.Close()
	defer l.Close()

	r1, _ := connectReplica(t, p, t.TempDir())
	defer r1.Stop()

	// Serve r1's log to a downstream follower.
	p2 := NewPrimary(r1.Log())
	if err := p2.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen mid-tier: %v", err)
	}
	go p2.Serve()
	defer p2.Close()
	r2, store2 := connectReplica(t, p2, t.TempDir())
	defer r2.Stop()

	for i := 0; i < 8; i++ {
		if err := l.Append([]kv.Effect{{Key: key(i), Val: uint64(i + 1)}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	waitApplied(t, r2, 8)
	for i := 0; i < 8; i++ {
		mustGet(t, store2, key(i), uint64(i+1))
	}
}

// TestConnectTimeout pins the bootstrap failure mode: no primary.
func TestConnectTimeout(t *testing.T) {
	_, _, err := Connect(ReplicaConfig{
		PrimaryAddr:    "127.0.0.1:1", // nothing listens here
		WAL:            wal.Options{Dir: t.TempDir(), Policy: wal.SyncNever},
		ConnectTimeout: 200 * time.Millisecond,
	})
	if err == nil {
		t.Fatalf("Connect to dead address succeeded")
	}
	if errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Connect leaked a closed-log error: %v", err)
	}
}

func key(i int) string {
	return "key" + string([]byte{byte('0' + i/10), byte('0' + i%10)})
}
