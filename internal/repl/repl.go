// Package repl is the WAL-shipping replication subsystem: a primary
// serves its write-ahead log — historical segments plus the live
// group-commit tail — to any number of replicas over a second
// listener, and replicas apply the records through the same
// transactional path recovery uses while serving snapshot-consistent
// reads.
//
// Wire protocol (all integers little-endian):
//
//	handshake (follower -> primary):
//	    [8] magic "OFREPL1\n"
//	    [8] from — seq of the first record the follower wants
//	              (its log's lastSeq+1)
//
//	stream (primary -> follower), length-prefixed messages:
//	    [1] type  [4] payload length  [payload]
//	    'S'  payload = snapshot file image (wal snapshot format);
//	         sent when the follower's cursor precedes the oldest
//	         retained segment. The stream resumes at cut+1.
//	    'R'  payload = [8] primary durable seq, then zero or more WAL
//	         record frames (the exact on-disk framing). The seq lets
//	         the follower compute its lag; a frame-less 'R' is the
//	         hello/heartbeat.
//	    'E'  payload = error text; the primary is refusing the stream
//	         (e.g. the follower is ahead — divergence).
//
// Durability and acks: a record is shipped only once it is durable on
// the primary under the primary's own fsync policy, so with
// fsync=always a client ack strictly precedes the record reaching any
// replica. Replication is asynchronous — the window between ack and
// replica visibility is bounded by one shipping round trip plus the
// replica's apply; a promoted replica may therefore miss the last
// acked writes of a primary that died before shipping them, but never
// holds a gap: ingest reuses recovery's CRC + contiguity refusal, so
// a replica's log is always an exact prefix of the primary's.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/wal"
)

const (
	magic = "OFREPL1\n"

	msgSnapshot = 'S'
	msgRecords  = 'R'
	msgError    = 'E'

	// maxMsg bounds a received payload (snapshots included).
	maxMsg = 1 << 30

	// handshakeTimeout bounds how long an accepted connection may take
	// to identify itself before the primary drops it.
	handshakeTimeout = 5 * time.Second

	// writeTimeout bounds one message write to a follower; a follower
	// that cannot drain within it is dropped (it will reconnect and
	// catch up from its own cursor).
	writeTimeout = 30 * time.Second
)

// writeMsg writes one length-prefixed message: typ, then head+body as
// the payload (either may be empty).
func writeMsg(w io.Writer, typ byte, head, body []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(head)+len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(head) > 0 {
		if _, err := w.Write(head); err != nil {
			return err
		}
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readMsg reads one length-prefixed message.
func readMsg(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxMsg {
		return 0, nil, fmt.Errorf("repl: message of %d bytes exceeds the %d limit", n, maxMsg)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// peer is one connected follower, tracked for stats.
type peer struct {
	conn    net.Conn
	tr      *wal.TailReader
	shipped uint64 // last seq shipped; guarded by Primary.mu
}

// Primary serves the log's record stream to followers. It works on any
// node whose log advances — a normal primary, or a replica whose
// ingest feeds its own followers (chaining) — because shipping reads
// the log's durable tail, not the write path.
type Primary struct {
	log *wal.Log

	mu     sync.Mutex
	lis    net.Listener
	peers  map[*peer]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewPrimary returns a replication server over the log. Call Listen
// then Serve.
func NewPrimary(log *wal.Log) *Primary {
	return &Primary{log: log, peers: make(map[*peer]struct{})}
}

// Listen binds the replication listener.
func (p *Primary) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.lis = lis
	p.mu.Unlock()
	return nil
}

// Addr returns the bound replication address (nil before Listen).
func (p *Primary) Addr() net.Addr {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lis == nil {
		return nil
	}
	return p.lis.Addr()
}

// Serve accepts followers until Close. Call in a goroutine.
func (p *Primary) Serve() {
	p.mu.Lock()
	lis := p.lis
	p.mu.Unlock()
	if lis == nil {
		return
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		pe := &peer{conn: conn}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.peers[pe] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.servePeer(pe)
			p.mu.Lock()
			delete(p.peers, pe)
			p.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops accepting, detaches every follower and waits for their
// serving goroutines.
func (p *Primary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	lis := p.lis
	for pe := range p.peers {
		if pe.tr != nil {
			pe.tr.Cancel()
		}
		pe.conn.Close()
	}
	p.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	p.wg.Wait()
}

// PrimaryStats is the shipping-side replication summary.
type PrimaryStats struct {
	Peers       int    // connected followers
	LastShipped uint64 // newest seq shipped to any follower
	MinShipped  uint64 // oldest per-follower shipped seq (0 with no peers)
}

// Stats snapshots the follower set.
func (p *Primary) Stats() PrimaryStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrimaryStats{Peers: len(p.peers)}
	first := true
	for pe := range p.peers {
		if pe.shipped > st.LastShipped {
			st.LastShipped = pe.shipped
		}
		if first || pe.shipped < st.MinShipped {
			st.MinShipped = pe.shipped
		}
		first = false
	}
	return st
}

// servePeer runs one follower stream: handshake, optional snapshot,
// hello, then the durable tail until either side goes away.
func (p *Primary) servePeer(pe *peer) {
	conn := pe.conn
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var hs [16]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if string(hs[:8]) != magic {
		return
	}
	from := binary.LittleEndian.Uint64(hs[8:])

	w := bufio.NewWriterSize(conn, 64<<10)
	send := func(typ byte, head, body []byte) error {
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := writeMsg(w, typ, head, body); err != nil {
			return err
		}
		return w.Flush()
	}
	sendErr := func(format string, args ...any) {
		send(msgError, []byte(fmt.Sprintf(format, args...)), nil)
	}

	if last := p.log.LastSeq(); from > last+1 {
		// The follower holds records this log never wrote — it diverged
		// (e.g. an old promoted primary). Refuse rather than ship a hole.
		sendErr("follower at seq %d is ahead of the log (last seq %d) — diverged history, refusing", from-1, last)
		return
	}

	sendSnapshot := func() (uint64, error) {
		img, cut, ok, err := p.log.NewestSnapshot()
		if err != nil || !ok {
			sendErr("follower needs records from seq %d but they are truncated and no snapshot is available", from)
			if err == nil {
				err = errors.New("repl: no snapshot")
			}
			return 0, err
		}
		if err := send(msgSnapshot, img, nil); err != nil {
			return 0, err
		}
		return cut + 1, nil
	}

	if from < p.log.OldestRetainedSeq() {
		next, err := sendSnapshot()
		if err != nil {
			return
		}
		from = next
	}

	tr := p.log.NewTailReader(from)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	pe.tr = tr
	pe.shipped = from - 1
	p.mu.Unlock()

	var head [8]byte
	hello := func() error {
		binary.LittleEndian.PutUint64(head[:], p.log.DurableSeq())
		return send(msgRecords, head[:], nil)
	}
	if err := hello(); err != nil {
		return
	}

	var scratch []byte
	for {
		frames, err := tr.Next(scratch)
		switch {
		case err == nil:
		case errors.Is(err, wal.ErrSnapshotNeeded):
			// A snapshot truncated the follower's cursor mid-stream; ship
			// the snapshot and resume after its cut.
			next, serr := sendSnapshot()
			if serr != nil {
				return
			}
			tr = p.log.NewTailReader(next)
			p.mu.Lock()
			pe.tr = tr
			p.mu.Unlock()
			if err := hello(); err != nil {
				return
			}
			continue
		default:
			sendErr("log stream ended: %v", err)
			return
		}
		scratch = frames
		binary.LittleEndian.PutUint64(head[:], p.log.DurableSeq())
		if err := send(msgRecords, head[:], frames); err != nil {
			return
		}
		p.mu.Lock()
		pe.shipped = tr.NextSeq() - 1
		p.mu.Unlock()
	}
}
