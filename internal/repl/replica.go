package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kv"
	"repro/internal/wal"
)

// ReplicaConfig parameterizes Connect.
type ReplicaConfig struct {
	// PrimaryAddr is the primary's replication listener address.
	PrimaryAddr string
	// WAL are the replica's own log options (Dir is required).
	WAL wal.Options
	// ConnectTimeout bounds the initial bootstrap dial (default 10s).
	// Reconnects after a successful bootstrap retry forever (with
	// backoff) until Stop — a replica keeps serving reads while its
	// primary is down.
	ConnectTimeout time.Duration
	// Logf, when set, receives replication lifecycle messages
	// (reconnects, stream refusals). Default: discard.
	Logf func(format string, args ...any)
}

// Replica is a live replication follower: it owns the node's WAL
// (ingesting shipped records into it) and applies each record to the
// store through the transactional path, so concurrent reads see
// record-granular snapshots.
type Replica struct {
	cfg   ReplicaConfig
	log   *wal.Log
	store *kv.Store
	sess  *kv.Session

	lastApplied atomic.Uint64 // newest seq applied to the store
	primarySeq  atomic.Uint64 // newest primary durable seq heard
	connected   atomic.Bool

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	stopped bool
	stop    chan struct{}
	done    chan struct{}
}

// Connect opens (recovering) the replica's WAL, dials the primary, and
// completes the bootstrap handshake. If the primary's retained history
// no longer reaches the replica's log, the shipped snapshot image is
// installed into the log (wal.InstallSnapshot) before returning. The
// returned Recovered holds the state the caller must load into the
// store before Start — either local recovery's, or the installed
// snapshot's.
func Connect(cfg ReplicaConfig) (*Replica, wal.Recovered, error) {
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	l, rec, err := wal.Open(cfg.WAL)
	if err != nil {
		return nil, rec, err
	}
	r := &Replica{cfg: cfg, log: l, stop: make(chan struct{}), done: make(chan struct{})}

	deadline := time.Now().Add(cfg.ConnectTimeout)
	var conn net.Conn
	for {
		conn, err = r.dial()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			l.Close()
			return nil, rec, fmt.Errorf("repl: bootstrap: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	br := bufio.NewReaderSize(conn, 64<<10)

	// The primary speaks first: a snapshot if we are too far behind,
	// otherwise the hello 'R' carrying its durable seq.
	typ, payload, err := readMsg(br)
	if err != nil {
		conn.Close()
		l.Close()
		return nil, rec, fmt.Errorf("repl: bootstrap handshake: %w", err)
	}
	switch typ {
	case msgSnapshot:
		cut, state, derr := wal.DecodeSnapshot(payload)
		if derr == nil {
			_, derr = l.InstallSnapshot(payload)
		}
		if derr != nil {
			conn.Close()
			l.Close()
			return nil, rec, fmt.Errorf("repl: bootstrap snapshot: %w", derr)
		}
		rec = wal.Recovered{State: state, Keys: len(state), LastSeq: cut, SnapshotSeq: cut}
		r.lastApplied.Store(cut)
		r.primarySeq.Store(cut)
	case msgRecords:
		if len(payload) < 8 {
			conn.Close()
			l.Close()
			return nil, rec, fmt.Errorf("repl: bootstrap: short records message")
		}
		r.primarySeq.Store(binary.LittleEndian.Uint64(payload))
		r.lastApplied.Store(rec.LastSeq)
		if frames := payload[8:]; len(frames) > 0 {
			// Records already? Only possible after the hello; be strict.
			conn.Close()
			l.Close()
			return nil, rec, fmt.Errorf("repl: bootstrap: unexpected records before hello")
		}
	case msgError:
		conn.Close()
		l.Close()
		return nil, rec, fmt.Errorf("repl: primary refused stream: %s", payload)
	default:
		conn.Close()
		l.Close()
		return nil, rec, fmt.Errorf("repl: bootstrap: unknown message type %q", typ)
	}
	r.setConn(conn, br)
	r.connected.Store(true)
	return r, rec, nil
}

// Log returns the replica's write-ahead log.
func (r *Replica) Log() *wal.Log { return r.log }

// dial opens a connection to the primary and sends the handshake with
// the log's current cursor.
func (r *Replica) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", r.cfg.PrimaryAddr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	var hs [16]byte
	copy(hs[:], magic)
	binary.LittleEndian.PutUint64(hs[8:], r.log.LastSeq()+1)
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (r *Replica) setConn(conn net.Conn, br *bufio.Reader) {
	r.mu.Lock()
	r.conn, r.br = conn, br
	r.mu.Unlock()
}

// Start begins the live apply loop against store. Call once, after
// loading the Connect-returned state into the store.
func (r *Replica) Start(store *kv.Store) {
	r.store = store
	r.sess = store.NewSession()
	go r.run()
}

// Stop detaches from the primary and stops the apply loop, waiting for
// the in-flight record batch to finish — after Stop returns, the store
// is quiescent and the log holds a contiguous prefix of the primary's
// stream. Used by promote and by shutdown. Safe to call more than once.
func (r *Replica) Stop() {
	r.mu.Lock()
	already := r.stopped
	r.stopped = true
	conn := r.conn
	r.mu.Unlock()
	if !already {
		close(r.stop)
	}
	if conn != nil {
		conn.Close()
	}
	if r.store != nil {
		<-r.done
	}
}

// ReplicaStats is the apply-side replication summary.
type ReplicaStats struct {
	Connected   bool
	LastApplied uint64 // newest seq applied to the store
	PrimarySeq  uint64 // newest primary durable seq heard
}

// Lag returns the replica's record lag behind the primary's durable
// tail, as of the last message heard.
func (st ReplicaStats) Lag() uint64 {
	if st.PrimarySeq <= st.LastApplied {
		return 0
	}
	return st.PrimarySeq - st.LastApplied
}

// Stats snapshots the replica's position.
func (r *Replica) Stats() ReplicaStats {
	return ReplicaStats{
		Connected:   r.connected.Load(),
		LastApplied: r.lastApplied.Load(),
		PrimarySeq:  r.primarySeq.Load(),
	}
}

func (r *Replica) isStopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// run is the apply loop: read messages, ingest into the WAL, apply to
// the store; on any stream error, reconnect with backoff and resume
// from the log's own cursor.
func (r *Replica) run() {
	defer close(r.done)
	r.mu.Lock()
	conn, br := r.conn, r.br
	r.mu.Unlock()
	for {
		if conn == nil {
			conn, br = r.redial()
			if conn == nil {
				return // stopped
			}
			r.setConn(conn, br)
			r.connected.Store(true)
		}
		typ, payload, err := readMsg(br)
		if err != nil {
			r.dropConn(conn)
			conn, br = nil, nil
			if r.isStopped() {
				return
			}
			r.cfg.Logf("repl: stream to primary lost: %v (reconnecting)", err)
			continue
		}
		if err := r.handle(typ, payload); err != nil {
			r.dropConn(conn)
			conn, br = nil, nil
			if r.isStopped() {
				return
			}
			r.cfg.Logf("repl: %v (reconnecting)", err)
		}
	}
}

func (r *Replica) dropConn(conn net.Conn) {
	conn.Close()
	r.connected.Store(false)
}

// handle processes one stream message. An error drops the connection;
// the reconnect handshake resumes from the log's contiguous tail, so a
// refused (corrupt or gapped) batch is simply re-shipped.
func (r *Replica) handle(typ byte, payload []byte) error {
	switch typ {
	case msgRecords:
		if len(payload) < 8 {
			return fmt.Errorf("repl: short records message")
		}
		r.primarySeq.Store(binary.LittleEndian.Uint64(payload))
		frames := payload[8:]
		if len(frames) == 0 {
			return nil
		}
		// WAL first, then store — a crash between the two replays the
		// difference from this replica's own log on restart.
		if err := r.log.AppendFrames(frames); err != nil {
			return fmt.Errorf("repl: refusing shipped records: %w", err)
		}
		if err := wal.DecodeFrames(frames, func(seq uint64, effects []kv.Effect) error {
			if err := r.sess.ApplyEffects(effects); err != nil {
				return err
			}
			r.lastApplied.Store(seq)
			return nil
		}); err != nil {
			return fmt.Errorf("repl: applying shipped records: %w", err)
		}
		return nil
	case msgSnapshot:
		return r.resync(payload)
	case msgError:
		return fmt.Errorf("repl: primary refused stream: %s", payload)
	default:
		return fmt.Errorf("repl: unknown message type %q", typ)
	}
}

// resync handles a mid-stream snapshot: the primary truncated the
// records this replica still needed (a long disconnect). The image is
// installed into the log and the live store is reconciled to it —
// puts for every image entry, deletes for local keys the image lacks —
// in one atomic batch per chunk.
func (r *Replica) resync(img []byte) error {
	cut, state, err := wal.DecodeSnapshot(img)
	if err != nil {
		return fmt.Errorf("repl: resync snapshot: %w", err)
	}
	if cut <= r.log.LastSeq() {
		return nil // stale image; the stream resumes past it anyway
	}
	if _, err := r.log.InstallSnapshot(img); err != nil {
		return fmt.Errorf("repl: resync install: %w", err)
	}
	local, err := r.store.Dump(nil)
	if err != nil {
		return fmt.Errorf("repl: resync dump: %w", err)
	}
	var eff []kv.Effect
	for _, pr := range local {
		if _, ok := state[pr.Key]; !ok {
			eff = append(eff, kv.Effect{Key: pr.Key, Del: true})
		}
	}
	for k, v := range state {
		eff = append(eff, kv.Effect{Key: k, Val: v})
	}
	const chunk = 512
	for len(eff) > 0 {
		n := min(chunk, len(eff))
		if err := r.sess.ApplyEffects(eff[:n]); err != nil {
			return fmt.Errorf("repl: resync apply: %w", err)
		}
		eff = eff[n:]
	}
	r.lastApplied.Store(cut)
	r.cfg.Logf("repl: resynced from snapshot cut %d (%d keys)", cut, len(state))
	return nil
}

// Redial backoff bounds: exponential doubling from redialBase, capped
// at redialCap.
const (
	redialBase = 50 * time.Millisecond
	redialCap  = 5 * time.Second
)

// redialDelay computes the reconnect delay for the given 0-based
// attempt: the exponential base doubles per attempt up to redialCap,
// and equal jitter — half the window fixed, half drawn uniformly from
// rng — spreads simultaneous reconnects. Without the jitter, N
// replicas that lost the same primary at the same instant would redial
// it in lockstep forever (their schedules are identical), hammering a
// restarting primary with N simultaneous bootstrap handshakes at every
// step; with it, the herd spreads over half the window. Pure function
// of (attempt, rng) so the schedule is unit-testable.
func redialDelay(attempt int, rng *rand.Rand) time.Duration {
	d := redialBase
	for i := 0; i < attempt && d < redialCap; i++ {
		d *= 2
	}
	if d > redialCap {
		d = redialCap
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// redial reconnects with jittered exponential backoff until it
// succeeds or the replica is stopped (returns nil).
func (r *Replica) redial() (net.Conn, *bufio.Reader) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		if r.isStopped() {
			return nil, nil
		}
		conn, err := r.dial()
		if err == nil {
			return conn, bufio.NewReaderSize(conn, 64<<10)
		}
		select {
		case <-r.stop:
			return nil, nil
		case <-time.After(redialDelay(attempt, rng)):
		}
	}
}
