// Package sim is the asynchronous shared-memory substrate of the
// reproduction: n processes of which any may be delayed arbitrarily or
// crash (§2.1 of the paper). Every operation on a base object is a
// *step* that must be granted by a scheduler before it executes, so a
// test or experiment controls the exact interleaving of steps — the
// power the paper's adversary has and real hardware does not expose.
//
// A process that is never granted another step is indistinguishable, to
// the other processes, from a crashed one; this is how the suspension
// scenarios of Theorem 13 (Figure 2) and the valency argument of
// Theorem 9 are realized mechanically.
//
// Base objects (package base) accept a *Proc on every operation. With a
// nil Proc the operation executes directly on sync/atomic primitives
// ("raw mode", used by the benchmarks); with a non-nil Proc it is gated
// through the environment's scheduler and recorded in the low-level
// history ("sim mode", used by the checkers and proof-scenario drivers).
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// killed is the panic payload used to tear down a process whose run was
// stopped (crash, suspension at end of run, or scheduler stop). Engines
// must not recover it; the Spawn wrapper does.
type killed struct{}

// Proc is a simulated process. All base-object operations performed on
// behalf of the process take the *Proc so they can be scheduled and
// recorded. A Proc is owned by the goroutine running its body.
type Proc struct {
	id  model.ProcID
	env *Env

	resume  chan bool // true = go, false = killed
	mySteps atomic.Int64

	// curTx tags subsequent steps with the transaction the process is
	// executing, so checkers can attribute base-object conflicts to
	// transactions. Read by the scheduler goroutine while the proc is
	// parked, hence atomic.
	curTx atomic.Uint64
}

// ID returns the process id.
func (p *Proc) ID() model.ProcID {
	if p == nil {
		return 0
	}
	return p.id
}

// Env returns the environment the process belongs to (nil for a nil
// Proc, i.e. raw mode).
func (p *Proc) Env() *Env {
	if p == nil {
		return nil
	}
	return p.env
}

// SetTx tags the process as executing transaction tx; pass model.NoTx to
// clear. Engines call this at transaction begin and completion.
func (p *Proc) SetTx(tx model.TxID) {
	if p == nil {
		return
	}
	p.curTx.Store(tx.Handle())
}

// Tx returns the transaction currently tagged on the process.
func (p *Proc) Tx() model.TxID {
	if p == nil {
		return model.NoTx
	}
	return model.TxFromHandle(p.curTx.Load())
}

// Mark is a snapshot of step counters used to detect step contention:
// whether any *other* process executed a step since the mark was taken
// (the definition underlying Definition 2 and fo-consensus's
// fo-obstruction-freedom).
type Mark struct {
	total, mine int64
}

// Mark snapshots the global and per-process step counters. A nil Proc
// returns a zero Mark.
func (p *Proc) Mark() Mark {
	if p == nil {
		return Mark{}
	}
	return Mark{total: p.env.totalSteps.Load(), mine: p.mySteps.Load()}
}

// ContendedSince reports whether a process other than p executed a step
// after the mark was taken. In raw mode (nil Proc) it always reports
// false: raw mode cannot observe other processes' steps, so components
// relying on contention detection behave as if contention-free.
func (p *Proc) ContendedSince(m Mark) bool {
	if p == nil {
		return false
	}
	others := (p.env.totalSteps.Load() - m.total) - (p.mySteps.Load() - m.mine)
	return others > 0
}

// Step executes one base-object operation: it parks until the scheduler
// grants the step, records it in the low-level history, and then runs
// action. With a nil Proc the action runs immediately and nothing is
// recorded.
func Step(p *Proc, obj model.ObjID, name string, write bool, action func()) {
	if p == nil {
		action()
		return
	}
	p.env.reqCh <- p
	ok := <-p.resume
	if !ok {
		panic(killed{})
	}
	p.env.totalSteps.Add(1)
	p.mySteps.Add(1)
	p.env.rec.RecordStep(model.Step{
		Proc:  p.id,
		Tx:    p.Tx(),
		Obj:   obj,
		Name:  name,
		Write: write,
	})
	action()
	p.env.doneCh <- p
}

// Scheduler decides, whenever every unfinished process is parked waiting
// for a step grant, which process runs next. waiting is sorted by
// process id. Returning -1 stops the run: all parked processes are
// killed (equivalently: they crash).
type Scheduler interface {
	Pick(waiting []*Proc, env *Env) int
}

// PickFunc adapts a function to the Scheduler interface.
type PickFunc func(waiting []*Proc, env *Env) int

// Pick implements Scheduler.
func (f PickFunc) Pick(waiting []*Proc, env *Env) int { return f(waiting, env) }

// Env is one simulated execution environment: a set of processes, a
// registry of base objects, a shared clock and the recorded history.
// Create one Env per run; they are cheap.
type Env struct {
	clock *model.Clock
	rec   *model.Recorder

	mu       sync.Mutex
	objNames []string
	procs    []*Proc

	totalSteps atomic.Int64

	reqCh  chan *Proc
	doneCh chan *Proc
	bodies map[*Proc]func(*Proc)

	// MaxSteps bounds the run; when exceeded the run is stopped and
	// Truncated is set. The default protects tests against livelock.
	MaxSteps int64
	// Truncated reports that the last Run hit MaxSteps or a Scheduler
	// stop while processes were still unfinished.
	Truncated bool
	// WatchdogTimeout aborts the run with a panic if no process parks or
	// finishes for this long — a deadlock in the system under test.
	WatchdogTimeout time.Duration

	killedAt map[model.ProcID]int64
}

// New returns an empty environment.
func New() *Env {
	clock := model.NewClock()
	return &Env{
		clock:           clock,
		rec:             model.NewRecorder(clock),
		reqCh:           make(chan *Proc, 64),
		doneCh:          make(chan *Proc, 64),
		bodies:          map[*Proc]func(*Proc){},
		killedAt:        map[model.ProcID]int64{},
		MaxSteps:        2_000_000,
		WatchdogTimeout: 30 * time.Second,
	}
}

// Clock returns the environment's shared clock.
func (e *Env) Clock() *model.Clock { return e.clock }

// Recorder returns the history recorder shared by steps and high-level
// operation events.
func (e *Env) Recorder() *model.Recorder { return e.rec }

// RegisterObj assigns an id to a base object. Safe to call from process
// bodies (objects may be created dynamically, e.g. Algorithm 2 grows its
// Owner arrays during acquire).
func (e *Env) RegisterObj(name string) model.ObjID {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objNames = append(e.objNames, name)
	return model.ObjID(len(e.objNames) - 1)
}

// ObjName returns the registration name of a base object.
func (e *Env) ObjName(id model.ObjID) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(id) < 0 || int(id) >= len(e.objNames) {
		return fmt.Sprintf("obj%d", int(id))
	}
	return e.objNames[id]
}

// TotalSteps returns the number of steps granted so far.
func (e *Env) TotalSteps() int64 { return e.totalSteps.Load() }

// CrashTimes returns, for every process that was killed at the end of a
// run (crashed or suspended forever), the clock time of its death. Used
// by the ic-obstruction-freedom checker (Definition 3). A process that
// stopped being scheduled earlier than the end of the run effectively
// crashed at its last granted step; MarkCrashed lets schedulers record
// that intent.
func (e *Env) CrashTimes() map[model.ProcID]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := map[model.ProcID]int64{}
	for k, v := range e.killedAt {
		out[k] = v
	}
	return out
}

// MarkCrashed records that a scheduler stopped granting steps to proc
// at the current time (the process is considered crashed from then on,
// even though its goroutine is reaped only at the end of the run).
func (e *Env) MarkCrashed(proc model.ProcID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.killedAt[proc]; !ok {
		e.killedAt[proc] = e.clock.Now()
	}
}

// Spawn registers a process with the given body. Bodies start executing
// when Run is called. Process ids are assigned 1, 2, ... in spawn order.
func (e *Env) Spawn(body func(*Proc)) *Proc {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := &Proc{
		id:     model.ProcID(len(e.procs) + 1),
		env:    e,
		resume: make(chan bool),
	}
	e.procs = append(e.procs, p)
	e.bodies[p] = body
	return p
}

// Procs returns the spawned processes in id order.
func (e *Env) Procs() []*Proc {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Proc(nil), e.procs...)
}

// Run executes all spawned processes under the given scheduler until
// every process finishes, the scheduler stops the run, or MaxSteps is
// hit. It returns the recorded history. Run may be called once per Env.
func (e *Env) Run(sched Scheduler) *model.History {
	e.mu.Lock()
	procs := append([]*Proc(nil), e.procs...)
	bodies := e.bodies
	e.bodies = map[*Proc]func(*Proc){}
	e.mu.Unlock()

	finished := make(chan *Proc, len(procs))
	parked := map[*Proc]bool{}
	done := map[*Proc]bool{}
	granted := (*Proc)(nil) // proc currently executing a granted action
	nFinished := 0

	timer := time.NewTimer(e.WatchdogTimeout)
	defer timer.Stop()
	waitEvent := func() bool {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(e.WatchdogTimeout)
		select {
		case p := <-e.reqCh:
			parked[p] = true
			return true
		case p := <-e.doneCh:
			if granted == p {
				granted = nil
			}
			return true
		case p := <-finished:
			done[p] = true
			delete(parked, p)
			nFinished++
			if granted == p {
				granted = nil
			}
			return true
		case <-timer.C:
			panic(fmt.Sprintf("sim: watchdog: no progress for %v (%d parked, %d finished of %d; a process is blocked outside the scheduler)",
				e.WatchdogTimeout, len(parked), nFinished, len(procs)))
		}
	}

	// Start bodies strictly one at a time: each process runs until it
	// parks at its first step (or finishes) before the next is started.
	// Code a body executes before its first step — transaction Begin,
	// dynamic base-object registration — therefore runs in spawn order,
	// so recorded histories (object ids included) are a function of the
	// scheduler alone, never of Go's goroutine scheduling. Replays are
	// exactly reproducible, which the differential tests assert.
	for _, p := range procs {
		p := p
		body := bodies[p]
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killed); !ok {
						panic(r)
					}
				}
				finished <- p
			}()
			body(p)
		}()
		for !parked[p] && !done[p] {
			waitEvent()
		}
	}

	killAll := func() {
		e.Truncated = true
		now := e.clock.Now()
		for p := range parked {
			if _, ok := e.killedAt[p.id]; !ok {
				e.killedAt[p.id] = now
			}
			p.resume <- false
		}
		for nFinished < len(procs) {
			waitEvent()
		}
	}

	for nFinished < len(procs) {
		// Wait until every unfinished process is parked and no granted
		// action is in flight.
		for granted != nil || len(parked)+nFinished < len(procs) {
			waitEvent()
		}
		if nFinished == len(procs) {
			break
		}
		if e.totalSteps.Load() >= e.MaxSteps {
			killAll()
			break
		}
		waiting := make([]*Proc, 0, len(parked))
		for p := range parked {
			waiting = append(waiting, p)
		}
		sort.Slice(waiting, func(i, j int) bool { return waiting[i].id < waiting[j].id })
		idx := sched.Pick(waiting, e)
		if idx < 0 || idx >= len(waiting) {
			killAll()
			break
		}
		p := waiting[idx]
		delete(parked, p)
		granted = p
		p.resume <- true
	}
	return e.rec.History()
}
