package sim

import (
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

// counterBody increments a shared (plain, scheduler-serialized) counter
// n times, one step per increment.
func counterBody(obj model.ObjID, counter *int64, n int) func(*Proc) {
	return func(p *Proc) {
		for i := 0; i < n; i++ {
			Step(p, obj, "inc", true, func() { *counter++ })
		}
	}
}

func TestRoundRobinRunsAllSteps(t *testing.T) {
	env := New()
	obj := env.RegisterObj("counter")
	var counter int64
	for i := 0; i < 3; i++ {
		env.Spawn(counterBody(obj, &counter, 5))
	}
	h := env.Run(RoundRobin())
	if counter != 15 {
		t.Fatalf("counter = %d, want 15", counter)
	}
	if env.Truncated {
		t.Fatalf("run truncated unexpectedly")
	}
	if len(h.Steps) != 15 {
		t.Fatalf("recorded %d steps, want 15", len(h.Steps))
	}
	// Round robin alternates p1 p2 p3 p1 p2 p3 ...
	for i, s := range h.Steps {
		want := model.ProcID(i%3 + 1)
		if s.Proc != want {
			t.Fatalf("step %d by %v, want %v", i, s.Proc, want)
		}
	}
}

func TestSoloSchedulerGivesNoContention(t *testing.T) {
	env := New()
	obj := env.RegisterObj("counter")
	var counter int64
	env.Spawn(counterBody(obj, &counter, 4))
	env.Spawn(counterBody(obj, &counter, 4))
	h := env.Run(Solo(2))
	if counter != 4 {
		t.Fatalf("counter = %d, want 4 (only p2 runs)", counter)
	}
	for _, s := range h.Steps {
		if s.Proc != 2 {
			t.Fatalf("step by %v under Solo(2)", s.Proc)
		}
	}
	if !env.Truncated {
		t.Fatalf("p1 was killed; run must be marked truncated")
	}
}

func TestScriptSchedule(t *testing.T) {
	env := New()
	obj := env.RegisterObj("counter")
	var counter int64
	env.Spawn(counterBody(obj, &counter, 10)) // p1
	env.Spawn(counterBody(obj, &counter, 3))  // p2
	// p1 takes 2 steps, then p2 runs to completion, then stop.
	h := env.Run(Script(Phase{Proc: 1, Steps: 2}, Phase{Proc: 2, Steps: -1}))
	if counter != 5 {
		t.Fatalf("counter = %d, want 5", counter)
	}
	procs := make([]model.ProcID, 0, len(h.Steps))
	for _, s := range h.Steps {
		procs = append(procs, s.Proc)
	}
	want := []model.ProcID{1, 1, 2, 2, 2}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("step order %v, want %v", procs, want)
		}
	}
}

func TestChoicesReplay(t *testing.T) {
	env := New()
	obj := env.RegisterObj("counter")
	var counter int64
	env.Spawn(counterBody(obj, &counter, 2))
	env.Spawn(counterBody(obj, &counter, 2))
	seq := []model.ProcID{2, 1, 2, 1}
	h := env.Run(Choices(seq, nil))
	if counter != 4 {
		t.Fatalf("counter = %d, want 4", counter)
	}
	for i, s := range h.Steps {
		if s.Proc != seq[i] {
			t.Fatalf("step %d by %v, want %v", i, s.Proc, seq[i])
		}
	}
}

func TestBoundedStops(t *testing.T) {
	env := New()
	obj := env.RegisterObj("counter")
	var counter int64
	env.Spawn(counterBody(obj, &counter, 1000))
	env.Run(Bounded(7, RoundRobin()))
	if counter != 7 {
		t.Fatalf("counter = %d, want 7", counter)
	}
	if !env.Truncated {
		t.Fatalf("bounded run must be truncated")
	}
}

func TestMaxStepsGuardsLivelock(t *testing.T) {
	env := New()
	env.MaxSteps = 50
	obj := env.RegisterObj("spin")
	env.Spawn(func(p *Proc) {
		for { // livelock: spins forever
			Step(p, obj, "read", false, func() {})
		}
	})
	env.Run(RoundRobin())
	if !env.Truncated {
		t.Fatalf("livelock must truncate at MaxSteps")
	}
	if got := env.TotalSteps(); got != 50 {
		t.Fatalf("steps = %d, want 50", got)
	}
}

func TestContentionDetection(t *testing.T) {
	env := New()
	obj := env.RegisterObj("o")
	var sawContention, sawQuiet bool
	env.Spawn(func(p *Proc) {
		m := p.Mark()
		Step(p, obj, "read", false, func() {})
		sawQuiet = !p.ContendedSince(m) // p2 has not run yet under Script
		m = p.Mark()
		Step(p, obj, "read", false, func() {})
		Step(p, obj, "read", false, func() {})
		sawContention = p.ContendedSince(m) // p2 stepped in between
	})
	env.Spawn(func(p *Proc) {
		Step(p, obj, "read", false, func() {})
	})
	env.Run(Script(
		Phase{Proc: 1, Steps: 1},
		Phase{Proc: 2, Steps: 1},
		Phase{Proc: 1, Steps: -1},
	))
	if !sawQuiet {
		t.Errorf("p1 observed contention before p2 ran")
	}
	if !sawContention {
		t.Errorf("p1 failed to observe p2's step")
	}
}

func TestNilProcRawMode(t *testing.T) {
	ran := false
	Step(nil, 0, "read", false, func() { ran = true })
	if !ran {
		t.Fatalf("raw-mode step must execute the action")
	}
	var p *Proc
	if p.ID() != 0 || p.Env() != nil || p.Tx() != model.NoTx {
		t.Fatalf("nil proc accessors must return zero values")
	}
	if p.ContendedSince(p.Mark()) {
		t.Fatalf("nil proc never observes contention")
	}
	p.SetTx(model.TxID{Proc: 1, Seq: 1}) // must not panic
}

func TestTxTagging(t *testing.T) {
	env := New()
	obj := env.RegisterObj("o")
	tx := model.TxID{Proc: 1, Seq: 9}
	env.Spawn(func(p *Proc) {
		p.SetTx(tx)
		Step(p, obj, "write", true, func() {})
		p.SetTx(model.NoTx)
		Step(p, obj, "write", true, func() {})
	})
	h := env.Run(RoundRobin())
	if h.Steps[0].Tx != tx {
		t.Errorf("step 0 tagged %v, want %v", h.Steps[0].Tx, tx)
	}
	if h.Steps[1].Tx != model.NoTx {
		t.Errorf("step 1 tagged %v, want NoTx", h.Steps[1].Tx)
	}
}

func TestKilledProcDoesNotLeakActions(t *testing.T) {
	env := New()
	obj := env.RegisterObj("o")
	var after atomic.Bool
	env.Spawn(func(p *Proc) {
		Step(p, obj, "read", false, func() {})
		Step(p, obj, "read", false, func() {}) // never granted
		after.Store(true)
	})
	env.Run(Bounded(1, RoundRobin()))
	if after.Load() {
		t.Fatalf("killed process continued past its denied step")
	}
}

func TestObserverSeesChoices(t *testing.T) {
	env := New()
	obj := env.RegisterObj("o")
	var counter int64
	env.Spawn(counterBody(obj, &counter, 2))
	env.Spawn(counterBody(obj, &counter, 2))
	var picks []model.ProcID
	var avail [][]model.ProcID
	env.Run(Observer(RoundRobin(), func(w []model.ProcID, picked model.ProcID) {
		avail = append(avail, w)
		picks = append(picks, picked)
	}))
	if len(picks) != 4 {
		t.Fatalf("want 4 picks, got %d", len(picks))
	}
	if len(avail[0]) != 2 {
		t.Fatalf("both procs should be waiting at the first pick: %v", avail[0])
	}
}

func TestObjRegistry(t *testing.T) {
	env := New()
	a := env.RegisterObj("alpha")
	b := env.RegisterObj("beta")
	if env.ObjName(a) != "alpha" || env.ObjName(b) != "beta" {
		t.Fatalf("names: %q %q", env.ObjName(a), env.ObjName(b))
	}
	if env.ObjName(model.ObjID(99)) == "" {
		t.Fatalf("unknown obj must still render")
	}
}

func TestHistoryWellFormedWithOps(t *testing.T) {
	// Steps recorded inside a high-level op must yield a well-formed
	// low-level history.
	env := New()
	obj := env.RegisterObj("o")
	rec := env.Recorder()
	tx := model.TxID{Proc: 1, Seq: 1}
	env.Spawn(func(p *Proc) {
		p.SetTx(tx)
		inv := rec.Invoke(1)
		Step(p, obj, "read", false, func() {})
		rec.Respond(inv, model.Op{Proc: 1, Tx: tx, Kind: model.OpRead, Var: 0, Ret: 0})
		inv = rec.Invoke(1)
		Step(p, obj, "cas", true, func() {})
		rec.Respond(inv, model.Op{Proc: 1, Tx: tx, Kind: model.OpTryCommit})
	})
	h := env.Run(RoundRobin())
	if err := h.WellFormed(); err != nil {
		t.Fatalf("well-formedness: %v", err)
	}
}
