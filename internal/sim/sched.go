package sim

import (
	"math/rand"

	"repro/internal/model"
)

// RoundRobin grants steps to waiting processes in cyclic id order.
func RoundRobin() Scheduler {
	last := model.ProcID(0)
	return PickFunc(func(waiting []*Proc, _ *Env) int {
		for i, p := range waiting {
			if p.id > last {
				last = p.id
				return i
			}
		}
		last = waiting[0].id
		return 0
	})
}

// Random grants steps uniformly at random among waiting processes, with
// a fixed seed for reproducibility.
func Random(seed int64) Scheduler {
	rng := rand.New(rand.NewSource(seed))
	return PickFunc(func(waiting []*Proc, _ *Env) int {
		return rng.Intn(len(waiting))
	})
}

// Solo grants every step to the single process with the given id and
// stops the run (killing the others) once it finishes. Processes other
// than id never take a step, which is exactly the paper's
// "step-contention-free" execution for id.
func Solo(id model.ProcID) Scheduler {
	return PickFunc(func(waiting []*Proc, _ *Env) int {
		for i, p := range waiting {
			if p.id == id {
				return i
			}
		}
		return -1
	})
}

// Phase is one phase of a scripted schedule: grant Steps steps to Proc
// (Steps < 0 means: until Proc finishes). A phase whose process has
// already finished is skipped.
type Phase struct {
	Proc  model.ProcID
	Steps int
}

// Script runs the given phases in order and stops the run when the
// script is exhausted (remaining processes are killed, i.e. they crash
// or stay suspended forever). This is the adversary of the Figure 2
// scenario: run p1 for t steps, suspend it, run p2 to completion, ...
func Script(phases ...Phase) Scheduler {
	i := 0
	return PickFunc(func(waiting []*Proc, _ *Env) int {
		for i < len(phases) {
			ph := &phases[i]
			if ph.Steps == 0 {
				i++
				continue
			}
			for j, p := range waiting {
				if p.id == ph.Proc {
					if ph.Steps > 0 {
						ph.Steps--
					}
					return j
				}
			}
			// The phase's process is not waiting: it finished. Advance.
			i++
		}
		return -1
	})
}

// Choices replays an explicit sequence of process ids (used by the
// exhaustive explorers). When the sequence is exhausted, fallback
// decides (nil fallback stops the run).
func Choices(seq []model.ProcID, fallback Scheduler) Scheduler {
	i := 0
	return PickFunc(func(waiting []*Proc, env *Env) int {
		for i < len(seq) {
			id := seq[i]
			i++
			for j, p := range waiting {
				if p.id == id {
					return j
				}
			}
			// Process already finished; skip the choice.
		}
		if fallback == nil {
			return -1
		}
		return fallback.Pick(waiting, env)
	})
}

// Bounded stops the run after at most n grants, delegating to inner
// until then.
func Bounded(n int, inner Scheduler) Scheduler {
	return PickFunc(func(waiting []*Proc, env *Env) int {
		if n <= 0 {
			return -1
		}
		n--
		return inner.Pick(waiting, env)
	})
}

// Observer wraps a scheduler and reports every grant decision: which
// processes were waiting and which was picked. Used by the explorers to
// enumerate branch points.
func Observer(inner Scheduler, onPick func(waiting []model.ProcID, picked model.ProcID)) Scheduler {
	return PickFunc(func(waiting []*Proc, env *Env) int {
		idx := inner.Pick(waiting, env)
		if onPick != nil {
			ids := make([]model.ProcID, len(waiting))
			for i, p := range waiting {
				ids[i] = p.id
			}
			picked := model.ProcID(-1)
			if idx >= 0 && idx < len(waiting) {
				picked = waiting[idx].id
			}
			onPick(ids, picked)
		}
		return idx
	})
}

// CrashAfter wraps a scheduler so that the given process stops being
// granted steps after its first `after` grants — the paper's crash/
// indefinite-suspension adversary. The crash time is recorded for the
// ic-obstruction-freedom checker.
func CrashAfter(victim model.ProcID, after int, inner Scheduler) Scheduler {
	granted := 0
	crashed := false
	return PickFunc(func(waiting []*Proc, env *Env) int {
		if !crashed && granted >= after {
			crashed = true
			env.MarkCrashed(victim)
		}
		if !crashed {
			idx := inner.Pick(waiting, env)
			if idx >= 0 && idx < len(waiting) && waiting[idx].id == victim {
				granted++
			}
			return idx
		}
		// Filter the victim out of the waiting set.
		alive := make([]*Proc, 0, len(waiting))
		back := make([]int, 0, len(waiting))
		for i, p := range waiting {
			if p.id != victim {
				alive = append(alive, p)
				back = append(back, i)
			}
		}
		if len(alive) == 0 {
			return -1
		}
		idx := inner.Pick(alive, env)
		if idx < 0 || idx >= len(alive) {
			return -1
		}
		return back[idx]
	})
}
