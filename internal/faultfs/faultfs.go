// Package faultfs is the filesystem seam under the write-ahead log: an
// interface covering exactly the OS calls the WAL makes, a pass-through
// implementation backed by the real os package, and a deterministic
// fault injector that makes disks misbehave on a seeded schedule.
//
// Production code never constructs an injector — wal.Options.FS defaults
// to OS, whose methods forward to os.* with no wrapping and no
// allocation, so the no-injector hot path costs one interface dispatch
// on an *os.File method (the same machine instruction count as before;
// the E10/E11 allocation gates hold). Tests and the crash campaign wrap
// OS in an Injector to deliver short writes, EIO, ENOSPC, and power-loss
// crash points at a position chosen deterministically from a seed.
package faultfs

import (
	"io/fs"
	"os"
)

// File is the slice of *os.File the WAL uses on its write path.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the slice of the os package the WAL calls. Every method has the
// exact os.* contract; OS forwards directly.
type FS interface {
	// OpenFile opens a file for writing (the WAL uses it only with
	// O_CREATE|O_EXCL|O_WRONLY, to create fresh segment files).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens an existing file or directory read-only; the WAL uses
	// it only to fsync files and directories by handle.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Truncate(name string, size int64) error
}

// OS is the real filesystem: every method forwards to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a typed nil-free interface: callers test err first.
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
