package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func create(t *testing.T, fsys FS, path string) File {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return f
}

func TestOSPassThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f := create(t, OS, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	b, err := OS.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("readback: %q, %v", b, err)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{Kind: ShortWrite, Target: RecordWrite, After: 1, Cut: 0.5})
	f := create(t, inj, filepath.Join(dir, "f"))
	// Header write (first write) does not match RecordWrite.
	if _, err := f.Write([]byte("HDRHDRHD")); err != nil {
		t.Fatalf("header write faulted while disarmed path: %v", err)
	}
	inj.Arm()
	if _, err := f.Write([]byte("rec0")); err != nil {
		t.Fatalf("record write 0 (After=1 should pass): %v", err)
	}
	n, err := f.Write([]byte("rec1rec1"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want injected EIO, got n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Fatalf("cut=0.5 of 8 bytes: want 4 landed, got %d", n)
	}
	if fired, _ := inj.Fired(); !fired {
		t.Fatal("plan did not report fired")
	}
	f.Close()
	b, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(b) != "HDRHDRHDrec0rec1" {
		t.Fatalf("on-disk content %q", b)
	}
}

func TestInjectorHeaderTarget(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS, Plan{Kind: NoSpace, Target: HeaderWrite, After: 0, Cut: 0.25})
	inj.Arm()
	f := create(t, inj, filepath.Join(dir, "a"))
	if _, err := f.Write([]byte("12345678")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC on first header write, got %v", err)
	}
	f.Close()
	// Fault is one-shot: the next file's header writes fine.
	g := create(t, inj, filepath.Join(dir, "b"))
	if _, err := g.Write([]byte("ok")); err != nil {
		t.Fatalf("second header write after one-shot fault: %v", err)
	}
	g.Close()
}

func TestInjectorCrashAtSyncDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	inj := NewInjector(OS, Plan{Kind: Crash, Target: FileSync, After: 1})
	inj.Arm()
	f := create(t, inj, path)
	f.Write([]byte("synced__"))
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync (After=1) should pass: %v", err)
	}
	f.Write([]byte("unsynced"))
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Everything is dead now.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if _, err := inj.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("readdir after crash: %v", err)
	}
	// The real disk (inspected with the real OS) holds only the synced
	// prefix: the unsynced tail was truncated away.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if string(b) != "synced__" {
		t.Fatalf("post-crash content %q, want only the synced prefix", b)
	}
}

func TestPlanForSeedDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		a := PlanForSeed(seed, 100, 0.5)
		b := PlanForSeed(seed, 100, 0.5)
		if a != b {
			t.Fatalf("seed %d: %v != %v", seed, a, b)
		}
		if a.After < 0 || a.After >= 100 {
			t.Fatalf("seed %d: After %d out of horizon", seed, a.After)
		}
	}
	// The schedule space is actually explored: both crash and disk
	// faults, and more than one target, appear across seeds.
	kinds := map[Kind]bool{}
	targets := map[Target]bool{}
	for seed := int64(0); seed < 64; seed++ {
		p := PlanForSeed(seed, 100, 0.5)
		kinds[p.Kind] = true
		targets[p.Target] = true
	}
	if !kinds[Crash] || len(kinds) < 3 {
		t.Fatalf("kind coverage too thin: %v", kinds)
	}
	if len(targets) < 3 {
		t.Fatalf("target coverage too thin: %v", targets)
	}
}
