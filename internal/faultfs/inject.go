package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"syscall"
)

// Kind is the class of fault a plan delivers.
type Kind uint8

const (
	// ShortWrite lands a prefix of the triggering write and returns EIO
	// — the classic torn write.
	ShortWrite Kind = iota
	// ErrIO fails the triggering operation with EIO; for a write,
	// nothing lands.
	ErrIO
	// NoSpace lands a prefix of the triggering write and returns ENOSPC
	// (the filesystem filled up mid-write).
	NoSpace
	// Crash models power loss at the triggering operation: a write
	// lands only a prefix; a sync additionally truncates the file back
	// to its last successfully synced size (the unsynced page cache is
	// gone). After a crash every subsequent operation on the FS fails
	// with ErrCrashed — the machine is off.
	Crash
)

func (k Kind) String() string {
	switch k {
	case ShortWrite:
		return "short-write"
	case ErrIO:
		return "eio"
	case NoSpace:
		return "enospc"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Target selects which operation class the plan fires on.
type Target uint8

const (
	// AnyOp fires on the After-th faultable operation of any class the
	// kind can act on (ShortWrite and NoSpace skip syncs).
	AnyOp Target = iota
	// RecordWrite fires on a non-first write to a created file — a log
	// record batch, past the segment header.
	RecordWrite
	// HeaderWrite fires on the first write to a freshly created file —
	// the segment header, i.e. mid-rotation once the injector is armed
	// after Open.
	HeaderWrite
	// FileSync fires on a Sync call (segment fsync, snapshot fsync, or
	// directory fsync).
	FileSync
	// SnapshotWrite fires on WriteFile — the snapshot temp file.
	SnapshotWrite
)

func (t Target) String() string {
	switch t {
	case AnyOp:
		return "any"
	case RecordWrite:
		return "record-write"
	case HeaderWrite:
		return "header-write"
	case FileSync:
		return "fsync"
	case SnapshotWrite:
		return "snapshot-write"
	}
	return fmt.Sprintf("target(%d)", uint8(t))
}

// Injected errors. EIO and ENOSPC faults wrap the real errno, so
// errors.Is(err, syscall.EIO) and errors.Is(err, syscall.ENOSPC) hold
// through every layer above.
var (
	// ErrCrashed is returned by every operation after a Crash fault
	// fired: the simulated machine has lost power.
	ErrCrashed = errors.New("faultfs: crashed (simulated power loss)")
)

func errInjected(errno syscall.Errno) error {
	return fmt.Errorf("faultfs: injected fault: %w", errno)
}

// Plan is one scheduled fault: fire Kind on the (After+1)-th operation
// matching Target once the injector is armed. Cut, in [0,1), picks how
// much of the triggering write lands for the partial-write kinds.
type Plan struct {
	Kind   Kind
	Target Target
	After  int
	Cut    float64
}

func (p Plan) String() string {
	return fmt.Sprintf("%v@%v+%d cut=%.2f", p.Kind, p.Target, p.After, p.Cut)
}

// matches reports whether an operation of class t can trigger the plan.
// ShortWrite and NoSpace need bytes to cut, so under AnyOp they skip
// pure syncs.
func (p Plan) matches(t Target) bool {
	if p.Target != AnyOp {
		return p.Target == t
	}
	if p.Kind == ShortWrite || p.Kind == NoSpace {
		return t != FileSync
	}
	return true
}

// PlanForSeed derives a deterministic fault schedule from a seed.
// horizon bounds the trigger position: the plan fires within the first
// horizon matching operations (callers size it well under the number of
// faultable operations a run performs, so every seeded run faults).
// crashProb is the probability the fault is a full power-loss Crash
// rather than a survivable disk error.
func PlanForSeed(seed int64, horizon int, crashProb float64) Plan {
	rng := rand.New(rand.NewSource(seed ^ 0x0F7A_0175)) // decorrelate from workload rngs
	if horizon < 1 {
		horizon = 1
	}
	p := Plan{After: rng.Intn(horizon), Cut: rng.Float64()}
	if rng.Float64() < crashProb {
		p.Kind = Crash
	} else {
		p.Kind = []Kind{ShortWrite, ErrIO, NoSpace}[rng.Intn(3)]
	}
	switch rng.Intn(5) {
	case 0:
		p.Target = AnyOp
	case 1:
		p.Target = RecordWrite
	case 2:
		p.Target = FileSync
		if p.Kind == ShortWrite {
			p.Kind = ErrIO // nothing to cut on a sync
		}
	case 3:
		// Rotations are much rarer than writes; aim early so the plan
		// still fires within a bounded run.
		p.Target = HeaderWrite
		p.After = rng.Intn(3)
	case 4:
		// Snapshot-file writes (shard images, manifest temp files) only
		// happen at periodic cuts; aim early enough that a run with a
		// handful of cuts still reaches the trigger.
		p.Target = SnapshotWrite
		p.After = rng.Intn(6)
	}
	return p
}

// Injector is an FS that delivers one planned fault and, for Crash,
// latches every later operation into failure. It is safe for concurrent
// use; faultable operations are serialized through its mutex (fine for
// a test harness — the WAL has a single log goroutine anyway).
//
// The injector performs real I/O through its inner FS, so a directory
// driven through an injector can afterwards be recovered with OS: what
// "survived the fault" is exactly what is on disk.
type Injector struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	armed   bool
	fired   bool
	firedOn string
	crashed bool
	seen    int
}

// NewInjector wraps inner with the given plan. The injector starts
// disarmed: operations pass through uncounted until Arm, so recovery
// and setup I/O do not consume the schedule.
func NewInjector(inner FS, plan Plan) *Injector {
	return &Injector{inner: inner, plan: plan}
}

// Arm starts counting faultable operations against the plan.
func (inj *Injector) Arm() {
	inj.mu.Lock()
	inj.armed = true
	inj.mu.Unlock()
}

// Fired reports whether the planned fault has been delivered, and on
// what operation.
func (inj *Injector) Fired() (bool, string) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired, inj.firedOn
}

// Plan returns the injector's schedule.
func (inj *Injector) Plan() Plan { return inj.plan }

// fires consumes one matching operation and reports whether the plan
// triggers on it. Callers hold inj.mu.
func (inj *Injector) fires(t Target, desc string) bool {
	if !inj.armed || inj.fired || !inj.plan.matches(t) {
		return false
	}
	if inj.seen < inj.plan.After {
		inj.seen++
		return false
	}
	inj.fired = true
	inj.firedOn = fmt.Sprintf("%v on %s", inj.plan, desc)
	return true
}

// cut returns how many of n bytes land for a partial-write fault:
// strictly fewer than n (when n > 0), at least 0.
func (p Plan) cut(n int) int {
	c := int(p.Cut * float64(n))
	if c >= n {
		c = n - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// injFile wraps a File. Files created through OpenFile are "tracked":
// the injector knows their size and last synced size, so a Crash at a
// sync point can drop the unsynced tail like a real power loss.
type injFile struct {
	inj     *Injector
	f       File
	name    string
	tracked bool  // created via OpenFile: fresh, append-only
	wrote   bool  // a Write has happened (header already written)
	size    int64 // bytes written (tracked files only)
	synced  int64 // size at the last successful Sync
}

func (w *injFile) Write(p []byte) (int, error) {
	inj := w.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.crashed {
		return 0, ErrCrashed
	}
	t := RecordWrite
	if w.tracked && !w.wrote {
		t = HeaderWrite
	}
	w.wrote = true
	if inj.fires(t, fmt.Sprintf("write(%s, %d bytes)", w.name, len(p))) {
		switch inj.plan.Kind {
		case ErrIO:
			return 0, errInjected(syscall.EIO)
		case ShortWrite, NoSpace, Crash:
			c := inj.plan.cut(len(p))
			n, _ := w.f.Write(p[:c])
			w.size += int64(n)
			if inj.plan.Kind == NoSpace {
				return n, errInjected(syscall.ENOSPC)
			}
			if inj.plan.Kind == Crash {
				inj.crashed = true
				return n, ErrCrashed
			}
			return n, errInjected(syscall.EIO)
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

func (w *injFile) Sync() error {
	inj := w.inj
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.crashed {
		return ErrCrashed
	}
	if inj.fires(FileSync, fmt.Sprintf("sync(%s)", w.name)) {
		switch inj.plan.Kind {
		case NoSpace:
			return errInjected(syscall.ENOSPC)
		case Crash:
			// Power loss before the flush completed: the bytes written
			// since the last successful sync were only in page cache.
			if w.tracked {
				w.f.Sync() // flush so the truncate below is the on-disk truth
				inj.inner.Truncate(w.name, w.synced)
			}
			inj.crashed = true
			return ErrCrashed
		default:
			return errInjected(syscall.EIO)
		}
	}
	err := w.f.Sync()
	if err == nil {
		w.synced = w.size
	}
	return err
}

func (w *injFile) Close() error {
	// Closing is not a faultable operation; after a crash the handle is
	// simply gone.
	return w.f.Close()
}

func (inj *Injector) dead() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.crashed
}

func (inj *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if inj.dead() {
		return nil, ErrCrashed
	}
	f, err := inj.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: inj, f: f, name: name, tracked: true}, nil
}

func (inj *Injector) Open(name string) (File, error) {
	if inj.dead() {
		return nil, ErrCrashed
	}
	f, err := inj.inner.Open(name)
	if err != nil {
		return nil, err
	}
	// Opened (not created) handles are sync-only in the WAL; their
	// on-disk size is unknown here, so a Crash at their sync latches
	// without rewinding.
	return &injFile{inj: inj, f: f, name: name, wrote: true}, nil
}

func (inj *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	inj.mu.Lock()
	if inj.crashed {
		inj.mu.Unlock()
		return ErrCrashed
	}
	if inj.fires(SnapshotWrite, fmt.Sprintf("writefile(%s, %d bytes)", name, len(data))) {
		plan := inj.plan
		switch plan.Kind {
		case ErrIO:
			inj.mu.Unlock()
			return errInjected(syscall.EIO)
		default:
			c := plan.cut(len(data))
			crash := plan.Kind == Crash
			if crash {
				inj.crashed = true
			}
			inj.mu.Unlock()
			inj.inner.WriteFile(name, data[:c], perm)
			if crash {
				return ErrCrashed
			}
			if plan.Kind == NoSpace {
				return errInjected(syscall.ENOSPC)
			}
			return errInjected(syscall.EIO)
		}
	}
	inj.mu.Unlock()
	return inj.inner.WriteFile(name, data, perm)
}

func (inj *Injector) ReadFile(name string) ([]byte, error) {
	if inj.dead() {
		return nil, ErrCrashed
	}
	return inj.inner.ReadFile(name)
}

func (inj *Injector) Rename(oldpath, newpath string) error {
	if inj.dead() {
		return ErrCrashed
	}
	return inj.inner.Rename(oldpath, newpath)
}

func (inj *Injector) Remove(name string) error {
	if inj.dead() {
		return ErrCrashed
	}
	return inj.inner.Remove(name)
}

func (inj *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if inj.dead() {
		return nil, ErrCrashed
	}
	return inj.inner.ReadDir(name)
}

func (inj *Injector) MkdirAll(path string, perm os.FileMode) error {
	if inj.dead() {
		return ErrCrashed
	}
	return inj.inner.MkdirAll(path, perm)
}

func (inj *Injector) Truncate(name string, size int64) error {
	if inj.dead() {
		return ErrCrashed
	}
	return inj.inner.Truncate(name, size)
}
