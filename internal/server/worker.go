package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/kv"
)

// This file is the shard-affine worker runtime (Config.Runtime
// "worker"): instead of one goroutine per connection, N run-to-
// completion worker loops serve every connection. A connection is
// assigned to a worker at accept time (round-robin, static — ownership
// never rebalances); its dedicated reader goroutine ships raw chunks
// to that worker over a channel. Each worker parses its connections'
// requests with the PR 4 byte parser and routes every operation to the
// worker owning the key's shard (shard s belongs to worker s mod W):
//
//   - Unconditional single-key requests (GET/SET/DEL) fold into merged
//     units of up to Config.Batch ops per owner — across connections,
//     not just within one, which is what amortizes engine begin/commit
//     far beyond what per-connection batching can.
//   - CAS and single-owner MULTI..EXEC become their own ordered units
//     (same wire semantics as the goroutine path: CAS never rides in a
//     batch, EXEC is all-or-nothing).
//   - Cross-owner MULTI..EXEC, LEN and STATS escalate to a slow path
//     that runs after the round barrier on the parsing worker's own
//     session — kv's ascending-order commit-lock discipline keeps that
//     correct; the connection pauses so its later requests cannot
//     overtake the escalated one.
//
// Each round the worker dispatches the unit lists to their owners,
// executes its own inline, and waits for the peers — servicing their
// unit lists while it waits, so crossing dispatches cannot deadlock.
// Because a shard's units are only ever executed by its owner, the
// per-shard commit-order locks of PR 5 are uncontended on this path by
// construction; only escalations ever take more than one.
//
// Replies render from per-connection slot queues in request order and
// every touched connection is sealed exactly once per round — all of
// its replies enter the pending-write buffer in one flush. The steady
// state allocates nothing: units, slots, buffers and sessions are all
// reused.
//
// Liveness: workers never write to sockets. A round's replies are
// sealed into the connection's pending buffer at its end and a small
// pool of flusher goroutines moves the bytes to the wire (flusher.go),
// so a client that stops reading stalls nobody but itself: its pending
// bytes grow until Config.MaxPendingWrite, at which point the
// connection is paused exactly like an escalation (its reader stops
// feeding, chunks stay pinned) until the flusher drains the backlog —
// or, if the socket accepts nothing for Config.FlushTimeout, the
// connection is killed.
//
// Round formation is adaptive: the blocking receive wakes the worker
// after a single reader's send, and a short gather window of scheduler
// yields (sized by recent fill) lets the other runnable readers deliver
// before the round closes, so merged units see a whole round's worth of
// connections. The chunk budget and the mailbox capacity both follow
// the live connection count instead of fixed constants.

// wmsgKind discriminates worker mailbox messages.
type wmsgKind uint8

const (
	// wmData: a reader delivered a raw chunk (buf aliases the reader's
	// buffer; the worker must ack once the chunk is consumed).
	wmData wmsgKind = iota
	// wmEOF: the connection's reader saw an error or EOF and exited.
	wmEOF
	// wmUnits: a peer dispatched a unit list for this worker to execute.
	wmUnits
	// wmDone: a peer finished executing the unit list we sent it.
	wmDone
	// wmResume: the flusher drained a backpressure-paused connection's
	// pending bytes; the worker may resume parsing its input.
	wmResume
	// wmDead: the flusher closed the connection (flush-deadline kill,
	// write error, or a deferred close after draining); the worker
	// releases its state.
	wmDead
	// wmNone: no message (drainAndExit's polling sentinel).
	wmNone
)

type wmsg struct {
	kind  wmsgKind
	c     *wconn
	buf   []byte
	from  *worker
	units []*unit
}

// unitKind discriminates execution units.
type unitKind uint8

const (
	// unitBatch is a merged unconditional batch (GET/SET/DEL), executed
	// as one transaction; ops may come from different connections.
	unitBatch unitKind = iota
	// unitCAS is a lone CAS with single-op semantics (a mismatch
	// reports CASFAIL, it never aborts anything else).
	unitCAS
	// unitMulti is a single-owner MULTI..EXEC batch (all-or-nothing;
	// a failed CAS guard answers ABORTED cas-guard).
	unitMulti
)

// unit is one ordered piece of a round's work for one owner. It is
// allocated from the parsing worker's pool and reused every round; the
// owner fills res/err, the parsing worker renders from them after the
// barrier.
type unit struct {
	kind unitKind
	ops  []kv.Op
	res  []kv.OpResult
	err  error
	// readsOK: the unit failed (err != nil) but its OpGet ops were
	// re-run read-only and res holds their results (see retryReads) —
	// reads keep their availability when another connection's write
	// poisons a merged batch (WAL fail-stop).
	readsOK bool
}

// slotKind discriminates reply slots.
type slotKind uint8

const (
	slotStatic      slotKind = iota // fixed text line
	slotErr                         // error via the shared errLine rules
	slotOp                          // one op's result out of a unit
	slotExec                        // a whole unit as a RESULTS block
	slotLen                         // LEN result (filled post-barrier)
	slotStats                       // store STATS line (rendered at flush)
	slotWorkerStats                 // STATS WORKERS block (rendered at flush)
	slotReplStats                   // STATS REPL line (rendered at flush)
	slotFlushStats                  // STATS FLUSH block (rendered at flush)
	slotPromote                     // PROMOTE result (filled post-barrier)
	// slotFoldStatic and slotFoldVal are folded replies whose outcome
	// is known at parse time but contingent on the governing unit (u)
	// committing: they render text / VALUE val / NOTFOUND on success
	// and the unit's error otherwise (see worker.folds).
	slotFoldStatic
	slotFoldVal
)

// rslot is one queued reply of a connection; slots render in request
// order at the end of the round.
type rslot struct {
	kind  slotKind
	text  string
	err   error
	u     *unit
	idx   int
	val   uint64
	found bool
}

// escKind discriminates slow-path escalations.
type escKind uint8

const (
	escExec escKind = iota // cross-owner MULTI..EXEC
	escLen
	escStats
	escStatsWorkers
	escStatsRepl
	escStatsFlush
	escPromote
)

// escal is one escalated request, executed after the round barrier in
// parse order.
type escal struct {
	kind escKind
	c    *wconn
	slot int
	u    *unit
}

// wconn is one connection's state, owned by exactly one worker for the
// connection's whole life (static assignment — the churn soak pins
// this). The reader goroutine only touches nc, bufs, ack and mb; the
// flusher pool touches nc and the fmu-guarded fields.
type wconn struct {
	w  *worker
	nc net.Conn
	// bw renders replies into the pending-write buffer (its sink is
	// pendWriter, never the socket); the flusher pool moves the bytes.
	bw *bufio.Writer
	// mb is the worker mailbox this connection is bound to — fixed at
	// accept time, so one connection's messages stay FIFO even after
	// the worker grows a larger mailbox for later connections.
	mb chan wmsg

	// bufs are the reader's ping-pong chunk buffers; ack releases a
	// consumed chunk's buffer back to the reader (capacity 2 = the
	// maximum outstanding chunks, so acking never blocks the worker).
	bufs [2][]byte
	ack  chan struct{}

	// carry assembles a line split across chunks (always a copy, so
	// chunks can be acked while a partial line is pending). rem is the
	// unparsed tail of the current chunk after a pause — possibly
	// empty but non-nil when the pause fell on the exact chunk
	// boundary, so the chunk stays un-acked either way; next is the
	// one further chunk that may already be queued behind it. Both
	// alias reader buffers and hold their acks until consumed, which
	// is what caps the reader at one queued chunk: a pause always
	// pins rem's buffer, so of the reader's two buffers at most one
	// can be in flight (next), and a third chunk cannot exist.
	carry []byte
	rem   []byte
	next  []byte

	toks    [][]byte
	multi   []kv.Op
	slots   []rslot
	num     []byte
	reqs    int64
	inMulti bool
	// paused stops parsing until the round barrier (set by
	// escalations, cleared when the round ends).
	paused   bool
	closing  bool // QUIT / fatal protocol error: close once drained
	eof      bool // reader exited
	gone     bool // closed and unregistered
	inActive bool // already on the worker's per-round active list
	// bpp is the backpressure pause: pending reply bytes exceeded
	// Config.MaxPendingWrite at seal. Unlike paused it persists across
	// rounds — input stays pinned until the flusher's wmResume. Owned
	// by the worker; set/cleared under fmu only for bppWait symmetry.
	bpp bool

	// Flusher-shared state, guarded by fmu (see flusher.go): out is the
	// sealed reply bytes awaiting the flusher, frest a partially
	// written remainder, fback the recycled drained array, inflight the
	// byte count of an ongoing write. fsince (flusher-only, sequenced
	// through the pool queue) tracks the last write progress for the
	// FlushTimeout kill.
	fmu      sync.Mutex
	out      []byte
	frest    []byte
	fback    []byte
	inflight int
	fsince   time.Time
	fqueued  bool // sitting in the flusher queue
	fbusy    bool // a flusher goroutine currently owns this connection
	ffailed  bool // flusher killed the connection; drop future seals
	fclose   bool // close nc once the pending bytes are drained
	bppWait  bool // flusher should send wmResume when fully drained

	// raw, when non-nil, enables seal's inline fast path: one
	// non-blocking (EAGAIN-bounded) write attempt on the fd before the
	// flusher handoff. Nil for conns without a syscall descriptor
	// (net.Pipe in tests), which always take the flusher path.
	raw *rawWriter
}

func (c *wconn) ackChunk() { c.ack <- struct{}{} }

// discardInput drops any unconsumed input, releasing the acks its
// chunks still hold so the reader can never deadlock on a dead conn.
func (c *wconn) discardInput() {
	c.carry = c.carry[:0]
	if c.rem != nil {
		c.rem = nil
		c.ackChunk()
	}
	if c.next != nil {
		c.next = nil
		c.ackChunk()
	}
}

// ownerOut accumulates one owner's ordered unit list for the current
// round. open is the trailing merged batch still accepting ops.
type ownerOut struct {
	units []*unit
	open  *unit
}

// foldState is one handle's per-round folding state (see worker.folds).
// seq must match the worker's current roundSeq for the entry to be
// live. ru/ridx name the round's first still-valid GET of the handle
// (later GETs share its result); wu names the unit carrying the
// round's trailing write, after which the key's state is known to be
// (present, val) — provided that unit commits. widx is the index of a
// rewritable SET op inside wu (-1 when the trailing write is a DEL).
type foldState struct {
	seq     uint64
	ru      *unit
	ridx    int
	wu      *unit
	widx    int
	val     uint64
	present bool
}

// worker is one run-to-completion loop.
type worker struct {
	id   int
	rt   *workerRuntime
	sess *kv.Session

	// dataCh carries reader and flusher traffic (data/EOF/resume/dead);
	// ctrlCh carries peer dispatch traffic (units/done). They are
	// separate so the round barrier can wait on peers without consuming
	// new connection input, and ctrlCh's capacity (2W) covers the worst
	// case in flight — at most one unit list and one done per peer — so
	// control sends never block. dataCh2 is the grown second mailbox
	// generation (nil until the live connection count outgrows dataCh's
	// capacity): existing connections keep the channel they bound at
	// accept time (per-connection FIFO), new ones bind the current one
	// (mbox). A nil dataCh2 case in a select simply never fires.
	dataCh  chan wmsg
	dataCh2 chan wmsg
	mbox    atomic.Value // chan wmsg: where accept binds new connections
	ctrlCh  chan wmsg

	outs    []ownerOut
	escs    []escal
	active  []*wconn
	pending []*wconn

	unitPool []*unit
	nUnits   int
	readOps  []kv.Op // retryReads scratch (reused)

	// folds is the round's per-handle folding state, the worker
	// runtime's cross-connection amortization (goroutine-per-connection
	// has no view across connections):
	//
	//   - duplicate GETs fold onto the round's first engine read of the
	//     same handle and share its result;
	//   - a GET after a same-round write is answered from the written
	//     state without touching the engine;
	//   - SET-after-SET rewrites the pending SET op's value in place
	//     (last-writer-wins) instead of appending a second op;
	//   - DEL of a key the round already removed (or whose trailing
	//     write was a DEL) answers statically — deleting an absent key
	//     is a no-op on state.
	//
	// The table is a dense slice indexed by handle, not a map: handles
	// are assigned densely from 1 by the store's interner and never
	// reclaimed, so the slice mirrors the interner's own arena
	// discipline (it grows with the set of distinct keys ever touched
	// and costs one bounds check per op where a map costs a hash).
	//
	// Folding is sound because all of a round's units execute before
	// any reply is flushed: the folded ops serialize adjacently at the
	// governing unit's commit, which respects every connection's
	// program order — an escalated write cannot be overtaken
	// (escalations pause their connection), and a same-round op from
	// another connection is concurrent with the folded ops (none of the
	// round's replies has left the server), so placing the folded ops
	// next to their source is a valid linearization. Replies derived
	// from a write render contingent on that write's unit: if the unit
	// errors (WAL fail-stop latch), the folded reply reports the same
	// error instead of acknowledging state that never committed. CAS
	// and EXEC writes invalidate the handle's entry. Entries are
	// stamped with roundSeq so the table is never cleared on the hot
	// path; a stale entry (old stamp, possibly a recycled unit) is
	// simply ignored.
	folds    []foldState
	roundSeq uint64

	// gatherSpins is the adaptive gather window: how many scheduler
	// yields the round takes to let runnable readers deliver before it
	// closes. It grows (to maxGatherSpins) while the last yield of a
	// round still surfaced new chunks with budget to spare, and shrinks
	// back toward 1 when the first yield comes up empty — so idle and
	// single-connection workers pay no extra latency.
	gatherSpins int

	// Counters (read cross-worker by STATS WORKERS / STATS FLUSH and
	// the shutdown report, hence atomic).
	connsN    atomic.Int64
	reqsN     atomic.Int64
	rounds    atomic.Int64
	escals    atomic.Int64
	dispatchN atomic.Int64 // cross-worker unit-list dispatches (≤ peers per round)

	// Async-flush counters (see flusher.go).
	pendBytes   atomic.Int64
	sealedBytes atomic.Int64
	bpPauses    atomic.Int64
	flushKills  atomic.Int64

	// Config cached off the hot path.
	batchCap   int
	maxMulti   int
	maxLine    int
	maxPending int64
}

// workerRuntime owns the worker loops and the flusher pool of one
// server.
type workerRuntime struct {
	srv     *Server
	workers []*worker
	fl      *flusherPool
	next    atomic.Uint64

	stop    chan struct{}
	live    atomic.Int32
	allIdle chan struct{}
	wg      sync.WaitGroup
}

func newWorkerRuntime(s *Server, n int) *workerRuntime {
	if n < 1 {
		n = 1
	}
	rt := &workerRuntime{srv: s, stop: make(chan struct{}), allIdle: make(chan struct{})}
	rt.fl = newFlusherPool(s.cfg.Flushers, s.cfg.FlushTimeout)
	rt.live.Store(int32(n))
	for i := 0; i < n; i++ {
		rt.workers = append(rt.workers, rt.newWorker(i, n))
	}
	rt.wg.Add(n)
	for _, w := range rt.workers {
		go w.loop()
	}
	return rt
}

// newWorker builds one worker of an n-worker runtime (the loop is
// started by the caller; worker-internal tests drive rounds directly).
func (rt *workerRuntime) newWorker(id, n int) *worker {
	s := rt.srv
	w := &worker{
		id:          id,
		rt:          rt,
		sess:        s.store.NewSession(),
		dataCh:      make(chan wmsg, 512),
		ctrlCh:      make(chan wmsg, 2*n),
		outs:        make([]ownerOut, n),
		folds:       make([]foldState, 1024),
		gatherSpins: 1,
		batchCap:    s.cfg.Unit,
		maxMulti:    s.cfg.MaxMultiOps,
		maxLine:     s.cfg.MaxLine,
		maxPending:  s.cfg.MaxPendingWrite,
	}
	w.mbox.Store(w.dataCh)
	return w
}

// ownerOf maps a key handle to the worker owning its shard.
func (rt *workerRuntime) ownerOf(h uint64) int {
	return rt.srv.store.ShardOf(h) % len(rt.workers)
}

// stopAll is called by Server.Close after every reader goroutine has
// exited: the workers drain what remains and stop, then the flusher
// pool (whose notifies nobody would drain anymore) is released.
func (rt *workerRuntime) stopAll() {
	close(rt.stop)
	rt.wg.Wait()
	rt.fl.stop()
}

// serve is the reader loop: it runs on the accept goroutine, shipping
// raw chunks to the connection's worker and recycling its two buffers
// as the worker acks them. Assignment is round-robin and permanent.
func (rt *workerRuntime) serve(nc net.Conn) {
	w := rt.workers[int(rt.next.Add(1)-1)%len(rt.workers)]
	c := &wconn{
		w:   w,
		nc:  nc,
		mb:  w.mbox.Load().(chan wmsg),
		ack: make(chan struct{}, 2),
	}
	if sc, ok := nc.(syscall.Conn); ok {
		if rc, err := sc.SyscallConn(); err == nil {
			c.raw = newRawWriter(rc)
		}
	}
	c.bw = bufio.NewWriterSize(pendWriter{c}, 16<<10)
	c.bufs[0] = make([]byte, 16<<10)
	c.bufs[1] = make([]byte, 16<<10)
	w.connsN.Add(1)
	var cur int
	var sent [2]bool
	for {
		if sent[cur] {
			// The worker still owns this buffer's previous chunk; acks
			// arrive in chunk order, so the first ack frees exactly it.
			<-c.ack
			sent[cur] = false
		}
		n, err := nc.Read(c.bufs[cur])
		if n > 0 {
			c.mb <- wmsg{kind: wmData, c: c, buf: c.bufs[cur][:n]}
			sent[cur] = true
			cur ^= 1
		}
		if err != nil {
			c.mb <- wmsg{kind: wmEOF, c: c}
			return
		}
	}
}

// Round sizing. The chunk budget bounds how many queued messages one
// round absorbs — so a deep backlog cannot starve the seal of already-
// parsed replies — and follows the live connection count: with two
// ping-pong chunks per reader in flight, 2×live+16 admits every
// runnable reader's delivery without truncating the cross-connection
// fold, clamped to keep degenerate counts sane.
const (
	minRoundBudget = 64
	maxRoundBudget = 4096
	maxGatherSpins = 4
)

func (w *worker) roundBudget() int {
	b := 2*int(w.connsN.Load()) + 16
	if b < minRoundBudget {
		return minRoundBudget
	}
	if b > maxRoundBudget {
		return maxRoundBudget
	}
	return b
}

func (w *worker) loop() {
	defer w.rt.wg.Done()
	for {
		// Block only when nothing is deferred from the previous round.
		if len(w.pending) == 0 {
			select {
			case m := <-w.dataCh:
				w.handleData(m)
			case m := <-w.dataCh2:
				w.handleData(m)
			case m := <-w.ctrlCh:
				w.handleCtrl(m)
			case <-w.rt.stop:
				w.drainAndExit()
				return
			}
		}
		// Re-parse input deferred from the previous round BEFORE
		// absorbing new chunks: a connection's held tail (rem) and
		// queued chunk (next) are strictly older than anything still in
		// the mailbox, and parsing them first is what keeps each
		// connection's requests in arrival order across a pause.
		w.resumePending()
		w.gather()
		w.finishRound()
	}
}

// gather forms the round: it absorbs everything already queued, then
// yields to the scheduler so the readers made runnable by their sends
// can deliver too — the blocking receive in loop wakes this worker
// after a single reader's send, while the other ready readers are
// still queued behind it on the run queue. Stepping to the back of
// that queue lets every runnable reader deliver its chunk before the
// round closes, which is what gives the merged units their cross-
// connection fold (and the read-dedup its duplicates). The number of
// yields adapts (gatherSpins): while the final yield of a round still
// surfaced new chunks with budget to spare the window grows, and when
// the first yield comes up empty it shrinks — so a lone low-rate
// connection pays no added latency, while a busy worker coalesces a
// full round per scheduler pass.
func (w *worker) gather() {
	budget := w.roundBudget()
	n := w.drainQueued(budget)
	spins := w.gatherSpins
	for s := 0; s < spins && n < budget; s++ {
		runtime.Gosched()
		m := w.drainQueued(budget - n)
		if m == 0 {
			if s == 0 && w.gatherSpins > 1 {
				w.gatherSpins--
			}
			return
		}
		n += m
		if s == spins-1 && n < budget && w.gatherSpins < maxGatherSpins {
			w.gatherSpins++
		}
	}
}

// drainQueued absorbs up to budget already-queued messages without
// blocking, from both mailbox generations and the control channel.
func (w *worker) drainQueued(budget int) int {
	n := 0
	for n < budget {
		select {
		case m := <-w.dataCh:
			w.handleData(m)
		case m := <-w.dataCh2:
			w.handleData(m)
		case m := <-w.ctrlCh:
			w.handleCtrl(m)
		default:
			return n
		}
		n++
	}
	return n
}

func (w *worker) handleData(m wmsg) {
	c := m.c
	switch m.kind {
	case wmData:
		if c.gone || c.closing {
			c.ackChunk()
			return
		}
		if c.paused || c.bpp || c.rem != nil || c.next != nil {
			// The connection holds older unparsed input, or a pause is in
			// force. An escalation pause always pins its chunk un-acked
			// in rem (even a pause on the exact chunk boundary keeps an
			// empty tail there — see parseLines), so the reader owns at
			// most one more buffer and exactly one chunk can ever be
			// queued in next. A backpressure pause (bpp) can begin with
			// no held input: its first arriving chunk is pinned whole in
			// rem — un-acked, so the same single-slot bound applies. A
			// third chunk would mean the ping-pong accounting broke;
			// queueing it would silently overwrite client input, so fail
			// loudly.
			if c.rem == nil && c.next == nil {
				c.rem = m.buf
				return
			}
			if c.next != nil {
				panic("server: worker received a chunk with one already queued behind a pause")
			}
			c.next = m.buf
			return
		}
		if rest := w.parseLines(c, m.buf); rest != nil {
			c.rem = rest
		} else {
			c.ackChunk()
		}
	case wmEOF:
		c.eof = true
		w.touch(c) // make the round visit it for close
	case wmResume:
		// The flusher drained a backpressure-paused connection; resume
		// parsing its pinned input at the next round.
		if c.gone || !c.bpp {
			return
		}
		c.bpp = false
		if c.rem != nil || c.next != nil || c.eof || c.closing {
			// Touching is enough: finishRound re-pends held input (rem/
			// next) and handles a deferred close uniformly for every
			// active connection.
			w.touch(c)
		}
	case wmDead:
		// The flusher closed the socket (deadline kill, write error, or
		// a deferred close after draining); release the worker state.
		if c.reqs != 0 {
			w.rt.srv.requests.Add(c.reqs)
			w.reqsN.Add(c.reqs)
			c.reqs = 0
		}
		w.closeConn(c)
	}
}

// handleCtrl services one peer message; it reports whether it was a
// completion (the barrier counts those).
func (w *worker) handleCtrl(m wmsg) bool {
	switch m.kind {
	case wmUnits:
		w.runUnits(m.units)
		m.from.ctrlCh <- wmsg{kind: wmDone}
		return false
	case wmDone:
		return true
	}
	return false
}

// resumePending re-parses connections paused mid-chunk by the previous
// round, oldest input first (rem, then the queued next chunk).
func (w *worker) resumePending() {
	pend := w.pending
	w.pending = w.pending[:0]
	for _, c := range pend {
		if c.gone || c.closing {
			c.discardInput()
			w.touch(c)
			continue
		}
		if c.rem != nil {
			data := c.rem
			c.rem = nil
			if rest := w.parseLines(c, data); rest != nil {
				c.rem = rest
				continue
			}
			c.ackChunk()
		}
		if c.paused {
			continue // re-pended by finishRound if input remains
		}
		if c.next != nil {
			data := c.next
			c.next = nil
			if rest := w.parseLines(c, data); rest != nil {
				c.rem = rest
				continue
			}
			c.ackChunk()
		}
	}
}

// parseLines consumes newline-terminated requests from data. It
// returns the unconsumed tail when the connection paused — a zero-
// length but non-nil tail when the pause fell on the exact chunk
// boundary — and nil when the chunk is fully consumed (or discarded).
// The caller acks exactly the nil case: a paused connection must keep
// its chunk un-acked even when nothing is left to parse, so the
// reader stays blocked and can queue at most one further chunk
// (c.next) before the pause resolves.
func (w *worker) parseLines(c *wconn, data []byte) []byte {
	for len(data) > 0 {
		if c.closing || c.gone {
			return nil
		}
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			if len(c.carry)+len(data) > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
			c.carry = append(c.carry, data...)
			return nil
		}
		var line []byte
		if len(c.carry) > 0 {
			if len(c.carry)+i+1 > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
			c.carry = append(c.carry, data[:i+1]...)
			line = c.carry
		} else {
			line = data[:i+1]
			if len(line) > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
		}
		data = data[i+1:]
		w.handleLine(c, line)
		c.carry = c.carry[:0]
		if c.paused {
			return data // non-nil even when empty: the chunk stays un-acked
		}
	}
	return nil
}

// lineTooLong mirrors the goroutine path's oversized-line handling:
// answer `ERR line too long` (after the replies queued before it, in
// order) and close the connection.
func (w *worker) lineTooLong(c *wconn) {
	s := w.slot(c)
	s.kind = slotStatic
	s.text = "ERR line too long"
	c.closing = true
	c.discardInput()
}

// handleLine parses and routes one request line.
func (w *worker) handleLine(c *wconn, line []byte) {
	c.toks = splitFields(line, c.toks)
	if len(c.toks) == 0 {
		return
	}
	c.reqs++
	w.touch(c)
	v := lookupVerb(c.toks[0])
	if c.inMulti {
		w.stepMulti(c, v)
		return
	}
	args := c.toks[1:]
	switch v {
	case vGet, vSet, vDel:
		if v != vGet && w.rt.srv.isReplica() {
			w.errSlot(c, errReplicaReadonly)
			return
		}
		op, err := parseOp(w.sess, v, c.toks[0], args)
		if err != nil {
			w.errSlot(c, err)
			return
		}
		w.pushOp(c, op)
	case vCas:
		if w.rt.srv.isReplica() {
			w.errSlot(c, errReplicaReadonly)
			return
		}
		op, err := parseOp(w.sess, v, c.toks[0], args)
		if err != nil {
			w.errSlot(c, err)
			return
		}
		w.pushCAS(c, op)
	case vLen:
		s := w.slot(c)
		s.kind = slotLen
		w.escalate(c, escLen, nil, len(c.slots)-1)
	case vStats:
		s := w.slot(c)
		switch {
		case len(args) == 1 && foldEq(args[0], "WORKERS"):
			s.kind = slotWorkerStats
			w.escalate(c, escStatsWorkers, nil, len(c.slots)-1)
		case len(args) == 1 && foldEq(args[0], "REPL"):
			s.kind = slotReplStats
			w.escalate(c, escStatsRepl, nil, len(c.slots)-1)
		case len(args) == 1 && foldEq(args[0], "FLUSH"):
			s.kind = slotFlushStats
			w.escalate(c, escStatsFlush, nil, len(c.slots)-1)
		default:
			s.kind = slotStats
			w.escalate(c, escStats, nil, len(c.slots)-1)
		}
	case vPing:
		w.staticSlot(c, "PONG")
	case vMulti:
		c.inMulti = true
		c.multi = c.multi[:0]
		w.staticSlot(c, "OK")
	case vQuit:
		w.staticSlot(c, "BYE")
		c.closing = true
		c.discardInput()
	case vPromote:
		// Role changes happen post-barrier so no in-flight unit of the
		// round straddles the flip; the connection pauses like any other
		// escalation, so its later requests observe the new role.
		s := w.slot(c)
		s.kind = slotPromote
		w.escalate(c, escPromote, nil, len(c.slots)-1)
	default:
		s := w.slot(c)
		s.kind = slotStatic
		s.text = fmt.Sprintf("ERR unknown command %q", foldUpper(c.toks[0]))
	}
}

// stepMulti handles one request inside a MULTI block.
func (w *worker) stepMulti(c *wconn, v verb) {
	switch v {
	case vExec:
		c.inMulti = false
		w.pushExec(c)
		c.multi = c.multi[:0]
	case vDiscard:
		c.inMulti = false
		c.multi = c.multi[:0]
		w.staticSlot(c, "OK")
	default:
		op, err := parseOp(w.sess, v, c.toks[0], c.toks[1:])
		switch {
		case err != nil:
			w.errSlot(c, err)
		case len(c.multi) >= w.maxMulti:
			s := w.slot(c)
			s.kind = slotStatic
			s.text = fmt.Sprintf("ERR multi batch exceeds %d ops", w.maxMulti)
		default:
			c.multi = append(c.multi, op)
			w.staticSlot(c, "QUEUED")
		}
	}
}

// appendOp appends an unconditional op to its owner's trailing merged
// batch, opening a new one at the Config.Unit boundary.
func (w *worker) appendOp(op kv.Op) (*unit, int) {
	o := &w.outs[w.rt.ownerOf(op.Handle)]
	u := o.open
	if u == nil || len(u.ops) >= w.batchCap {
		u = w.newUnit(unitBatch)
		o.units = append(o.units, u)
		o.open = u
	}
	u.ops = append(u.ops, op)
	return u, len(u.ops) - 1
}

// fold returns the handle's folding entry, growing the dense table to
// admit it. A zero entry (nil ru/wu) reads as absent in every branch of
// pushOp, so growth needs no initialization and invalidation is a
// zeroing store.
func (w *worker) fold(h uint64) *foldState {
	if h >= uint64(len(w.folds)) {
		grown := make([]foldState, 2*h)
		copy(grown, w.folds)
		w.folds = grown
	}
	return &w.folds[h]
}

// pushOp routes an unconditional op through the round's per-handle
// folding state (see worker.folds), appending to a merged unit only
// when the op genuinely needs the engine.
func (w *worker) pushOp(c *wconn, op kv.Op) {
	s := w.slot(c)
	f := w.fold(op.Handle)
	live := f.seq == w.roundSeq
	switch op.Kind {
	case kv.OpGet:
		if live && f.wu != nil {
			// The round already wrote this key: answer from the written
			// state, contingent on that write's unit committing.
			s.kind = slotFoldVal
			s.u = f.wu
			s.val = f.val
			s.found = f.present
			return
		}
		if live && f.ru != nil {
			// Duplicate read: share the round's first read of the key.
			s.kind = slotOp
			s.u = f.ru
			s.idx = f.ridx
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		*f = foldState{seq: w.roundSeq, ru: s.u, ridx: s.idx}
	case kv.OpPut:
		if live && f.wu != nil && f.widx >= 0 {
			// SET after SET: last-writer-wins — rewrite the pending op's
			// value in place (units dispatch only at the round barrier,
			// so the op is still the parsing worker's to mutate). The
			// reply is OK, not OK NEW: the folded-into SET created the
			// key, so this one observes it present.
			f.wu.ops[f.widx].Val = op.Val
			f.val = op.Val
			s.kind = slotFoldStatic
			s.u = f.wu
			s.text = "OK"
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		*f = foldState{
			seq: w.roundSeq, wu: s.u, widx: s.idx, val: op.Val, present: true,
		}
	case kv.OpDelete:
		if live && f.wu != nil && !f.present {
			// The round's trailing write already removed the key (or a
			// prior DEL established absence): deleting an absent key is
			// a no-op on state, so no engine op is needed.
			s.kind = slotFoldStatic
			s.u = f.wu
			s.text = "NOTFOUND"
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		*f = foldState{seq: w.roundSeq, wu: s.u, widx: -1}
	default:
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		*f = foldState{}
	}
}

// pushCAS seals the owner's merged batch (CAS never rides in one, so
// independent pipelined requests cannot abort each other) and appends
// the CAS as its own ordered unit.
func (w *worker) pushCAS(c *wconn, op kv.Op) {
	*w.fold(op.Handle) = foldState{}
	o := &w.outs[w.rt.ownerOf(op.Handle)]
	u := w.newUnit(unitCAS)
	u.ops = append(u.ops, op)
	o.units = append(o.units, u)
	o.open = nil
	s := w.slot(c)
	s.kind = slotOp
	s.u = u
	s.idx = 0
}

// pushExec routes a MULTI..EXEC batch: single-owner batches become an
// ordered unit on that owner; cross-owner batches escalate to the
// post-barrier slow path.
func (w *worker) pushExec(c *wconn) {
	if w.rt.srv.isReplica() && batchHasWrites(c.multi) {
		w.errSlot(c, errReplicaReadonly)
		return
	}
	if len(c.multi) == 0 {
		w.staticSlot(c, "RESULTS 0")
		return
	}
	owner := w.rt.ownerOf(c.multi[0].Handle)
	single := true
	for _, op := range c.multi[1:] {
		if w.rt.ownerOf(op.Handle) != owner {
			single = false
			break
		}
	}
	u := w.newUnit(unitMulti)
	// Copy out of c.multi: the connection may queue another MULTI in
	// the same round, and the unit must outlive the scratch.
	u.ops = append(u.ops, c.multi...)
	// A batch write invalidates the handle's folding state for the rest
	// of the round (the key's post-EXEC state is not tracked).
	for i := range u.ops {
		if u.ops[i].Kind != kv.OpGet {
			*w.fold(u.ops[i].Handle) = foldState{}
		}
	}
	s := w.slot(c)
	s.kind = slotExec
	s.u = u
	if single {
		o := &w.outs[owner]
		o.units = append(o.units, u)
		o.open = nil
		return
	}
	w.escalate(c, escExec, u, len(c.slots)-1)
}

// escalate defers a request to the post-barrier slow path and pauses
// the connection so its later requests cannot overtake this one.
func (w *worker) escalate(c *wconn, k escKind, u *unit, slot int) {
	w.escs = append(w.escs, escal{kind: k, c: c, slot: slot, u: u})
	c.paused = true
	w.escals.Add(1)
}

// runUnits executes a unit list on this worker's session — the owner
// side of a dispatch. Results are copied into each unit immediately
// (session scratch is only valid until its next operation).
func (w *worker) runUnits(units []*unit) {
	for _, u := range units {
		if u.kind == unitCAS {
			r, err := w.sess.Do(nil, u.ops[0])
			u.res = append(u.res[:0], r)
			u.err = err
			continue
		}
		res, err := w.sess.Txn(nil, u.ops)
		u.err = err
		if err == nil {
			u.res = append(u.res[:0], res...)
		} else if u.kind == unitBatch {
			w.retryReads(u)
		}
	}
}

// retryReads re-runs a failed merged batch's GETs as one read-only
// transaction. A merged batch mixes independent requests from many
// connections, so its error must not spread to ops that could not have
// caused it: under WAL fail-stop only writes fail (reads never reach
// the commit hook), and the goroutine runtime — where another
// connection's GET can never share a batch with this one's SET — would
// answer that GET from the store. Re-running the reads restores
// exactly that answer: a failed hook does not roll the engine commit
// back (see kv.CommitHook), so the state the retried reads observe is
// the same state any later read would. Write slots still render the
// unit's error.
func (w *worker) retryReads(u *unit) {
	w.readOps = w.readOps[:0]
	for i := range u.ops {
		if u.ops[i].Kind == kv.OpGet {
			w.readOps = append(w.readOps, u.ops[i])
		}
	}
	if len(w.readOps) == 0 {
		return
	}
	res, err := w.sess.Txn(nil, w.readOps)
	if err != nil {
		return // reads genuinely fail too: every slot reports u.err
	}
	if cap(u.res) < len(u.ops) {
		u.res = make([]kv.OpResult, len(u.ops))
	} else {
		u.res = u.res[:len(u.ops)]
	}
	j := 0
	for i := range u.ops {
		if u.ops[i].Kind == kv.OpGet {
			u.res[i] = res[j]
			j++
		} else {
			u.res[i] = kv.OpResult{}
		}
	}
	u.readsOK = true
}

// runEscalations executes the round's deferred slow-path requests in
// parse order, after every unit of the round has completed. LEN — the
// one escalation that costs a cross-shard read transaction — is
// snapshotted once per round and shared: a connection can carry at
// most one escalation per round (escalations pause their connection),
// so two LENs in one round are necessarily from different connections,
// i.e. concurrent requests, and serving both from one linearization
// point is as valid as serving them from two.
func (w *worker) runEscalations() {
	srv := w.rt.srv
	lenDone := false
	var lenVal uint64
	var lenErr error
	for i := range w.escs {
		e := &w.escs[i]
		switch e.kind {
		case escExec:
			res, err := w.sess.Txn(nil, e.u.ops)
			e.u.err = err
			if err == nil {
				e.u.res = append(e.u.res[:0], res...)
			}
		case escLen:
			if !lenDone {
				n, err := srv.store.Len(nil)
				lenVal, lenErr = uint64(n), err
				lenDone = true
			}
			s := &e.c.slots[e.slot]
			s.val, s.err = lenVal, lenErr
		case escPromote:
			seq, err := srv.Promote()
			s := &e.c.slots[e.slot]
			s.val, s.err = seq, err
		case escStats, escStatsWorkers, escStatsRepl, escStatsFlush:
			// Counter snapshots; rendered at flush, ordered here.
		}
	}
	w.escs = w.escs[:0]
}

// finishRound dispatches, executes, renders and seals one round.
// Every peer receives at most one dispatch per round (its whole
// ordered unit list in one wmUnits), however many connections
// contributed units or escalations — the barrier cost is bounded by
// the worker count, not the connection count.
func (w *worker) finishRound() {
	outstanding := 0
	for v := range w.outs {
		o := &w.outs[v]
		o.open = nil
		if len(o.units) == 0 || v == w.id {
			continue
		}
		w.rt.workers[v].ctrlCh <- wmsg{kind: wmUnits, from: w, units: o.units}
		outstanding++
	}
	if outstanding > 0 {
		w.dispatchN.Add(int64(outstanding))
	}
	w.runUnits(w.outs[w.id].units)
	for outstanding > 0 {
		if w.handleCtrl(<-w.ctrlCh) {
			outstanding--
		}
	}
	w.runEscalations()

	sealed := false
	for _, c := range w.active {
		c.inActive = false
		c.paused = false
		for i := range c.slots {
			w.renderSlot(c, &c.slots[i])
		}
		c.slots = c.slots[:0]
		wantClose := c.closing || (c.eof && c.rem == nil && c.next == nil)
		pend := int64(0)
		if !c.gone {
			pend = w.seal(c, wantClose)
			sealed = true
		}
		if c.reqs != 0 {
			w.rt.srv.requests.Add(c.reqs)
			w.reqsN.Add(c.reqs)
			c.reqs = 0
		}
		if wantClose {
			if pend > 0 {
				// Replies are still in flight; seal marked fclose under
				// fmu, so the flusher closes the socket once they're on
				// the wire (or the deadline kills it) and reports back
				// with wmDead — closing here would drop the bytes.
				c.discardInput()
				continue
			}
			w.closeConn(c)
			continue
		}
		if !c.bpp && (c.rem != nil || c.next != nil) {
			w.pending = append(w.pending, c)
		}
	}
	w.active = w.active[:0]
	for v := range w.outs {
		w.outs[v].units = w.outs[v].units[:0]
	}
	w.nUnits = 0
	// Invalidate the round's folded reads in O(1): stale stamps are
	// ignored, so the map needs no clearing.
	w.roundSeq++
	if sealed {
		w.rounds.Add(1)
	}
	w.maybeGrowMailbox()
}

// seal flushes the round's rendered replies into the connection's
// pending buffer, hands the connection to the flusher pool, and applies
// backpressure: past Config.MaxPendingWrite the connection pauses like
// an escalation (input pinned, reader stalled) until the flusher's
// wmResume. wantClose marks the connection for a deferred close — set
// under the same fmu hold as the pending check, so the flusher cannot
// drain in between and miss it. Returns the pending byte count.
func (w *worker) seal(c *wconn, wantClose bool) int64 {
	c.bw.Flush() // into the pending buffer via pendWriter; cannot fail
	c.fmu.Lock()
	if c.ffailed {
		// A flusher kill raced this round's renders: the bytes can
		// never be written, so drop them here to keep the pending-byte
		// accounting exact.
		dropLocked(c)
		c.fmu.Unlock()
		return 0
	}
	// Inline fast path: when the flusher is idle for this connection
	// and no remainder is queued ahead, one non-blocking write attempt
	// moves the round's replies straight to the socket — the common
	// case for a responsive client — and skips the flusher handoff
	// (two goroutine wakeups and a deadline syscall per round). A
	// socket that would block falls through to the pool with whatever
	// is left; fmu is uncontended here since no flusher owns the conn.
	if c.raw != nil && !c.fqueued && !c.fbusy && c.frest == nil && len(c.out) > 0 {
		n, err := c.raw.tryWrite(c.out)
		if n > 0 {
			w.pendBytes.Add(-int64(n))
			if n == len(c.out) {
				c.out = c.out[:0]
			} else {
				c.out = c.out[:copy(c.out, c.out[n:])]
			}
		}
		if err != nil {
			// Hard error: the peer is gone. Mirror the flusher's
			// failure path synchronously; the reader's Read error
			// releases the worker-side state via the normal close path.
			c.ffailed = true
			dropLocked(c)
			c.fmu.Unlock()
			c.nc.Close()
			return 0
		}
	}
	pend := int64(len(c.out) + len(c.frest) + c.inflight)
	if pend == 0 {
		c.fmu.Unlock()
		return 0
	}
	if wantClose {
		c.fclose = true
	}
	enq := !c.fqueued && !c.fbusy
	if enq {
		c.fqueued = true
	}
	if w.maxPending > 0 && pend > w.maxPending && !c.bpp && !wantClose {
		c.bpp = true
		c.bppWait = true
		w.bpPauses.Add(1)
	}
	c.fmu.Unlock()
	if enq {
		w.rt.fl.push(c)
	}
	return pend
}

// maybeGrowMailbox swaps in a larger second mailbox generation when the
// live connection count outgrows the seed capacity (512): with two
// ping-pong chunks per reader, a full round's deliveries must fit or
// readers serialize on the channel. Existing connections keep their
// bound channel (per-connection FIFO is per-channel); only new accepts
// bind the grown one, and the worker drains both forever. One growth
// suffices for the supported scale, so the select stays two-armed.
func (w *worker) maybeGrowMailbox() {
	if w.dataCh2 != nil {
		return
	}
	live := int(w.connsN.Load())
	if 2*live+16 <= cap(w.dataCh) {
		return
	}
	capacity := 4 * live
	if capacity < 2048 {
		capacity = 2048
	}
	if capacity > 16384 {
		capacity = 16384
	}
	w.dataCh2 = make(chan wmsg, capacity)
	w.mbox.Store(w.dataCh2)
}

// renderSlot writes one queued reply to the connection's buffer.
func (w *worker) renderSlot(c *wconn, s *rslot) {
	bw := c.bw
	switch s.kind {
	case slotStatic:
		renderStatic(bw, s.text)
	case slotErr:
		renderErr(bw, s.err)
	case slotOp:
		switch {
		case s.u.err == nil,
			s.u.readsOK && s.u.ops[s.idx].Kind == kv.OpGet:
			renderResult(bw, &c.num, s.u.ops[s.idx], s.u.res[s.idx])
		default:
			renderErr(bw, s.u.err)
		}
	case slotExec:
		u := s.u
		switch {
		case errors.Is(u.err, kv.ErrCASFailed):
			renderStatic(bw, "ABORTED cas-guard")
		case u.err != nil:
			renderErr(bw, u.err)
		default:
			bw.WriteString("RESULTS ")
			renderUint(bw, &c.num, uint64(len(u.res)))
			bw.WriteByte('\n')
			for i := range u.res {
				renderResult(bw, &c.num, u.ops[i], u.res[i])
			}
		}
	case slotLen:
		if s.err != nil {
			renderErr(bw, s.err)
		} else {
			bw.WriteString("LEN ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		}
	case slotStats:
		renderStats(bw, w.rt.srv.store.Stats())
	case slotWorkerStats:
		renderWorkerStats(bw, w.rt.srv)
	case slotReplStats:
		renderReplStats(bw, w.rt.srv)
	case slotFlushStats:
		renderFlushStats(bw, w.rt.srv, c.pendingBytes())
	case slotPromote:
		if s.err != nil {
			renderErr(bw, s.err)
		} else {
			bw.WriteString("PROMOTED ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		}
	case slotFoldStatic:
		if s.u.err != nil {
			renderErr(bw, s.u.err)
		} else {
			renderStatic(bw, s.text)
		}
	case slotFoldVal:
		switch {
		case s.u.err != nil:
			renderErr(bw, s.u.err)
		case s.found:
			bw.WriteString("VALUE ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		default:
			renderStatic(bw, "NOTFOUND")
		}
	}
}

func (w *worker) closeConn(c *wconn) {
	if c.gone {
		return
	}
	c.gone = true
	c.discardInput()
	w.connsN.Add(-1)
	w.rt.srv.dropConn(c.nc)
}

// drainAndExit runs after Server.Close has closed every connection and
// waited out the readers: whatever they produced is already queued.
// Drain it (publishing the exact request tallies), then keep answering
// peers still finishing their last round until every worker is here.
func (w *worker) drainAndExit() {
	for {
		var m wmsg
		select {
		case m = <-w.dataCh:
		case m = <-w.dataCh2:
		default:
			m.kind = wmNone
		}
		if m.kind != wmNone {
			switch m.kind {
			case wmData:
				m.c.ackChunk()
			case wmEOF, wmDead:
				if m.c.reqs != 0 {
					w.rt.srv.requests.Add(m.c.reqs)
					w.reqsN.Add(m.c.reqs)
					m.c.reqs = 0
				}
				w.closeConn(m.c)
			case wmResume:
				// Nothing to resume into; the connection is closing anyway.
			}
			continue
		}
		{
			// No dispatch can be in flight once every worker idles here
			// (a mid-round worker has not decremented yet and its
			// barrier completes because we keep serving ctrlCh).
			if w.rt.live.Add(-1) == 0 {
				close(w.rt.allIdle)
			}
			for {
				select {
				case m := <-w.ctrlCh:
					w.handleCtrl(m)
				case <-w.rt.allIdle:
					return
				}
			}
		}
	}
}

func (w *worker) touch(c *wconn) {
	if !c.inActive {
		c.inActive = true
		w.active = append(w.active, c)
	}
}

func (w *worker) slot(c *wconn) *rslot {
	w.touch(c)
	c.slots = append(c.slots, rslot{})
	return &c.slots[len(c.slots)-1]
}

func (w *worker) staticSlot(c *wconn, text string) {
	s := w.slot(c)
	s.kind = slotStatic
	s.text = text
}

func (w *worker) errSlot(c *wconn, err error) {
	s := w.slot(c)
	s.kind = slotErr
	s.err = err
}

func (w *worker) newUnit(k unitKind) *unit {
	var u *unit
	if w.nUnits < len(w.unitPool) {
		u = w.unitPool[w.nUnits]
	} else {
		u = &unit{}
		w.unitPool = append(w.unitPool, u)
	}
	w.nUnits++
	u.kind = k
	u.ops = u.ops[:0]
	u.res = u.res[:0]
	u.err = nil
	u.readsOK = false
	return u
}

// WorkerStats is one worker loop's counter snapshot.
type WorkerStats struct {
	// Conns is the number of connections currently assigned.
	Conns int64
	// Requests counts parsed protocol requests (published at flush and
	// close, like Server.Requests).
	Requests int64
	// FlushRounds counts rounds that flushed at least one connection.
	FlushRounds int64
	// Escalations counts slow-path requests: cross-worker MULTI..EXEC,
	// LEN and STATS.
	Escalations int64
	// Dispatches counts cross-worker unit-list sends — at most one per
	// peer per round, however many connections escalated or contributed
	// units (the batched-dispatch invariant).
	Dispatches int64
}

// WorkerStats snapshots the per-worker counters — the figures behind
// `STATS WORKERS` and the shutdown report. It returns nil when the
// server runs the goroutine runtime.
func (s *Server) WorkerStats() []WorkerStats {
	if s.rt == nil {
		return nil
	}
	out := make([]WorkerStats, len(s.rt.workers))
	for i, w := range s.rt.workers {
		out[i] = WorkerStats{
			Conns:       w.connsN.Load(),
			Requests:    w.reqsN.Load(),
			FlushRounds: w.rounds.Load(),
			Escalations: w.escals.Load(),
			Dispatches:  w.dispatchN.Load(),
		}
	}
	return out
}
