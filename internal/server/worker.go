package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kv"
)

// This file is the shard-affine worker runtime (Config.Runtime
// "worker"): instead of one goroutine per connection, N run-to-
// completion worker loops serve every connection. A connection is
// assigned to a worker at accept time (round-robin, static — ownership
// never rebalances); its dedicated reader goroutine ships raw chunks
// to that worker over a channel. Each worker parses its connections'
// requests with the PR 4 byte parser and routes every operation to the
// worker owning the key's shard (shard s belongs to worker s mod W):
//
//   - Unconditional single-key requests (GET/SET/DEL) fold into merged
//     units of up to Config.Batch ops per owner — across connections,
//     not just within one, which is what amortizes engine begin/commit
//     far beyond what per-connection batching can.
//   - CAS and single-owner MULTI..EXEC become their own ordered units
//     (same wire semantics as the goroutine path: CAS never rides in a
//     batch, EXEC is all-or-nothing).
//   - Cross-owner MULTI..EXEC, LEN and STATS escalate to a slow path
//     that runs after the round barrier on the parsing worker's own
//     session — kv's ascending-order commit-lock discipline keeps that
//     correct; the connection pauses so its later requests cannot
//     overtake the escalated one.
//
// Each round the worker dispatches the unit lists to their owners,
// executes its own inline, and waits for the peers — servicing their
// unit lists while it waits, so crossing dispatches cannot deadlock.
// Because a shard's units are only ever executed by its owner, the
// per-shard commit-order locks of PR 5 are uncontended on this path by
// construction; only escalations ever take more than one.
//
// Replies render from per-connection slot queues in request order and
// every touched connection is flushed exactly once per round — all of
// its replies leave in one write. The steady state allocates nothing:
// units, slots, buffers and sessions are all reused.
//
// Liveness note: workers write replies synchronously, so a client that
// stops reading while the server's socket buffer is full stalls its
// worker (and, transitively, peers waiting on that worker's barrier).
// Each flush therefore runs under a write deadline (Config.FlushTimeout):
// a connection that cannot drain its replies within it is treated as
// failed and closed, bounding how long one slow or malicious client can
// stall the others. Non-blocking writes with poller wakeups — which
// would confine the stall to the offending connection without a timeout
// — are the standard fix and remain out of scope here.

// wmsgKind discriminates worker mailbox messages.
type wmsgKind uint8

const (
	// wmData: a reader delivered a raw chunk (buf aliases the reader's
	// buffer; the worker must ack once the chunk is consumed).
	wmData wmsgKind = iota
	// wmEOF: the connection's reader saw an error or EOF and exited.
	wmEOF
	// wmUnits: a peer dispatched a unit list for this worker to execute.
	wmUnits
	// wmDone: a peer finished executing the unit list we sent it.
	wmDone
)

type wmsg struct {
	kind  wmsgKind
	c     *wconn
	buf   []byte
	from  *worker
	units []*unit
}

// unitKind discriminates execution units.
type unitKind uint8

const (
	// unitBatch is a merged unconditional batch (GET/SET/DEL), executed
	// as one transaction; ops may come from different connections.
	unitBatch unitKind = iota
	// unitCAS is a lone CAS with single-op semantics (a mismatch
	// reports CASFAIL, it never aborts anything else).
	unitCAS
	// unitMulti is a single-owner MULTI..EXEC batch (all-or-nothing;
	// a failed CAS guard answers ABORTED cas-guard).
	unitMulti
)

// unit is one ordered piece of a round's work for one owner. It is
// allocated from the parsing worker's pool and reused every round; the
// owner fills res/err, the parsing worker renders from them after the
// barrier.
type unit struct {
	kind unitKind
	ops  []kv.Op
	res  []kv.OpResult
	err  error
	// readsOK: the unit failed (err != nil) but its OpGet ops were
	// re-run read-only and res holds their results (see retryReads) —
	// reads keep their availability when another connection's write
	// poisons a merged batch (WAL fail-stop).
	readsOK bool
}

// slotKind discriminates reply slots.
type slotKind uint8

const (
	slotStatic slotKind = iota // fixed text line
	slotErr                    // error via the shared errLine rules
	slotOp                     // one op's result out of a unit
	slotExec                   // a whole unit as a RESULTS block
	slotLen                    // LEN result (filled post-barrier)
	slotStats                  // store STATS line (rendered at flush)
	slotWorkerStats            // STATS WORKERS block (rendered at flush)
	slotReplStats              // STATS REPL line (rendered at flush)
	slotPromote                // PROMOTE result (filled post-barrier)
	// slotFoldStatic and slotFoldVal are folded replies whose outcome
	// is known at parse time but contingent on the governing unit (u)
	// committing: they render text / VALUE val / NOTFOUND on success
	// and the unit's error otherwise (see worker.folds).
	slotFoldStatic
	slotFoldVal
)

// rslot is one queued reply of a connection; slots render in request
// order at the end of the round.
type rslot struct {
	kind  slotKind
	text  string
	err   error
	u     *unit
	idx   int
	val   uint64
	found bool
}

// escKind discriminates slow-path escalations.
type escKind uint8

const (
	escExec escKind = iota // cross-owner MULTI..EXEC
	escLen
	escStats
	escStatsWorkers
	escStatsRepl
	escPromote
)

// escal is one escalated request, executed after the round barrier in
// parse order.
type escal struct {
	kind escKind
	c    *wconn
	slot int
	u    *unit
}

// wconn is one connection's state, owned by exactly one worker for the
// connection's whole life (static assignment — the churn soak pins
// this). The reader goroutine only touches nc, bufs and ack.
type wconn struct {
	w  *worker
	nc net.Conn
	bw *bufio.Writer

	// bufs are the reader's ping-pong chunk buffers; ack releases a
	// consumed chunk's buffer back to the reader (capacity 2 = the
	// maximum outstanding chunks, so acking never blocks the worker).
	bufs [2][]byte
	ack  chan struct{}

	// carry assembles a line split across chunks (always a copy, so
	// chunks can be acked while a partial line is pending). rem is the
	// unparsed tail of the current chunk after a pause — possibly
	// empty but non-nil when the pause fell on the exact chunk
	// boundary, so the chunk stays un-acked either way; next is the
	// one further chunk that may already be queued behind it. Both
	// alias reader buffers and hold their acks until consumed, which
	// is what caps the reader at one queued chunk: a pause always
	// pins rem's buffer, so of the reader's two buffers at most one
	// can be in flight (next), and a third chunk cannot exist.
	carry []byte
	rem   []byte
	next  []byte

	toks    [][]byte
	multi   []kv.Op
	slots   []rslot
	num     []byte
	reqs    int64
	inMulti bool
	// paused stops parsing until the round barrier (set by
	// escalations, cleared when the round ends).
	paused   bool
	closing  bool // QUIT / fatal protocol error: close after flush
	eof      bool // reader exited
	gone     bool // closed and unregistered
	inActive bool // already on the worker's per-round active list
}

func (c *wconn) ackChunk() { c.ack <- struct{}{} }

// discardInput drops any unconsumed input, releasing the acks its
// chunks still hold so the reader can never deadlock on a dead conn.
func (c *wconn) discardInput() {
	c.carry = c.carry[:0]
	if c.rem != nil {
		c.rem = nil
		c.ackChunk()
	}
	if c.next != nil {
		c.next = nil
		c.ackChunk()
	}
}

// ownerOut accumulates one owner's ordered unit list for the current
// round. open is the trailing merged batch still accepting ops.
type ownerOut struct {
	units []*unit
	open  *unit
}

// foldState is one handle's per-round folding state (see worker.folds).
// seq must match the worker's current roundSeq for the entry to be
// live. ru/ridx name the round's first still-valid GET of the handle
// (later GETs share its result); wu names the unit carrying the
// round's trailing write, after which the key's state is known to be
// (present, val) — provided that unit commits. widx is the index of a
// rewritable SET op inside wu (-1 when the trailing write is a DEL).
type foldState struct {
	seq     uint64
	ru      *unit
	ridx    int
	wu      *unit
	widx    int
	val     uint64
	present bool
}

// worker is one run-to-completion loop.
type worker struct {
	id   int
	rt   *workerRuntime
	sess *kv.Session

	// dataCh carries reader traffic (data/EOF); ctrlCh carries peer
	// dispatch traffic (units/done). They are separate so the round
	// barrier can wait on peers without consuming new connection input,
	// and ctrlCh's capacity (2W) covers the worst case in flight — at
	// most one unit list and one done per peer — so control sends never
	// block.
	dataCh chan wmsg
	ctrlCh chan wmsg

	outs    []ownerOut
	escs    []escal
	active  []*wconn
	pending []*wconn

	unitPool []*unit
	nUnits   int
	readOps  []kv.Op // retryReads scratch (reused)

	// folds is the round's per-handle folding state, the worker
	// runtime's cross-connection amortization (goroutine-per-connection
	// has no view across connections):
	//
	//   - duplicate GETs fold onto the round's first engine read of the
	//     same handle and share its result;
	//   - a GET after a same-round write is answered from the written
	//     state without touching the engine;
	//   - SET-after-SET rewrites the pending SET op's value in place
	//     (last-writer-wins) instead of appending a second op;
	//   - DEL of a key the round already removed (or whose trailing
	//     write was a DEL) answers statically — deleting an absent key
	//     is a no-op on state.
	//
	// Folding is sound because all of a round's units execute before
	// any reply is flushed: the folded ops serialize adjacently at the
	// governing unit's commit, which respects every connection's
	// program order — an escalated write cannot be overtaken
	// (escalations pause their connection), and a same-round op from
	// another connection is concurrent with the folded ops (none of the
	// round's replies has left the server), so placing the folded ops
	// next to their source is a valid linearization. Replies derived
	// from a write render contingent on that write's unit: if the unit
	// errors (WAL fail-stop latch), the folded reply reports the same
	// error instead of acknowledging state that never committed. CAS
	// and EXEC writes invalidate the handle's entry. Entries are
	// stamped with roundSeq so the map is never cleared on the hot
	// path; a stale entry (old stamp, possibly a recycled unit) is
	// simply ignored.
	folds    map[uint64]foldState
	roundSeq uint64

	// Counters (read cross-worker by STATS WORKERS and the shutdown
	// report, hence atomic).
	connsN atomic.Int64
	reqsN  atomic.Int64
	rounds atomic.Int64
	escals atomic.Int64

	// Config cached off the hot path.
	batchCap     int
	maxMulti     int
	maxLine      int
	flushTimeout time.Duration
}

// workerRuntime owns the worker loops of one server.
type workerRuntime struct {
	srv     *Server
	workers []*worker
	next    atomic.Uint64

	stop    chan struct{}
	live    atomic.Int32
	allIdle chan struct{}
	wg      sync.WaitGroup
}

func newWorkerRuntime(s *Server, n int) *workerRuntime {
	if n < 1 {
		n = 1
	}
	rt := &workerRuntime{srv: s, stop: make(chan struct{}), allIdle: make(chan struct{})}
	rt.live.Store(int32(n))
	for i := 0; i < n; i++ {
		rt.workers = append(rt.workers, rt.newWorker(i, n))
	}
	rt.wg.Add(n)
	for _, w := range rt.workers {
		go w.loop()
	}
	return rt
}

// newWorker builds one worker of an n-worker runtime (the loop is
// started by the caller; worker-internal tests drive rounds directly).
func (rt *workerRuntime) newWorker(id, n int) *worker {
	s := rt.srv
	return &worker{
		id:           id,
		rt:           rt,
		sess:         s.store.NewSession(),
		dataCh:       make(chan wmsg, 512),
		ctrlCh:       make(chan wmsg, 2*n),
		outs:         make([]ownerOut, n),
		folds:        make(map[uint64]foldState, 256),
		batchCap:     s.cfg.Unit,
		maxMulti:     s.cfg.MaxMultiOps,
		maxLine:      s.cfg.MaxLine,
		flushTimeout: s.cfg.FlushTimeout,
	}
}

// ownerOf maps a key handle to the worker owning its shard.
func (rt *workerRuntime) ownerOf(h uint64) int {
	return rt.srv.store.ShardOf(h) % len(rt.workers)
}

// stopAll is called by Server.Close after every reader goroutine has
// exited: the workers drain what remains and stop.
func (rt *workerRuntime) stopAll() {
	close(rt.stop)
	rt.wg.Wait()
}

// serve is the reader loop: it runs on the accept goroutine, shipping
// raw chunks to the connection's worker and recycling its two buffers
// as the worker acks them. Assignment is round-robin and permanent.
func (rt *workerRuntime) serve(nc net.Conn) {
	w := rt.workers[int(rt.next.Add(1)-1)%len(rt.workers)]
	c := &wconn{
		w:   w,
		nc:  nc,
		bw:  bufio.NewWriterSize(nc, 16<<10),
		ack: make(chan struct{}, 2),
	}
	c.bufs[0] = make([]byte, 16<<10)
	c.bufs[1] = make([]byte, 16<<10)
	w.connsN.Add(1)
	var cur int
	var sent [2]bool
	for {
		if sent[cur] {
			// The worker still owns this buffer's previous chunk; acks
			// arrive in chunk order, so the first ack frees exactly it.
			<-c.ack
			sent[cur] = false
		}
		n, err := nc.Read(c.bufs[cur])
		if n > 0 {
			w.dataCh <- wmsg{kind: wmData, c: c, buf: c.bufs[cur][:n]}
			sent[cur] = true
			cur ^= 1
		}
		if err != nil {
			w.dataCh <- wmsg{kind: wmEOF, c: c}
			return
		}
	}
}

// roundChunkBudget bounds how many queued messages one round absorbs,
// so a deep backlog cannot starve the flush of already-parsed replies.
const roundChunkBudget = 256

func (w *worker) loop() {
	defer w.rt.wg.Done()
	for {
		// Block only when nothing is deferred from the previous round.
		if len(w.pending) == 0 {
			select {
			case m := <-w.dataCh:
				w.handleData(m)
			case m := <-w.ctrlCh:
				w.handleCtrl(m)
			case <-w.rt.stop:
				w.drainAndExit()
				return
			}
		}
		// Re-parse input deferred from the previous round BEFORE
		// absorbing new chunks: a connection's held tail (rem) and
		// queued chunk (next) are strictly older than anything still in
		// dataCh, and parsing them first is what keeps each connection's
		// requests in arrival order across a pause.
		w.resumePending()
		// Yield once before draining: the blocking receive above wakes
		// this worker after a single reader's send, while the other
		// ready readers are still queued behind it on the scheduler's
		// run queue. Stepping to the back of that queue lets every
		// runnable reader deliver its chunk first, so the drain below
		// absorbs a whole round's worth of connections instead of one —
		// which is what gives the merged units their cross-connection
		// fold (and the read-dedup its duplicates). The cost is one
		// scheduler pass per round, paid only on the worker loop.
		runtime.Gosched()
		// Absorb whatever else is already queued, bounded.
	drain:
		for n := 0; n < roundChunkBudget; n++ {
			select {
			case m := <-w.dataCh:
				w.handleData(m)
			case m := <-w.ctrlCh:
				w.handleCtrl(m)
			default:
				break drain
			}
		}
		w.finishRound()
	}
}

func (w *worker) handleData(m wmsg) {
	c := m.c
	switch m.kind {
	case wmData:
		if c.gone || c.closing {
			c.ackChunk()
			return
		}
		if c.paused || c.rem != nil || c.next != nil {
			// The connection holds older unparsed input: a pause always
			// pins its chunk un-acked in rem (even a pause on the exact
			// chunk boundary keeps an empty tail there — see
			// parseLines), so the reader owns at most one more buffer
			// and exactly one chunk can ever be queued here. A third
			// would mean the ping-pong accounting broke; queue it and
			// it would silently overwrite client input, so fail loudly.
			if c.next != nil {
				panic("server: worker received a chunk with one already queued behind a pause")
			}
			c.next = m.buf
			return
		}
		if rest := w.parseLines(c, m.buf); rest != nil {
			c.rem = rest
		} else {
			c.ackChunk()
		}
	case wmEOF:
		c.eof = true
		w.touch(c) // make the round visit it for close
	}
}

// handleCtrl services one peer message; it reports whether it was a
// completion (the barrier counts those).
func (w *worker) handleCtrl(m wmsg) bool {
	switch m.kind {
	case wmUnits:
		w.runUnits(m.units)
		m.from.ctrlCh <- wmsg{kind: wmDone}
		return false
	case wmDone:
		return true
	}
	return false
}

// resumePending re-parses connections paused mid-chunk by the previous
// round, oldest input first (rem, then the queued next chunk).
func (w *worker) resumePending() {
	pend := w.pending
	w.pending = w.pending[:0]
	for _, c := range pend {
		if c.gone || c.closing {
			c.discardInput()
			w.touch(c)
			continue
		}
		if c.rem != nil {
			data := c.rem
			c.rem = nil
			if rest := w.parseLines(c, data); rest != nil {
				c.rem = rest
				continue
			}
			c.ackChunk()
		}
		if c.paused {
			continue // re-pended by finishRound if input remains
		}
		if c.next != nil {
			data := c.next
			c.next = nil
			if rest := w.parseLines(c, data); rest != nil {
				c.rem = rest
				continue
			}
			c.ackChunk()
		}
	}
}

// parseLines consumes newline-terminated requests from data. It
// returns the unconsumed tail when the connection paused — a zero-
// length but non-nil tail when the pause fell on the exact chunk
// boundary — and nil when the chunk is fully consumed (or discarded).
// The caller acks exactly the nil case: a paused connection must keep
// its chunk un-acked even when nothing is left to parse, so the
// reader stays blocked and can queue at most one further chunk
// (c.next) before the pause resolves.
func (w *worker) parseLines(c *wconn, data []byte) []byte {
	for len(data) > 0 {
		if c.closing || c.gone {
			return nil
		}
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			if len(c.carry)+len(data) > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
			c.carry = append(c.carry, data...)
			return nil
		}
		var line []byte
		if len(c.carry) > 0 {
			if len(c.carry)+i+1 > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
			c.carry = append(c.carry, data[:i+1]...)
			line = c.carry
		} else {
			line = data[:i+1]
			if len(line) > w.maxLine {
				w.lineTooLong(c)
				return nil
			}
		}
		data = data[i+1:]
		w.handleLine(c, line)
		c.carry = c.carry[:0]
		if c.paused {
			return data // non-nil even when empty: the chunk stays un-acked
		}
	}
	return nil
}

// lineTooLong mirrors the goroutine path's oversized-line handling:
// answer `ERR line too long` (after the replies queued before it, in
// order) and close the connection.
func (w *worker) lineTooLong(c *wconn) {
	s := w.slot(c)
	s.kind = slotStatic
	s.text = "ERR line too long"
	c.closing = true
	c.discardInput()
}

// handleLine parses and routes one request line.
func (w *worker) handleLine(c *wconn, line []byte) {
	c.toks = splitFields(line, c.toks)
	if len(c.toks) == 0 {
		return
	}
	c.reqs++
	w.touch(c)
	v := lookupVerb(c.toks[0])
	if c.inMulti {
		w.stepMulti(c, v)
		return
	}
	args := c.toks[1:]
	switch v {
	case vGet, vSet, vDel:
		if v != vGet && w.rt.srv.isReplica() {
			w.errSlot(c, errReplicaReadonly)
			return
		}
		op, err := parseOp(w.sess, v, c.toks[0], args)
		if err != nil {
			w.errSlot(c, err)
			return
		}
		w.pushOp(c, op)
	case vCas:
		if w.rt.srv.isReplica() {
			w.errSlot(c, errReplicaReadonly)
			return
		}
		op, err := parseOp(w.sess, v, c.toks[0], args)
		if err != nil {
			w.errSlot(c, err)
			return
		}
		w.pushCAS(c, op)
	case vLen:
		s := w.slot(c)
		s.kind = slotLen
		w.escalate(c, escLen, nil, len(c.slots)-1)
	case vStats:
		s := w.slot(c)
		switch {
		case len(args) == 1 && foldEq(args[0], "WORKERS"):
			s.kind = slotWorkerStats
			w.escalate(c, escStatsWorkers, nil, len(c.slots)-1)
		case len(args) == 1 && foldEq(args[0], "REPL"):
			s.kind = slotReplStats
			w.escalate(c, escStatsRepl, nil, len(c.slots)-1)
		default:
			s.kind = slotStats
			w.escalate(c, escStats, nil, len(c.slots)-1)
		}
	case vPing:
		w.staticSlot(c, "PONG")
	case vMulti:
		c.inMulti = true
		c.multi = c.multi[:0]
		w.staticSlot(c, "OK")
	case vQuit:
		w.staticSlot(c, "BYE")
		c.closing = true
		c.discardInput()
	case vPromote:
		// Role changes happen post-barrier so no in-flight unit of the
		// round straddles the flip; the connection pauses like any other
		// escalation, so its later requests observe the new role.
		s := w.slot(c)
		s.kind = slotPromote
		w.escalate(c, escPromote, nil, len(c.slots)-1)
	default:
		s := w.slot(c)
		s.kind = slotStatic
		s.text = fmt.Sprintf("ERR unknown command %q", foldUpper(c.toks[0]))
	}
}

// stepMulti handles one request inside a MULTI block.
func (w *worker) stepMulti(c *wconn, v verb) {
	switch v {
	case vExec:
		c.inMulti = false
		w.pushExec(c)
		c.multi = c.multi[:0]
	case vDiscard:
		c.inMulti = false
		c.multi = c.multi[:0]
		w.staticSlot(c, "OK")
	default:
		op, err := parseOp(w.sess, v, c.toks[0], c.toks[1:])
		switch {
		case err != nil:
			w.errSlot(c, err)
		case len(c.multi) >= w.maxMulti:
			s := w.slot(c)
			s.kind = slotStatic
			s.text = fmt.Sprintf("ERR multi batch exceeds %d ops", w.maxMulti)
		default:
			c.multi = append(c.multi, op)
			w.staticSlot(c, "QUEUED")
		}
	}
}

// appendOp appends an unconditional op to its owner's trailing merged
// batch, opening a new one at the Config.Unit boundary.
func (w *worker) appendOp(op kv.Op) (*unit, int) {
	o := &w.outs[w.rt.ownerOf(op.Handle)]
	u := o.open
	if u == nil || len(u.ops) >= w.batchCap {
		u = w.newUnit(unitBatch)
		o.units = append(o.units, u)
		o.open = u
	}
	u.ops = append(u.ops, op)
	return u, len(u.ops) - 1
}

// pushOp routes an unconditional op through the round's per-handle
// folding state (see worker.folds), appending to a merged unit only
// when the op genuinely needs the engine.
func (w *worker) pushOp(c *wconn, op kv.Op) {
	s := w.slot(c)
	f, live := w.folds[op.Handle]
	live = live && f.seq == w.roundSeq
	switch op.Kind {
	case kv.OpGet:
		if live && f.wu != nil {
			// The round already wrote this key: answer from the written
			// state, contingent on that write's unit committing.
			s.kind = slotFoldVal
			s.u = f.wu
			s.val = f.val
			s.found = f.present
			return
		}
		if live && f.ru != nil {
			// Duplicate read: share the round's first read of the key.
			s.kind = slotOp
			s.u = f.ru
			s.idx = f.ridx
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		w.folds[op.Handle] = foldState{seq: w.roundSeq, ru: s.u, ridx: s.idx}
	case kv.OpPut:
		if live && f.wu != nil && f.widx >= 0 {
			// SET after SET: last-writer-wins — rewrite the pending op's
			// value in place (units dispatch only at the round barrier,
			// so the op is still the parsing worker's to mutate). The
			// reply is OK, not OK NEW: the folded-into SET created the
			// key, so this one observes it present.
			f.wu.ops[f.widx].Val = op.Val
			f.val = op.Val
			w.folds[op.Handle] = f
			s.kind = slotFoldStatic
			s.u = f.wu
			s.text = "OK"
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		w.folds[op.Handle] = foldState{
			seq: w.roundSeq, wu: s.u, widx: s.idx, val: op.Val, present: true,
		}
	case kv.OpDelete:
		if live && f.wu != nil && !f.present {
			// The round's trailing write already removed the key (or a
			// prior DEL established absence): deleting an absent key is
			// a no-op on state, so no engine op is needed.
			s.kind = slotFoldStatic
			s.u = f.wu
			s.text = "NOTFOUND"
			return
		}
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		w.folds[op.Handle] = foldState{seq: w.roundSeq, wu: s.u, widx: -1}
	default:
		s.kind = slotOp
		s.u, s.idx = w.appendOp(op)
		delete(w.folds, op.Handle)
	}
}

// pushCAS seals the owner's merged batch (CAS never rides in one, so
// independent pipelined requests cannot abort each other) and appends
// the CAS as its own ordered unit.
func (w *worker) pushCAS(c *wconn, op kv.Op) {
	delete(w.folds, op.Handle)
	o := &w.outs[w.rt.ownerOf(op.Handle)]
	u := w.newUnit(unitCAS)
	u.ops = append(u.ops, op)
	o.units = append(o.units, u)
	o.open = nil
	s := w.slot(c)
	s.kind = slotOp
	s.u = u
	s.idx = 0
}

// pushExec routes a MULTI..EXEC batch: single-owner batches become an
// ordered unit on that owner; cross-owner batches escalate to the
// post-barrier slow path.
func (w *worker) pushExec(c *wconn) {
	if w.rt.srv.isReplica() && batchHasWrites(c.multi) {
		w.errSlot(c, errReplicaReadonly)
		return
	}
	if len(c.multi) == 0 {
		w.staticSlot(c, "RESULTS 0")
		return
	}
	owner := w.rt.ownerOf(c.multi[0].Handle)
	single := true
	for _, op := range c.multi[1:] {
		if w.rt.ownerOf(op.Handle) != owner {
			single = false
			break
		}
	}
	u := w.newUnit(unitMulti)
	// Copy out of c.multi: the connection may queue another MULTI in
	// the same round, and the unit must outlive the scratch.
	u.ops = append(u.ops, c.multi...)
	// A batch write invalidates the handle's folding state for the rest
	// of the round (the key's post-EXEC state is not tracked).
	for i := range u.ops {
		if u.ops[i].Kind != kv.OpGet {
			delete(w.folds, u.ops[i].Handle)
		}
	}
	s := w.slot(c)
	s.kind = slotExec
	s.u = u
	if single {
		o := &w.outs[owner]
		o.units = append(o.units, u)
		o.open = nil
		return
	}
	w.escalate(c, escExec, u, len(c.slots)-1)
}

// escalate defers a request to the post-barrier slow path and pauses
// the connection so its later requests cannot overtake this one.
func (w *worker) escalate(c *wconn, k escKind, u *unit, slot int) {
	w.escs = append(w.escs, escal{kind: k, c: c, slot: slot, u: u})
	c.paused = true
	w.escals.Add(1)
}

// runUnits executes a unit list on this worker's session — the owner
// side of a dispatch. Results are copied into each unit immediately
// (session scratch is only valid until its next operation).
func (w *worker) runUnits(units []*unit) {
	for _, u := range units {
		if u.kind == unitCAS {
			r, err := w.sess.Do(nil, u.ops[0])
			u.res = append(u.res[:0], r)
			u.err = err
			continue
		}
		res, err := w.sess.Txn(nil, u.ops)
		u.err = err
		if err == nil {
			u.res = append(u.res[:0], res...)
		} else if u.kind == unitBatch {
			w.retryReads(u)
		}
	}
}

// retryReads re-runs a failed merged batch's GETs as one read-only
// transaction. A merged batch mixes independent requests from many
// connections, so its error must not spread to ops that could not have
// caused it: under WAL fail-stop only writes fail (reads never reach
// the commit hook), and the goroutine runtime — where another
// connection's GET can never share a batch with this one's SET — would
// answer that GET from the store. Re-running the reads restores
// exactly that answer: a failed hook does not roll the engine commit
// back (see kv.CommitHook), so the state the retried reads observe is
// the same state any later read would. Write slots still render the
// unit's error.
func (w *worker) retryReads(u *unit) {
	w.readOps = w.readOps[:0]
	for i := range u.ops {
		if u.ops[i].Kind == kv.OpGet {
			w.readOps = append(w.readOps, u.ops[i])
		}
	}
	if len(w.readOps) == 0 {
		return
	}
	res, err := w.sess.Txn(nil, w.readOps)
	if err != nil {
		return // reads genuinely fail too: every slot reports u.err
	}
	if cap(u.res) < len(u.ops) {
		u.res = make([]kv.OpResult, len(u.ops))
	} else {
		u.res = u.res[:len(u.ops)]
	}
	j := 0
	for i := range u.ops {
		if u.ops[i].Kind == kv.OpGet {
			u.res[i] = res[j]
			j++
		} else {
			u.res[i] = kv.OpResult{}
		}
	}
	u.readsOK = true
}

// runEscalations executes the round's deferred slow-path requests in
// parse order, after every unit of the round has completed.
func (w *worker) runEscalations() {
	srv := w.rt.srv
	for i := range w.escs {
		e := &w.escs[i]
		switch e.kind {
		case escExec:
			res, err := w.sess.Txn(nil, e.u.ops)
			e.u.err = err
			if err == nil {
				e.u.res = append(e.u.res[:0], res...)
			}
		case escLen:
			n, err := srv.store.Len(nil)
			s := &e.c.slots[e.slot]
			s.val, s.err = uint64(n), err
		case escPromote:
			seq, err := srv.Promote()
			s := &e.c.slots[e.slot]
			s.val, s.err = seq, err
		case escStats, escStatsWorkers, escStatsRepl:
			// Counter snapshots; rendered at flush, ordered here.
		}
	}
	w.escs = w.escs[:0]
}

// finishRound dispatches, executes, renders and flushes one round.
func (w *worker) finishRound() {
	outstanding := 0
	for v := range w.outs {
		o := &w.outs[v]
		o.open = nil
		if len(o.units) == 0 || v == w.id {
			continue
		}
		w.rt.workers[v].ctrlCh <- wmsg{kind: wmUnits, from: w, units: o.units}
		outstanding++
	}
	w.runUnits(w.outs[w.id].units)
	for outstanding > 0 {
		if w.handleCtrl(<-w.ctrlCh) {
			outstanding--
		}
	}
	w.runEscalations()

	flushed := false
	for _, c := range w.active {
		c.inActive = false
		c.paused = false
		for i := range c.slots {
			w.renderSlot(c, &c.slots[i])
		}
		c.slots = c.slots[:0]
		if !c.gone {
			// Bound the synchronous flush: a client that stops reading
			// with a full socket buffer would otherwise stall this
			// worker — and, through the round barrier, every peer
			// dispatching to it — indefinitely. Past the deadline the
			// connection is treated as failed and closed below.
			if w.flushTimeout > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(w.flushTimeout))
			}
			if err := c.bw.Flush(); err != nil {
				c.closing = true
				c.discardInput()
			}
			flushed = true
		}
		if c.reqs != 0 {
			w.rt.srv.requests.Add(c.reqs)
			w.reqsN.Add(c.reqs)
			c.reqs = 0
		}
		if c.closing || (c.eof && c.rem == nil && c.next == nil) {
			w.closeConn(c)
			continue
		}
		if c.rem != nil || c.next != nil {
			w.pending = append(w.pending, c)
		}
	}
	w.active = w.active[:0]
	for v := range w.outs {
		w.outs[v].units = w.outs[v].units[:0]
	}
	w.nUnits = 0
	// Invalidate the round's folded reads in O(1): stale stamps are
	// ignored, so the map needs no clearing.
	w.roundSeq++
	if flushed {
		w.rounds.Add(1)
	}
}

// renderSlot writes one queued reply to the connection's buffer.
func (w *worker) renderSlot(c *wconn, s *rslot) {
	bw := c.bw
	switch s.kind {
	case slotStatic:
		renderStatic(bw, s.text)
	case slotErr:
		renderErr(bw, s.err)
	case slotOp:
		switch {
		case s.u.err == nil,
			s.u.readsOK && s.u.ops[s.idx].Kind == kv.OpGet:
			renderResult(bw, &c.num, s.u.ops[s.idx], s.u.res[s.idx])
		default:
			renderErr(bw, s.u.err)
		}
	case slotExec:
		u := s.u
		switch {
		case errors.Is(u.err, kv.ErrCASFailed):
			renderStatic(bw, "ABORTED cas-guard")
		case u.err != nil:
			renderErr(bw, u.err)
		default:
			bw.WriteString("RESULTS ")
			renderUint(bw, &c.num, uint64(len(u.res)))
			bw.WriteByte('\n')
			for i := range u.res {
				renderResult(bw, &c.num, u.ops[i], u.res[i])
			}
		}
	case slotLen:
		if s.err != nil {
			renderErr(bw, s.err)
		} else {
			bw.WriteString("LEN ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		}
	case slotStats:
		renderStats(bw, w.rt.srv.store.Stats())
	case slotWorkerStats:
		renderWorkerStats(bw, w.rt.srv)
	case slotReplStats:
		renderReplStats(bw, w.rt.srv)
	case slotPromote:
		if s.err != nil {
			renderErr(bw, s.err)
		} else {
			bw.WriteString("PROMOTED ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		}
	case slotFoldStatic:
		if s.u.err != nil {
			renderErr(bw, s.u.err)
		} else {
			renderStatic(bw, s.text)
		}
	case slotFoldVal:
		switch {
		case s.u.err != nil:
			renderErr(bw, s.u.err)
		case s.found:
			bw.WriteString("VALUE ")
			renderUint(bw, &c.num, s.val)
			bw.WriteByte('\n')
		default:
			renderStatic(bw, "NOTFOUND")
		}
	}
}

func (w *worker) closeConn(c *wconn) {
	if c.gone {
		return
	}
	c.gone = true
	c.discardInput()
	w.connsN.Add(-1)
	w.rt.srv.dropConn(c.nc)
}

// drainAndExit runs after Server.Close has closed every connection and
// waited out the readers: whatever they produced is already queued.
// Drain it (publishing the exact request tallies), then keep answering
// peers still finishing their last round until every worker is here.
func (w *worker) drainAndExit() {
	for {
		select {
		case m := <-w.dataCh:
			switch m.kind {
			case wmData:
				m.c.ackChunk()
			case wmEOF:
				if m.c.reqs != 0 {
					w.rt.srv.requests.Add(m.c.reqs)
					w.reqsN.Add(m.c.reqs)
					m.c.reqs = 0
				}
				w.closeConn(m.c)
			}
		default:
			// No dispatch can be in flight once every worker idles here
			// (a mid-round worker has not decremented yet and its
			// barrier completes because we keep serving ctrlCh).
			if w.rt.live.Add(-1) == 0 {
				close(w.rt.allIdle)
			}
			for {
				select {
				case m := <-w.ctrlCh:
					w.handleCtrl(m)
				case <-w.rt.allIdle:
					return
				}
			}
		}
	}
}

func (w *worker) touch(c *wconn) {
	if !c.inActive {
		c.inActive = true
		w.active = append(w.active, c)
	}
}

func (w *worker) slot(c *wconn) *rslot {
	w.touch(c)
	c.slots = append(c.slots, rslot{})
	return &c.slots[len(c.slots)-1]
}

func (w *worker) staticSlot(c *wconn, text string) {
	s := w.slot(c)
	s.kind = slotStatic
	s.text = text
}

func (w *worker) errSlot(c *wconn, err error) {
	s := w.slot(c)
	s.kind = slotErr
	s.err = err
}

func (w *worker) newUnit(k unitKind) *unit {
	var u *unit
	if w.nUnits < len(w.unitPool) {
		u = w.unitPool[w.nUnits]
	} else {
		u = &unit{}
		w.unitPool = append(w.unitPool, u)
	}
	w.nUnits++
	u.kind = k
	u.ops = u.ops[:0]
	u.res = u.res[:0]
	u.err = nil
	u.readsOK = false
	return u
}

// WorkerStats is one worker loop's counter snapshot.
type WorkerStats struct {
	// Conns is the number of connections currently assigned.
	Conns int64
	// Requests counts parsed protocol requests (published at flush and
	// close, like Server.Requests).
	Requests int64
	// FlushRounds counts rounds that flushed at least one connection.
	FlushRounds int64
	// Escalations counts slow-path requests: cross-worker MULTI..EXEC,
	// LEN and STATS.
	Escalations int64
}

// WorkerStats snapshots the per-worker counters — the figures behind
// `STATS WORKERS` and the shutdown report. It returns nil when the
// server runs the goroutine runtime.
func (s *Server) WorkerStats() []WorkerStats {
	if s.rt == nil {
		return nil
	}
	out := make([]WorkerStats, len(s.rt.workers))
	for i, w := range s.rt.workers {
		out[i] = WorkerStats{
			Conns:       w.connsN.Load(),
			Requests:    w.reqsN.Load(),
			FlushRounds: w.rounds.Load(),
			Escalations: w.escals.Load(),
		}
	}
	return out
}
