package server

import (
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Slow-reader soak: one connection pipelines a large burst of requests
// and never reads its replies, while many healthy connections keep
// doing short pipelined windows. On the worker runtime the stalled
// connection must cost nobody anything — its replies pile up in its
// pending buffer until MaxPendingWrite pauses it — and on the goroutine
// runtime the stall blocks only its own handler. A cross-connection
// stall would show up as a multi-second window on a healthy connection
// (pre-async-flush, the stalled conn blocked its worker — and through
// the round barrier every worker — for up to FlushTimeout).

func testSlowReaderSoak(t *testing.T, rtName string) {
	s := startServer(t, Config{
		Engine: "nztm", Shards: 8, Buckets: 8,
		Runtime: rtName, Workers: 2,
		MaxPendingWrite: 64 << 10,
		// Far beyond the test's runtime: the stalled conn must be held by
		// backpressure alone, not reaped by the kill.
		FlushTimeout: 60 * time.Second,
	})
	addr := s.Addr().String()
	if _, err := s.Store().Put(nil, "slowkey", math.MaxUint64); err != nil {
		t.Fatal(err)
	}

	// The slow reader: shrink its receive buffer and pipeline ~10 MiB
	// worth of replies — past the kernel's largest autotuned send
	// buffer (tcp_wmem caps at 4 MiB on common configs), so seal's
	// inline fast path hits EAGAIN and the backlog lands in the pending
	// buffer — then read nothing. The write runs in a goroutine — once
	// backpressure pins the reader, the server stops consuming and this
	// write blocks too.
	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if tc, ok := slow.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	burst := strings.Repeat("GET slowkey\n", 500000)
	go io.WriteString(slow, burst)

	const conns, windows, perWindow = 63, 20, 16
	var worstNs atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for ci := 0; ci < conns; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs[ci] = err
				return
			}
			defer cl.Close()
			reqs := make([]string, perWindow)
			for wnd := 0; wnd < windows; wnd++ {
				for j := range reqs {
					if j%3 == 0 {
						reqs[j] = fmt.Sprintf("SET h%d %d", (ci+j)%97, wnd)
					} else {
						reqs[j] = fmt.Sprintf("GET h%d", (ci+j)%97)
					}
				}
				st := time.Now()
				if _, err := cl.Do(reqs...); err != nil {
					errs[ci] = fmt.Errorf("window %d: %w", wnd, err)
					return
				}
				if el := int64(time.Since(st)); el > worstNs.Load() {
					worstNs.Store(el)
				}
			}
		}()
	}
	wg.Wait()
	for ci, err := range errs {
		if err != nil {
			t.Fatalf("healthy conn %d: %v", ci, err)
		}
	}
	if worst := time.Duration(worstNs.Load()); worst > 5*time.Second {
		t.Fatalf("worst healthy window took %v — a stalled reader leaked into other connections", worst)
	}
	if rtName == "worker" {
		// The stalled connection must actually have tripped backpressure
		// (otherwise the soak proved nothing); give the flusher a moment
		// to observe the full socket buffer.
		deadline := time.Now().Add(10 * time.Second)
		for s.FlushStats().Pauses == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("slow reader never tripped MaxPendingWrite backpressure: %+v", s.FlushStats())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if fs := s.FlushStats(); fs.Kills != 0 {
			t.Fatalf("slow reader was killed (kills=%d) — backpressure should hold it, FlushTimeout is 60s", fs.Kills)
		}
	}
}

func TestSlowReaderSoakWorker(t *testing.T)    { testSlowReaderSoak(t, "worker") }
func TestSlowReaderSoakGoroutine(t *testing.T) { testSlowReaderSoak(t, "goroutine") }

// TestStatsFlushShape pins the STATS FLUSH wire shape on both runtimes:
// a FLUSH header whose workers= field counts the FLUSHWORKER body
// lines (zero on the goroutine runtime, which has no async path).
func TestStatsFlushShape(t *testing.T) {
	ws, gs := bothRuntimes(t, Config{Engine: "nztm", Shards: 8, Buckets: 8})

	wcl, err := Dial(ws.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()
	// Two round trips: the first round's replies must be sealed (and
	// read back) before the second round snapshots the counters — in one
	// pipelined round the FLUSH slot renders before anything is sealed.
	if _, err := wcl.Do("SET a 1", "GET a"); err != nil {
		t.Fatal(err)
	}
	resp, err := wcl.Do("STATS FLUSH")
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.Split(resp[0], "; ")
	if len(parts) != 4 { // header + one line per worker (bothRuntimes: 3)
		t.Fatalf("worker-runtime STATS FLUSH = %q, want header + 3 FLUSHWORKER lines", resp[0])
	}
	if !strings.HasPrefix(parts[0], "FLUSH workers=3 conn=") {
		t.Fatalf("FLUSH header %q", parts[0])
	}
	for i, ln := range parts[1:] {
		if !strings.HasPrefix(ln, fmt.Sprintf("FLUSHWORKER %d pending=", i)) {
			t.Fatalf("FLUSHWORKER line %d = %q", i, ln)
		}
	}
	// The requests preceding STATS FLUSH were sealed through the async
	// path, so the running total must reflect them.
	var sealed int64
	fmt.Sscanf(parts[0][strings.Index(parts[0], "sealed="):], "sealed=%d", &sealed)
	if sealed == 0 {
		t.Fatalf("FLUSH header reports sealed=0 after replies flowed: %q", parts[0])
	}

	gcl, err := Dial(gs.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer gcl.Close()
	resp, err = gcl.Do("STATS FLUSH")
	if err != nil {
		t.Fatal(err)
	}
	const want = "FLUSH workers=0 conn=0 pending=0 sealed=0 queue=0 pauses=0 kills=0"
	if resp[0] != want {
		t.Fatalf("goroutine-runtime STATS FLUSH = %q, want %q", resp[0], want)
	}
}
