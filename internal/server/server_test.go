package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// startServer spins up a server on an ephemeral port and returns it
// with a cleanup registered.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned %v, want nil after Close", err)
		}
	})
	return s
}

func TestProtocolSession(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	steps := []struct{ req, want string }{
		{"PING", "PONG"},
		{"SET a 1", "OK NEW"},
		{"SET a 2", "OK"},
		{"GET a", "VALUE 2"},
		{"GET nope", "NOTFOUND"},
		{"CAS a 2 5", "SWAPPED"},
		{"CAS a 2 9", "CASFAIL"},
		{"CAS nope 0 1", "NOTFOUND"},
		{"DEL a", "DELETED"},
		{"DEL a", "NOTFOUND"},
		{"SET b 7", "OK NEW"},
		{"LEN", "LEN 1"},
		{"BOGUS x", `ERR unknown command "BOGUS"`},
		{"SET b", "ERR SET: want 2 argument(s), got 1"},
		{"SET b zzz", `ERR SET: bad number "zzz"`},
	}
	for _, st := range steps {
		resp, err := cl.Do(st.req)
		if err != nil {
			t.Fatalf("%s: %v", st.req, err)
		}
		if resp[0] != st.want {
			t.Fatalf("%s answered %q, want %q", st.req, resp[0], st.want)
		}
	}

	// STATS must report committed transactions.
	resp, err := cl.Do("STATS")
	if err != nil || !strings.HasPrefix(resp[0], "STATS txns=") {
		t.Fatalf("STATS answered %q (%v)", resp, err)
	}
	if strings.Contains(resp[0], "txns=0 ") {
		t.Fatalf("STATS reports zero txns after traffic: %q", resp[0])
	}
}

func TestMultiExec(t *testing.T) {
	s := startServer(t, Config{Engine: "dstm", Shards: 4, Buckets: 4})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	resps, err := cl.Do("MULTI", "SET x 10", "SET y 20", "GET x", "EXEC")
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	want := []string{"OK", "QUEUED", "QUEUED", "QUEUED", "RESULTS 3; OK NEW; OK NEW; VALUE 10"}
	for i, w := range want {
		if resps[i] != w {
			t.Fatalf("multi resp[%d] = %q, want %q", i, resps[i], w)
		}
	}

	// Failed CAS guard rolls the whole EXEC back.
	resps, err = cl.Do("MULTI", "SET x 99", "CAS y 777 1", "EXEC")
	if err != nil {
		t.Fatalf("guarded multi: %v", err)
	}
	if resps[3] != "ABORTED cas-guard" {
		t.Fatalf("guarded EXEC answered %q, want ABORTED cas-guard", resps[3])
	}
	if v, found, err := cl.Get("x"); err != nil || !found || v != 10 {
		t.Fatalf("x = (%d, %v, %v) after aborted EXEC, want (10, true, nil)", v, found, err)
	}

	// DISCARD drops the queue.
	resps, err = cl.Do("MULTI", "SET x 55", "DISCARD")
	if err != nil || resps[2] != "OK" {
		t.Fatalf("discard answered %q (%v)", resps, err)
	}
	if v, _, _ := cl.Get("x"); v != 10 {
		t.Fatalf("x = %d after DISCARD, want 10", v)
	}
}

// TestPipelinedBatching pushes a pipelined window through one
// connection and checks responses arrive in order with correct values
// (the implicit GET/SET/DEL batching must not reorder or cross-talk).
func TestPipelinedBatching(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 16})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	var reqs []string
	for i := 0; i < 50; i++ {
		reqs = append(reqs, fmt.Sprintf("SET k%c %d", 'a'+i%8, i))
	}
	reqs = append(reqs, "GET ka", "CAS kb 100000 1", "GET kb", "PING")
	resps, err := cl.Do(reqs...)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for i := 0; i < 50; i++ {
		if !strings.HasPrefix(resps[i], "OK") {
			t.Fatalf("resp[%d] = %q, want OK*", i, resps[i])
		}
	}
	// ka last set at i=48, kb at i=49.
	if resps[50] != "VALUE 48" {
		t.Fatalf("GET ka = %q, want VALUE 48", resps[50])
	}
	if resps[51] != "CASFAIL" {
		t.Fatalf("CAS kb = %q, want CASFAIL", resps[51])
	}
	if resps[52] != "VALUE 49" {
		t.Fatalf("GET kb = %q, want VALUE 49", resps[52])
	}
	if resps[53] != "PONG" {
		t.Fatalf("PING = %q", resps[53])
	}
}

// TestLoadSmoke is the in-process version of the CI smoke: concurrent
// pipelined connections, every response checked, non-zero commits.
func TestLoadSmoke(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 16})
	stats, err := RunLoad(s.Addr().String(), 4, 250, 32)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if stats.Ops != 4*250 {
		t.Fatalf("acked %d ops, want %d", stats.Ops, 4*250)
	}
	if stats.ServerTxns == 0 {
		t.Fatalf("server reports zero committed transactions after load")
	}
	if s.Requests() == 0 {
		t.Fatalf("server served zero responses")
	}
}

// TestConcurrentConns checks cross-connection isolation: per-connection
// CAS counters with the invariant that total successes equal the final
// value, through the wire path.
func TestConcurrentConns(t *testing.T) {
	s := startServer(t, Config{Engine: "dstm", Shards: 8, Buckets: 8})
	boot, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := boot.Set("ctr", 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	boot.Close()

	const conns, incs = 4, 50
	var wg sync.WaitGroup
	succ := make([]int64, conns)
	for ci := 0; ci < conns; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for succ[ci] < incs {
				v, found, err := cl.Get("ctr")
				if err != nil || !found {
					t.Errorf("get: %v found=%v", err, found)
					return
				}
				resp, err := cl.Do(fmt.Sprintf("CAS ctr %d %d", v, v+1))
				if err != nil {
					t.Errorf("cas: %v", err)
					return
				}
				if resp[0] == "SWAPPED" {
					succ[ci]++
				}
			}
		}()
	}
	wg.Wait()
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	v, _, err := cl.Get("ctr")
	if err != nil {
		t.Fatalf("final get: %v", err)
	}
	var want uint64
	for _, n := range succ {
		want += uint64(n)
	}
	if v != want {
		t.Fatalf("ctr = %d, want %d", v, want)
	}
}
