package server

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

// startServer spins up a server on an ephemeral port and returns it
// with a cleanup registered.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned %v, want nil after Close", err)
		}
	})
	return s
}

func TestProtocolSession(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	steps := []struct{ req, want string }{
		{"PING", "PONG"},
		{"SET a 1", "OK NEW"},
		{"SET a 2", "OK"},
		{"GET a", "VALUE 2"},
		{"GET nope", "NOTFOUND"},
		{"CAS a 2 5", "SWAPPED"},
		{"CAS a 2 9", "CASFAIL"},
		{"CAS nope 0 1", "NOTFOUND"},
		{"DEL a", "DELETED"},
		{"DEL a", "NOTFOUND"},
		{"SET b 7", "OK NEW"},
		{"LEN", "LEN 1"},
		{"BOGUS x", `ERR unknown command "BOGUS"`},
		{"SET b", "ERR SET: want 2 argument(s), got 1"},
		{"SET b zzz", `ERR SET: bad number "zzz"`},
	}
	for _, st := range steps {
		resp, err := cl.Do(st.req)
		if err != nil {
			t.Fatalf("%s: %v", st.req, err)
		}
		if resp[0] != st.want {
			t.Fatalf("%s answered %q, want %q", st.req, resp[0], st.want)
		}
	}

	// STATS must report committed transactions.
	resp, err := cl.Do("STATS")
	if err != nil || !strings.HasPrefix(resp[0], "STATS txns=") {
		t.Fatalf("STATS answered %q (%v)", resp, err)
	}
	if strings.Contains(resp[0], "txns=0 ") {
		t.Fatalf("STATS reports zero txns after traffic: %q", resp[0])
	}
}

func TestMultiExec(t *testing.T) {
	s := startServer(t, Config{Engine: "dstm", Shards: 4, Buckets: 4})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	resps, err := cl.Do("MULTI", "SET x 10", "SET y 20", "GET x", "EXEC")
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	want := []string{"OK", "QUEUED", "QUEUED", "QUEUED", "RESULTS 3; OK NEW; OK NEW; VALUE 10"}
	for i, w := range want {
		if resps[i] != w {
			t.Fatalf("multi resp[%d] = %q, want %q", i, resps[i], w)
		}
	}

	// Failed CAS guard rolls the whole EXEC back.
	resps, err = cl.Do("MULTI", "SET x 99", "CAS y 777 1", "EXEC")
	if err != nil {
		t.Fatalf("guarded multi: %v", err)
	}
	if resps[3] != "ABORTED cas-guard" {
		t.Fatalf("guarded EXEC answered %q, want ABORTED cas-guard", resps[3])
	}
	if v, found, err := cl.Get("x"); err != nil || !found || v != 10 {
		t.Fatalf("x = (%d, %v, %v) after aborted EXEC, want (10, true, nil)", v, found, err)
	}

	// DISCARD drops the queue.
	resps, err = cl.Do("MULTI", "SET x 55", "DISCARD")
	if err != nil || resps[2] != "OK" {
		t.Fatalf("discard answered %q (%v)", resps, err)
	}
	if v, _, _ := cl.Get("x"); v != 10 {
		t.Fatalf("x = %d after DISCARD, want 10", v)
	}
}

// TestPipelinedBatching pushes a pipelined window through one
// connection and checks responses arrive in order with correct values
// (the implicit GET/SET/DEL batching must not reorder or cross-talk).
func TestPipelinedBatching(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 16})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	var reqs []string
	for i := 0; i < 50; i++ {
		reqs = append(reqs, fmt.Sprintf("SET k%c %d", 'a'+i%8, i))
	}
	reqs = append(reqs, "GET ka", "CAS kb 100000 1", "GET kb", "PING")
	resps, err := cl.Do(reqs...)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for i := 0; i < 50; i++ {
		if !strings.HasPrefix(resps[i], "OK") {
			t.Fatalf("resp[%d] = %q, want OK*", i, resps[i])
		}
	}
	// ka last set at i=48, kb at i=49.
	if resps[50] != "VALUE 48" {
		t.Fatalf("GET ka = %q, want VALUE 48", resps[50])
	}
	if resps[51] != "CASFAIL" {
		t.Fatalf("CAS kb = %q, want CASFAIL", resps[51])
	}
	if resps[52] != "VALUE 49" {
		t.Fatalf("GET kb = %q, want VALUE 49", resps[52])
	}
	if resps[53] != "PONG" {
		t.Fatalf("PING = %q", resps[53])
	}
}

// TestRequestAccounting pins the serving-report fix: the request
// counter counts parsed requests — one per non-blank request line — so
// an EXEC of n ops counts once (the PR 3 path counted its n+1 reply
// lines), and blank lines count nothing.
func TestRequestAccounting(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	// 8 requests (PING, SET, MULTI, SET, GET, EXEC, BOGUS, QUIT); the
	// blank line and trailing whitespace-only line are not requests.
	if _, err := io.WriteString(nc, "PING\n\nSET a 1\nMULTI\nSET b 2\nGET a\nEXEC\nBOGUS\n \t\nQUIT\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	// QUIT closes the connection, so the full response stream is
	// readable to EOF — and by then the handler has published its count.
	out, err := io.ReadAll(nc)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	wantLines := []string{
		"PONG", "OK NEW", "OK", "QUEUED", "QUEUED", "RESULTS 2", "OK NEW", "VALUE 1",
		`ERR unknown command "BOGUS"`, "BYE",
	}
	got := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("got %d response lines, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i, w := range wantLines {
		if got[i] != w {
			t.Fatalf("response[%d] = %q, want %q", i, got[i], w)
		}
	}
	if n := s.Requests(); n != 8 {
		t.Fatalf("Requests() = %d, want 8 (parsed requests, not reply lines)", n)
	}
}

// TestPipelinedOrderingStress asserts response order under -batch
// folding: one connection pipelines windows of interleaved SET/GET/CAS
// whose expected responses depend on every preceding request having
// been applied in order, across many batch-flush boundaries (Batch: 3
// forces folds mid-window).
func TestPipelinedOrderingStress(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 3})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	const windows, perWindow = 30, 40
	val := map[string]uint64{} // model: key -> value
	for w := 0; w < windows; w++ {
		var reqs, want []string
		for i := 0; i < perWindow; i++ {
			k := fmt.Sprintf("k%d", (w+i)%7)
			cur, exists := val[k]
			switch i % 5 {
			case 0, 1: // SET
				v := uint64(w*perWindow + i)
				reqs = append(reqs, fmt.Sprintf("SET %s %d", k, v))
				if exists {
					want = append(want, "OK")
				} else {
					want = append(want, "OK NEW")
				}
				val[k] = v
			case 2: // GET must observe the latest pipelined SET
				reqs = append(reqs, "GET "+k)
				if exists {
					want = append(want, fmt.Sprintf("VALUE %d", cur))
				} else {
					want = append(want, "NOTFOUND")
				}
			case 3: // CAS against the modeled value always swaps
				if !exists {
					reqs = append(reqs, "GET "+k)
					want = append(want, "NOTFOUND")
					break
				}
				reqs = append(reqs, fmt.Sprintf("CAS %s %d %d", k, cur, cur+1))
				want = append(want, "SWAPPED")
				val[k] = cur + 1
			default: // stale CAS never swaps
				if !exists {
					reqs = append(reqs, "GET "+k)
					want = append(want, "NOTFOUND")
					break
				}
				reqs = append(reqs, fmt.Sprintf("CAS %s %d %d", k, cur+99999, 1))
				want = append(want, "CASFAIL")
			}
		}
		resps, err := cl.Do(reqs...)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		for i := range want {
			if resps[i] != want[i] {
				t.Fatalf("window %d resp[%d] (%s) = %q, want %q", w, i, reqs[i], resps[i], want[i])
			}
		}
	}
}

// TestLoadSmoke is the in-process version of the CI smoke: concurrent
// pipelined connections, every response checked, non-zero commits.
func TestLoadSmoke(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 16})
	stats, err := RunLoad(s.Addr().String(), 4, 250, 32)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if stats.Ops != 4*250 {
		t.Fatalf("acked %d ops, want %d", stats.Ops, 4*250)
	}
	if stats.ServerTxns == 0 {
		t.Fatalf("server reports zero committed transactions after load")
	}
	if s.Requests() == 0 {
		t.Fatalf("server served zero responses")
	}
}

// TestConcurrentConns checks cross-connection isolation: per-connection
// CAS counters with the invariant that total successes equal the final
// value, through the wire path.
func TestConcurrentConns(t *testing.T) {
	s := startServer(t, Config{Engine: "dstm", Shards: 8, Buckets: 8})
	boot, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := boot.Set("ctr", 0); err != nil {
		t.Fatalf("seed: %v", err)
	}
	boot.Close()

	const conns, incs = 4, 50
	var wg sync.WaitGroup
	succ := make([]int64, conns)
	for ci := 0; ci < conns; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for succ[ci] < incs {
				v, found, err := cl.Get("ctr")
				if err != nil || !found {
					t.Errorf("get: %v found=%v", err, found)
					return
				}
				resp, err := cl.Do(fmt.Sprintf("CAS ctr %d %d", v, v+1))
				if err != nil {
					t.Errorf("cas: %v", err)
					return
				}
				if resp[0] == "SWAPPED" {
					succ[ci]++
				}
			}
		}()
	}
	wg.Wait()
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	v, _, err := cl.Get("ctr")
	if err != nil {
		t.Fatalf("final get: %v", err)
	}
	var want uint64
	for _, n := range succ {
		want += uint64(n)
	}
	if v != want {
		t.Fatalf("ctr = %d, want %d", v, want)
	}
}
