package server

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/kv"
	"repro/internal/wal"
)

// These tests drive a worker's rounds synchronously — no loop
// goroutine — so the chunk-queue bookkeeping around escalation pauses
// can be pinned deterministically. The windows involved (a pause lasts
// only until the round barrier, microseconds) are not reachable
// reliably from network-level tests.

// newTestWorker builds a single worker bound to a fresh server without
// starting its loop. The server is created on the goroutine runtime so
// no real worker loops race the test's synchronous round driving.
func newTestWorker(t *testing.T, cfg Config) (*Server, *worker) {
	t.Helper()
	cfg.Runtime = "goroutine"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	rt := &workerRuntime{srv: s, stop: make(chan struct{}), allIdle: make(chan struct{})}
	rt.fl = newFlusherPool(s.cfg.Flushers, s.cfg.FlushTimeout)
	t.Cleanup(rt.fl.stop)
	w := rt.newWorker(0, 1)
	rt.workers = []*worker{w}
	return s, w
}

// newTestWconn returns a connection owned by w over one end of a
// net.Pipe, plus the client end. Replies travel the real async path:
// rendered into the pending buffer, drained by the test runtime's
// flusher pool.
func newTestWconn(w *worker) (*wconn, net.Conn) {
	cl, sv := net.Pipe()
	c := &wconn{
		w:   w,
		nc:  sv,
		mb:  w.dataCh,
		ack: make(chan struct{}, 2),
	}
	c.bw = bufio.NewWriterSize(pendWriter{c}, 16<<10)
	w.connsN.Add(1)
	return c, cl
}

// collect drains the client end until the server closes it and yields
// the full raw reply stream.
func collect(cl net.Conn) <-chan string {
	ch := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(cl)
		ch <- string(b)
	}()
	return ch
}

// deliver simulates the reader shipping one raw chunk.
func deliver(w *worker, c *wconn, chunk string) {
	w.handleData(wmsg{kind: wmData, c: c, buf: []byte(chunk)})
}

// TestWorkerPauseAtChunkBoundary: an escalation pause landing exactly
// on a chunk boundary must keep the chunk un-acked (empty rem
// sentinel). Acking it would free both reader buffers while the
// connection is still paused, letting two further chunks race into the
// single queue slot — the second silently overwriting the first.
func TestWorkerPauseAtChunkBoundary(t *testing.T) {
	_, w := newTestWorker(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	c, cl := newTestWconn(w)
	out := collect(cl)

	// LEN escalates and pauses the connection, right at the chunk end.
	deliver(w, c, "SET a 1\nLEN\n")
	if len(c.ack) != 0 {
		t.Fatal("chunk acked while its pause is unresolved — both reader buffers freed behind a paused connection")
	}
	if c.rem == nil {
		t.Fatal("boundary pause left no rem sentinel")
	}
	// The reader's second buffer can still deliver one chunk; it must
	// be queued, not parsed and not dropped.
	deliver(w, c, "GET a\nQUIT\n")
	if c.next == nil {
		t.Fatal("chunk delivered behind a pause was not queued")
	}
	if got := len(c.slots); got != 2 {
		t.Fatalf("queued chunk parsed during the pause: %d slots, want 2", got)
	}

	w.finishRound()   // executes SET, runs the LEN escalation, flushes
	w.resumePending() // consumes the sentinel, then the queued chunk
	w.finishRound()

	const want = "OK NEW\nLEN 1\nVALUE 1\nBYE\n"
	if got := <-out; got != want {
		t.Fatalf("reply stream %q, want %q", got, want)
	}
}

// TestWorkerPausedBoundaryKeepsArrivalOrder: after the round barrier
// clears a boundary pause, a fresh chunk arriving before the held
// input has been re-parsed must queue behind it — parsing it first
// would execute the client's pipelined requests out of order.
func TestWorkerPausedBoundaryKeepsArrivalOrder(t *testing.T) {
	_, w := newTestWorker(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	c, cl := newTestWconn(w)
	out := collect(cl)

	deliver(w, c, "LEN\n") // boundary pause: chunk stays un-acked
	w.finishRound()        // escalation runs, pause clears, conn re-pended
	// Simulates the drain phase receiving new input before
	// resumePending has consumed the held tail.
	deliver(w, c, "SET b 2\nGET b\nQUIT\n")
	if c.next == nil {
		t.Fatal("fresh chunk was not queued behind the held pause tail")
	}
	if len(c.slots) != 0 {
		t.Fatal("fresh chunk parsed ahead of input held from the previous round")
	}
	w.resumePending()
	w.finishRound()

	const want = "LEN 0\nOK NEW\nVALUE 2\nBYE\n"
	if got := <-out; got != want {
		t.Fatalf("reply stream %q, want %q", got, want)
	}
}

// TestWorkerMidChunkPauseOrder: held tail (rem) and queued chunk
// (next) re-parse oldest first across the barrier.
func TestWorkerMidChunkPauseOrder(t *testing.T) {
	_, w := newTestWorker(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	c, cl := newTestWconn(w)
	out := collect(cl)

	deliver(w, c, "LEN\nSET m 3\n") // pause mid-chunk: rem = "SET m 3\n"
	deliver(w, c, "GET m\nQUIT\n")  // queued behind the pause
	w.finishRound()
	w.resumePending()
	w.finishRound()

	const want = "LEN 0\nOK NEW\nVALUE 3\nBYE\n"
	if got := <-out; got != want {
		t.Fatalf("reply stream %q, want %q", got, want)
	}
}

// TestWorkerThirdChunkPanics: the reader's two-buffer ping-pong makes
// a third outstanding chunk impossible; the worker asserts that
// instead of silently overwriting queued client input.
func TestWorkerThirdChunkPanics(t *testing.T) {
	_, w := newTestWorker(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	c, cl := newTestWconn(w)
	defer cl.Close()

	deliver(w, c, "LEN\n")  // pause, chunk held in rem
	deliver(w, c, "PING\n") // queued in next
	defer func() {
		if recover() == nil {
			t.Fatal("third chunk behind a pause did not panic")
		}
	}()
	deliver(w, c, "PING\n")
}

// TestWorkerMergedBatchReadRetryFailStop: a merged unit mixes
// connections, but one connection's write failure (WAL fail-stop) must
// not take down another connection's folded-in reads — the fail-stop
// contract is that reads keep working, and the goroutine runtime,
// which never merges across connections, answers them successfully.
func TestWorkerMergedBatchReadRetryFailStop(t *testing.T) {
	s, w := newTestWorker(t, Config{Engine: "nztm", Shards: 4, Buckets: 4})
	if _, err := s.Store().Put(nil, "k", 7); err != nil {
		t.Fatal(err)
	}
	s.Store().SetCommitHook(func([]kv.Effect) error { return wal.ErrFailStop })

	ca, cla := newTestWconn(w)
	cb, clb := newTestWconn(w)
	outA, outB := collect(cla), collect(clb)

	// One round: A's SET and B's GETs fold into the same merged unit.
	deliver(w, ca, "SET x 1\nQUIT\n")
	deliver(w, cb, "GET k\nGET nope\nQUIT\n")
	w.finishRound()

	a := <-outA
	if !strings.HasPrefix(a, "ERR readonly") {
		t.Fatalf("failing write answered %q, want ERR readonly", a)
	}
	const wantB = "VALUE 7\nNOTFOUND\nBYE\n"
	if b := <-outB; b != wantB {
		t.Fatalf("reads merged with another connection's failing write answered %q, want %q", b, wantB)
	}
}

// TestWorkerFlushDeadline: a connection that stops reading must not
// stall its worker — the round seals its replies into the pending
// buffer and returns immediately — and once its socket accepts nothing
// for Config.FlushTimeout the flusher kills it (wmDead), while the
// round's other connections get their replies undelayed.
func TestWorkerFlushDeadline(t *testing.T) {
	_, w := newTestWorker(t, Config{
		Engine: "nztm", Shards: 4, Buckets: 4,
		FlushTimeout: 100 * time.Millisecond,
	})
	cs, cls := newTestWconn(w) // stalled: nobody drains the client end
	defer cls.Close()
	ch, clh := newTestWconn(w)
	out := collect(clh)

	deliver(w, cs, "PING\n")
	deliver(w, ch, "PING\nQUIT\n")
	start := time.Now()
	w.finishRound()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("round blocked %v behind a non-reading connection", el)
	}
	// The healthy connection's stream must complete without waiting for
	// the stalled one's deadline.
	const want = "PONG\nBYE\n"
	if got := <-out; got != want {
		t.Fatalf("healthy connection answered %q, want %q", got, want)
	}
	// Drive the worker's mailbox (the loop isn't running in these
	// synchronous tests) until the flusher's kill lands.
	deadline := time.After(5 * time.Second)
	for !cs.gone {
		select {
		case m := <-w.dataCh:
			w.handleData(m)
		case <-deadline:
			t.Fatal("stalled connection not killed after the flush deadline")
		}
	}
	if got := w.flushKills.Load(); got != 1 {
		t.Fatalf("flushKills = %d, want 1", got)
	}
}

// TestWorkerBackpressurePause: a connection whose pending reply bytes
// exceed Config.MaxPendingWrite at seal is paused like an escalation —
// its queued input stays pinned un-parsed — and resumes (wmResume) when
// the flusher drains the backlog; other connections are untouched. The
// net.Pipe client end is drained only after the pause is observed, so
// the sequence is deterministic.
func TestWorkerBackpressurePause(t *testing.T) {
	_, w := newTestWorker(t, Config{
		Engine: "nztm", Shards: 4, Buckets: 4,
		MaxPendingWrite: 8, // absurdly small: one PONG round trips it
	})
	c, cl := newTestWconn(w)
	ch, clh := newTestWconn(w)
	out := collect(clh)

	deliver(w, c, "PING\nPING\nPING\n") // 15 reply bytes > 8
	deliver(w, ch, "PING\nQUIT\n")
	w.finishRound()
	if !c.bpp {
		t.Fatal("pending bytes over MaxPendingWrite did not pause the connection")
	}
	if got := w.bpPauses.Load(); got != 1 {
		t.Fatalf("bpPauses = %d, want 1", got)
	}
	// Input arriving behind the pause is pinned, not parsed.
	deliver(w, c, "GET z\nQUIT\n")
	if c.rem == nil {
		t.Fatal("chunk behind a backpressure pause was not pinned")
	}
	if len(c.slots) != 0 {
		t.Fatal("chunk parsed while backpressure-paused")
	}
	// The healthy peer is unaffected by c's stall.
	if got, want := <-out, "PONG\nBYE\n"; got != want {
		t.Fatalf("healthy connection answered %q, want %q", got, want)
	}

	// Drain c's client end: the flusher empties the backlog and sends
	// wmResume; driving the mailbox resumes parsing the pinned input.
	outC := collect(cl)
	deadline := time.After(5 * time.Second)
	for c.bpp {
		select {
		case m := <-w.dataCh:
			w.handleData(m)
		case <-deadline:
			t.Fatal("backpressure pause never resumed after the backlog drained")
		}
	}
	w.finishRound()   // wmResume touched c: this round re-pends its pinned input
	w.resumePending() // parses the pinned GET/QUIT
	w.finishRound()
	for !c.gone {
		select {
		case m := <-w.dataCh:
			w.handleData(m)
		case <-deadline:
			t.Fatal("connection never finished after resume")
		}
	}
	if got, want := <-outC, "PONG\nPONG\nPONG\nNOTFOUND\nBYE\n"; got != want {
		t.Fatalf("paused connection's stream %q, want %q", got, want)
	}
}
