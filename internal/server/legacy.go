package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/kv"
)

// This file preserves the PR 3 string-based request path verbatim —
// ReadString lines, strings.Fields tokens, ToUpper verbs, Sprintf
// replies, session-less Store calls — selected by Config.Legacy. It
// exists only as the measured baseline of experiment E10 (the
// byte-path speedup claim is re-measurable on every checkout, not an
// artifact of a stale number) and as the reference parser for the
// byte-tokenizer equivalence tests. It deliberately keeps the PR 3
// request-accounting bug (one count per reply line, so an EXEC of n
// ops counts n+1). New deployments must not set Legacy.

func (s *Server) serveConnLegacy(c net.Conn) {
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	var batch []kv.Op
	reply := func(line string) {
		w.WriteString(line)
		w.WriteByte('\n')
		s.requests.Add(1)
	}

	// flushBatch executes the pending unconditional ops as one
	// transaction and writes their responses in order.
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		res, err := s.store.TxnLegacy(nil, batch)
		for i := range batch {
			if err != nil {
				reply("ERR " + err.Error())
				continue
			}
			reply(renderResultLegacy(batch[i], res[i]))
		}
		batch = batch[:0]
	}

	var inMulti bool
	var multiOps []kv.Op

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		verb := strings.ToUpper(fields[0])
		args := fields[1:]

		if inMulti {
			switch verb {
			case "EXEC":
				inMulti = false
				res, err := s.store.TxnLegacy(nil, multiOps)
				switch {
				case errors.Is(err, kv.ErrCASFailed):
					reply("ABORTED cas-guard")
				case err != nil:
					reply("ERR " + err.Error())
				default:
					reply(fmt.Sprintf("RESULTS %d", len(res)))
					for i, re := range res {
						reply(renderResultLegacy(multiOps[i], re))
					}
				}
				multiOps = nil
			case "DISCARD":
				inMulti = false
				multiOps = nil
				reply("OK")
			default:
				op, perr := parseOpLegacy(verb, args)
				switch {
				case perr != nil:
					reply("ERR " + perr.Error())
				case len(multiOps) >= s.cfg.MaxMultiOps:
					reply(fmt.Sprintf("ERR multi batch exceeds %d ops", s.cfg.MaxMultiOps))
				default:
					multiOps = append(multiOps, op)
					reply("QUEUED")
				}
			}
		} else {
			switch verb {
			case "GET", "SET", "DEL":
				op, perr := parseOpLegacy(verb, args)
				if perr != nil {
					flushBatch()
					reply("ERR " + perr.Error())
					break
				}
				batch = append(batch, op)
				if len(batch) >= s.cfg.Batch {
					flushBatch()
				}
			case "CAS":
				flushBatch()
				op, perr := parseOpLegacy(verb, args)
				if perr != nil {
					reply("ERR " + perr.Error())
					break
				}
				swapped, existed, err := s.store.CAS(nil, op.Key, op.Old, op.Val)
				switch {
				case err != nil:
					reply("ERR " + err.Error())
				case swapped:
					reply("SWAPPED")
				case existed:
					reply("CASFAIL")
				default:
					reply("NOTFOUND")
				}
			case "LEN":
				flushBatch()
				n, err := s.store.Len(nil)
				if err != nil {
					reply("ERR " + err.Error())
				} else {
					reply(fmt.Sprintf("LEN %d", n))
				}
			case "STATS":
				flushBatch()
				st := s.store.Stats()
				reply(fmt.Sprintf("STATS txns=%d cross=%d ratio=%.4f ops=%d aborts=%d shards=%d",
					st.Txns, st.CrossShard, st.CrossShardRatio(), st.Ops(), st.Aborts(), len(st.Shards)))
			case "PING":
				flushBatch()
				reply("PONG")
			case "MULTI":
				flushBatch()
				inMulti = true
				reply("OK")
			case "QUIT":
				flushBatch()
				reply("BYE")
				w.Flush()
				return
			default:
				flushBatch()
				reply(fmt.Sprintf("ERR unknown command %q", verb))
			}
		}

		// Drain the pipeline before paying a flush/syscall: keep
		// accumulating only while another *complete* request is already
		// buffered. A buffer holding just a partial line must flush too —
		// the client may be waiting for these responses before sending
		// the rest of that request.
		if !hasCompleteLine(r) {
			flushBatch()
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// parseOpLegacy parses a single-key request into a kv.Op — the PR 3
// string parser, the reference the byte parser (parseOp) is proved
// equivalent to by TestParseOpEquivalence and FuzzParseOp.
func parseOpLegacy(verb string, args []string) (kv.Op, error) {
	key := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("%s: missing key", verb)
		}
		return args[i], nil
	}
	num := func(i int) (uint64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing numeric argument", verb)
		}
		v, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad number %q", verb, args[i])
		}
		return v, nil
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d argument(s), got %d", verb, n, len(args))
		}
		return nil
	}
	switch verb {
	case "GET":
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		return kv.Op{Kind: kv.OpGet, Key: k}, err
	case "SET":
		if err := arity(2); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		if err != nil {
			return kv.Op{}, err
		}
		v, err := num(1)
		return kv.Op{Kind: kv.OpPut, Key: k, Val: v}, err
	case "DEL":
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		return kv.Op{Kind: kv.OpDelete, Key: k}, err
	case "CAS":
		if err := arity(3); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		if err != nil {
			return kv.Op{}, err
		}
		old, err := num(1)
		if err != nil {
			return kv.Op{}, err
		}
		v, err := num(2)
		return kv.Op{Kind: kv.OpCAS, Key: k, Old: old, Val: v}, err
	}
	return kv.Op{}, fmt.Errorf("unknown command %q", verb)
}

// renderResultLegacy formats one op outcome as its response line.
func renderResultLegacy(op kv.Op, res kv.OpResult) string {
	switch op.Kind {
	case kv.OpGet:
		if res.Found {
			return fmt.Sprintf("VALUE %d", res.Val)
		}
		return "NOTFOUND"
	case kv.OpPut:
		if res.Found {
			return "OK NEW"
		}
		return "OK"
	case kv.OpDelete:
		if res.Found {
			return "DELETED"
		}
		return "NOTFOUND"
	case kv.OpCAS:
		if res.Swapped {
			return "SWAPPED"
		}
		if res.Found {
			return "CASFAIL"
		}
		return "NOTFOUND"
	}
	return "ERR unrenderable result"
}
