package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestRecoveryHelperProcess is not a regular test: it is the server
// subprocess of the kill-and-recover tests, entered only when re-exec'd
// with OFTM_RECOVERY_HELPER=1. It serves with a WAL in fsync=always
// mode until the parent SIGKILLs it — by construction it never flushes
// gracefully.
func TestRecoveryHelperProcess(t *testing.T) {
	if os.Getenv("OFTM_RECOVERY_HELPER") != "1" {
		t.Skip("helper process for TestKillAndRecover")
	}
	dir := os.Getenv("OFTM_WAL_DIR")
	// OFTM_RUNTIME pins the serving runtime (empty = the default worker
	// runtime) so recovery smoke can run the kill-and-recover scenario
	// against either path explicitly.
	s, err := New(Config{Addr: "127.0.0.1:0", Engine: "nztm", WALDir: dir, Fsync: "always",
		Runtime: os.Getenv("OFTM_RUNTIME")})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(3)
	}
	if err := s.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(3)
	}
	// Publish the ephemeral address where the parent polls for it.
	addrFile := filepath.Join(dir, "helper.addr")
	if err := os.WriteFile(addrFile+".tmp", []byte(s.Addr().String()), 0o644); err != nil {
		os.Exit(3)
	}
	os.Rename(addrFile+".tmp", addrFile)
	s.Serve() // runs until SIGKILL
}

// spawnHelper starts the helper server subprocess and returns it with
// its published address.
func spawnHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestRecoveryHelperProcess$")
	cmd.Env = append(os.Environ(), "OFTM_RECOVERY_HELPER=1", "OFTM_WAL_DIR="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	addrFile := filepath.Join(dir, "helper.addr")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			os.Remove(addrFile)
			return cmd, string(b)
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("helper never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// driveLoad sends n mixed write requests (SET/DEL/CAS) synchronously —
// each acknowledged before the next is sent — and returns the
// reference map the acknowledged prefix must reproduce. With
// fsync=always every acknowledged write is durable before its ack, so
// after a SIGKILL with no request in flight the recovered state must
// equal this map exactly.
func driveLoad(t *testing.T, cl *Client, n int) map[string]uint64 {
	t.Helper()
	ref := map[string]uint64{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key%03d", i%37)
		var req string
		switch i % 5 {
		case 0, 1, 2:
			req = fmt.Sprintf("SET %s %d", key, i)
		case 3:
			req = "DEL " + key
		default:
			req = fmt.Sprintf("CAS %s %d %d", key, ref[key], i)
		}
		resp, err := cl.Do(req)
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, req, err)
		}
		if strings.HasPrefix(resp[0], "ERR") {
			t.Fatalf("request %d (%s): %s", i, req, resp[0])
		}
		switch {
		case strings.HasPrefix(req, "SET"):
			ref[key] = uint64(i)
		case strings.HasPrefix(req, "DEL"):
			delete(ref, key)
		case resp[0] == "SWAPPED":
			ref[key] = uint64(i)
		}
	}
	return ref
}

// TestKillAndRecover is the crash/restart scenario: a real server
// subprocess takes writes with -wal-dir and fsync=always, is
// hard-stopped with SIGKILL (no graceful flush), and the same wal dir
// is then recovered twice over — once by a direct wal.Open (the
// independent replay reference) and once by a full restarted server
// queried over TCP. Both must reproduce the acknowledged-write map
// exactly.
func TestKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	cmd, addr := spawnHelper(t, dir)
	cl, err := Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("dial helper: %v", err)
	}
	ref := driveLoad(t, cl, 300)
	cl.Close()

	// Hard stop: SIGKILL, mid-session, no QUIT, no server.Close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd.Wait()

	// Independent replay of the on-disk log.
	l, rec, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open after kill: %v", err)
	}
	l.Close()
	if !reflect.DeepEqual(rec.State, ref) {
		t.Fatalf("replayed WAL state diverges from acknowledged writes:\n got %v\nwant %v", rec.State, ref)
	}

	// Full server restart on the same directory, checked over TCP.
	s := startServer(t, Config{Engine: "nztm", WALDir: dir, Fsync: "always"})
	if got := s.Recovered().Keys; got != len(ref) {
		t.Fatalf("server recovered %d keys, want %d", got, len(ref))
	}
	cl2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for k, want := range ref {
		got, found, err := cl2.Get(k)
		if err != nil || !found || got != want {
			t.Fatalf("GET %s after recovery = (%d,%v,%v), want (%d,true,nil)", k, got, found, err, want)
		}
	}
	// And nothing beyond the reference survived.
	resp, err := cl2.Do("LEN")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("LEN %d", len(ref)); resp[0] != want {
		t.Fatalf("LEN after recovery = %q, want %q", resp[0], want)
	}
}

// TestKillAndRecoverTornTail is TestKillAndRecover with a harsher
// crash: after the SIGKILL the last segment is truncated mid-record —
// the shape of a crash during a write — and recovery must drop exactly
// the torn record while keeping every complete one.
func TestKillAndRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	cmd, addr := spawnHelper(t, dir)
	cl, err := Dial(addr)
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("dial helper: %v", err)
	}
	// Distinct keys so chopping the final record off the reference is
	// unambiguous.
	const n = 50
	for i := 0; i < n; i++ {
		if err := cl.Set(fmt.Sprintf("torn%03d", i), uint64(i)); err != nil {
			t.Fatalf("SET %d: %v", i, err)
		}
	}
	cl.Close()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Tear the tail: chop a few bytes off the newest segment, cutting
	// the last record's frame in half.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments after kill (err=%v)", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s := startServer(t, Config{Engine: "nztm", WALDir: dir, Fsync: "always"})
	rec := s.Recovered()
	if !rec.TornTail {
		t.Fatal("torn tail not detected")
	}
	// Every record but the torn last one survives.
	if got := rec.Keys; got != n-1 {
		t.Fatalf("recovered %d keys, want %d (all but the torn final record)", got, n-1)
	}
	cl2, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < n-1; i++ {
		k := fmt.Sprintf("torn%03d", i)
		got, found, err := cl2.Get(k)
		if err != nil || !found || got != uint64(i) {
			t.Fatalf("GET %s = (%d,%v,%v), want (%d,true,nil)", k, got, found, err, i)
		}
	}
	if _, found, _ := cl2.Get(fmt.Sprintf("torn%03d", n-1)); found {
		t.Fatal("the torn final record resurfaced after recovery")
	}
}

// TestWALRestartCycle exercises the graceful path end to end in
// process: writes, snapshot, clean Close, restart, more writes,
// restart again — state carries across both.
func TestWALRestartCycle(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, Config{Engine: "nztm", WALDir: dir, Fsync: "never"})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := cl.Set(fmt.Sprintf("cycle%02d", i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	cl.Close()
	s.Close()

	s2 := startServer(t, Config{Engine: "dstm", WALDir: dir, Fsync: "never"}) // engine swap is fine: the log is engine-agnostic
	if s2.Recovered().SnapshotSeq == 0 {
		t.Fatal("second boot ignored the snapshot")
	}
	cl2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := cl2.Set("cycle99", 99); err != nil {
		t.Fatal(err)
	}
	cl2.Close()
	s2.Close()

	s3 := startServer(t, Config{Engine: "nztm", WALDir: dir})
	cl3, err := Dial(s3.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("cycle%02d", i)
		v, found, err := cl3.Get(k)
		if err != nil || !found || v != uint64(i) {
			t.Fatalf("GET %s = (%d,%v,%v) on third boot", k, v, found, err)
		}
	}
	if v, found, _ := cl3.Get("cycle99"); !found || v != 99 {
		t.Fatal("write from the second boot lost")
	}
}
