// Package server exposes the sharded transactional store (internal/kv)
// over TCP with a small line protocol — the request path of the
// serving stack. One line per request, space-separated tokens, uint64
// values in decimal, one (or, for EXEC, several) response line(s) per
// request in request order:
//
//	PING                     -> PONG
//	GET <key>                -> VALUE <v> | NOTFOUND
//	SET <key> <val>          -> OK NEW | OK
//	DEL <key>                -> DELETED | NOTFOUND
//	CAS <key> <old> <new>    -> SWAPPED | CASFAIL | NOTFOUND
//	LEN                      -> LEN <n>
//	STATS                    -> STATS txns=<n> cross=<n> ratio=<f> ops=<n> aborts=<n> shards=<n>
//	MULTI                    -> OK     (then queue ops, each -> QUEUED)
//	EXEC                     -> RESULTS <n> + n result lines | ABORTED cas-guard
//	DISCARD                  -> OK
//	QUIT                     -> BYE (server closes the connection)
//
// Pipelining: clients may send any number of requests without waiting.
// The connection handler folds consecutive pipelined unconditional
// single-key requests (GET/SET/DEL) into one engine transaction of up
// to Config.Batch operations — per-connection request batching, which
// amortizes transaction begin/commit over the whole batch. Conditional
// requests (CAS) and everything else execute on their own so that
// independent pipelined requests can never abort each other; an
// explicit MULTI..EXEC batch, by contrast, is deliberately
// all-or-nothing (a failed CAS guard rolls the whole batch back).
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/kv"
	"repro/internal/locktm"
	"repro/internal/nztm"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7070".
	Addr string
	// Engine selects the STM engine: dstm | nztm | 2pl | tl2 | coarse.
	Engine string
	// Shards is the store's shard count (default 8).
	Shards int
	// Buckets is the per-shard bucket count (default 16).
	Buckets int
	// Batch bounds how many pipelined unconditional requests are folded
	// into one transaction (default 64; 1 disables batching).
	Batch int
	// MaxMultiOps bounds a MULTI..EXEC batch (default 256).
	MaxMultiOps int
}

func (c *Config) fill() {
	if c.Engine == "" {
		c.Engine = "nztm"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 16
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.MaxMultiOps <= 0 {
		c.MaxMultiOps = 256
	}
}

// NewEngine builds a raw-mode engine by registry name.
func NewEngine(name string) (core.TM, error) {
	switch name {
	case "dstm":
		return dstm.New(), nil
	case "nztm":
		return nztm.New(), nil
	case "2pl":
		return locktm.NewTwoPhase(), nil
	case "tl2":
		return locktm.NewGlobalClock(), nil
	case "coarse":
		return locktm.NewCoarse(), nil
	}
	return nil, fmt.Errorf("server: unknown engine %q (want dstm|nztm|2pl|tl2|coarse)", name)
}

// Server owns one engine, one store and one listener.
type Server struct {
	cfg   Config
	tm    core.TM
	store *kv.Store

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	// requests counts protocol requests served (responses written).
	requests atomic.Int64
}

// New builds a server (no listening yet).
func New(cfg Config) (*Server, error) {
	cfg.fill()
	tm, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		tm:    tm,
		store: kv.New(tm, cfg.Shards, cfg.Buckets),
		conns: map[net.Conn]struct{}{},
	}, nil
}

// Store returns the underlying kv store (for embedding and tests).
func (s *Server) Store() *kv.Store { return s.store }

// TM returns the engine.
func (s *Server) TM() core.TM { return s.tm }

// Requests returns the number of protocol requests served so far.
func (s *Server) Requests() int64 { return s.requests.Load() }

// Addr returns the bound listen address (nil before ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Listen binds the configured address. Serve (or ListenAndServe) then
// accepts on it; separating the two lets callers learn the bound port
// of ":0" listeners before serving.
func (s *Server) Listen() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		lis.Close()
		return errors.New("server: already closed")
	}
	s.lis = lis
	return nil
}

// Serve accepts connections until Close. Returns nil after a clean
// Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			s.wg.Wait()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		// Add under the mutex: Close (which sets closed, also under the
		// mutex) must never run wg.Wait between this conn's registration
		// and its Add, or it could return with the handler still live.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting, closes every open connection and waits for
// their handlers. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) serveConn(c net.Conn) {
	defer s.dropConn(c)
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)

	var batch []kv.Op
	reply := func(line string) {
		w.WriteString(line)
		w.WriteByte('\n')
		s.requests.Add(1)
	}

	// flushBatch executes the pending unconditional ops as one
	// transaction and writes their responses in order.
	flushBatch := func() {
		if len(batch) == 0 {
			return
		}
		res, err := s.store.Txn(nil, batch)
		for i := range batch {
			if err != nil {
				reply("ERR " + err.Error())
				continue
			}
			reply(renderResult(batch[i], res[i]))
		}
		batch = batch[:0]
	}

	var inMulti bool
	var multiOps []kv.Op

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		verb := strings.ToUpper(fields[0])
		args := fields[1:]

		if inMulti {
			switch verb {
			case "EXEC":
				inMulti = false
				res, err := s.store.Txn(nil, multiOps)
				switch {
				case errors.Is(err, kv.ErrCASFailed):
					reply("ABORTED cas-guard")
				case err != nil:
					reply("ERR " + err.Error())
				default:
					reply(fmt.Sprintf("RESULTS %d", len(res)))
					for i, re := range res {
						reply(renderResult(multiOps[i], re))
					}
				}
				multiOps = nil
			case "DISCARD":
				inMulti = false
				multiOps = nil
				reply("OK")
			default:
				op, perr := parseOp(verb, args)
				switch {
				case perr != nil:
					reply("ERR " + perr.Error())
				case len(multiOps) >= s.cfg.MaxMultiOps:
					reply(fmt.Sprintf("ERR multi batch exceeds %d ops", s.cfg.MaxMultiOps))
				default:
					multiOps = append(multiOps, op)
					reply("QUEUED")
				}
			}
		} else {
			switch verb {
			case "GET", "SET", "DEL":
				op, perr := parseOp(verb, args)
				if perr != nil {
					flushBatch()
					reply("ERR " + perr.Error())
					break
				}
				batch = append(batch, op)
				if len(batch) >= s.cfg.Batch {
					flushBatch()
				}
			case "CAS":
				flushBatch()
				op, perr := parseOp(verb, args)
				if perr != nil {
					reply("ERR " + perr.Error())
					break
				}
				swapped, existed, err := s.store.CAS(nil, op.Key, op.Old, op.Val)
				switch {
				case err != nil:
					reply("ERR " + err.Error())
				case swapped:
					reply("SWAPPED")
				case existed:
					reply("CASFAIL")
				default:
					reply("NOTFOUND")
				}
			case "LEN":
				flushBatch()
				n, err := s.store.Len(nil)
				if err != nil {
					reply("ERR " + err.Error())
				} else {
					reply(fmt.Sprintf("LEN %d", n))
				}
			case "STATS":
				flushBatch()
				st := s.store.Stats()
				reply(fmt.Sprintf("STATS txns=%d cross=%d ratio=%.4f ops=%d aborts=%d shards=%d",
					st.Txns, st.CrossShard, st.CrossShardRatio(), st.Ops(), st.Aborts(), len(st.Shards)))
			case "PING":
				flushBatch()
				reply("PONG")
			case "MULTI":
				flushBatch()
				inMulti = true
				reply("OK")
			case "QUIT":
				flushBatch()
				reply("BYE")
				w.Flush()
				return
			default:
				flushBatch()
				reply(fmt.Sprintf("ERR unknown command %q", verb))
			}
		}

		// Drain the pipeline before paying a flush/syscall: keep
		// accumulating only while another *complete* request is already
		// buffered. A buffer holding just a partial line must flush too —
		// the client may be waiting for these responses before sending
		// the rest of that request.
		if !hasCompleteLine(r) {
			flushBatch()
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// hasCompleteLine reports whether r's buffer already holds a full
// newline-terminated request.
func hasCompleteLine(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	peek, err := r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(peek, '\n') >= 0
}

// parseOp parses a single-key request into a kv.Op.
func parseOp(verb string, args []string) (kv.Op, error) {
	key := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("%s: missing key", verb)
		}
		return args[i], nil
	}
	num := func(i int) (uint64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing numeric argument", verb)
		}
		v, err := strconv.ParseUint(args[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad number %q", verb, args[i])
		}
		return v, nil
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d argument(s), got %d", verb, n, len(args))
		}
		return nil
	}
	switch verb {
	case "GET":
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		return kv.Op{Kind: kv.OpGet, Key: k}, err
	case "SET":
		if err := arity(2); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		if err != nil {
			return kv.Op{}, err
		}
		v, err := num(1)
		return kv.Op{Kind: kv.OpPut, Key: k, Val: v}, err
	case "DEL":
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		return kv.Op{Kind: kv.OpDelete, Key: k}, err
	case "CAS":
		if err := arity(3); err != nil {
			return kv.Op{}, err
		}
		k, err := key(0)
		if err != nil {
			return kv.Op{}, err
		}
		old, err := num(1)
		if err != nil {
			return kv.Op{}, err
		}
		v, err := num(2)
		return kv.Op{Kind: kv.OpCAS, Key: k, Old: old, Val: v}, err
	}
	return kv.Op{}, fmt.Errorf("unknown command %q", verb)
}

// renderResult formats one op outcome as its response line.
func renderResult(op kv.Op, res kv.OpResult) string {
	switch op.Kind {
	case kv.OpGet:
		if res.Found {
			return fmt.Sprintf("VALUE %d", res.Val)
		}
		return "NOTFOUND"
	case kv.OpPut:
		if res.Found {
			return "OK NEW"
		}
		return "OK"
	case kv.OpDelete:
		if res.Found {
			return "DELETED"
		}
		return "NOTFOUND"
	case kv.OpCAS:
		if res.Swapped {
			return "SWAPPED"
		}
		if res.Found {
			return "CASFAIL"
		}
		return "NOTFOUND"
	}
	return "ERR unrenderable result"
}
