// Package server exposes the sharded transactional store (internal/kv)
// over TCP with a small line protocol — the request path of the
// serving stack. One line per request, space-separated tokens, uint64
// values in decimal, one (or, for EXEC, several) response line(s) per
// request in request order:
//
//	PING                     -> PONG
//	GET <key>                -> VALUE <v> | NOTFOUND
//	SET <key> <val>          -> OK NEW | OK
//	DEL <key>                -> DELETED | NOTFOUND
//	CAS <key> <old> <new>    -> SWAPPED | CASFAIL | NOTFOUND
//	LEN                      -> LEN <n>
//	STATS                    -> STATS txns=<n> cross=<n> ratio=<f> ops=<n> aborts=<n> shards=<n>
//	MULTI                    -> OK     (then queue ops, each -> QUEUED)
//	EXEC                     -> RESULTS <n> + n result lines | ABORTED cas-guard
//	DISCARD                  -> OK
//	QUIT                     -> BYE (server closes the connection)
//
// Pipelining: clients may send any number of requests without waiting.
// The connection handler folds consecutive pipelined unconditional
// single-key requests (GET/SET/DEL) into one engine transaction of up
// to Config.Batch operations — per-connection request batching, which
// amortizes transaction begin/commit over the whole batch. Conditional
// requests (CAS) and everything else execute on their own so that
// independent pipelined requests can never abort each other; an
// explicit MULTI..EXEC batch, by contrast, is deliberately
// all-or-nothing (a failed CAS guard rolls the whole batch back).
//
// The request path is byte-level and allocation-free in the steady
// state: requests are tokenized in place over the bufio read buffer,
// verbs case-fold through a table, keys resolve to pre-interned
// handles via a per-connection kv.Session, and replies render through
// reused scratch buffers (conn.go). The PR 3 string-based path is
// preserved behind Config.Legacy as the measured baseline (legacy.go).
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dstm"
	"repro/internal/faultfs"
	"repro/internal/kv"
	"repro/internal/locktm"
	"repro/internal/nztm"
	"repro/internal/repl"
	"repro/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7070".
	Addr string
	// Engine selects the STM engine: dstm | nztm | 2pl | tl2 | coarse.
	Engine string
	// Shards is the store's shard count (default 8).
	Shards int
	// Buckets is the per-shard bucket count (default 16).
	Buckets int
	// Batch bounds how many pipelined unconditional requests are folded
	// into one transaction (default 64; 1 disables batching).
	Batch int
	// Unit bounds how many ops the worker runtime folds into one merged
	// shard unit (default 8). The default is deliberately smaller than
	// Batch: the engines keep a transaction's read and write sets in an
	// 8-entry inline array before spilling to a map, and on the
	// versioned engines validation walks the read set — so past the
	// inline size, bigger units cost more per op than they amortize.
	// The goroutine path has no say in its fold size (it folds whatever
	// one connection's window delivers); choosing the unit size freely
	// is a structural advantage of the worker runtime.
	Unit int
	// MaxMultiOps bounds a MULTI..EXEC batch (default 256).
	MaxMultiOps int
	// MaxLine bounds a single request line in bytes (default 1 MiB). A
	// longer line answers `ERR line too long` and the connection is
	// closed: the line cannot be parsed without buffering it, so the
	// bound caps per-connection memory against runaway (or hostile)
	// unterminated requests.
	MaxLine int
	// Legacy selects the retired PR 3 string-based request path
	// (legacy.go) instead of the byte-level one. It exists solely so
	// experiment E10 can measure the rewrite's speedup against a live
	// baseline; it is not reachable from the oftm-server flags.
	// Setting it forces Runtime "goroutine".
	Legacy bool
	// Runtime selects the connection execution model. "worker" (the
	// default) runs Workers shard-affine run-to-completion loops:
	// connections are assigned to a worker at accept time, requests
	// route to the worker owning their key's shard, and each worker
	// executes its shard group's requests on a single kv.Session — so
	// the per-shard commit-order locks are taken only by their owner
	// and batches fold across connections (worker.go). "goroutine" is
	// the PR 4 goroutine-per-connection byte path, kept live as the
	// measured baseline and equivalence reference.
	Runtime string
	// Workers is the worker-loop count for Runtime "worker" (default
	// min(GOMAXPROCS, Shards); always capped at Shards — a worker
	// owning no shard would never execute anything).
	Workers int
	// FlushTimeout bounds *flusher progress* per connection on the
	// worker runtime (default 5s; negative disables the kill). Workers
	// never write to sockets — replies are sealed into a per-connection
	// pending buffer and a flusher pool moves the bytes (flusher.go) —
	// so a slow reader cannot stall a worker or a round. A connection
	// whose socket accepts no bytes at all for FlushTimeout is treated
	// as dead and closed. The goroutine runtime does not use it: there
	// a stalled write blocks only the offending connection's handler.
	FlushTimeout time.Duration
	// MaxPendingWrite bounds one connection's sealed-but-unwritten reply
	// bytes (default 1 MiB; negative disables). Past the bound the
	// connection is paused exactly like an escalation — its reader stops
	// feeding, input chunks stay pinned — until the flusher fully drains
	// its backlog. This is the worker runtime's per-connection memory
	// backpressure: a client that pipelines requests faster than it
	// reads replies holds at most this many reply bytes (plus one
	// round's worth) server-side.
	MaxPendingWrite int64
	// Flushers is the flusher-pool size for Runtime "worker" (default
	// 2). Flushers write with short deadlines and requeue stalled
	// connections, so a handful serve any connection count; more than
	// one keeps healthy connections flowing while a stalled one waits
	// out its write window.
	Flushers int

	// WALDir enables the durability layer (internal/wal): committed
	// write effects are logged to this directory, state is recovered
	// from it on startup, and a clean shutdown flushes and fsyncs the
	// tail. Empty disables durability (the PR 3/4 volatile behavior).
	WALDir string
	// Fsync is the WAL fsync policy: "always" (group commit fsyncs
	// before acknowledging), "interval" (timer-driven, the default) or
	// "never" (OS page cache decides).
	Fsync string
	// FsyncInterval is the "interval" policy's fsync period (default
	// 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery takes a periodic snapshot (consistent read-only cut
	// of the store) and truncates covered log segments. 0 disables
	// periodic snapshots; recovery then replays the whole log.
	SnapshotEvery time.Duration
	// SnapshotFull forces periodic snapshots to re-dump the whole store
	// as one legacy image. The default (false) cuts incremental chain
	// snapshots: only shards dirtied since the previous cut are
	// re-dumped, so cut cost and recovery time track the dirty set, not
	// the store size (see internal/wal/chain.go).
	SnapshotFull bool
	// WALSegmentBytes caps a log segment before rotation (default 64
	// MiB).
	WALSegmentBytes int64
	// WALFS is the filesystem the WAL writes through (default the real
	// OS). Fault-injection tests and the crash campaign install a
	// faultfs.Injector here; production code leaves it nil.
	WALFS faultfs.FS

	// ReplicateAddr, when set, serves this node's WAL record stream to
	// replicas on a second listener (internal/repl). Requires WALDir.
	// Works on any role: a replica with a replication listener chains
	// its own followers off its ingested stream.
	ReplicateAddr string
	// ReplicaOf, when set, starts the server as a replica of the
	// primary whose *replication* address this is: the store bootstraps
	// from the primary's snapshot/history, applies live records as they
	// ship, serves reads, and answers writes with `ERR readonly` until
	// Promote. Requires WALDir (the replica's own log).
	ReplicaOf string
	// ReplicaConnectTimeout bounds the replica's bootstrap dial
	// (default 10s). After bootstrap, reconnects retry forever.
	ReplicaConnectTimeout time.Duration
}

func (c *Config) fill() {
	if c.Engine == "" {
		c.Engine = "nztm"
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Buckets <= 0 {
		c.Buckets = 16
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.Unit <= 0 {
		c.Unit = 8
	}
	if c.MaxMultiOps <= 0 {
		c.MaxMultiOps = 256
	}
	if c.MaxLine <= 0 {
		c.MaxLine = 1 << 20
	}
	if c.Fsync == "" {
		c.Fsync = "interval"
	}
	if c.Runtime == "" {
		c.Runtime = "worker"
	}
	if c.Legacy {
		c.Runtime = "goroutine"
	}
	if c.Workers <= 0 {
		// GOMAXPROCS, not NumCPU: the loop count should follow what the
		// scheduler will actually run in parallel (bench harnesses and
		// container deployments routinely set GOMAXPROCS below the
		// machine's core count), and it is what the -workers flag help
		// documents.
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.Shards {
		c.Workers = c.Shards
	}
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 5 * time.Second
	}
	if c.MaxPendingWrite == 0 {
		c.MaxPendingWrite = 1 << 20
	}
	if c.Flushers <= 0 {
		c.Flushers = 2
	}
}

// NewEngine builds a raw-mode engine by registry name.
func NewEngine(name string) (core.TM, error) {
	switch name {
	case "dstm":
		return dstm.New(), nil
	case "nztm":
		return nztm.New(), nil
	case "2pl":
		return locktm.NewTwoPhase(), nil
	case "tl2":
		return locktm.NewGlobalClock(), nil
	case "coarse":
		return locktm.NewCoarse(), nil
	}
	return nil, fmt.Errorf("server: unknown engine %q (want dstm|nztm|2pl|tl2|coarse)", name)
}

// Server owns one engine, one store, one listener and (when WALDir is
// set) one write-ahead log.
type Server struct {
	cfg   Config
	tm    core.TM
	store *kv.Store

	// log is the durability layer, nil when Config.WALDir is empty.
	log       *wal.Log
	recovered wal.Recovered
	snapStop  chan struct{}
	snapDone  chan struct{}

	// Replication: replSrv ships this node's log to followers
	// (Config.ReplicateAddr); repl is the apply side when the node
	// started as a replica (Config.ReplicaOf). replica flips to false
	// exactly once, at Promote — the commit hook and the verb gate read
	// it on every request, which is what makes promotion a lock-free
	// role flip instead of a hook swap racing in-flight transactions.
	replSrv   *repl.Primary
	repl      *repl.Replica
	replica   atomic.Bool
	promoteMu sync.Mutex

	// rt is the shard-affine worker runtime (worker.go), nil when
	// Config.Runtime selects the goroutine-per-connection path.
	rt *workerRuntime

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup

	// requests counts parsed protocol requests: one per non-blank
	// request line, so an EXEC of n queued ops counts once. (The PR 3
	// path counted reply lines instead, overstating MULTI traffic; the
	// legacy handler retains that behavior as part of the preserved
	// baseline.)
	requests atomic.Int64
}

// New builds a server (no listening yet). When cfg.WALDir is set it
// also runs recovery: the store is loaded from the latest snapshot
// plus the replayed log tail before the commit hook is installed, so
// recovery loads are not re-logged.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	switch cfg.Runtime {
	case "worker", "goroutine":
	default:
		return nil, fmt.Errorf("server: unknown runtime %q (want worker|goroutine)", cfg.Runtime)
	}
	tm, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		tm:    tm,
		store: kv.New(tm, cfg.Shards, cfg.Buckets),
		conns: map[net.Conn]struct{}{},
	}
	switch {
	case cfg.ReplicaOf != "":
		if cfg.WALDir == "" {
			return nil, errors.New("server: ReplicaOf requires WALDir (the replica's own log)")
		}
		if err := s.openReplicaWAL(cfg); err != nil {
			return nil, err
		}
	case cfg.WALDir != "":
		if err := s.openWAL(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.ReplicateAddr != "" {
		if s.log == nil {
			return nil, errors.New("server: ReplicateAddr requires WALDir (a log to ship)")
		}
		s.replSrv = repl.NewPrimary(s.log)
	}
	if cfg.Runtime == "worker" {
		s.rt = newWorkerRuntime(s, cfg.Workers)
	}
	return s, nil
}

// openWAL recovers and attaches the durability layer.
func (s *Server) openWAL(cfg Config) error {
	policy, err := wal.ParsePolicy(cfg.Fsync)
	if err != nil {
		return err
	}
	l, rec, err := wal.Open(wal.Options{
		Dir:          cfg.WALDir,
		Policy:       policy,
		Interval:     cfg.FsyncInterval,
		SegmentBytes: cfg.WALSegmentBytes,
		FS:           cfg.WALFS,
	})
	if err != nil {
		return fmt.Errorf("server: wal: %w", err)
	}
	err = rec.Each(func(k string, v uint64) error {
		_, perr := s.store.Put(nil, k, v)
		return perr
	})
	if err != nil {
		l.Close()
		return fmt.Errorf("server: wal: loading recovered state: %w", err)
	}
	s.store.SetCommitHook(l.Append)
	s.log = l
	// The store holds the state now; keeping the recovery map/images too
	// would double resident memory for the server's whole lifetime.
	rec.State, rec.Base, rec.Tombstones = nil, nil, nil
	s.recovered = rec
	if cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotEvery)
	}
	return nil
}

// openReplicaWAL bootstraps the node as a replica: its own log is
// recovered, the primary is dialed (installing a shipped snapshot when
// the primary's retained history no longer reaches us), the resulting
// state is loaded into the store, and the live apply loop starts. The
// commit hook is role-aware from the start: while the node is a
// replica the only committers are the apply loop, whose records are
// already in the log via ingest, so the hook appends nothing; after
// Promote flips the role, the same hook appends like a normal primary —
// no hook swap, hence no race against in-flight transactions.
func (s *Server) openReplicaWAL(cfg Config) error {
	policy, err := wal.ParsePolicy(cfg.Fsync)
	if err != nil {
		return err
	}
	r, rec, err := repl.Connect(repl.ReplicaConfig{
		PrimaryAddr:    cfg.ReplicaOf,
		ConnectTimeout: cfg.ReplicaConnectTimeout,
		WAL: wal.Options{
			Dir:          cfg.WALDir,
			Policy:       policy,
			Interval:     cfg.FsyncInterval,
			SegmentBytes: cfg.WALSegmentBytes,
			FS:           cfg.WALFS,
		},
	})
	if err != nil {
		return fmt.Errorf("server: replica bootstrap: %w", err)
	}
	s.replica.Store(true)
	l := r.Log()
	err = rec.Each(func(k string, v uint64) error {
		_, perr := s.store.Put(nil, k, v)
		return perr
	})
	if err != nil {
		r.Stop()
		l.Close()
		return fmt.Errorf("server: replica: loading bootstrap state: %w", err)
	}
	s.store.SetCommitHook(func(effects []kv.Effect) error {
		if s.replica.Load() {
			return nil
		}
		return l.Append(effects)
	})
	s.log = l
	rec.State, rec.Base, rec.Tombstones = nil, nil, nil
	s.recovered = rec
	s.repl = r
	r.Start(s.store)
	if cfg.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotEvery)
	}
	return nil
}

// snapshotLoop takes periodic snapshots until Close.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-t.C:
			// Best effort: a failed snapshot (e.g. mid-shutdown) leaves
			// the previous one in place and the full tail replayable.
			s.SnapshotNow()
		}
	}
}

// SnapshotNow takes one snapshot of the store and truncates the covered
// log history. The default is an incremental chain cut: shards dirtied
// since the previous cut are re-dumped (each in its own read-only
// transaction, so writers never stall behind a whole-store freeze),
// clean shards stay linked to their existing images. Config.SnapshotFull
// keeps the legacy whole-store image. Errors when the server runs
// without a WAL.
func (s *Server) SnapshotNow() error {
	if s.log == nil {
		return errors.New("server: no WAL configured")
	}
	replica := s.repl != nil && s.replica.Load()
	if s.cfg.SnapshotFull {
		dump := func() ([]kv.Pair, error) { return s.store.Dump(nil) }
		if replica {
			// A replica's log runs ahead of its store (ingest is
			// WAL-first), so the safe cut is the last *applied* seq, not
			// the log tail.
			return s.log.WriteSnapshotCut(s.repl.Stats().LastApplied, dump)
		}
		return s.log.WriteSnapshot(dump)
	}
	if replica {
		// The applied-cut read precedes the writer's epoch reads, which
		// is the ordering the dirty-shard classification needs: the
		// apply loop bumps a shard's epoch before advancing LastApplied.
		return s.log.WriteSnapshotIncCut(s.repl.Stats().LastApplied, s.store)
	}
	return s.log.WriteSnapshotInc(s.store)
}

// Role reports the node's replication role: "replica" until Promote,
// "primary" otherwise (including servers without replication).
func (s *Server) Role() string {
	if s.replica.Load() {
		return "replica"
	}
	return "primary"
}

func (s *Server) isReplica() bool { return s.replica.Load() }

// errReplicaReadonly answers writes on a replica. It renders through
// the same `ERR readonly` degradation path as the WAL's fail-stop
// latch, so clients see one uniform refusal shape.
var errReplicaReadonly = errors.New("server: replica mode; writes go to the primary")

// ReplAddr returns the bound replication listener address (nil without
// Config.ReplicateAddr or before Listen).
func (s *Server) ReplAddr() net.Addr {
	if s.replSrv == nil {
		return nil
	}
	return s.replSrv.Addr()
}

// ReplStats is the replication section of STATS, valid on both roles.
type ReplStats struct {
	Role        string
	Peers       int    // connected followers (shipping side)
	LastShipped uint64 // newest seq shipped to any follower
	LastApplied uint64 // newest seq applied from a primary (replica side)
	Lag         uint64 // records behind: primary durable - min shipped (primary with peers) or - last applied (replica)
}

// ReplStats snapshots the node's replication position.
func (s *Server) ReplStats() ReplStats {
	st := ReplStats{Role: s.Role()}
	if s.replSrv != nil {
		ps := s.replSrv.Stats()
		st.Peers = ps.Peers
		st.LastShipped = ps.LastShipped
		if s.log != nil && ps.Peers > 0 {
			if d := s.log.DurableSeq(); d > ps.MinShipped {
				st.Lag = d - ps.MinShipped
			}
		}
	}
	if s.repl != nil {
		rs := s.repl.Stats()
		st.LastApplied = rs.LastApplied
		if s.replica.Load() {
			st.Lag = rs.Lag()
		}
	}
	return st
}

// Promote seals a replica's log at its last contiguous sequence and
// flips the node to accepting writes: the apply loop is stopped and
// drained first (so the store is quiescent and exactly matches the
// ingested prefix), then the role atomic flips — from that point the
// commit hook appends client writes to the log, resuming at the sealed
// seq + 1. Ingest refused every gapped or corrupt shipped batch, so
// the sealed log is always an exact prefix of the dead primary's
// stream — never a hole. Idempotent errors: promoting a primary (or a
// node that never was a replica) fails.
func (s *Server) Promote() (uint64, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.repl == nil || !s.replica.Load() {
		return 0, errors.New("server: not a replica")
	}
	s.repl.Stop()
	s.replica.Store(false)
	return s.log.LastSeq(), nil
}

// WAL returns the attached log (nil without Config.WALDir).
func (s *Server) WAL() *wal.Log { return s.log }

// Recovered reports what startup recovery reconstructed (zero value
// without Config.WALDir). Its State map is dropped after loading —
// read Keys for the recovered key count.
func (s *Server) Recovered() wal.Recovered { return s.recovered }

// Store returns the underlying kv store (for embedding and tests).
func (s *Server) Store() *kv.Store { return s.store }

// TM returns the engine.
func (s *Server) TM() core.TM { return s.tm }

// Requests returns the number of protocol requests parsed so far.
// Connection handlers publish their count when they flush responses
// and when they exit, so the figure is exact once connections are
// drained (the shutdown report) and at most a flush behind in between.
func (s *Server) Requests() int64 { return s.requests.Load() }

// Addr returns the bound listen address (nil before ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Listen binds the configured address. Serve (or ListenAndServe) then
// accepts on it; separating the two lets callers learn the bound port
// of ":0" listeners before serving.
func (s *Server) Listen() error {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if s.replSrv != nil {
		if err := s.replSrv.Listen(s.cfg.ReplicateAddr); err != nil {
			lis.Close()
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		lis.Close()
		return errors.New("server: already closed")
	}
	s.lis = lis
	return nil
}

// Serve accepts connections until Close. Returns nil after a clean
// Close.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	if s.replSrv != nil {
		go s.replSrv.Serve()
	}
	var backoff time.Duration
	for {
		c, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && isTransientAcceptErr(err) {
				// Resource exhaustion (EMFILE and friends) clears when a
				// connection closes; a hot retry loop would spin a core
				// until then. Back off exponentially, reset on success.
				backoff = nextAcceptBackoff(backoff)
				time.Sleep(backoff)
				continue
			}
			s.wg.Wait()
			if closed {
				return nil
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		// Add under the mutex: Close (which sets closed, also under the
		// mutex) must never run wg.Wait between this conn's registration
		// and its Add, or it could return with the handler still live.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops accepting, closes every open connection, waits for
// their handlers, and — with a WAL attached — stops the snapshot loop
// and flushes/fsyncs the log tail (the clean-shutdown flush). Safe to
// call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	if s.rt != nil {
		// Readers have all exited (wg above), so every EOF is already
		// queued: the workers drain them — publishing the exact request
		// tally — and stop.
		s.rt.stopAll()
	}
	if s.replSrv != nil {
		// Detach followers before the log closes; they reconnect to
		// whoever replaces us.
		s.replSrv.Close()
	}
	if s.repl != nil {
		// Stop ingest before the log closes (the apply loop appends).
		s.repl.Stop()
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
	if s.log != nil {
		// All handlers have drained: this flush covers every
		// acknowledged write.
		if werr := s.log.Close(); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) serveConn(c net.Conn) {
	if s.rt != nil {
		// The accept goroutine becomes the connection's reader; the
		// owning worker closes the conn (dropConn) when it drains the
		// reader's EOF.
		s.rt.serve(c)
		return
	}
	defer s.dropConn(c)
	if s.cfg.Legacy {
		s.serveConnLegacy(c)
		return
	}
	newConn(s, c).run()
}

// nextAcceptBackoff doubles the accept retry delay, starting at 5ms
// and capping at 1s.
func nextAcceptBackoff(prev time.Duration) time.Duration {
	if prev <= 0 {
		return 5 * time.Millisecond
	}
	if prev >= time.Second/2 {
		return time.Second
	}
	return prev * 2
}

// isTransientAcceptErr reports whether an Accept error is worth
// retrying with backoff: fd exhaustion (EMFILE/ENFILE clear when
// connections close), connections reset before the accept completed,
// interrupted syscalls, and listener timeouts. Everything else (a
// closed or broken listener) stays fatal.
func isTransientAcceptErr(err error) bool {
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EINTR) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// hasCompleteLine reports whether r's buffer already holds a full
// newline-terminated request.
func hasCompleteLine(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	peek, err := r.Peek(n)
	if err != nil {
		return false
	}
	return bytes.IndexByte(peek, '\n') >= 0
}
