package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/faultfs"
)

// TestMaxLineTooLong: a request line over Config.MaxLine answers `ERR
// line too long` and the server closes the connection instead of
// buffering the line without bound.
func TestMaxLineTooLong(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 2, Buckets: 4, MaxLine: 1024})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	r := bufio.NewReader(nc)

	// A pipelined good request before the oversized one must still be
	// answered, in order, before the error.
	if _, err := nc.Write([]byte("SET pre 1\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	huge := strings.Repeat("x", 4096)
	if _, err := fmt.Fprintf(nc, "SET %s 1\n", huge); err != nil {
		t.Fatalf("write: %v", err)
	}
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "OK NEW" {
		t.Fatalf("preceding request: got %q, %v", line, err)
	}
	line, err = r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ERR line too long" {
		t.Fatalf("oversized request: got %q, %v; want ERR line too long", line, err)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after oversized line")
	}
	// The server itself is fine: a fresh connection works.
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer cl.Close()
	if resp, err := cl.Do("GET pre"); err != nil || resp[0] != "VALUE 1" {
		t.Fatalf("after abuse: %v, %v", resp, err)
	}
}

// TestMaxLineLongButLegal: a line larger than the 16 KiB read buffer
// but under MaxLine goes through the assembly path and still parses.
func TestMaxLineLongButLegal(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 2, Buckets: 4, MaxLine: 64 << 10})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()
	key := strings.Repeat("k", 20<<10) // > bufio buffer, < MaxLine
	resp, err := cl.Do("SET "+key+" 7", "GET "+key)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp[0] != "OK NEW" || resp[1] != "VALUE 7" {
		t.Fatalf("long-line session: %v", resp)
	}
}

// TestReadonlyAfterWALFault is the acceptance check for fail-stop
// durability end to end: with fsync=always and an injected fsync
// failure, no write is ever acknowledged and then lost — the failing
// write and everything after it answer `ERR readonly`, reads keep
// working, and a restart over the same directory serves every write
// that was acknowledged.
func TestReadonlyAfterWALFault(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(faultfs.OS, faultfs.Plan{
		Kind: faultfs.ErrIO, Target: faultfs.FileSync, After: 3,
	})
	s := startServer(t, Config{
		Engine: "nztm", Shards: 2, Buckets: 4,
		WALDir: dir, Fsync: "always", WALFS: inj,
	})
	inj.Arm()

	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	acked := map[string]uint64{}
	sawReadonly := false
	for i := 0; i < 10; i++ {
		key, val := fmt.Sprintf("k%02d", i), uint64(i+1)
		resp, err := cl.Do(fmt.Sprintf("SET %s %d", key, val))
		if err != nil {
			t.Fatalf("SET %d: transport error %v", i, err)
		}
		switch {
		case strings.HasPrefix(resp[0], "OK"):
			if sawReadonly {
				t.Fatalf("SET %s acked after the server went readonly", key)
			}
			acked[key] = val
		case strings.HasPrefix(resp[0], "ERR readonly"):
			sawReadonly = true
		default:
			t.Fatalf("SET %s: unexpected reply %q", key, resp[0])
		}
	}
	if !sawReadonly {
		t.Fatal("injected fsync failure never surfaced as ERR readonly")
	}
	if len(acked) == 0 {
		t.Fatal("no write acked before the fault (After=3 should allow some)")
	}
	// Reads still serve.
	if resp, err := cl.Do("GET k00", "PING", "LEN"); err != nil ||
		resp[0] != "VALUE 1" || resp[1] != "PONG" {
		t.Fatalf("reads after readonly: %v, %v", resp, err)
	}
	// A MULTI..EXEC with writes must also refuse.
	resp, err := cl.Do("MULTI", "SET m 1", "EXEC")
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if !strings.HasPrefix(resp[2], "ERR readonly") {
		t.Fatalf("EXEC with writes while readonly: %q", resp[2])
	}

	// Restart over the same directory with a healthy disk: every
	// acknowledged write must be there.
	if err := s.Close(); err == nil {
		t.Fatal("Close of a failed log should surface the latched error")
	}
	s2 := startServerNoCloseCheck(t, Config{
		Engine: "nztm", Shards: 2, Buckets: 4, WALDir: dir, Fsync: "always",
	})
	cl2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatalf("dial recovered: %v", err)
	}
	defer cl2.Close()
	for key, val := range acked {
		got, found, err := cl2.Get(key)
		if err != nil || !found || got != val {
			t.Fatalf("acked write %s=%d lost: got %d found=%v err=%v", key, val, got, found, err)
		}
	}
}

// startServerNoCloseCheck is startServer without failing the test on
// Close errors — recovery tests close servers whose logs latched.
func startServerNoCloseCheck(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Listen(); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		<-done
	})
	return s
}
