package server

// Equivalence of the byte-level request parser against the retired
// PR 3 string parser (parseOpLegacy, kept in legacy.go as the living
// reference implementation that the legacy wire path still runs for
// experiment E10). The byte tokenizer/parser must accept and reject
// exactly the same request language — same tokens, same ops, same
// arity and ParseUint edge behavior, and (for ASCII requests) the same
// error text. One documented divergence exists: the legacy parser
// case-folded verbs with the unicode-aware strings.ToUpper, which
// accepted oddities like "ſet" (LATIN SMALL LETTER LONG S upper-cases
// to "SET"); verbs are ASCII by contract in the byte parser, so
// comparisons skip non-ASCII verb tokens.

import (
	"strings"
	"testing"

	"repro/internal/kv"
	"repro/internal/nztm"
)

// newParserSession builds a throwaway store+session for handle
// resolution during parsing.
func newParserSession() *kv.Session {
	return kv.New(nztm.New(), 4, 4).NewSession()
}

func asciiOnly(s []byte) bool {
	for _, c := range s {
		if c >= 0x80 {
			return false
		}
	}
	return true
}

// compareParsers runs one raw request line through both parsers and
// fails on any observable divergence.
func compareParsers(t *testing.T, se *kv.Session, line string) {
	t.Helper()

	// Tokenizer equivalence: splitFields must match strings.Fields.
	toks := splitFields([]byte(line), nil)
	fields := strings.Fields(line)
	if len(toks) != len(fields) {
		t.Fatalf("line %q: %d byte tokens vs %d string fields", line, len(toks), len(fields))
	}
	for i := range toks {
		if string(toks[i]) != fields[i] {
			t.Fatalf("line %q: token %d = %q, want %q", line, i, toks[i], fields[i])
		}
	}
	if len(toks) == 0 {
		return
	}
	if !asciiOnly(toks[0]) {
		return // non-ASCII verbs are out of the protocol (see file comment)
	}

	legacyVerb := strings.ToUpper(fields[0])
	legacyOp, legacyErr := parseOpLegacy(legacyVerb, fields[1:])
	v := lookupVerb(toks[0])
	newOp, newErr := parseOp(se, v, toks[0], toks[1:])

	// The handler routes only op verbs into parseOp; for everything
	// else both parsers answer "unknown command". Verb classification
	// itself must agree.
	isOp := map[string]bool{"GET": true, "SET": true, "DEL": true, "CAS": true}[legacyVerb]
	if isOp != (v == vGet || v == vSet || v == vDel || v == vCas) {
		t.Fatalf("line %q: verb classification differs (legacy %q, byte %v)", line, legacyVerb, v)
	}

	if (legacyErr != nil) != (newErr != nil) {
		t.Fatalf("line %q: legacy err %v, byte err %v", line, legacyErr, newErr)
	}
	if legacyErr != nil {
		if legacyErr.Error() != newErr.Error() {
			t.Fatalf("line %q: error text differs:\n legacy: %s\n byte:   %s", line, legacyErr, newErr)
		}
		return
	}
	if newOp.Kind != legacyOp.Kind || newOp.Val != legacyOp.Val || newOp.Old != legacyOp.Old {
		t.Fatalf("line %q: ops differ: legacy %+v, byte %+v", line, legacyOp, newOp)
	}
	// The byte parser resolves the key to a handle; map the legacy key
	// through the same session and compare.
	if want := se.Handle(legacyOp.Key); newOp.Handle != want {
		t.Fatalf("line %q: handle %d for key %q, want %d", line, newOp.Handle, legacyOp.Key, want)
	}
}

var parserCases = []string{
	"GET k",
	"get k",
	"GeT k",
	"SET key0001 42",
	"set k 0",
	"DEL k",
	"CAS k 1 2",
	"cas k 18446744073709551615 0",
	// Arity errors.
	"GET",
	"GET a b",
	"SET k",
	"SET a 1 2",
	"DEL",
	"CAS k 1",
	"CAS k 1 2 3",
	// Number edge cases: sign, empty-ish, overflow, junk.
	"SET k -1",
	"SET k +1",
	"SET k 1_0",
	"SET k 0x10",
	"SET k 18446744073709551615",
	"SET k 18446744073709551616", // 2^64: overflow
	"SET k 99999999999999999999999999",
	"SET k zzz",
	"SET k 12a",
	"CAS k 1 -2",
	// Whitespace shapes (strings.Fields semantics).
	"  GET   k  ",
	"\tSET\tk\t7\t",
	"GET k\r",
	"GET k",   // non-breaking space is a separator in both
	"SET k 1", // em space likewise
	"GET k x", // ...including inside what looks like one arg
	"",
	"   ",
	"\t\r",
	// Unknown / non-op verbs.
	"PING",
	"STATS now",
	"BOGUS x",
	"getx k",
	// Non-ASCII keys are legal keys.
	"GET ключ",
	"SET héllo 5",
	"GET \xff\xfe", // invalid UTF-8 bytes form a token in both
}

func TestParseOpEquivalence(t *testing.T) {
	se := newParserSession()
	for _, line := range parserCases {
		compareParsers(t, se, line)
	}
}

// FuzzParseOp drives the byte parser and the retired string parser
// with arbitrary request lines; any accept/reject, token, op or
// error-text divergence fails.
func FuzzParseOp(f *testing.F) {
	for _, line := range parserCases {
		f.Add(line)
	}
	se := newParserSession()
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n") {
			// The wire handler splits on newlines before parsing; a
			// parser-level comparison of multi-line input is meaningless.
			line = strings.ReplaceAll(line, "\n", " ")
		}
		compareParsers(t, se, line)
	})
}

// TestParseUint pins the manual integer parser against the strconv
// behavior the legacy parser relied on, at the edges that matter.
func TestParseUint(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"7", 7, true},
		{"018", 18, true}, // base 10, no octal surprise
		{"18446744073709551615", 1<<64 - 1, true},
		{"18446744073709551616", 0, false}, // 2^64 overflows
		{"28446744073709551615", 0, false},
		{"184467440737095516150", 0, false},
		{"", 0, false},
		{"-1", 0, false},
		{"+1", 0, false},
		{"1 ", 0, false},
		{"1_0", 0, false},
		{"0x10", 0, false},
		{"٤", 0, false}, // non-ASCII digit
	}
	for _, c := range cases {
		got, ok := parseUint([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Fatalf("parseUint(%q) = (%d, %v), want (%d, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
