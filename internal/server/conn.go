package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"unicode"
	"unicode/utf8"

	"repro/internal/kv"
	"repro/internal/wal"
)

// This file is the byte-level request path: the default connection
// handler tokenizes requests in place over the bufio read buffer,
// case-folds verbs by table, resolves keys to pre-interned handles
// through a per-connection kv.Session, and renders replies with
// strconv.AppendUint into reused scratch — in the steady state
// (known keys, repeated batch shapes) a pipelined GET/SET request is
// served without any heap allocation. The retired string-based PR 3
// handler survives in legacy.go as the measured baseline (E10).

// verb is a protocol command identified from its token without
// allocating. vUnknown covers everything else, including the unicode
// case-folding oddities the old strings.ToUpper parser accepted (e.g.
// a LATIN SMALL LETTER LONG S folding into "SET") — verbs are ASCII by
// contract now.
type verb uint8

const (
	vUnknown verb = iota
	vGet
	vSet
	vDel
	vCas
	vLen
	vStats
	vPing
	vMulti
	vExec
	vDiscard
	vQuit
	vPromote
)

// verbName is indexed by verb; parse errors quote it.
var verbName = [...]string{"", "GET", "SET", "DEL", "CAS", "LEN", "STATS", "PING", "MULTI", "EXEC", "DISCARD", "QUIT", "PROMOTE"}

// upperASCII folds a-z to A-Z and leaves every other byte unchanged.
var upperASCII [256]byte

func init() {
	for i := range upperASCII {
		c := byte(i)
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		upperASCII[i] = c
	}
}

// foldEq reports whether tok case-folds (ASCII) to upper.
func foldEq(tok []byte, upper string) bool {
	if len(tok) != len(upper) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		if upperASCII[tok[i]] != upper[i] {
			return false
		}
	}
	return true
}

// foldUpper returns tok ASCII-uppercased as a string — error-message
// path only.
func foldUpper(tok []byte) string {
	out := make([]byte, len(tok))
	for i, c := range tok {
		out[i] = upperASCII[c]
	}
	return string(out)
}

func lookupVerb(tok []byte) verb {
	switch len(tok) {
	case 3:
		switch {
		case foldEq(tok, "GET"):
			return vGet
		case foldEq(tok, "SET"):
			return vSet
		case foldEq(tok, "DEL"):
			return vDel
		case foldEq(tok, "CAS"):
			return vCas
		case foldEq(tok, "LEN"):
			return vLen
		}
	case 4:
		switch {
		case foldEq(tok, "PING"):
			return vPing
		case foldEq(tok, "EXEC"):
			return vExec
		case foldEq(tok, "QUIT"):
			return vQuit
		}
	case 5:
		switch {
		case foldEq(tok, "STATS"):
			return vStats
		case foldEq(tok, "MULTI"):
			return vMulti
		}
	case 7:
		switch {
		case foldEq(tok, "DISCARD"):
			return vDiscard
		case foldEq(tok, "PROMOTE"):
			return vPromote
		}
	}
	return vUnknown
}

var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// splitFields tokenizes line with strings.Fields semantics (any run of
// unicode whitespace separates tokens) into the reusable toks slice.
// Tokens alias line — they are valid only as long as line is.
func splitFields(line []byte, toks [][]byte) [][]byte {
	toks = toks[:0]
	i, n := 0, len(line)
	for i < n {
		// Skip a run of whitespace. Bytes below RuneSelf use the ASCII
		// table; anything else decodes a rune (invalid UTF-8 decodes to
		// RuneError over one byte, which is not a space — exactly what
		// strings.Fields does).
		for i < n {
			if c := line[i]; c < utf8.RuneSelf {
				if !asciiSpace[c] {
					break
				}
				i++
				continue
			}
			r, sz := utf8.DecodeRune(line[i:])
			if !unicode.IsSpace(r) {
				break
			}
			i += sz
		}
		if i >= n {
			break
		}
		start := i
		for i < n {
			if c := line[i]; c < utf8.RuneSelf {
				if asciiSpace[c] {
					break
				}
				i++
				continue
			}
			r, sz := utf8.DecodeRune(line[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += sz
		}
		toks = append(toks, line[start:i])
	}
	return toks
}

// parseUint is strconv.ParseUint(string(b), 10, 64) without the string
// conversion: ASCII digits only, no sign, overflow-checked.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// parseOp parses a single-key request into a kv.Op carrying the key's
// pre-interned handle (Key stays empty — the allocation-free path;
// handles come from the per-connection session cache). Building an
// error allocates, but only for malformed requests. Accepts and
// rejects the same request language as the retired string parser
// (parseOpLegacy), which the equivalence test and FuzzParseOp enforce.
func parseOp(se *kv.Session, v verb, raw []byte, args [][]byte) (kv.Op, error) {
	name := verbName[v]
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	num := func(i int) (uint64, error) {
		u, ok := parseUint(args[i])
		if !ok {
			return 0, fmt.Errorf("%s: bad number %q", name, args[i])
		}
		return u, nil
	}
	switch v {
	case vGet:
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		return kv.Op{Kind: kv.OpGet, Handle: se.HandleBytes(args[0])}, nil
	case vSet:
		if err := arity(2); err != nil {
			return kv.Op{}, err
		}
		val, err := num(1)
		if err != nil {
			return kv.Op{}, err
		}
		return kv.Op{Kind: kv.OpPut, Handle: se.HandleBytes(args[0]), Val: val}, nil
	case vDel:
		if err := arity(1); err != nil {
			return kv.Op{}, err
		}
		return kv.Op{Kind: kv.OpDelete, Handle: se.HandleBytes(args[0])}, nil
	case vCas:
		if err := arity(3); err != nil {
			return kv.Op{}, err
		}
		old, err := num(1)
		if err != nil {
			return kv.Op{}, err
		}
		val, err := num(2)
		if err != nil {
			return kv.Op{}, err
		}
		return kv.Op{Kind: kv.OpCAS, Handle: se.HandleBytes(args[0]), Old: old, Val: val}, nil
	}
	return kv.Op{}, fmt.Errorf("unknown command %q", foldUpper(raw))
}

// conn is the per-connection scratch of the byte-level request path:
// everything the steady state needs is allocated once here and reused
// — buffered reader/writer, token and batch slices, the kv.Session
// with its handle cache and plan scratch, and the numeric render
// buffer.
type conn struct {
	srv  *Server
	r    *bufio.Reader
	w    *bufio.Writer
	sess *kv.Session

	toks  [][]byte
	batch []kv.Op
	multi []kv.Op
	long  []byte // assembly buffer for lines longer than the read buffer
	num   []byte // strconv.AppendUint scratch

	inMulti bool
	reqs    int64 // parsed requests not yet flushed to srv.requests
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		r:    bufio.NewReaderSize(nc, 16<<10),
		w:    bufio.NewWriterSize(nc, 16<<10),
		sess: s.store.NewSession(),
	}
}

// errLineTooLong aborts a connection whose current request line exceeds
// Config.MaxLine: the reply is `ERR line too long` and the connection
// closes, because resynchronizing mid-line is not worth buffering an
// unbounded request for.
var errLineTooLong = errors.New("line too long")

// readLine returns the next newline-terminated request without copying
// when it fits the read buffer; longer lines are assembled in c.long,
// up to Config.MaxLine bytes. The returned slice is valid until the
// next readLine.
func (c *conn) readLine() ([]byte, error) {
	max := c.srv.cfg.MaxLine
	line, err := c.r.ReadSlice('\n')
	if err == nil {
		if len(line) > max {
			return nil, errLineTooLong
		}
		return line, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err // EOF mid-line drops the partial request, as before
	}
	c.long = append(c.long[:0], line...)
	for {
		if len(c.long) > max {
			return nil, errLineTooLong
		}
		line, err = c.r.ReadSlice('\n')
		c.long = append(c.long, line...)
		if err == nil {
			if len(c.long) > max {
				return nil, errLineTooLong
			}
			return c.long, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func (c *conn) syncRequests() {
	if c.reqs != 0 {
		c.srv.requests.Add(c.reqs)
		c.reqs = 0
	}
}

func (c *conn) run() {
	defer c.syncRequests()
	for {
		line, err := c.readLine()
		if err != nil {
			if err == errLineTooLong {
				// Tell the client why before hanging up; the batch holds
				// requests that preceded the oversized line, so answer
				// them first to keep responses in request order.
				c.flushBatch()
				c.errLine(err)
				c.syncRequests()
				c.w.Flush()
			}
			return
		}
		c.toks = splitFields(line, c.toks)
		if len(c.toks) > 0 {
			// One parsed request, whatever becomes of it. An EXEC counts
			// once — its result lines are part of one response.
			c.reqs++
			v := lookupVerb(c.toks[0])
			if c.inMulti {
				c.stepMulti(v)
			} else if !c.step(v) {
				return // QUIT
			}
		}
		// Drain the pipeline before paying a flush/syscall: keep
		// accumulating only while another *complete* request is already
		// buffered. A buffer holding just a partial line must flush too —
		// the client may be waiting for these responses before sending
		// the rest of that request.
		if !hasCompleteLine(c.r) {
			c.flushBatch()
			c.syncRequests()
			if err := c.w.Flush(); err != nil {
				return
			}
		}
	}
}

// step handles one request outside MULTI; it reports false on QUIT.
func (c *conn) step(v verb) bool {
	args := c.toks[1:]
	switch v {
	case vGet, vSet, vDel:
		if v != vGet && c.srv.isReplica() {
			c.flushBatch()
			c.errLine(errReplicaReadonly)
			return true
		}
		op, err := parseOp(c.sess, v, c.toks[0], args)
		if err != nil {
			c.flushBatch()
			c.errLine(err)
			return true
		}
		c.batch = append(c.batch, op)
		if len(c.batch) >= c.srv.cfg.Batch {
			c.flushBatch()
		}
	case vCas:
		// CAS is never folded into the implicit batch: independent
		// pipelined requests must not abort each other.
		c.flushBatch()
		if c.srv.isReplica() {
			c.errLine(errReplicaReadonly)
			return true
		}
		op, err := parseOp(c.sess, v, c.toks[0], args)
		if err != nil {
			c.errLine(err)
			return true
		}
		res, err := c.sess.Do(nil, op)
		switch {
		case err != nil:
			c.errLine(err)
		case res.Swapped:
			c.staticLine("SWAPPED")
		case res.Found:
			c.staticLine("CASFAIL")
		default:
			c.staticLine("NOTFOUND")
		}
	case vLen:
		c.flushBatch()
		n, err := c.srv.store.Len(nil)
		if err != nil {
			c.errLine(err)
		} else {
			c.w.WriteString("LEN ")
			c.writeUint(uint64(n))
			c.w.WriteByte('\n')
		}
	case vStats:
		c.flushBatch()
		if len(args) == 1 && foldEq(args[0], "WORKERS") {
			renderWorkerStats(c.w, c.srv)
			break
		}
		if len(args) == 1 && foldEq(args[0], "REPL") {
			renderReplStats(c.w, c.srv)
			break
		}
		if len(args) == 1 && foldEq(args[0], "FLUSH") {
			// This handler writes replies synchronously, so its own
			// pending-byte figure is definitionally zero.
			renderFlushStats(c.w, c.srv, 0)
			break
		}
		renderStats(c.w, c.srv.store.Stats())
	case vPing:
		c.flushBatch()
		c.staticLine("PONG")
	case vMulti:
		c.flushBatch()
		c.inMulti = true
		c.multi = c.multi[:0]
		c.staticLine("OK")
	case vPromote:
		c.flushBatch()
		seq, err := c.srv.Promote()
		if err != nil {
			c.errLine(err)
			break
		}
		c.w.WriteString("PROMOTED ")
		c.writeUint(seq)
		c.w.WriteByte('\n')
	case vQuit:
		c.flushBatch()
		c.staticLine("BYE")
		c.syncRequests()
		c.w.Flush()
		return false
	default:
		c.flushBatch()
		fmt.Fprintf(c.w, "ERR unknown command %q\n", foldUpper(c.toks[0]))
	}
	return true
}

// stepMulti handles one request inside a MULTI block.
func (c *conn) stepMulti(v verb) {
	switch v {
	case vExec:
		c.inMulti = false
		if c.srv.isReplica() && batchHasWrites(c.multi) {
			c.errLine(errReplicaReadonly)
			c.multi = c.multi[:0]
			return
		}
		res, err := c.sess.Txn(nil, c.multi)
		switch {
		case errors.Is(err, kv.ErrCASFailed):
			c.staticLine("ABORTED cas-guard")
		case err != nil:
			c.errLine(err)
		default:
			c.w.WriteString("RESULTS ")
			c.writeUint(uint64(len(res)))
			c.w.WriteByte('\n')
			for i := range res {
				c.writeResult(c.multi[i], res[i])
			}
		}
		c.multi = c.multi[:0]
	case vDiscard:
		c.inMulti = false
		c.multi = c.multi[:0]
		c.staticLine("OK")
	default:
		op, err := parseOp(c.sess, v, c.toks[0], c.toks[1:])
		switch {
		case err != nil:
			c.errLine(err)
		case len(c.multi) >= c.srv.cfg.MaxMultiOps:
			fmt.Fprintf(c.w, "ERR multi batch exceeds %d ops\n", c.srv.cfg.MaxMultiOps)
		default:
			c.multi = append(c.multi, op)
			c.staticLine("QUEUED")
		}
	}
}

// flushBatch executes the pending unconditional ops as one transaction
// and writes their responses in order.
func (c *conn) flushBatch() {
	if len(c.batch) == 0 {
		return
	}
	res, err := c.sess.Txn(nil, c.batch)
	for i := range c.batch {
		if err != nil {
			c.errLine(err)
			continue
		}
		c.writeResult(c.batch[i], res[i])
	}
	c.batch = c.batch[:0]
}

// writeResult renders one op outcome as its response line.
func (c *conn) writeResult(op kv.Op, res kv.OpResult) {
	renderResult(c.w, &c.num, op, res)
}

func (c *conn) staticLine(s string) {
	c.w.WriteString(s)
	c.w.WriteByte('\n')
}

func (c *conn) errLine(err error) { renderErr(c.w, err) }

func (c *conn) writeUint(v uint64) { renderUint(c.w, &c.num, v) }

// The render helpers below are shared by both runtimes (the goroutine
// path above and worker.go), so the two produce byte-identical replies
// by construction — the property the runtime equivalence suite pins.

// renderResult renders one op outcome as its response line, using num
// as reusable numeric scratch.
func renderResult(w *bufio.Writer, num *[]byte, op kv.Op, res kv.OpResult) {
	switch op.Kind {
	case kv.OpGet:
		if res.Found {
			w.WriteString("VALUE ")
			renderUint(w, num, res.Val)
			w.WriteByte('\n')
		} else {
			renderStatic(w, "NOTFOUND")
		}
	case kv.OpPut:
		if res.Found {
			renderStatic(w, "OK NEW")
		} else {
			renderStatic(w, "OK")
		}
	case kv.OpDelete:
		if res.Found {
			renderStatic(w, "DELETED")
		} else {
			renderStatic(w, "NOTFOUND")
		}
	case kv.OpCAS:
		switch {
		case res.Swapped:
			renderStatic(w, "SWAPPED")
		case res.Found:
			renderStatic(w, "CASFAIL")
		default:
			renderStatic(w, "NOTFOUND")
		}
	default:
		renderStatic(w, "ERR unrenderable result")
	}
}

func renderStatic(w *bufio.Writer, s string) {
	w.WriteString(s)
	w.WriteByte('\n')
}

// batchHasWrites reports whether any queued op mutates the store — the
// replica write gate for EXEC (a read-only MULTI block still runs).
func batchHasWrites(ops []kv.Op) bool {
	for i := range ops {
		if ops[i].Kind != kv.OpGet {
			return true
		}
	}
	return false
}

func renderErr(w *bufio.Writer, err error) {
	if errors.Is(err, wal.ErrFailStop) || errors.Is(err, errReplicaReadonly) {
		// The durability layer latched a failure: the server no longer
		// acknowledges writes (reads still work). The cause rides along
		// in parentheses; clients key on the "readonly" token.
		w.WriteString("ERR readonly (")
		w.WriteString(err.Error())
		w.WriteString(")\n")
		return
	}
	w.WriteString("ERR ")
	w.WriteString(err.Error())
	w.WriteByte('\n')
}

func renderUint(w *bufio.Writer, num *[]byte, v uint64) {
	*num = strconv.AppendUint((*num)[:0], v, 10)
	w.Write(*num)
}

// renderStats renders the store-counter STATS line.
func renderStats(w *bufio.Writer, st kv.Stats) {
	fmt.Fprintf(w, "STATS txns=%d cross=%d ratio=%.4f ops=%d aborts=%d shards=%d\n",
		st.Txns, st.CrossShard, st.CrossShardRatio(), st.Ops(), st.Aborts(), len(st.Shards))
}

// renderReplStats renders the STATS REPL line: a single line on both
// roles, so clients parse it with the same one-line reader as STATS.
func renderReplStats(w *bufio.Writer, s *Server) {
	st := s.ReplStats()
	fmt.Fprintf(w, "REPL role=%s peers=%d last_shipped=%d last_applied=%d lag=%d\n",
		st.Role, st.Peers, st.LastShipped, st.LastApplied, st.Lag)
}

// renderWorkerStats renders the STATS WORKERS block: a WORKERS <n>
// header and one per-worker counter line. The goroutine runtime has no
// workers and answers `WORKERS 0`.
func renderWorkerStats(w *bufio.Writer, s *Server) {
	ws := s.WorkerStats()
	fmt.Fprintf(w, "WORKERS %d\n", len(ws))
	for i, st := range ws {
		fmt.Fprintf(w, "WORKER %d conns=%d reqs=%d rounds=%d escalations=%d dispatches=%d\n",
			i, st.Conns, st.Requests, st.FlushRounds, st.Escalations, st.Dispatches)
	}
}

// renderFlushStats renders the STATS FLUSH block: a FLUSH header with
// the async reply path's runtime-wide totals, then one FLUSHWORKER line
// per worker. conn is the asking connection's own pending reply bytes —
// the figure a client uses to watch its own backpressure. The goroutine
// runtime writes replies synchronously on each handler, so it answers
// `FLUSH workers=0 ...` with all-zero fields and no body lines.
func renderFlushStats(w *bufio.Writer, s *Server, connPending int64) {
	fs := s.FlushStats()
	fmt.Fprintf(w, "FLUSH workers=%d conn=%d pending=%d sealed=%d queue=%d pauses=%d kills=%d\n",
		len(fs.Workers), connPending, fs.PendingBytes, fs.SealedBytes, fs.Queue, fs.Pauses, fs.Kills)
	for i, st := range fs.Workers {
		fmt.Fprintf(w, "FLUSHWORKER %d pending=%d sealed=%d pauses=%d kills=%d\n",
			i, st.PendingBytes, st.SealedBytes, st.Pauses, st.Kills)
	}
}
