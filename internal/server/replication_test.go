package server

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// startReplicaPair boots an in-process primary (with a replication
// listener) and one replica following it, both over their own WAL dirs.
func startReplicaPair(t *testing.T, runtime string) (*Server, *Server) {
	t.Helper()
	prim := startServer(t, Config{
		Engine: "nztm", Runtime: runtime,
		WALDir: t.TempDir(), Fsync: "never",
		ReplicateAddr: "127.0.0.1:0",
	})
	repl := startServer(t, Config{
		Engine: "nztm", Runtime: runtime,
		WALDir:    t.TempDir(),
		ReplicaOf: prim.ReplAddr().String(),
	})
	return prim, repl
}

// waitReplApplied polls the replica until it has applied through seq.
func waitReplApplied(t *testing.T, repl *Server, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for repl.ReplStats().LastApplied < seq {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at applied seq %d, want %d", repl.ReplStats().LastApplied, seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaFollowerReads pins the tentpole end to end in process, on
// both runtimes: writes at the primary become visible to reads at the
// replica; the replica refuses writes with the readonly error; STATS
// REPL renders on both roles; PROMOTE flips the replica to a primary
// that accepts writes.
func TestReplicaFollowerReads(t *testing.T) {
	for _, rt := range []string{"goroutine", "worker"} {
		t.Run(rt, func(t *testing.T) {
			prim, repl := startReplicaPair(t, rt)

			pc, err := Dial(prim.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer pc.Close()
			for i := 0; i < 20; i++ {
				if err := pc.Set(fmt.Sprintf("k%02d", i), uint64(i)); err != nil {
					t.Fatalf("primary SET: %v", err)
				}
			}
			waitReplApplied(t, repl, prim.WAL().LastSeq())

			rc, err := Dial(repl.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer rc.Close()

			// Follower reads: every primary write is visible.
			for i := 0; i < 20; i++ {
				v, found, err := rc.Get(fmt.Sprintf("k%02d", i))
				if err != nil || !found || v != uint64(i) {
					t.Fatalf("replica GET k%02d = (%d,%v,%v), want %d", i, v, found, err, i)
				}
			}
			if resp, _ := rc.Do("LEN"); resp[0] != "LEN 20" {
				t.Fatalf("replica LEN = %q, want LEN 20", resp[0])
			}

			// Write gating: every write verb answers the readonly error;
			// reads inside MULTI still work.
			for _, req := range []string{"SET x 1", "DEL k00", "CAS k00 0 9"} {
				resp, err := rc.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.HasPrefix(resp[0], "ERR readonly") {
					t.Fatalf("replica %q = %q, want ERR readonly", req, resp[0])
				}
			}
			resp, err := rc.Do("MULTI", "GET k00", "SET k00 5", "EXEC")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(resp[3], "ERR readonly") {
				t.Fatalf("replica EXEC-with-write = %q, want ERR readonly", resp[3])
			}
			resp, err = rc.Do("MULTI", "GET k00", "GET k01", "EXEC")
			if err != nil {
				t.Fatal(err)
			}
			if want := "RESULTS 2; VALUE 0; VALUE 1"; resp[3] != want {
				t.Fatalf("replica read-only EXEC = %q, want %q", resp[3], want)
			}

			// STATS REPL on both roles.
			resp, err = pc.Do("STATS REPL")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(resp[0], "REPL role=primary peers=1 ") {
				t.Fatalf("primary STATS REPL = %q", resp[0])
			}
			resp, err = rc.Do("STATS REPL")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(resp[0], "REPL role=replica ") || !strings.Contains(resp[0], " lag=0") {
				t.Fatalf("replica STATS REPL = %q", resp[0])
			}

			// PROMOTE on a primary is refused; on the replica it answers
			// PROMOTED <seq> and writes start working.
			resp, err = pc.Do("PROMOTE")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(resp[0], "ERR") {
				t.Fatalf("primary PROMOTE = %q, want ERR", resp[0])
			}
			resp, err = rc.Do("PROMOTE")
			if err != nil {
				t.Fatal(err)
			}
			seal, ok := strings.CutPrefix(resp[0], "PROMOTED ")
			if !ok {
				t.Fatalf("replica PROMOTE = %q, want PROMOTED <seq>", resp[0])
			}
			if sealSeq, err := strconv.ParseUint(seal, 10, 64); err != nil || sealSeq != prim.WAL().LastSeq() {
				t.Fatalf("PROMOTED seq = %q, want %d", seal, prim.WAL().LastSeq())
			}
			if err := rc.Set("post-promote", 42); err != nil {
				t.Fatalf("SET after promote: %v", err)
			}
			if v, found, _ := rc.Get("post-promote"); !found || v != 42 {
				t.Fatalf("GET post-promote = (%d,%v)", v, found)
			}
			resp, err = rc.Do("STATS REPL")
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(resp[0], "REPL role=primary ") {
				t.Fatalf("post-promote STATS REPL = %q", resp[0])
			}
			// Idempotence guard: a second PROMOTE is an error.
			resp, _ = rc.Do("PROMOTE")
			if !strings.HasPrefix(resp[0], "ERR") {
				t.Fatalf("second PROMOTE = %q, want ERR", resp[0])
			}
		})
	}
}

// TestReplPrimaryHelperProcess is the primary subprocess of the
// kill-primary tests: a real server with fsync=always and a replication
// listener, killed by the parent with SIGKILL.
func TestReplPrimaryHelperProcess(t *testing.T) {
	if os.Getenv("OFTM_REPL_HELPER") != "1" {
		t.Skip("helper process for TestKillPrimaryPromoteReplica")
	}
	dir := os.Getenv("OFTM_WAL_DIR")
	cfg := Config{Addr: "127.0.0.1:0", Engine: "nztm", WALDir: dir, Fsync: "always",
		ReplicateAddr: "127.0.0.1:0"}
	// The incremental-bootstrap test runs the helper with aggressive
	// snapshot cuts and small segments so its history truncates quickly.
	if v := os.Getenv("OFTM_SNAP_EVERY"); v != "" {
		cfg.SnapshotEvery, _ = time.ParseDuration(v)
	}
	if v := os.Getenv("OFTM_SEG_BYTES"); v != "" {
		n, _ := strconv.ParseInt(v, 10, 64)
		cfg.WALSegmentBytes = n
	}
	s, err := New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repl helper: %v\n", err)
		os.Exit(3)
	}
	if err := s.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "repl helper: %v\n", err)
		os.Exit(3)
	}
	addrFile := filepath.Join(dir, "helper.addr")
	body := s.Addr().String() + "\n" + s.ReplAddr().String()
	if err := os.WriteFile(addrFile+".tmp", []byte(body), 0o644); err != nil {
		os.Exit(3)
	}
	os.Rename(addrFile+".tmp", addrFile)
	s.Serve() // runs until SIGKILL
}

// spawnReplPrimary starts the primary helper subprocess and returns it
// with its client and replication addresses.
func spawnReplPrimary(t *testing.T, dir string, extraEnv ...string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestReplPrimaryHelperProcess$")
	cmd.Env = append(os.Environ(), "OFTM_REPL_HELPER=1", "OFTM_WAL_DIR="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting repl helper: %v", err)
	}
	addrFile := filepath.Join(dir, "helper.addr")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			parts := strings.Split(strings.TrimSpace(string(b)), "\n")
			if len(parts) == 2 {
				os.Remove(addrFile)
				return cmd, parts[0], parts[1]
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("repl helper never published its addresses")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKillPrimaryPromoteReplica is the failover scenario from the
// acceptance criteria: a subprocess primary takes acknowledged
// fsync=always writes, the replica catches up, the primary is
// SIGKILLed, the replica is promoted via the PROMOTE verb — and every
// write acknowledged before the kill is served by the promoted node,
// whose log is a contiguous prefix (the PROMOTED seq equals the shipped
// history; no structural hole is accepted on the way).
func TestKillPrimaryPromoteReplica(t *testing.T) {
	pdir := t.TempDir()
	cmd, addr, replAddr := spawnReplPrimary(t, pdir)
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	repl := startServer(t, Config{Engine: "nztm", WALDir: t.TempDir(), ReplicaOf: replAddr})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	ref := driveLoad(t, cl, 300)

	// Catch-up barrier: first ask the primary how far its durable log
	// goes (with one peer, min shipped == last shipped; lag=0 means all
	// of it has been shipped), then wait for the replica to apply it.
	var shipped uint64
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := cl.Do("STATS REPL")
		if err != nil {
			t.Fatalf("primary STATS REPL: %v", err)
		}
		var lag uint64 = 1
		for _, f := range strings.Fields(resp[0]) {
			if rest, ok := strings.CutPrefix(f, "last_shipped="); ok {
				shipped, _ = strconv.ParseUint(rest, 10, 64)
			}
			if rest, ok := strings.CutPrefix(f, "lag="); ok {
				lag, _ = strconv.ParseUint(rest, 10, 64)
			}
		}
		if lag == 0 && shipped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never drained its shipping lag: %q", resp[0])
		}
		time.Sleep(time.Millisecond)
	}
	cl.Close()
	waitReplApplied(t, repl, shipped)

	// Hard stop the primary: SIGKILL, no flush, no goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill primary: %v", err)
	}
	cmd.Wait()
	killed = true

	// Promote over the wire and verify every acknowledged write.
	rc, err := Dial(repl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	resp, err := rc.Do("PROMOTE")
	if err != nil {
		t.Fatal(err)
	}
	seal, ok := strings.CutPrefix(resp[0], "PROMOTED ")
	if !ok {
		t.Fatalf("PROMOTE = %q", resp[0])
	}
	if sealSeq, err := strconv.ParseUint(seal, 10, 64); err != nil || sealSeq != shipped {
		t.Fatalf("PROMOTED seq = %q, want the caught-up history %d", seal, shipped)
	}
	for k, want := range ref {
		got, found, err := rc.Get(k)
		if err != nil || !found || got != want {
			t.Fatalf("promoted GET %s = (%d,%v,%v), want (%d,true,nil)", k, got, found, err, want)
		}
	}
	if resp, _ := rc.Do("LEN"); resp[0] != fmt.Sprintf("LEN %d", len(ref)) {
		t.Fatalf("promoted LEN = %q, want %d keys", resp[0], len(ref))
	}
	// The promoted node is a writable primary with a sealed, contiguous
	// log: new writes append right after the shipped prefix.
	if err := rc.Set("after-failover", 1); err != nil {
		t.Fatalf("SET after failover: %v", err)
	}
	if got := repl.WAL().LastSeq(); got != shipped+1 {
		t.Fatalf("post-failover log seq = %d, want %d (no hole, no gap)", got, shipped+1)
	}
}

// TestReplicaBootstrapIncremental is the failover scenario with
// incremental snapshots on both nodes: the subprocess primary cuts
// chain snapshots aggressively over small segments, so by the time the
// replica connects the history its cursor needs is truncated and the
// bootstrap must ship a manifest chain (as a bundle). The replica
// installs it, follows live records, survives the primary's SIGKILL,
// and serves every acknowledged write after PROMOTE.
func TestReplicaBootstrapIncremental(t *testing.T) {
	pdir := t.TempDir()
	cmd, addr, replAddr := spawnReplPrimary(t, pdir,
		"OFTM_SNAP_EVERY=25ms", "OFTM_SEG_BYTES=2048")
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	ref := driveLoad(t, cl, 300)

	// Wait until a chain exists and the snapshot's truncation dropped
	// the first segment: a replica starting at cursor 1 then cannot
	// catch up from files and must bootstrap from the chain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ents, err := os.ReadDir(pdir)
		if err != nil {
			t.Fatalf("ReadDir(%s): %v", pdir, err)
		}
		haveManifest, haveFirstSeg := false, false
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".mf") {
				haveManifest = true
			}
			if e.Name() == "wal-00000001.seg" {
				haveFirstSeg = true
			}
		}
		if haveManifest && !haveFirstSeg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never cut+truncated a chain snapshot (manifest=%v firstSeg=%v)", haveManifest, haveFirstSeg)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rdir := t.TempDir()
	repl := startServer(t, Config{Engine: "nztm", WALDir: rdir, ReplicaOf: replAddr,
		SnapshotEvery: 25 * time.Millisecond})

	// The bootstrap installed a chain, not a legacy image: the replica's
	// own log dir holds a manifest plus shard images.
	ents, err := os.ReadDir(rdir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", rdir, err)
	}
	manifests, images := 0, 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".mf") {
			manifests++
		}
		if strings.HasSuffix(e.Name(), ".shard") {
			images++
		}
	}
	if manifests != 1 || images == 0 {
		t.Fatalf("replica dir after bootstrap: %d manifests, %d shard images — want a chain", manifests, images)
	}

	// More acknowledged writes after the bootstrap, streamed live.
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("post%03d", i)
		if err := cl.Set(k, uint64(i)); err != nil {
			t.Fatalf("primary SET %s: %v", k, err)
		}
		ref[k] = uint64(i)
	}

	var shipped uint64
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := cl.Do("STATS REPL")
		if err != nil {
			t.Fatalf("primary STATS REPL: %v", err)
		}
		var lag uint64 = 1
		for _, f := range strings.Fields(resp[0]) {
			if rest, ok := strings.CutPrefix(f, "last_shipped="); ok {
				shipped, _ = strconv.ParseUint(rest, 10, 64)
			}
			if rest, ok := strings.CutPrefix(f, "lag="); ok {
				lag, _ = strconv.ParseUint(rest, 10, 64)
			}
		}
		if lag == 0 && shipped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never drained its shipping lag: %q", resp[0])
		}
		time.Sleep(time.Millisecond)
	}
	cl.Close()
	waitReplApplied(t, repl, shipped)

	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill primary: %v", err)
	}
	cmd.Wait()
	killed = true

	rc, err := Dial(repl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	resp, err := rc.Do("PROMOTE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp[0], "PROMOTED ") {
		t.Fatalf("PROMOTE = %q", resp[0])
	}
	for k, want := range ref {
		got, found, err := rc.Get(k)
		if err != nil || !found || got != want {
			t.Fatalf("promoted GET %s = (%d,%v,%v), want (%d,true,nil)", k, got, found, err, want)
		}
	}
	if resp, _ := rc.Do("LEN"); resp[0] != fmt.Sprintf("LEN %d", len(ref)) {
		t.Fatalf("promoted LEN = %q, want %d keys", resp[0], len(ref))
	}
	if err := rc.Set("after-failover", 1); err != nil {
		t.Fatalf("SET after failover: %v", err)
	}
}
