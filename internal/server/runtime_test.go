package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Runtime equivalence: the worker runtime and the goroutine-per-
// connection runtime must produce byte-identical reply streams for the
// same request stream. Counter-bearing replies (STATS, STATS WORKERS)
// are the one documented exception — transaction boundaries differ
// between the runtimes (cross-connection folding vs per-connection
// batching), so their figures legitimately diverge and the comparison
// masks those lines.

// bothRuntimes starts a worker-runtime server and a goroutine-runtime
// server with otherwise identical configs.
func bothRuntimes(t *testing.T, cfg Config) (worker, goroutine *Server) {
	t.Helper()
	wc, gc := cfg, cfg
	wc.Runtime, wc.Workers = "worker", 3
	gc.Runtime = "goroutine"
	return startServer(t, wc), startServer(t, gc)
}

// rawSession writes one scripted request stream (which must end in
// QUIT so the server closes the connection) and returns the full raw
// reply stream.
func rawSession(t *testing.T, addr, script string) string {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer nc.Close()
	if _, err := io.WriteString(nc, script); err != nil {
		t.Fatalf("write script: %v", err)
	}
	out, err := io.ReadAll(nc)
	if err != nil {
		t.Fatalf("read replies: %v", err)
	}
	return string(out)
}

// maskCounters rewrites counter-bearing reply lines so the two
// runtimes' streams can be compared byte for byte everywhere else.
func maskCounters(out string) string {
	lines := strings.Split(out, "\n")
	keep := lines[:0]
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "STATS "):
			keep = append(keep, "STATS <masked>")
		case strings.HasPrefix(ln, "WORKERS "), strings.HasPrefix(ln, "WORKER "):
			// Worker-count dependent by design; dropped.
		case strings.HasPrefix(ln, "FLUSH "), strings.HasPrefix(ln, "FLUSHWORKER "):
			// STATS FLUSH figures are async-path state the goroutine
			// runtime doesn't have; dropped like the WORKER lines.
		default:
			keep = append(keep, ln)
		}
	}
	return strings.Join(keep, "\n")
}

// TestRuntimeEquivalenceCorpus replays the parser fuzz corpus as one
// pipelined stream against both runtimes.
func TestRuntimeEquivalenceCorpus(t *testing.T) {
	ws, gs := bothRuntimes(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 3})
	script := strings.Join(parserCases, "\n") + "\nQUIT\n"
	got := maskCounters(rawSession(t, ws.Addr().String(), script))
	want := maskCounters(rawSession(t, gs.Addr().String(), script))
	if got != want {
		t.Fatalf("corpus reply streams diverge:\nworker:\n%s\ngoroutine:\n%s", got, want)
	}
}

// TestRuntimeEquivalenceMulti covers the MULTI/EXEC surface: empty
// EXEC, DISCARD, errors inside a block, cross-shard batches (which the
// worker runtime escalates), CAS guards, and interleaved control verbs.
func TestRuntimeEquivalenceMulti(t *testing.T) {
	ws, gs := bothRuntimes(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 3})
	var b strings.Builder
	// Cross-shard EXEC: eight distinct keys span every shard, so with
	// three workers this batch cannot be single-owner.
	b.WriteString("MULTI\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "SET mk%d %d\n", i, i*10)
	}
	b.WriteString("EXEC\n")
	b.WriteString("MULTI\nEXEC\n") // empty EXEC
	b.WriteString("MULTI\nSET mk0 99\nDISCARD\nGET mk0\n")
	b.WriteString("MULTI\nSET mk1 5\nBOGUS x\nGET mk1\nEXEC\n") // error queues nothing
	b.WriteString("MULTI\nCAS mk2 20 7\nSET mk3 1\nEXEC\n")     // guard passes
	b.WriteString("MULTI\nCAS mk2 999 0\nSET mk4 1\nEXEC\n")    // guard fails: ABORTED
	b.WriteString("GET mk3\nGET mk4\nLEN\nSTATS\nSTATS WORKERS\nSTATS FLUSH\nPING\nQUIT\n")
	script := b.String()
	got := maskCounters(rawSession(t, ws.Addr().String(), script))
	want := maskCounters(rawSession(t, gs.Addr().String(), script))
	if got != want {
		t.Fatalf("multi reply streams diverge:\nworker:\n%s\ngoroutine:\n%s", got, want)
	}
}

// TestRuntimeEquivalenceFolding pins the worker runtime's round-local
// folding (read dedup, SET-after-SET last-writer-wins, DEL-of-absent,
// GET-from-written-state) against the goroutine runtime byte for byte.
// The whole script is written as one chunk, so the worker parses it in
// as few rounds as possible and every fold path actually fires.
func TestRuntimeEquivalenceFolding(t *testing.T) {
	ws, gs := bothRuntimes(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 3})
	script := strings.Join([]string{
		// Read dedup: miss, then hit, each twice.
		"GET f0", "GET f0",
		"SET f0 1", "GET f0", "GET f0",
		// SET-after-SET folds to last-writer-wins; the GET sees it.
		"SET f1 1", "SET f1 2", "SET f1 3", "GET f1",
		// DEL chains: second DEL of a round-deleted key, GET after DEL.
		"SET f2 9", "DEL f2", "DEL f2", "GET f2",
		// SET after DEL re-creates; DEL after SET removes.
		"DEL f3", "SET f3 7", "GET f3", "DEL f3", "GET f3",
		// CAS invalidates folded state; the GET re-reads.
		"SET f4 5", "CAS f4 5 6", "GET f4", "CAS f4 999 0", "GET f4",
		// EXEC writes invalidate too.
		"SET f5 1", "MULTI", "SET f5 2", "EXEC", "GET f5",
		// Same-key traffic across the Unit boundary (Batch=3).
		"SET f6 1", "SET f7 1", "SET f8 1", "SET f6 2", "GET f6",
		"QUIT",
	}, "\n") + "\n"
	got := maskCounters(rawSession(t, ws.Addr().String(), script))
	want := maskCounters(rawSession(t, gs.Addr().String(), script))
	if got != want {
		t.Fatalf("folding reply streams diverge:\nworker:\n%s\ngoroutine:\n%s", got, want)
	}
}

// orderingWindows regenerates the TestPipelinedOrderingStress request
// windows (model-checked there); here the same windows run against both
// runtimes and the replies are compared request by request.
func orderingWindows() [][]string {
	const windows, perWindow = 12, 40
	val := map[string]uint64{}
	out := make([][]string, 0, windows)
	for w := 0; w < windows; w++ {
		var reqs []string
		for i := 0; i < perWindow; i++ {
			k := fmt.Sprintf("k%d", (w+i)%7)
			cur, exists := val[k]
			switch i % 5 {
			case 0, 1:
				v := uint64(w*perWindow + i)
				reqs = append(reqs, fmt.Sprintf("SET %s %d", k, v))
				val[k] = v
			case 2:
				reqs = append(reqs, "GET "+k)
			case 3:
				if !exists {
					reqs = append(reqs, "GET "+k)
					break
				}
				reqs = append(reqs, fmt.Sprintf("CAS %s %d %d", k, cur, cur+1))
				val[k] = cur + 1
			default:
				if !exists {
					reqs = append(reqs, "GET "+k)
					break
				}
				reqs = append(reqs, fmt.Sprintf("CAS %s %d %d", k, cur+99999, 1))
			}
		}
		out = append(out, reqs)
	}
	return out
}

// TestRuntimeEquivalenceOrderingStress runs the ordering-stress windows
// against both runtimes over pipelining clients and requires identical
// replies in identical order.
func TestRuntimeEquivalenceOrderingStress(t *testing.T) {
	ws, gs := bothRuntimes(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Batch: 3})
	wcl, err := Dial(ws.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wcl.Close()
	gcl, err := Dial(gs.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer gcl.Close()
	for w, reqs := range orderingWindows() {
		wresps, err := wcl.Do(reqs...)
		if err != nil {
			t.Fatalf("window %d (worker): %v", w, err)
		}
		gresps, err := gcl.Do(reqs...)
		if err != nil {
			t.Fatalf("window %d (goroutine): %v", w, err)
		}
		for i := range reqs {
			if wresps[i] != gresps[i] {
				t.Fatalf("window %d req %d (%s): worker %q, goroutine %q",
					w, i, reqs[i], wresps[i], gresps[i])
			}
		}
	}
}

// TestWorkerOwnershipStatic pins two properties of connection
// assignment: accepts spread round-robin (exactly balanced when the
// connection count is a worker-count multiple), and a connection's
// requests are all accounted on one worker for the connection's whole
// life — ownership never rebalances.
func TestWorkerOwnershipStatic(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 6, Buckets: 8, Runtime: "worker", Workers: 3})
	const conns = 9
	cls := make([]*Client, conns)
	for i := range cls {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// A round trip guarantees the connection is registered with its
		// worker before the stats snapshot.
		if resp, err := cl.Do("PING"); err != nil || resp[0] != "PONG" {
			t.Fatalf("ping: %q %v", resp, err)
		}
		cls[i] = cl
	}
	ws := s.WorkerStats()
	if len(ws) != 3 {
		t.Fatalf("WorkerStats reports %d workers, want 3", len(ws))
	}
	for i, w := range ws {
		if w.Conns != conns/3 {
			t.Fatalf("worker %d owns %d conns, want %d (round-robin spread): %+v", i, w.Conns, conns/3, ws)
		}
	}

	// 100 further requests on one connection land on exactly one worker.
	before := s.WorkerStats()
	for i := 0; i < 10; i++ {
		reqs := make([]string, 10)
		for j := range reqs {
			reqs[j] = fmt.Sprintf("SET own%d %d", (i+j)%13, i*10+j)
		}
		if _, err := cls[0].Do(reqs...); err != nil {
			t.Fatal(err)
		}
	}
	after := s.WorkerStats()
	var bumped []int
	for i := range after {
		switch d := after[i].Requests - before[i].Requests; {
		case d == 100:
			bumped = append(bumped, i)
		case d != 0:
			t.Fatalf("worker %d saw a partial request delta %d — connection migrated mid-life", i, d)
		}
	}
	if len(bumped) != 1 {
		t.Fatalf("request delta on workers %v, want exactly one owner", bumped)
	}
}

// TestWorkerChurnSoak churns connections (connect, a few pipelined
// windows, disconnect) from several goroutines while STATS WORKERS
// polls concurrently — the race detector gets to see accept/assign,
// round execution and teardown interleaved. Afterwards every worker
// must have processed traffic and all churned connections must be gone.
func TestWorkerChurnSoak(t *testing.T) {
	s := startServer(t, Config{Engine: "nztm", Shards: 8, Buckets: 8, Runtime: "worker", Workers: 2})
	const churners, iters, reqsPerIter = 4, 25, 8
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				cl, err := Dial(s.Addr().String())
				if err != nil {
					t.Errorf("churner %d: dial: %v", c, err)
					return
				}
				reqs := make([]string, reqsPerIter)
				for j := range reqs {
					reqs[j] = fmt.Sprintf("SET churn%d %d", (c+it+j)%17, j)
				}
				if _, err := cl.Do(reqs...); err != nil {
					t.Errorf("churner %d: %v", c, err)
					cl.Close()
					return
				}
				cl.Close()
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			return
		}
		defer cl.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := cl.Do("STATS WORKERS"); err != nil {
				return
			}
		}
	}()
	wg.Wait()
	close(stop)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var conns, reqs int64
		perWorker := s.WorkerStats()
		for _, w := range perWorker {
			conns += w.Conns
			reqs += w.Requests
		}
		if conns <= 1 { // at most the stats poller lingers
			if want := int64(churners * iters * reqsPerIter); reqs < want {
				t.Fatalf("workers account %d requests, want >= %d", reqs, want)
			}
			for i, w := range perWorker {
				if w.Requests == 0 {
					t.Fatalf("worker %d processed no requests — load did not spread: %+v", i, perWorker)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still registered after churn drained", conns)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAcceptBackoff pins the transient-accept-error backoff schedule
// and classification.
func TestAcceptBackoff(t *testing.T) {
	var seq []time.Duration
	b := time.Duration(0)
	for i := 0; i < 10; i++ {
		b = nextAcceptBackoff(b)
		seq = append(seq, b)
	}
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		320 * time.Millisecond, 640 * time.Millisecond, time.Second, time.Second,
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("backoff step %d = %v, want %v (full: %v)", i, seq[i], want[i], seq)
		}
	}

	transient := []error{
		syscall.EMFILE, syscall.ENFILE, syscall.ECONNABORTED, syscall.EINTR,
		&net.OpError{Op: "accept", Err: syscall.EMFILE},
		timeoutErr{},
	}
	for _, err := range transient {
		if !isTransientAcceptErr(err) {
			t.Errorf("isTransientAcceptErr(%v) = false, want true", err)
		}
	}
	permanent := []error{
		errors.New("boom"),
		syscall.EINVAL,
		net.ErrClosed,
	}
	for _, err := range permanent {
		if isTransientAcceptErr(err) {
			t.Errorf("isTransientAcceptErr(%v) = true, want false", err)
		}
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }
