package server

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// This file is the worker runtime's asynchronous reply path. Workers
// never write to a socket: finishRound renders a connection's replies
// through its bufio.Writer, whose sink is the connection's pending
// buffer (pendWriter), and seals the round by flushing that writer and
// enqueueing the connection on the flusher pool. A small pool of
// flusher goroutines moves the sealed bytes to the sockets in short
// write windows, requeueing a connection whose socket is not draining
// so one slow client never occupies a flusher for long — the stall is
// confined to the offending connection.
//
// Reply-ordering soundness: a round's replies are rendered only after
// every unit of the round has executed and the escalations have run
// (finishRound), so any byte that reaches the pending buffer — even a
// bufio spill mid-render — describes a completed, durably-acknowledged
// effect. Within a connection the buffer is strictly FIFO (appends and
// drains are ordered by fmu), so replies leave in request order; across
// connections no ordering was ever promised. The WAL fail-stop ack
// boundary is untouched: group commit happens in runUnits, strictly
// before any reply of the round is sealed.
//
// Backpressure: a connection whose pending bytes exceed
// Config.MaxPendingWrite at seal time is paused exactly like an
// escalation — its reader-delivered chunks stay pinned un-acked
// (wconn.bpp), so the reader stops feeding after at most two buffered
// chunks — and resumes (wmResume) when the flusher fully drains its
// backlog. Config.FlushTimeout bounds flusher progress per connection:
// a connection that accepts no bytes for that long is killed
// (nc.Close + wmDead), which frees its worker-side state through the
// normal close path.

// flushWindow is one write attempt's deadline. It is deliberately
// short: a flusher blocked on an undrained socket yields after one
// window (requeueing the connection at the tail), so with F flushers at
// most F stalled connections can delay a healthy flush, and only by one
// window.
const flushWindow = 5 * time.Millisecond

// rawWriter is the reusable state behind seal's inline fast path: one
// non-blocking write attempt on the connection's descriptor, writing
// until the socket would block (EAGAIN) and never waiting for
// writability (the callback always returns true, so the runtime poller
// is not engaged). The callback is bound once per connection so a
// seal-time attempt allocates nothing.
type rawWriter struct {
	rc  syscall.RawConn
	b   []byte
	n   int
	err error
	fn  func(fd uintptr) bool
}

func newRawWriter(rc syscall.RawConn) *rawWriter {
	rw := &rawWriter{rc: rc}
	rw.fn = rw.step
	return rw
}

func (rw *rawWriter) step(fd uintptr) bool {
	for rw.n < len(rw.b) {
		m, err := syscall.Write(int(fd), rw.b[rw.n:])
		if m > 0 {
			rw.n += m
			continue
		}
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return true // would block; leftover goes to the pool
		case nil:
			err = io.ErrShortWrite // 0-byte write with no error
		}
		rw.err = err
		return true
	}
	return true
}

// tryWrite returns the bytes written and any hard error; a would-block
// leftover is not an error — the caller hands it to the flusher pool.
func (rw *rawWriter) tryWrite(b []byte) (int, error) {
	rw.b, rw.n, rw.err = b, 0, nil
	werr := rw.rc.Write(rw.fn)
	n, err := rw.n, rw.err
	rw.b = nil
	if err == nil {
		err = werr // RawConn unusable (conn already closed)
	}
	return n, err
}

// flusherPool drains the per-connection pending-write buffers of one
// worker runtime.
type flusherPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*wconn
	head    int
	stopped bool

	// stopc unblocks notify sends during shutdown, after the workers
	// have exited and nobody drains their mailboxes anymore.
	stopc chan struct{}
	wg    sync.WaitGroup

	// timeout is the per-connection progress bound (Config.FlushTimeout;
	// 0 = never kill). window is one write attempt's deadline.
	timeout time.Duration
	window  time.Duration

	depth atomic.Int64 // queued connections (STATS FLUSH)
}

func newFlusherPool(n int, timeout time.Duration) *flusherPool {
	if n < 1 {
		n = 1
	}
	if timeout < 0 {
		timeout = 0 // negative FlushTimeout: never kill, keep retrying
	}
	p := &flusherPool{stopc: make(chan struct{}), timeout: timeout, window: flushWindow}
	if timeout > 0 && timeout < p.window {
		p.window = timeout
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run()
	}
	return p
}

// push enqueues a connection (the caller has set c.fqueued under
// c.fmu, so a connection is queued at most once). Never blocks.
func (p *flusherPool) push(c *wconn) {
	p.mu.Lock()
	p.q = append(p.q, c)
	p.mu.Unlock()
	p.depth.Add(1)
	p.cond.Signal()
}

// next blocks for the next queued connection; nil means stop.
func (p *flusherPool) next() *wconn {
	p.mu.Lock()
	for p.head == len(p.q) && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped {
		p.mu.Unlock()
		return nil
	}
	c := p.q[p.head]
	p.q[p.head] = nil
	p.head++
	if p.head == len(p.q) {
		p.q, p.head = p.q[:0], 0
	}
	p.mu.Unlock()
	p.depth.Add(-1)
	return c
}

// stop terminates the pool. Called after the workers have exited: any
// notify still blocked on a dead mailbox is released via stopc.
func (p *flusherPool) stop() {
	close(p.stopc)
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *flusherPool) run() {
	defer p.wg.Done()
	for {
		c := p.next()
		if c == nil {
			return
		}
		p.service(c)
	}
}

// notify delivers a flusher-side event to the connection's worker
// through its bound mailbox. During shutdown the mailbox may no longer
// be drained; stopc releases the send.
func (p *flusherPool) notify(c *wconn, kind wmsgKind) {
	select {
	case c.mb <- wmsg{kind: kind, c: c}:
	case <-p.stopc:
	}
}

// dropLocked discards a failed connection's pending bytes (fmu held).
func dropLocked(c *wconn) {
	dropped := int64(len(c.out) + len(c.frest))
	c.out = c.out[:0]
	c.frest = nil
	if dropped != 0 {
		c.w.pendBytes.Add(-dropped)
	}
}

// service drains one connection's pending buffer until it is empty, the
// socket stops accepting bytes (requeue), or the connection fails.
func (p *flusherPool) service(c *wconn) {
	w := c.w
	c.fmu.Lock()
	c.fqueued = false
	if c.ffailed {
		dropLocked(c)
		c.fmu.Unlock()
		return
	}
	c.fbusy = true
	for {
		buf := c.frest
		c.frest = nil
		if len(buf) == 0 {
			if len(c.out) == 0 {
				break
			}
			// Swap the sealed buffer out and hand the previously drained
			// array back for the worker's next appends (steady state: two
			// arrays per connection ping-pong between the roles).
			buf = c.out
			c.out = c.fback
			c.fback = nil
		}
		c.inflight = len(buf)
		c.fmu.Unlock()

		if c.fsince.IsZero() {
			c.fsince = time.Now()
		}
		c.nc.SetWriteDeadline(time.Now().Add(p.window))
		n, err := c.nc.Write(buf)
		if n > 0 {
			w.pendBytes.Add(-int64(n))
			c.fsince = time.Now()
		}

		c.fmu.Lock()
		c.inflight = 0
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if p.timeout > 0 && time.Since(c.fsince) >= p.timeout {
					// Flush-deadline kill: the socket accepted nothing for
					// FlushTimeout. Closing nc unblocks the reader (EOF)
					// and wmDead releases the worker-side state.
					w.flushKills.Add(1)
					c.ffailed = true
					c.frest = buf[n:] // keep the accounting exact for the drop
					dropLocked(c)
					c.fbusy = false
					c.fmu.Unlock()
					c.nc.Close()
					p.notify(c, wmDead)
					return
				}
				// No room this window: keep the remainder and requeue at
				// the tail, yielding this flusher to other connections.
				c.frest = buf[n:]
				c.fbusy = false
				c.fqueued = true
				c.fmu.Unlock()
				p.push(c)
				return
			}
			// Hard write error: the connection is dead.
			c.ffailed = true
			c.frest = buf[n:]
			dropLocked(c)
			c.fbusy = false
			c.fmu.Unlock()
			c.nc.Close()
			p.notify(c, wmDead)
			return
		}
		// buf fully written; recycle its array for the next swap.
		c.fsince = time.Time{}
		if cap(buf) > cap(c.fback) {
			c.fback = buf[:0]
		}
	}
	c.fbusy = false
	closeNow := c.fclose
	resume := c.bppWait && !closeNow
	if resume {
		c.bppWait = false
	}
	c.fmu.Unlock()
	if closeNow {
		// Deferred close (QUIT, oversized line, EOF with replies still
		// pending): every sealed byte is on the wire, close for real and
		// let the worker finish its bookkeeping.
		c.nc.Close()
		p.notify(c, wmDead)
		return
	}
	if resume {
		p.notify(c, wmResume)
	}
}

// pendWriter is the sink behind a worker connection's bufio.Writer: it
// appends rendered reply bytes to the connection's pending buffer for
// the flusher pool to drain. It never returns an error — socket
// failures surface through the flusher (wmDead), not through renders.
type pendWriter struct{ c *wconn }

func (p pendWriter) Write(b []byte) (int, error) {
	c := p.c
	c.fmu.Lock()
	c.out = append(c.out, b...)
	c.fmu.Unlock()
	c.w.pendBytes.Add(int64(len(b)))
	c.w.sealedBytes.Add(int64(len(b)))
	return len(b), nil
}

// pendingBytes reports a connection's sealed-but-unwritten reply bytes.
func (c *wconn) pendingBytes() int64 {
	c.fmu.Lock()
	n := int64(len(c.out) + len(c.frest) + c.inflight)
	c.fmu.Unlock()
	return n
}

// WorkerFlushStats is one worker's async-flush counter snapshot.
type WorkerFlushStats struct {
	// PendingBytes is the current total of sealed reply bytes not yet
	// written to this worker's sockets.
	PendingBytes int64
	// SealedBytes is the total reply bytes sealed since start.
	SealedBytes int64
	// Pauses counts backpressure pauses: a connection's pending bytes
	// exceeded Config.MaxPendingWrite at seal and its reader was paused.
	Pauses int64
	// Kills counts flush-deadline kills: connections that accepted no
	// bytes for Config.FlushTimeout and were closed.
	Kills int64
}

// FlushStats is the async reply path's counter snapshot (STATS FLUSH).
type FlushStats struct {
	// PendingBytes / SealedBytes / Pauses / Kills sum Workers.
	PendingBytes int64
	SealedBytes  int64
	Pauses       int64
	Kills        int64
	// Queue is the flusher pool's current queue depth.
	Queue int64
	// Workers holds the per-worker figures; empty on the goroutine
	// runtime (which writes replies synchronously on each handler).
	Workers []WorkerFlushStats
}

// FlushStats snapshots the async-flush counters. On the goroutine
// runtime everything is zero: that path has no flusher.
func (s *Server) FlushStats() FlushStats {
	var fs FlushStats
	if s.rt == nil {
		return fs
	}
	fs.Workers = make([]WorkerFlushStats, len(s.rt.workers))
	for i, w := range s.rt.workers {
		st := WorkerFlushStats{
			PendingBytes: w.pendBytes.Load(),
			SealedBytes:  w.sealedBytes.Load(),
			Pauses:       w.bpPauses.Load(),
			Kills:        w.flushKills.Load(),
		}
		fs.Workers[i] = st
		fs.PendingBytes += st.PendingBytes
		fs.SealedBytes += st.SealedBytes
		fs.Pauses += st.Pauses
		fs.Kills += st.Kills
	}
	fs.Queue = s.rt.fl.depth.Load()
	return fs
}
