package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a minimal pipelining client for the line protocol. It is
// not safe for concurrent use; open one Client per goroutine.
type Client struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// readResponse reads one logical response: one line, or — for EXEC and
// STATS WORKERS — the RESULTS/WORKERS header plus its body lines
// joined with "; ".
func (cl *Client) readResponse() (string, error) {
	line, err := cl.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimRight(line, "\r\n")
	if rest, ok := strings.CutPrefix(line, "RESULTS "); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return "", fmt.Errorf("client: bad RESULTS header %q", line)
		}
		parts := make([]string, 0, n+1)
		parts = append(parts, line)
		for i := 0; i < n; i++ {
			sub, err := cl.r.ReadString('\n')
			if err != nil {
				return "", err
			}
			parts = append(parts, strings.TrimRight(sub, "\r\n"))
		}
		return strings.Join(parts, "; "), nil
	}
	if rest, ok := strings.CutPrefix(line, "WORKERS "); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return "", fmt.Errorf("client: bad WORKERS header %q", line)
		}
		parts := make([]string, 0, n+1)
		parts = append(parts, line)
		for i := 0; i < n; i++ {
			sub, err := cl.r.ReadString('\n')
			if err != nil {
				return "", err
			}
			parts = append(parts, strings.TrimRight(sub, "\r\n"))
		}
		return strings.Join(parts, "; "), nil
	}
	if rest, ok := strings.CutPrefix(line, "FLUSH workers="); ok {
		// STATS FLUSH: the header's workers= field counts the FLUSHWORKER
		// body lines that follow.
		field, _, _ := strings.Cut(rest, " ")
		n, err := strconv.Atoi(field)
		if err != nil {
			return "", fmt.Errorf("client: bad FLUSH header %q", line)
		}
		parts := make([]string, 0, n+1)
		parts = append(parts, line)
		for i := 0; i < n; i++ {
			sub, err := cl.r.ReadString('\n')
			if err != nil {
				return "", err
			}
			parts = append(parts, strings.TrimRight(sub, "\r\n"))
		}
		return strings.Join(parts, "; "), nil
	}
	return line, nil
}

// Do pipelines the given request lines and returns one logical
// response per request, in order. Note that inside MULTI every queued
// op answers QUEUED and EXEC answers with the folded RESULTS block.
func (cl *Client) Do(reqs ...string) ([]string, error) {
	for _, q := range reqs {
		if _, err := cl.w.WriteString(q + "\n"); err != nil {
			return nil, err
		}
	}
	if err := cl.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]string, len(reqs))
	for i := range reqs {
		resp, err := cl.readResponse()
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// Get reads key; found is false on NOTFOUND.
func (cl *Client) Get(key string) (val uint64, found bool, err error) {
	resp, err := cl.Do("GET " + key)
	if err != nil {
		return 0, false, err
	}
	if resp[0] == "NOTFOUND" {
		return 0, false, nil
	}
	if rest, ok := strings.CutPrefix(resp[0], "VALUE "); ok {
		v, err := strconv.ParseUint(rest, 10, 64)
		return v, true, err
	}
	return 0, false, fmt.Errorf("client: GET answered %q", resp[0])
}

// Set stores key -> val.
func (cl *Client) Set(key string, val uint64) error {
	resp, err := cl.Do(fmt.Sprintf("SET %s %d", key, val))
	if err != nil {
		return err
	}
	if !strings.HasPrefix(resp[0], "OK") {
		return fmt.Errorf("client: SET answered %q", resp[0])
	}
	return nil
}

// LoadStats reports one RunLoad execution.
type LoadStats struct {
	// Ops is the number of requests acknowledged by the server.
	Ops int64
	// Elapsed is the wall-clock duration of the load phase.
	Elapsed time.Duration
	// ServerTxns is the store's committed-transaction counter sampled
	// via STATS after the load (non-zero commits = the smoke criterion).
	ServerTxns int64
}

// OpsPerSec returns acknowledged request throughput.
func (ls LoadStats) OpsPerSec() float64 {
	if ls.Elapsed <= 0 {
		return 0
	}
	return float64(ls.Ops) / ls.Elapsed.Seconds()
}

// RunLoad drives a closed-loop mixed workload (75% GET / 20% SET /
// 5% CAS over a small key space) against addr: conns connections, each
// sending opsPerConn requests in pipelined windows of pipeline
// requests. It is the smoke/load client behind `oftm-server -connect`.
func RunLoad(addr string, conns, opsPerConn, pipeline int) (LoadStats, error) {
	if conns < 1 {
		conns = 1
	}
	if pipeline < 1 {
		pipeline = 1
	}
	var stats LoadStats
	errs := make([]error, conns)
	var acked int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		ci := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs[ci] = err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(ci)*2654435761 + 1))
			sent := 0
			for sent < opsPerConn {
				window := pipeline
				if rest := opsPerConn - sent; rest < window {
					window = rest
				}
				reqs := make([]string, window)
				for i := range reqs {
					k := fmt.Sprintf("key%04d", rng.Intn(512))
					switch r := rng.Intn(100); {
					case r < 75:
						reqs[i] = "GET " + k
					case r < 95:
						reqs[i] = fmt.Sprintf("SET %s %d", k, rng.Intn(1000))
					default:
						reqs[i] = fmt.Sprintf("CAS %s %d %d", k, rng.Intn(1000), rng.Intn(1000))
					}
				}
				resps, err := cl.Do(reqs...)
				if err != nil {
					errs[ci] = err
					return
				}
				for _, resp := range resps {
					if strings.HasPrefix(resp, "ERR") {
						errs[ci] = fmt.Errorf("server error response: %s", resp)
						return
					}
				}
				sent += window
				mu.Lock()
				acked += int64(window)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.Ops = acked
	stats.Elapsed = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}

	cl, err := Dial(addr)
	if err != nil {
		return stats, err
	}
	defer cl.Close()
	resp, err := cl.Do("STATS")
	if err != nil {
		return stats, err
	}
	for _, f := range strings.Fields(resp[0]) {
		if rest, ok := strings.CutPrefix(f, "txns="); ok {
			stats.ServerTxns, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	return stats, nil
}
