package core

// smallMapInline is the number of entries a SmallMap holds inline
// before spilling to a heap map. Eight covers the vast majority of
// transactions in the workloads of this repository (bank transfers,
// set/queue operations) so their read and write sets cost zero
// allocations.
const smallMapInline = 8

// SmallMap is the allocation-lean association used for transaction read
// and write sets: the first smallMapInline entries live in an inline
// array; only transactions that outgrow it pay for a real map. The zero
// value is empty and ready to use. Like the transactions that embed it,
// a SmallMap is not safe for concurrent use.
type SmallMap[K comparable, V any] struct {
	keys  [smallMapInline]K
	vals  [smallMapInline]V
	n     int
	spill map[K]V
}

// Get returns the value stored under k.
func (s *SmallMap[K, V]) Get(k K) (V, bool) {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			return s.vals[i], true
		}
	}
	if s.spill != nil {
		v, ok := s.spill[k]
		return v, ok
	}
	var zero V
	return zero, false
}

// Put inserts or updates the entry for k.
func (s *SmallMap[K, V]) Put(k K, v V) {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			s.vals[i] = v
			return
		}
	}
	if s.spill != nil {
		if _, ok := s.spill[k]; ok {
			s.spill[k] = v
			return
		}
	}
	if s.n < smallMapInline {
		s.keys[s.n], s.vals[s.n] = k, v
		s.n++
		return
	}
	if s.spill == nil {
		s.spill = make(map[K]V, 2*smallMapInline)
	}
	s.spill[k] = v
}

// PutNew inserts an entry the caller knows is absent (a preceding Get
// missed), skipping the duplicate-key search Put performs. Inserting a
// key that is present corrupts the map.
func (s *SmallMap[K, V]) PutNew(k K, v V) {
	if s.n < smallMapInline {
		s.keys[s.n], s.vals[s.n] = k, v
		s.n++
		return
	}
	if s.spill == nil {
		s.spill = make(map[K]V, 2*smallMapInline)
	}
	s.spill[k] = v
}

// Delete removes the entry for k if present.
func (s *SmallMap[K, V]) Delete(k K) {
	for i := 0; i < s.n; i++ {
		if s.keys[i] == k {
			s.n--
			s.keys[i], s.vals[i] = s.keys[s.n], s.vals[s.n]
			var zk K
			var zv V
			s.keys[s.n], s.vals[s.n] = zk, zv
			return
		}
	}
	if s.spill != nil {
		delete(s.spill, k)
	}
}

// smallMapShed is the spill size beyond which Reset releases the map
// instead of clearing it, so one pathologically large transaction does
// not pin its footprint inside a pooled descriptor forever.
const smallMapShed = 4096

// Reset empties the map, zeroing the inline entries (so pooled
// transactions do not retain pointers). A modest spill map is cleared
// in place and kept: recycled transactions that repeatedly outgrow the
// inline array — the wire server's batched request transactions — then
// reuse its buckets instead of reallocating them every transaction,
// which is what makes large batches allocation-free in the steady
// state. (The clear loop compiles to a runtime map clear that zeroes
// the buckets, so no pointers are retained either way.)
func (s *SmallMap[K, V]) Reset() {
	var zk K
	var zv V
	for i := 0; i < s.n; i++ {
		s.keys[i], s.vals[i] = zk, zv
	}
	s.n = 0
	if len(s.spill) > smallMapShed {
		s.spill = nil
		return
	}
	for k := range s.spill {
		delete(s.spill, k)
	}
}

// Len returns the number of entries.
func (s *SmallMap[K, V]) Len() int { return s.n + len(s.spill) }

// Range calls f for every entry until f returns false. Entries must not
// be inserted or deleted during iteration. The nil-spill guard matters:
// ranging even a nil map sets up a map iterator, which is measurable on
// the per-access validation path.
func (s *SmallMap[K, V]) Range(f func(K, V) bool) {
	for i := 0; i < s.n; i++ {
		if !f(s.keys[i], s.vals[i]) {
			return
		}
	}
	if s.spill == nil {
		return
	}
	for k, v := range s.spill {
		if !f(k, v) {
			return
		}
	}
}
