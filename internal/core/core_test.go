package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/locktm"
	"repro/internal/model"
	"repro/internal/sim"
)

func TestRunCommitsOnSuccess(t *testing.T) {
	tm := locktm.NewTwoPhase()
	x := tm.NewVar("x", 0)
	if err := core.Run(tm, nil, func(tx core.Tx) error { return tx.Write(x, 3) }); err != nil {
		t.Fatal(err)
	}
	v, err := core.ReadVar(tm, nil, x)
	if err != nil || v != 3 {
		t.Fatalf("x = %d (%v)", v, err)
	}
}

func TestRunPropagatesUserError(t *testing.T) {
	tm := locktm.NewTwoPhase()
	x := tm.NewVar("x", 5)
	boom := errors.New("boom")
	calls := 0
	err := core.Run(tm, nil, func(tx core.Tx) error {
		calls++
		if err := tx.Write(x, 9); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("user errors must not retry; fn called %d times", calls)
	}
	if v, _ := core.ReadVar(tm, nil, x); v != 5 {
		t.Fatalf("failed transaction leaked write: x = %d", v)
	}
}

func TestRunMaxAttempts(t *testing.T) {
	tm := locktm.NewTwoPhase()
	x := tm.NewVar("x", 0)
	// Hold the lock in a never-finishing transaction so Run's attempts
	// all abort.
	blocker := tm.Begin(nil)
	if err := blocker.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := core.Run(tm, nil, func(tx core.Tx) error {
		calls++
		_, err := tx.Read(x)
		return err
	}, core.MaxAttempts(3), core.WithBackoff(func(int) {}))
	if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	blocker.Abort()
}

func TestRunRetriesAfterAbort(t *testing.T) {
	tm := locktm.NewGlobalClock()
	x := tm.NewVar("x", 0)
	attempt := 0
	err := core.Run(tm, nil, func(tx core.Tx) error {
		attempt++
		if attempt == 1 {
			// Simulate a forceful abort by returning ErrAborted after
			// self-aborting.
			tx.Abort()
			return core.ErrAborted
		}
		return tx.Write(x, 1)
	}, core.WithBackoff(func(int) {}))
	if err != nil {
		t.Fatal(err)
	}
	if attempt != 2 {
		t.Fatalf("attempts = %d, want 2", attempt)
	}
}

func TestWriteVarReadVar(t *testing.T) {
	tm := locktm.NewCoarse()
	x := tm.NewVar("x", 0)
	if err := core.WriteVar(tm, nil, x, 44); err != nil {
		t.Fatal(err)
	}
	v, err := core.ReadVar(tm, nil, x)
	if err != nil || v != 44 {
		t.Fatalf("x = %d (%v)", v, err)
	}
}

func TestRecordedProducesMatchingHistory(t *testing.T) {
	env := sim.New()
	tm := core.Recorded(locktm.NewTwoPhase(locktm.WithEnv(env)), env.Recorder())
	x := tm.NewVar("x", 0)
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		v, err := tx.Read(x)
		if err != nil || v != 0 {
			t.Errorf("read: %d %v", v, err)
		}
		if err := tx.Write(x, 8); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Errorf("commit: %v", err)
		}
	})
	h := env.Run(sim.RoundRobin())
	if err := h.WellFormed(); err != nil {
		t.Fatalf("ill-formed: %v", err)
	}
	if len(h.Ops) != 3 {
		t.Fatalf("ops = %d, want 3 (R, W, tryC)", len(h.Ops))
	}
	if h.Ops[0].Kind != model.OpRead || h.Ops[0].Ret != 0 {
		t.Errorf("op0: %v", h.Ops[0])
	}
	if h.Ops[1].Kind != model.OpWrite || h.Ops[1].Arg != 8 {
		t.Errorf("op1: %v", h.Ops[1])
	}
	if h.Ops[2].Kind != model.OpTryCommit || h.Ops[2].Aborted {
		t.Errorf("op2: %v", h.Ops[2])
	}
	// Steps must be enclosed in op windows (well-formedness already
	// checks this); additionally the read op must contain >= 1 step.
	n := 0
	for _, s := range h.Steps {
		if s.Time > h.Ops[0].Inv && s.Time < h.Ops[0].Resp {
			n++
		}
	}
	if n == 0 {
		t.Errorf("no steps recorded inside the read operation")
	}
}

func TestRecordedCutsPendingOps(t *testing.T) {
	env := sim.New()
	tm := core.Recorded(locktm.NewTwoPhase(locktm.WithEnv(env)), env.Recorder())
	x := tm.NewVar("x", 0)
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		_ = tx.Write(x, 1)
		_ = tx.Commit()
	})
	// Kill p1 after its first step: the write op is cut off pending.
	h := env.Run(sim.Bounded(1, sim.RoundRobin()))
	if len(h.Ops) != 1 {
		t.Fatalf("ops = %d, want 1 pending op", len(h.Ops))
	}
	if !h.Ops[0].Pending() {
		t.Fatalf("op must be pending: %v", h.Ops[0])
	}
}

func TestRecordedShortCircuitsAfterCompletion(t *testing.T) {
	env := sim.New()
	tm := core.Recorded(locktm.NewTwoPhase(locktm.WithEnv(env)), env.Recorder())
	x := tm.NewVar("x", 0)
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		tx.Abort()
		// These must not be recorded (completed transactions take no
		// further actions in a well-formed history).
		_, _ = tx.Read(x)
		_ = tx.Write(x, 1)
		_ = tx.Commit()
		tx.Abort()
	})
	h := env.Run(sim.RoundRobin())
	if err := h.WellFormed(); err != nil {
		t.Fatalf("ill-formed: %v", err)
	}
	if len(h.Ops) != 1 || h.Ops[0].Kind != model.OpTryAbort {
		t.Fatalf("ops: %v", h.Ops)
	}
}

func TestRecordedCommitPending(t *testing.T) {
	env := sim.New()
	tm := core.Recorded(locktm.NewTwoPhase(locktm.WithEnv(env)), env.Recorder())
	x := tm.NewVar("x", 0)
	env.Spawn(func(p *sim.Proc) {
		tx := tm.Begin(p)
		_ = tx.Write(x, 1) // acquire lock (1 cas) + read old (1) + write (1)
		_ = tx.Commit()    // release (1 write step)
	})
	// Grant exactly the write op's steps, then kill during commit.
	h := env.Run(sim.Bounded(3, sim.RoundRobin()))
	txs := model.Transactions(h)
	if len(txs) != 1 {
		t.Fatalf("want 1 tx, got %d", len(txs))
	}
	if !txs[0].CommitPending {
		t.Fatalf("transaction should be commit-pending, ops: %v", txs[0].Ops)
	}
}
