package core

import (
	"fmt"
	"testing"
)

func TestSmallMapInlineAndSpill(t *testing.T) {
	var m SmallMap[int, string]
	if m.Len() != 0 {
		t.Fatalf("zero value not empty: %d", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("get on empty succeeded")
	}
	// Fill past the inline capacity.
	const n = 3 * smallMapInline
	for i := 0; i < n; i++ {
		m.Put(i, fmt.Sprint(i))
	}
	if m.Len() != n {
		t.Fatalf("len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(i)
		if !ok || v != fmt.Sprint(i) {
			t.Fatalf("get(%d) = %q, %v", i, v, ok)
		}
	}
	// Updates must not duplicate, wherever the entry lives.
	for i := 0; i < n; i++ {
		m.Put(i, "u")
	}
	if m.Len() != n {
		t.Fatalf("len after updates = %d, want %d", m.Len(), n)
	}
	seen := map[int]bool{}
	m.Range(func(k int, v string) bool {
		if v != "u" {
			t.Fatalf("entry %d not updated: %q", k, v)
		}
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != n {
		t.Fatalf("range visited %d keys, want %d", len(seen), n)
	}
}

func TestSmallMapDelete(t *testing.T) {
	var m SmallMap[int, int]
	const n = 2 * smallMapInline
	for i := 0; i < n; i++ {
		m.Put(i, i)
	}
	// Delete interleaved inline and spilled entries (the first
	// smallMapInline keys are inline).
	for i := 0; i < n; i += 2 {
		m.Delete(i)
	}
	m.Delete(12345) // absent: no-op
	if m.Len() != n/2 {
		t.Fatalf("len = %d, want %d", m.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(i)
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && (!ok || v != i) {
			t.Fatalf("kept key %d lost: %v %v", i, v, ok)
		}
	}
	// Reinsertion after inline deletes reuses inline slots.
	m.Put(0, 100)
	if v, ok := m.Get(0); !ok || v != 100 {
		t.Fatalf("reinserted key: %v %v", v, ok)
	}
}

func TestSmallMapRangeEarlyStop(t *testing.T) {
	var m SmallMap[int, int]
	for i := 0; i < smallMapInline+4; i++ {
		m.Put(i, i)
	}
	visits := 0
	m.Range(func(int, int) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("early stop visited %d, want 3", visits)
	}
}

func TestSmallMapZeroAllocInline(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		var m SmallMap[int, int]
		for i := 0; i < smallMapInline; i++ {
			m.Put(i, i)
		}
		for i := 0; i < smallMapInline; i++ {
			if _, ok := m.Get(i); !ok {
				t.Fatal("lost entry")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("inline-only use allocated %.1f times per run, want 0", allocs)
	}
}
