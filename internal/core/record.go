package core

import (
	"errors"

	"repro/internal/model"
	"repro/internal/sim"
)

// Recorded wraps a TM so that every high-level operation (read, write,
// tryC, tryA) is recorded in rec as invocation/response event pairs,
// producing the high-level part of a low-level history in the paper's
// sense. In sim mode, pass the environment's recorder so operation
// events and steps share one clock and are totally ordered.
//
// Operations cut off by a process kill (crash/suspension at end of run)
// are recorded as pending, which the model layer treats as
// commit-pending when the operation was tryC.
func Recorded(tm TM, rec *model.Recorder) TM {
	return &recTM{inner: tm, rec: rec}
}

type recTM struct {
	inner TM
	rec   *model.Recorder
}

func (r *recTM) Name() string          { return r.inner.Name() }
func (r *recTM) ObstructionFree() bool { return r.inner.ObstructionFree() }

func (r *recTM) NewVar(name string, init uint64) Var {
	return r.inner.NewVar(name, init)
}

func (r *recTM) Begin(p *sim.Proc) Tx {
	return &recTx{inner: r.inner.Begin(p), rec: r.rec, proc: p.ID()}
}

type recTx struct {
	inner Tx
	rec   *model.Recorder
	proc  model.ProcID
	// done is set once the transaction completed (committed or aborted).
	// Operations issued after completion are short-circuited without
	// recording, keeping the recorded history well-formed ("once a
	// transaction is committed or aborted, no process performs any
	// operations within it", §2.2).
	done bool
}

func (t *recTx) ID() model.TxID          { return t.inner.ID() }
func (t *recTx) Status() model.Status    { return t.inner.Status() }
func (t *recTx) completeIf(aborted bool) { t.done = t.done || aborted }
func (t *recTx) op(k model.OpKind) model.Op {
	return model.Op{Proc: t.proc, Tx: t.inner.ID(), Kind: k}
}

func (t *recTx) Read(v Var) (uint64, error) {
	if t.done {
		return 0, ErrAborted
	}
	inv := t.rec.Invoke(t.proc)
	responded := false
	op := t.op(model.OpRead)
	op.Var = v.ID()
	defer func() {
		if !responded {
			t.rec.Cut(inv, op)
		}
	}()
	val, err := t.inner.Read(v)
	op.Ret = val
	op.Aborted = errors.Is(err, ErrAborted)
	t.rec.Respond(inv, op)
	responded = true
	t.completeIf(op.Aborted)
	return val, err
}

func (t *recTx) Write(v Var, val uint64) error {
	if t.done {
		return ErrAborted
	}
	inv := t.rec.Invoke(t.proc)
	responded := false
	op := t.op(model.OpWrite)
	op.Var = v.ID()
	op.Arg = val
	defer func() {
		if !responded {
			t.rec.Cut(inv, op)
		}
	}()
	err := t.inner.Write(v, val)
	op.Aborted = errors.Is(err, ErrAborted)
	t.rec.Respond(inv, op)
	responded = true
	t.completeIf(op.Aborted)
	return err
}

func (t *recTx) Commit() error {
	if t.done {
		return ErrAborted
	}
	inv := t.rec.Invoke(t.proc)
	responded := false
	op := t.op(model.OpTryCommit)
	defer func() {
		if !responded {
			t.rec.Cut(inv, op)
		}
	}()
	err := t.inner.Commit()
	op.Aborted = errors.Is(err, ErrAborted)
	t.rec.Respond(inv, op)
	responded = true
	t.done = true
	return err
}

func (t *recTx) Abort() {
	if t.done {
		return
	}
	inv := t.rec.Invoke(t.proc)
	responded := false
	op := t.op(model.OpTryAbort)
	op.Aborted = true
	defer func() {
		if !responded {
			t.rec.Cut(inv, op)
		}
	}()
	t.inner.Abort()
	t.rec.Respond(inv, op)
	responded = true
	t.done = true
}
