package core

// TMStats is a snapshot of engine-internal counters, exposed so
// benchmarks and reports can attribute throughput differences to
// engine mechanics without reaching into engine packages.
type TMStats struct {
	// Epoch is the engine's global version-clock value: advanced once
	// per writing commit (immediately before the commit CAS). In the
	// global-epoch ablation mode it is additionally bumped on forceful
	// aborts (the PR 1 commit-counter behavior). Zero for engines
	// without versioned validation.
	Epoch uint64
	// ForcedAborts counts forceful aborts inflicted on transaction
	// owners through contention-manager decisions.
	ForcedAborts int64
	// SnapshotExtensions counts lazy snapshot extensions: full read-set
	// rescans a reader performed because it encountered a value newer
	// than its snapshot timestamp. Under disjoint write traffic this
	// stays near zero — the point of per-variable versioned validation.
	SnapshotExtensions int64
}

// StatsSource is the optional interface of engines that expose TMStats.
type StatsSource interface {
	Stats() TMStats
}

// StatsOf returns tm's stats, reporting whether the engine (or, for the
// Recorded wrapper, the engine underneath) exposes them.
func StatsOf(tm TM) (TMStats, bool) {
	switch s := tm.(type) {
	case StatsSource:
		return s.Stats(), true
	case *recTM:
		return StatsOf(s.inner)
	}
	return TMStats{}, false
}
