package core

// TMStats is a snapshot of engine-internal counters, exposed so
// benchmarks and reports can attribute throughput differences to
// engine mechanics without reaching into engine packages.
type TMStats struct {
	// Epoch is the engine's commit-epoch value: bumped once per commit
	// attempt (immediately before the commit CAS) and once per forceful
	// abort. Zero for engines without commit-counter validation.
	Epoch uint64
	// ForcedAborts counts forceful aborts inflicted on transaction
	// owners through contention-manager decisions.
	ForcedAborts int64
}

// StatsSource is the optional interface of engines that expose TMStats.
type StatsSource interface {
	Stats() TMStats
}

// StatsOf returns tm's stats, reporting whether the engine (or, for the
// Recorded wrapper, the engine underneath) exposes them.
func StatsOf(tm TM) (TMStats, bool) {
	switch s := tm.(type) {
	case StatsSource:
		return s.Stats(), true
	case *recTM:
		return StatsOf(s.inner)
	}
	return TMStats{}, false
}
