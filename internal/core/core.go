// Package core defines the transactional-memory abstraction of §2.2 of
// the paper: a TM is a shared object whose operations read or write
// t-variables within a transaction, request commit (tryC) and request
// abort (tryA). Every STM engine in this repository (DSTM, Algorithm 2,
// the lock-based baselines, and the Theorem 6 composition) implements
// these interfaces, so the checkers, data structures, examples and
// benchmarks are engine-generic.
package core

import (
	"errors"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// ErrAborted is returned by transaction operations to signal the abort
// event A_k: the transaction has been aborted and all its effects rolled
// back. After any operation returns ErrAborted the transaction is
// completed; further operations keep returning ErrAborted.
var ErrAborted = errors.New("stm: transaction aborted")

// Var is a transactional variable (t-variable) holding one uint64 word.
// Vars are created by a TM and must only be used with transactions of
// that TM.
type Var interface {
	// ID is the dense index of the variable within its TM.
	ID() model.VarID
	// Name is the diagnostic name given at creation.
	Name() string
}

// Tx is one transaction. A transaction is used by a single goroutine
// (the paper's single process pE(T)); Tx implementations are not safe
// for concurrent use.
type Tx interface {
	// ID returns the transaction identifier T_{i,k}.
	ID() model.TxID
	// Read returns the value of v, or ErrAborted.
	Read(v Var) (uint64, error)
	// Write sets the value of v in this transaction, or returns
	// ErrAborted.
	Write(v Var, val uint64) error
	// Commit requests commitment (tryC). nil means the commit event C_k
	// was received; ErrAborted means A_k.
	Commit() error
	// Abort requests abortion (tryA); always succeeds.
	Abort()
	// Status returns the transaction's completion status.
	Status() model.Status
}

// TM is a software transactional memory engine.
type TM interface {
	// Name identifies the engine (for tables and traces).
	Name() string
	// NewVar allocates a t-variable with the given initial value. All
	// engines in this repository allow NewVar concurrently with running
	// transactions (the data structures allocate nodes dynamically);
	// a variable is visible to a transaction once NewVar returned.
	NewVar(name string, init uint64) Var
	// Begin starts a transaction executed by simulated process p (nil in
	// raw mode).
	Begin(p *sim.Proc) Tx
	// ObstructionFree reports whether the engine claims Definition 2's
	// obstruction-freedom (checked empirically by the test suite).
	ObstructionFree() bool
}

// runConfig configures Run.
type runConfig struct {
	maxAttempts int
	backoff     func(attempt int)
}

// RunOption customizes Run.
type RunOption func(*runConfig)

// MaxAttempts bounds the number of times Run restarts an aborted
// transaction before giving up with ErrAborted. Zero or negative means
// unlimited.
func MaxAttempts(n int) RunOption {
	return func(c *runConfig) { c.maxAttempts = n }
}

// WithBackoff sets the delay hook invoked between attempts.
func WithBackoff(f func(attempt int)) RunOption {
	return func(c *runConfig) { c.backoff = f }
}

// defaultBackoff is the raw-mode retry delay. Early attempts yield the
// processor instead of sleeping: time.Sleep has a multi-microsecond
// scheduling floor that dwarfs a transaction, so sleeping on the first
// conflict collapses contended throughput; a Gosched hands the CPU to
// the conflicting owner at no latency cost. Persistent conflicts
// escalate to capped exponential sleeps with jitter. The jitter source
// is created lazily: the common no-conflict path must not pay for
// seeding a generator, and the yield-only attempts need none.
func defaultBackoff(attempt int, rng *rand.Rand) *rand.Rand {
	if attempt <= 4 {
		runtime.Gosched()
		return rng
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if attempt > 16 {
		attempt = 16
	}
	max := 1 << attempt // microseconds
	time.Sleep(time.Duration(rng.Intn(max)+1) * time.Microsecond)
	return rng
}

// Run executes fn inside a transaction, retrying on forceful aborts —
// the standard way applications consume an STM. As the paper notes in
// Section 3, restarting an aborted transaction's computation is the
// application's job, not the TM's: the restarted transaction may observe
// a different state and take different actions, so Run re-invokes fn
// within a fresh transaction each time.
//
// If fn returns nil, Run commits; a commit failure is a forceful abort
// and retries. If fn returns ErrAborted (or any error wrapping it), the
// attempt is retried. Any other error aborts the transaction and is
// returned to the caller.
func Run(tm TM, p *sim.Proc, fn func(Tx) error, opts ...RunOption) error {
	// The config is materialized only when options were passed: taking
	// &cfg unconditionally would heap-allocate it on every call (it
	// escapes into the option funcs), and the no-option path is the
	// per-operation hot path of every workload.
	var cfg runConfig
	if len(opts) > 0 {
		var c runConfig
		for _, o := range opts {
			o(&c)
		}
		cfg = c
	}
	var rng *rand.Rand
	for attempt := 1; ; attempt++ {
		tx := tm.Begin(p)
		err := fn(tx)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr == nil {
				recycle(tx)
				return nil
			}
		case errors.Is(err, ErrAborted):
			// Forcefully aborted mid-flight; fall through to retry.
		default:
			tx.Abort()
			recycle(tx)
			return err
		}
		recycle(tx)
		if cfg.maxAttempts > 0 && attempt >= cfg.maxAttempts {
			return ErrAborted
		}
		switch {
		case cfg.backoff != nil:
			cfg.backoff(attempt)
		case p == nil:
			rng = defaultBackoff(attempt, rng)
		}
	}
}

// TxRecycler is the optional interface of transactions whose engine
// pools completed transaction state. Run invokes Recycle once an
// attempt has fully completed (committed or aborted) and Run is the
// last holder of the handle; after that call the handle is dead — a
// caller that squirrels a Tx away past its Run attempt and keeps using
// it is outside the API contract (Tx is single-goroutine and completed
// transactions only ever answer ErrAborted).
type TxRecycler interface {
	Recycle()
}

func recycle(tx Tx) {
	if r, ok := tx.(TxRecycler); ok {
		r.Recycle()
	}
}

// ReadVar is a convenience one-shot transactional read.
func ReadVar(tm TM, p *sim.Proc, v Var) (uint64, error) {
	var out uint64
	err := Run(tm, p, func(tx Tx) error {
		val, err := tx.Read(v)
		out = val
		return err
	})
	return out, err
}

// WriteVar is a convenience one-shot transactional write.
func WriteVar(tm TM, p *sim.Proc, v Var, val uint64) error {
	return Run(tm, p, func(tx Tx) error { return tx.Write(v, val) })
}

// Releaser is the optional early-release capability of DSTM-style
// OFTMs ([18] §5): a transaction may drop a variable from its read set,
// waiving conflict detection on it for the rest of the transaction.
// Linked-structure traversals release the nodes they have walked past
// so that writers behind them no longer abort the traversal. Misuse
// breaks opacity for the released variable — the caller asserts it no
// longer depends on the released value.
type Releaser interface {
	// Release removes v from the transaction's read set. Releasing a
	// variable that was not read (or was written) is a no-op.
	Release(v Var) error
}

// Release drops v from tx's read set if the engine supports early
// release, reporting whether it did.
func Release(tx Tx, v Var) bool {
	r, ok := tx.(Releaser)
	if !ok {
		return false
	}
	return r.Release(v) == nil
}
