// Package kv is the serving-layer keyed store of the reproduction: a
// sharded transactional key-value map built on the engine-generic TM
// API. String keys are interned to dense uint64 handles; the key space
// is partitioned across S shards, each backed by its own hash index
// (ds.Index) over arena-allocated t-variables. Transactions on keys of
// different shards touch disjoint t-variables, so on a strictly
// disjoint-access-parallel engine (2pl) they never contend, and on the
// OFTM engines they contend only through the engine's own hot spots —
// the store is the systems-level realization of the paper's
// disjoint-access-parallelism argument: carve the key space so
// independent requests run conflict-free, and make cross-shard
// operations the explicit, measured exception.
//
// Concurrency: a Store is safe for concurrent use by any number of
// goroutines (raw mode) or simulated processes (sim mode; pass the
// *sim.Proc). Every operation is internally a retrying transaction via
// core.Run; multi-key Txn batches are atomic across shards.
package kv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ds"
	"repro/internal/sim"
)

// ErrCASFailed is returned by Txn when an OpCAS guard did not match:
// the whole batch was rolled back (nothing applied). Single-key CAS
// does not use it — a lone mismatch simply reports swapped=false.
var ErrCASFailed = errors.New("kv: txn aborted by failed CAS guard")

// Effect is one committed write, as observed by a CommitHook: Key now
// holds Val, or (Del) Key was removed. Effects are listed in program
// order of the batch that produced them, so replaying a stream of
// effect lists in commit order reproduces the store state —
// the contract the durability layer (internal/wal) is built on.
type Effect struct {
	Key string
	Val uint64
	Del bool
}

// CommitHook observes the write effects of every committed store
// transaction, called after the engine commit succeeded (read-only
// transactions never reach the hook). The effects slice is reused
// scratch owned by the calling session — valid only for the duration
// of the call. A hook error propagates to the store caller; the
// in-memory commit itself is not undone (the engines have no
// post-commit rollback), so a failing hook means the durability layer
// is behind the memory state and the store should stop serving writes —
// which is exactly how internal/wal treats a write error: sticky
// failure, every subsequent append refused.
//
// Hooks run on the committing goroutine: a slow hook (fsync) is paid
// by that transaction, which is what makes group commit in the hook's
// implementation worthwhile.
type CommitHook func(effects []Effect) error

// SetCommitHook installs hook (nil removes it). Not synchronized with
// in-flight transactions: install before serving traffic — the
// recovery sequence (load state, then hook, then listen) does.
//
// With a hook installed, write batches additionally hold the
// commit-order locks of the shards they touch across the engine
// transaction and the hook, so hook invocation order equals commit
// serialization order (the property a replayed log depends on). Write
// concurrency is then per-shard rather than per-key; reads are
// unaffected. Hooks are a raw-mode facility (the durability layer) —
// do not combine with sim-mode stores, whose cooperative scheduler
// must never block on a real mutex.
func (s *Store) SetCommitHook(hook CommitHook) { s.hook = hook }

// Store is a sharded transactional key-value store.
type Store struct {
	tm     core.TM
	shards []*shard

	// handles is the intern table (string -> uint64). It is a sync.Map
	// because interning sits on the hot path of every operation across
	// all shards: in the steady state (key already interned) Load is a
	// lock-free read, so the table adds no store-wide contended word —
	// which a plain RWMutex reader count would be, defeating exactly
	// the disjointness the sharding buys. The mutex serializes only
	// first-time assignments.
	handles  sync.Map
	mu       sync.Mutex
	nHandles uint64

	// keys is the reverse of handles: keys[h-1] is the key interned as
	// handle h. Published as an immutable-header snapshot so the
	// commit-hook path can resolve handle -> key lock-free (the slice
	// only ever grows; an element is written before the header carrying
	// it is stored, and handles are handed out only after publication).
	keys atomic.Pointer[[]string]

	// hook, when set, observes the write effects of every committed
	// transaction (see CommitHook).
	hook CommitHook

	// txns counts committed store operations (each one transaction);
	// crossShard counts those that touched more than one shard. Their
	// ratio is the workload's cross-shard fraction — the quantity a
	// deployment tunes its partitioning to minimize.
	txns       atomic.Int64
	crossShard atomic.Int64

	// sessions pools the internal default sessions behind the
	// session-less Store.Txn / Store.GetMulti compatibility methods, so
	// callers without their own Session still reuse plan scratch.
	sessions sync.Pool
}

// shard is one key-space partition: a private hash index plus stats.
type shard struct {
	idx    *ds.Index
	ops    atomic.Int64 // committed operations that touched this shard
	aborts atomic.Int64 // aborted attempts (retries) charged to this shard

	// mu is the shard's commit-order lock, taken only when a commit
	// hook is installed: a write batch holds the locks of every shard
	// it touches across [engine transaction .. hook], so the hook
	// observes commits in serialization order. Two conflicting
	// transactions share a key, hence a shard, hence a lock — without
	// it, the later-serialized commit could reach the hook (the WAL
	// append) first and recovery's log-order replay would resurrect
	// the stale value. Hook-free stores (the volatile configuration)
	// never touch it.
	mu sync.Mutex

	// epoch is the shard's dirty counter: bumped once per write effect
	// the shard receives, inside the commit-order critical section and
	// after the hook assigned the batch's log sequence. Incremental
	// snapshots compare two reads of it to decide whether the shard
	// must be re-dumped (see DirtyEpoch / DirtyEpochLocked); a bump is
	// a single atomic add, so dirty tracking costs the write path no
	// allocation and no extra lock.
	epoch atomic.Uint64
}

// New allocates a store with the given shard count and buckets per
// shard (both rounded up to at least 1) on tm. The t-variables are
// created on tm, so a store attached to a sim-mode engine records like
// any other transactional structure.
func New(tm core.TM, shards, bucketsPerShard int) *Store {
	if shards < 1 {
		shards = 1
	}
	if bucketsPerShard < 1 {
		bucketsPerShard = 1
	}
	s := &Store{tm: tm}
	for i := 0; i < shards; i++ {
		s.shards = append(s.shards, &shard{idx: ds.NewIndex(tm, fmt.Sprintf("kv.s%d", i), bucketsPerShard)})
	}
	s.sessions.New = func() any { return s.NewSession() }
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// intern returns the stable uint64 handle for key, assigning the next
// dense handle on first use. Handles are never reclaimed: the store
// follows the ds arena discipline (the paper's scope excludes epoch
// reclamation), so the handle table grows with the set of distinct
// keys ever touched.
func (s *Store) intern(key string) uint64 {
	if h, ok := s.handles.Load(key); ok {
		return h.(uint64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.handles.Load(key); ok {
		return h.(uint64)
	}
	s.nHandles++
	var ks []string
	if cur := s.keys.Load(); cur != nil {
		ks = *cur
	}
	ks = append(ks, key)
	// Publish the grown reverse table before the handle becomes
	// observable: KeyOf(h) must succeed for any handle a caller holds.
	s.keys.Store(&ks)
	s.handles.Store(key, s.nHandles)
	return s.nHandles
}

// KeyOf resolves a handle back to its key (the inverse of
// Session.Handle). It is lock-free and allocation-free — the
// commit-hook path uses it to render write effects.
func (s *Store) KeyOf(h uint64) (string, bool) {
	ks := s.keys.Load()
	if ks == nil || h == 0 || h > uint64(len(*ks)) {
		return "", false
	}
	return (*ks)[h-1], true
}

// shardOf maps a handle to its shard. The multiplier differs from the
// bucket hash inside ds.Index (0x9E37...) on purpose: with both
// derived from the same product, power-of-two shard and bucket counts
// would correlate and leave most buckets of every shard unused.
func (s *Store) shardOf(h uint64) int {
	return int((h * 0xBF58476D1CE4E5B9) >> 33 % uint64(len(s.shards)))
}

// ShardOf maps a handle to the index of the shard holding it — the
// same partition the execution plan uses. The serving layer's worker
// runtime routes requests by it: a request batch whose handles all map
// to shards owned by one worker executes on that worker's session, so
// the shard's commit-order lock is taken only ever by its owner and is
// uncontended by construction.
func (s *Store) ShardOf(h uint64) int { return s.shardOf(h) }

// record charges a finished single-shard operation to sh: attempts-1
// aborted tries, and one committed op if it succeeded.
func (sh *shard) record(attempts int, committed bool) {
	if attempts > 1 {
		sh.aborts.Add(int64(attempts - 1))
	}
	if committed {
		sh.ops.Add(1)
	}
}

func (s *Store) finish(committed bool, shardsTouched int) {
	if !committed {
		return
	}
	s.txns.Add(1)
	if shardsTouched > 1 {
		s.crossShard.Add(1)
	}
}

// do runs one single-key operation on a pooled internal session, so
// Store singles share the session execution path — including the
// commit hook that the durability layer attaches.
func (s *Store) do(p *sim.Proc, op Op, opts []core.RunOption) (OpResult, error) {
	se := s.sessions.Get().(*Session)
	res, err := se.Do(p, op, opts...)
	s.sessions.Put(se)
	return res, err
}

// Get returns the value stored at key and whether it is present.
func (s *Store) Get(p *sim.Proc, key string, opts ...core.RunOption) (uint64, bool, error) {
	r, err := s.do(p, Op{Kind: OpGet, Handle: s.intern(key)}, opts)
	return r.Val, r.Found, err
}

// Put stores key -> val, reporting whether the key was new.
func (s *Store) Put(p *sim.Proc, key string, val uint64, opts ...core.RunOption) (bool, error) {
	r, err := s.do(p, Op{Kind: OpPut, Handle: s.intern(key), Val: val}, opts)
	return r.Found, err
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(p *sim.Proc, key string, opts ...core.RunOption) (bool, error) {
	r, err := s.do(p, Op{Kind: OpDelete, Handle: s.intern(key)}, opts)
	return r.Found, err
}

// CAS atomically replaces the value at key with new iff the key is
// present and currently holds old. It reports (swapped, existed):
// (false, false) for a missing key, (false, true) on value mismatch.
func (s *Store) CAS(p *sim.Proc, key string, old, new uint64, opts ...core.RunOption) (swapped, existed bool, err error) {
	r, err := s.do(p, Op{Kind: OpCAS, Handle: s.intern(key), Old: old, Val: new}, opts)
	return r.Swapped, r.Found, err
}

// OpKind enumerates the operations a Txn batch may contain.
type OpKind uint8

const (
	// OpGet reads a key.
	OpGet OpKind = iota
	// OpPut stores Val at Key.
	OpPut
	// OpDelete removes Key.
	OpDelete
	// OpCAS replaces Old with Val at Key if it matches.
	OpCAS
)

// Op is one operation of an atomic multi-key batch. Key names the
// target; a nonzero Handle (obtained from Session.Handle /
// Session.HandleBytes of the same store) pre-resolves it and skips the
// intern lookup — the wire server's allocation-free path, where ops
// carry only handles and Key stays empty.
type Op struct {
	Kind OpKind
	Key  string
	Val  uint64 // Put value / CAS new value
	Old  uint64 // CAS expected value
	// Handle, when nonzero, is Key's pre-interned handle. Handles are
	// assigned from 1, so zero always means "resolve Key".
	Handle uint64
}

// OpResult is the outcome of one Op, in batch order.
type OpResult struct {
	// Val is the value read (OpGet) — zero when absent.
	Val uint64
	// Found reports key presence: the Get hit, the Delete removed,
	// the CAS found the key; for Put it reports the key was new.
	Found bool
	// Swapped reports OpCAS success.
	Swapped bool
}

// Txn executes ops as one atomic transaction spanning any number of
// shards, returning per-op results in batch order. A batch containing
// no writes (all OpGet) is a read-only transaction and commits on the
// engines' validation-free read-only path — the snapshot fast path.
//
// OpCAS acts as a guard: if its expected value does not match (or the
// key is missing), the entire batch rolls back and Txn returns
// ErrCASFailed — conditional multi-key updates are all-or-nothing, so
// a CAS-pair transfer can never half-apply.
//
// Txn runs on a pooled internal session (the plan scratch is reused
// across calls); callers on a hot path should hold their own Session,
// whose Txn also reuses the result slice.
func (s *Store) Txn(p *sim.Proc, ops []Op, opts ...core.RunOption) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	se := s.sessions.Get().(*Session)
	res, err := se.Txn(p, ops, opts...)
	var out []OpResult
	if err == nil {
		// Copy out of the session scratch: the pooled session may be
		// reused by any goroutine the moment it is returned.
		out = make([]OpResult, len(res))
		copy(out, res)
	}
	s.sessions.Put(se)
	return out, err
}

// Lookup is one result of GetMulti.
type Lookup struct {
	Val   uint64
	Found bool
}

// GetMulti reads any number of keys in one read-only transaction — a
// consistent snapshot across shards. Read-only transactions serialize
// at their snapshot timestamp and commit without validation on the
// versioned engines (dstm, nztm), so this is the cheap way to take
// cross-shard snapshots under write traffic.
func (s *Store) GetMulti(p *sim.Proc, keys []string, opts ...core.RunOption) ([]Lookup, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	se := s.sessions.Get().(*Session)
	res, err := se.GetMulti(p, keys, opts...)
	var out []Lookup
	if err == nil {
		out = make([]Lookup, len(res))
		copy(out, res)
	}
	s.sessions.Put(se)
	return out, err
}

// Pair is one key/value entry of a Dump.
type Pair struct {
	Key string
	Val uint64
}

// Dump reads every present key in one read-only transaction — a
// consistent cut of the whole store, serialized at its snapshot
// timestamp on the versioned engines and committed without validation
// (the same fast path as GetMulti). The durability layer uses it to
// take snapshots under live write traffic. Pairs are returned in
// handle order (insertion order of first intern), which is stable
// across calls.
func (s *Store) Dump(p *sim.Proc, opts ...core.RunOption) ([]Pair, error) {
	// Snapshot the handle space first: keys interned after this point
	// belong to transactions that will be replayed from the log anyway.
	var n uint64
	if ks := s.keys.Load(); ks != nil {
		n = uint64(len(*ks))
	}
	if n == 0 {
		return nil, nil
	}
	pairs := make([]Pair, 0, n)
	attempts := 0
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		attempts++
		pairs = pairs[:0]
		for h := uint64(1); h <= n; h++ {
			idx := s.shards[s.shardOf(h)].idx
			v, ok, err := idx.Lookup(tx, h)
			if err != nil {
				return err
			}
			if ok {
				k, _ := s.KeyOf(h)
				pairs = append(pairs, Pair{Key: k, Val: v})
			}
		}
		return nil
	}, opts...)
	committed := err == nil
	for _, sh := range s.shards {
		sh.record(attempts, committed)
	}
	s.finish(committed, len(s.shards))
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// DumpShard reads every present key of one shard in its own read-only
// transaction. The snapshot writer streams a cut shard by shard with
// it: each shard's image is internally consistent (one transaction),
// dumps of different shards overlap live write traffic instead of
// freezing the whole store, and any write that lands between a shard's
// dump and the cut sequence is repaired by the idempotent tail replay —
// the same prefix-repair contract Dump relies on.
func (s *Store) DumpShard(shard int) ([]Pair, error) {
	var n uint64
	if ks := s.keys.Load(); ks != nil {
		n = uint64(len(*ks))
	}
	if n == 0 {
		return nil, nil
	}
	sh := s.shards[shard]
	var pairs []Pair
	attempts := 0
	err := core.Run(s.tm, nil, func(tx core.Tx) error {
		attempts++
		pairs = pairs[:0]
		for h := uint64(1); h <= n; h++ {
			if s.shardOf(h) != shard {
				continue
			}
			v, ok, err := sh.idx.Lookup(tx, h)
			if err != nil {
				return err
			}
			if ok {
				k, _ := s.KeyOf(h)
				pairs = append(pairs, Pair{Key: k, Val: v})
			}
		}
		return nil
	})
	committed := err == nil
	sh.record(attempts, committed)
	s.finish(committed, 1)
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// DirtyEpoch returns shard i's dirty counter with a plain atomic load —
// the cheap read for reporting and pre-cut sampling.
func (s *Store) DirtyEpoch(i int) uint64 { return s.shards[i].epoch.Load() }

// DirtyEpochLocked returns shard i's dirty counter observed under the
// shard's commit-order lock. Because every write batch holds that lock
// across [engine commit .. WAL append .. epoch bump], a locked read
// taken *after* the snapshot cut sequence was read is guaranteed to
// include the bump of every record at or before the cut: any batch
// whose sequence was assigned before the cut read completed its
// critical section — bump included — before this read acquired the
// lock. That ordering is what lets the incremental snapshot writer
// trust "epoch unchanged" to mean "no effect on this shard needs a
// fresh image" (see internal/wal's chain writer).
func (s *Store) DirtyEpochLocked(i int) uint64 {
	sh := s.shards[i]
	sh.mu.Lock()
	e := sh.epoch.Load()
	sh.mu.Unlock()
	return e
}

// Len counts all entries atomically across every shard (a long
// read-only transaction using the step-lean per-bucket counting path).
func (s *Store) Len(p *sim.Proc, opts ...core.RunOption) (int, error) {
	var n int
	attempts := 0
	err := core.Run(s.tm, p, func(tx core.Tx) error {
		attempts++
		n = 0
		for _, sh := range s.shards {
			c, err := sh.idx.Count(tx)
			if err != nil {
				return err
			}
			n += c
		}
		return nil
	}, opts...)
	committed := err == nil
	for _, sh := range s.shards {
		sh.record(attempts, committed)
	}
	s.finish(committed, len(s.shards))
	return n, err
}

// ShardStats is the per-shard counter snapshot.
type ShardStats struct {
	Ops    int64 // committed operations that touched the shard
	Aborts int64 // aborted attempts (retries) charged to the shard
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Shards     []ShardStats
	Txns       int64 // committed store transactions
	CrossShard int64 // ...of which touched more than one shard
}

// CrossShardRatio returns the fraction of committed transactions that
// spanned shards (0 when nothing committed).
func (st Stats) CrossShardRatio() float64 {
	if st.Txns == 0 {
		return 0
	}
	return float64(st.CrossShard) / float64(st.Txns)
}

// Ops sums committed per-shard operation counts.
func (st Stats) Ops() int64 {
	var n int64
	for _, s := range st.Shards {
		n += s.Ops
	}
	return n
}

// Aborts sums per-shard aborted attempts.
func (st Stats) Aborts() int64 {
	var n int64
	for _, s := range st.Shards {
		n += s.Aborts
	}
	return n
}

// Stats snapshots the store counters. The snapshot is not atomic with
// respect to concurrent operations (counters advance independently);
// it is meant for reporting, not invariants.
func (s *Store) Stats() Stats {
	st := Stats{
		Shards:     make([]ShardStats, len(s.shards)),
		Txns:       s.txns.Load(),
		CrossShard: s.crossShard.Load(),
	}
	for i, sh := range s.shards {
		st.Shards[i] = ShardStats{Ops: sh.ops.Load(), Aborts: sh.aborts.Load()}
	}
	return st
}
